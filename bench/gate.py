#!/usr/bin/env python3
"""Perf-regression gate: diff a fresh BENCH.json against the committed one.

Usage: gate.py BASELINE.json FRESH.json

Checks, with a +/-30% tolerance on timing cells:
  - B5: the "states/sec" column, per (n, crashes) row present in both files
    — skipped for tiny explorations (< 10k states, where the wall-clock
    window is microseconds and the ratio is pure noise); the "states"
    column must match EXACTLY on every row (state counts are deterministic,
    a drift there is a semantic regression in the explorer, not noise).
  - B7: the "ns/state" column, per primitive row present in both files.
  - B9: the "cmds/sec" column, per (n, loss width) row present in both
    files; "committed", "p50", "p99" and "safe" must match EXACTLY (the
    replicated-log run is deterministic from its seed — any drift is a
    semantic change in the SMR stack, not noise).
  - B10: EVERY column must match EXACTLY per (n, byz) row present in both
    files — the Byzantine-adversary cells contain no wall-clock at all, so
    any drift in latency / broadcasts / suppressed / substituted / decided
    / safe is a semantic change in the adversary model, the substitute
    hook, or byz_consensus itself.
  - B11: EVERY column must match EXACTLY per (scenario, patience) row
    present in both files — the lifecycle cells (failover detection
    latency, reconfiguration / compaction commit quantiles) are seeded
    simulation runs with no wall-clock, so any drift is a semantic change
    in the detector, the repair path, or the reconfiguration machinery.
  - B12: EVERY column must match EXACTLY per (algo, topo) row present in
    both files (critical paths and energy segments are pure functions of
    the schedule), AND — within the fresh file alone — the wpaxos line
    rows' hop counts must grow strictly monotonically with the diameter:
    the O(D*F_ack) shape is an acceptance criterion, not just a baseline.
  - B13: "committed", "batches", "last_commit", "end_time", "p50", "p99"
    and "safe" must match EXACTLY per G row present in both files (the
    sharded run is deterministic from its seed); "cmds/sec" carries the
    +/-30% wall-clock tolerance. AND — within the fresh file alone — the
    deterministic throughput column must scale: cmds/ktick at G=4 must be
    >= 2.5x cmds/ktick at G=1. A flat slope means sharding stopped
    multiplying the per-node MAC channel and is a regression even if
    every cell matches some (equally flat) baseline.

  - B14: EVERY column must match EXACTLY per (topo, alpha) row present in
    both files — the multi-hop scale cells (fixed-delay scheduler plus the
    deterministic contention stretch, seeded topology generators) contain
    no wall-clock at all. AND — within the fresh file alone — three shape
    checks: a 1000-node row must be present and safe (the tentpole scale
    claim), the grid rows' hop counts at alpha=2 must grow strictly
    monotonically with the diameter, and every row's hops must stay within
    [D, 8*D] — the O(D*F_ack) shape at generator scale is an acceptance
    criterion, not just a baseline.

Rows present in only one file (e.g. --quick runs fewer B5 cases) are
skipped. Exit 0 = within tolerance, 1 = regression (offenders listed).
"""

import json
import sys

TOLERANCE = 0.30


def table(bench, exp_id):
    for entry in bench["experiments"]:
        if entry["id"] == exp_id:
            return entry["table"]
    return None


def rows_by_key(tab, key_columns):
    cols = tab["columns"]
    idx = [cols.index(c) for c in key_columns]
    return {tuple(row[i] for i in idx): row for row in tab["rows"]}


def cell(tab, row, column):
    return row[tab["columns"].index(column)]


def check_ratio(failures, label, base_cell, fresh_cell, higher_is_better):
    base, fresh = float(base_cell), float(fresh_cell)
    if base <= 0:
        return
    ratio = fresh / base
    # For throughput (higher better) flag drops; for latency (lower better)
    # flag rises. Improvements never fail the gate.
    bad = ratio < 1 - TOLERANCE if higher_is_better else ratio > 1 + TOLERANCE
    if bad:
        failures.append(
            f"{label}: {fresh:.0f} vs baseline {base:.0f} "
            f"({100 * (ratio - 1):+.1f}%, tolerance +/-{100 * TOLERANCE:.0f}%)"
        )


def main():
    baseline = json.load(open(sys.argv[1]))
    fresh = json.load(open(sys.argv[2]))
    failures = []

    b5_base, b5_fresh = table(baseline, "B5"), table(fresh, "B5")
    if b5_base and b5_fresh:
        base_rows = rows_by_key(b5_base, ["n", "crashes"])
        fresh_rows = rows_by_key(b5_fresh, ["n", "crashes"])
        for key in sorted(set(base_rows) & set(fresh_rows)):
            label = f"B5 n={key[0]} crashes={key[1]}"
            states_base = cell(b5_base, base_rows[key], "states")
            states_fresh = cell(b5_fresh, fresh_rows[key], "states")
            if states_base != states_fresh:
                failures.append(
                    f"{label}: states {states_fresh} vs baseline "
                    f"{states_base} (must match exactly)"
                )
            if int(states_base) >= 10_000:
                check_ratio(
                    failures,
                    f"{label} states/sec",
                    cell(b5_base, base_rows[key], "states/sec"),
                    cell(b5_fresh, fresh_rows[key], "states/sec"),
                    higher_is_better=True,
                )
    else:
        failures.append("B5 table missing from baseline or fresh run")

    b7_base, b7_fresh = table(baseline, "B7"), table(fresh, "B7")
    if b7_base and b7_fresh:
        base_rows = rows_by_key(b7_base, ["primitive"])
        fresh_rows = rows_by_key(b7_fresh, ["primitive"])
        for key in sorted(set(base_rows) & set(fresh_rows)):
            check_ratio(
                failures,
                f"B7 {key[0]} ns/state",
                cell(b7_base, base_rows[key], "ns/state"),
                cell(b7_fresh, fresh_rows[key], "ns/state"),
                higher_is_better=False,
            )
    else:
        failures.append("B7 table missing from baseline or fresh run")

    b9_base, b9_fresh = table(baseline, "B9"), table(fresh, "B9")
    if b9_base and b9_fresh:
        base_rows = rows_by_key(b9_base, ["n", "loss width"])
        fresh_rows = rows_by_key(b9_fresh, ["n", "loss width"])
        for key in sorted(set(base_rows) & set(fresh_rows)):
            label = f"B9 n={key[0]} loss_width={key[1]}"
            for column in ("committed", "p50", "p99", "safe"):
                base_cell = cell(b9_base, base_rows[key], column)
                fresh_cell = cell(b9_fresh, fresh_rows[key], column)
                if base_cell != fresh_cell:
                    failures.append(
                        f"{label}: {column} {fresh_cell} vs baseline "
                        f"{base_cell} (must match exactly)"
                    )
            check_ratio(
                failures,
                f"{label} cmds/sec",
                cell(b9_base, base_rows[key], "cmds/sec"),
                cell(b9_fresh, fresh_rows[key], "cmds/sec"),
                higher_is_better=True,
            )
    else:
        failures.append("B9 table missing from baseline or fresh run")

    b10_base, b10_fresh = table(baseline, "B10"), table(fresh, "B10")
    if b10_base and b10_fresh:
        base_rows = rows_by_key(b10_base, ["n", "byz"])
        fresh_rows = rows_by_key(b10_fresh, ["n", "byz"])
        for key in sorted(set(base_rows) & set(fresh_rows)):
            label = f"B10 n={key[0]} byz={key[1]}"
            for column in (
                "latency",
                "broadcasts",
                "suppressed",
                "substituted",
                "decided",
                "safe",
            ):
                base_cell = cell(b10_base, base_rows[key], column)
                fresh_cell = cell(b10_fresh, fresh_rows[key], column)
                if base_cell != fresh_cell:
                    failures.append(
                        f"{label}: {column} {fresh_cell} vs baseline "
                        f"{base_cell} (must match exactly)"
                    )
    else:
        failures.append("B10 table missing from baseline or fresh run")

    b11_base, b11_fresh = table(baseline, "B11"), table(fresh, "B11")
    if b11_base and b11_fresh:
        base_rows = rows_by_key(b11_base, ["scenario", "patience"])
        fresh_rows = rows_by_key(b11_fresh, ["scenario", "patience"])
        for key in sorted(set(base_rows) & set(fresh_rows)):
            label = f"B11 scenario={key[0]} patience={key[1]}"
            for column in (
                "detect",
                "committed",
                "p50",
                "p99",
                "end_time",
                "safe",
            ):
                base_cell = cell(b11_base, base_rows[key], column)
                fresh_cell = cell(b11_fresh, fresh_rows[key], column)
                if base_cell != fresh_cell:
                    failures.append(
                        f"{label}: {column} {fresh_cell} vs baseline "
                        f"{base_cell} (must match exactly)"
                    )
    else:
        failures.append("B11 table missing from baseline or fresh run")

    b12_base, b12_fresh = table(baseline, "B12"), table(fresh, "B12")
    if b12_base and b12_fresh:
        base_rows = rows_by_key(b12_base, ["algo", "topo"])
        fresh_rows = rows_by_key(b12_fresh, ["algo", "topo"])
        for key in sorted(set(base_rows) & set(fresh_rows)):
            label = f"B12 algo={key[0]} topo={key[1]}"
            for column in b12_base["columns"]:
                base_cell = cell(b12_base, base_rows[key], column)
                fresh_cell = cell(b12_fresh, fresh_rows[key], column)
                if base_cell != fresh_cell:
                    failures.append(
                        f"{label}: {column} {fresh_cell} vs baseline "
                        f"{base_cell} (must match exactly)"
                    )
        # Shape check on the fresh run alone: wpaxos critical-path hops
        # strictly increase with line diameter.
        line_rows = sorted(
            (
                int(cell(b12_fresh, row, "D")),
                int(cell(b12_fresh, row, "hops")),
                key[1],
            )
            for key, row in fresh_rows.items()
            if key[0] == "wpaxos" and key[1].startswith("line:")
        )
        for (d1, h1, t1), (d2, h2, t2) in zip(line_rows, line_rows[1:]):
            if d2 > d1 and h2 <= h1:
                failures.append(
                    f"B12 hops not monotone in diameter: {t1} (D={d1}) has "
                    f"{h1} hops but {t2} (D={d2}) has {h2}"
                )
    else:
        failures.append("B12 table missing from baseline or fresh run")

    b13_base, b13_fresh = table(baseline, "B13"), table(fresh, "B13")
    if b13_base and b13_fresh:
        base_rows = rows_by_key(b13_base, ["G"])
        fresh_rows = rows_by_key(b13_fresh, ["G"])
        for key in sorted(set(base_rows) & set(fresh_rows), key=lambda k: int(k[0])):
            label = f"B13 G={key[0]}"
            for column in (
                "committed",
                "batches",
                "last_commit",
                "end_time",
                "p50",
                "p99",
                "safe",
            ):
                base_cell = cell(b13_base, base_rows[key], column)
                fresh_cell = cell(b13_fresh, fresh_rows[key], column)
                if base_cell != fresh_cell:
                    failures.append(
                        f"{label}: {column} {fresh_cell} vs baseline "
                        f"{base_cell} (must match exactly)"
                    )
            check_ratio(
                failures,
                f"{label} cmds/sec",
                cell(b13_base, base_rows[key], "cmds/sec"),
                cell(b13_fresh, fresh_rows[key], "cmds/sec"),
                higher_is_better=True,
            )
        # Shape check on the fresh run alone: the deterministic aggregate
        # throughput must actually scale with the group count, or sharding
        # has regressed to time-slicing the MAC channel.
        if ("1",) in fresh_rows and ("4",) in fresh_rows:
            kt1 = float(cell(b13_fresh, fresh_rows[("1",)], "cmds/ktick"))
            kt4 = float(cell(b13_fresh, fresh_rows[("4",)], "cmds/ktick"))
            if kt1 > 0 and kt4 < 2.5 * kt1:
                failures.append(
                    f"B13 scaling slope collapsed: G=4 cmds/ktick {kt4:.2f} "
                    f"is only {kt4 / kt1:.2f}x G=1 ({kt1:.2f}), need >= 2.5x"
                )
        else:
            failures.append("B13 fresh run missing the G=1 or G=4 row")
    else:
        failures.append("B13 table missing from baseline or fresh run")

    b14_base, b14_fresh = table(baseline, "B14"), table(fresh, "B14")
    if b14_base and b14_fresh:
        base_rows = rows_by_key(b14_base, ["topo", "alpha"])
        fresh_rows = rows_by_key(b14_fresh, ["topo", "alpha"])
        for key in sorted(set(base_rows) & set(fresh_rows)):
            label = f"B14 topo={key[0]} alpha={key[1]}"
            for column in b14_base["columns"]:
                base_cell = cell(b14_base, base_rows[key], column)
                fresh_cell = cell(b14_fresh, fresh_rows[key], column)
                if base_cell != fresh_cell:
                    failures.append(
                        f"{label}: {column} {fresh_cell} vs baseline "
                        f"{base_cell} (must match exactly)"
                    )
        # Shape checks on the fresh run alone. (a) The tentpole scale
        # claim: a 1000-node topology must run to a safe decision.
        if not any(
            cell(b14_fresh, row, "n") == "1000"
            and cell(b14_fresh, row, "safe") == "yes"
            for row in fresh_rows.values()
        ):
            failures.append("B14 fresh run has no safe 1000-node row")
        # (b) Grid hop counts at alpha=2 strictly increase with diameter,
        # and (c) every row's hops stay within [D, 8*D]: the decide path
        # must cross the diameter but only a constant factor more often.
        grid_rows = sorted(
            (
                int(cell(b14_fresh, row, "D")),
                int(cell(b14_fresh, row, "hops")),
                key[0],
            )
            for key, row in fresh_rows.items()
            if key[0].startswith("grid:") and key[1] == "2"
        )
        for (d1, h1, t1), (d2, h2, t2) in zip(grid_rows, grid_rows[1:]):
            if d2 > d1 and h2 <= h1:
                failures.append(
                    f"B14 hops not monotone in diameter: {t1} (D={d1}) has "
                    f"{h1} hops but {t2} (D={d2}) has {h2}"
                )
        for key, row in fresh_rows.items():
            d = int(cell(b14_fresh, row, "D"))
            hops = int(cell(b14_fresh, row, "hops"))
            if not d <= hops <= 8 * d:
                failures.append(
                    f"B14 topo={key[0]} alpha={key[1]}: hops {hops} outside "
                    f"[D, 8*D] = [{d}, {8 * d}]"
                )
    else:
        failures.append("B14 table missing from baseline or fresh run")

    if failures:
        print("perf gate FAILED:")
        for failure in failures:
            print(f"  {failure}")
        return 1
    print(
        "perf gate passed (B5 states + B9 committed/p50/p99 + all B10, "
        "B11, B12 and B14 cells + B13 deterministic cells exact, B12/B14 "
        "hops monotone in D, B14 1000-node row safe with hops in [D, 8D], "
        "B13 G=4 >= 2.5x G=1 on cmds/ktick, timing within +/-30%)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
