(* The experiment harness: one table per paper claim (see DESIGN.md's
   experiment index, E1-E9), plus bechamel micro-benchmarks of the
   simulator core (B1-B4).

     dune exec bench/main.exe                 # everything
     dune exec bench/main.exe -- --only E3    # one experiment
     dune exec bench/main.exe -- --quick      # reduced sweeps
     dune exec bench/main.exe -- --skip-bechamel

   The paper is theory: its "evaluation" is a set of theorems whose figures
   are constructions. Each experiment reruns the construction and prints a
   table certifying the claimed *shape* (who wins, what scales with what,
   where the violation appears); EXPERIMENTS.md records these tables against
   the paper's claims.

   Every run also writes BENCH.json in the current directory: a
   machine-readable mirror of each printed table (same cells, via
   Stats.Table.to_json) plus attached metadata and raw measurement series
   for the sweeps that have them — the per-PR perf-trajectory record
   (BENCH_PR3.json is the first committed snapshot). *)

let quick = ref false

let every_row fmt = Printf.sprintf fmt

let latency_of (result : Consensus.Runner.result) =
  match result.decision_time with
  | Some t -> string_of_int t
  | None -> "never"

let ok_of (result : Consensus.Runner.result) =
  if Consensus.Checker.ok result.report then "yes" else "VIOLATED"

(* ------------------------------------------------------------------ *)
(* E1 - Thm 4.1: two-phase is O(F_ack) in single hop, no knowledge of n *)
(* ------------------------------------------------------------------ *)

let e1 () =
  let table =
    Amac.Stats.Table.create
      ~title:
        "E1 (Thm 4.1) two-phase consensus: latency vs n, single hop, F_ack=8"
      ~columns:
        [ "n"; "sync"; "random (5 seeds)"; "max-delay"; "<=3*F_ack"; "ok" ]
  in
  let fack = 8 in
  Amac.Stats.Table.set_meta table "fack" (string_of_int fack);
  Amac.Stats.Table.set_meta table "seeds" "1..5";
  let sizes =
    if !quick then [ 2; 8; 32 ] else [ 2; 4; 8; 16; 32; 64; 128; 256 ]
  in
  List.iter
    (fun n ->
      let topology = Amac.Topology.clique n in
      let inputs = Consensus.Runner.inputs_alternating ~n in
      let run scheduler =
        Consensus.Runner.run Consensus.Two_phase.algorithm ~give_n:false
          ~topology ~scheduler ~inputs
      in
      let sync = run Amac.Scheduler.synchronous in
      let maxd = run (Amac.Scheduler.max_delay ~fack) in
      let randoms =
        List.map
          (fun seed -> run (Amac.Scheduler.random (Amac.Rng.create seed) ~fack))
          [ 1; 2; 3; 4; 5 ]
      in
      let times =
        List.map
          (fun r -> float_of_int (Option.get r.Consensus.Runner.decision_time))
          randoms
      in
      let all_ok =
        List.for_all
          (fun r -> Consensus.Checker.ok r.Consensus.Runner.report)
          (sync :: maxd :: randoms)
      in
      let worst =
        max
          (int_of_float (Amac.Stats.maximum times))
          (Option.get maxd.decision_time)
      in
      Amac.Stats.Table.add_series table
        ~name:(every_row "random_latency_n%d" n)
        times;
      Amac.Stats.Table.add_row table
        [
          string_of_int n;
          latency_of sync;
          every_row "%.0f..%.0f" (Amac.Stats.minimum times)
            (Amac.Stats.maximum times);
          latency_of maxd;
          (if worst <= 3 * fack then "yes" else "NO");
          (if all_ok then "yes" else "VIOLATED");
        ])
    sizes;
  Amac.Stats.Table.add_note table
    "latency is flat in n and bounded by 3*F_ack = 24 (paper: O(F_ack));";
  Amac.Stats.Table.add_note table
    "the algorithm is never told n (impossible without acks, Abboud et al.).";
  table

(* ------------------------------------------------------------------ *)
(* E2 - Thm 4.6: wPAXOS is O(D * F_ack) in multihop networks           *)
(* ------------------------------------------------------------------ *)

let e2 () =
  let fack = 3 in
  let table =
    Amac.Stats.Table.create
      ~title:"E2 (Thm 4.6) wPAXOS: latency vs diameter, F_ack=3"
      ~columns:[ "topology"; "n"; "D"; "latency"; "latency/(D*F_ack)"; "ok" ]
  in
  let cases =
    let lines = if !quick then [ 4; 16 ] else [ 2; 4; 8; 16; 32; 48 ] in
    List.map
      (fun d -> (Printf.sprintf "line:%d" (d + 1), Amac.Topology.line (d + 1)))
      lines
    @ [
        ("grid:5x5", Amac.Topology.grid ~width:5 ~height:5);
        ("grid:8x8", Amac.Topology.grid ~width:8 ~height:8);
        ("tree:31", Amac.Topology.binary_tree 31);
        ("ring:24", Amac.Topology.ring 24);
      ]
  in
  List.iter
    (fun (name, topology) ->
      let n = Amac.Topology.size topology in
      let d = Amac.Topology.diameter topology in
      let result =
        Consensus.Runner.run (Consensus.Wpaxos.make ()) ~topology
          ~scheduler:(Amac.Scheduler.fixed ~delay:fack)
          ~inputs:(Consensus.Runner.inputs_alternating ~n)
          ~max_time:5_000_000
      in
      let t = Option.get result.decision_time in
      Amac.Stats.Table.add_row table
        [
          name;
          string_of_int n;
          string_of_int d;
          string_of_int t;
          every_row "%.1f" (float_of_int t /. float_of_int (max 1 (d * fack)));
          ok_of result;
        ])
    cases;
  Amac.Stats.Table.add_note table
    "latency/(D*F_ack) stays a small constant as D grows: O(D*F_ack), \
     matching the Thm 3.10 lower bound up to a constant.";
  table

(* ------------------------------------------------------------------ *)
(* E3 - Sec 4.2 motivation: wPAXOS vs naive flooding, fixed D, rising n *)
(* ------------------------------------------------------------------ *)

let e3 () =
  let fack = 2 and arm_len = 4 in
  let table =
    Amac.Stats.Table.create
      ~title:
        "E3 (Sec 4.2) latency on star-of-lines (D=8 fixed, n grows), F_ack=2"
      ~columns:[ "n"; "wPAXOS"; "flood-gather"; "flood-paxos"; "gather/wpaxos" ]
  in
  let arms_list = if !quick then [ 2; 8 ] else [ 2; 4; 8; 16; 32 ] in
  List.iter
    (fun arms ->
      let topology = Amac.Topology.star_of_lines ~arms ~arm_len in
      let n = Amac.Topology.size topology in
      let inputs = Consensus.Runner.inputs_alternating ~n in
      let scheduler = Amac.Scheduler.fixed ~delay:fack in
      let time algorithm =
        let result =
          Consensus.Runner.run algorithm ~topology ~scheduler ~inputs
            ~max_time:5_000_000
        in
        assert (Consensus.Checker.ok result.report);
        Option.get result.decision_time
      in
      let wp = time (Consensus.Wpaxos.make ()) in
      let fg = time (Consensus.Flood_gather.make ()) in
      let fp = time (Consensus.Flood_paxos.make ()) in
      Amac.Stats.Table.add_row table
        [
          string_of_int n;
          string_of_int wp;
          string_of_int fg;
          string_of_int fp;
          every_row "%.1fx" (float_of_int fg /. float_of_int wp);
        ])
    arms_list;
  Amac.Stats.Table.add_note table
    "wPAXOS stays ~flat (O(D*F_ack)); both flooding baselines grow with n \
     (Theta(n*F_ack) hub bottleneck) - the crossover the paper predicts.";
  table

(* ------------------------------------------------------------------ *)
(* E4 - Thm 3.10: no decision before floor(D/2)*F_ack                  *)
(* ------------------------------------------------------------------ *)

let e4 () =
  let table =
    Amac.Stats.Table.create
      ~title:
        "E4 (Thm 3.10) lines under the max-delay adversary: causal bound vs \
         wPAXOS"
      ~columns:
        [
          "D";
          "F_ack";
          "bound=floor(D/2)*F";
          "earliest cross-influence";
          "first decision";
          "last decision";
          "last/bound";
        ]
  in
  let cases =
    if !quick then [ (4, 3); (16, 2) ]
    else [ (4, 3); (8, 2); (8, 5); (16, 2); (24, 3); (32, 2) ]
  in
  List.iter
    (fun (diameter, fack) ->
      let a =
        Lowerbound.Partition.analyze (Consensus.Wpaxos.make ()) ~diameter ~fack
      in
      Amac.Stats.Table.add_row table
        [
          string_of_int diameter;
          string_of_int fack;
          string_of_int a.lower_bound;
          string_of_int a.endpoint_cross_influence;
          string_of_int a.first_decision;
          string_of_int a.last_decision;
          every_row "%.1f" a.ratio;
        ])
    cases;
  Amac.Stats.Table.add_note table
    "cross-influence = bound exactly (information moves one hop per F_ack);";
  Amac.Stats.Table.add_note table
    "wPAXOS decides after the bound with a ~constant factor: both bounds are \
     tight.";
  table

(* ------------------------------------------------------------------ *)
(* E5 - Thm 3.3 / Fig 1: anonymity makes consensus impossible           *)
(* ------------------------------------------------------------------ *)

let e5 () =
  let table =
    Amac.Stats.Table.create
      ~title:"E5 (Thm 3.3, Fig 1) anonymous min-flooding on networks A and B"
      ~columns:
        [
          "D";
          "n'";
          "ok on B (both inputs)";
          "B decide time";
          "A0 decides";
          "A1 decides";
          "agreement on A";
        ]
  in
  let cases =
    if !quick then [ (10, 24) ] else [ (10, 24); (12, 45); (16, 60) ]
  in
  List.iter
    (fun (diameter, n) ->
      let f = Lowerbound.Indist.fig1_demo ~diameter ~n in
      Amac.Stats.Table.add_row table
        [
          string_of_int diameter;
          string_of_int (Amac.Topology.size f.instance.network_a);
          (if f.b_ok then "yes" else "NO");
          every_row "%d/%d" f.b_decide_time_0 f.b_decide_time_1;
          String.concat "," (List.map string_of_int f.a0_values);
          String.concat "," (List.map string_of_int f.a1_values);
          (if f.a_report.agreement then "held?!" else "VIOLATED");
        ])
    cases;
  Amac.Stats.Table.add_note table
    "same algorithm, same knowledge (n', D): correct on B, split-brained on \
     A - anonymity is fatal (Claim 3.4 sizes/diameters verified in tests).";
  table

(* ------------------------------------------------------------------ *)
(* E6 - Thm 3.9 / Fig 2: no knowledge of n is fatal in multihop         *)
(* ------------------------------------------------------------------ *)

let e6 () =
  let table =
    Amac.Stats.Table.create
      ~title:"E6 (Thm 3.9, Fig 2) id-using, D-knowing, n-less flooding on K_D"
      ~columns:
        [
          "D";
          "|K_D|";
          "ok on line L_D";
          "L1 decides";
          "L2 decides";
          "agreement on K_D";
        ]
  in
  let cases = if !quick then [ 6 ] else [ 3; 6; 10; 14 ] in
  List.iter
    (fun diameter ->
      let k = Lowerbound.Indist.kd_demo ~diameter in
      Amac.Stats.Table.add_row table
        [
          string_of_int diameter;
          string_of_int (Amac.Topology.size k.kd.topology);
          (if k.line_ok then "yes" else "NO");
          String.concat "," (List.map string_of_int k.l1_values);
          String.concat "," (List.map string_of_int k.l2_values);
          (if k.kd_report.agreement then "held?!" else "VIOLATED");
        ])
    cases;
  Amac.Stats.Table.add_note table
    "K_D has diameter D, same as the standalone line the victim is correct \
     on; with the endpoint silenced, both L_D copies decide their own value.";
  table

(* ------------------------------------------------------------------ *)
(* E7 - Thm 3.2 / Sec 3.1: FLP in the abstract MAC layer model          *)
(* ------------------------------------------------------------------ *)

let e7 () =
  let table =
    Amac.Stats.Table.create
      ~title:"E7 (Thm 3.2) valid-step exploration of two-phase on the 3-clique"
      ~columns:[ "inputs"; "initial valency"; "note" ]
  in
  let verdict inputs =
    let t =
      Lowerbound.Bivalence.create Consensus.Two_phase.algorithm
        ~topology:(Amac.Topology.clique 3)
        ~inputs
    in
    match Lowerbound.Bivalence.initial_verdict t with
    | Lowerbound.Bivalence.Univalent v -> Printf.sprintf "univalent(%d)" v
    | Lowerbound.Bivalence.Bivalent -> "bivalent"
    | Lowerbound.Bivalence.Blocked -> "blocked"
  in
  List.iter
    (fun inputs ->
      let label =
        String.concat "" (Array.to_list (Array.map string_of_int inputs))
      in
      let note =
        if Array.for_all (fun v -> v = inputs.(0)) inputs then
          "unanimity: validity pins the outcome"
        else "mixed inputs: bivalent initial configuration exists (FLP Lem 2)"
      in
      Amac.Stats.Table.add_row table [ label; verdict inputs; note ])
    [ [| 0; 0; 0 |]; [| 0; 0; 1 |]; [| 0; 1; 1 |]; [| 1; 1; 1 |] ];
  let t =
    Lowerbound.Bivalence.create Consensus.Two_phase.algorithm
      ~topology:(Amac.Topology.clique 3)
      ~inputs:[| 0; 1; 1 |]
  in
  let stats = Lowerbound.Bivalence.explore t ~max_depth:8 in
  Amac.Stats.Table.add_note table
    (every_row
       "crash-free exploration: %d distinct configs to depth 8; bivalence \
        persists to depth %d then dies (two-phase terminates without crashes)"
       stats.total_configs stats.deepest_bivalent);
  (match
     Lowerbound.Bivalence.find_termination_violation t ~max_crashes:1
       ~max_depth:25 ()
   with
  | Some schedule ->
      Amac.Stats.Table.add_note table
        (every_row
           "1 crash: found a %d-step schedule after which a live node waits \
            forever - termination dies (Thm 3.2)"
           (List.length schedule))
  | None -> Amac.Stats.Table.add_note table "1 crash: no violation found (?!)");
  (match
     Lowerbound.Bivalence.find_agreement_violation t ~max_crashes:1
       ~max_depth:20
       ~max_configs:(if !quick then 20_000 else 100_000)
       ()
   with
  | None ->
      Amac.Stats.Table.add_note table
        "1 crash: no agreement violation in bounded-exhaustive search - the \
         crash kills liveness, not safety"
  | Some _ ->
      Amac.Stats.Table.add_note table "1 crash: AGREEMENT VIOLATION (bug!)");
  table

(* ------------------------------------------------------------------ *)
(* E8 - model constraint + Lemma 4.4: O(1) ids/message, poly(n) tags    *)
(* ------------------------------------------------------------------ *)

let e8 () =
  let table =
    Amac.Stats.Table.create
      ~title:"E8 (Lemma 4.4) wPAXOS message and tag bounds vs n"
      ~columns:
        [ "topology"; "n"; "max ids/message"; "max tag"; "broadcasts"; "ok" ]
  in
  let cases =
    let base =
      [
        ("line:9", Amac.Topology.line 9);
        ("grid:4x4", Amac.Topology.grid ~width:4 ~height:4);
        ( "random:24",
          Amac.Topology.random_connected (Amac.Rng.create 5) ~n:24
            ~extra_edges:8 );
      ]
    in
    if !quick then base
    else
      base
      @ [
          ( "random:48",
            Amac.Topology.random_connected (Amac.Rng.create 6) ~n:48
              ~extra_edges:16 );
          ( "star-of-lines:12x4",
            Amac.Topology.star_of_lines ~arms:12 ~arm_len:4 );
        ]
  in
  List.iter
    (fun (name, topology) ->
      let n = Amac.Topology.size topology in
      let instrument = Consensus.Wpaxos.Instrument.create () in
      let result =
        Consensus.Runner.run
          (Consensus.Wpaxos.make ~instrument ())
          ~topology
          ~scheduler:(Amac.Scheduler.random (Amac.Rng.create 13) ~fack:4)
          ~inputs:(Consensus.Runner.inputs_alternating ~n)
          ~max_time:5_000_000
      in
      Amac.Stats.Table.add_row table
        [
          name;
          string_of_int n;
          string_of_int result.outcome.max_ids_per_message;
          string_of_int (Consensus.Wpaxos.Instrument.max_tag instrument);
          string_of_int result.outcome.broadcasts;
          ok_of result;
        ])
    cases;
  Amac.Stats.Table.add_note table
    "ids per message is a constant (<=12) independent of n; tags stay far \
     below the poly(n) ceiling of Lemma 4.4.";
  table

(* ------------------------------------------------------------------ *)
(* E9 - ablation: the stabilizing services are the contribution         *)
(* ------------------------------------------------------------------ *)

let e9 () =
  let table =
    Amac.Stats.Table.create
      ~title:
        "E9 (ablation) star-of-lines 8x4 (n=33, D=8), F_ack=2: what each \
         wPAXOS service buys"
      ~columns:[ "variant"; "latency"; "broadcasts"; "ok" ]
  in
  let topology = Amac.Topology.star_of_lines ~arms:8 ~arm_len:4 in
  let n = Amac.Topology.size topology in
  let inputs = Consensus.Runner.inputs_alternating ~n in
  let measure name algorithm =
    let r =
      Consensus.Runner.run algorithm ~topology
        ~scheduler:(Amac.Scheduler.fixed ~delay:2)
        ~inputs ~max_time:5_000_000
    in
    Amac.Stats.Table.add_row table
      [ name; latency_of r; string_of_int r.outcome.broadcasts; ok_of r ]
  in
  measure "wPAXOS (full)" (Consensus.Wpaxos.make ());
  measure "wPAXOS, no leader priority"
    (Consensus.Wpaxos.make ~leader_priority:false ());
  measure "wPAXOS, no aggregation" (Consensus.Wpaxos.make ~aggregate:false ());
  measure "flood-paxos (no trees at all)" (Consensus.Flood_paxos.make ());
  Amac.Stats.Table.add_note table
    "every variant stays safe; removing services costs time/messages, \
     removing the trees costs the O(D*F_ack) bound itself.";
  table

(* ------------------------------------------------------------------ *)
(* E10 - future work 3: randomness circumvents the crash impossibility  *)
(* ------------------------------------------------------------------ *)

let e10 () =
  let table =
    Amac.Stats.Table.create
      ~title:
        "E10 (Sec 5, direction 3) crashes: deterministic two-phase vs          randomized Ben-Or, F_ack=4"
      ~columns:
        [ "n"; "crashes"; "two-phase"; "ben-or (latency, 5 seeds)"; "ben-or ok" ]
  in
  Amac.Stats.Table.set_meta table "fack" "4";
  Amac.Stats.Table.set_meta table "seeds" "1..5";
  let cases =
    [ (3, [ (2, 5) ]); (5, [ (1, 0); (3, 6) ]); (7, [ (0, 1); (2, 4); (5, 9) ]);
      (9, [ (0, 1); (1, 5); (2, 9); (3, 13) ]) ]
  in
  List.iter
    (fun (n, crashes) ->
      let inputs = Consensus.Runner.inputs_alternating ~n in
      let two_phase =
        Consensus.Runner.run Consensus.Two_phase.algorithm
          ~topology:(Amac.Topology.clique n)
          ~scheduler:(Amac.Scheduler.fixed ~delay:4)
          ~inputs ~crashes ~max_time:2_000
      in
      let tp_verdict =
        if two_phase.report.Consensus.Checker.termination then "decided"
        else if Consensus.Checker.safe two_phase.report then
          "BLOCKED (safe, no termination)"
        else "UNSAFE"
      in
      let seeds = [ 1; 2; 3; 4; 5 ] in
      let results =
        List.map
          (fun seed ->
            Consensus.Runner.run
              (Consensus.Ben_or.make ~seed ())
              ~topology:(Amac.Topology.clique n)
              ~scheduler:(Amac.Scheduler.random (Amac.Rng.create seed) ~fack:4)
              ~inputs ~crashes ~max_time:200_000)
          seeds
      in
      let times =
        List.filter_map
          (fun r -> Option.map float_of_int r.Consensus.Runner.decision_time)
          results
      in
      let all_ok =
        List.for_all
          (fun r -> Consensus.Checker.ok r.Consensus.Runner.report)
          results
      in
      Amac.Stats.Table.add_series table
        ~name:(every_row "ben_or_latency_n%d" n)
        times;
      Amac.Stats.Table.add_row table
        [
          string_of_int n;
          string_of_int (List.length crashes);
          tp_verdict;
          (if times = [] then "-"
           else
             every_row "%.0f..%.0f" (Amac.Stats.minimum times)
               (Amac.Stats.maximum times));
          (if all_ok then "yes (all seeds)" else "VIOLATED");
        ])
    cases;
  Amac.Stats.Table.add_note table
    "two-phase is safe but blocks forever under the crash (Thm 3.2 says any      deterministic algorithm must); Ben-Or decides under any minority of      crashes with probability 1.";
  table

(* ------------------------------------------------------------------ *)
(* E11 - future work 1: unreliable links                                *)
(* ------------------------------------------------------------------ *)

let e11 () =
  let table =
    Amac.Stats.Table.create
      ~title:
        "E11 (Sec 5, direction 1) line-12 + 4 flaky chords, F_ack=4, 12          seeds per row"
      ~columns:
        [ "p(deliver)"; "algorithm"; "safe"; "fully ok"; "median latency" ]
  in
  let n = 12 in
  let topology = Amac.Topology.line n in
  let chords = Amac.Topology.of_edges ~n [ (0, 6); (2, 9); (4, 11); (1, 7) ] in
  let seeds = List.init 12 (fun i -> i + 1) in
  let sweep ~p name algorithm_of =
    let safe = ref 0 and ok = ref 0 and times = ref [] in
    List.iter
      (fun seed ->
        let scheduler =
          Amac.Scheduler.bernoulli_unreliable
            (Amac.Rng.create (seed + 40))
            ~p
            (Amac.Scheduler.random (Amac.Rng.create seed) ~fack:4)
        in
        let result =
          Consensus.Runner.run (algorithm_of seed) ~topology ~scheduler
            ~unreliable:chords
            ~inputs:(Consensus.Runner.inputs_alternating ~n)
            ~max_time:100_000
        in
        if Consensus.Checker.safe result.report then incr safe;
        if Consensus.Checker.ok result.report then begin
          incr ok;
          times :=
            float_of_int (Option.get result.decision_time) :: !times
        end)
      seeds;
    Amac.Stats.Table.add_row table
      [
        every_row "%.1f" p;
        name;
        every_row "%d/12" !safe;
        every_row "%d/12" !ok;
        (if !times = [] then "-"
         else every_row "%.0f" (Amac.Stats.median !times));
      ]
  in
  List.iter
    (fun p ->
      sweep ~p "wPAXOS" (fun _ -> Consensus.Wpaxos.make ());
      sweep ~p "flood-gather" (fun _ -> Consensus.Flood_gather.make ()))
    [ 0.0; 0.3; 0.7 ];
  Amac.Stats.Table.add_note table
    "safety survives unconditionally (the open question in Sec 5 is about      optimizing liveness/time, not safety); flood-gather's liveness is      unaffected because extra deliveries are pure information gain.";
  table

(* ------------------------------------------------------------------ *)
(* E12 - Sec 2 open problem: the cost of bit-by-bit multi-valued consensus *)
(* ------------------------------------------------------------------ *)

let e12 () =
  let table =
    Amac.Stats.Table.create
      ~title:
        "E12 (Sec 2 open problem) multi-valued consensus by bit-by-bit          binary consensus, 6-clique, F_ack=5"
      ~columns:
        [ "bits"; "value space"; "latency (median of 5 seeds)"; "latency/bits"; "ok" ]
  in
  let n = 6 in
  let seeds = [ 1; 2; 3; 4; 5 ] in
  Amac.Stats.Table.set_meta table "fack" "5";
  Amac.Stats.Table.set_meta table "n" (string_of_int n);
  Amac.Stats.Table.set_meta table "seeds" "1..5";
  List.iter
    (fun bits ->
      let algorithm =
        Consensus.Multi_value.make ~bits Consensus.Two_phase.algorithm
      in
      let results =
        List.map
          (fun seed ->
            let inputs =
              Array.init n (fun i ->
                  ((i * 131) + (seed * 17)) mod (1 lsl bits))
            in
            Consensus.Runner.run algorithm ~give_n:false
              ~topology:(Amac.Topology.clique n)
              ~scheduler:(Amac.Scheduler.random (Amac.Rng.create seed) ~fack:5)
              ~inputs ~max_time:1_000_000)
          seeds
      in
      let all_ok =
        List.for_all
          (fun r -> Consensus.Checker.ok r.Consensus.Runner.report)
          results
      in
      let times =
        List.map
          (fun r -> float_of_int (Option.get r.Consensus.Runner.decision_time))
          results
      in
      let median = Amac.Stats.median times in
      Amac.Stats.Table.add_series table
        ~name:(every_row "latency_bits%d" bits)
        times;
      Amac.Stats.Table.add_row table
        [
          string_of_int bits;
          string_of_int (1 lsl bits);
          every_row "%.0f" median;
          every_row "%.1f" (median /. float_of_int bits);
          (if all_ok then "yes" else "VIOLATED");
        ])
    [ 1; 2; 4; 8; 12 ];
  Amac.Stats.Table.add_note table
    "latency is linear in the value width (latency/bits ~constant): the      baseline reduction costs Theta(log|V|) binary instances, which is the      inefficiency the paper's open problem asks to beat.";
  table

(* ------------------------------------------------------------------ *)

let b5 () =
  let table =
    Amac.Stats.Table.create
      ~title:
        "B5 mcheck explorer throughput (two-phase, cliques, exhaustive up to      budgets)"
      ~columns:
        [
          "n";
          "crashes";
          "states";
          "transitions";
          "states/sec";
          "dedup hit rate";
          "sleep skips";
          "verdict";
        ]
  in
  let cases =
    if !quick then [ (2, 0); (2, 1); (3, 0) ] else [ (2, 0); (2, 1); (3, 0); (3, 1) ]
  in
  List.iter
    (fun (n, crash_budget) ->
      let config =
        { Mcheck.Explore.default with crash_budget; max_states = 5_000_000 }
      in
      let started = Sys.time () in
      let stats =
        Mcheck.Explore.explore config Consensus.Two_phase.algorithm
          ~topology:(Amac.Topology.clique n)
          ~inputs:(Consensus.Runner.inputs_alternating ~n)
      in
      let elapsed = Sys.time () -. started in
      let revisits = stats.Mcheck.Explore.dedup_hits in
      let lookups = stats.Mcheck.Explore.states + revisits in
      Amac.Stats.Table.add_row table
        [
          string_of_int n;
          string_of_int crash_budget;
          string_of_int stats.Mcheck.Explore.states;
          string_of_int stats.Mcheck.Explore.transitions;
          every_row "%.0f" (float_of_int stats.Mcheck.Explore.states /. max elapsed 1e-9);
          every_row "%.1f%%"
            (100.0 *. float_of_int revisits /. float_of_int (max lookups 1));
          string_of_int stats.Mcheck.Explore.sleep_skips;
          (if stats.Mcheck.Explore.violations <> [] then "VIOLATED"
           else if stats.Mcheck.Explore.truncated then "truncated"
           else "clean");
        ])
    cases;
  Amac.Stats.Table.add_note table
    "keying and snapshotting go through the algorithm's fingerprint/clone      hooks (B7 measures the primitives in isolation); dedup hit rate shows      how much of the interleaving space converges, sleep skips what the      partial-order reduction pruned before keying.";
  table

(* ------------------------------------------------------------------ *)

let b6 () =
  let table =
    Amac.Stats.Table.create
      ~title:
        "B6 hardened wpaxos under loss: decide latency and retransmissions      vs loss-window width, 5-clique, F_ack=4"
      ~columns:
        [
          "window";
          "latency (median of 5 seeds)";
          "broadcasts";
          "retransmissions";
          "all correct decided";
          "safe";
        ]
  in
  let n = 5 in
  let fack = 4 in
  let seeds = [ 1; 2; 3; 4; 5 ] in
  Amac.Stats.Table.set_meta table "fack" (string_of_int fack);
  Amac.Stats.Table.set_meta table "n" (string_of_int n);
  Amac.Stats.Table.set_meta table "seeds" "1..5";
  (* Width w isolates node 0 for [0, w) and drops one far edge for the
     second half of the window — the retransmission machinery must bridge
     both. w = 0 is the fault-free baseline that defines the
     retransmission count (broadcasts over baseline). *)
  let plan_of w =
    if w = 0 then []
    else
      [
        Fault.Partition { cut = [ 0 ]; from_ = 0; until = w };
        Fault.Link_drop { edge = (2, 3); from_ = w / 2; until = w };
      ]
  in
  let run ~seed ~w =
    Consensus.Runner.run
      (Consensus.Wpaxos.make ())
      ~topology:(Amac.Topology.clique n)
      ~scheduler:(Amac.Scheduler.random (Amac.Rng.create seed) ~fack)
      ~inputs:(Consensus.Runner.inputs_alternating ~n)
      ~faults:(plan_of w) ~max_time:1_000_000
  in
  let baseline_broadcasts =
    List.map
      (fun seed ->
        let r = run ~seed ~w:0 in
        float_of_int r.Consensus.Runner.degradation.Consensus.Checker.broadcasts)
      seeds
  in
  let baseline = Amac.Stats.median baseline_broadcasts in
  List.iter
    (fun w ->
      let results = List.map (fun seed -> run ~seed ~w) seeds in
      let degradations =
        List.map (fun r -> r.Consensus.Runner.degradation) results
      in
      let latencies =
        List.map
          (fun (d : Consensus.Checker.degradation) ->
            match d.max_decide_time with
            | Some t -> float_of_int t
            | None -> infinity)
          degradations
      in
      let broadcasts =
        Amac.Stats.median
          (List.map
             (fun (d : Consensus.Checker.degradation) ->
               float_of_int d.broadcasts)
             degradations)
      in
      let all_decided =
        List.for_all
          (fun (d : Consensus.Checker.degradation) ->
            d.decided_fraction >= 1.0)
          degradations
      in
      let safe =
        List.for_all
          (fun (d : Consensus.Checker.degradation) -> d.safe)
          degradations
      in
      (* never-decided seeds carry [infinity]; the raw series keeps only
         the finite measurements *)
      Amac.Stats.Table.add_series table
        ~name:(every_row "latency_w%d" w)
        (List.filter Float.is_finite latencies);
      Amac.Stats.Table.add_row table
        [
          (if w = 0 then "none" else Printf.sprintf "[0,%d)" w);
          every_row "%.0f" (Amac.Stats.median latencies);
          every_row "%.0f" broadcasts;
          every_row "%+.0f" (broadcasts -. baseline);
          (if all_decided then "yes" else "NO");
          (if safe then "yes" else "VIOLATED");
        ])
    [ 0; 5; 10; 20; 40 ];
  Amac.Stats.Table.add_note table
    "the run cannot finish on node 0 before its window closes, so latency      is bounded below by the width and lands a recovery-backoff delay      after it; every lossy cell pays a retransmission overhead (silence      re-elections, fresh-proposal backoff, decision refresh). Safety holds      in every cell unconditionally.";
  table

(* ------------------------------------------------------------------ *)

(* The four explorer primitives that B5's throughput decomposes into,
   timed in isolation over one sampled batch of reachable states. The
   marshal rows are the seed implementation (Marshal + MD5 keying,
   Marshal round-trip cloning); the fast rows are the hook-based paths
   the explorer now runs on. *)
let b7 () =
  let table =
    Amac.Stats.Table.create
      ~title:
        "B7 state keying/cloning primitives (two-phase 3-clique reachable      states, hooks vs Marshal)"
      ~columns:[ "primitive"; "ns/state"; "total"; "speedup" ]
  in
  let samples = if !quick then 10_000 else 50_000 in
  let reps = if !quick then 3 else 5 in
  let ss =
    Mcheck.Explore.sample
      { Mcheck.Explore.default with max_states = 5_000_000 }
      Consensus.Two_phase.algorithm
      ~topology:(Amac.Topology.clique 3)
      ~inputs:(Consensus.Runner.inputs_alternating ~n:3)
      ~max_samples:samples
  in
  let n = Mcheck.Explore.sample_size ss in
  Amac.Stats.Table.set_meta table "samples" (string_of_int n);
  Amac.Stats.Table.set_meta table "reps" (string_of_int reps);
  let time f =
    (* one warm-up pass so the first row doesn't pay cold caches *)
    ignore (f ss);
    let t0 = Unix.gettimeofday () in
    for _ = 1 to reps do
      ignore (f ss)
    done;
    (Unix.gettimeofday () -. t0) /. float_of_int reps
  in
  let rows =
    [
      ("key: fingerprint hook", time Mcheck.Explore.keys_fast, `Fast_key);
      ("key: Marshal+MD5", time Mcheck.Explore.keys_marshal, `Marshal_key);
      ("clone: hook deep-copy", time Mcheck.Explore.clones_fast, `Fast_clone);
      ("clone: Marshal round-trip", time Mcheck.Explore.clones_marshal, `Marshal_clone);
    ]
  in
  let baseline tag =
    let find t = List.find (fun (_, _, t') -> t' = t) rows in
    let (_, s, _) =
      match tag with
      | `Fast_key | `Marshal_key -> find `Marshal_key
      | `Fast_clone | `Marshal_clone -> find `Marshal_clone
    in
    s
  in
  List.iter
    (fun (name, secs, tag) ->
      Amac.Stats.Table.add_row table
        [
          name;
          every_row "%.0f" (secs *. 1e9 /. float_of_int n);
          every_row "%.3fs" secs;
          every_row "%.1fx" (baseline tag /. secs);
        ])
    rows;
  Amac.Stats.Table.add_note table
    "speedup is against the Marshal implementation of the same primitive.      The sampled set is keying-neutral (BFS keyed on the Marshal digest),      so both key columns hash identical state populations. The fast-key      pass blanks each configuration's per-node fingerprint cache first,      so it times the full structural hash; inside the explorer the cache      survives cloning and only mutated nodes re-hash (B5 shows the      amortized effect).";
  table

(* ------------------------------------------------------------------ *)

(* Fuzz campaign scaling across domains. The campaign is clean (the
   corrected two-phase algorithm has no reachable violation under this
   config), so every run does the full [iterations] of work; the outcome
   identity check exercises run_par's byte-determinism contract on the
   same wave machinery that reports early failures. *)
let b8 () =
  let table =
    Amac.Stats.Table.create
      ~title:
        "B8 fuzz campaign scaling (two-phase, clean campaign, domains      1/2/4)"
      ~columns:
        [ "jobs"; "wall"; "iters/sec"; "speedup"; "report identical" ]
  in
  let iterations = if !quick then 2_000 else 20_000 in
  let config =
    { Mcheck.Fuzz.default with iterations; kinds = [ Mcheck.Fuzz.Clique ] }
  in
  Amac.Stats.Table.set_meta table "iterations" (string_of_int iterations);
  Amac.Stats.Table.set_meta table "seed" "1";
  Amac.Stats.Table.set_meta table "host_cores"
    (string_of_int (Domain.recommended_domain_count ()));
  let render (o : Mcheck.Fuzz.outcome) =
    Printf.sprintf "iterations_run=%d %s" o.iterations_run
      (match o.counterexample with
      | None -> "clean"
      | Some cx -> Format.asprintf "%a" Mcheck.Fuzz.pp_counterexample cx)
  in
  let run jobs =
    let t0 = Unix.gettimeofday () in
    let outcome =
      Mcheck.Fuzz.run_par ~jobs config Consensus.Two_phase.algorithm ~seed:1
    in
    (Unix.gettimeofday () -. t0, render outcome)
  in
  let base_wall, base_report = run 1 in
  List.iter
    (fun jobs ->
      let wall, report = if jobs = 1 then (base_wall, base_report) else run jobs in
      Amac.Stats.Table.add_row table
        [
          string_of_int jobs;
          every_row "%.2fs" wall;
          every_row "%.0f" (float_of_int iterations /. wall);
          every_row "%.2fx" (base_wall /. wall);
          (if report = base_report then "yes" else "DIVERGED");
        ])
    [ 1; 2; 4 ];
  Amac.Stats.Table.add_note table
    "run_par scans iterations in contiguous waves and reports the minimum      failing iteration, so the outcome is byte-identical to the sequential      run at any job count; 'report identical' compares rendered outcomes      against jobs=1. Wall-clock speedup is bounded by host_cores: on a      single-core host the extra domains only measure coordination overhead.";
  table

(* ------------------------------------------------------------------ *)

(* The replicated log under load: committed commands/sec and commit-latency
   quantiles as replica count and loss-window width vary. Everything except
   the wall clock is deterministic from the fixed seed, so the gate pins
   committed/p50/p99 exactly and only cmds/sec carries tolerance. *)
let b9 () =
  let table =
    Amac.Stats.Table.create
      ~title:
        "B9 replicated log (lib/smr): throughput and commit latency vs      replicas and loss-window width (closed loop, bursty scheduler)"
      ~columns:
        [ "n"; "loss width"; "committed"; "cmds/sec"; "p50"; "p99"; "end_time"; "safe" ]
  in
  (* cmds is the same in quick and full runs: quick only trims the case
     list, so the surviving rows stay byte-comparable across modes (the
     gate intersects on (n, loss width)). *)
  let cmds = 300 in
  let seed = 42 in
  Amac.Stats.Table.set_meta table "cmds" (string_of_int cmds);
  Amac.Stats.Table.set_meta table "seed" (string_of_int seed);
  Amac.Stats.Table.set_meta table "scheduler" "bursty(40 fast/12 slow,fack=3)";
  let cases =
    if !quick then [ (3, 0); (5, 20) ]
    else
      List.concat_map
        (fun n -> List.map (fun w -> (n, w)) [ 0; 20; 60 ])
        [ 3; 5; 7 ]
  in
  List.iter
    (fun (n, width) ->
      (* Three staggered loss windows on distinct low-numbered edges (all
         present for any clique n >= 3), each [start, start+width). *)
      let faults =
        if width = 0 then []
        else
          [
            Fault.Link_drop { edge = (0, 1); from_ = 50; until = 50 + width };
            Fault.Link_drop { edge = (1, 2); from_ = 200; until = 200 + width };
            Fault.Link_drop { edge = (0, 2); from_ = 400; until = 400 + width };
          ]
      in
      let t0 = Unix.gettimeofday () in
      let r =
        Workload.run ~faults
          ~topology:(Amac.Topology.clique n)
          ~scheduler:(Amac.Scheduler.bursty ~fack:3 ~fast_len:40 ~slow_len:12)
          ~seed ~cmds
          ~mode:(Workload.Closed_loop { clients_per_node = 1 })
          ()
      in
      let wall = Unix.gettimeofday () -. t0 in
      let quant q =
        match Workload.latency r ~q with
        | Some l -> string_of_int l
        | None -> "-"
      in
      (* PR 8 satellite: the full sorted latency distributions (not just
         the printed p50/p99) land in BENCH.json, split into the queueing
         and replication phases Smr.propose_time separates. *)
      let series suffix values =
        Amac.Stats.Table.add_series table
          ~name:(every_row "%s_n%d_w%d" suffix n width)
          (List.map float_of_int (Array.to_list values))
      in
      series "commit_latency" r.Workload.latencies;
      series "queue_latency" r.Workload.queue_latencies;
      series "replicate_latency" r.Workload.replicate_latencies;
      Amac.Stats.Table.add_row table
        [
          string_of_int n;
          string_of_int width;
          string_of_int r.Workload.committed;
          every_row "%.0f" (float_of_int r.Workload.committed /. wall);
          quant 0.50;
          quant 0.99;
          string_of_int r.Workload.outcome.Amac.Engine.end_time;
          (if r.Workload.violations = [] then "yes" else "VIOLATED");
        ])
    cases;
  Amac.Stats.Table.add_note table
    "Closed loop: one client per replica, outstanding=1, next submit fired      from the previous command's apply callback. committed / p50 / p99 /      end_time are deterministic from the seed (the gate matches them      exactly); cmds/sec is committed divided by host wall-clock and      carries the usual +/-30% tolerance.";
  table

(* ------------------------------------------------------------------ *)

(* Sharded multi-group SMR: aggregate throughput and commit latency vs
   group count at fixed n. Each group's 3 voters are offset by the group
   index, so different groups elect different leaders and commit over
   different nodes' MAC channels — that per-node channel (one broadcast
   in flight, one ack per F_ack window) is the resource sharding
   multiplies. The offered load (Zipf-keyed, open loop, mean_gap 1,
   shard-affine clients) and the batch threshold are identical across
   rows; only G varies.

   Throughput is committed per 1000 simulated ticks measured against
   last_commit — the tick of the final first-apply. end_time would
   additionally count the post-commit quiescence tail (lease expiry,
   heartbeat settling), which is load-independent noise around the
   quantity under test. Everything except the wall clock is
   deterministic from the seed, so the gate pins committed /
   last_commit / end_time / p50 / p99 exactly — and because last_commit
   is exact, cmds/ktick is exact too, which is what the G=4 >= 2.5x G=1
   gate rule leans on. cmds/sec (wall) is informational, +/-30% as
   usual. *)
let b13 () =
  let table =
    Amac.Stats.Table.create
      ~title:
        "B13 sharded SMR (lib/shard): aggregate throughput and commit      latency vs group count (open loop, zipf keys, batch=8)"
      ~columns:
        [
          "G"; "committed"; "batches"; "last_commit"; "end_time"; "cmds/ktick";
          "cmds/sec"; "p50"; "p99"; "safe";
        ]
  in
  let n = 8 in
  (* Same cmds in quick and full mode: the gate exact-matches rows by G
     across snapshots, so a quick run must produce the same cells as the
     full baseline for the G cases it keeps. The runs are milliseconds
     each — quick only trims the group-count sweep. *)
  let cmds = 3200 in
  let batch = 8 in
  let seed = 42 in
  Amac.Stats.Table.set_meta table "n" (string_of_int n);
  Amac.Stats.Table.set_meta table "cmds" (string_of_int cmds);
  Amac.Stats.Table.set_meta table "batch" (string_of_int batch);
  Amac.Stats.Table.set_meta table "seed" (string_of_int seed);
  Amac.Stats.Table.set_meta table "scheduler" "bursty(40 fast/12 slow,fack=3)";
  let cases = if !quick then [ 1; 4 ] else [ 1; 2; 4; 8 ] in
  List.iter
    (fun groups ->
      let members_of g = [ g mod n; (g + 1) mod n; (g + 2) mod n ] in
      let t0 = Unix.gettimeofday () in
      let r =
        Shard_workload.run
          ~topology:(Amac.Topology.clique n)
          ~scheduler:(Amac.Scheduler.bursty ~fack:3 ~fast_len:40 ~slow_len:12)
          ~seed ~cmds ~groups ~batch ~mean_gap:1 ~burst:32 ~affinity:true
          ~key_space:1024 ~members_of ~max_time:4_000_000 ()
      in
      let wall = Unix.gettimeofday () -. t0 in
      let quant q =
        match Shard_workload.latency r ~q with
        | Some l -> string_of_int l
        | None -> "-"
      in
      let last_commit = r.Shard_workload.last_commit in
      Amac.Stats.Table.add_series table
        ~name:(every_row "commit_latency_g%d" groups)
        (List.map float_of_int (Array.to_list r.Shard_workload.latencies));
      Amac.Stats.Table.add_row table
        [
          string_of_int groups;
          string_of_int r.Shard_workload.committed;
          string_of_int r.Shard_workload.batches;
          string_of_int last_commit;
          string_of_int r.Shard_workload.outcome.Amac.Engine.end_time;
          every_row "%.2f"
            (1000.0
            *. float_of_int r.Shard_workload.committed
            /. float_of_int (max 1 last_commit));
          every_row "%.0f" (float_of_int r.Shard_workload.committed /. wall);
          quant 0.50;
          quant 0.99;
          (if r.Shard_workload.violations = [] then "yes" else "VIOLATED");
        ])
    cases;
  Amac.Stats.Table.add_note table
    "Open loop at mean_gap=1, burst=32, shard-affine clients: the offered      load saturates a single group, so adding groups shortens the drain      (last_commit) instead of raising committed. cmds/ktick = committed      per 1000 simulated ticks of last_commit is fully deterministic (the      gate checks G=4 >= 2.5x G=1 on it); cmds/sec is wall-clock and      informational. Group g's voters are nodes g, g+1, g+2 (mod n), so      each group's leader commits over its own MAC channel; every wire      slot carries all groups' traffic as one tagged bundle, which is why      the per-node one-broadcast-in-flight budget multiplies instead of      being time-sliced. Compare B9: same contract, one group, closed      loop.";
  table

(* ------------------------------------------------------------------ *)

(* Byzantine overhead: honest-decision latency and message cost of the
   Byzantine-tolerant protocol as the adversary grows, byz_consensus on a
   clique wrapped in the canonical strategy (replay+forge behaviors on the
   highest-numbered nodes, early equivocation window against the low
   half). Every cell is deterministic from the fixed seed — no wall clock
   anywhere — so the gate pins every column exactly. *)
let b10 () =
  let table =
    Amac.Stats.Table.create
      ~title:
        "B10 Byzantine adversary (lib/byz): honest-decision latency vs      Byzantine count (byz_consensus, canonical strategy)"
      ~columns:
        [
          "n"; "byz"; "latency"; "broadcasts"; "suppressed"; "substituted";
          "decided"; "safe";
        ]
  in
  let seed = 42 in
  Amac.Stats.Table.set_meta table "seed" (string_of_int seed);
  Amac.Stats.Table.set_meta table "scheduler" "random(fack=3)";
  let cases =
    if !quick then [ (4, 0); (4, 1) ]
    else [ (4, 0); (4, 1); (7, 0); (7, 1); (7, 2) ]
  in
  List.iter
    (fun (n, byz_count) ->
      let behavior =
        { Byz.Model.replay_period = 3; forge_period = 2; drop_own = false }
      in
      let strategy =
        {
          Byz.Model.byz = List.init byz_count (fun i -> (n - 1 - i, behavior));
          tampers =
            List.init byz_count (fun i ->
                {
                  Byz.Model.node = n - 1 - i;
                  victims = List.init (n / 2) Fun.id;
                  from_ = 0;
                  until = 40;
                  kind = Byz.Model.Equivocate;
                });
          seed;
        }
      in
      let wrapped =
        Byz.Model.wrap ~n ~adapter:Byz.Adapters.byz_consensus ~strategy
          (Consensus.Byz_consensus.make ~seed:7 ())
      in
      let r =
        Consensus.Runner.run wrapped.Byz.Model.algorithm
          ~topology:(Amac.Topology.clique n)
          ~scheduler:(Amac.Scheduler.random (Amac.Rng.create seed) ~fack:3)
          ~inputs:(Consensus.Runner.inputs_alternating ~n)
          ~substitute:wrapped.Byz.Model.substitute
          ~honest:wrapped.Byz.Model.honest ~max_time:200_000
      in
      let d = r.Consensus.Runner.degradation in
      Amac.Stats.Table.add_row table
        [
          string_of_int n;
          string_of_int byz_count;
          (match r.Consensus.Runner.decision_time with
          | Some t -> string_of_int t
          | None -> "-");
          string_of_int r.Consensus.Runner.outcome.Amac.Engine.broadcasts;
          string_of_int r.Consensus.Runner.outcome.Amac.Engine.suppressed;
          string_of_int r.Consensus.Runner.outcome.Amac.Engine.substituted;
          every_row "%.2f" d.Consensus.Checker.decided_fraction;
          (if d.Consensus.Checker.safe then "yes" else "VIOLATED");
        ])
    cases;
  Amac.Stats.Table.add_note table
    "byz counts the wrapped adversaries (highest node ids); latency is the      last honest decision's time; suppressed/substituted are the engine's      tamper counters; decided is the honest decided fraction. All cells      are schedule-deterministic — the gate matches every column exactly,      with no tolerance.";
  table

(* ------------------------------------------------------------------ *)

(* Production lifecycle: (a) failover — a leader crash mid-traffic, swept
   over the ◇P detector's patience; [detect] is the first suspicion of the
   crashed leader (engine clock, via Workload's on_suspect) minus the
   crash time, and end_time shows the full re-election + catch-up cost.
   (b) steady-state vs a mid-run 3→5 joint reconfiguration vs aggressive
   compaction, same traffic — the commit-latency dip (or its absence) is
   read off p50/p99 against the steady row. No wall clock anywhere: every
   cell is deterministic from the seed and the gate matches all of them
   exactly, keyed (scenario, patience). *)
let b11 () =
  let table =
    Amac.Stats.Table.create
      ~title:
        "B11 production lifecycle (lib/fd, lib/smr): failover latency vs      detector patience; commit latency under reconfiguration and      compaction"
      ~columns:
        [
          "scenario"; "patience"; "detect"; "committed"; "p50"; "p99";
          "end_time"; "safe";
        ]
  in
  let seed = 42 in
  let cmds = 40 in
  Amac.Stats.Table.set_meta table "seed" (string_of_int seed);
  Amac.Stats.Table.set_meta table "cmds" (string_of_int cmds);
  Amac.Stats.Table.set_meta table "scheduler" "random(fack=3)";
  let quant r q =
    match Workload.latency r ~q with
    | Some l -> string_of_int l
    | None -> "-"
  in
  let row ~scenario ~patience ~detect (r : Workload.result) =
    Amac.Stats.Table.add_row table
      [
        scenario;
        patience;
        detect;
        string_of_int r.Workload.committed;
        quant r 0.50;
        quant r 0.99;
        string_of_int r.Workload.outcome.Amac.Engine.end_time;
        (if r.Workload.violations = [] then "yes" else "VIOLATED");
      ]
  in
  (* (a) Failover: node n-1 — Ω's stable choice on a clique — crashes at
     t=300 with traffic still flowing; smaller patience suspects (and
     re-elects) sooner, at the price of false suspicions in loss-heavy
     runs. [detect] is crash → first suspicion of that node anywhere. *)
  let crash_at = 300 in
  let n = 5 in
  let patiences = if !quick then [ 16 ] else [ 8; 16; 32; 64 ] in
  List.iter
    (fun patience ->
      let first_suspicion = ref None in
      let on_suspect ~now ~node:_ ~suspect =
        if suspect = n - 1 && now >= crash_at && !first_suspicion = None then
          first_suspicion := Some now
      in
      let r =
        Workload.run
          ~faults:[ Fault.Crash { node = n - 1; at = crash_at } ]
          ~topology:(Amac.Topology.clique n)
          ~scheduler:(Amac.Scheduler.random (Amac.Rng.create seed) ~fack:3)
          ~seed ~cmds ~patience ~on_suspect
          ~mode:(Workload.Open_loop { mean_gap = 10 })
          ()
      in
      let detect =
        match !first_suspicion with
        | Some t -> string_of_int (t - crash_at)
        | None -> "-"
      in
      row ~scenario:"failover" ~patience:(string_of_int patience) ~detect r)
    patiences;
  (* (b) Same open-loop traffic three ways: untouched, through a joint
     3→5 reconfiguration landing mid-run, and under an aggressive
     compaction watermark. *)
  let lifecycle_run ?members ?reconfigs ?compact_every () =
    Workload.run ?members ?reconfigs ?compact_every
      ~topology:(Amac.Topology.clique n)
      ~scheduler:(Amac.Scheduler.random (Amac.Rng.create seed) ~fack:3)
      ~seed ~cmds
      ~mode:(Workload.Open_loop { mean_gap = 10 })
      ()
  in
  row ~scenario:"steady" ~patience:"-" ~detect:"-"
    (lifecycle_run ~members:[ 0; 1; 2 ] ());
  row ~scenario:"reconfig-3to5" ~patience:"-" ~detect:"-"
    (lifecycle_run ~members:[ 0; 1; 2 ]
       ~reconfigs:[ (0, 150, [ 0; 1; 2; 3; 4 ]) ]
       ());
  if not !quick then
    row ~scenario:"compact-8" ~patience:"-" ~detect:"-"
      (lifecycle_run ~compact_every:8 ());
  Amac.Stats.Table.add_note table
    "detect is first-suspicion time minus crash time (own-ack silence      crossing patience, so it tracks patience plus the straggler      conversation in flight); end_time folds in re-election and repair.      steady/reconfig-3to5 share members [0;1;2] and traffic — the p50/p99      delta IS the reconfiguration dip; compact-8 runs all five voters with      a watermark every 8 commits. Deterministic throughout: the gate      exact-matches every cell.";
  table

(* ------------------------------------------------------------------ *)

(* Causal critical paths + energy accounting (lib/obs): (a) the provenance
   DAG's longest decide path puts Thm 4.6's O(D * F_ack) bound on display
   — on a line the hop count grows linearly with the diameter at ~F_ack
   ticks per MAC edge, and the gate checks the monotonicity inside the
   fresh run as well as cell-exactness against the baseline; (b) the
   waiting-fraction / energy-per-command comparison across two-phase,
   wPAXOS and the SMR workload on a shared clique — what a consensus node
   mostly does is wait, and the busier protocol waits less per command.
   Fixed-delay scheduler and seeded workload: no wall clock anywhere, so
   every cell is deterministic and exact-gated. *)
let b12 () =
  let table =
    Amac.Stats.Table.create
      ~title:
        "B12 critical paths + energy (lib/obs): wPAXOS path length vs      diameter; waiting fraction across algorithms"
      ~columns:
        [
          "algo"; "topo"; "D"; "hops"; "path"; "ticks/hop"; "hops/D";
          "leader%"; "waiting"; "act/cmd"; "safe";
        ]
  in
  let fack = 3 in
  let seed = 42 in
  Amac.Stats.Table.set_meta table "fack" (string_of_int fack);
  Amac.Stats.Table.set_meta table "seed" (string_of_int seed);
  Amac.Stats.Table.set_meta table "scheduler" (every_row "fixed(%d)" fack);
  let scheduler = Amac.Scheduler.fixed ~delay:fack in
  let longest paths =
    List.fold_left
      (fun best (p : Obs.Critpath.path) ->
        match best with
        | Some (b : Obs.Critpath.path) when b.Obs.Critpath.hops >= p.Obs.Critpath.hops
          ->
            best
        | Some _ | None -> Some p)
      None paths
  in
  let energy_of ~n (outcome : Amac.Engine.outcome) =
    Obs.Energy.account ~n ~duration:outcome.Amac.Engine.end_time
      (Amac.Trace_export.spans outcome.Amac.Engine.trace)
  in
  (* (a) wPAXOS decide paths: the longest path per topology. *)
  let topos =
    if !quick then
      [ ("line:3", Amac.Topology.line 3); ("line:9", Amac.Topology.line 9) ]
    else
      [
        ("line:3", Amac.Topology.line 3);
        ("line:5", Amac.Topology.line 5);
        ("line:9", Amac.Topology.line 9);
        ("line:17", Amac.Topology.line 17);
        ("line:25", Amac.Topology.line 25);
        ("grid:4x4", Amac.Topology.grid ~width:4 ~height:4);
        ("grid:6x6", Amac.Topology.grid ~width:6 ~height:6);
      ]
  in
  List.iter
    (fun (name, topology) ->
      let n = Amac.Topology.size topology in
      let diameter = Amac.Topology.diameter topology in
      let prov = Obs.Provenance.create () in
      let r =
        Consensus.Runner.run (Consensus.Wpaxos.make ()) ~topology ~scheduler
          ~inputs:(Consensus.Runner.inputs_alternating ~n)
          ~record_trace:true ~provenance:prov
      in
      let path = Option.get (longest (Obs.Critpath.paths prov)) in
      let energy = energy_of ~n r.Consensus.Runner.outcome in
      let leader_frac =
        match Obs.Critpath.bottleneck path with
        | Some (_, f) -> f
        | None -> 0.0
      in
      Amac.Stats.Table.add_row table
        [
          "wpaxos";
          name;
          string_of_int diameter;
          string_of_int path.Obs.Critpath.hops;
          string_of_int path.Obs.Critpath.total;
          every_row "%.2f" (Obs.Critpath.per_hop path);
          every_row "%.2f"
            (float_of_int path.Obs.Critpath.hops /. float_of_int diameter);
          every_row "%.0f" (100.0 *. leader_frac);
          every_row "%.3f" (Obs.Energy.waiting_fraction energy);
          "-";
          ok_of r;
        ])
    topos;
  (* (b) Waiting fraction and transmission cost per command, one clique,
     three protocols. For single-shot consensus "a command" is one node's
     decision; for the SMR workload it is a committed client command. *)
  let clique = Amac.Topology.clique 5 in
  let consensus_row name algorithm =
    let r =
      Consensus.Runner.run algorithm ~topology:clique ~scheduler
        ~inputs:(Consensus.Runner.inputs_alternating ~n:5)
        ~record_trace:true
    in
    let energy = energy_of ~n:5 r.Consensus.Runner.outcome in
    let decided =
      Array.fold_left
        (fun acc d -> if Option.is_some d then acc + 1 else acc)
        0 r.Consensus.Runner.outcome.Amac.Engine.decisions
    in
    Amac.Stats.Table.add_row table
      [
        name;
        "clique:5";
        "-";
        "-";
        "-";
        "-";
        "-";
        "-";
        every_row "%.3f" (Obs.Energy.waiting_fraction energy);
        (match Obs.Energy.active_per_command energy ~committed:decided with
        | Some a -> every_row "%.1f" a
        | None -> "-");
        ok_of r;
      ]
  in
  consensus_row "two_phase" Consensus.Two_phase.algorithm;
  consensus_row "wpaxos" (Consensus.Wpaxos.make ());
  let smr =
    Workload.run ~topology:clique ~scheduler ~seed ~cmds:60
      ~mode:(Workload.Closed_loop { clients_per_node = 1 })
      ~record_trace:true ()
  in
  let energy = energy_of ~n:5 smr.Workload.outcome in
  Amac.Stats.Table.add_row table
    [
      "smr";
      "clique:5";
      "-";
      "-";
      "-";
      "-";
      "-";
      "-";
      every_row "%.3f" (Obs.Energy.waiting_fraction energy);
      (match
         Obs.Energy.active_per_command energy ~committed:smr.Workload.committed
       with
      | Some a -> every_row "%.1f" a
      | None -> "-");
      (if smr.Workload.violations = [] then "yes" else "VIOLATED");
    ];
  Amac.Stats.Table.add_note table
    "hops counts Broadcast->Deliver edges on the longest decide path      (informational attribution: each broadcast is caused by its sender's      latest boot/injection/delivery); path is decide time minus root time      and telescopes exactly into per-edge latencies; ticks/hop ~ F_ack      and hops/D ~ constant certify O(D*F_ack). leader% is the bottleneck      node's share of path time. waiting = idle / up-time from the span      export; act/cmd = transmission ticks per command (per decision for      the single-shot rows, per committed command for smr). Deterministic      throughout: the gate exact-matches every cell and checks hops grow      monotonically with D across the line rows.";
  table

(* Multi-hop scale (lib/topo_gen + the interference scheduler): wPAXOS
   decision latency vs diameter on generated 100/400/1000-node topologies,
   against the O(D * F_ack) bound of Thm 4.6. Grids sweep the diameter at
   fixed degree (D = W+H-2, so latency tracks D); RGGs at the connectivity
   radius keep D nearly flat while n grows 10x, so their rows separate
   diameter cost from node-count cost. alpha=0 rows are the degenerate
   no-interference scheduler; alpha=2 stretches each ack by 2 ticks per
   on-air neighbor (capped at 4 * F_ack). hops is the Message-edge count
   of the longest causal decide path (lib/obs Critpath) — the in-run shape
   witness the gate checks: hops grows monotonically with D across the
   grid rows and stays within a constant factor of D. Fixed-delay base
   scheduler and seeded generators: every cell is deterministic and
   exact-gated. *)
let b14 () =
  let table =
    Amac.Stats.Table.create
      ~title:
        "B14 multi-hop scale (lib/topo_gen): wPAXOS latency vs diameter      at 100/400/1000 nodes under interference"
      ~columns:
        [
          "topo"; "n"; "D"; "alpha"; "latency"; "hops"; "D*F_ack"; "lat/DF";
          "hops/D"; "safe";
        ]
  in
  let fack = 3 in
  let topo_seed = 1 in
  Amac.Stats.Table.set_meta table "fack" (string_of_int fack);
  Amac.Stats.Table.set_meta table "topo_seed" (string_of_int topo_seed);
  Amac.Stats.Table.set_meta table "scheduler"
    (every_row "fixed(%d)+sinr" fack);
  let row (spec, alpha) =
    let topology = Topo_gen.generate ~seed:topo_seed spec in
    let n = Amac.Topology.size topology in
    let diameter = Amac.Topology.diameter topology in
    let scheduler =
      Amac.Scheduler.interference ~alpha (Amac.Scheduler.fixed ~delay:fack)
    in
    let prov = Obs.Provenance.create () in
    let r =
      Consensus.Runner.run (Consensus.Wpaxos.make ()) ~topology ~scheduler
        ~inputs:(Consensus.Runner.inputs_alternating ~n)
        ~provenance:prov
    in
    let hops =
      List.fold_left
        (fun best (p : Obs.Critpath.path) -> max best p.Obs.Critpath.hops)
        0 (Obs.Critpath.paths prov)
    in
    let latency =
      match r.Consensus.Runner.decision_time with Some t -> t | None -> -1
    in
    let bound = diameter * fack in
    Amac.Stats.Table.add_row table
      [
        Topo_gen.name spec;
        string_of_int n;
        string_of_int diameter;
        string_of_int alpha;
        string_of_int latency;
        string_of_int hops;
        string_of_int bound;
        every_row "%.2f" (float_of_int latency /. float_of_int bound);
        every_row "%.2f" (float_of_int hops /. float_of_int diameter);
        ok_of r;
      ]
  in
  let grid w h = Topo_gen.Grid { width = w; height = h } in
  let rgg n = Topo_gen.Rgg { n; radius = Topo_gen.connectivity_radius ~n } in
  let cases =
    if !quick then
      [ (grid 10 10, 2); (grid 20 20, 2); (grid 25 40, 2); (rgg 1000, 2) ]
    else
      [
        (grid 10 10, 0);
        (grid 10 10, 2);
        (grid 20 20, 0);
        (grid 20 20, 2);
        (grid 25 40, 0);
        (grid 25 40, 2);
        (rgg 100, 2);
        (rgg 400, 2);
        (rgg 1000, 2);
      ]
  in
  List.iter row cases;
  Amac.Stats.Table.add_note table
    "latency is the last decide time; hops the Message-edge count of the      longest causal decide path. Grids: D doubles 10x10 -> 25x40 while      degree stays 4, and latency/hops track D (the gate checks hops is      monotone in D and hops/D bounded across grid rows at alpha=2 —      Thm 4.6's O(D*F_ack) at generator scale). RGGs at the connectivity      radius: n grows 10x but D stays ~constant, and so does latency —      diameter, not node count, is what consensus waits for. alpha=2      stretches acks by 2 ticks per on-air neighbor, so lat/DF rises with      contention but stays bounded. Deterministic throughout: the gate      exact-matches every cell.";
  table

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks of the simulator core                      *)
(* ------------------------------------------------------------------ *)

let bechamel_section () =
  let open Bechamel in
  let open Toolkit in
  let pqueue_churn () =
    let q = Amac.Pqueue.create () in
    for i = 0 to 255 do
      Amac.Pqueue.add q ~key:((i * 7) mod 64) i
    done;
    while not (Amac.Pqueue.is_empty q) do
      ignore (Amac.Pqueue.pop q)
    done
  in
  let diameter () =
    ignore (Amac.Topology.diameter (Amac.Topology.grid ~width:12 ~height:12))
  in
  let two_phase_run () =
    ignore
      (Amac.Engine.run Consensus.Two_phase.algorithm
         ~topology:(Amac.Topology.clique 16)
         ~scheduler:(Amac.Scheduler.random (Amac.Rng.create 1) ~fack:6)
         ~inputs:(Consensus.Runner.inputs_alternating ~n:16))
  in
  let wpaxos_run () =
    ignore
      (Amac.Engine.run (Consensus.Wpaxos.make ())
         ~topology:(Amac.Topology.grid ~width:4 ~height:4)
         ~scheduler:(Amac.Scheduler.random (Amac.Rng.create 1) ~fack:4)
         ~inputs:(Consensus.Runner.inputs_alternating ~n:16))
  in
  let tests =
    Test.make_grouped ~name:"core"
      [
        Test.make ~name:"B1 pqueue 256 add+pop" (Staged.stage pqueue_churn);
        Test.make ~name:"B2 diameter grid 12x12" (Staged.stage diameter);
        Test.make ~name:"B3 two-phase clique-16 full run"
          (Staged.stage two_phase_run);
        Test.make ~name:"B4 wpaxos grid-4x4 full run" (Staged.stage wpaxos_run);
      ]
  in
  let cfg =
    Benchmark.cfg ~limit:1000
      ~quota:(Time.second (if !quick then 0.2 else 0.5))
      ~kde:None ()
  in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let table =
    Amac.Stats.Table.create ~title:"B1-B4 simulator micro-benchmarks"
      ~columns:[ "benchmark"; "time/run"; "r^2" ]
  in
  let rows =
    Hashtbl.fold (fun name result acc -> (name, result) :: acc) results []
  in
  List.iter
    (fun (name, result) ->
      let estimate =
        match Analyze.OLS.estimates result with
        | Some (e :: _) -> e
        | Some [] | None -> nan
      in
      let pretty =
        if estimate >= 1_000_000.0 then
          every_row "%.2f ms" (estimate /. 1_000_000.0)
        else if estimate >= 1_000.0 then
          every_row "%.2f us" (estimate /. 1_000.0)
        else every_row "%.0f ns" estimate
      in
      let r2 =
        match Analyze.OLS.r_square result with
        | Some r -> every_row "%.3f" r
        | None -> "-"
      in
      Amac.Stats.Table.add_row table [ name; pretty; r2 ])
    (List.sort (fun (a, _) (b, _) -> String.compare a b) rows);
  table

(* ------------------------------------------------------------------ *)
(* Driver                                                               *)
(* ------------------------------------------------------------------ *)

let experiments =
  [
    ("E1", e1);
    ("E2", e2);
    ("E3", e3);
    ("E4", e4);
    ("E5", e5);
    ("E6", e6);
    ("E7", e7);
    ("E8", e8);
    ("E9", e9);
    ("E10", e10);
    ("E11", e11);
    ("E12", e12);
    ("B5", b5);
    ("B6", b6);
    ("B7", b7);
    ("B8", b8);
    ("B9", b9);
    ("B10", b10);
    ("B11", b11);
    ("B12", b12);
    ("B13", b13);
    ("B14", b14);
  ]

let () =
  let only = ref [] in
  let skip_bechamel = ref false in
  let rec parse = function
    | [] -> ()
    | "--quick" :: rest ->
        quick := true;
        parse rest
    | "--skip-bechamel" :: rest ->
        skip_bechamel := true;
        parse rest
    | "--only" :: id :: rest ->
        only := String.uppercase_ascii id :: !only;
        parse rest
    | arg :: _ ->
        Printf.eprintf
          "unknown argument %s (use --quick, --skip-bechamel, --only EX)\n" arg;
        exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  let wanted id = !only = [] || List.mem id !only in
  let collected = ref [] in
  let record id table =
    Amac.Stats.Table.print table;
    collected := (id, table) :: !collected
  in
  List.iter
    (fun (id, experiment) ->
      if wanted id then begin
        record id (experiment ());
        print_newline ()
      end)
    experiments;
  if (not !skip_bechamel) && (!only = [] || wanted "BECHAMEL") then
    record "BECHAMEL" (bechamel_section ());
  (* The machine-readable mirror: BENCH.json holds exactly the tables
     printed above (same cells via Table.to_json), keyed by experiment id. *)
  let json =
    Obs.Json.Obj
      [
        ("suite", Obs.Json.String "amac-bench");
        ("quick", Obs.Json.Bool !quick);
        ( "experiments",
          Obs.Json.List
            (List.rev_map
               (fun (id, table) ->
                 Obs.Json.Obj
                   [
                     ("id", Obs.Json.String id);
                     ("table", Amac.Stats.Table.to_json table);
                   ])
               !collected) );
      ]
  in
  let oc = open_out_bin "BENCH.json" in
  output_string oc (Obs.Json.to_string json);
  output_char oc '\n';
  close_out oc;
  Printf.printf "wrote BENCH.json (%d experiments)\n"
    (List.length !collected)
