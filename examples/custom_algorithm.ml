(* Writing your own algorithm against the abstract MAC layer API, then
   model-checking it with the Bivalence explorer.

     dune exec examples/custom_algorithm.exe

   The algorithm below — "gather-all" — is the simplest correct consensus
   algorithm when you have unique ids, knowledge of n, and no crashes (the
   paper notes in Sec 1 that under these assumptions one could "simply
   gather all values at all nodes"): every node floods (id, value) pairs
   and decides the minimum once it has all n. We implement it from scratch
   here to show the Algorithm interface, validate it with the Checker on a
   few runs, and then let the Bivalence explorer exhaustively verify small
   instances and show what a crash does to it. *)

module A = Amac.Algorithm

(* Messages carry one (id, value) pair per broadcast — even tighter than
   the model's O(1)-ids budget. *)
type msg = { id : int; value : int }

type state = {
  n : int;
  known : (int * int) list ref;  (* assoc id -> value *)
  queue : (int * int) list ref;  (* pairs still to flood *)
  sending : bool ref;
  done_ : bool ref;
}

let learn st (id, value) =
  if not (List.mem_assoc id !(st.known)) then begin
    st.known := (id, value) :: !(st.known);
    st.queue := !(st.queue) @ [ (id, value) ]
  end

let next_actions st =
  let decide =
    if (not !(st.done_)) && List.length !(st.known) = st.n then begin
      st.done_ := true;
      [ A.Decide (List.fold_left (fun acc (_, v) -> min acc v) max_int !(st.known)) ]
    end
    else []
  in
  let send =
    match !(st.queue) with
    | (id, value) :: rest when not !(st.sending) ->
        st.queue := rest;
        st.sending := true;
        [ A.Broadcast { id; value } ]
    | _ -> []
  in
  decide @ send

let gather_all : (state, msg) A.t =
  {
    name = "gather-all";
    init =
      (fun ctx ->
        let st =
          {
            n = Option.get ctx.n;
            known = ref [];
            queue = ref [];
            sending = ref false;
            done_ = ref false;
          }
        in
        learn st (Amac.Node_id.unique_exn ctx.id, ctx.input);
        (st, next_actions st));
    on_receive =
      (fun _ctx st msg ->
        learn st (msg.id, msg.value);
        next_actions st);
    on_ack =
      (fun _ctx st ->
        st.sending := false;
        next_actions st);
    msg_ids = (fun _ -> 1);
    hooks = None;
  }

let () =
  Printf.printf "A custom algorithm against the abstract MAC layer API.\n\n";

  (* 1. Spot-check it on a few topologies and schedulers. *)
  List.iter
    (fun (name, topology, scheduler) ->
      let n = Amac.Topology.size topology in
      let result =
        Consensus.Runner.run gather_all ~topology ~scheduler
          ~inputs:(Consensus.Runner.inputs_alternating ~n)
      in
      Printf.printf "%-28s %s (t=%s)\n" name
        (Format.asprintf "%a" Consensus.Checker.pp result.report)
        (match result.decision_time with
        | Some t -> string_of_int t
        | None -> "-"))
    [
      ("6-clique / random", Amac.Topology.clique 6,
       Amac.Scheduler.random (Amac.Rng.create 1) ~fack:5);
      ("3x3 grid / max-delay", Amac.Topology.grid ~width:3 ~height:3,
       Amac.Scheduler.max_delay ~fack:4);
      ("ring 8 / synchronous", Amac.Topology.ring 8,
       Amac.Scheduler.synchronous);
    ];

  (* 2. Exhaustively verify a small instance: every valid-step schedule on
     a 3-clique decides correctly. *)
  let explorer =
    Lowerbound.Bivalence.create gather_all
      ~topology:(Amac.Topology.clique 3)
      ~inputs:[| 1; 0; 1 |]
  in
  Printf.printf "\nExhaustive check on the 3-clique with inputs [1;0;1]:\n";
  (match Lowerbound.Bivalence.initial_verdict explorer with
  | Univalent v ->
      Printf.printf "  every schedule decides %d (univalent) — as expected \
                     for gather-all, whose decision never depends on the \
                     schedule.\n" v
  | Bivalent -> Printf.printf "  bivalent (unexpected for gather-all!)\n"
  | Blocked -> Printf.printf "  blocked (bug!)\n");
  (match
     Lowerbound.Bivalence.find_agreement_violation explorer ~max_crashes:0
       ~max_depth:40 ()
   with
  | None -> Printf.printf "  no crash-free schedule violates agreement.\n"
  | Some _ -> Printf.printf "  agreement violation found (bug!)\n");

  (* 3. And what one crash does to it: gather-all waits for ALL n values,
     so any crash blocks everyone — far more fragile than two-phase or
     wPAXOS, which is why the paper's algorithms don't gather. *)
  match
    Lowerbound.Bivalence.find_termination_violation explorer ~max_crashes:1
      ~max_depth:12 ()
  with
  | Some schedule ->
      Printf.printf
        "  one crash blocks it after %d steps (gather-all needs every \
         node!): %s\n"
        (List.length schedule)
        (String.concat " "
           (List.map
              (Format.asprintf "%a" Lowerbound.Bivalence.pp_step)
              schedule))
  | None -> Printf.printf "  no 1-crash block found within depth 12.\n"
