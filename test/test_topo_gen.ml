(* Satellite: property tests for the seeded topology generators. Each
   generator family is checked for connectivity, degree bounds and
   determinism (same seed => byte-identical edge set); the churn/mobility
   schedules are checked against a functional model of delta application
   (apply in place == rebuild from the final edge set) and for keeping the
   graph connected after every delta; the RGG is checked against its own
   embedding (edge iff within radius, modulo connectivity patching). *)

module T = Amac.Topology
module G = Topo_gen

let edge_set g = List.sort compare (T.edges g)

(* ------------------------------------------------------------------ *)
(* Spec plumbing: names, sizes, validation. *)

let test_names_and_sizes () =
  let cases =
    [
      (G.Grid { width = 20; height = 20 }, "grid:20x20", 400);
      (G.Rgg { n = 1000; radius = 0.1 }, "rgg:1000", 1000);
      ( G.Cluster { clusters = 8; size = 12; extra_bridges = 4 },
        "cluster:8x12+4",
        96 );
    ]
  in
  List.iter
    (fun (spec, name, size) ->
      Alcotest.(check string) "name" name (G.name spec);
      Alcotest.(check int) (name ^ " size") size (G.size spec);
      Alcotest.(check int)
        (name ^ " generated size")
        size
        (T.size (G.generate ~seed:1 spec)))
    cases

let test_validation () =
  let degenerate =
    [
      G.Grid { width = 1; height = 1 };
      G.Grid { width = 0; height = 5 };
      G.Rgg { n = 1; radius = 0.5 };
      G.Rgg { n = 10; radius = 0.0 };
      G.Cluster { clusters = 0; size = 4; extra_bridges = 0 };
      G.Cluster { clusters = 2; size = 1; extra_bridges = 0 };
      G.Cluster { clusters = 2; size = 4; extra_bridges = -1 };
    ]
  in
  List.iter
    (fun spec ->
      match G.generate ~seed:3 spec with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.failf "degenerate spec %s accepted" (G.name spec))
    degenerate

let test_grid_delegates () =
  (* The grid spec is seed-independent and identical to Topology.grid. *)
  let a = G.generate ~seed:1 (G.Grid { width = 7; height = 5 }) in
  let b = G.generate ~seed:999 (G.Grid { width = 7; height = 5 }) in
  Alcotest.(check bool)
    "seed-independent" true
    (edge_set a = edge_set b);
  Alcotest.(check bool)
    "matches Topology.grid" true
    (edge_set a = edge_set (T.grid ~width:7 ~height:5))

(* ------------------------------------------------------------------ *)
(* Properties per generator. *)

let specs_of (seed, pick) =
  match pick mod 3 with
  | 0 -> G.Grid { width = 2 + (seed mod 6); height = 1 + (pick mod 5) }
  | 1 ->
      G.Rgg
        {
          n = 4 + (pick mod 60);
          radius = 0.2 +. (0.02 *. float_of_int (seed mod 20));
        }
  | _ ->
      G.Cluster
        {
          clusters = 1 + (pick mod 5);
          size = 2 + (seed mod 6);
          extra_bridges = pick mod 4;
        }

let prop_connected_and_in_range =
  QCheck.Test.make ~name:"every generated topology is connected, right size"
    ~count:200
    QCheck.(pair small_int small_int)
    (fun (seed, pick) ->
      let spec = specs_of (seed, pick) in
      let g = G.generate ~seed spec in
      T.size g = G.size spec && T.is_connected g)

let prop_deterministic =
  QCheck.Test.make
    ~name:"same (spec, seed) => byte-identical edge set" ~count:150
    QCheck.(pair small_int small_int)
    (fun (seed, pick) ->
      let spec = specs_of (seed, pick) in
      edge_set (G.generate ~seed spec) = edge_set (G.generate ~seed spec))

let test_seed_sensitivity () =
  (* Not a law — but these particular draws must differ, or the "seeded"
     generator is ignoring its seed. *)
  let rgg seed = edge_set (G.generate ~seed (G.Rgg { n = 50; radius = 0.3 })) in
  Alcotest.(check bool) "rgg seeds differ" true (rgg 1 <> rgg 2);
  let cl seed =
    edge_set
      (G.generate ~seed (G.Cluster { clusters = 3; size = 4; extra_bridges = 2 }))
  in
  Alcotest.(check bool) "cluster seeds differ" true (cl 1 <> cl 2)

let prop_grid_degree_bound =
  QCheck.Test.make ~name:"grid degrees are <= 4" ~count:50
    QCheck.(pair (int_range 2 9) (int_range 2 9))
    (fun (w, h) ->
      let g = G.generate ~seed:0 (G.Grid { width = w; height = h }) in
      List.init (T.size g) (fun u -> T.degree g u)
      |> List.for_all (fun d -> d >= 1 && d <= 4))

let prop_cluster_degree_bound =
  (* Every node keeps its full clique (degree >= size-1); bridges add at
     most the total bridge count on top. *)
  QCheck.Test.make ~name:"cluster degrees within clique + bridge budget"
    ~count:100
    QCheck.(triple small_int (int_range 2 5) (int_range 2 6))
    (fun (seed, clusters, size) ->
      let extra = seed mod 3 in
      let g = G.generate ~seed (G.Cluster { clusters; size; extra_bridges = extra }) in
      let bridges = T.num_edges g - (clusters * size * (size - 1) / 2) in
      bridges >= 0
      && List.init (T.size g) (fun u -> T.degree g u)
         |> List.for_all (fun d -> d >= size - 1 && d <= size - 1 + bridges))

(* ------------------------------------------------------------------ *)
(* RGG semantics: edges against the embedding. *)

let within_radius_pairs points radius =
  let n = Array.length points in
  let r2 = radius *. radius in
  let out = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      let ux, uy = points.(u) and vx, vy = points.(v) in
      let dx = ux -. vx and dy = uy -. vy in
      if (dx *. dx) +. (dy *. dy) <= r2 then out := (u, v) :: !out
    done
  done;
  List.sort compare !out

let prop_rgg_radius_semantics =
  QCheck.Test.make
    ~name:"rgg edges = within-radius pairs (+ patch bridges only if needed)"
    ~count:80
    QCheck.(pair small_int (int_range 4 60))
    (fun (seed, n) ->
      let radius = 0.15 +. (0.015 *. float_of_int (seed mod 25)) in
      let spec = G.Rgg { n; radius } in
      let g = G.generate ~seed spec in
      let points = Option.get (G.positions ~seed spec) in
      let pure = within_radius_pairs points radius in
      let got = edge_set g in
      (* Patching only ever adds, and adds nothing when the pure RGG is
         already connected. *)
      let pure_connected =
        n <= 1 || T.is_connected (T.of_edges ~n pure)
      in
      List.for_all (fun e -> List.mem e got) pure
      && (not pure_connected || got = pure))

let prop_rgg_connectivity_radius =
  QCheck.Test.make
    ~name:"connectivity_radius draws are connected before patching"
    ~count:40
    QCheck.(pair small_int (int_range 30 120))
    (fun (seed, n) ->
      let radius = G.connectivity_radius ~n in
      let spec = G.Rgg { n; radius } in
      let points = Option.get (G.positions ~seed spec) in
      (* Above-threshold radius: the unpatched graph itself is connected
         for the overwhelming majority of draws. Allow the rare patched
         draw; the generated graph must always be connected. *)
      let pure = within_radius_pairs points radius in
      let pure_ok = T.is_connected (T.of_edges ~n pure) in
      let g = G.generate ~seed spec in
      T.is_connected g
      && ((not pure_ok) || edge_set g = pure))

let test_connectivity_radius_formula () =
  let n = 1000 in
  let r = G.connectivity_radius ~n in
  let expected = sqrt (3.0 *. log (float_of_int n) /. float_of_int n) in
  Alcotest.(check (float 1e-12)) "sqrt(3 ln n / n)" expected r

(* ------------------------------------------------------------------ *)
(* Delta schedules: in-place application == functional rebuild, and the
   graph stays connected after every delta. *)

let norm (u, v) = if u < v then (u, v) else (v, u)

(* Functional model of one delta over a normalized edge list. *)
let apply_functional edges delta =
  match delta with
  | T.Add_edge (u, v) ->
      let e = norm (u, v) in
      if List.mem e edges then Alcotest.failf "model: adding present edge";
      e :: edges
  | T.Remove_edge (u, v) ->
      let e = norm (u, v) in
      if not (List.mem e edges) then
        Alcotest.failf "model: removing absent edge";
      List.filter (fun e' -> e' <> e) edges

(* Walk a schedule: after EVERY delta, in-place application must equal an
   [of_edges] rebuild of the functional model; at every burst boundary
   (last delta of a timestamp) the graph must be connected. The source
   topology must come out untouched. *)
let check_schedule ~name g schedule =
  let before = edge_set g in
  let times = List.map fst schedule in
  Alcotest.(check (list int))
    (name ^ ": schedule sorted by time")
    (List.sort compare times) times;
  let work = T.copy g in
  let n = T.size g in
  let rec walk model = function
    | [] -> ()
    | (time, delta) :: rest ->
        let model = apply_functional model delta in
        T.apply_delta work delta;
        Alcotest.(check bool)
          (name ^ ": in-place == of_edges rebuild")
          true
          (edge_set work = edge_set (T.of_edges ~n model));
        let burst_ends =
          match rest with [] -> true | (t', _) :: _ -> t' <> time
        in
        if burst_ends then
          Alcotest.(check bool)
            (name ^ ": connected at burst boundary")
            true (T.is_connected work);
        walk model rest
  in
  walk before schedule;
  Alcotest.(check bool) (name ^ ": source topology untouched") true
    (edge_set g = before)

let test_churn_model () =
  List.iter
    (fun seed ->
      let g = G.generate ~seed (G.Rgg { n = 40; radius = 0.35 }) in
      let schedule = G.churn ~seed g ~events:12 ~start:5 ~gap:3 in
      Alcotest.(check bool) "churn produced events" true (schedule <> []);
      (* Times live on the start + k*gap lattice (slots where no legal
         candidate was found are skipped, not shifted). *)
      List.iter
        (fun (t, _) ->
          Alcotest.(check int) "churn time on lattice" 0 ((t - 5) mod 3);
          Alcotest.(check bool) "churn time in range" true
            (t >= 5 && t <= 5 + (11 * 3)))
        schedule;
      check_schedule ~name:(Printf.sprintf "churn(seed=%d)" seed) g schedule)
    [ 1; 2; 7; 42 ]

let test_churn_on_tree () =
  (* A tree has no removable edge until churn itself adds chords: the first
     delta must be an addition, and connectivity holds throughout. *)
  let g = T.binary_tree 15 in
  let schedule = G.churn ~seed:5 g ~events:6 ~start:0 ~gap:1 in
  check_schedule ~name:"churn-on-tree" g schedule;
  (match schedule with
  | (_, T.Add_edge _) :: _ -> ()
  | (_, T.Remove_edge (u, v)) :: _ ->
      Alcotest.failf "churn's first delta removed tree edge (%d,%d)" u v
  | [] -> Alcotest.fail "churn on a tree produced nothing")

let test_mobility_model () =
  List.iter
    (fun seed ->
      let g =
        G.generate ~seed
          (G.Cluster { clusters = 3; size = 5; extra_bridges = 2 })
      in
      let schedule = G.mobility ~seed g ~moves:5 ~start:10 ~gap:4 in
      Alcotest.(check bool) "mobility produced bursts" true (schedule <> []);
      check_schedule ~name:(Printf.sprintf "mobility(seed=%d)" seed) g
        schedule;
      (* Bursts share timestamps on the start+gap lattice. *)
      List.iter
        (fun (t, _) ->
          Alcotest.(check int) "burst time on lattice" 0 ((t - 10) mod 4))
        schedule)
    [ 3; 11; 42 ]

let test_schedule_validation () =
  let g = T.clique 4 in
  let expect_invalid name f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.failf "%s accepted" name
  in
  expect_invalid "negative events" (fun () ->
      G.churn ~seed:1 g ~events:(-1) ~start:0 ~gap:1);
  expect_invalid "zero gap" (fun () ->
      G.churn ~seed:1 g ~events:2 ~start:0 ~gap:0);
  expect_invalid "negative start" (fun () ->
      G.mobility ~seed:1 g ~moves:2 ~start:(-3) ~gap:2)

let () =
  Alcotest.run "topo_gen"
    [
      ( "specs",
        [
          Alcotest.test_case "names and sizes" `Quick test_names_and_sizes;
          Alcotest.test_case "degenerate specs rejected" `Quick
            test_validation;
          Alcotest.test_case "grid delegates to Topology.grid" `Quick
            test_grid_delegates;
          Alcotest.test_case "seed sensitivity" `Quick test_seed_sensitivity;
          Alcotest.test_case "connectivity radius formula" `Quick
            test_connectivity_radius_formula;
        ] );
      ( "generators",
        [
          QCheck_alcotest.to_alcotest prop_connected_and_in_range;
          QCheck_alcotest.to_alcotest prop_deterministic;
          QCheck_alcotest.to_alcotest prop_grid_degree_bound;
          QCheck_alcotest.to_alcotest prop_cluster_degree_bound;
          QCheck_alcotest.to_alcotest prop_rgg_radius_semantics;
          QCheck_alcotest.to_alcotest prop_rgg_connectivity_radius;
        ] );
      ( "delta schedules",
        [
          Alcotest.test_case "churn == functional rebuild" `Quick
            test_churn_model;
          Alcotest.test_case "churn on a tree" `Quick test_churn_on_tree;
          Alcotest.test_case "mobility == functional rebuild" `Quick
            test_mobility_model;
          Alcotest.test_case "schedule validation" `Quick
            test_schedule_validation;
        ] );
    ]
