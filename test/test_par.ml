(* The domain pool under its stated contract: results land in input order
   at any pool size, the lowest-index exception wins, pools are reusable
   across maps and safe to shut down, and the parallel entry points built
   on it (Fuzz.run_par, Explore.explore_par) produce outcomes
   byte-identical / verdict-equal to their sequential baselines. *)

let squares n = Array.init n (fun i -> i * i)

(* Per-element work varies by two orders of magnitude so stealing and
   completion order genuinely scramble execution; the result array must
   not care. *)
let busy i =
  let rounds = 1 + (i * 37 mod 100) * 50 in
  let acc = ref 0 in
  for k = 1 to rounds do
    acc := (!acc + k) land 0xFFFF
  done;
  ignore !acc;
  i * i

let test_map_order () =
  List.iter
    (fun domains ->
      Par.with_pool ~domains (fun pool ->
          let got = Par.map pool busy (Array.init 400 Fun.id) in
          Alcotest.(check bool)
            (Printf.sprintf "input order at %d domains" domains)
            true
            (got = squares 400)))
    [ 1; 2; 4 ]

let test_map_empty_and_singleton () =
  Par.with_pool ~domains:3 (fun pool ->
      Alcotest.(check bool) "empty" true (Par.map pool busy [||] = [||]);
      Alcotest.(check bool) "singleton" true (Par.map pool busy [| 5 |] = [| 25 |]))

let test_lowest_index_exception_wins () =
  Par.with_pool ~domains:4 (fun pool ->
      let f i =
        if i = 3 || i = 17 then failwith (Printf.sprintf "boom %d" i) else i
      in
      match Par.map pool f (Array.init 32 Fun.id) with
      | _ -> Alcotest.fail "expected an exception"
      | exception Failure msg ->
          Alcotest.(check string) "first failing index reported" "boom 3" msg)

let test_pool_survives_exception () =
  Par.with_pool ~domains:2 (fun pool ->
      (try ignore (Par.map pool (fun _ -> failwith "x") [| 0; 1; 2 |])
       with Failure _ -> ());
      Alcotest.(check bool) "usable after a failed map" true
        (Par.map pool busy (Array.init 50 Fun.id) = squares 50))

let test_stats_and_size () =
  let pool = Par.create ~domains:3 () in
  Alcotest.(check int) "size" 3 (Par.size pool);
  ignore (Par.map pool busy (Array.init 64 Fun.id));
  ignore (Par.map pool busy (Array.init 36 Fun.id));
  let stats = Par.stats pool in
  Alcotest.(check int) "every task counted once" 100 stats.Par.tasks;
  Alcotest.(check bool) "steal counter sane" true (stats.Par.steals >= 0);
  Par.shutdown pool;
  Par.shutdown pool (* idempotent *)

let test_clamps_to_one () =
  Par.with_pool ~domains:0 (fun pool ->
      Alcotest.(check int) "clamped" 1 (Par.size pool);
      Alcotest.(check bool) "inline map" true
        (Par.map pool busy [| 1; 2 |] = [| 1; 4 |]))

(* --- the parallel verification entry points against their baselines --- *)

module Fuzz = Mcheck.Fuzz
module Explore = Mcheck.Explore

let clique_only = { Fuzz.default with iterations = 120; kinds = [ Fuzz.Clique ] }

let render (o : Fuzz.outcome) =
  Format.asprintf "iterations_run=%d %a" o.iterations_run
    (Format.pp_print_option
       ~none:(fun fmt () -> Format.pp_print_string fmt "clean")
       Fuzz.pp_counterexample)
    o.counterexample

let test_run_par_identical_on_failure () =
  (* The literal variant fails within the budget: the 4-domain campaign
     must report the same minimum failing iteration, the same shrunk
     counterexample — the same bytes. *)
  let base = render (Fuzz.run clique_only Consensus.Two_phase.literal ~seed:1) in
  List.iter
    (fun jobs ->
      let par =
        render
          (Fuzz.run_par ~jobs clique_only Consensus.Two_phase.literal ~seed:1)
      in
      Alcotest.(check string)
        (Printf.sprintf "identical report at %d domains" jobs)
        base par)
    [ 2; 4 ]

let test_run_par_identical_on_clean () =
  let base =
    render (Fuzz.run clique_only Consensus.Two_phase.algorithm ~seed:1)
  in
  let par =
    render (Fuzz.run_par ~jobs:4 clique_only Consensus.Two_phase.algorithm ~seed:1)
  in
  Alcotest.(check string) "identical clean report" base par

let test_run_par_shared_pool () =
  Par.with_pool ~domains:4 (fun pool ->
      let a = Fuzz.run_par ~pool clique_only Consensus.Two_phase.literal ~seed:1 in
      let b = Fuzz.run clique_only Consensus.Two_phase.literal ~seed:1 in
      Alcotest.(check string) "caller-owned pool, same outcome" (render b)
        (render a))

let test_explore_par_matches_serial () =
  (* Exhaustive runs visit the same reachable set, so the distinct-state
     count agrees exactly; transitions and the reduction counters are
     visit-order dependent (which sleep set reaches a configuration first
     decides what is pruned under it), so they are only sanity-bounded. *)
  let config = { Explore.default with crash_budget = 1 } in
  let run f =
    f config Consensus.Two_phase.algorithm
      ~topology:(Amac.Topology.clique 2) ~inputs:[| 0; 1 |]
  in
  let serial = run (fun c -> Explore.explore c) in
  List.iter
    (fun jobs ->
      let par = run (fun c -> Explore.explore_par ~jobs c) in
      Alcotest.(check int) "same states" serial.Explore.states
        par.Explore.states;
      Alcotest.(check bool) "transitions cover the states" true
        (par.Explore.transitions >= par.Explore.states - 1);
      Alcotest.(check bool) "clean verdict" true
        (par.Explore.violations = [] && not par.Explore.truncated))
    [ 2; 4 ]

let test_explore_par_catches_literal () =
  let stats =
    Explore.explore_par ~jobs:4 Explore.default Consensus.Two_phase.literal
      ~topology:(Amac.Topology.clique 3) ~inputs:[| 0; 1; 1 |]
  in
  match stats.Explore.violations with
  | [] -> Alcotest.fail "parallel explorer missed the erratum"
  | (violation, path) :: _ ->
      Alcotest.(check bool) "agreement violation" true
        (match violation with
        | Consensus.Checker.Agreement_violation _ -> true
        | _ -> false);
      Alcotest.(check bool) "witness schedule attached" true (path <> [])

let () =
  Alcotest.run "par"
    [
      ( "pool",
        [
          Alcotest.test_case "map keeps input order" `Quick test_map_order;
          Alcotest.test_case "empty + singleton" `Quick
            test_map_empty_and_singleton;
          Alcotest.test_case "lowest-index exception wins" `Quick
            test_lowest_index_exception_wins;
          Alcotest.test_case "pool survives an exception" `Quick
            test_pool_survives_exception;
          Alcotest.test_case "stats and size" `Quick test_stats_and_size;
          Alcotest.test_case "domains clamped to >= 1" `Quick
            test_clamps_to_one;
        ] );
      ( "fuzz",
        [
          Alcotest.test_case "byte-identical failure report (2/4 domains)"
            `Quick test_run_par_identical_on_failure;
          Alcotest.test_case "byte-identical clean report" `Quick
            test_run_par_identical_on_clean;
          Alcotest.test_case "caller-owned pool" `Quick
            test_run_par_shared_pool;
        ] );
      ( "explore",
        [
          Alcotest.test_case "matches serial on exhaustive run" `Quick
            test_explore_par_matches_serial;
          Alcotest.test_case "catches the erratum" `Slow
            test_explore_par_catches_literal;
        ] );
    ]
