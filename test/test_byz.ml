(* The Byzantine adversary tentpole: wrapper semantics (fake decide,
   silence, equivocation through the engine's substitute hook, honest-mask
   integration) and the strategy-searching fuzzer's self-tests — it must
   FIND the attacks that exist (two_phase splits under equivocation) and
   find NOTHING against the algorithm built to resist (byz_consensus inside
   its f-budget), deterministically at any job count. *)

module Model = Byz.Model
module Adapters = Byz.Adapters
module BFuzz = Byz.Fuzz

let behavior ?(replay = 0) ?(forge = 0) ?(drop = false) () =
  { Model.replay_period = replay; forge_period = forge; drop_own = drop }

let strategy ?(byz = []) ?(tampers = []) ?(seed = 1) () =
  { Model.byz; tampers; seed }

let run_wrapped ?(record_trace = false) ?(inputs = [| 0; 1; 1 |]) ~strategy
    ~adapter algorithm =
  let n = Array.length inputs in
  let wrapped = Model.wrap ~n ~adapter ~strategy algorithm in
  Consensus.Runner.run wrapped.Model.algorithm
    ~topology:(Amac.Topology.clique n)
    ~scheduler:(Amac.Scheduler.random (Amac.Rng.create 11) ~fack:3)
    ~inputs ~substitute:wrapped.Model.substitute ~honest:wrapped.Model.honest
    ~max_time:50_000 ~record_trace

let test_wrap_validation () =
  Alcotest.check_raises "node out of range"
    (Invalid_argument "Byz.wrap: byz node out of range") (fun () ->
      ignore
        (Model.wrap ~n:3 ~adapter:Adapters.two_phase
           ~strategy:(strategy ~byz:[ (7, behavior ()) ] ())
           Consensus.Two_phase.algorithm));
  Alcotest.check_raises "tamper on honest sender"
    (Invalid_argument "Byz.wrap: tamper on an honest sender") (fun () ->
      ignore
        (Model.wrap ~n:3 ~adapter:Adapters.two_phase
           ~strategy:
             (strategy
                ~byz:[ (2, behavior ()) ]
                ~tampers:
                  [
                    {
                      Model.node = 0;
                      victims = [ 1 ];
                      from_ = 0;
                      until = 10;
                      kind = Model.Silence;
                    };
                  ]
                ())
           Consensus.Two_phase.algorithm))

let test_fake_decide_lets_run_finish () =
  (* A totally silent Byzantine node: drops its own broadcasts, never
     attacks. The fake Decide 0 at init must keep the engine's all-decided
     cutoff satisfiable, and the honest-masked report must be clean — the
     two honest nodes simply never hear from it. *)
  let result =
    run_wrapped ~inputs:[| 1; 1; 1 |]
      ~strategy:(strategy ~byz:[ (2, behavior ~drop:true ()) ] ())
      ~adapter:Adapters.two_phase Consensus.Two_phase.algorithm
  in
  Alcotest.(check bool) "honest consensus clean" true
    (Consensus.Checker.ok result.report);
  Alcotest.(check bool) "did not hit max_time" false
    result.outcome.hit_max_time;
  Alcotest.(check (list int)) "honest value" [ 1 ] result.report.decided_values

let silence_tamper ?(victims = [ 0 ]) node =
  { Model.node; victims; from_ = 0; until = 1_000; kind = Model.Silence }

let test_selective_silence_counted () =
  let result =
    run_wrapped ~record_trace:true
      ~strategy:
        (strategy ~byz:[ (2, behavior ()) ] ~tampers:[ silence_tamper 2 ] ())
      ~adapter:Adapters.two_phase Consensus.Two_phase.algorithm
  in
  Alcotest.(check bool) "deliveries suppressed" true
    (result.outcome.suppressed > 0);
  Alcotest.(check bool) "nothing substituted" true
    (result.outcome.substituted = 0);
  let traced =
    List.exists
      (function
        | Amac.Trace.Suppressed { node = 0; sender = 2; _ } -> true
        | _ -> false)
      result.outcome.trace
  in
  Alcotest.(check bool) "trace records the suppression" true traced

let test_equivocation_counted () =
  let tamper =
    { Model.node = 2; victims = [ 0; 1 ]; from_ = 0; until = 1_000;
      kind = Model.Equivocate }
  in
  let result =
    run_wrapped ~record_trace:true
      ~strategy:(strategy ~byz:[ (2, behavior ()) ] ~tampers:[ tamper ] ())
      ~adapter:Adapters.two_phase Consensus.Two_phase.algorithm
  in
  Alcotest.(check bool) "payloads substituted" true
    (result.outcome.substituted > 0);
  let traced =
    List.exists
      (function
        | Amac.Trace.Substituted { sender = 2; _ } -> true | _ -> false)
      result.outcome.trace
  in
  Alcotest.(check bool) "trace records the forgery" true traced

let test_equivocation_is_deterministic () =
  (* Per-delivery derived randomness: the same strategy over the same
     schedule substitutes identically — outcome counters and honest
     decisions byte-equal across runs. *)
  let go () =
    let result =
      run_wrapped
        ~strategy:
          (strategy ~byz:[ (2, behavior ~forge:2 ()) ]
             ~tampers:
               [
                 {
                   Model.node = 2; victims = [ 0 ]; from_ = 0; until = 1_000;
                   kind = Model.Equivocate;
                 };
               ]
             ())
        ~adapter:Adapters.two_phase Consensus.Two_phase.algorithm
    in
    ( result.outcome.substituted,
      result.outcome.suppressed,
      result.outcome.deliveries,
      Array.to_list result.outcome.decisions )
  in
  Alcotest.(check bool) "two identical runs" true (go () = go ())

let test_generic_adapter_replays () =
  (* The type-agnostic adversary: replay only. Works against any message
     type — here wpaxos, whose msg is structurally complex. The campaign
     must complete without exception; whether it breaks wpaxos is recorded,
     not asserted (replay against a quorum protocol is a real question, not
     a fixture). *)
  let config =
    { BFuzz.default with iterations = 60; min_n = 3; max_n = 4 }
  in
  let outcome =
    BFuzz.run config (Consensus.Wpaxos.make ()) (Model.generic_adapter ())
      ~seed:5
  in
  Alcotest.(check bool) "campaign completes" true
    (outcome.BFuzz.iterations_run <= config.BFuzz.iterations)

(* --------------------------------------------------------------- *)
(* Fuzzer self-tests                                                *)
(* --------------------------------------------------------------- *)

let equivocation_only =
  {
    Model.default_profile with
    Model.allow_silence = false;
    allow_replay = false;
    allow_forge = false;
    allow_drop_own = false;
  }

let two_phase_campaign =
  {
    BFuzz.default with
    BFuzz.iterations = 500;
    profile = equivocation_only;
    agreement_only = true;
  }

let test_finds_two_phase_equivocation () =
  let outcome =
    BFuzz.run two_phase_campaign Consensus.Two_phase.algorithm
      Adapters.two_phase ~seed:42
  in
  match outcome.BFuzz.counterexample with
  | None -> Alcotest.fail "no equivocation counterexample against two_phase"
  | Some cx ->
      let agreement_broken =
        List.exists
          (function
            | Consensus.Checker.Agreement_violation _ -> true | _ -> false)
          cx.BFuzz.violations
      in
      Alcotest.(check bool) "agreement violated among honest nodes" true
        agreement_broken;
      let equivocates =
        List.exists
          (fun (t : Model.tamper) -> t.Model.kind = Model.Equivocate)
          cx.BFuzz.case.BFuzz.strategy.Model.tampers
      in
      Alcotest.(check bool) "shrunk strategy still equivocates" true
        equivocates

let test_shrinking_minimizes () =
  let outcome =
    BFuzz.run two_phase_campaign Consensus.Two_phase.algorithm
      Adapters.two_phase ~seed:42
  in
  match outcome.BFuzz.counterexample with
  | None -> Alcotest.fail "no counterexample to shrink"
  | Some cx ->
      Alcotest.(check bool) "nodes not grown" true
        (cx.BFuzz.case.BFuzz.n <= cx.BFuzz.original.BFuzz.n);
      Alcotest.(check bool) "plan not grown" true
        (List.length cx.BFuzz.case.BFuzz.plan
        <= List.length cx.BFuzz.original.BFuzz.plan);
      (* The shrunk case must still fail on replay — violations were
         recorded from a fresh replay of the shrunk case. *)
      Alcotest.(check bool) "shrunk case still violates" true
        (cx.BFuzz.violations <> [])

let byz_consensus_campaign =
  {
    BFuzz.default with
    BFuzz.iterations = 400;
    min_n = 4;
    max_n = 7;
    cap_f = true;
  }

let test_byz_consensus_survives () =
  let outcome =
    BFuzz.run byz_consensus_campaign
      (Consensus.Byz_consensus.make ~seed:7 ())
      Adapters.byz_consensus ~seed:42
  in
  (match outcome.BFuzz.counterexample with
  | None -> ()
  | Some cx ->
      Alcotest.failf "byz_consensus broken inside its f-budget:@.%a"
        BFuzz.pp_counterexample cx);
  Alcotest.(check int) "full campaign" 400 outcome.BFuzz.iterations_run

let test_ben_or_documented_unsafe () =
  (* Ben-Or tolerates crashes, not lies: forged Decided claims must be
     found. Pinning this keeps the adapter honest — if the campaign stops
     finding it, the adversary (not Ben-Or) regressed. *)
  let config = { BFuzz.default with BFuzz.iterations = 500 } in
  let outcome =
    BFuzz.run config (Consensus.Ben_or.make ~seed:5 ()) Adapters.ben_or
      ~seed:43
  in
  Alcotest.(check bool) "byzantine adversary breaks ben_or" true
    (outcome.BFuzz.counterexample <> None)

let test_counter_race_documented_unsafe () =
  let config = { BFuzz.default with BFuzz.iterations = 500 } in
  let outcome =
    BFuzz.run config (Consensus.Counter_race.make ()) Adapters.counter_race
      ~seed:44
  in
  Alcotest.(check bool) "byzantine adversary breaks counter_race" true
    (outcome.BFuzz.counterexample <> None)

let test_par_determinism () =
  (* run_par must be byte-identical to run at any job count — both on a
     finding campaign and on a clean one. *)
  let render outcome =
    Format.asprintf "%d:%a" outcome.BFuzz.iterations_run
      (Format.pp_print_option BFuzz.pp_counterexample)
      outcome.BFuzz.counterexample
  in
  let seq =
    BFuzz.run two_phase_campaign Consensus.Two_phase.algorithm
      Adapters.two_phase ~seed:42
  in
  List.iter
    (fun jobs ->
      let par =
        BFuzz.run_par ~jobs two_phase_campaign Consensus.Two_phase.algorithm
          Adapters.two_phase ~seed:42
      in
      Alcotest.(check string)
        (Printf.sprintf "finding campaign, jobs=%d" jobs)
        (render seq) (render par))
    [ 2; 3 ];
  let seq_clean =
    BFuzz.run byz_consensus_campaign
      (Consensus.Byz_consensus.make ~seed:7 ())
      Adapters.byz_consensus ~seed:42
  in
  let par_clean =
    BFuzz.run_par ~jobs:3 byz_consensus_campaign
      (Consensus.Byz_consensus.make ~seed:7 ())
      Adapters.byz_consensus ~seed:42
  in
  Alcotest.(check string) "clean campaign, jobs=3" (render seq_clean)
    (render par_clean)

let () =
  Alcotest.run "byz"
    [
      ( "wrapper",
        [
          Alcotest.test_case "wrap validates strategies" `Quick
            test_wrap_validation;
          Alcotest.test_case "fake decide lets run finish" `Quick
            test_fake_decide_lets_run_finish;
          Alcotest.test_case "selective silence counted + traced" `Quick
            test_selective_silence_counted;
          Alcotest.test_case "equivocation counted + traced" `Quick
            test_equivocation_counted;
          Alcotest.test_case "equivocation is deterministic" `Quick
            test_equivocation_is_deterministic;
          Alcotest.test_case "generic adapter on abstract msgs" `Quick
            test_generic_adapter_replays;
        ] );
      ( "fuzzer",
        [
          Alcotest.test_case "finds two_phase equivocation" `Quick
            test_finds_two_phase_equivocation;
          Alcotest.test_case "shrinks the counterexample" `Quick
            test_shrinking_minimizes;
          Alcotest.test_case "byz_consensus survives its budget" `Quick
            test_byz_consensus_survives;
          Alcotest.test_case "ben_or documented unsafe" `Quick
            test_ben_or_documented_unsafe;
          Alcotest.test_case "counter_race documented unsafe" `Quick
            test_counter_race_documented_unsafe;
          Alcotest.test_case "parallel determinism" `Quick test_par_determinism;
        ] );
    ]
