(* Satellite: golden-trace regression corpus. Four canonical seeded runs —
   spanning the baseline two-phase protocol, hardened wPAXOS under
   crash-recovery, randomized Ben-Or, and the SMR replicated log — are
   rendered (event timeline + metrics snapshot) and compared byte-for-byte
   against committed artifacts in test/golden/.

   Any change to engine event ordering, scheduler decisions, algorithm
   message flow, or metrics instrumentation shows up as a diff here, with
   the full before/after visible in the artifact. To regenerate after an
   intentional change:

     dune build @all && UPDATE_GOLDEN=$PWD/test/golden \
       ./_build/default/test/test_golden.exe

   then review the diff like any other code change. *)

let render ~n (outcome : Amac.Engine.outcome) reg =
  let b = Buffer.create 8192 in
  Buffer.add_string b (Amac.Trace.timeline ~n outcome.Amac.Engine.trace);
  Buffer.add_string b "\n--- metrics ---\n";
  Buffer.add_string b (Obs.Metrics.render (Obs.Metrics.snapshot reg));
  Buffer.contents b

let scenario_two_phase ?(wrap = Fun.id) () =
  let reg = Obs.Metrics.create () in
  let result =
    Consensus.Runner.run Consensus.Two_phase.algorithm
      ~topology:(Amac.Topology.clique 3)
      ~scheduler:(wrap Amac.Scheduler.synchronous) ~inputs:[| 0; 1; 1 |]
      ~record_trace:true ~obs:reg
  in
  render ~n:3 result.Consensus.Runner.outcome reg

(* The wPAXOS scenario also pins the causal provenance DAG: the exact
   vertex/cause structure under crash-recovery (Boot roots for both
   incarnations of node 1) is part of the golden contract. *)
let scenario_wpaxos_crash_recovery ?(wrap = Fun.id) () =
  let reg = Obs.Metrics.create () in
  let prov = Obs.Provenance.create () in
  let result =
    Consensus.Runner.run (Consensus.Wpaxos.make ())
      ~topology:(Amac.Topology.line 4)
      ~scheduler:(wrap (Amac.Scheduler.random (Amac.Rng.create 9) ~fack:2))
      ~inputs:[| 1; 0; 1; 0 |]
      ~faults:
        [ Fault.Crash { node = 1; at = 5 }; Fault.Recover { node = 1; at = 40 } ]
      ~record_trace:true ~obs:reg ~provenance:prov
  in
  render ~n:4 result.Consensus.Runner.outcome reg
  ^ "\n--- provenance ---\n"
  ^ Obs.Json.to_string (Obs.Provenance.to_json prov)
  ^ "\n"

let scenario_ben_or ?(wrap = Fun.id) () =
  let reg = Obs.Metrics.create () in
  let result =
    Consensus.Runner.run
      (Consensus.Ben_or.make ~seed:3 ())
      ~topology:(Amac.Topology.clique 3)
      ~scheduler:(wrap (Amac.Scheduler.random (Amac.Rng.create 4) ~fack:1))
      ~inputs:[| 0; 1; 0 |] ~record_trace:true ~obs:reg
  in
  render ~n:3 result.Consensus.Runner.outcome reg

let scenario_smr_closed_loop ?(wrap = Fun.id) () =
  let reg = Obs.Metrics.create () in
  let result =
    Workload.run
      ~topology:(Amac.Topology.clique 3)
      ~scheduler:(wrap Amac.Scheduler.synchronous) ~seed:21 ~cmds:6
      ~mode:(Workload.Closed_loop { clients_per_node = 1 })
      ~record_trace:true ~obs:reg ()
  in
  render ~n:3 result.Workload.outcome reg

(* Lifecycle goldens. Compaction: an aggressive watermark plus a mid-run
   crash long enough that the floor moves past the dead replica's log, so
   recovery MUST go through a snapshot transfer — the snap component, the
   install, and the post-install repair tail all land in the timeline.
   Reconfiguration: a 3-voter cluster (two learners) scales to 5 through
   the joint command mid-traffic; the Change floods, the lease restarts
   and the epoch bump are all pinned. Both tiny enough to review as text. *)
let scenario_smr_compaction ?(wrap = Fun.id) () =
  let reg = Obs.Metrics.create () in
  let result =
    Workload.run ~compact_every:4
      ~faults:
        [
          Fault.Crash { node = 0; at = 30 };
          Fault.Recover { node = 0; at = 160 };
        ]
      ~topology:(Amac.Topology.clique 3)
      ~scheduler:(wrap Amac.Scheduler.synchronous) ~seed:15 ~cmds:12
      ~mode:(Workload.Open_loop { mean_gap = 4 })
      ~record_trace:true ~obs:reg ()
  in
  render ~n:3 result.Workload.outcome reg

let scenario_smr_reconfig ?(wrap = Fun.id) () =
  let reg = Obs.Metrics.create () in
  let result =
    Workload.run ~members:[ 0; 1; 2 ]
      ~reconfigs:[ (0, 40, [ 0; 1; 2; 3; 4 ]) ]
      ~topology:(Amac.Topology.clique 5)
      ~scheduler:(wrap Amac.Scheduler.synchronous) ~seed:27 ~cmds:8
      ~mode:(Workload.Open_loop { mean_gap = 6 })
      ~record_trace:true ~obs:reg ()
  in
  render ~n:5 result.Workload.outcome reg

(* Sharded golden: two groups multiplexed over one 3-node MAC run with
   batch = 2 — group-tagged bundle broadcasts, the shared wire slot and
   the batch flush/expansion cycle are all visible in the timeline. *)
let scenario_smr_sharded ?(wrap = Fun.id) () =
  let reg = Obs.Metrics.create () in
  let result =
    Shard_workload.run
      ~topology:(Amac.Topology.clique 3)
      ~scheduler:(wrap Amac.Scheduler.synchronous) ~seed:33 ~cmds:8 ~groups:2
      ~batch:2 ~mean_gap:4 ~key_space:16 ~record_trace:true ~obs:reg ()
  in
  render ~n:3 result.Shard_workload.outcome reg

let scenario_counter_race ?(wrap = Fun.id) () =
  let reg = Obs.Metrics.create () in
  let result =
    Consensus.Runner.run
      (Consensus.Counter_race.make ())
      ~topology:(Amac.Topology.clique 3)
      ~scheduler:(wrap (Amac.Scheduler.random (Amac.Rng.create 6) ~fack:2))
      ~inputs:[| 0; 1; 1 |] ~record_trace:true ~obs:reg
  in
  render ~n:3 result.Consensus.Runner.outcome reg

let scenario_byz_consensus ?(wrap = Fun.id) () =
  let reg = Obs.Metrics.create () in
  let result =
    Consensus.Runner.run
      (Consensus.Byz_consensus.make ~seed:2 ())
      ~topology:(Amac.Topology.clique 4)
      ~scheduler:(wrap (Amac.Scheduler.random (Amac.Rng.create 13) ~fack:2))
      ~inputs:[| 0; 1; 1; 0 |] ~record_trace:true ~obs:reg
  in
  render ~n:4 result.Consensus.Runner.outcome reg

(* The canonical 1-Byzantine runs: node n-1 wrapped with replay+forge
   behaviors and an early equivocation window against the low half — the
   adversary's suppressions ('#') and substitutions ('*') land in the
   timeline, pinning the engine's substitute-hook event ordering. *)
let byz_scenario algorithm adapter ~n ~seed ~inputs ?(wrap = Fun.id) () =
  let reg = Obs.Metrics.create () in
  let strategy =
    {
      Byz.Model.byz =
        [ (n - 1, { Byz.Model.replay_period = 3; forge_period = 2; drop_own = false }) ];
      tampers =
        [
          {
            Byz.Model.node = n - 1;
            victims = List.init (n / 2) Fun.id;
            from_ = 0;
            until = 40;
            kind = Byz.Model.Equivocate;
          };
        ];
      seed = 77;
    }
  in
  let wrapped = Byz.Model.wrap ~n ~adapter ~strategy algorithm in
  let result =
    Consensus.Runner.run wrapped.Byz.Model.algorithm
      ~topology:(Amac.Topology.clique n)
      ~scheduler:(wrap (Amac.Scheduler.random (Amac.Rng.create seed) ~fack:2))
      ~inputs ~substitute:wrapped.Byz.Model.substitute
      ~honest:wrapped.Byz.Model.honest ~record_trace:true ~obs:reg
  in
  render ~n result.Consensus.Runner.outcome reg

let scenario_counter_race_byz =
  byz_scenario
    (Consensus.Counter_race.make ())
    Byz.Adapters.counter_race ~n:3 ~seed:8 ~inputs:[| 0; 1; 1 |]

let scenario_byz_consensus_byz =
  byz_scenario
    (Consensus.Byz_consensus.make ~seed:2 ())
    Byz.Adapters.byz_consensus ~n:4 ~seed:19 ~inputs:[| 0; 1; 1; 0 |]

(* Multi-hop golden: wPAXOS on a seeded 3x3 grid under the interference
   scheduler (alpha = 1) with two churn deltas mid-run. The contention
   metric families, the per-node ack-stretch histograms and the Topo
   bookkeeping are all part of this golden's contract. *)
let scenario_wpaxos_multihop_grid ?(wrap = Fun.id) () =
  let reg = Obs.Metrics.create () in
  let topology =
    Topo_gen.generate ~seed:5 (Topo_gen.Grid { width = 3; height = 3 })
  in
  let topo_deltas = Topo_gen.churn ~seed:5 topology ~events:2 ~start:6 ~gap:8 in
  let result =
    Consensus.Runner.run (Consensus.Wpaxos.make ()) ~topology
      ~scheduler:
        (wrap
           (Amac.Scheduler.interference ~alpha:1
              (Amac.Scheduler.random (Amac.Rng.create 12) ~fack:2)))
      ~inputs:(Consensus.Runner.inputs_alternating ~n:9)
      ~topo_deltas ~record_trace:true ~obs:reg
  in
  render ~n:9 result.Consensus.Runner.outcome reg

let scenarios :
    (string * (?wrap:(Amac.Scheduler.t -> Amac.Scheduler.t) -> unit -> string))
    list =
  [
    ("two_phase_sync", scenario_two_phase);
    ("wpaxos_crash_recovery", scenario_wpaxos_crash_recovery);
    ("ben_or_random", scenario_ben_or);
    ("smr_closed_loop", scenario_smr_closed_loop);
    ("smr_compaction_transfer", scenario_smr_compaction);
    ("smr_reconfig_3to5", scenario_smr_reconfig);
    ("smr_sharded_2groups", scenario_smr_sharded);
    ("counter_race_random", scenario_counter_race);
    ("byz_consensus_random", scenario_byz_consensus);
    ("counter_race_1byz", scenario_counter_race_byz);
    ("byz_consensus_1byz", scenario_byz_consensus_byz);
    ("wpaxos_multihop_grid", scenario_wpaxos_multihop_grid);
  ]

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path contents =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc contents)

let test_scenario
    ( name,
      (produce :
        ?wrap:(Amac.Scheduler.t -> Amac.Scheduler.t) -> unit -> string) ) () =
  let actual = produce () in
  match Sys.getenv_opt "UPDATE_GOLDEN" with
  | Some dir ->
      write_file (Filename.concat dir (name ^ ".txt")) actual;
      Printf.printf "updated %s/%s.txt (%d bytes)\n" dir name
        (String.length actual)
  | None ->
      let path = Filename.concat "golden" (name ^ ".txt") in
      if not (Sys.file_exists path) then
        Alcotest.failf
          "missing golden artifact %s — regenerate with UPDATE_GOLDEN (see \
           header comment)"
          path;
      let expected = read_file path in
      if expected <> actual then begin
        (* Byte-identical or bust; print a usable first-divergence pointer
           rather than two multi-KB blobs. *)
        let len = min (String.length expected) (String.length actual) in
        let i = ref 0 in
        while !i < len && expected.[!i] = actual.[!i] do
          incr i
        done;
        let context s =
          let lo = max 0 (!i - 80)
          and hi = min (String.length s) (!i + 80) in
          String.sub s lo (hi - lo)
        in
        Alcotest.failf
          "golden mismatch for %s at byte %d (expected %d bytes, got %d)@.--- \
           expected around divergence ---@.%s@.--- actual around divergence \
           ---@.%s"
          name !i
          (String.length expected)
          (String.length actual) (context expected) (context actual)
      end

(* Degenerate interference: wrapping every base scenario's scheduler with
   the alpha = 0 stretch (keeping the display name) runs the engine's
   contention-tracking paths on the whole corpus and must reproduce it
   byte-for-byte — modulo the contention metric families the hook itself
   registers, which are stripped before comparing. Scenarios that are
   already interference-aware are left unwrapped (the identity check). *)
let test_degenerate_interference () =
  let degenerate s =
    match s.Amac.Scheduler.contention_stretch with
    | Some _ -> s
    | None ->
        Amac.Scheduler.interference ~name:s.Amac.Scheduler.name ~alpha:0 s
  in
  let starts_with ~prefix line =
    String.length line >= String.length prefix
    && String.sub line 0 (String.length prefix) = prefix
  in
  let strip text =
    String.split_on_char '\n' text
    |> List.filter (fun line ->
           not
             (starts_with ~prefix:"engine_contention" line
             || starts_with ~prefix:"engine_ack_stretch" line))
    |> String.concat "\n"
  in
  List.iter
    (fun
      ( name,
        (produce :
          ?wrap:(Amac.Scheduler.t -> Amac.Scheduler.t) -> unit -> string) )
    ->
      let base = produce () and wrapped = produce ~wrap:degenerate () in
      Alcotest.(check string)
        (name ^ ": alpha=0 interference is event-identical")
        (strip base) (strip wrapped))
    scenarios

(* The corpus must also be self-consistent: producing a scenario twice in
   one process yields identical bytes (no hidden global state). *)
let test_reproducible () =
  List.iter
    (fun
      ( name,
        (produce :
          ?wrap:(Amac.Scheduler.t -> Amac.Scheduler.t) -> unit -> string) )
    ->
      let a = produce () and b = produce () in
      Alcotest.(check bool)
        (name ^ ": render is reproducible in-process")
        true (String.equal a b))
    scenarios

let () =
  Alcotest.run "golden"
    [
      ( "corpus",
        List.map
          (fun ((name, _) as s) ->
            Alcotest.test_case name `Quick (test_scenario s))
          scenarios
        @ [
            Alcotest.test_case "degenerate interference reproduces corpus"
              `Quick test_degenerate_interference;
            Alcotest.test_case "in-process reproducibility" `Quick
              test_reproducible;
          ] );
    ]
