let feq = Alcotest.float 1e-9

let test_mean () =
  Alcotest.check feq "mean" 2.5 (Amac.Stats.mean [ 1.0; 2.0; 3.0; 4.0 ]);
  Alcotest.check feq "singleton" 7.0 (Amac.Stats.mean [ 7.0 ])

let test_min_max () =
  Alcotest.check feq "min" 1.0 (Amac.Stats.minimum [ 3.0; 1.0; 2.0 ]);
  Alcotest.check feq "max" 3.0 (Amac.Stats.maximum [ 3.0; 1.0; 2.0 ])

let test_percentile () =
  let xs = List.init 100 (fun i -> float_of_int (i + 1)) in
  Alcotest.check feq "p50" 50.0 (Amac.Stats.percentile 50.0 xs);
  Alcotest.check feq "p99" 99.0 (Amac.Stats.percentile 99.0 xs);
  Alcotest.check feq "p0 -> min" 1.0 (Amac.Stats.percentile 0.0 xs);
  Alcotest.check feq "p100 -> max" 100.0 (Amac.Stats.percentile 100.0 xs);
  Alcotest.check feq "median alias" 50.0 (Amac.Stats.median xs)

let test_stddev () =
  Alcotest.check feq "constant" 0.0 (Amac.Stats.stddev [ 5.0; 5.0; 5.0 ]);
  Alcotest.check feq "spread" 2.0 (Amac.Stats.stddev [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ])

let test_empty_raises () =
  Alcotest.check_raises "mean" (Invalid_argument "Stats.mean: empty list")
    (fun () -> ignore (Amac.Stats.mean []));
  Alcotest.check_raises "percentile range"
    (Invalid_argument "Stats.percentile: p out of range") (fun () ->
      ignore (Amac.Stats.percentile 101.0 [ 1.0 ]))

(* Degenerate bench inputs (a seed that never decided) surface as NaN
   samples; the aggregates must drop them rather than return NaN. *)
let test_nan_guards () =
  Alcotest.check feq "percentile drops NaN" 5.0
    (Amac.Stats.percentile 50.0 [ nan; 5.0; nan ]);
  Alcotest.check feq "median drops NaN" 4.0
    (Amac.Stats.median [ 3.0; nan; 5.0; 4.0 ]);
  Alcotest.check feq "stddev drops NaN" 0.0 (Amac.Stats.stddev [ nan; 5.0 ]);
  Alcotest.(check bool) "stddev of constant never NaN" false
    (Float.is_nan (Amac.Stats.stddev [ 0.1; 0.1; 0.1 ]));
  Alcotest.check_raises "all-NaN percentile"
    (Invalid_argument "Stats.percentile: all-NaN input") (fun () ->
      ignore (Amac.Stats.percentile 50.0 [ nan; nan ]));
  Alcotest.check_raises "all-NaN stddev"
    (Invalid_argument "Stats.stddev: all-NaN input") (fun () ->
      ignore (Amac.Stats.stddev [ nan ]));
  Alcotest.check_raises "NaN p rejected"
    (Invalid_argument "Stats.percentile: p out of range") (fun () ->
      ignore (Amac.Stats.percentile nan [ 1.0 ]))

let test_histogram () =
  let h = Amac.Stats.Histogram.create ~buckets:[ 1.0; 2.0; 5.0; 10.0 ] in
  List.iter (Amac.Stats.Histogram.observe h) [ 0.5; 1.5; 3.0; 3.0; 7.0; 42.0 ];
  Alcotest.(check int) "count" 6 (Amac.Stats.Histogram.count h);
  Alcotest.check feq "sum" 57.0 (Amac.Stats.Histogram.sum h);
  Alcotest.(check (list (pair feq int)))
    "bucket counts"
    [ (1.0, 1); (2.0, 1); (5.0, 2); (10.0, 1); (infinity, 1) ]
    (Amac.Stats.Histogram.bucket_counts h);
  Alcotest.check feq "min" 0.5 (Amac.Stats.Histogram.observed_min h);
  Alcotest.check feq "max" 42.0 (Amac.Stats.Histogram.observed_max h);
  (* Quantiles are bucket estimates: only their bracketing is promised. *)
  let q50 = Amac.Stats.Histogram.quantile h 0.5 in
  Alcotest.(check bool) "q50 inside (2, 5]" true (q50 > 2.0 && q50 <= 5.0);
  Alcotest.check feq "q0 clamps to min" 0.5 (Amac.Stats.Histogram.quantile h 0.0);
  Alcotest.check feq "q1 clamps to max" 42.0
    (Amac.Stats.Histogram.quantile h 1.0)

let test_histogram_nan_and_errors () =
  let h = Amac.Stats.Histogram.create ~buckets:[ 1.0 ] in
  Amac.Stats.Histogram.observe h nan;
  Alcotest.(check int) "NaN not counted" 0 (Amac.Stats.Histogram.count h);
  Alcotest.(check int) "NaN tracked" 1 (Amac.Stats.Histogram.nan_count h);
  Alcotest.(check bool) "empty quantile raises" true
    (match Amac.Stats.Histogram.quantile h 0.5 with
    | exception Invalid_argument _ -> true
    | _ -> false);
  Alcotest.(check bool) "unsorted buckets rejected" true
    (match Amac.Stats.Histogram.create ~buckets:[ 2.0; 1.0 ] with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_table_json () =
  let table =
    Amac.Stats.Table.create ~title:"demo" ~columns:[ "name"; "value" ]
  in
  Amac.Stats.Table.add_row table [ "alpha"; "1" ];
  Amac.Stats.Table.add_note table "a footnote";
  Amac.Stats.Table.set_meta table "fack" "8";
  Amac.Stats.Table.add_series table ~name:"lat" [ 3.0; 1.0; 2.0 ];
  let json = Amac.Stats.Table.to_json table in
  let open Obs.Json in
  Alcotest.(check string) "title" "demo"
    (match member "title" json with Some (String s) -> s | _ -> "?");
  Alcotest.(check bool) "rows mirror the printed cells" true
    (member "rows" json
    = Some (List [ List [ String "alpha"; String "1" ] ]));
  Alcotest.(check bool) "meta kept" true
    (match member "meta" json with
    | Some (Obj kvs) -> List.assoc_opt "fack" kvs = Some (String "8")
    | _ -> false);
  (match member "series" json with
  | Some (List [ series ]) ->
      Alcotest.(check bool) "series name" true
        (member "name" series = Some (String "lat"));
      Alcotest.(check bool) "series p50" true
        (match member "p50" series with Some (Float v) -> v = 2.0 | _ -> false)
  | _ -> Alcotest.fail "expected one series");
  (* the export is parseable and round-trips *)
  Alcotest.(check bool) "parse round-trip" true
    (equal json (of_string (to_string json)))

let test_table () =
  let table =
    Amac.Stats.Table.create ~title:"demo" ~columns:[ "name"; "value" ]
  in
  Amac.Stats.Table.add_row table [ "alpha"; "1" ];
  Amac.Stats.Table.add_row table [ "b"; "22" ];
  Amac.Stats.Table.add_note table "a footnote";
  let rendered = Amac.Stats.Table.render table in
  Alcotest.(check bool) "has title" true
    (String.length rendered > 0
    && String.sub rendered 0 11 = "== demo ==\n");
  (* Columns aligned: every data row has the same 'value' column offset. *)
  let lines = String.split_on_char '\n' rendered in
  Alcotest.(check int) "line count (title+hdr+rule+2rows+note+trailing)" 7
    (List.length lines);
  Alcotest.(check bool) "note present" true
    (List.exists (fun l -> l = "  note: a footnote") lines)

let test_table_arity () =
  let table = Amac.Stats.Table.create ~title:"t" ~columns:[ "a"; "b" ] in
  Alcotest.check_raises "cell count"
    (Invalid_argument "Stats.Table.add_row: 1 cells for 2 columns") (fun () ->
      Amac.Stats.Table.add_row table [ "only" ])

let prop_percentile_bounds =
  QCheck.Test.make ~name:"percentile stays within [min, max]" ~count:200
    QCheck.(pair (list_of_size Gen.(1 -- 40) (float_bound_exclusive 100.0)) (float_bound_inclusive 100.0))
    (fun (xs, p) ->
      let v = Amac.Stats.percentile p xs in
      v >= Amac.Stats.minimum xs && v <= Amac.Stats.maximum xs)

let prop_mean_bounds =
  QCheck.Test.make ~name:"mean stays within [min, max]" ~count:200
    QCheck.(list_of_size Gen.(1 -- 40) (float_bound_exclusive 100.0))
    (fun xs ->
      let m = Amac.Stats.mean xs in
      m >= Amac.Stats.minimum xs -. 1e-9 && m <= Amac.Stats.maximum xs +. 1e-9)

let () =
  Alcotest.run "stats"
    [
      ( "unit",
        [
          Alcotest.test_case "mean" `Quick test_mean;
          Alcotest.test_case "min/max" `Quick test_min_max;
          Alcotest.test_case "percentile" `Quick test_percentile;
          Alcotest.test_case "stddev" `Quick test_stddev;
          Alcotest.test_case "empty raises" `Quick test_empty_raises;
          Alcotest.test_case "NaN guards" `Quick test_nan_guards;
          Alcotest.test_case "histogram" `Quick test_histogram;
          Alcotest.test_case "histogram NaN/errors" `Quick
            test_histogram_nan_and_errors;
          Alcotest.test_case "table rendering" `Quick test_table;
          Alcotest.test_case "table arity" `Quick test_table_arity;
          Alcotest.test_case "table JSON" `Quick test_table_json;
        ] );
      ( "property",
        [
          QCheck_alcotest.to_alcotest prop_percentile_bounds;
          QCheck_alcotest.to_alcotest prop_mean_bounds;
        ] );
    ]
