(* Fingerprint soundness for the Byzantine wrapper and the two new
   algorithms, mirroring test_baseline_hooks:

   - keying equivalence: `Fast (fingerprint-keyed) exploration visits
     exactly the space `Marshal keying does — states, transitions and
     reduction counters all equal;
   - collision freedom: over a digest-distinct sample, no two
     configurations share a fingerprint;
   - collision-check mode: the explorer's own Fast-vs-digest cross-check
     reports zero disagreements.

   The wrapped cases exercise the adversary's node-local arms inside the
   explorer (replay / forge / drop_own fire on receive counts — time-free,
   so exploration is sound); delivery tampering lives in the engine's
   substitute hook and is out of the explorer's scope. The Byzantine
   node's whole observable state — inner state, rng, seen-buffer, counters
   — folds into the fingerprint, so two branches differing only in the
   adversary's memory never alias. *)

module Explore = Mcheck.Explore
module Model = Byz.Model

type case =
  | Case : {
      name : string;
      algorithm : ('s, 'm) Amac.Algorithm.t;
      topology : Amac.Topology.t;
      inputs : int array;
      max_depth : int;
      min_states : int;
      expect_revisits : bool;
    }
      -> case

let wrapped algorithm ~n ~adapter ~behavior =
  (Model.wrap ~n ~adapter
     ~strategy:{ Model.byz = [ (n - 1, behavior) ]; tampers = []; seed = 9 }
     algorithm)
    .Model.algorithm

let attacking =
  { Model.replay_period = 2; forge_period = 3; drop_own = false }

let silent = { Model.replay_period = 0; forge_period = 0; drop_own = true }

let cases ~sampling =
  [
    Case
      {
        name = "counter_race";
        algorithm = Consensus.Counter_race.make ();
        topology = Amac.Topology.clique 2;
        inputs = [| 0; 1 |];
        max_depth = (if sampling then 18 else 12);
        min_states = (if sampling then 1_000 else 50);
        expect_revisits = true;
      };
    Case
      {
        name = "byz_consensus";
        algorithm = Consensus.Byz_consensus.make ~seed:3 ();
        topology = Amac.Topology.clique (if sampling then 3 else 2);
        inputs = (if sampling then [| 0; 1; 1 |] else [| 0; 1 |]);
        max_depth = (if sampling then 14 else 10);
        min_states = (if sampling then 1_000 else 50);
        expect_revisits = true;
      };
    Case
      {
        name = "byz(two_phase)";
        algorithm =
          wrapped Consensus.Two_phase.algorithm ~n:3
            ~adapter:Byz.Adapters.two_phase ~behavior:attacking;
        topology = Amac.Topology.clique 3;
        inputs = [| 0; 1; 1 |];
        max_depth = (if sampling then 16 else 12);
        min_states = (if sampling then 1_000 else 50);
        expect_revisits = true;
      };
    Case
      {
        (* silent (drop_own) adversary in the exhaustive checks; the
           attacking one for sampling — a mute node's space saturates well
           under the sample floor. *)
        name = "byz(byz_consensus)";
        algorithm =
          wrapped
            (Consensus.Byz_consensus.make ~seed:3 ())
            ~n:3 ~adapter:Byz.Adapters.byz_consensus
            ~behavior:(if sampling then attacking else silent);
        topology = Amac.Topology.clique 3;
        inputs = [| 0; 1; 1 |];
        max_depth = (if sampling then 16 else 8);
        min_states = (if sampling then 1_000 else 50);
        expect_revisits = true;
      };
  ]

let test_keying_equivalence () =
  List.iter
    (fun (Case { name; algorithm; topology; inputs; max_depth; min_states; _ }) ->
      let run keying =
        Explore.explore
          {
            Explore.default with
            crash_budget = 1;
            keying;
            max_depth;
            max_states = 300_000;
          }
          algorithm ~topology ~inputs
      in
      let fast = run `Fast and marshal = run `Marshal in
      Alcotest.(check int) (name ^ ": same states") marshal.Explore.states
        fast.Explore.states;
      Alcotest.(check int)
        (name ^ ": same transitions")
        marshal.Explore.transitions fast.Explore.transitions;
      Alcotest.(check int)
        (name ^ ": same dedup hits")
        marshal.Explore.dedup_hits fast.Explore.dedup_hits;
      Alcotest.(check int)
        (name ^ ": same sleep skips")
        marshal.Explore.sleep_skips fast.Explore.sleep_skips;
      Alcotest.(check bool)
        (Printf.sprintf "%s: visited >= %d states (got %d)" name min_states
           fast.Explore.states)
        true
        (fast.Explore.states >= min_states))
    (cases ~sampling:false)

let test_collision_free () =
  List.iter
    (fun (Case { name; algorithm; topology; inputs; max_depth; min_states; _ }) ->
      let pairs =
        Explore.key_pairs
          (Explore.sample
             { Explore.default with max_depth; max_states = 5_000_000 }
             algorithm ~topology ~inputs ~max_samples:10_000)
      in
      Alcotest.(check bool)
        (Printf.sprintf "%s: sampled >= %d states (got %d)" name min_states
           (Array.length pairs))
        true
        (Array.length pairs >= min_states);
      let by_fp = Hashtbl.create (Array.length pairs) in
      let collisions = ref 0 in
      Array.iter
        (fun (digest, fp) ->
          match Hashtbl.find_opt by_fp fp with
          | None -> Hashtbl.add by_fp fp digest
          | Some d when d = digest -> ()
          | Some _ -> incr collisions)
        pairs;
      Alcotest.(check int)
        (name ^ ": no distinct-digest fingerprint collisions")
        0 !collisions)
    (cases ~sampling:true)

let test_collision_check_mode () =
  List.iter
    (fun (Case
           { name; algorithm; topology; inputs; max_depth; expect_revisits; _ })
         ->
      let stats =
        Explore.explore
          {
            Explore.default with
            crash_budget = 1;
            check_collisions = true;
            max_depth;
            max_states = 300_000;
          }
          algorithm ~topology ~inputs
      in
      Alcotest.(check int)
        (name ^ ": no fingerprint/digest disagreements")
        0 stats.Explore.collisions;
      Alcotest.(check bool)
        (name ^ ": revisit profile as expected")
        expect_revisits
        (stats.Explore.dedup_hits > 0))
    (cases ~sampling:false)

let () =
  Alcotest.run "byz-hooks"
    [
      ( "hooks",
        [
          Alcotest.test_case "fast and marshal keying agree" `Quick
            test_keying_equivalence;
          Alcotest.test_case "fingerprints collision-free on samples" `Quick
            test_collision_free;
          Alcotest.test_case "collision-check mode finds none" `Quick
            test_collision_check_mode;
        ] );
    ]
