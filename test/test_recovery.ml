(* Satellite: recovery semantics at the engine level.

   Amnesiac restart means three things, each pinned here with purpose-built
   probe algorithms: (1) [init] runs exactly once per incarnation — the
   recovered node gets fresh state and its init actions, nothing else; (2)
   deliveries and acks scheduled for a dead incarnation never reach a later
   one, in either direction (to a recovered receiver, from a recovered
   sender); (3) crash-window non-atomicity is preserved across recovery —
   neighbors that missed a mid-broadcast delivery stay missed. Each check
   runs under both the synchronous and the max-delay scheduler where the
   distinction matters. *)

module A = Amac.Algorithm

let me ctx = Amac.Node_id.unique_exn ctx.A.id

(* Probe: count init calls and deliveries per node; talkers (input 1)
   broadcast once from init, everyone tallies what arrives. *)
type probe = { inits : int array; got : int array; acks : int array }

let fresh_probe n =
  { inits = Array.make n 0; got = Array.make n 0; acks = Array.make n 0 }

(* [resend:false] makes talkers broadcast only from their first
   incarnation's init — so a test can pin down what happens to the OLD
   transmission without the re-init's fresh broadcast muddying counts. *)
let probe_algorithm ?(resend = true) p : (unit, string) A.t =
  {
    name = "probe";
    init =
      (fun ctx ->
        let i = me ctx in
        p.inits.(i) <- p.inits.(i) + 1;
        ( (),
          if ctx.A.input = 1 && (resend || p.inits.(i) = 1) then
            [ A.Broadcast "hi" ]
          else [] ));
    on_receive =
      (fun ctx () _msg ->
        let i = me ctx in
        p.got.(i) <- p.got.(i) + 1;
        []);
    on_ack =
      (fun ctx () ->
        let i = me ctx in
        p.acks.(i) <- p.acks.(i) + 1;
        []);
    msg_ids = (fun _ -> 0);
    hooks = None;
  }

let run ?resend ?(crashes = []) ?(recoveries = []) probe ~scheduler ~inputs =
  let n = Array.length inputs in
  Amac.Engine.run
    (probe_algorithm ?resend probe)
    ~topology:(Amac.Topology.clique n)
    ~scheduler ~inputs ~crashes ~recoveries ~max_time:1_000
    ~stop_when_all_decided:false

let schedulers =
  [
    ("synchronous", Amac.Scheduler.synchronous);
    ("max-delay", Amac.Scheduler.max_delay ~fack:6);
  ]

let test_init_once_per_incarnation () =
  List.iter
    (fun (name, scheduler) ->
      let p = fresh_probe 3 in
      let outcome =
        run p ~scheduler ~inputs:[| 0; 0; 0 |]
          ~crashes:[ (0, 2) ]
          ~recoveries:[ (0, 5) ]
      in
      Alcotest.(check (array int))
        (name ^ ": one init per incarnation")
        [| 2; 1; 1 |] p.inits;
      Alcotest.(check (array int))
        (name ^ ": incarnation counters")
        [| 1; 0; 0 |]
        outcome.Amac.Engine.incarnations)
    schedulers;
  (* Two full crash/recover cycles: three incarnations, three inits. *)
  let p = fresh_probe 2 in
  let outcome =
    run p ~scheduler:Amac.Scheduler.synchronous ~inputs:[| 0; 0 |]
      ~crashes:[ (1, 1); (1, 5) ]
      ~recoveries:[ (1, 3); (1, 8) ]
  in
  Alcotest.(check (array int)) "three inits" [| 1; 3 |] p.inits;
  Alcotest.(check (array int)) "two recoveries" [| 0; 2 |]
    outcome.Amac.Engine.incarnations

(* A delivery scheduled for incarnation 0 of the receiver must not land on
   incarnation 1, even though the node is up again when it arrives. *)
let test_no_stale_delivery_to_recovered () =
  let p = fresh_probe 2 in
  (* Node 1 broadcasts at t=0; max-delay delivers at t=6. Node 0 crashes at
     t=1 and is back at t=3 — up well before the delivery, but it belongs
     to a dead incarnation. *)
  let outcome =
    run p
      ~scheduler:(Amac.Scheduler.max_delay ~fack:6)
      ~inputs:[| 0; 1 |]
      ~crashes:[ (0, 1) ]
      ~recoveries:[ (0, 3) ]
  in
  Alcotest.(check (array int)) "nothing delivered" [| 0; 0 |] p.got;
  Alcotest.(check int) "delivery dropped" 1 outcome.Amac.Engine.dropped;
  (* Control: without the crash the same schedule delivers. *)
  let p' = fresh_probe 2 in
  let _ =
    run p' ~scheduler:(Amac.Scheduler.max_delay ~fack:6) ~inputs:[| 0; 1 |]
  in
  Alcotest.(check (array int)) "control delivers" [| 1; 0 |] p'.got

(* A broadcast by incarnation 0 of the sender must not be delivered (nor
   acked) once the sender has crashed and restarted — the restart does not
   resurrect the old transmission. *)
let test_no_stale_delivery_from_recovered () =
  let p = fresh_probe 2 in
  (* Node 1 broadcasts at t=0 (delivery t=6); crashes at t=1, back at t=2.
     Its old transmission must vanish: no delivery at t=6, no ack.
     [resend:false] keeps the re-init silent so the zeros are meaningful. *)
  let outcome =
    run p ~resend:false
      ~scheduler:(Amac.Scheduler.max_delay ~fack:6)
      ~inputs:[| 0; 1 |]
      ~crashes:[ (1, 1) ]
      ~recoveries:[ (1, 2) ]
  in
  Alcotest.(check (array int)) "no delivery from old incarnation" [| 0; 0 |]
    p.got;
  Alcotest.(check (array int)) "no ack for old incarnation" [| 0; 0 |] p.acks;
  Alcotest.(check int) "transmission dropped" 1 outcome.Amac.Engine.dropped

(* Crash mid-broadcast is non-atomic (Sec 2): with staggered per-edge
   delays, the fast neighbor hears the doomed broadcast, the slow one never
   does — and a recovery in between must not change that. *)
let test_non_atomicity_across_recovery () =
  let staggered =
    Amac.Scheduler.per_edge ~name:"staggered" ~fack:6 ~delay:(fun ~sender:_ ~receiver ->
        if receiver = 1 then 1 else 5)
  in
  let p = fresh_probe 3 in
  let _ =
    run p ~resend:false ~scheduler:staggered ~inputs:[| 1; 0; 0 |]
      ~crashes:[ (0, 3) ]
      ~recoveries:[ (0, 4) ]
  in
  Alcotest.(check int) "fast neighbor heard it" 1 p.got.(1);
  Alcotest.(check int) "slow neighbor never does" 0 p.got.(2);
  Alcotest.(check int) "no ack for the doomed broadcast" 0 p.acks.(0);
  (* Same shape under the synchronous scheduler: everything lands at t=1,
     a crash at t=1 is after delivery — atomic-looking because the window
     is a single tick, which is exactly the Sec 3.2 lock-step regime. *)
  let p' = fresh_probe 3 in
  let _ =
    run p' ~resend:false ~scheduler:Amac.Scheduler.synchronous
      ~inputs:[| 1; 0; 0 |]
      ~crashes:[ (0, 2) ]
      ~recoveries:[ (0, 4) ]
  in
  Alcotest.(check (array int)) "lock-step: both heard it" [| 0; 1; 1 |] p'.got

(* The recovered node is a first-class citizen: its re-run init may
   broadcast, and that new transmission delivers and acks normally. *)
let test_recovered_node_participates () =
  List.iter
    (fun (name, scheduler) ->
      let p = fresh_probe 3 in
      (* Node 0 is a talker; it crashes before any delivery of its first
         broadcast and recovers. The re-init broadcasts afresh: both
         neighbors hear exactly the second transmission, and node 0 gets
         exactly one ack (for it). *)
      let crashes, recoveries = ([ (0, 0) ], [ (0, 20) ]) in
      let _ = run p ~scheduler ~inputs:[| 1; 0; 0 |] ~crashes ~recoveries in
      Alcotest.(check int) (name ^ ": neighbor 1 hears the re-send") 1
        p.got.(1);
      Alcotest.(check int) (name ^ ": neighbor 2 hears the re-send") 1
        p.got.(2);
      Alcotest.(check int) (name ^ ": one ack, for the new incarnation") 1
        p.acks.(0))
    schedulers

let () =
  Alcotest.run "recovery"
    [
      ( "semantics",
        [
          Alcotest.test_case "init once per incarnation" `Quick
            test_init_once_per_incarnation;
          Alcotest.test_case "no stale delivery to recovered" `Quick
            test_no_stale_delivery_to_recovered;
          Alcotest.test_case "no stale delivery from recovered" `Quick
            test_no_stale_delivery_from_recovered;
          Alcotest.test_case "non-atomicity across recovery" `Quick
            test_non_atomicity_across_recovery;
          Alcotest.test_case "recovered node participates" `Quick
            test_recovered_node_participates;
        ] );
    ]
