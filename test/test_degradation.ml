(* Satellite: graceful degradation under fault plans.

   Safety is unconditional: under seeded random fault plans neither
   two-phase (within its fault envelope: crashes and stutter) nor wPAXOS
   (full envelope: crash-recovery, loss, partition-and-heal, stutter) ever
   violates agreement, validity or irrevocability. Liveness degrades to a
   measurable floor: hardened wPAXOS decides on every correct node once the
   loss windows close, and the acceptance demo runs the combined
   crash-recovery + partition-and-heal + lossy-link plan with wPAXOS
   deciding everywhere while two-phase stays safe but undecided. Finally,
   the fault fuzzer pointed at the unhardened wPAXOS must find and shrink a
   liveness failure — the hardening is load-bearing. *)

let scheduler = Amac.Scheduler.max_delay ~fack:3

(* A seeded, always-valid random plan. [full] is wPAXOS's envelope —
   crash-recovery, loss, partition-and-heal, stutter. Without [full] it is
   two-phase's: crashes and stutter only, because amnesiac recovery makes a
   voter vote twice and loss breaks ack-implies-delivered — under either,
   two-phase genuinely loses agreement (the fault fuzzer's self-test in
   bin/mcheck_fuzz exhibits both). *)
let random_plan ?(stutter = true) rng ~n ~full =
  let open Fault in
  let t0 = Amac.Rng.int rng 20 in
  let width () = 1 + Amac.Rng.int rng 20 in
  let victim = Amac.Rng.int rng n in
  let crash = Crash { node = victim; at = t0 } in
  let plan =
    if full && Amac.Rng.bool rng then
      [ crash; Recover { node = victim; at = t0 + 1 + width () } ]
    else [ crash ]
  in
  let stutter_event () =
    Stutter
      { node = Amac.Rng.int rng n; from_ = Amac.Rng.int rng 20;
        until = Amac.Rng.int rng 20 + 21 }
  in
  let plan =
    if not full then
      if stutter && Amac.Rng.bool rng then stutter_event () :: plan else plan
    else begin
      let u = Amac.Rng.int rng n in
      let v = (u + 1 + Amac.Rng.int rng (n - 1)) mod n in
      let from_ = Amac.Rng.int rng 20 in
      let cut_size = 1 + Amac.Rng.int rng (n - 1) in
      let cut = List.init cut_size (fun i -> (victim + i) mod n) in
      let pfrom = Amac.Rng.int rng 20 in
      let plan =
        Link_drop { edge = (u, v); from_; until = from_ + width () }
        :: Partition { cut; from_ = pfrom; until = pfrom + width () }
        :: plan
      in
      if stutter then stutter_event () :: plan else plan
    end
  in
  validate ~n plan;
  plan

let degradation_of algorithm ~n ~faults =
  let result =
    Consensus.Runner.run algorithm
      ~topology:(Amac.Topology.clique n)
      ~scheduler
      ~inputs:(Consensus.Runner.inputs_alternating ~n)
      ~faults ~max_time:100_000
  in
  result.Consensus.Runner.degradation

let test_two_phase_safe_under_seeded_plans () =
  let rng = Amac.Rng.create 11 in
  for _ = 1 to 40 do
    let n = 2 + Amac.Rng.int rng 4 in
    let faults = random_plan rng ~n ~full:false in
    let d = degradation_of Consensus.Two_phase.algorithm ~n ~faults in
    if not d.Consensus.Checker.safe then
      Alcotest.failf "two-phase unsafe under %s" (Fault.to_string faults)
  done

let test_wpaxos_safe_under_seeded_plans () =
  let rng = Amac.Rng.create 12 in
  List.iter
    (fun algorithm ->
      for _ = 1 to 40 do
        let n = 2 + Amac.Rng.int rng 4 in
        let faults = random_plan rng ~n ~full:true in
        let d = degradation_of algorithm ~n ~faults in
        if not d.Consensus.Checker.safe then
          Alcotest.failf "wpaxos unsafe under %s" (Fault.to_string faults)
      done)
    [ Consensus.Wpaxos.make (); Consensus.Wpaxos.make ~retransmit:false () ]

(* Hardened wPAXOS is live once the faults quiesce: every node that is up
   at the end decides, whatever mix of loss, partition and crash-recovery
   the plan threw at the run. Stutter windows are excluded from the claim
   (not from the safety tests above): stutter can suppress the Decide
   action itself, which no protocol can detect or repair — the node has no
   clock to rebroadcast by and believes it already decided. See DESIGN.md
   "Fault model" for the full argument. *)
let test_wpaxos_decides_once_windows_close () =
  let rng = Amac.Rng.create 13 in
  for _ = 1 to 25 do
    let n = 3 + Amac.Rng.int rng 3 in
    let faults = random_plan ~stutter:false rng ~n ~full:true in
    let d = degradation_of (Consensus.Wpaxos.make ()) ~n ~faults in
    if not d.Consensus.Checker.safe then
      Alcotest.failf "unsafe under %s" (Fault.to_string faults);
    if d.Consensus.Checker.decided_fraction < 1.0 then
      Alcotest.failf "only %d/%d correct nodes decided under %s"
        d.Consensus.Checker.decided_correct d.Consensus.Checker.correct_total
        (Fault.to_string faults)
  done

(* The acceptance demo: one plan combining crash-recovery, a lossy link and
   partition-and-heal. Hardened wPAXOS decides on all five nodes (node 4's
   new incarnation included); two-phase under the same plan stays safe but
   cannot decide — its ack-implies-delivered reasoning is exactly what the
   loss windows break. *)
let demo_plan =
  [
    Fault.Crash { node = 4; at = 3 };
    Fault.Link_drop { edge = (0, 1); from_ = 0; until = 25 };
    Fault.Partition { cut = [ 0; 1 ]; from_ = 5; until = 30 };
    Fault.Recover { node = 4; at = 35 };
    Fault.Link_drop { edge = (2, 3); from_ = 30; until = 40 };
  ]

let test_demo_wpaxos_decides_two_phase_does_not () =
  let n = 5 in
  Fault.validate ~n demo_plan;
  let d = degradation_of (Consensus.Wpaxos.make ()) ~n ~faults:demo_plan in
  Alcotest.(check bool) "wpaxos safe" true d.Consensus.Checker.safe;
  Alcotest.(check int) "all five correct" 5 d.Consensus.Checker.correct_total;
  Alcotest.(check int) "all five decide" 5 d.Consensus.Checker.decided_correct;
  Alcotest.(check bool) "recovered node went through an incarnation" true
    (d.Consensus.Checker.max_incarnation = 1);
  Alcotest.(check bool) "faults actually bit" true
    (d.Consensus.Checker.link_dropped > 0);
  (match d.Consensus.Checker.max_decide_time with
  | Some t ->
      Alcotest.(check bool) "decides after the plan quiesces" true
        (t >= Fault.horizon demo_plan)
  | None -> Alcotest.fail "no decision time");
  let d2 = degradation_of Consensus.Two_phase.algorithm ~n ~faults:demo_plan in
  Alcotest.(check bool) "two-phase safe under this plan" true
    d2.Consensus.Checker.safe;
  Alcotest.(check bool) "two-phase undecided" true
    (d2.Consensus.Checker.decided_fraction < 1.0)

(* The hardening is what buys the liveness above: the fault fuzzer pointed
   at ~retransmit:false (termination checking on) finds a plan that
   silences the paper's protocol forever, and shrinks it. *)
let test_fuzzer_breaks_unhardened_liveness () =
  let config =
    {
      Mcheck.Fuzz.default with
      iterations = 50;
      check_termination = true;
      max_time = 200_000;
      faults = Some Mcheck.Fuzz.default_fault_profile;
    }
  in
  match
    (Mcheck.Fuzz.run config (Consensus.Wpaxos.make ~retransmit:false ()) ~seed:1)
      .Mcheck.Fuzz.counterexample
  with
  | None -> Alcotest.fail "expected a liveness counterexample"
  | Some cx ->
      let open Mcheck.Fuzz in
      Alcotest.(check bool) "violation is liveness, not safety" true
        (List.for_all
           (function
             | Consensus.Checker.Termination_violation _ -> true
             | _ -> false)
           cx.violations);
      Alcotest.(check bool) "the plan is the culprit" true
        (cx.case.faults <> []);
      Alcotest.(check bool) "shrinking shrank it" true
        (List.length cx.case.faults <= List.length cx.original.faults
        && cx.case.n <= cx.original.n)

let () =
  Alcotest.run "degradation"
    [
      ( "safety",
        [
          Alcotest.test_case "two-phase safe under seeded plans" `Quick
            test_two_phase_safe_under_seeded_plans;
          Alcotest.test_case "wpaxos safe under seeded plans" `Quick
            test_wpaxos_safe_under_seeded_plans;
        ] );
      ( "liveness",
        [
          Alcotest.test_case "wpaxos decides once windows close" `Quick
            test_wpaxos_decides_once_windows_close;
          Alcotest.test_case "demo: wpaxos decides, two-phase stalls" `Quick
            test_demo_wpaxos_decides_two_phase_does_not;
          Alcotest.test_case "fuzzer breaks unhardened liveness" `Quick
            test_fuzzer_breaks_unhardened_liveness;
        ] );
    ]
