(* Byzantine-tolerant consensus (Tseng & Sardina BV-broadcast style):
   honest-only behavior here — unanimity, mixed inputs, crash tolerance
   (crashes are weaker than Byzantine faults, so f crashes must be
   survivable). The Byzantine campaigns live in test_byz and the fuzzer. *)

let run ?(crashes = []) ?(fack = 4) ~n ~seed inputs =
  Consensus.Runner.run
    (Consensus.Byz_consensus.make ~seed ())
    ~topology:(Amac.Topology.clique n)
    ~scheduler:(Amac.Scheduler.random (Amac.Rng.create seed) ~fack)
    ~inputs ~crashes ~max_time:400_000

let check_ok what (result : Consensus.Runner.result) =
  if not (Consensus.Checker.ok result.report) then
    Alcotest.failf "%s: %s" what
      (String.concat "; " result.report.Consensus.Checker.problems)

let test_unanimous () =
  List.iter
    (fun value ->
      let result = run ~n:4 ~seed:1 (Consensus.Runner.inputs_all ~n:4 value) in
      check_ok "unanimous" result;
      Alcotest.(check (list int)) "decides the common input" [ value ]
        result.report.decided_values)
    [ 0; 1 ]

let test_mixed_inputs () =
  List.iter
    (fun seed ->
      check_ok "mixed"
        (run ~n:7 ~seed (Consensus.Runner.inputs_alternating ~n:7)))
    [ 1; 2; 3; 4; 5 ]

let test_small_networks () =
  (* n <= 3 forces f = 0: plain all-to-all agreement, still must work. *)
  check_ok "n=1" (run ~n:1 ~seed:1 [| 0 |]);
  check_ok "n=2" (run ~n:2 ~seed:2 [| 0; 1 |]);
  check_ok "n=3" (run ~n:3 ~seed:3 [| 1; 0; 1 |])

let test_survives_f_crashes () =
  (* f = floor((n-1)/3) crashes at assorted times: a crash is a Byzantine
     node that chose silence, so the quorum arithmetic must absorb it. *)
  List.iter
    (fun (n, crashes, seed) ->
      let result =
        run ~n ~seed ~crashes (Consensus.Runner.inputs_alternating ~n)
      in
      check_ok (Printf.sprintf "n=%d with %d crashes" n (List.length crashes))
        result)
    [
      (4, [ (1, 3) ], 1);
      (7, [ (0, 1); (4, 8) ], 2);
      (10, [ (2, 0); (5, 6); (8, 12) ], 3);
    ]

let test_requires_n () =
  Alcotest.check_raises "needs n"
    (Invalid_argument "Byz_consensus: requires knowledge of n") (fun () ->
      ignore
        (Consensus.Runner.run
           (Consensus.Byz_consensus.make ~seed:1 ())
           ~give_n:false
           ~topology:(Amac.Topology.clique 4)
           ~scheduler:Amac.Scheduler.synchronous ~inputs:[| 0; 1; 0; 1 |]))

let test_non_binary_rejected () =
  Alcotest.check_raises "binary only"
    (Invalid_argument "Byz_consensus: binary inputs only") (fun () ->
      ignore (run ~n:2 ~seed:1 [| 0; 3 |]))

let test_message_ids () =
  let result = run ~n:4 ~seed:9 (Consensus.Runner.inputs_alternating ~n:4) in
  Alcotest.(check int) "one id per message" 1
    result.outcome.max_ids_per_message

let prop_consensus_with_f_crashes =
  QCheck.Test.make
    ~name:"byz-consensus: consensus under up to f crash failures" ~count:100
    QCheck.(
      quad (int_range 1 10) small_int (int_range 1 6)
        (pair
           (list_of_size (Gen.return 10) bool)
           (list_of_size (Gen.return 3) (int_range 0 30))))
    (fun (n, seed, fack, (bits, crash_times)) ->
      let f = if n <= 3 then 0 else (n - 1) / 3 in
      let crashes =
        List.filteri (fun i _ -> i < f)
          (List.mapi (fun i t -> (i, t)) crash_times)
      in
      let inputs = Array.init n (fun i -> if List.nth bits i then 1 else 0) in
      let result = run ~n ~seed ~fack ~crashes inputs in
      Consensus.Checker.ok result.report)

let () =
  Alcotest.run "byz_consensus"
    [
      ( "unit",
        [
          Alcotest.test_case "unanimous" `Quick test_unanimous;
          Alcotest.test_case "mixed inputs" `Quick test_mixed_inputs;
          Alcotest.test_case "small networks" `Quick test_small_networks;
          Alcotest.test_case "survives f crashes" `Quick
            test_survives_f_crashes;
          Alcotest.test_case "requires n" `Quick test_requires_n;
          Alcotest.test_case "non-binary rejected" `Quick
            test_non_binary_rejected;
          Alcotest.test_case "message ids" `Quick test_message_ids;
        ] );
      ( "property",
        [ QCheck_alcotest.to_alcotest prop_consensus_with_f_crashes ] );
    ]
