(* Critical-path extraction and energy accounting (PR 8): the telescoping
   path-sum identity, hops growing with line diameter (the O(D·F_ack)
   comparison B12 gates), bottleneck sanity, the per-node segment identity
   active + idle + crashed = duration (including under crash/recovery),
   and profile JSON determinism. *)

module P = Obs.Provenance

(* Fixed ack delay for the clean O(D·F_ack) geometry; [seed] feeds the
   random scheduler in the runs that want schedule variety. *)
let run_line ?faults ?(random = false) ~seed ~n () =
  let prov = P.create () in
  let scheduler =
    if random then Amac.Scheduler.random (Amac.Rng.create seed) ~fack:3
    else Amac.Scheduler.fixed ~delay:3
  in
  let result =
    Consensus.Runner.run ?faults (Consensus.Wpaxos.make ())
      ~topology:(Amac.Topology.line n)
      ~scheduler
      ~inputs:(Array.init n (fun i -> i mod 2))
      ~record_trace:true ~provenance:prov
  in
  (prov, result.Consensus.Runner.outcome)

(* ---------- critical paths ---------- *)

let test_path_sum_identity () =
  let prov, _ = run_line ~seed:3 ~n:5 () in
  let paths = Obs.Critpath.paths prov in
  Alcotest.(check bool) "at least one decide path" true (paths <> []);
  List.iter
    (fun (p : Obs.Critpath.path) ->
      let edge_sum =
        List.fold_left
          (fun acc (e : Obs.Critpath.edge) -> acc + e.Obs.Critpath.e_latency)
          0 p.Obs.Critpath.edges
      in
      Alcotest.(check int)
        (Printf.sprintf "node %d: edges telescope to total" p.Obs.Critpath.node)
        p.Obs.Critpath.total edge_sum;
      Alcotest.(check int)
        (Printf.sprintf "node %d: total = decided_at - root_time"
           p.Obs.Critpath.node)
        (p.Obs.Critpath.decided_at - p.Obs.Critpath.root_time)
        p.Obs.Critpath.total;
      let share_sum =
        List.fold_left (fun acc (_, s) -> acc + s) 0 p.Obs.Critpath.shares
      in
      Alcotest.(check int)
        (Printf.sprintf "node %d: shares partition the total"
           p.Obs.Critpath.node)
        p.Obs.Critpath.total share_sum)
    paths

let max_hops prov =
  List.fold_left
    (fun acc (p : Obs.Critpath.path) -> max acc p.Obs.Critpath.hops)
    0
    (Obs.Critpath.paths prov)

let test_hops_grow_with_diameter () =
  (* The acceptance criterion behind bench B12: on a line, information
     must relay hop by hop, so wPAXOS decide paths lengthen with the
     diameter — strictly, at every doubling. *)
  let h5 = max_hops (fst (run_line ~seed:3 ~n:5 ()))
  and h9 = max_hops (fst (run_line ~seed:3 ~n:9 ()))
  and h17 = max_hops (fst (run_line ~seed:3 ~n:17 ())) in
  Alcotest.(check bool)
    (Printf.sprintf "hops strictly increase: %d < %d < %d" h5 h9 h17)
    true
    (h5 > 0 && h5 < h9 && h9 < h17);
  (* ...and linearly in the increments (the paths carry a constant setup
     offset, so compare slopes, not ratios): doubling the diameter step
     must double the hop growth, within a small slack. *)
  let d1 = h9 - h5 and d2 = h17 - h9 in
  Alcotest.(check bool)
    (Printf.sprintf "hop growth doubles with the diameter step: %d vs 2*%d" d2
       d1)
    true
    (d2 >= (2 * d1) - 4 && d2 <= (2 * d1) + 4)

let test_bottleneck_sane () =
  let prov, _ = run_line ~seed:3 ~n:5 () in
  List.iter
    (fun (p : Obs.Critpath.path) ->
      match Obs.Critpath.bottleneck p with
      | None -> Alcotest.fail "non-degenerate path has a bottleneck"
      | Some (node, frac) ->
          Alcotest.(check bool) "bottleneck node on the path" true
            (List.mem_assoc node p.Obs.Critpath.shares);
          Alcotest.(check bool)
            (Printf.sprintf "fraction %f in (0, 1]" frac)
            true
            (frac > 0.0 && frac <= 1.0))
    (Obs.Critpath.paths prov)

(* ---------- energy ---------- *)

let energy_of ?faults ~seed ~n () =
  let _, outcome = run_line ?faults ~seed ~n () in
  let spans = Amac.Trace_export.spans outcome.Amac.Engine.trace in
  ( Obs.Energy.account ~n ~duration:outcome.Amac.Engine.end_time spans,
    outcome )

let check_segment_identity (e : Obs.Energy.t) =
  Array.iteri
    (fun i (s : Obs.Energy.segments) ->
      Alcotest.(check int)
        (Printf.sprintf "node %d: active+idle+crashed = duration" i)
        e.Obs.Energy.duration
        (s.Obs.Energy.active + s.Obs.Energy.idle + s.Obs.Energy.crashed);
      Alcotest.(check bool)
        (Printf.sprintf "node %d: segments non-negative" i)
        true
        (s.Obs.Energy.active >= 0 && s.Obs.Energy.idle >= 0
       && s.Obs.Energy.crashed >= 0))
    e.Obs.Energy.per_node

let test_energy_identity () =
  let e, _ = energy_of ~seed:3 ~n:5 () in
  check_segment_identity e;
  let f = Obs.Energy.waiting_fraction e in
  Alcotest.(check bool) "waiting fraction in [0,1]" true (f >= 0.0 && f <= 1.0)

let test_energy_identity_crash_recovery () =
  let faults =
    [ Fault.Crash { node = 2; at = 10 }; Fault.Recover { node = 2; at = 50 } ]
  in
  let e, outcome = energy_of ~faults ~seed:7 ~n:5 () in
  check_segment_identity e;
  Alcotest.(check bool) "fixture recovered" true
    (outcome.Amac.Engine.incarnations.(2) = 1);
  let crashed = e.Obs.Energy.per_node.(2).Obs.Energy.crashed in
  Alcotest.(check int) "crashed window measured exactly" 40 crashed;
  Array.iteri
    (fun i (s : Obs.Energy.segments) ->
      if i <> 2 then
        Alcotest.(check int)
          (Printf.sprintf "node %d never crashed" i)
          0 s.Obs.Energy.crashed)
    e.Obs.Energy.per_node

let test_energy_unclosed_crash () =
  (* A crash with no recovery: crashed runs to the end of the run, and the
     identity still holds. *)
  let faults = [ Fault.Crash { node = 4; at = 15 } ] in
  let e, outcome = energy_of ~faults ~seed:5 ~n:5 () in
  check_segment_identity e;
  Alcotest.(check int) "crashed till the end"
    (e.Obs.Energy.duration - 15)
    e.Obs.Energy.per_node.(4).Obs.Energy.crashed;
  Alcotest.(check bool) "fixture stayed down" true
    outcome.Amac.Engine.crashed.(4)

(* ---------- profile export determinism ---------- *)

let profile_bytes seed =
  let prov, outcome = run_line ~random:true ~seed ~n:5 () in
  let spans = Amac.Trace_export.spans outcome.Amac.Engine.trace in
  let energy =
    Obs.Energy.account ~n:5 ~duration:outcome.Amac.Engine.end_time spans
  in
  let profile =
    Obs.Profile.make ~provenance:prov
      ~meta:[ ("seed", Obs.Json.Int seed); ("n", Obs.Json.Int 5) ]
      ~energy ()
  in
  Obs.Json.to_string (Obs.Profile.to_json profile)

let test_profile_deterministic () =
  List.iter
    (fun seed ->
      Alcotest.(check bool)
        (Printf.sprintf "seed %d: byte-identical" seed)
        true
        (String.equal (profile_bytes seed) (profile_bytes seed)))
    [ 1; 9; 42 ]

let () =
  Alcotest.run "profile"
    [
      ( "critical paths",
        [
          Alcotest.test_case "edge latencies telescope" `Quick
            test_path_sum_identity;
          Alcotest.test_case "hops grow with diameter" `Quick
            test_hops_grow_with_diameter;
          Alcotest.test_case "bottleneck is sane" `Quick test_bottleneck_sane;
        ] );
      ( "energy",
        [
          Alcotest.test_case "segment identity" `Quick test_energy_identity;
          Alcotest.test_case "segment identity under crash-recovery" `Quick
            test_energy_identity_crash_recovery;
          Alcotest.test_case "unclosed crash window" `Quick
            test_energy_unclosed_crash;
        ] );
      ( "export",
        [
          Alcotest.test_case "profile JSON deterministic" `Quick
            test_profile_deterministic;
        ] );
    ]
