(* Engine semantics tests, using small purpose-built probe algorithms. *)

module A = Amac.Algorithm

(* Probe 1: broadcast once at init, decide input on ack. *)
type once_state = { mutable acked : bool }

let once : (once_state, string) A.t =
  {
    name = "once";
    init = (fun _ctx -> ({ acked = false }, [ A.Broadcast "hello" ]));
    on_receive = (fun _ctx _st _msg -> []);
    on_ack =
      (fun ctx st ->
        if st.acked then []
        else begin
          st.acked <- true;
          [ A.Decide ctx.input ]
        end);
    msg_ids = (fun _ -> 0);
    hooks = None;
  }

(* Probe 2: attempt two broadcasts back-to-back at init — the second must be
   discarded by the MAC layer. *)
let greedy : (unit, string) A.t =
  {
    name = "greedy";
    init = (fun _ctx -> ((), [ A.Broadcast "first"; A.Broadcast "second" ]));
    on_receive = (fun _ctx () _msg -> []);
    on_ack = (fun ctx () -> [ A.Decide ctx.input ]);
    msg_ids = (fun _ -> 0);
    hooks = None;
  }

(* Probe 3: count deliveries; decide the count when it reaches [target]. *)
type counter_state = { mutable seen : int }

let counter ~target : (counter_state, string) A.t =
  {
    name = "counter";
    init = (fun _ctx -> ({ seen = 0 }, [ A.Broadcast "ping" ]));
    on_receive =
      (fun _ctx st _msg ->
        st.seen <- st.seen + 1;
        if st.seen = target then [ A.Decide st.seen ] else []);
    on_ack = (fun _ctx _st -> []);
    msg_ids = (fun _ -> 0);
    hooks = None;
  }

(* Probe 4: forever-rebroadcasting node (for max_time tests). *)
let forever : (unit, string) A.t =
  {
    name = "forever";
    init = (fun _ctx -> ((), [ A.Broadcast "x" ]));
    on_receive = (fun _ctx () _msg -> []);
    on_ack = (fun _ctx () -> [ A.Broadcast "x" ]);
    msg_ids = (fun _ -> 0);
    hooks = None;
  }

let run ?identities ?give_n ?crashes ?max_time ?stop_when_all_decided
    ?track_causal ?record_trace algorithm ~topology ~scheduler ~inputs =
  Amac.Engine.run ?identities ?give_n ?crashes ?max_time
    ?stop_when_all_decided ?track_causal ?record_trace algorithm ~topology
    ~scheduler ~inputs

let clique3 = Amac.Topology.clique 3

let test_ack_after_deliveries () =
  (* Under the synchronous scheduler everyone's single broadcast is acked at
     t=1 and every node hears both neighbors. *)
  let outcome =
    run (counter ~target:2) ~topology:clique3
      ~scheduler:Amac.Scheduler.synchronous ~inputs:[| 0; 0; 0 |]
  in
  Alcotest.(check int) "three broadcasts" 3 outcome.broadcasts;
  Alcotest.(check int) "six deliveries" 6 outcome.deliveries;
  Array.iter
    (function
      | Some (value, time) ->
          Alcotest.(check int) "decided count" 2 value;
          Alcotest.(check int) "at t=1" 1 time
      | None -> Alcotest.fail "all decide")
    outcome.decisions

let test_decision_times () =
  let outcome =
    run once ~topology:clique3 ~scheduler:(Amac.Scheduler.fixed ~delay:4)
      ~inputs:[| 1; 1; 1 |]
  in
  Alcotest.(check (list int)) "acks at fack" [ 4; 4; 4 ]
    (Amac.Engine.decision_times outcome);
  Alcotest.(check (option int)) "latest" (Some 4)
    (Amac.Engine.latest_decision outcome);
  Alcotest.(check bool) "all decided" true (Amac.Engine.all_decided outcome)

let test_busy_discard () =
  let outcome =
    run greedy ~topology:clique3 ~scheduler:Amac.Scheduler.synchronous
      ~inputs:[| 0; 0; 0 |]
  in
  Alcotest.(check int) "one discard per node" 3 outcome.discarded;
  Alcotest.(check int) "one accepted per node" 3 outcome.broadcasts

let test_input_mismatch () =
  Alcotest.check_raises "bad inputs"
    (Invalid_argument "Engine.run: inputs length mismatches topology size")
    (fun () ->
      ignore
        (run once ~topology:clique3 ~scheduler:Amac.Scheduler.synchronous
           ~inputs:[| 0 |]))

let test_crash_before_broadcast_delivery () =
  (* Node 0 crashes at t=0: its init broadcast (deliveries at t=1) is lost
     entirely; the other two still hear each other. *)
  let outcome =
    run (counter ~target:1) ~topology:clique3
      ~scheduler:Amac.Scheduler.synchronous ~crashes:[ (0, 0) ]
      ~inputs:[| 0; 0; 0 |]
  in
  Alcotest.(check bool) "node 0 crashed" true outcome.crashed.(0);
  Alcotest.(check (option (pair int int))) "node 0 undecided" None
    outcome.decisions.(0);
  Alcotest.(check bool) "others decided" true
    (outcome.decisions.(1) <> None && outcome.decisions.(2) <> None);
  (* 4 deliveries would happen crash-free among nodes 1,2 plus 2 from node
     0; the crash drops node 0's 2 deliveries and the 2 deliveries to it. *)
  Alcotest.(check int) "dropped deliveries" 4 outcome.dropped

let test_crash_mid_broadcast () =
  (* Line 0-1-2; node 1 broadcasts with per-edge delays: to node 0 at t=1,
     to node 2 at t=5. Crashing node 1 at t=3 delivers to 0 but not 2 —
     the non-atomicity of Sec 2. *)
  let line = Amac.Topology.line 3 in
  let sched =
    Amac.Scheduler.per_edge ~name:"split" ~fack:5
      ~delay:(fun ~sender:_ ~receiver -> if receiver = 0 then 1 else 5)
  in
  let outcome =
    run (counter ~target:1) ~topology:line ~scheduler:sched
      ~crashes:[ (1, 3) ] ~inputs:[| 0; 0; 0 |]
      ~stop_when_all_decided:false
  in
  (match outcome.decisions.(0) with
  | Some (1, 1) -> ()
  | Some _ | None -> Alcotest.fail "node 0 should hear node 1 at t=1");
  (* Node 2 only ever hears... nothing: node 1's delivery to it was dropped,
     and node 2's own broadcast went to the crashed node 1 only. *)
  Alcotest.(check (option (pair int int))) "node 2 heard nothing" None
    outcome.decisions.(2)

(* Under the synchronous scheduler every delivery of a broadcast lands at
   the same tick, so a crash cannot split one broadcast's audience: crashing
   inside the window (crash events sort before same-tick receives) silences
   the whole broadcast, crashing after it changes nothing. The genuinely
   partial case needs staggered deliveries — see [test_crash_mid_broadcast]
   above (per-edge delays) and the mcheck explorer, which branches over
   every prefix. *)
let test_crash_window_synchronous () =
  let silenced =
    run (counter ~target:1) ~topology:clique3
      ~scheduler:Amac.Scheduler.synchronous ~crashes:[ (0, 1) ]
      ~inputs:[| 0; 0; 0 |]
  in
  (* Node 0's two deliveries (due exactly at t=1) are dropped, as are the
     two deliveries to it. *)
  Alcotest.(check int) "whole broadcast silenced" 4 silenced.dropped;
  Alcotest.(check (option (pair int int))) "node 0 undecided" None
    silenced.decisions.(0);
  let after =
    run (counter ~target:1) ~topology:clique3
      ~scheduler:Amac.Scheduler.synchronous ~crashes:[ (0, 2) ]
      ~inputs:[| 0; 0; 0 |]
  in
  Alcotest.(check int) "window already closed: nothing dropped" 0 after.dropped;
  Alcotest.(check bool) "everyone heard everyone" true
    (Array.for_all (fun d -> d <> None) after.decisions)

let test_crash_window_max_delay () =
  (* max_delay stretches the window to its full F_ack but still delivers
     everything at one tick: a crash at t=3 inside a (0, 5] window silences
     node 1's broadcast entirely, and node 1 (crashed before t=5) also never
     receives its neighbors' broadcasts. *)
  let line = Amac.Topology.line 3 in
  let outcome =
    run (counter ~target:1) ~topology:line
      ~scheduler:(Amac.Scheduler.max_delay ~fack:5)
      ~crashes:[ (1, 3) ] ~inputs:[| 0; 0; 0 |] ~stop_when_all_decided:false
  in
  Alcotest.(check int) "all four deliveries dropped" 4 outcome.dropped;
  Alcotest.(check bool) "nobody hears anything" true
    (Array.for_all (fun d -> d = None) outcome.decisions)

let test_crashed_node_silent () =
  (* After crashing, a node's pending ack must not fire (it takes no steps),
     so `forever` on a crashed node generates no further broadcasts. *)
  let outcome =
    run forever
      ~topology:(Amac.Topology.clique 2)
      ~scheduler:Amac.Scheduler.synchronous ~crashes:[ (0, 0); (1, 5) ]
      ~max_time:50 ~stop_when_all_decided:false ~inputs:[| 0; 0 |]
  in
  (* node 0 crashed at 0 having broadcast once at init; node 1 rebroadcasts
     every tick until its crash at t=5: broadcasts at 0,1,2,3,4 (ack at 5 is
     dropped). Total = 1 + 5. *)
  Alcotest.(check int) "bounded broadcasts" 6 outcome.broadcasts

let test_max_time () =
  let outcome =
    run forever ~topology:clique3 ~scheduler:Amac.Scheduler.synchronous
      ~max_time:20 ~stop_when_all_decided:false ~inputs:[| 0; 0; 0 |]
  in
  Alcotest.(check bool) "hit max time" true outcome.hit_max_time;
  Alcotest.(check bool) "stopped near cap" true (outcome.end_time <= 20)

let test_determinism () =
  let go () =
    let rng = Amac.Rng.create 99 in
    run (counter ~target:2) ~topology:clique3
      ~scheduler:(Amac.Scheduler.random rng ~fack:7)
      ~inputs:[| 0; 1; 0 |]
  in
  let a = go () and b = go () in
  Alcotest.(check int) "same end time" a.end_time b.end_time;
  Alcotest.(check int) "same deliveries" a.deliveries b.deliveries;
  Alcotest.(check bool) "same decisions" true (a.decisions = b.decisions)

let test_scheduler_contract_enforced () =
  let bad_ack =
    Amac.Scheduler.make ~name:"bad-ack" ~fack:3
      (fun ~now ~sender:_ ~neighbors ->
        {
          Amac.Scheduler.receives = List.map (fun v -> (v, now + 1)) neighbors;
          ack_at = now + 10;
        })
  in
  (try
     ignore
       (run once ~topology:clique3 ~scheduler:bad_ack ~inputs:[| 0; 0; 0 |]);
     Alcotest.fail "late ack accepted"
   with Invalid_argument _ -> ());
  let wrong_neighbors =
    Amac.Scheduler.make ~name:"drops" ~fack:3
      (fun ~now ~sender:_ ~neighbors:_ ->
        { Amac.Scheduler.receives = []; ack_at = now + 1 })
  in
  try
    ignore
      (run once ~topology:clique3 ~scheduler:wrong_neighbors
         ~inputs:[| 0; 0; 0 |]);
    Alcotest.fail "dropped neighbors accepted"
  with Invalid_argument _ -> ()

let test_irrevocability_tracking () =
  let fickle : (unit, string) A.t =
    {
      name = "fickle";
      init = (fun _ctx -> ((), [ A.Broadcast "x" ]));
      on_receive = (fun _ctx () _msg -> []);
      on_ack = (fun _ctx () -> [ A.Decide 0; A.Decide 1; A.Decide 0 ]);
      msg_ids = (fun _ -> 0);
      hooks = None;
    }
  in
  let outcome =
    run fickle
      ~topology:(Amac.Topology.clique 2)
      ~scheduler:Amac.Scheduler.synchronous ~inputs:[| 0; 0 |]
  in
  (* First decide recorded; the conflicting re-decide flagged; the repeat of
     the original value ignored. *)
  Alcotest.(check int) "two violations" 2 (List.length outcome.extra_decides);
  Array.iter
    (function
      | Some (0, _) -> ()
      | Some _ | None -> Alcotest.fail "first decision kept")
    outcome.decisions

let test_causal_tracking () =
  (* Line 0-1-2-3 under max_delay(5): influence crosses one hop per 5
     ticks. *)
  let outcome =
    run forever
      ~topology:(Amac.Topology.line 4)
      ~scheduler:(Amac.Scheduler.max_delay ~fack:5)
      ~track_causal:true ~max_time:40 ~stop_when_all_decided:false
      ~inputs:[| 0; 0; 0; 0 |]
  in
  let causal = Option.get outcome.causal in
  Alcotest.(check (option int)) "self at 0" (Some 0)
    (Amac.Causal.first_influence causal ~node:2 ~origin:2);
  Alcotest.(check (option int)) "one hop" (Some 5)
    (Amac.Causal.first_influence causal ~node:1 ~origin:0);
  Alcotest.(check (option int)) "three hops" (Some 15)
    (Amac.Causal.first_influence causal ~node:3 ~origin:0);
  Alcotest.(check (option int)) "full influence at 3 hops" (Some 15)
    (Amac.Causal.earliest_full_influence causal ~node:3)

let test_trace_recording () =
  let outcome =
    run once
      ~topology:(Amac.Topology.clique 2)
      ~scheduler:Amac.Scheduler.synchronous ~record_trace:true
      ~inputs:[| 0; 1 |]
  in
  let entries = outcome.trace in
  Alcotest.(check bool) "nonempty" true (entries <> []);
  let decisions = Amac.Trace.decisions entries in
  Alcotest.(check int) "two decides" 2 (List.length decisions);
  let node0 = Amac.Trace.for_node entries 0 in
  Alcotest.(check bool) "filtered to node 0" true
    (List.for_all (fun e -> Amac.Trace.node_of e = 0) node0);
  (* Times never decrease along the trace. *)
  let times = List.map Amac.Trace.time_of entries in
  Alcotest.(check bool) "monotone times" true
    (List.sort Int.compare times = times)

let test_anonymous_identities () =
  let identities = Amac.Node_id.identity_assignment ~n:3 ~kind:`Anonymous in
  let outcome =
    run once ~topology:clique3 ~scheduler:Amac.Scheduler.synchronous
      ~identities ~inputs:[| 1; 1; 1 |]
  in
  Alcotest.(check bool) "anonymous run decides" true
    (Amac.Engine.all_decided outcome)

(* The resumable API must agree step-for-step with the monolithic run. *)
let test_step_engine_matches_run () =
  let scheduler () = Amac.Scheduler.random (Amac.Rng.create 5) ~fack:4 in
  let reference =
    run (counter ~target:2) ~topology:clique3 ~scheduler:(scheduler ())
      ~inputs:[| 0; 1; 0 |]
  in
  let sim =
    Amac.Engine.create (counter ~target:2) ~topology:clique3
      ~scheduler:(scheduler ()) ~inputs:[| 0; 1; 0 |]
  in
  Alcotest.(check bool) "not finished at creation" false
    (Amac.Engine.finished sim);
  let steps = ref 0 in
  let last_now = ref (Amac.Engine.now sim) in
  let rec drain () =
    match Amac.Engine.step sim with
    | `Stepped ->
        incr steps;
        Alcotest.(check bool) "time monotone" true
          (Amac.Engine.now sim >= !last_now);
        last_now := Amac.Engine.now sim;
        drain ()
    | `Done | `Capped -> ()
  in
  drain ();
  Alcotest.(check bool) "finished after drain" true (Amac.Engine.finished sim);
  Alcotest.(check bool) "stepped at least once" true (!steps > 0);
  let snap = Amac.Engine.snapshot sim in
  Alcotest.(check bool) "same decisions" true
    (snap.decisions = reference.decisions);
  Alcotest.(check int) "same end time" reference.end_time snap.end_time;
  Alcotest.(check int) "same deliveries" reference.deliveries snap.deliveries;
  Alcotest.(check int) "same broadcasts" reference.broadcasts snap.broadcasts

let test_step_engine_midway_snapshot () =
  (* Snapshots are pure observations: taking one midway must not disturb the
     rest of the run. *)
  let sim =
    Amac.Engine.create once ~topology:clique3
      ~scheduler:Amac.Scheduler.synchronous ~inputs:[| 0; 0; 0 |]
  in
  (match Amac.Engine.step sim with
  | `Stepped -> ()
  | `Done | `Capped -> Alcotest.fail "run cannot finish in one event");
  let mid = Amac.Engine.snapshot sim in
  while not (Amac.Engine.finished sim) do
    ignore (Amac.Engine.step sim)
  done;
  let final = Amac.Engine.snapshot sim in
  Alcotest.(check bool) "midway sees fewer events" true
    (mid.events_processed < final.events_processed);
  Alcotest.(check bool) "final all decided" true
    (Amac.Engine.all_decided final)

(* Property: for random schedulers, every node's delivery count matches the
   topology (everyone hears each neighbor's broadcast exactly once) and the
   full outcome is reproducible from the seed. *)
let prop_delivery_conservation =
  QCheck.Test.make ~name:"deliveries = sum of degrees, reproducibly"
    ~count:150
    QCheck.(triple small_int (int_range 2 12) (int_range 1 8))
    (fun (seed, n, fack) ->
      let rng = Amac.Rng.create (seed + 3) in
      let topology = Amac.Topology.random_connected rng ~n ~extra_edges:2 in
      let go () =
        run once ~topology
          ~scheduler:(Amac.Scheduler.random (Amac.Rng.create seed) ~fack)
          ~inputs:(Array.make n 0)
      in
      let a = go () and b = go () in
      let degree_sum =
        List.fold_left ( + ) 0
          (List.init n (Amac.Topology.degree topology))
      in
      a.deliveries = degree_sum && a.deliveries = b.deliveries
      && a.end_time = b.end_time)

let prop_trace_times_monotone =
  QCheck.Test.make ~name:"recorded traces have monotone times" ~count:80
    QCheck.(pair small_int (int_range 2 8))
    (fun (seed, n) ->
      let outcome =
        run (counter ~target:1) ~topology:(Amac.Topology.clique n)
          ~scheduler:(Amac.Scheduler.random (Amac.Rng.create seed) ~fack:5)
          ~record_trace:true ~inputs:(Array.make n 0)
      in
      let times = List.map Amac.Trace.time_of outcome.trace in
      List.sort Int.compare times = times)

let prop_once_decides_at_ack_time =
  (* Whatever the (random) scheduler does, `once` decides exactly when its
     first ack arrives, which is within F_ack. *)
  QCheck.Test.make ~name:"decisions land within F_ack for one broadcast"
    ~count:200
    QCheck.(pair small_int (int_range 1 20))
    (fun (seed, fack) ->
      let outcome =
        run once ~topology:clique3
          ~scheduler:(Amac.Scheduler.random (Amac.Rng.create seed) ~fack)
          ~inputs:[| 0; 0; 0 |]
      in
      List.for_all (fun t -> t >= 1 && t <= fack)
        (Amac.Engine.decision_times outcome))

let () =
  Alcotest.run "engine"
    [
      ( "semantics",
        [
          Alcotest.test_case "ack after deliveries" `Quick
            test_ack_after_deliveries;
          Alcotest.test_case "decision times" `Quick test_decision_times;
          Alcotest.test_case "busy discard" `Quick test_busy_discard;
          Alcotest.test_case "input mismatch" `Quick test_input_mismatch;
          Alcotest.test_case "crash before delivery" `Quick
            test_crash_before_broadcast_delivery;
          Alcotest.test_case "crash mid-broadcast" `Quick
            test_crash_mid_broadcast;
          Alcotest.test_case "crash window: synchronous" `Quick
            test_crash_window_synchronous;
          Alcotest.test_case "crash window: max delay" `Quick
            test_crash_window_max_delay;
          Alcotest.test_case "crashed node silent" `Quick
            test_crashed_node_silent;
          Alcotest.test_case "max time" `Quick test_max_time;
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "scheduler contract enforced" `Quick
            test_scheduler_contract_enforced;
          Alcotest.test_case "irrevocability tracking" `Quick
            test_irrevocability_tracking;
          Alcotest.test_case "causal tracking" `Quick test_causal_tracking;
          Alcotest.test_case "trace recording" `Quick test_trace_recording;
          Alcotest.test_case "anonymous identities" `Quick
            test_anonymous_identities;
          Alcotest.test_case "step engine matches run" `Quick
            test_step_engine_matches_run;
          Alcotest.test_case "step engine midway snapshot" `Quick
            test_step_engine_midway_snapshot;
        ] );
      ( "property",
        [
          QCheck_alcotest.to_alcotest prop_once_decides_at_ack_time;
          QCheck_alcotest.to_alcotest prop_delivery_conservation;
          QCheck_alcotest.to_alcotest prop_trace_times_monotone;
        ] );
    ]
