(* Tentpole: the replicated log (lib/smr) driven by the workload generator
   (lib/workload), judged by Smr_checker.

   Covers: a clean closed-loop run commits everything on every replica; the
   ISSUE's acceptance scenario (5 nodes, bursty scheduler, loss-window fault
   plan, >= 200 commands, deterministic from one seed); leader crash
   mid-stream (re-election picks up the log); pipelining window extremes
   behave identically safety-wise; injections to a crashed replica are lost,
   not ghost-submitted; and a seeded fuzz smoke over random
   topology/scheduler/fault draws. *)

let check_clean label (r : Workload.result) =
  Alcotest.(check (list string))
    (label ^ ": no safety violations")
    []
    (List.map Smr_checker.to_string r.violations)

let test_closed_loop_clean () =
  let n = 5 and cmds = 50 in
  let r =
    Workload.run
      ~topology:(Amac.Topology.clique n)
      ~scheduler:Amac.Scheduler.synchronous ~seed:7 ~cmds
      ~mode:(Workload.Closed_loop { clients_per_node = 1 })
      ()
  in
  check_clean "clean closed loop" r;
  Alcotest.(check int) "all commands issued" cmds r.issued;
  Alcotest.(check int) "all commands submitted" cmds r.submitted;
  Alcotest.(check int) "all commands committed" cmds r.committed;
  Alcotest.(check bool)
    "every replica's prefix covers every command" true
    (r.commit_index_min >= cmds);
  Alcotest.(check int)
    "one latency sample per command" cmds
    (Array.length r.latencies);
  (* Quiescence: the run drained on its own, not via the time guard. *)
  Alcotest.(check bool) "run quiesced" false r.outcome.Amac.Engine.hit_max_time

let acceptance_faults =
  [
    Fault.Link_drop { edge = (0, 1); from_ = 40; until = 140 };
    Fault.Link_drop { edge = (2, 3); from_ = 300; until = 420 };
    Fault.Link_drop { edge = (1, 4); from_ = 800; until = 900 };
  ]

let acceptance_run () =
  Workload.run ~window:4 ~faults:acceptance_faults
    ~topology:(Amac.Topology.clique 5)
    ~scheduler:(Amac.Scheduler.bursty ~fack:3 ~fast_len:40 ~slow_len:12)
    ~seed:42 ~cmds:250
    ~mode:(Workload.Closed_loop { clients_per_node = 1 })
    ()

(* The ISSUE's acceptance scenario: a 5-node log under the bursty scheduler
   with bounded loss windows commits >= 200 commands with the checker
   clean, deterministically from the seed. *)
let test_acceptance_scenario () =
  let r = acceptance_run () in
  check_clean "acceptance" r;
  Alcotest.(check bool)
    (Printf.sprintf "committed %d >= 200" r.committed)
    true (r.committed >= 200);
  Alcotest.(check bool)
    "min commit index >= 200" true
    (r.commit_index_min >= 200)

let test_acceptance_deterministic () =
  let a = acceptance_run () and b = acceptance_run () in
  Alcotest.(check int) "same committed" a.committed b.committed;
  Alcotest.(check int)
    "same end time" a.outcome.Amac.Engine.end_time
    b.outcome.Amac.Engine.end_time;
  Alcotest.(check int)
    "same event count" a.outcome.Amac.Engine.events_processed
    b.outcome.Amac.Engine.events_processed;
  Alcotest.(check (array int)) "same latencies" a.latencies b.latencies;
  Alcotest.(check int)
    "same min commit index" a.commit_index_min b.commit_index_min

(* Ω elects the highest unsuspected id, so node n-1 leads initially;
   crashing it mid-stream forces re-election and lease re-establishment.
   The dead leader's client stops resubmitting, but the four survivors'
   clients keep the global budget draining. *)
let test_leader_crash () =
  let n = 5 and cmds = 60 in
  let r =
    Workload.run
      ~crashes:[ (n - 1, 35) ]
      ~topology:(Amac.Topology.clique n)
      ~scheduler:(Amac.Scheduler.random (Amac.Rng.create 11) ~fack:2)
      ~seed:13 ~cmds
      ~mode:(Workload.Closed_loop { clients_per_node = 1 })
      ()
  in
  check_clean "leader crash" r;
  Alcotest.(check bool)
    (Printf.sprintf "committed %d >= issued - 1 = %d" r.committed
       (r.issued - 1))
    true
    (r.committed >= r.issued - 1);
  Alcotest.(check bool) "made real progress" true (r.committed >= 40)

let test_window_extremes () =
  List.iter
    (fun window ->
      let label = Printf.sprintf "window=%d" window in
      let r =
        Workload.run ~window
          ~topology:(Amac.Topology.line 4)
          ~scheduler:(Amac.Scheduler.random (Amac.Rng.create 5) ~fack:2)
          ~seed:99 ~cmds:40
          ~mode:(Workload.Open_loop { mean_gap = 6 })
          ()
      in
      check_clean label r;
      Alcotest.(check int) (label ^ ": all committed") 40 r.committed;
      Alcotest.(check bool)
        (label ^ ": prefix complete everywhere")
        true (r.commit_index_min >= 40))
    [ 1; 8 ]

(* An injection whose target is down at pop time is lost like a client call
   to a dead server: never submitted, never committed, no ghost latency. *)
let test_injection_to_crashed_node_lost () =
  let n = 3 in
  (* Open loop, seed-chosen placement; crash node 0 for the whole run and
     count only what reached live replicas. *)
  let r =
    Workload.run
      ~crashes:[ (0, 0) ]
      ~topology:(Amac.Topology.clique n)
      ~scheduler:Amac.Scheduler.synchronous ~seed:3 ~cmds:30
      ~mode:(Workload.Open_loop { mean_gap = 5 })
      ()
  in
  check_clean "crashed-target injections" r;
  Alcotest.(check int) "committed = submitted" r.submitted r.committed;
  Alcotest.(check bool)
    (Printf.sprintf "some injections lost (submitted %d < issued %d)"
       r.submitted r.issued)
    true
    (r.submitted < r.issued);
  Alcotest.(check int)
    "engine handed over exactly the live-target injections" r.submitted
    r.outcome.Amac.Engine.injected

let test_fuzz_smoke () =
  let config =
    { Smr_fuzz.default with iterations = 25; cmds = 15; max_time = 200_000 }
  in
  let outcome = Smr_fuzz.run config ~seed:2026 in
  (match outcome.Smr_fuzz.failure with
  | None -> ()
  | Some f -> Alcotest.failf "fuzz failure:@.%a" Smr_fuzz.pp_failure f);
  Alcotest.(check int) "all iterations ran" 25 outcome.Smr_fuzz.iterations_run

(* ------------------------------------------------------------------ *)
(* Satellite: straggler-repair retry (the documented pre-PR 7 bug).

   The bug: repair used to ride heartbeat piggybacking alone — a replica
   that is ahead answers a lagging commit index only at the moment it
   hears it, and answering is not "work", so the cluster quiesces with the
   repair conversation half-done. Deterministic reproduction: node 0 is a
   LEARNER (never runs a candidate lease of its own) that crash-recovers
   after the voters have committed everything and gone quiet. The only way
   it ever announces its lagging commit index is by relaying a leader
   heartbeat (relays stamp the sender's own commit), so it advances
   exactly one repaired instance per heartbeat the leader happens to send.
   Legacy ([repair_retries = 0]): the leader's brief post-recovery
   activity (re-preparing on the recovery's change flood) stops after a
   few heartbeats, the echo loop dies, and the learner is stuck with a
   permanently short log — forever, since answering repairs was never
   "work". The fix: an unfinished repair IS work, with a bounded
   exponential-backoff re-answer schedule whose budget resets whenever the
   straggler's commit moves — the leader keeps heartbeating, every
   heartbeat lets the learner relay/re-announce, and the loop runs to
   convergence. *)

let learner_restart_after_quiescence ~repair_retries =
  let n = 3 and cmds = 30 in
  Workload.run ~repair_retries ~members:[ 1; 2 ]
    ~faults:
      [
        Fault.Crash { node = 0; at = 10 };
        Fault.Recover { node = 0; at = 1_500 };
      ]
    ~topology:(Amac.Topology.clique n)
    ~scheduler:(Amac.Scheduler.random (Amac.Rng.create 17) ~fack:2)
    ~seed:23 ~cmds
    ~mode:(Workload.Open_loop { mean_gap = 5 })
    ()

let test_repair_regression () =
  (* Legacy behavior: safe, but the restarted learner never recovers the
     log. *)
  let legacy = learner_restart_after_quiescence ~repair_retries:0 in
  check_clean "repair legacy (retries=0)" legacy;
  Alcotest.(check bool)
    (Printf.sprintf
       "legacy stalls: restarter stuck at commit %d < cluster %d"
       legacy.commit_index_min legacy.commit_index_max)
    true
    (legacy.commit_index_min < legacy.commit_index_max);
  (* With the bounded retry schedule the same run converges. *)
  let fixed = learner_restart_after_quiescence ~repair_retries:8 in
  check_clean "repair fixed (retries=8)" fixed;
  Alcotest.(check int) "fixed converges: all replicas at the same commit"
    fixed.commit_index_max fixed.commit_index_min;
  Alcotest.(check bool) "fixed covers the full log" true
    (fixed.commit_index_min >= fixed.committed)

(* ------------------------------------------------------------------ *)
(* Tentpole: log compaction + snapshot transfer. *)

let test_compaction_truncates_and_transfers () =
  let n = 4 and cmds = 40 in
  let r =
    Workload.run ~compact_every:10
      ~faults:
        [
          Fault.Crash { node = 0; at = 200 };
          Fault.Recover { node = 0; at = 2_000 };
        ]
      ~topology:(Amac.Topology.clique n)
      ~scheduler:(Amac.Scheduler.random (Amac.Rng.create 31) ~fack:2)
      ~seed:47 ~cmds
      ~mode:(Workload.Open_loop { mean_gap = 8 })
      ()
  in
  check_clean "compaction + transfer" r;
  Alcotest.(check bool) "snapshots were taken" true (r.snapshots_taken > 0);
  Alcotest.(check bool)
    (Printf.sprintf "restarter installed a snapshot (installed=%d)"
       r.snapshots_installed)
    true
    (r.snapshots_installed > 0);
  Alcotest.(check int) "converged" r.commit_index_max r.commit_index_min;
  let h = r.handle in
  List.iter
    (fun node ->
      match Smr.snapshot h node with
      | Some s ->
          Alcotest.(check bool)
            (Printf.sprintf "node %d: log truncated below floor %d" node
               s.Smr.floor)
            true
            (List.for_all (fun (i, _) -> i >= s.Smr.floor) (Smr.log h node))
      | None -> ())
    (Smr.nodes h);
  (* Exactly-once apply ACROSS the snapshot install: every replica applied
     the identical command sequence, snapshot-inherited prefix included. *)
  let reference = Smr.applied h (List.hd (Smr.nodes h)) in
  List.iter
    (fun node ->
      Alcotest.(check (list int))
        (Printf.sprintf "node %d applied the same sequence" node)
        reference (Smr.applied h node))
    (Smr.nodes h)

(* ------------------------------------------------------------------ *)
(* Tentpole: joint-consensus membership reconfiguration. *)

let test_reconfig_scale_up () =
  let n = 5 and cmds = 30 in
  let r =
    Workload.run ~members:[ 0; 1; 2 ]
      ~reconfigs:[ (0, 300, [ 0; 1; 2; 3; 4 ]) ]
      ~topology:(Amac.Topology.clique n)
      ~scheduler:(Amac.Scheduler.random (Amac.Rng.create 53) ~fack:2)
      ~seed:59 ~cmds
      ~mode:(Workload.Open_loop { mean_gap = 15 })
      ()
  in
  check_clean "scale-up 3->5" r;
  Alcotest.(check int) "all commands committed" r.submitted r.committed;
  Alcotest.(check int) "every replica completed the reconfiguration" 1
    r.epoch_min;
  Alcotest.(check int) "exactly one epoch" 1 r.epoch_max;
  let h = r.handle in
  List.iter
    (fun node ->
      Alcotest.(check (list int))
        (Printf.sprintf "node %d adopted the new membership" node)
        [ 0; 1; 2; 3; 4 ] (Smr.members h node);
      Alcotest.(check bool)
        (Printf.sprintf "node %d left the transition" node)
        true
        (Smr.joint h node = None))
    (Smr.nodes h);
  Alcotest.(check int) "converged" r.commit_index_max r.commit_index_min

let test_reconfig_scale_down_with_learner_tail () =
  (* 5 -> 3: the removed replicas (including the old leader, the largest
     id) become learners — they keep applying and repairing but carry no
     vote and never lead. *)
  let n = 5 and cmds = 30 in
  let r =
    Workload.run
      ~reconfigs:[ (1, 300, [ 0; 1; 2 ]) ]
      ~topology:(Amac.Topology.clique n)
      ~scheduler:(Amac.Scheduler.random (Amac.Rng.create 61) ~fack:2)
      ~seed:67 ~cmds
      ~mode:(Workload.Open_loop { mean_gap = 15 })
      ()
  in
  check_clean "scale-down 5->3" r;
  Alcotest.(check int) "all commands committed" r.submitted r.committed;
  Alcotest.(check int) "every replica completed the reconfiguration" 1
    r.epoch_min;
  Alcotest.(check int) "converged (learners repaired too)"
    r.commit_index_max r.commit_index_min;
  let h = r.handle in
  List.iter
    (fun node ->
      Alcotest.(check (list int))
        (Printf.sprintf "node %d sees members {0,1,2}" node)
        [ 0; 1; 2 ] (Smr.members h node))
    (Smr.nodes h)

(* Review regression: a learner whose id exceeds every voter must not
   elect ITSELF when it suspects the leader (it used to: Fd.candidate
   folded from base:me without the eligibility check, and nothing ever
   re-adopted a real leader with a smaller id — the learner heartbeated
   and re-prepared as a phantom leader forever). Voters {0,1,2} with
   learners 3 and 4 awaiting a scale-up that never comes; crashing leader
   2 forces every survivor — learners included — through re-election. *)
let test_learner_never_self_elects () =
  let n = 5 and cmds = 20 in
  let r =
    Workload.run ~members:[ 0; 1; 2 ]
      ~faults:[ Fault.Crash { node = 2; at = 100 } ]
      ~topology:(Amac.Topology.clique n)
      ~scheduler:(Amac.Scheduler.random (Amac.Rng.create 71) ~fack:2)
      ~seed:73 ~cmds
      ~mode:(Workload.Open_loop { mean_gap = 8 })
      ()
  in
  check_clean "learner election" r;
  Alcotest.(check bool) "made progress past the crash" true (r.committed > 0);
  let h = r.handle in
  List.iter
    (fun node ->
      let omega = Smr.leader h node in
      if node >= 3 then
        Alcotest.(check bool)
          (Printf.sprintf "learner %d's omega %d is not itself" node omega)
          true (omega <> node);
      if node <> 2 then
        Alcotest.(check bool)
          (Printf.sprintf "node %d's omega %d is a voter" node omega)
          true
          (List.mem omega (Smr.members h node)))
    (Smr.nodes h)

(* Review regression: a joint that commits while another transition is
   already open used to be consumed and silently dropped — the requested
   membership change just never happened. Now it is re-minted under a
   fresh (deterministic, replica-agreed) uid and re-proposed once the open
   transition closes: BOTH overlapping reconfigurations must eventually
   take effect, back to back. *)
let test_overlapping_reconfigs_both_apply () =
  let n = 5 and cmds = 20 in
  let r =
    Workload.run ~members:[ 0; 1; 2 ]
      ~reconfigs:[ (0, 200, [ 0; 1; 2; 3 ]); (0, 200, [ 0; 1; 2; 3; 4 ]) ]
      ~topology:(Amac.Topology.clique n)
      ~scheduler:Amac.Scheduler.synchronous ~seed:79 ~cmds
      ~mode:(Workload.Open_loop { mean_gap = 10 })
      ()
  in
  check_clean "overlapping reconfigs" r;
  let h = r.handle in
  let superseded =
    List.fold_left
      (fun acc node -> acc + (Smr.lifecycle h node).Smr.reconfigs_superseded)
      0 (Smr.nodes h)
  in
  Alcotest.(check bool)
    (Printf.sprintf "the second joint was superseded (count=%d)" superseded)
    true (superseded > 0);
  Alcotest.(check int) "both transitions completed everywhere" 2 r.epoch_min;
  Alcotest.(check int) "no spurious extra epochs" 2 r.epoch_max;
  List.iter
    (fun node ->
      Alcotest.(check (list int))
        (Printf.sprintf "node %d ended on the second membership" node)
        [ 0; 1; 2; 3; 4 ] (Smr.members h node);
      Alcotest.(check bool)
        (Printf.sprintf "node %d left the transition" node)
        true
        (Smr.joint h node = None))
    (Smr.nodes h);
  Alcotest.(check int) "all commands still committed" r.submitted r.committed;
  Alcotest.(check int) "converged" r.commit_index_max r.commit_index_min

(* Review regression (vote/quorum configuration mismatch): quorum tallies
   used to sum votes self-weighed under the RESPONDER's configuration but
   check them against the PROPOSER's — after a scale-down, a post-final
   leader plus lagging pre-joint voters could "choose" a value no new-config
   quorum ever accepted (log disagreement under message loss alone).
   Votes now carry a configuration tag and mismatches are discarded. The
   seeded lifecycle fuzz draws reconfigurations to arbitrary subsets,
   aggressive compaction, crash/recovery and loss windows — the schedule
   family of the original finding — and must stay violation-free. *)
let test_lifecycle_fuzz_smoke () =
  let config =
    {
      Smr_fuzz.default with
      iterations = 20;
      cmds = 12;
      max_time = 200_000;
      lifecycle = true;
    }
  in
  let outcome = Smr_fuzz.run config ~seed:4242 in
  (match outcome.Smr_fuzz.failure with
  | None -> ()
  | Some f -> Alcotest.failf "lifecycle fuzz failure:@.%a" Smr_fuzz.pp_failure f);
  Alcotest.(check int) "all iterations ran" 20 outcome.Smr_fuzz.iterations_run

let test_reconfig_cmd_structure () =
  let _alg, h = Smr.make () in
  let joint = Smr.reconfig_cmd h ~members:[ 2; 0; 1 ] in
  Alcotest.(check bool) "joint bit set" true (Smr.is_joint_reconfig joint);
  Alcotest.(check bool) "is a reconfig" true (Smr.is_reconfig joint);
  Alcotest.(check (list int))
    "members round-trip sorted" [ 0; 1; 2 ]
    (Smr.reconfig_members joint);
  Alcotest.(check bool) "registered" true (Smr.was_reconfig h joint);
  (* Same membership, distinct uid: repeated reconfigs stay distinct. *)
  let joint2 = Smr.reconfig_cmd h ~members:[ 0; 1; 2 ] in
  Alcotest.(check bool) "distinct uid per registration" true (joint <> joint2);
  Alcotest.check_raises "client commands with reconfig bits are rejected"
    (Invalid_argument "Smr.submit: use reconfigure for membership changes")
    (fun () -> Smr.submit h ~node:0 ~cmd:joint)

(* ------------------------------------------------------------------ *)
(* Checker negative tests: prove Smr_checker actually FLAGS each
   lifecycle violation class, by feeding it hand-built views. A checker
   that silently passes divergent states is worse than no checker. *)

let view ?(log = []) ?(commit = 0) ?(applied = []) ?(floor = 0) ?(snap = [])
    ?(configs = []) ?(epoch = 0) node =
  {
    Smr_checker.v_node = node;
    v_log = log;
    v_commit = commit;
    v_applied = applied;
    v_floor = floor;
    v_snap_applied = snap;
    v_configs = configs;
    v_epoch = epoch;
  }

let has_violation label pred violations =
  Alcotest.(check bool)
    (Printf.sprintf "%s is flagged (got: %s)" label
       (String.concat "; " (List.map Smr_checker.to_string violations)))
    true
    (List.exists pred violations)

let test_checker_flags_epoch_divergence () =
  (* Two replicas committed DIFFERENT reconfigurations at the same
     instance — forked quorum rules. The log entries are already
     compacted away; only the configuration history remembers. *)
  let _alg, h = Smr.make () in
  let c1 = Smr.reconfig_cmd h ~members:[ 0; 1 ] in
  let c2 = Smr.reconfig_cmd h ~members:[ 0; 1; 2 ] in
  let submitted = Smr.was_reconfig h in
  let views =
    [
      view 0 ~configs:[ (3, c1) ] ~epoch:1;
      view 1 ~configs:[ (3, c2) ] ~epoch:1;
    ]
  in
  has_violation "epoch divergence"
    (function Smr_checker.Epoch_divergence { inst = 3; _ } -> true | _ -> false)
    (Smr_checker.check_views ~submitted views);
  (* Same reconfig at the same instance: clean. *)
  Alcotest.(check (list string))
    "agreeing configs are clean" []
    (List.map Smr_checker.to_string
       (Smr_checker.check_views ~submitted
          [ view 0 ~configs:[ (3, c1) ] ~epoch:1;
            view 1 ~configs:[ (3, c1) ] ~epoch:1 ]))

let test_checker_flags_snapshot_divergence () =
  (* Node 0's snapshot at floor 2 packages [10;11], but node 1 — whose
     commit index reaches that floor — applied [10;12]: the snapshot is
     not a prefix of its history. *)
  let submitted cmd = List.mem cmd [ 10; 11; 12 ] in
  let views =
    [
      view 0 ~floor:2 ~commit:2 ~snap:[ 10; 11 ] ~applied:[ 10; 11 ];
      view 1 ~log:[ (0, 10); (1, 12) ] ~commit:2 ~applied:[ 10; 12 ];
    ]
  in
  has_violation "snapshot divergence"
    (function
      | Smr_checker.Snapshot_divergence { node = 0; peer = 1; floor = 2 } ->
          true
      | _ -> false)
    (Smr_checker.check_views ~submitted views);
  (* A peer whose commit has not reached the floor makes no claim. *)
  Alcotest.(check (list string))
    "short peer is clean" []
    (List.map Smr_checker.to_string
       (Smr_checker.check_views ~submitted
          [ view 0 ~floor:2 ~commit:2 ~snap:[ 10; 11 ] ~applied:[ 10; 11 ];
            view 1 ~log:[ (0, 10) ] ~commit:1 ~applied:[ 10 ] ]))

let test_checker_flags_duplicate_across_install () =
  (* A replica re-applied a snapshot-covered command through the live
     log — exactly-once across the install is broken. *)
  let submitted cmd = List.mem cmd [ 10; 11 ] in
  let views =
    [
      view 0 ~floor:2 ~commit:3
        ~log:[ (2, 10) ]
        ~snap:[ 10; 11 ]
        ~applied:[ 10; 11; 10 ];
    ]
  in
  has_violation "duplicate apply across snapshot install"
    (function
      | Smr_checker.Duplicate_apply { node = 0; cmd = 10 } -> true
      | _ -> false)
    (Smr_checker.check_views ~submitted views)

let test_checker_flags_hole_above_floor () =
  (* Commit index 4 with floor 2, but instance 2 is unchosen: the
     "contiguous" committed region has a hole in its retained part. *)
  let submitted cmd = cmd = 12 in
  let views = [ view 0 ~floor:2 ~commit:4 ~log:[ (3, 12) ] ~snap:[] ] in
  has_violation "hole below commit"
    (function
      | Smr_checker.Hole_below_commit { node = 0; inst = 2 } -> true
      | _ -> false)
    (Smr_checker.check_views ~submitted views)

let test_checker_flags_snapshot_smuggling () =
  (* A never-submitted command inside a snapshot must be caught even
     though its log entry no longer exists anywhere. *)
  let submitted _ = false in
  let views =
    [ view 0 ~floor:1 ~commit:1 ~snap:[ 99 ] ~applied:[ 99 ] ]
  in
  has_violation "unknown command in snapshot"
    (function
      | Smr_checker.Unknown_command { node = 0; inst = -1; value = 99 } ->
          true
      | _ -> false)
    (Smr_checker.check_views ~submitted views)

let () =
  Alcotest.run "smr"
    [
      ( "log",
        [
          Alcotest.test_case "closed loop, clean network" `Quick
            test_closed_loop_clean;
          Alcotest.test_case "acceptance: bursty + loss windows, >=200" `Quick
            test_acceptance_scenario;
          Alcotest.test_case "acceptance scenario is deterministic" `Quick
            test_acceptance_deterministic;
          Alcotest.test_case "leader crash mid-stream" `Quick test_leader_crash;
          Alcotest.test_case "pipelining window extremes" `Quick
            test_window_extremes;
          Alcotest.test_case "injections to a dead replica are lost" `Quick
            test_injection_to_crashed_node_lost;
          Alcotest.test_case "seeded fuzz smoke" `Quick test_fuzz_smoke;
        ] );
      ( "lifecycle",
        [
          Alcotest.test_case "straggler repair: retry fixes the stall" `Quick
            test_repair_regression;
          Alcotest.test_case "compaction truncates + snapshot transfers"
            `Quick test_compaction_truncates_and_transfers;
          Alcotest.test_case "reconfig: scale-up 3->5 under load" `Quick
            test_reconfig_scale_up;
          Alcotest.test_case "reconfig: scale-down leaves learners" `Quick
            test_reconfig_scale_down_with_learner_tail;
          Alcotest.test_case "reconfig command structure" `Quick
            test_reconfig_cmd_structure;
          Alcotest.test_case "learner never elects itself" `Quick
            test_learner_never_self_elects;
          Alcotest.test_case "overlapping reconfigs both apply" `Quick
            test_overlapping_reconfigs_both_apply;
          Alcotest.test_case "lifecycle fuzz: reconfig+loss stays safe"
            `Quick test_lifecycle_fuzz_smoke;
        ] );
      ( "checker-negative",
        [
          Alcotest.test_case "flags epoch divergence" `Quick
            test_checker_flags_epoch_divergence;
          Alcotest.test_case "flags snapshot divergence" `Quick
            test_checker_flags_snapshot_divergence;
          Alcotest.test_case "flags duplicate apply across install" `Quick
            test_checker_flags_duplicate_across_install;
          Alcotest.test_case "flags hole above the floor" `Quick
            test_checker_flags_hole_above_floor;
          Alcotest.test_case "flags smuggled snapshot commands" `Quick
            test_checker_flags_snapshot_smuggling;
        ] );
    ]
