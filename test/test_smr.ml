(* Tentpole: the replicated log (lib/smr) driven by the workload generator
   (lib/workload), judged by Smr_checker.

   Covers: a clean closed-loop run commits everything on every replica; the
   ISSUE's acceptance scenario (5 nodes, bursty scheduler, loss-window fault
   plan, >= 200 commands, deterministic from one seed); leader crash
   mid-stream (re-election picks up the log); pipelining window extremes
   behave identically safety-wise; injections to a crashed replica are lost,
   not ghost-submitted; and a seeded fuzz smoke over random
   topology/scheduler/fault draws. *)

let check_clean label (r : Workload.result) =
  Alcotest.(check (list string))
    (label ^ ": no safety violations")
    []
    (List.map Smr_checker.to_string r.violations)

let test_closed_loop_clean () =
  let n = 5 and cmds = 50 in
  let r =
    Workload.run
      ~topology:(Amac.Topology.clique n)
      ~scheduler:Amac.Scheduler.synchronous ~seed:7 ~cmds
      ~mode:(Workload.Closed_loop { clients_per_node = 1 })
      ()
  in
  check_clean "clean closed loop" r;
  Alcotest.(check int) "all commands issued" cmds r.issued;
  Alcotest.(check int) "all commands submitted" cmds r.submitted;
  Alcotest.(check int) "all commands committed" cmds r.committed;
  Alcotest.(check bool)
    "every replica's prefix covers every command" true
    (r.commit_index_min >= cmds);
  Alcotest.(check int)
    "one latency sample per command" cmds
    (Array.length r.latencies);
  (* Quiescence: the run drained on its own, not via the time guard. *)
  Alcotest.(check bool) "run quiesced" false r.outcome.Amac.Engine.hit_max_time

let acceptance_faults =
  [
    Fault.Link_drop { edge = (0, 1); from_ = 40; until = 140 };
    Fault.Link_drop { edge = (2, 3); from_ = 300; until = 420 };
    Fault.Link_drop { edge = (1, 4); from_ = 800; until = 900 };
  ]

let acceptance_run () =
  Workload.run ~window:4 ~faults:acceptance_faults
    ~topology:(Amac.Topology.clique 5)
    ~scheduler:(Amac.Scheduler.bursty ~fack:3 ~fast_len:40 ~slow_len:12)
    ~seed:42 ~cmds:250
    ~mode:(Workload.Closed_loop { clients_per_node = 1 })
    ()

(* The ISSUE's acceptance scenario: a 5-node log under the bursty scheduler
   with bounded loss windows commits >= 200 commands with the checker
   clean, deterministically from the seed. *)
let test_acceptance_scenario () =
  let r = acceptance_run () in
  check_clean "acceptance" r;
  Alcotest.(check bool)
    (Printf.sprintf "committed %d >= 200" r.committed)
    true (r.committed >= 200);
  Alcotest.(check bool)
    "min commit index >= 200" true
    (r.commit_index_min >= 200)

let test_acceptance_deterministic () =
  let a = acceptance_run () and b = acceptance_run () in
  Alcotest.(check int) "same committed" a.committed b.committed;
  Alcotest.(check int)
    "same end time" a.outcome.Amac.Engine.end_time
    b.outcome.Amac.Engine.end_time;
  Alcotest.(check int)
    "same event count" a.outcome.Amac.Engine.events_processed
    b.outcome.Amac.Engine.events_processed;
  Alcotest.(check (array int)) "same latencies" a.latencies b.latencies;
  Alcotest.(check int)
    "same min commit index" a.commit_index_min b.commit_index_min

(* Ω elects the highest unsuspected id, so node n-1 leads initially;
   crashing it mid-stream forces re-election and lease re-establishment.
   The dead leader's client stops resubmitting, but the four survivors'
   clients keep the global budget draining. *)
let test_leader_crash () =
  let n = 5 and cmds = 60 in
  let r =
    Workload.run
      ~crashes:[ (n - 1, 35) ]
      ~topology:(Amac.Topology.clique n)
      ~scheduler:(Amac.Scheduler.random (Amac.Rng.create 11) ~fack:2)
      ~seed:13 ~cmds
      ~mode:(Workload.Closed_loop { clients_per_node = 1 })
      ()
  in
  check_clean "leader crash" r;
  Alcotest.(check bool)
    (Printf.sprintf "committed %d >= issued - 1 = %d" r.committed
       (r.issued - 1))
    true
    (r.committed >= r.issued - 1);
  Alcotest.(check bool) "made real progress" true (r.committed >= 40)

let test_window_extremes () =
  List.iter
    (fun window ->
      let label = Printf.sprintf "window=%d" window in
      let r =
        Workload.run ~window
          ~topology:(Amac.Topology.line 4)
          ~scheduler:(Amac.Scheduler.random (Amac.Rng.create 5) ~fack:2)
          ~seed:99 ~cmds:40
          ~mode:(Workload.Open_loop { mean_gap = 6 })
          ()
      in
      check_clean label r;
      Alcotest.(check int) (label ^ ": all committed") 40 r.committed;
      Alcotest.(check bool)
        (label ^ ": prefix complete everywhere")
        true (r.commit_index_min >= 40))
    [ 1; 8 ]

(* An injection whose target is down at pop time is lost like a client call
   to a dead server: never submitted, never committed, no ghost latency. *)
let test_injection_to_crashed_node_lost () =
  let n = 3 in
  (* Open loop, seed-chosen placement; crash node 0 for the whole run and
     count only what reached live replicas. *)
  let r =
    Workload.run
      ~crashes:[ (0, 0) ]
      ~topology:(Amac.Topology.clique n)
      ~scheduler:Amac.Scheduler.synchronous ~seed:3 ~cmds:30
      ~mode:(Workload.Open_loop { mean_gap = 5 })
      ()
  in
  check_clean "crashed-target injections" r;
  Alcotest.(check int) "committed = submitted" r.submitted r.committed;
  Alcotest.(check bool)
    (Printf.sprintf "some injections lost (submitted %d < issued %d)"
       r.submitted r.issued)
    true
    (r.submitted < r.issued);
  Alcotest.(check int)
    "engine handed over exactly the live-target injections" r.submitted
    r.outcome.Amac.Engine.injected

let test_fuzz_smoke () =
  let config =
    { Smr_fuzz.default with iterations = 25; cmds = 15; max_time = 200_000 }
  in
  let outcome = Smr_fuzz.run config ~seed:2026 in
  (match outcome.Smr_fuzz.failure with
  | None -> ()
  | Some f -> Alcotest.failf "fuzz failure:@.%a" Smr_fuzz.pp_failure f);
  Alcotest.(check int) "all iterations ran" 25 outcome.Smr_fuzz.iterations_run

let () =
  Alcotest.run "smr"
    [
      ( "log",
        [
          Alcotest.test_case "closed loop, clean network" `Quick
            test_closed_loop_clean;
          Alcotest.test_case "acceptance: bursty + loss windows, >=200" `Quick
            test_acceptance_scenario;
          Alcotest.test_case "acceptance scenario is deterministic" `Quick
            test_acceptance_deterministic;
          Alcotest.test_case "leader crash mid-stream" `Quick test_leader_crash;
          Alcotest.test_case "pipelining window extremes" `Quick
            test_window_extremes;
          Alcotest.test_case "injections to a dead replica are lost" `Quick
            test_injection_to_crashed_node_lost;
          Alcotest.test_case "seeded fuzz smoke" `Quick test_fuzz_smoke;
        ] );
    ]
