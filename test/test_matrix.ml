(* Satellite: the hardening matrix. Every consensus algorithm in the repo
   crossed with every scheduler family and three fault regimes, one cell =
   one seeded run, judged through Checker.degradation: safety is asserted
   unconditionally wherever the algorithm's model admits the regime;
   liveness (every correct node decides) only where the regime guarantees
   it.

   Expectations per cell are explicit table entries, not recomputed — a
   behavior change in any algorithm/scheduler/fault combination moves a
   cell and fails loudly here. [Documented_unsafe] marks combinations
   outside the algorithm's fault model (amnesiac recovery under protocols
   that assume crash-stop): the cell still runs — pinning that the engine
   and checker handle it — but its verdict is recorded, not asserted. *)

type expectation =
  | Safe_and_live  (** safety + every correct node decides *)
  | Safe_only  (** safety; liveness not guaranteed under this regime *)
  | Documented_unsafe of string
      (** outside the algorithm's fault model; run it, don't assert *)

type cell_alg =
  | Alg : {
      name : string;
      make : unit -> ('s, 'm) Amac.Algorithm.t;
      topology : Amac.Topology.t;
      inputs : int array;
      crash_tolerant : bool;
          (** false = any crash regime is outside the model *)
      adapter : 'm Byz.Model.adapter;
          (** how the adversary axis forges/mutates this message type;
              [generic_adapter] for abstract payloads (replay-only) *)
    }
      -> cell_alg

let algorithms =
  [
    Alg
      {
        name = "two_phase";
        make = (fun () -> Consensus.Two_phase.algorithm);
        topology = Amac.Topology.clique 4;
        inputs = [| 0; 1; 0; 1 |];
        crash_tolerant = true;
        adapter = Byz.Adapters.two_phase;
      };
    Alg
      {
        name = "wpaxos";
        make = (fun () -> Consensus.Wpaxos.make ());
        topology = Amac.Topology.line 5;
        inputs = [| 1; 0; 1; 0; 1 |];
        crash_tolerant = true;
        adapter = Byz.Model.generic_adapter ();
      };
    Alg
      {
        name = "ben_or";
        make = (fun () -> Consensus.Ben_or.make ~seed:17 ());
        topology = Amac.Topology.clique 3;
        inputs = [| 0; 1; 1 |];
        crash_tolerant = true;
        adapter = Byz.Adapters.ben_or;
      };
    Alg
      {
        name = "multi_value";
        make =
          (fun () -> Consensus.Multi_value.make ~bits:2 Consensus.Two_phase.algorithm);
        topology = Amac.Topology.clique 4;
        inputs = [| 3; 1; 0; 2 |];
        crash_tolerant = true;
        adapter = Byz.Model.generic_adapter ();
      };
    Alg
      {
        name = "counter_race";
        make = (fun () -> Consensus.Counter_race.make ());
        topology = Amac.Topology.clique 4;
        inputs = [| 0; 1; 1; 0 |];
        crash_tolerant = true;
        adapter = Byz.Adapters.counter_race;
      };
    Alg
      {
        (* n = 7 so f = 2: the byzf regime is genuinely stronger than
           byz1, and the mixed regime (1 Byzantine + 1 crash) stays inside
           the f-budget. *)
        name = "byz_consensus";
        make = (fun () -> Consensus.Byz_consensus.make ~seed:23 ());
        topology = Amac.Topology.clique 7;
        inputs = [| 0; 1; 1; 0; 1; 0; 1 |];
        crash_tolerant = true;
        adapter = Byz.Adapters.byz_consensus;
      };
  ]

let schedulers =
  [
    ("synchronous", fun _rng -> Amac.Scheduler.synchronous);
    ("random", fun rng -> Amac.Scheduler.random rng ~fack:2);
    ("max_delay", fun _rng -> Amac.Scheduler.max_delay ~fack:2);
    ("bursty", fun _rng -> Amac.Scheduler.bursty ~fack:2 ~fast_len:20 ~slow_len:8);
    ("slow_node", fun _rng -> Amac.Scheduler.slow_node ~fack:2 ~node:1);
  ]

(* The three regimes. Crash-recovery and loss windows use small, early
   windows so they intersect the protocols' first phases. *)
let fault_regimes =
  [
    ("none", []);
    ( "crash_recovery",
      [
        Fault.Crash { node = 1; at = 3 };
        Fault.Recover { node = 1; at = 30 };
      ] );
    ("loss_window", [ Fault.Link_drop { edge = (0, 1); from_ = 0; until = 25 } ]);
  ]

(* The expectation table. Defaults: fault-free cells are safe and live;
   faulted cells are safe-only (liveness becomes a measurement, cf.
   Checker.degradation). Exceptions are spelled out:

   - ben_or / two_phase / multi_value under crash-recovery: these protocols
     assume crash-stop; an amnesiac reincarnation re-enters with fresh
     state (and for ben_or a reset round counter), which can double-count
     votes. wPAXOS is the one algorithm hardened for recovery (PR 3). The
     cells run — engine semantics and checker coverage — but their verdict
     is documented, not asserted.

   - two_phase / multi_value under loss windows: two-phase counts on the
     abstract MAC layer's delivery guarantee — the very thing a loss
     window suspends — and has no retransmission, so a dropped phase
     message can split the decision (multi_value over two_phase hits this
     on the synchronous schedule: the nodes cut off from a bit round
     decide a different composite value). Quorum-intersection protocols
     (wpaxos, ben_or) keep safety under loss and only degrade in
     liveness, which the Safe_only cells pin. *)
let expectation ~alg ~fault =
  match (alg, fault) with
  | _, "none" -> Safe_and_live
  | ( ("two_phase" | "ben_or" | "multi_value" | "counter_race" | "byz_consensus"),
      "crash_recovery" ) ->
      Documented_unsafe
        "crash-stop protocol: amnesiac reincarnation may double-vote"
  | ("two_phase" | "multi_value"), "loss_window" ->
      Documented_unsafe
        "no retransmission: a dropped phase message can split the decision"
  | _, _ -> Safe_only

(* ------------------------------------------------------------------ *)
(* The adversary axis: every algorithm crossed with every scheduler and
   three Byzantine regimes, run wrapped (Byz.Model.wrap) with the
   strategy's tampers compiled into the engine's substitute hook and the
   honest mask handed to the checker. The canonical per-cell strategy is
   deterministic: the highest-numbered nodes turn Byzantine, each with
   replay+forge behaviors and an equivocation window against the low half
   of the ring. *)

let byz_regimes =
  [
    (* one Byzantine node *)
    ("byz1", (fun (_n : int) -> 1), []);
    (* the full tolerance budget f = (n-1)/3, floored at 1 *)
    ("byzf", (fun n -> max 1 ((n - 1) / 3)), []);
    (* mixed: one Byzantine node plus an honest crash *)
    ("byz_crash", (fun (_n : int) -> 1), [ (0, 5) ]);
  ]

let byz_strategy ~n ~count ~seed =
  let behavior =
    { Byz.Model.replay_period = 3; forge_period = 2; drop_own = false }
  in
  let byz = List.init count (fun i -> (n - 1 - i, behavior)) in
  let victims = List.init (max 1 (n / 2)) Fun.id in
  let tampers =
    List.map
      (fun (id, _) ->
        {
          Byz.Model.node = id;
          victims;
          from_ = 0;
          until = 40;
          kind = Byz.Model.Equivocate;
        })
      byz
  in
  { Byz.Model.byz; tampers; seed }

(* The adversary-axis expectation table, pinned empirically like the crash
   one. Only byz_consensus (n >= 3f+1, quorum-intersection with dedup by
   sender) is in-model against Byzantine nodes; every crash-tolerant
   protocol is documented-unsafe here — equivocation splits two_phase,
   forged Decided claims sink ben_or, inflated counters race counter_race,
   and the generic replay adversary impersonates under wpaxos/multi_value's
   unauthenticated payloads. *)
let byz_expectation ~alg ~regime =
  match (alg, regime) with
  | "byz_consensus", _ -> Safe_and_live
  | "two_phase", _ ->
      Documented_unsafe "equivocation splits the two honest phase quorums"
  | "ben_or", _ -> Documented_unsafe "forged Decided claims are trusted"
  | "counter_race", _ ->
      Documented_unsafe "forged counter values win the race"
  | ("wpaxos" | "multi_value"), _ ->
      Documented_unsafe "unauthenticated replay impersonates honest nodes"
  | _, _ -> Safe_only

let run_byz_cell (Alg a) (sched_name, scheduler_of) (regime_name, count_of, crashes)
    =
  let n = Array.length a.inputs in
  let cell = Printf.sprintf "%s/%s/%s" a.name sched_name regime_name in
  let seed = Hashtbl.hash cell land 0xFFFF in
  let scheduler = scheduler_of (Amac.Rng.create seed) in
  let strategy = byz_strategy ~n ~count:(count_of n) ~seed in
  let wrapped = Byz.Model.wrap ~n ~adapter:a.adapter ~strategy (a.make ()) in
  let result =
    Consensus.Runner.run wrapped.Byz.Model.algorithm ~topology:a.topology
      ~scheduler ~inputs:a.inputs ~crashes
      ~substitute:wrapped.Byz.Model.substitute ~honest:wrapped.Byz.Model.honest
      ~max_time:60_000
  in
  let d = result.Consensus.Runner.degradation in
  match byz_expectation ~alg:a.name ~regime:regime_name with
  | Safe_and_live ->
      Alcotest.(check bool) (cell ^ ": safe") true d.Consensus.Checker.safe;
      Alcotest.(check (float 0.0))
        (cell ^ ": all correct honest nodes decided")
        1.0 d.Consensus.Checker.decided_fraction
  | Safe_only ->
      if not d.Consensus.Checker.safe then
        Alcotest.failf "%s: safety violated:@.%a" cell
          (Format.pp_print_list Consensus.Checker.pp_violation)
          d.Consensus.Checker.safety_violations
  | Documented_unsafe _why -> ignore d.Consensus.Checker.safe

let test_byz_regime regime () =
  List.iter
    (fun alg ->
      List.iter (fun sched -> run_byz_cell alg sched regime) schedulers)
    algorithms

let run_cell (Alg a) (sched_name, scheduler_of) (fault_name, faults) =
  let cell = Printf.sprintf "%s/%s/%s" a.name sched_name fault_name in
  let seed = Hashtbl.hash cell land 0xFFFF in
  let scheduler = scheduler_of (Amac.Rng.create seed) in
  let result =
    Consensus.Runner.run (a.make ()) ~topology:a.topology
      ~scheduler ~inputs:a.inputs ~faults ~max_time:60_000
  in
  let d = result.Consensus.Runner.degradation in
  match expectation ~alg:a.name ~fault:fault_name with
  | Safe_and_live ->
      Alcotest.(check bool) (cell ^ ": safe") true d.Consensus.Checker.safe;
      Alcotest.(check (float 0.0))
        (cell ^ ": all correct nodes decided")
        1.0 d.Consensus.Checker.decided_fraction
  | Safe_only ->
      if not d.Consensus.Checker.safe then
        Alcotest.failf "%s: safety violated:@.%a" cell
          (Format.pp_print_list Consensus.Checker.pp_violation)
          d.Consensus.Checker.safety_violations
  | Documented_unsafe _why ->
      (* Outside the fault model: the run must complete and the checker
         must produce a verdict; the verdict itself is not pinned. *)
      ignore d.Consensus.Checker.safe

let test_fault_regime (fault_name, faults) () =
  List.iter
    (fun alg ->
      let (Alg a) = alg in
      if fault_name = "none" || a.crash_tolerant then
        List.iter (fun sched -> run_cell alg sched (fault_name, faults)) schedulers)
    algorithms

(* ------------------------------------------------------------------ *)
(* The lifecycle axis: the four production-lifecycle scenarios (rolling
   restart, scale-up under load, crash-during-reconfig, restart-from-
   snapshot; see Workload.Lifecycle) crossed with three ack-latency
   environments, two seeds each. Safety — the full Smr_checker contract,
   epochs and snapshot installs included — is asserted in EVERY cell;
   liveness (the scenario's own convergence criterion) is pinned per
   cell.

   Every cell is Safe_and_live. Early in PR 7 the rolling restart was
   stuck at fack = 1 (last restarter short at commit 26 of 40, both
   seeds): a straggler that ran out of locally-known decisions went
   silent mid-catch-up, killing the repair echo loop. Announced commit
   indexes now feed max_inst_seen (Smr.on_leader), so a recovering node
   that has HEARD of a longer prefix keeps broadcasting until it holds
   it — which turned every cell of this grid live and is exactly the
   regression this matrix would catch. *)

let lifecycle_envs = [ ("fast-ack", 1); ("moderate", 3); ("laggy", 6) ]

let lifecycle_seeds = [ 42; 7 ]

let lifecycle_expectation ~scenario:_ ~env:_ = Safe_and_live

let run_lifecycle_cell scenario (env_name, fack) seed =
  let cell =
    Printf.sprintf "%s/%s/seed=%d"
      (Lifecycle.name scenario)
      env_name seed
  in
  let outcome = Lifecycle.run ~seed ~fack scenario in
  let r = outcome.Lifecycle.result in
  (* Safety, unconditionally: checker clean + nothing submitted was lost. *)
  Alcotest.(check (list string))
    (cell ^ ": no safety violations")
    []
    (List.map Smr_checker.to_string r.Workload.violations);
  Alcotest.(check int)
    (cell ^ ": every submitted command committed")
    r.Workload.submitted r.Workload.committed;
  match lifecycle_expectation ~scenario ~env:env_name with
  | Safe_and_live ->
      Alcotest.(check bool)
        (cell ^ ": re-achieved liveness (" ^ outcome.Lifecycle.detail
       ^ ")")
        true outcome.Lifecycle.live
  | Safe_only ->
      Alcotest.(check bool)
        (cell ^ ": pinned liveness degradation ("
       ^ outcome.Lifecycle.detail ^ ")")
        false outcome.Lifecycle.live
  | Documented_unsafe _ -> ()

let test_lifecycle_scenario scenario () =
  List.iter
    (fun env ->
      List.iter (fun seed -> run_lifecycle_cell scenario env seed)
        lifecycle_seeds)
    lifecycle_envs

(* ------------------------------------------------------------------ *)
(* The sharded axis: multi-group SMR with batching under the crash
   fault regime, crossed with the same three ack-latency environments,
   two seeds each. Safety is the sharded contract (per-group prefix
   agreement, cross-group exactly-once, batch atomicity) in EVERY cell;
   crashes land inside the first broadcast windows — leader election
   per group, the most delicate phase — so the cells where a crashed
   node led several groups at once are exactly the ones that would
   expose ack misrouting or a batch applied across the amnesia gap. *)

let run_shard_cell (env_name, fack) seed =
  let cell = Printf.sprintf "sharded-smr/crash/%s/seed=%d" env_name fack in
  let scheduler =
    if fack = 1 then Amac.Scheduler.synchronous
    else Amac.Scheduler.bursty ~fack ~fast_len:40 ~slow_len:12
  in
  let r =
    Shard_workload.run
      ~topology:(Amac.Topology.clique 5)
      ~scheduler
      ~crashes:[ ((seed mod 2) + 1, 2 * fack); (3 + (seed mod 2), (6 * fack) + 1) ]
      ~seed ~cmds:50 ~groups:4 ~batch:3 ()
  in
  Alcotest.(check (list string))
    (cell ^ ": no sharded safety violations")
    []
    (List.map Smr_checker.shard_to_string r.Shard_workload.violations);
  (* Three of five replicas stay up: a majority in every group, so the
     run must still make progress even with both crashed nodes leading
     groups at crash time. *)
  Alcotest.(check bool)
    (cell ^ ": surviving majority keeps committing")
    true
    (r.Shard_workload.committed > 0)

let test_shard_regime () =
  List.iter
    (fun env -> List.iter (fun seed -> run_shard_cell env seed) lifecycle_seeds)
    lifecycle_envs

(* ------------------------------------------------------------------ *)
(* The multi-hop axis: consensus and the SMR stack leave the clique.
   Generated grid and RGG topologies (Topo_gen, seeded) under the
   interference scheduler — each sender's ack stretches with its local
   contention — with Safe_and_live pinned: wPAXOS decides at every node
   and SMR commits everything submitted, multi-hop relaying and all. One
   crash-faulted cell loses a mid-grid relay during the first broadcast
   wave and recovers it, pinning recovery across a multi-hop diameter. *)

let multihop_topologies =
  [
    ("grid:4x4", Topo_gen.Grid { width = 4; height = 4 });
    ( "rgg:24",
      Topo_gen.Rgg { n = 24; radius = Topo_gen.connectivity_radius ~n:24 } );
  ]

let interference_scheduler seed =
  Amac.Scheduler.interference ~alpha:1
    (Amac.Scheduler.random (Amac.Rng.create seed) ~fack:2)

let run_multihop_wpaxos_cell (tname, spec) =
  let topology = Topo_gen.generate ~seed:7 spec in
  let n = Amac.Topology.size topology in
  let cell = Printf.sprintf "wpaxos/interference/%s" tname in
  let seed = Hashtbl.hash cell land 0xFFFF in
  let result =
    Consensus.Runner.run (Consensus.Wpaxos.make ()) ~topology
      ~scheduler:(interference_scheduler seed)
      ~inputs:(Consensus.Runner.inputs_alternating ~n)
      ~max_time:60_000
  in
  let d = result.Consensus.Runner.degradation in
  Alcotest.(check bool) (cell ^ ": safe") true d.Consensus.Checker.safe;
  Alcotest.(check (float 0.0))
    (cell ^ ": all nodes decided")
    1.0 d.Consensus.Checker.decided_fraction

let run_multihop_smr_cell (tname, spec) =
  let topology = Topo_gen.generate ~seed:7 spec in
  let cell = Printf.sprintf "smr/interference/%s" tname in
  let seed = Hashtbl.hash cell land 0xFFFF in
  let r =
    Workload.run ~topology
      ~scheduler:(interference_scheduler seed)
      ~seed:(seed land 0xFF) ~cmds:8
      ~mode:(Workload.Open_loop { mean_gap = 6 })
      ()
  in
  Alcotest.(check (list string))
    (cell ^ ": no safety violations")
    []
    (List.map Smr_checker.to_string r.Workload.violations);
  Alcotest.(check bool)
    (cell ^ ": commands actually flowed")
    true (r.Workload.submitted > 0);
  Alcotest.(check int)
    (cell ^ ": every submitted command committed")
    r.Workload.submitted r.Workload.committed

let run_multihop_crash_cell () =
  let topology =
    Topo_gen.generate ~seed:7 (Topo_gen.Grid { width = 4; height = 4 })
  in
  let result =
    Consensus.Runner.run (Consensus.Wpaxos.make ()) ~topology
      ~scheduler:(interference_scheduler 5)
      ~inputs:(Consensus.Runner.inputs_alternating ~n:16)
      ~faults:
        [ Fault.Crash { node = 5; at = 4 }; Fault.Recover { node = 5; at = 80 } ]
      ~max_time:60_000
  in
  let d = result.Consensus.Runner.degradation in
  let cell = "wpaxos/interference/grid:4x4/crash_recovery" in
  Alcotest.(check bool) (cell ^ ": safe") true d.Consensus.Checker.safe;
  Alcotest.(check (float 0.0))
    (cell ^ ": recovered relay rejoins and everyone decides")
    1.0 d.Consensus.Checker.decided_fraction

let test_multihop_wpaxos () =
  List.iter run_multihop_wpaxos_cell multihop_topologies

let test_multihop_smr () = List.iter run_multihop_smr_cell multihop_topologies

let () =
  Alcotest.run "matrix"
    [
      ( "cells",
        List.map
          (fun ((fault_name, _) as regime) ->
            Alcotest.test_case
              (Printf.sprintf "all algorithms x all schedulers [%s]" fault_name)
              `Quick (test_fault_regime regime))
          fault_regimes );
      ( "adversary",
        List.map
          (fun ((regime_name, _, _) as regime) ->
            Alcotest.test_case
              (Printf.sprintf "all algorithms x all schedulers [%s]" regime_name)
              `Quick (test_byz_regime regime))
          byz_regimes );
      ( "lifecycle",
        List.map
          (fun scenario ->
            Alcotest.test_case
              (Printf.sprintf "all environments [%s]"
                 (Lifecycle.name scenario))
              `Quick
              (test_lifecycle_scenario scenario))
          Lifecycle.all );
      ( "sharded",
        [
          Alcotest.test_case "all environments [sharded-smr, crash]" `Quick
            test_shard_regime;
        ] );
      ( "multi-hop",
        [
          Alcotest.test_case "wpaxos x generated topologies [interference]"
            `Quick test_multihop_wpaxos;
          Alcotest.test_case "smr x generated topologies [interference]"
            `Quick test_multihop_smr;
          Alcotest.test_case "crash-faulted grid cell" `Quick
            run_multihop_crash_cell;
        ] );
    ]
