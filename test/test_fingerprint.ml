(* The fingerprint hasher and its open-addressed table: the combinators
   must separate the structures the explorer distinguishes (field order,
   list lengths, string boundaries), the table must agree with a Hashtbl
   model under arbitrary operation sequences, and — the soundness property
   the explorer's `Fast keying rests on — over a large batch of real
   reachable configurations the fingerprint must be deterministic and
   collision-free against the Marshal digest. *)

module F = Amac.Fingerprint
module Explore = Mcheck.Explore

let fp_of f = F.to_int (f F.empty)

let test_combinators_separate () =
  let cases =
    [
      ("int value", fp_of (F.int 1), fp_of (F.int 2));
      ( "field order",
        fp_of (fun a -> a |> F.int 1 |> F.int 2),
        fp_of (fun a -> a |> F.int 2 |> F.int 1) );
      ("bool", fp_of (F.bool true), fp_of (F.bool false));
      (* a bool is not the int it encodes to at a different position *)
      ( "list length",
        fp_of (F.list F.int [ 0 ]),
        fp_of (F.list F.int [ 0; 0 ]) );
      ( "list split",
        fp_of (fun a -> a |> F.list F.int [ 1 ] |> F.list F.int [ 2; 3 ]),
        fp_of (fun a -> a |> F.list F.int [ 1; 2 ] |> F.list F.int [ 3 ]) );
      ("option", fp_of (F.option F.int None), fp_of (F.option F.int (Some 0)));
      ("string tail", fp_of (F.string "a"), fp_of (F.string "a\000"));
      ( "string boundary",
        (* both sides of the 8-byte fast path *)
        fp_of (F.string "abcdefgh"),
        fp_of (F.string "abcdefgi") );
      ( "string split",
        fp_of (fun a -> a |> F.string "ab" |> F.string "c"),
        fp_of (fun a -> a |> F.string "a" |> F.string "bc") );
      ( "array vs reversed",
        fp_of (F.array F.int [| 1; 2; 3 |]),
        fp_of (F.array F.int [| 3; 2; 1 |]) );
    ]
  in
  List.iter
    (fun (name, a, b) ->
      Alcotest.(check bool) (name ^ " separated") true (a <> b))
    cases

let test_to_int_range_and_determinism () =
  List.iter
    (fun acc ->
      let k = F.to_int acc in
      Alcotest.(check bool) "non-negative" true (k >= 0);
      Alcotest.(check int) "deterministic" k (F.to_int acc))
    [ F.empty; F.int 0 F.empty; F.int min_int F.empty; F.string "x" F.empty ]

(* Low bits feed table/shard indexing directly, so neighbouring inputs
   must not collide modulo a small power of two. *)
let test_to_int_low_bits_mixed () =
  let mask = 255 in
  let buckets = Hashtbl.create 64 in
  for i = 0 to 63 do
    Hashtbl.replace buckets (F.to_int (F.int i F.empty) land mask) ()
  done;
  Alcotest.(check bool) "64 consecutive ints spread over >= 32 of 256 buckets"
    true
    (Hashtbl.length buckets >= 32)

let prop_table_matches_hashtbl =
  (* Keys are drawn small and signed so duplicates, 0 and negatives all
     occur; the sequence is long enough to force several grows. *)
  QCheck.Test.make ~name:"Fingerprint.Table behaves like Hashtbl" ~count:100
    QCheck.(list (pair (int_range (-50) 50) small_int))
    (fun ops ->
      let t = F.Table.create 4 in
      let model = Hashtbl.create 16 in
      List.for_all
        (fun (key, v) ->
          F.Table.set t key v;
          Hashtbl.replace model key v;
          F.Table.length t = Hashtbl.length model
          && F.Table.find t key = Some v)
        ops
      &&
      Hashtbl.fold
        (fun key v ok -> ok && F.Table.find t key = Some v)
        model true
      && F.Table.fold (fun _ _ n -> n + 1) t 0 = Hashtbl.length model)

let test_table_upsert () =
  let t = F.Table.create 1 in
  F.Table.upsert t 7 (function None -> 1 | Some n -> n + 1);
  F.Table.upsert t 7 (function None -> 1 | Some n -> n + 1);
  F.Table.upsert t min_int (function None -> 10 | Some n -> n);
  Alcotest.(check (option int)) "bumped twice" (Some 2) (F.Table.find t 7);
  Alcotest.(check (option int)) "negative key" (Some 10)
    (F.Table.find t min_int);
  Alcotest.(check int) "two entries" 2 (F.Table.length t)

let test_table_growth_keeps_entries () =
  let t = F.Table.create 4 in
  for i = 0 to 999 do
    F.Table.set t (i * 7919) i
  done;
  Alcotest.(check int) "1000 entries" 1000 (F.Table.length t);
  for i = 0 to 999 do
    if F.Table.find t (i * 7919) <> Some i then
      Alcotest.failf "lost key %d across grows" (i * 7919)
  done

(* The soundness property behind `Fast keying, over the states the
   explorer actually visits: sampling is keyed on the Marshal digest, so
   every sampled configuration is digest-distinct — any two of them
   sharing a fingerprint is a genuine 63-bit collision. With 20k states
   the expected count is ~2^2·10^8/2^64 ≈ 2e-11: assert exactly zero. *)
let test_key_pairs_collision_free () =
  let sample () =
    Explore.key_pairs
      (Explore.sample
         { Explore.default with max_states = 5_000_000 }
         Consensus.Two_phase.algorithm
         ~topology:(Amac.Topology.clique 3)
         ~inputs:[| 0; 1; 1 |] ~max_samples:20_000)
  in
  let pairs = sample () in
  Alcotest.(check int) "sampled the full batch" 20_000 (Array.length pairs);
  let by_fp = Hashtbl.create (Array.length pairs) in
  let collisions = ref 0 in
  Array.iter
    (fun (digest, fp) ->
      match Hashtbl.find_opt by_fp fp with
      | None -> Hashtbl.add by_fp fp digest
      | Some d when d = digest -> () (* digest-equal: agreement is required *)
      | Some _ -> incr collisions)
    pairs;
  Alcotest.(check int) "no distinct-digest fingerprint collisions" 0
    !collisions;
  (* Digest-equal ⇒ fingerprint-equal, across independent recomputations:
     the same sample is regenerated (BFS is deterministic), so digests
     line up pairwise and the fingerprints must too. *)
  let again = sample () in
  Array.iteri
    (fun i (digest, fp) ->
      let digest', fp' = again.(i) in
      Alcotest.(check string) "same state sampled" digest digest';
      Alcotest.(check int) "digest-equal implies fingerprint-equal" fp fp')
    pairs

let () =
  Alcotest.run "fingerprint"
    [
      ( "combinators",
        [
          Alcotest.test_case "separate distinct structures" `Quick
            test_combinators_separate;
          Alcotest.test_case "to_int range + determinism" `Quick
            test_to_int_range_and_determinism;
          Alcotest.test_case "to_int mixes low bits" `Quick
            test_to_int_low_bits_mixed;
        ] );
      ( "table",
        [
          QCheck_alcotest.to_alcotest prop_table_matches_hashtbl;
          Alcotest.test_case "upsert" `Quick test_table_upsert;
          Alcotest.test_case "growth keeps entries" `Quick
            test_table_growth_keeps_entries;
        ] );
      ( "soundness",
        [
          Alcotest.test_case "collision-free over 20k reachable states"
            `Quick test_key_pairs_collision_free;
        ] );
    ]
