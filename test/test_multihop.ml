(* Satellite: the interference-aware MAC mode and the engine's multi-hop
   machinery. Pins (1) the contention-stretch law itself (zero at zero
   contention, monotone, capped), (2) the engine's event-level semantics:
   ack stretch grows with the sender's LOCAL contention, measured over its
   current neighbors only, (3) record/replay byte-identity of an
   interference run at 1000 nodes, (4) keying equivalence / zero
   collisions of the explorer over topo_gen topologies (the new engine
   paths feed the same fingerprinted state), and (5) topology-delta
   ordering: a Topo event lands after every same-tick delivery and ack.

   The eleventh-hour degenerate check — alpha = 0 byte-identical to the
   base scheduler on all 11 goldens — lives in test_golden.ml, next to
   the corpus it replays. *)

module A = Amac.Algorithm
module S = Amac.Scheduler

(* Probe: broadcast once at init, decide the input on ack — the ack time
   is then readable off the decision. *)
type once_state = { mutable acked : bool }

let once : (once_state, string) A.t =
  {
    name = "once";
    init = (fun _ctx -> ({ acked = false }, [ A.Broadcast "hello" ]));
    on_receive = (fun _ctx _st _msg -> []);
    on_ack =
      (fun ctx st ->
        if st.acked then []
        else begin
          st.acked <- true;
          [ A.Decide ctx.input ]
        end);
    msg_ids = (fun _ -> 0);
    hooks = None;
  }

(* Probe: rebroadcast forever (for the delta-visibility tests). *)
let forever : (unit, string) A.t =
  {
    name = "forever";
    init = (fun _ctx -> ((), [ A.Broadcast "x" ]));
    on_receive = (fun _ctx () _msg -> []);
    on_ack = (fun _ctx () -> [ A.Broadcast "x" ]);
    msg_ids = (fun _ -> 0);
    hooks = None;
  }

let ack_times outcome =
  Array.map
    (function
      | Some (_, t) -> t
      | None -> Alcotest.fail "probe node failed to decide")
    outcome.Amac.Engine.decisions

(* ------------------------------------------------------------------ *)
(* The stretch law, directly on the scheduler value. *)

let stretch_of sched =
  match sched.S.contention_stretch with
  | Some f -> f
  | None -> Alcotest.fail "interference scheduler lost its stretch hook"

let test_stretch_law () =
  let f = stretch_of (S.interference ~alpha:2 (S.fixed ~delay:3)) in
  Alcotest.(check int) "zero at zero contention" 0 (f ~contention:0);
  Alcotest.(check int) "linear" 6 (f ~contention:3);
  (* default cap = 4 * fack = 12 *)
  Alcotest.(check int) "capped" 12 (f ~contention:50);
  let rec monotone prev k =
    if k > 30 then ()
    else begin
      let s = f ~contention:k in
      Alcotest.(check bool) "monotone in contention" true (s >= prev);
      monotone s (k + 1)
    end
  in
  monotone 0 0;
  let capped = stretch_of (S.interference ~alpha:5 ~cap:7 (S.fixed ~delay:2)) in
  Alcotest.(check int) "explicit cap" 7 (capped ~contention:100);
  Alcotest.(check string) "derived name" "fixed(3)+sinr(a=1,cap=12)"
    (S.interference ~alpha:1 (S.fixed ~delay:3)).S.name;
  Alcotest.(check string) "name override" "fixed(3)"
    (S.interference ~name:"fixed(3)" ~alpha:0 (S.fixed ~delay:3)).S.name;
  Alcotest.check_raises "negative alpha"
    (Invalid_argument "Scheduler.interference: alpha must be >= 0") (fun () ->
      ignore (S.interference ~alpha:(-1) (S.fixed ~delay:3)))

(* ------------------------------------------------------------------ *)
(* Engine semantics: acks stretch with local contention. On a clique all
   n nodes broadcast at t = 0 in index order, so node i transmits with i
   neighbors already on air: its ack lands at delay + alpha*i. *)

let run_clique ~n ~alpha ?cap () =
  Amac.Engine.run once
    ~topology:(Amac.Topology.clique n)
    ~scheduler:(S.interference ~alpha ?cap (S.fixed ~delay:3))
    ~inputs:(Array.make n 0)

let test_ack_stretch_monotone_in_contention () =
  let outcome = run_clique ~n:5 ~alpha:1 () in
  Alcotest.(check (array int))
    "ack of node i stretched by its contention i" [| 3; 4; 5; 6; 7 |]
    (ack_times outcome);
  (* Doubling alpha doubles every stretch... *)
  let outcome = run_clique ~n:5 ~alpha:2 () in
  Alcotest.(check (array int)) "alpha scales the stretch"
    [| 3; 5; 7; 9; 11 |] (ack_times outcome);
  (* ...and the cap clips the tail. *)
  let outcome = run_clique ~n:5 ~alpha:2 ~cap:5 () in
  Alcotest.(check (array int)) "cap clips the stretch" [| 3; 5; 7; 8; 8 |]
    (ack_times outcome);
  (* alpha = 0 is the contention-free baseline. *)
  let outcome = run_clique ~n:5 ~alpha:0 () in
  Alcotest.(check (array int)) "alpha=0 is unstretched" [| 3; 3; 3; 3; 3 |]
    (ack_times outcome)

let test_contention_is_local () =
  (* On the line 0-1-2 node 2 only sees node 1 on air (node 0 is two hops
     away), so its stretch is 1 where the clique's would be 2. *)
  let line =
    Amac.Engine.run once
      ~topology:(Amac.Topology.line 3)
      ~scheduler:(S.interference ~alpha:1 (S.fixed ~delay:3))
      ~inputs:[| 0; 0; 0 |]
  in
  Alcotest.(check (array int)) "line: only on-air NEIGHBORS count"
    [| 3; 4; 4 |] (ack_times line);
  let clique =
    Amac.Engine.run once
      ~topology:(Amac.Topology.clique 3)
      ~scheduler:(S.interference ~alpha:1 (S.fixed ~delay:3))
      ~inputs:[| 0; 0; 0 |]
  in
  Alcotest.(check (array int)) "clique: both broadcasters load node 2"
    [| 3; 4; 5 |] (ack_times clique)

let test_contention_metrics_gated () =
  (* Interference runs register the contention families; contention-free
     runs must not (golden snapshots stay byte-identical). *)
  let run scheduler =
    let reg = Obs.Metrics.create () in
    ignore
      (Amac.Engine.run once
         ~topology:(Amac.Topology.clique 3)
         ~scheduler ~inputs:[| 0; 0; 0 |] ~obs:reg);
    Obs.Metrics.render (Obs.Metrics.snapshot reg)
  in
  let base = run (S.fixed ~delay:3) in
  let stretched = run (S.interference ~alpha:1 (S.fixed ~delay:3)) in
  let contains hay needle =
    let n = String.length needle and h = String.length hay in
    let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "base run has no contention families" false
    (contains base "engine_contention");
  Alcotest.(check bool) "interference run has contention hist" true
    (contains stretched "engine_contention_neighbors");
  Alcotest.(check bool) "interference run has stretch hist" true
    (contains stretched "engine_ack_stretch_ticks")

(* ------------------------------------------------------------------ *)
(* Record/replay byte-identity at 1000 nodes: record an interference run
   over a 25x40 grid, replay the decision list with the stretch hook
   reattached, and demand the identical event timeline. *)

let test_record_replay_1000_nodes () =
  let n = 1000 in
  let topology =
    Topo_gen.generate ~seed:11 (Topo_gen.Grid { width = 25; height = 40 })
  in
  let inputs = Array.init n (fun i -> i mod 2) in
  let interfered =
    S.interference ~alpha:1 (S.random (Amac.Rng.create 7) ~fack:3)
  in
  let recording, recorded = S.record interfered in
  let first =
    Amac.Engine.run once ~topology ~scheduler:recording ~inputs
      ~record_trace:true
  in
  let decisions = recorded () in
  Alcotest.(check int) "one decision per broadcast" n (List.length decisions);
  let replayed =
    {
      (S.replay decisions) with
      S.contention_stretch = interfered.S.contention_stretch;
    }
  in
  let second =
    Amac.Engine.run once ~topology ~scheduler:replayed ~inputs
      ~record_trace:true
  in
  Alcotest.(check string) "timelines byte-identical"
    (Amac.Trace.timeline ~n first.Amac.Engine.trace)
    (Amac.Trace.timeline ~n second.Amac.Engine.trace);
  Alcotest.(check int) "same deliveries" first.Amac.Engine.deliveries
    second.Amac.Engine.deliveries;
  Alcotest.(check int) "same end time" first.Amac.Engine.end_time
    second.Amac.Engine.end_time;
  (* The run genuinely exercised interference: some ack was stretched past
     the base scheduler's F_ack. *)
  Alcotest.(check bool) "some ack stretched beyond base fack" true
    (first.Amac.Engine.end_time > 3)

(* ------------------------------------------------------------------ *)
(* Keying equivalence over the new topologies: the fingerprint-keyed
   explorer must carve the state space exactly as the Marshal one, with
   zero observed collisions, on multi-hop topo_gen graphs. *)

let test_keying_equivalence_on_topo_gen () =
  List.iter
    (fun (tname, spec, inputs) ->
      let topology = Topo_gen.generate ~seed:3 spec in
      let config keying check_collisions =
        {
          Mcheck.Explore.default with
          max_depth = 14;
          max_states = 60_000;
          keying;
          check_collisions;
        }
      in
      let run keying check =
        Mcheck.Explore.explore (config keying check)
          Consensus.Two_phase.algorithm ~topology ~inputs
      in
      let fast = run `Fast true and marshal = run `Marshal false in
      Alcotest.(check int) (tname ^ ": zero collisions") 0
        fast.Mcheck.Explore.collisions;
      Alcotest.(check int) (tname ^ ": same states")
        marshal.Mcheck.Explore.states fast.Mcheck.Explore.states;
      Alcotest.(check int) (tname ^ ": same transitions")
        marshal.Mcheck.Explore.transitions fast.Mcheck.Explore.transitions;
      Alcotest.(check int) (tname ^ ": same sleep skips")
        marshal.Mcheck.Explore.sleep_skips fast.Mcheck.Explore.sleep_skips;
      Alcotest.(check int) (tname ^ ": no violations") 0
        (List.length fast.Mcheck.Explore.violations))
    [
      ( "cluster:2x2",
        Topo_gen.Cluster { clusters = 2; size = 2; extra_bridges = 0 },
        [| 0; 1; 1; 0 |] );
      ("rgg:4", Topo_gen.Rgg { n = 4; radius = 0.8 }, [| 0; 1; 0; 1 |]);
    ]

(* ------------------------------------------------------------------ *)
(* Topology deltas inside a run. *)

let deliveries_to ~node ~sender trace =
  List.filter_map
    (function
      | Amac.Trace.Delivered { time; node = n'; sender = s'; _ }
        when n' = node && s' = sender ->
          Some time
      | _ -> None)
    trace

let test_topo_delta_changes_reachability () =
  (* forever on the line 0-1-2 with fixed delay 2; adding edge (0,2) at
     t = 2 makes node 2 hear node 0 directly from the NEXT broadcast on. *)
  let run deltas =
    Amac.Engine.run forever
      ~topology:(Amac.Topology.line 3)
      ~scheduler:(S.fixed ~delay:2) ~inputs:[| 0; 0; 0 |] ~max_time:8
      ~record_trace:true ?topo_deltas:deltas
  in
  let base = run None in
  Alcotest.(check int) "no deltas recorded" 0 base.Amac.Engine.topo_changes;
  Alcotest.(check (list int)) "line: 2 never hears 0 directly" []
    (deliveries_to ~node:2 ~sender:0 base.Amac.Engine.trace);
  let patched = run (Some [ (2, Amac.Topology.Add_edge (0, 2)) ]) in
  Alcotest.(check int) "delta recorded" 1 patched.Amac.Engine.topo_changes;
  (* Priority ordering: the t=2 Topo event lands AFTER the t=2 acks, so
     the broadcast issued on that ack still uses the old neighbor set —
     0's first delivery to 2 rides the t=4 broadcast, landing at t=6. *)
  Alcotest.(check (list int)) "first direct delivery only after the delta"
    [ 6; 8 ]
    (deliveries_to ~node:2 ~sender:0 patched.Amac.Engine.trace)

let test_topo_delta_removal_quiets_edge () =
  let run deltas =
    Amac.Engine.run forever
      ~topology:(Amac.Topology.line 3)
      ~scheduler:(S.fixed ~delay:2) ~inputs:[| 0; 0; 0 |] ~max_time:8
      ~record_trace:true ?topo_deltas:deltas
  in
  let base = run None in
  let cut = run (Some [ (2, Amac.Topology.Remove_edge (0, 1)) ]) in
  (* In-flight deliveries still land (the t=2 wave was planned at t=0 and
     the t=2 acks rebroadcast before the delta applies), but no wave
     planned after the removal crosses the edge. *)
  Alcotest.(check (list int)) "before the cut 1 hears 0"
    [ 2; 4 ]
    (deliveries_to ~node:1 ~sender:0 cut.Amac.Engine.trace);
  Alcotest.(check bool) "without the cut the edge keeps delivering" true
    (List.length (deliveries_to ~node:1 ~sender:0 base.Amac.Engine.trace) > 2);
  Alcotest.(check bool) "fewer deliveries overall" true
    (cut.Amac.Engine.deliveries < base.Amac.Engine.deliveries)

let test_topo_delta_validation () =
  let run deltas =
    ignore
      (Amac.Engine.run once
         ~topology:(Amac.Topology.line 3)
         ~scheduler:S.synchronous ~inputs:[| 0; 0; 0 |] ~topo_deltas:deltas)
  in
  (match run [ (-1, Amac.Topology.Add_edge (0, 2)) ] with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "negative delta time accepted");
  (* The engine mutates a PRIVATE copy: the caller's topology is intact. *)
  let topology = Amac.Topology.line 3 in
  ignore
    (Amac.Engine.run once ~topology ~scheduler:S.synchronous
       ~inputs:[| 0; 0; 0 |]
       ~topo_deltas:[ (1, Amac.Topology.Add_edge (0, 2)) ]);
  Alcotest.(check bool) "caller topology untouched" false
    (Amac.Topology.has_edge topology 0 2)

(* Contention accounting stays exact under churn: an edge added while the
   far endpoint is on air must load the near endpoint immediately. The
   sequence is pinned end-to-end by ack times. *)
let test_contention_tracks_deltas () =
  let outcome =
    Amac.Engine.run once
      ~topology:(Amac.Topology.clique 3)
      ~scheduler:(S.interference ~alpha:1 (S.fixed ~delay:3))
      ~inputs:[| 0; 0; 0 |]
      ~topo_deltas:[ (0, Amac.Topology.Remove_edge (1, 2)) ]
  in
  (* Broadcasts at t=0 precede the t=0 Topo event (priority 5): stretches
     are the clique's 0,1,2. The ack decrements walk the CURRENT neighbor
     lists — with (1,2) gone — and must not underflow or miscount. *)
  Alcotest.(check (array int)) "acks pinned across the removal"
    [| 3; 4; 5 |] (ack_times outcome);
  Alcotest.(check int) "one topo change" 1 outcome.Amac.Engine.topo_changes

let () =
  Alcotest.run "multihop"
    [
      ( "stretch law",
        [
          Alcotest.test_case "zero/monotone/capped" `Quick test_stretch_law;
          Alcotest.test_case "ack stretch monotone in contention" `Quick
            test_ack_stretch_monotone_in_contention;
          Alcotest.test_case "contention is local" `Quick
            test_contention_is_local;
          Alcotest.test_case "contention metrics gated" `Quick
            test_contention_metrics_gated;
        ] );
      ( "record/replay",
        [
          Alcotest.test_case "byte-identity at 1000 nodes" `Quick
            test_record_replay_1000_nodes;
        ] );
      ( "keying",
        [
          Alcotest.test_case "fast == marshal on topo_gen graphs" `Quick
            test_keying_equivalence_on_topo_gen;
        ] );
      ( "topology deltas",
        [
          Alcotest.test_case "addition changes reachability" `Quick
            test_topo_delta_changes_reachability;
          Alcotest.test_case "removal quiets the edge" `Quick
            test_topo_delta_removal_quiets_edge;
          Alcotest.test_case "validation and copy isolation" `Quick
            test_topo_delta_validation;
          Alcotest.test_case "contention exact under churn" `Quick
            test_contention_tracks_deltas;
        ] );
    ]
