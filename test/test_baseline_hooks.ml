(* Satellite: Algorithm.hooks for the baseline algorithms that lacked them
   — flood_paxos, round_flood, flood_gather — making them first-class
   citizens of the explorer's `Fast keying and the fingerprint soundness
   harness.

   Two properties per algorithm, mirroring test_mcheck/test_fingerprint:

   - keying equivalence: exploring with fingerprint keys visits exactly the
     state space the Marshal+MD5 keys do (states, transitions, reduction
     counters all equal);
   - collision freedom: over a digest-distinct sample of reachable
     configurations, no two share a fingerprint (expected count over a few
     thousand states is ~1e-12 at 63 bits — assert exactly zero).

   Instance sizes are tuned per algorithm: flood_paxos branches heavily
   (leader + proposer machinery), so its exploration instance is a 2-clique
   at bounded depth; round_flood's space is genuinely tiny (monotone round
   counters mean no revisits at all), pinned as such. *)

module Explore = Mcheck.Explore

type case =
  | Case : {
      name : string;
      algorithm : ('s, 'm) Amac.Algorithm.t;
      topology : Amac.Topology.t;
      inputs : int array;
      max_depth : int;
      min_states : int;  (** the space this instance must at least visit *)
      expect_revisits : bool;
          (** whether the instance dedups at all (round_flood's state is
              monotone — every reachable state is distinct) *)
    }
      -> case

let explore_cases =
  [
    Case
      {
        name = "round_flood";
        algorithm = Consensus.Round_flood.make ~target:`Knows_n;
        topology = Amac.Topology.clique 3;
        inputs = [| 2; 0; 1 |];
        max_depth = 64;
        min_states = 10;
        expect_revisits = false;
      };
    Case
      {
        name = "flood_gather";
        algorithm = Consensus.Flood_gather.make ();
        topology = Amac.Topology.line 3;
        inputs = [| 1; 0; 1 |];
        max_depth = 64;
        min_states = 1_000;
        expect_revisits = true;
      };
    Case
      {
        name = "flood_paxos";
        algorithm = Consensus.Flood_paxos.make ();
        topology = Amac.Topology.clique 2;
        inputs = [| 0; 1 |];
        max_depth = 14;
        min_states = 50;
        expect_revisits = true;
      };
  ]

(* Sampling instances for collision freedom — sized to yield thousands of
   digest-distinct states (flood_paxos needs the 3-clique for that). *)
let sample_cases =
  [
    Case
      {
        name = "round_flood";
        algorithm = Consensus.Round_flood.make ~target:`Knows_n;
        topology = Amac.Topology.clique 3;
        inputs = [| 2; 0; 1 |];
        max_depth = 64;
        min_states = 1_000;
        expect_revisits = false;
      };
    Case
      {
        name = "flood_gather";
        algorithm = Consensus.Flood_gather.make ();
        topology = Amac.Topology.line 3;
        inputs = [| 1; 0; 1 |];
        max_depth = 64;
        min_states = 1_000;
        expect_revisits = true;
      };
    Case
      {
        name = "flood_paxos";
        algorithm = Consensus.Flood_paxos.make ();
        topology = Amac.Topology.clique 3;
        inputs = [| 0; 1; 1 |];
        max_depth = 16;
        min_states = 1_000;
        expect_revisits = true;
      };
  ]

let test_keying_equivalence () =
  List.iter
    (fun (Case { name; algorithm; topology; inputs; max_depth; min_states; _ }) ->
      let run keying =
        Explore.explore
          {
            Explore.default with
            crash_budget = 1;
            keying;
            max_depth;
            max_states = 300_000;
          }
          algorithm ~topology ~inputs
      in
      let fast = run `Fast and marshal = run `Marshal in
      Alcotest.(check int) (name ^ ": same states") marshal.Explore.states
        fast.Explore.states;
      Alcotest.(check int)
        (name ^ ": same transitions")
        marshal.Explore.transitions fast.Explore.transitions;
      Alcotest.(check int)
        (name ^ ": same dedup hits")
        marshal.Explore.dedup_hits fast.Explore.dedup_hits;
      Alcotest.(check int)
        (name ^ ": same sleep skips")
        marshal.Explore.sleep_skips fast.Explore.sleep_skips;
      Alcotest.(check bool)
        (Printf.sprintf "%s: visited >= %d states (got %d)" name min_states
           fast.Explore.states)
        true
        (fast.Explore.states >= min_states))
    explore_cases

let test_collision_free () =
  List.iter
    (fun (Case { name; algorithm; topology; inputs; max_depth; min_states; _ }) ->
      let pairs =
        Explore.key_pairs
          (Explore.sample
             { Explore.default with max_depth; max_states = 5_000_000 }
             algorithm ~topology ~inputs ~max_samples:10_000)
      in
      Alcotest.(check bool)
        (Printf.sprintf "%s: sampled >= %d states (got %d)" name min_states
           (Array.length pairs))
        true
        (Array.length pairs >= min_states);
      let by_fp = Hashtbl.create (Array.length pairs) in
      let collisions = ref 0 in
      Array.iter
        (fun (digest, fp) ->
          match Hashtbl.find_opt by_fp fp with
          | None -> Hashtbl.add by_fp fp digest
          | Some d when d = digest -> ()
          | Some _ -> incr collisions)
        pairs;
      Alcotest.(check int)
        (name ^ ": no distinct-digest fingerprint collisions")
        0 !collisions)
    sample_cases

(* Collision double-checking inside the explorer itself: every `Fast
   lookup is verified against the Marshal digest. *)
let test_collision_check_mode () =
  List.iter
    (fun (Case
           { name; algorithm; topology; inputs; max_depth; expect_revisits; _ })
         ->
      let stats =
        Explore.explore
          {
            Explore.default with
            crash_budget = 1;
            check_collisions = true;
            max_depth;
            max_states = 300_000;
          }
          algorithm ~topology ~inputs
      in
      Alcotest.(check int)
        (name ^ ": no fingerprint/digest disagreements")
        0 stats.Explore.collisions;
      Alcotest.(check bool)
        (name ^ ": revisit profile as expected")
        expect_revisits
        (stats.Explore.dedup_hits > 0))
    explore_cases

let () =
  Alcotest.run "baseline-hooks"
    [
      ( "hooks",
        [
          Alcotest.test_case "fast and marshal keying agree" `Quick
            test_keying_equivalence;
          Alcotest.test_case "fingerprints collision-free on samples" `Quick
            test_collision_free;
          Alcotest.test_case "collision-check mode finds none" `Quick
            test_collision_check_mode;
        ] );
    ]
