(* Checker logic over hand-built outcomes. *)

let outcome ?(extra = []) ?(crashed = [||]) decisions : Amac.Engine.outcome =
  let n = Array.length decisions in
  {
    decisions;
    extra_decides = extra;
    crashed = (if Array.length crashed = n then crashed else Array.make n false);
    incarnations = Array.make n 0;
    broadcasts = 0;
    deliveries = 0;
    discarded = 0;
    dropped = 0;
    link_dropped = 0;
    stuttered = 0;
    suppressed = 0;
    substituted = 0;
    max_ids_per_message = 0;
    end_time = 0;
    events_processed = 0;
    unreliable_deliveries = 0;
    injected = 0;
    topo_changes = 0;
    hit_max_time = false;
    causal = None;
    provenance = None;
    trace = [];
  }

let test_all_good () =
  let report =
    Consensus.Checker.check ~inputs:[| 0; 1; 0 |]
      (outcome [| Some (0, 5); Some (0, 6); Some (0, 4) |])
  in
  Alcotest.(check bool) "ok" true (Consensus.Checker.ok report);
  Alcotest.(check bool) "safe" true (Consensus.Checker.safe report);
  Alcotest.(check (list int)) "values" [ 0 ] report.decided_values;
  Alcotest.(check (list string)) "no problems" [] report.problems

let test_agreement_violation () =
  let report =
    Consensus.Checker.check ~inputs:[| 0; 1 |]
      (outcome [| Some (0, 1); Some (1, 1) |])
  in
  Alcotest.(check bool) "agreement" false report.agreement;
  Alcotest.(check bool) "not ok" false (Consensus.Checker.ok report);
  Alcotest.(check bool) "not safe" false (Consensus.Checker.safe report);
  Alcotest.(check bool) "explained" true (report.problems <> [])

let test_validity_violation () =
  let report =
    Consensus.Checker.check ~inputs:[| 1; 1 |]
      (outcome [| Some (0, 1); Some (0, 2) |])
  in
  Alcotest.(check bool) "validity" false report.validity;
  Alcotest.(check bool) "agreement still fine" true report.agreement

let test_termination_violation () =
  let report =
    Consensus.Checker.check ~inputs:[| 0; 0 |] (outcome [| Some (0, 1); None |])
  in
  Alcotest.(check bool) "termination" false report.termination;
  Alcotest.(check bool) "safe but not ok" true
    (Consensus.Checker.safe report && not (Consensus.Checker.ok report))

let test_crashed_node_excused () =
  let report =
    Consensus.Checker.check ~inputs:[| 0; 0 |]
      (outcome ~crashed:[| false; true |] [| Some (0, 1); None |])
  in
  Alcotest.(check bool) "crashed need not decide" true report.termination;
  Alcotest.(check bool) "ok" true (Consensus.Checker.ok report)

let test_irrevocability_violation () =
  let report =
    Consensus.Checker.check ~inputs:[| 0; 1 |]
      (outcome ~extra:[ (0, 1, 9) ] [| Some (0, 1); Some (0, 2) |])
  in
  Alcotest.(check bool) "irrevocability" false report.irrevocability;
  Alcotest.(check bool) "not safe" false (Consensus.Checker.safe report)

let test_no_decisions () =
  let report = Consensus.Checker.check ~inputs:[| 0; 1 |] (outcome [| None; None |]) in
  Alcotest.(check bool) "agreement vacuous" true report.agreement;
  Alcotest.(check bool) "validity vacuous" true report.validity;
  Alcotest.(check bool) "termination fails" false report.termination

let test_input_mismatch () =
  Alcotest.check_raises "length mismatch"
    (Invalid_argument "Checker.check: inputs length mismatches outcome")
    (fun () ->
      ignore (Consensus.Checker.check ~inputs:[| 0 |] (outcome [| None; None |])))

(* Honest-mask (Byzantine-aware) judgments. The two directions guard
   against a silently vacuous checker: adversary noise must NOT flag, an
   honest split MUST. *)

let test_byz_decide_not_flagged () =
  (* Node 2 is Byzantine and "decides" 7 — a value nobody holds. Honest
     nodes agree on 0: clean report. *)
  let report =
    Consensus.Checker.check ~honest:[| true; true; false |]
      ~inputs:[| 0; 0; 1 |]
      (outcome [| Some (0, 4); Some (0, 5); Some (7, 1) |])
  in
  Alcotest.(check bool) "ok despite byz noise" true
    (Consensus.Checker.ok report);
  Alcotest.(check (list int)) "honest values only" [ 0 ] report.decided_values

let test_honest_split_is_flagged () =
  (* Same mask, but now two HONEST nodes disagree: must flag. *)
  let report =
    Consensus.Checker.check ~honest:[| true; true; false |]
      ~inputs:[| 0; 1; 1 |]
      (outcome [| Some (0, 4); Some (1, 5); Some (7, 1) |])
  in
  Alcotest.(check bool) "agreement violated" false report.agreement;
  Alcotest.(check (list int)) "byz value still excluded" [ 0; 1 ]
    report.decided_values

let test_byz_input_excluded_from_validity () =
  (* Every honest node holds 0; the Byzantine node's nominal input 1 must
     not legitimize a decision of 1 planted by the adversary. *)
  let report =
    Consensus.Checker.check ~honest:[| true; true; false |]
      ~inputs:[| 0; 0; 1 |]
      (outcome [| Some (1, 4); Some (1, 5); None |])
  in
  Alcotest.(check bool) "validity violated" false report.validity

let test_byz_silence_excused () =
  (* A Byzantine node that never decides is the adversary's business, not
     a termination violation; an honest non-decider still is. *)
  let silent_byz =
    Consensus.Checker.check ~honest:[| true; false |] ~inputs:[| 0; 0 |]
      (outcome [| Some (0, 3); None |])
  in
  Alcotest.(check bool) "byz silence excused" true silent_byz.termination;
  let silent_honest =
    Consensus.Checker.check ~honest:[| false; true |] ~inputs:[| 0; 0 |]
      (outcome [| Some (0, 3); None |])
  in
  Alcotest.(check bool) "honest silence flagged" false
    silent_honest.termination

let test_byz_redecide_excused () =
  let report =
    Consensus.Checker.check ~honest:[| true; false |] ~inputs:[| 0; 0 |]
      (outcome
         ~extra:[ (1, 1, 9) ]
         [| Some (0, 3); Some (0, 2) |])
  in
  Alcotest.(check bool) "byz re-decide excused" true report.irrevocability;
  let honest_redecide =
    Consensus.Checker.check ~honest:[| true; false |] ~inputs:[| 0; 0 |]
      (outcome
         ~extra:[ (0, 1, 9) ]
         [| Some (0, 3); Some (0, 2) |])
  in
  Alcotest.(check bool) "honest re-decide flagged" false
    honest_redecide.irrevocability

let test_honest_mask_length_checked () =
  Alcotest.check_raises "mask length"
    (Invalid_argument "Checker.check: honest mask length mismatches outcome")
    (fun () ->
      ignore
        (Consensus.Checker.check ~honest:[| true |] ~inputs:[| 0; 0 |]
           (outcome [| None; None |])))

let test_degrade_excludes_byz () =
  (* Degradation liveness counts honest survivors only: byz node 1 never
     "decides" yet the honest fraction is 1.0. *)
  let d =
    Consensus.Checker.degrade ~honest:[| true; false; true |]
      ~inputs:[| 0; 0; 0 |]
      (outcome [| Some (0, 3); None; Some (0, 5) |])
  in
  Alcotest.(check bool) "safe" true d.Consensus.Checker.safe;
  Alcotest.(check (list int)) "correct = honest" [ 0; 2 ]
    d.Consensus.Checker.correct;
  Alcotest.(check (float 0.0)) "fraction over honest" 1.0
    d.Consensus.Checker.decided_fraction

let test_pp () =
  let good =
    Consensus.Checker.check ~inputs:[| 1 |] (outcome [| Some (1, 0) |])
  in
  Alcotest.(check string) "ok rendering" "consensus ok (decided {1})"
    (Format.asprintf "%a" Consensus.Checker.pp good)

let () =
  Alcotest.run "checker"
    [
      ( "unit",
        [
          Alcotest.test_case "all good" `Quick test_all_good;
          Alcotest.test_case "agreement violation" `Quick
            test_agreement_violation;
          Alcotest.test_case "validity violation" `Quick
            test_validity_violation;
          Alcotest.test_case "termination violation" `Quick
            test_termination_violation;
          Alcotest.test_case "crashed node excused" `Quick
            test_crashed_node_excused;
          Alcotest.test_case "irrevocability violation" `Quick
            test_irrevocability_violation;
          Alcotest.test_case "no decisions" `Quick test_no_decisions;
          Alcotest.test_case "input mismatch" `Quick test_input_mismatch;
          Alcotest.test_case "pretty printing" `Quick test_pp;
        ] );
      ( "honest mask",
        [
          Alcotest.test_case "byz decide not flagged" `Quick
            test_byz_decide_not_flagged;
          Alcotest.test_case "honest split is flagged" `Quick
            test_honest_split_is_flagged;
          Alcotest.test_case "byz input excluded from validity" `Quick
            test_byz_input_excluded_from_validity;
          Alcotest.test_case "byz silence excused" `Quick
            test_byz_silence_excused;
          Alcotest.test_case "byz re-decide excused" `Quick
            test_byz_redecide_excused;
          Alcotest.test_case "mask length checked" `Quick
            test_honest_mask_length_checked;
          Alcotest.test_case "degradation over honest nodes" `Quick
            test_degrade_excludes_byz;
        ] );
    ]
