(* Checker logic over hand-built outcomes. *)

let outcome ?(extra = []) ?(crashed = [||]) decisions : Amac.Engine.outcome =
  let n = Array.length decisions in
  {
    decisions;
    extra_decides = extra;
    crashed = (if Array.length crashed = n then crashed else Array.make n false);
    incarnations = Array.make n 0;
    broadcasts = 0;
    deliveries = 0;
    discarded = 0;
    dropped = 0;
    link_dropped = 0;
    stuttered = 0;
    max_ids_per_message = 0;
    end_time = 0;
    events_processed = 0;
    unreliable_deliveries = 0;
    injected = 0;
    hit_max_time = false;
    causal = None;
    trace = [];
  }

let test_all_good () =
  let report =
    Consensus.Checker.check ~inputs:[| 0; 1; 0 |]
      (outcome [| Some (0, 5); Some (0, 6); Some (0, 4) |])
  in
  Alcotest.(check bool) "ok" true (Consensus.Checker.ok report);
  Alcotest.(check bool) "safe" true (Consensus.Checker.safe report);
  Alcotest.(check (list int)) "values" [ 0 ] report.decided_values;
  Alcotest.(check (list string)) "no problems" [] report.problems

let test_agreement_violation () =
  let report =
    Consensus.Checker.check ~inputs:[| 0; 1 |]
      (outcome [| Some (0, 1); Some (1, 1) |])
  in
  Alcotest.(check bool) "agreement" false report.agreement;
  Alcotest.(check bool) "not ok" false (Consensus.Checker.ok report);
  Alcotest.(check bool) "not safe" false (Consensus.Checker.safe report);
  Alcotest.(check bool) "explained" true (report.problems <> [])

let test_validity_violation () =
  let report =
    Consensus.Checker.check ~inputs:[| 1; 1 |]
      (outcome [| Some (0, 1); Some (0, 2) |])
  in
  Alcotest.(check bool) "validity" false report.validity;
  Alcotest.(check bool) "agreement still fine" true report.agreement

let test_termination_violation () =
  let report =
    Consensus.Checker.check ~inputs:[| 0; 0 |] (outcome [| Some (0, 1); None |])
  in
  Alcotest.(check bool) "termination" false report.termination;
  Alcotest.(check bool) "safe but not ok" true
    (Consensus.Checker.safe report && not (Consensus.Checker.ok report))

let test_crashed_node_excused () =
  let report =
    Consensus.Checker.check ~inputs:[| 0; 0 |]
      (outcome ~crashed:[| false; true |] [| Some (0, 1); None |])
  in
  Alcotest.(check bool) "crashed need not decide" true report.termination;
  Alcotest.(check bool) "ok" true (Consensus.Checker.ok report)

let test_irrevocability_violation () =
  let report =
    Consensus.Checker.check ~inputs:[| 0; 1 |]
      (outcome ~extra:[ (0, 1, 9) ] [| Some (0, 1); Some (0, 2) |])
  in
  Alcotest.(check bool) "irrevocability" false report.irrevocability;
  Alcotest.(check bool) "not safe" false (Consensus.Checker.safe report)

let test_no_decisions () =
  let report = Consensus.Checker.check ~inputs:[| 0; 1 |] (outcome [| None; None |]) in
  Alcotest.(check bool) "agreement vacuous" true report.agreement;
  Alcotest.(check bool) "validity vacuous" true report.validity;
  Alcotest.(check bool) "termination fails" false report.termination

let test_input_mismatch () =
  Alcotest.check_raises "length mismatch"
    (Invalid_argument "Checker.check: inputs length mismatches outcome")
    (fun () ->
      ignore (Consensus.Checker.check ~inputs:[| 0 |] (outcome [| None; None |])))

let test_pp () =
  let good =
    Consensus.Checker.check ~inputs:[| 1 |] (outcome [| Some (1, 0) |])
  in
  Alcotest.(check string) "ok rendering" "consensus ok (decided {1})"
    (Format.asprintf "%a" Consensus.Checker.pp good)

let () =
  Alcotest.run "checker"
    [
      ( "unit",
        [
          Alcotest.test_case "all good" `Quick test_all_good;
          Alcotest.test_case "agreement violation" `Quick
            test_agreement_violation;
          Alcotest.test_case "validity violation" `Quick
            test_validity_violation;
          Alcotest.test_case "termination violation" `Quick
            test_termination_violation;
          Alcotest.test_case "crashed node excused" `Quick
            test_crashed_node_excused;
          Alcotest.test_case "irrevocability violation" `Quick
            test_irrevocability_violation;
          Alcotest.test_case "no decisions" `Quick test_no_decisions;
          Alcotest.test_case "input mismatch" `Quick test_input_mismatch;
          Alcotest.test_case "pretty printing" `Quick test_pp;
        ] );
    ]
