(* Satellite: fault-plan validation — malformed plans are rejected up
   front with a clear Invalid_argument, at both the Fault.validate level
   and the engine's crash/recovery-schedule level. *)

let ok plan = Fault.validate ~n:4 plan

let rejects msg plan =
  Alcotest.check_raises msg (Invalid_argument msg) (fun () ->
      Fault.validate ~n:4 plan)

let test_valid_plans () =
  ok [];
  ok [ Fault.Crash { node = 0; at = 3 } ];
  ok
    [
      Fault.Crash { node = 0; at = 3 };
      Fault.Recover { node = 0; at = 7 };
      Fault.Crash { node = 0; at = 9 };
    ];
  (* Non-overlapping windows on one edge, overlapping on distinct edges. *)
  ok
    [
      Fault.Link_drop { edge = (0, 1); from_ = 0; until = 5 };
      Fault.Link_drop { edge = (1, 0); from_ = 5; until = 9 };
      Fault.Link_drop { edge = (2, 3); from_ = 2; until = 7 };
    ];
  (* Sequential partition-and-heal episodes. *)
  ok
    [
      Fault.Partition { cut = [ 0; 1 ]; from_ = 0; until = 4 };
      Fault.Partition { cut = [ 2 ]; from_ = 4; until = 8 };
      Fault.Stutter { node = 1; from_ = 0; until = 3 };
      Fault.Stutter { node = 2; from_ = 0; until = 3 };
    ]

let test_duplicate_crash () =
  rejects
    "Fault.validate: duplicate crash of node 2 at t=9 (same incarnation \
     crashed twice, no recovery between)"
    [ Fault.Crash { node = 2; at = 4 }; Fault.Crash { node = 2; at = 9 } ]

let test_recover_before_crash () =
  rejects "Fault.validate: recover of node 1 at t=5 before any crash"
    [ Fault.Recover { node = 1; at = 5 } ];
  rejects "Fault.validate: recover of node 1 at t=2 before any crash"
    [ Fault.Recover { node = 1; at = 2 }; Fault.Crash { node = 1; at = 6 } ]

let test_same_instant () =
  rejects "Fault.validate: node 3 has two crash/recover events at t=6"
    [ Fault.Crash { node = 3; at = 6 }; Fault.Recover { node = 3; at = 6 } ]

let test_overlapping_loss_windows () =
  (* Overlap is detected on the normalized (undirected) edge. *)
  rejects
    "Fault.validate: overlapping loss windows on edge (0,1): [2,8) and [5,11)"
    [
      Fault.Link_drop { edge = (0, 1); from_ = 2; until = 8 };
      Fault.Link_drop { edge = (1, 0); from_ = 5; until = 11 };
    ]

let test_overlapping_stutters () =
  rejects
    "Fault.validate: overlapping stutter windows on node 2: [0,4) and [3,6)"
    [
      Fault.Stutter { node = 2; from_ = 0; until = 4 };
      Fault.Stutter { node = 2; from_ = 3; until = 6 };
    ]

let test_concurrent_partitions () =
  rejects
    "Fault.validate: overlapping partitions: windows [0,9) and [4,6) are \
     both in force"
    [
      Fault.Partition { cut = [ 0 ]; from_ = 0; until = 9 };
      Fault.Partition { cut = [ 3 ]; from_ = 4; until = 6 };
    ]

let test_partition_cuts () =
  rejects "Fault.validate: partition cut is empty"
    [ Fault.Partition { cut = []; from_ = 0; until = 5 } ];
  rejects "Fault.validate: partition cut has duplicate nodes"
    [ Fault.Partition { cut = [ 1; 1 ]; from_ = 0; until = 5 } ];
  rejects
    "Fault.validate: partition cut contains every node (nothing to cut)"
    [ Fault.Partition { cut = [ 0; 1; 2; 3 ]; from_ = 0; until = 5 } ]

let test_ranges_and_windows () =
  rejects "Fault.validate: crash node 4 out of range [0,4)"
    [ Fault.Crash { node = 4; at = 0 } ];
  rejects "Fault.validate: crash of node 0 at negative time -1"
    [ Fault.Crash { node = 0; at = -1 } ];
  rejects "Fault.validate: link-drop edge (2,2) is a self-loop"
    [ Fault.Link_drop { edge = (2, 2); from_ = 0; until = 3 } ];
  rejects "Fault.validate: link-drop window [5,5) is empty or inverted"
    [ Fault.Link_drop { edge = (0, 1); from_ = 5; until = 5 } ];
  rejects "Fault.validate: stutter window starts at negative time -2"
    [ Fault.Stutter { node = 0; from_ = -2; until = 3 } ]

let test_horizon_and_correct () =
  let plan =
    [
      Fault.Crash { node = 0; at = 2 };
      Fault.Recover { node = 0; at = 10 };
      Fault.Crash { node = 1; at = 50 };
      Fault.Link_drop { edge = (2, 3); from_ = 0; until = 30 };
    ]
  in
  Fault.validate ~n:4 plan;
  (* Unrecovered crash of node 1 contributes nothing: fail-stop is forever,
     so the plan is "quiet" once windows close and recoveries are done. *)
  Alcotest.(check int) "horizon" 30 (Fault.horizon plan);
  Alcotest.(check (list int)) "correct at end" [ 0; 2; 3 ]
    (List.sort Int.compare (Fault.correct_at_end ~n:4 plan));
  Alcotest.(check (list (pair int int))) "crashes" [ (0, 2); (1, 50) ]
    (List.sort compare (Fault.crashes plan));
  Alcotest.(check (list (pair int int))) "recoveries" [ (0, 10) ]
    (Fault.recoveries plan)

let test_compile_half_open () =
  let compiled =
    Fault.compile ~n:4
      [ Fault.Link_drop { edge = (1, 2); from_ = 3; until = 7 } ]
  in
  let drop = Option.get compiled.Fault.drop in
  Alcotest.(check bool) "inactive before" false
    (drop ~now:2 ~sender:1 ~receiver:2);
  Alcotest.(check bool) "active at from_" true
    (drop ~now:3 ~sender:1 ~receiver:2);
  Alcotest.(check bool) "undirected" true (drop ~now:6 ~sender:2 ~receiver:1);
  Alcotest.(check bool) "inactive at until" false
    (drop ~now:7 ~sender:1 ~receiver:2);
  Alcotest.(check bool) "other edge untouched" false
    (drop ~now:5 ~sender:0 ~receiver:1);
  Alcotest.(check bool) "no stutter hook" true (compiled.Fault.stutter = None)

(* The engine applies the same alternation discipline to raw [?crashes] /
   [?recoveries] schedules, so the legacy interface cannot smuggle in what
   Fault.validate rejects. *)
let test_engine_rejects_raw_duplicates () =
  let run ~crashes =
    ignore
      (Consensus.Runner.run Consensus.Two_phase.algorithm
         ~topology:(Amac.Topology.clique 3)
         ~scheduler:Amac.Scheduler.synchronous ~inputs:[| 0; 1; 1 |] ~crashes)
  in
  Alcotest.check_raises "duplicate crash"
    (Invalid_argument
       "Engine.run: duplicate crash of node 1 at t=8 (same incarnation \
        crashed twice, no recovery between)")
    (fun () -> run ~crashes:[ (1, 3); (1, 8) ])

let () =
  Alcotest.run "fault"
    [
      ( "validate",
        [
          Alcotest.test_case "valid plans pass" `Quick test_valid_plans;
          Alcotest.test_case "duplicate crash" `Quick test_duplicate_crash;
          Alcotest.test_case "recover before crash" `Quick
            test_recover_before_crash;
          Alcotest.test_case "same-instant pair" `Quick test_same_instant;
          Alcotest.test_case "overlapping loss windows" `Quick
            test_overlapping_loss_windows;
          Alcotest.test_case "overlapping stutters" `Quick
            test_overlapping_stutters;
          Alcotest.test_case "concurrent partitions" `Quick
            test_concurrent_partitions;
          Alcotest.test_case "partition cut checks" `Quick test_partition_cuts;
          Alcotest.test_case "ranges and windows" `Quick
            test_ranges_and_windows;
        ] );
      ( "semantics",
        [
          Alcotest.test_case "horizon and correct-at-end" `Quick
            test_horizon_and_correct;
          Alcotest.test_case "compile: half-open windows" `Quick
            test_compile_half_open;
          Alcotest.test_case "engine rejects raw duplicates" `Quick
            test_engine_rejects_raw_duplicates;
        ] );
    ]
