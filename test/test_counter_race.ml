(* Counter-race consensus (Newport & Robinson adaptation): crash-stop
   tolerance with no knowledge of n, plus the margin knob — margin 3 is the
   safe default, margin 2 is demonstrably broken, and this suite pins both
   sides so the harness is provably looking. *)

let run ?(margin = 3) ?(crashes = []) ?(fack = 4) ~n ~seed inputs =
  Consensus.Runner.run
    (Consensus.Counter_race.make ~margin ())
    ~topology:(Amac.Topology.clique n)
    ~scheduler:(Amac.Scheduler.random (Amac.Rng.create seed) ~fack)
    ~inputs ~crashes ~max_time:200_000

let check_ok what (result : Consensus.Runner.result) =
  if not (Consensus.Checker.ok result.report) then
    Alcotest.failf "%s: %s" what
      (String.concat "; " result.report.Consensus.Checker.problems)

let test_unanimous () =
  List.iter
    (fun value ->
      let result = run ~n:5 ~seed:1 (Consensus.Runner.inputs_all ~n:5 value) in
      check_ok "unanimous" result;
      Alcotest.(check (list int)) "decides the common input" [ value ]
        result.report.decided_values)
    [ 0; 1 ]

let test_mixed_inputs () =
  List.iter
    (fun seed ->
      check_ok "mixed"
        (run ~n:6 ~seed (Consensus.Runner.inputs_alternating ~n:6)))
    [ 1; 2; 3; 4; 5 ]

let test_single_and_pair () =
  check_ok "n=1" (run ~n:1 ~seed:1 [| 1 |]);
  check_ok "n=2" (run ~n:2 ~seed:2 [| 0; 1 |])

let test_no_n_needed () =
  (* The headline property inherited from Newport-Robinson: the race works
     without knowing how many contestants there are. *)
  let result =
    Consensus.Runner.run
      (Consensus.Counter_race.make ())
      ~give_n:false
      ~topology:(Amac.Topology.clique 4)
      ~scheduler:(Amac.Scheduler.random (Amac.Rng.create 7) ~fack:3)
      ~inputs:[| 0; 1; 1; 0 |] ~max_time:200_000
  in
  check_ok "anonymous n" result

let test_survives_crashes () =
  (* Crash-stop with no f budget: any number of crashes, survivors decide. *)
  List.iter
    (fun (n, crashes, seed) ->
      let result =
        run ~n ~seed ~crashes (Consensus.Runner.inputs_alternating ~n)
      in
      check_ok (Printf.sprintf "n=%d with %d crashes" n (List.length crashes))
        result)
    [
      (3, [ (0, 2) ], 1);
      (5, [ (1, 0); (3, 6) ], 2);
      (5, [ (0, 1); (2, 4); (3, 9); (4, 14) ], 3);
      (7, [ (0, 1); (2, 4); (5, 9) ], 4);
      (4, [ (2, 3) ], 5);
    ]

let test_non_binary_rejected () =
  Alcotest.check_raises "binary only"
    (Invalid_argument "Counter_race: binary inputs only") (fun () ->
      ignore (run ~n:2 ~seed:1 [| 0; 2 |]))

let test_message_ids () =
  let result = run ~n:4 ~seed:9 (Consensus.Runner.inputs_alternating ~n:4) in
  Alcotest.(check int) "one id per message" 1
    result.outcome.max_ids_per_message

(* One fixed sweep of seeded crash schedules, judged at both margins. The
   sweep must exhibit at least one agreement violation at margin 2 (the
   decision fires while a rival pair is still racing undetected) while
   margin 3 stays safe across every one of the same runs. *)
let sweep margin =
  let violations = ref 0 in
  for seed = 0 to 99 do
    let n = 3 + (seed mod 3) in
    let crashes = [ (seed mod n, seed mod 7) ] in
    let result =
      run ~margin ~n ~seed ~fack:(2 + (seed mod 4)) ~crashes
        (Consensus.Runner.inputs_alternating ~n)
    in
    if not (Consensus.Checker.safe result.report) then incr violations
  done;
  !violations

let test_margin_two_is_unsafe () =
  let broken = sweep 2 in
  Alcotest.(check bool)
    (Printf.sprintf "margin 2 violated safety in %d/100 runs" broken)
    true (broken > 0)

let test_margin_three_is_safe () =
  Alcotest.(check int) "margin 3 safe across the same sweep" 0 (sweep 3)

let prop_consensus_with_random_crashes =
  QCheck.Test.make
    ~name:"counter-race: consensus under arbitrary crash schedules" ~count:150
    QCheck.(
      quad (int_range 1 8) small_int (int_range 1 6)
        (pair
           (list_of_size (Gen.return 8) bool)
           (list_of_size (Gen.return 3) (int_range 0 30))))
    (fun (n, seed, fack, (bits, crash_times)) ->
      (* Crash any minority-or-more, but keep at least one node up. *)
      let crashes =
        List.filteri
          (fun i _ -> i < n - 1)
          (List.mapi (fun i t -> (i, t)) crash_times)
      in
      let inputs = Array.init n (fun i -> if List.nth bits i then 1 else 0) in
      let result = run ~n ~seed ~fack ~crashes inputs in
      Consensus.Checker.ok result.report)

let () =
  Alcotest.run "counter_race"
    [
      ( "unit",
        [
          Alcotest.test_case "unanimous" `Quick test_unanimous;
          Alcotest.test_case "mixed inputs" `Quick test_mixed_inputs;
          Alcotest.test_case "tiny networks" `Quick test_single_and_pair;
          Alcotest.test_case "no knowledge of n" `Quick test_no_n_needed;
          Alcotest.test_case "survives crashes" `Quick test_survives_crashes;
          Alcotest.test_case "non-binary rejected" `Quick
            test_non_binary_rejected;
          Alcotest.test_case "message ids" `Quick test_message_ids;
          Alcotest.test_case "margin 2 is unsafe" `Quick
            test_margin_two_is_unsafe;
          Alcotest.test_case "margin 3 is safe" `Quick test_margin_three_is_safe;
        ] );
      ( "property",
        [ QCheck_alcotest.to_alcotest prop_consensus_with_random_crashes ] );
    ]
