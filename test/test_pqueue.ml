(* Unit and property tests for the event queue. *)

let test_empty () =
  let q = Amac.Pqueue.create () in
  Alcotest.(check bool) "is_empty" true (Amac.Pqueue.is_empty q);
  Alcotest.(check int) "length" 0 (Amac.Pqueue.length q);
  Alcotest.check_raises "pop raises" Not_found (fun () ->
      ignore (Amac.Pqueue.pop q))

let test_ordering () =
  let q = Amac.Pqueue.create () in
  List.iter
    (fun key -> Amac.Pqueue.add q ~key (string_of_int key))
    [ 5; 1; 9; 3; 7; 2; 8 ];
  let popped = List.init 7 (fun _ -> fst (Amac.Pqueue.pop q)) in
  Alcotest.(check (list int)) "sorted" [ 1; 2; 3; 5; 7; 8; 9 ] popped

let test_fifo_ties () =
  let q = Amac.Pqueue.create () in
  List.iter (fun v -> Amac.Pqueue.add q ~key:4 v) [ "a"; "b"; "c" ];
  Amac.Pqueue.add q ~key:1 "first";
  let values = List.init 4 (fun _ -> snd (Amac.Pqueue.pop q)) in
  Alcotest.(check (list string))
    "insertion order within a key"
    [ "first"; "a"; "b"; "c" ]
    values

let test_peek () =
  let q = Amac.Pqueue.create () in
  Amac.Pqueue.add q ~key:3 "x";
  Amac.Pqueue.add q ~key:1 "y";
  Alcotest.(check (pair int string)) "peek min" (1, "y") (Amac.Pqueue.peek q);
  Alcotest.(check int) "peek does not remove" 2 (Amac.Pqueue.length q)

let test_of_list () =
  let q = Amac.Pqueue.of_list [ (4, "a"); (1, "min"); (4, "b"); (2, "mid") ] in
  Alcotest.(check int) "length" 4 (Amac.Pqueue.length q);
  let popped = List.init 4 (fun _ -> Amac.Pqueue.pop q) in
  (* min-key order, list order breaking the key-4 tie *)
  Alcotest.(check bool) "sorted with FIFO ties" true
    (popped = [ (1, "min"); (2, "mid"); (4, "a"); (4, "b") ]);
  Alcotest.(check bool) "empty list" true
    (Amac.Pqueue.is_empty (Amac.Pqueue.of_list []))

let test_clear () =
  let q = Amac.Pqueue.create () in
  Amac.Pqueue.add q ~key:1 "x";
  Amac.Pqueue.clear q;
  Alcotest.(check bool) "cleared" true (Amac.Pqueue.is_empty q)

let test_interleaved () =
  let q = Amac.Pqueue.create () in
  Amac.Pqueue.add q ~key:10 "a";
  Amac.Pqueue.add q ~key:5 "b";
  Alcotest.(check string) "pop 5" "b" (snd (Amac.Pqueue.pop q));
  Amac.Pqueue.add q ~key:1 "c";
  Amac.Pqueue.add q ~key:20 "d";
  Alcotest.(check string) "pop 1" "c" (snd (Amac.Pqueue.pop q));
  Alcotest.(check string) "pop 10" "a" (snd (Amac.Pqueue.pop q));
  Alcotest.(check string) "pop 20" "d" (snd (Amac.Pqueue.pop q))

let test_to_list () =
  let q = Amac.Pqueue.create () in
  List.iter (fun key -> Amac.Pqueue.add q ~key key) [ 3; 1; 2 ];
  let contents = List.sort compare (Amac.Pqueue.to_list q) in
  Alcotest.(check (list (pair int int)))
    "contents" [ (1, 1); (2, 2); (3, 3) ] contents

(* Property: popping everything yields keys in non-decreasing order, and the
   multiset of keys is preserved. *)
let prop_heap_sort =
  QCheck.Test.make ~name:"pqueue pops sorted, multiset preserved" ~count:300
    QCheck.(list (int_range 0 1000))
    (fun keys ->
      let q = Amac.Pqueue.create () in
      List.iter (fun key -> Amac.Pqueue.add q ~key key) keys;
      let popped = List.init (List.length keys) (fun _ -> fst (Amac.Pqueue.pop q)) in
      popped = List.sort Int.compare keys)

(* Property: with all-equal keys the queue is exactly FIFO. *)
let prop_fifo =
  QCheck.Test.make ~name:"pqueue is FIFO at equal keys" ~count:100
    QCheck.(list small_int)
    (fun values ->
      let q = Amac.Pqueue.create () in
      List.iter (fun v -> Amac.Pqueue.add q ~key:0 v) values;
      let popped = List.init (List.length values) (fun _ -> snd (Amac.Pqueue.pop q)) in
      popped = values)

let () =
  Alcotest.run "pqueue"
    [
      ( "unit",
        [
          Alcotest.test_case "empty queue" `Quick test_empty;
          Alcotest.test_case "ordering" `Quick test_ordering;
          Alcotest.test_case "fifo ties" `Quick test_fifo_ties;
          Alcotest.test_case "peek" `Quick test_peek;
          Alcotest.test_case "of_list" `Quick test_of_list;
          Alcotest.test_case "clear" `Quick test_clear;
          Alcotest.test_case "interleaved" `Quick test_interleaved;
          Alcotest.test_case "to_list" `Quick test_to_list;
        ] );
      ( "property",
        [
          QCheck_alcotest.to_alcotest prop_heap_sort;
          QCheck_alcotest.to_alcotest prop_fifo;
        ] );
    ]
