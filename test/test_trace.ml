(* Trace utilities, including the ASCII timeline renderer. *)

let contains_substring haystack needle =
  let hl = String.length haystack and nl = String.length needle in
  let rec scan i = i + nl <= hl && (String.sub haystack i nl = needle || scan (i + 1)) in
  scan 0

let entries =
  Amac.Trace.
    [
      Broadcast_start { time = 0; node = 0; ids = 1; msg = "m0" };
      Broadcast_start { time = 0; node = 1; ids = 1; msg = "m1" };
      Delivered { time = 1; node = 1; sender = 0; msg = "m0"; cause = -1 };
      Delivered { time = 1; node = 0; sender = 1; msg = "m1"; cause = -1 };
      Acked { time = 1; node = 0 };
      Acked { time = 1; node = 1 };
      Discarded { time = 2; node = 0; msg = "m2" };
      Decided { time = 3; node = 0; value = 1 };
      Crashed { time = 4; node = 1 };
    ]

let test_accessors () =
  Alcotest.(check int) "time_of" 3
    (Amac.Trace.time_of (Decided { time = 3; node = 0; value = 1 }));
  Alcotest.(check int) "node_of" 1
    (Amac.Trace.node_of (Crashed { time = 4; node = 1 }))

let test_decisions () =
  Alcotest.(check (list (triple int int int))) "decisions" [ (0, 1, 3) ]
    (Amac.Trace.decisions entries)

let test_for_node () =
  Alcotest.(check int) "node 1 events" 4
    (List.length (Amac.Trace.for_node entries 1))

let test_pp_entries () =
  let rendered = Format.asprintf "%a" Amac.Trace.pp entries in
  Alcotest.(check bool) "nonempty" true (String.length rendered > 50);
  Alcotest.(check bool) "mentions DECIDED" true
    (contains_substring rendered "DECIDED");
  Alcotest.(check bool) "delivery names its sender" true
    (contains_substring rendered "node 1 received from 0")

let test_timeline () =
  let grid = Amac.Trace.timeline ~n:2 entries in
  let lines = String.split_on_char '\n' grid in
  (* header + 5 distinct times + trailing "" *)
  Alcotest.(check int) "line count" 7 (List.length lines);
  let row_for t =
    List.find
      (fun l ->
        String.length l > 4 && String.trim (String.sub l 0 4) = string_of_int t)
      lines
  in
  (* t=0: both broadcast *)
  Alcotest.(check bool) "t0 shows BB" true (contains_substring (row_for 0) "BB");
  (* t=1: receive outranks ack in the collision *)
  Alcotest.(check bool) "t1 shows rr" true (contains_substring (row_for 1) "rr");
  (* t=2: discard; t=3: decide; t=4: crash *)
  Alcotest.(check bool) "t2 shows ~" true (String.contains (row_for 2) '~');
  Alcotest.(check bool) "t3 shows D" true (String.contains (row_for 3) 'D');
  Alcotest.(check bool) "t4 shows X" true (String.contains (row_for 4) 'X')

(* Same-tick collisions on ONE node's cell: the documented precedence is
   decisions/crashes/recoveries (rank 5) over broadcasts (4) over
   discard/link-drop/stutter (3) over receives (2) over acks (1),
   independent of the order the colliding entries appear in. *)
let cell_at grid t =
  let lines = String.split_on_char '\n' grid in
  let row =
    List.find
      (fun l ->
        String.length l > 4 && String.trim (String.sub l 0 4) = string_of_int t)
      lines
  in
  (* "   t  <cells>": the single node-0 cell sits at offset 6. *)
  row.[6]

let check_collision name expected entries =
  List.iter
    (fun entries ->
      let grid = Amac.Trace.timeline ~n:1 entries in
      Alcotest.(check char) name expected (cell_at grid 7))
    [ entries; List.rev entries ]

let test_timeline_collisions () =
  let open Amac.Trace in
  let deliver = Delivered { time = 7; node = 0; sender = 0; msg = "m"; cause = -1 } in
  let ack = Acked { time = 7; node = 0 } in
  let broadcast = Broadcast_start { time = 7; node = 0; ids = 1; msg = "m" } in
  let decide = Decided { time = 7; node = 0; value = 1 } in
  let crash = Crashed { time = 7; node = 0 } in
  let stutter = Stuttered { time = 7; node = 0; actions = 1 } in
  check_collision "receive beats ack" 'r' [ deliver; ack ];
  check_collision "broadcast beats receive" 'B' [ broadcast; deliver ];
  check_collision "decide beats broadcast" 'D' [ decide; broadcast ];
  check_collision "crash beats broadcast" 'X' [ crash; broadcast ];
  check_collision "stutter beats receive" 's' [ stutter; deliver ];
  check_collision "broadcast beats stutter" 'B' [ broadcast; stutter ];
  check_collision "decide beats everything" 'D'
    [ ack; deliver; stutter; broadcast; decide ]

let test_timeline_from_real_run () =
  let outcome =
    Amac.Engine.run Consensus.Two_phase.algorithm
      ~topology:(Amac.Topology.clique 3)
      ~scheduler:Amac.Scheduler.synchronous ~record_trace:true
      ~inputs:[| 0; 1; 0 |]
  in
  let grid = Amac.Trace.timeline ~n:3 outcome.trace in
  Alcotest.(check bool) "renders" true (String.length grid > 20);
  Alcotest.(check bool) "has decisions" true (String.contains grid 'D')

let () =
  Alcotest.run "trace"
    [
      ( "unit",
        [
          Alcotest.test_case "accessors" `Quick test_accessors;
          Alcotest.test_case "decisions" `Quick test_decisions;
          Alcotest.test_case "for_node" `Quick test_for_node;
          Alcotest.test_case "pp" `Quick test_pp_entries;
          Alcotest.test_case "timeline" `Quick test_timeline;
          Alcotest.test_case "timeline collisions" `Quick
            test_timeline_collisions;
          Alcotest.test_case "timeline from run" `Quick
            test_timeline_from_real_run;
        ] );
    ]
