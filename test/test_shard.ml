(* Sharded multi-group SMR (lib/shard) + the Zipf-keyed open-loop driver
   (Shard_workload), judged by the sharded safety contract.

   Covers: Zipf determinism (same seed = byte-identical key stream) and
   bounds; keyspace routing is a total, deterministic partition that
   covers every group; a clean sharded run batches, commits everything
   and satisfies the checker; batch round-trip (expansion matches the
   per-replica flattened streams, partitioned by group); crash-regime
   safety; negative tests proving the checker flags each sharded
   violation class; and byte-identical results under Par --jobs 1 vs 2. *)

let check_clean label (r : Shard_workload.result) =
  Alcotest.(check (list string))
    (label ^ ": no sharded safety violations")
    []
    (List.map Smr_checker.shard_to_string r.violations)

(* ---------- Zipf ---------- *)

let test_zipf_deterministic () =
  let stream seed =
    let z = Zipf.make ~support:128 ~seed () in
    String.concat "," (List.init 1000 (fun _ -> string_of_int (Zipf.next z)))
  in
  Alcotest.(check string)
    "same seed, same key stream" (stream 42) (stream 42);
  Alcotest.(check bool)
    "different seeds diverge" true
    (stream 42 <> stream 43)

let test_zipf_bounds_and_skew () =
  let z = Zipf.make ~theta:0.99 ~support:64 ~seed:7 () in
  let counts = Array.make 65 0 in
  for _ = 1 to 10_000 do
    let k = Zipf.next z in
    Alcotest.(check bool) "key in [1, support]" true (k >= 1 && k <= 64);
    counts.(k) <- counts.(k) + 1
  done;
  Alcotest.(check bool)
    "zipf skew: the hottest key beats the coldest" true
    (counts.(1) > counts.(64));
  (* theta = 0 degenerates to uniform: the head cannot dominate. *)
  let u = Zipf.make ~theta:0.0 ~support:64 ~seed:7 () in
  let ucounts = Array.make 65 0 in
  for _ = 1 to 10_000 do
    let k = Zipf.next u in
    ucounts.(k) <- ucounts.(k) + 1
  done;
  Alcotest.(check bool)
    "uniform: no 3x head dominance" true
    (ucounts.(1) < 3 * ((10_000 / 64) + 1))

(* ---------- routing ---------- *)

let test_routing_partition () =
  let groups = 4 in
  let hit = Array.make groups 0 in
  for key = 0 to 999 do
    let g = Shard.group_of_key ~groups key in
    Alcotest.(check bool) "group in range" true (g >= 0 && g < groups);
    Alcotest.(check int)
      "routing is deterministic" g
      (Shard.group_of_key ~groups key);
    hit.(g) <- hit.(g) + 1
  done;
  Array.iteri
    (fun g c ->
      Alcotest.(check bool)
        (Printf.sprintf "group %d owns some keys" g)
        true (c > 0))
    hit;
  Alcotest.(check int)
    "partition: every key counted exactly once" 1000
    (Array.fold_left ( + ) 0 hit)

(* ---------- clean sharded runs ---------- *)

let clean_run ?(groups = 2) ?(batch = 3) ?(cmds = 40) ?(seed = 11) () =
  Shard_workload.run
    ~topology:(Amac.Topology.clique 4)
    ~scheduler:Amac.Scheduler.synchronous ~seed ~cmds ~groups ~batch ()

let test_clean_run_commits_all () =
  let cmds = 40 in
  let r = clean_run ~cmds () in
  check_clean "clean sharded run" r;
  Alcotest.(check int) "all commands issued" cmds r.issued;
  Alcotest.(check int) "all commands staged" cmds r.submitted;
  Alcotest.(check int) "all commands committed" cmds r.committed;
  Alcotest.(check int)
    "one latency sample per command" cmds
    (Array.length r.latencies);
  Alcotest.(check bool)
    "batching actually happened" true (r.batches > 0);
  Alcotest.(check bool)
    "every group carried load" true
    (Array.for_all (fun c -> c > 0) r.group_commits);
  Alcotest.(check bool)
    "run quiesced" false r.outcome.Amac.Engine.hit_max_time

let test_batch_round_trip () =
  let r = clean_run ~groups:2 ~batch:4 ~cmds:32 () in
  check_clean "round trip" r;
  let h = r.handle in
  (* Every minted batch expands to 2..4 distinct plain commands. *)
  let ih g = Shard.inner h g in
  let batch_values g =
    List.concat_map
      (fun node ->
        List.filter Shard.is_batch (List.map snd (Smr.log (ih g) node)))
      (Smr.nodes (ih g))
    |> List.sort_uniq compare
  in
  List.iter
    (fun g ->
      List.iter
        (fun b ->
          match Shard.expand h b with
          | None -> Alcotest.fail "batch in log the handle cannot expand"
          | Some cmds ->
              Alcotest.(check bool)
                "batch size in 2..4" true
                (List.length cmds >= 2 && List.length cmds <= 4);
              Alcotest.(check bool)
                "batch members are plain commands" true
                (List.for_all (fun c -> not (Shard.is_batch c)) cmds))
        (batch_values g))
    [ 0; 1 ];
  (* The flattened streams partition the command set by group: a node's
     stream for group g contains exactly the committed commands routed
     to g, and the two groups are disjoint. *)
  let stream g = Shard.applied_cmds h ~node:0 ~group:g in
  let s0 = stream 0 and s1 = stream 1 in
  Alcotest.(check int)
    "node 0 applied every command across its groups" r.committed
    (List.length s0 + List.length s1);
  List.iter
    (fun c ->
      Alcotest.(check bool) "groups are disjoint" false (List.mem c s1))
    s0

let test_single_group_degenerates () =
  (* groups = 1, batch = 1: the wrapper adds routing and nothing else —
     still clean, still commits everything. *)
  let cmds = 25 in
  let r = clean_run ~groups:1 ~batch:1 ~cmds () in
  check_clean "single group" r;
  Alcotest.(check int) "all committed" cmds r.committed;
  Alcotest.(check int) "no batches minted at k=1" 0 r.batches

let test_crash_regime () =
  (* A replica crashes mid-stream; the groups it led re-elect and the
     contract still holds (lost staged commands are allowed — safety,
     not completeness). *)
  let r =
    Shard_workload.run
      ~topology:(Amac.Topology.clique 5)
      ~scheduler:(Amac.Scheduler.bursty ~fack:3 ~fast_len:40 ~slow_len:12)
      ~crashes:[ (1, 30) ] ~seed:23 ~cmds:60 ~groups:4 ~batch:3 ()
  in
  check_clean "crash regime" r;
  Alcotest.(check bool) "most commands survive" true (r.committed > 30)

let test_deterministic_replay () =
  let fingerprint (r : Shard_workload.result) =
    Printf.sprintf "c=%d s=%d b=%d lat=[%s] gc=[%s]" r.committed r.submitted
      r.batches
      (String.concat ","
         (List.map string_of_int (Array.to_list r.latencies)))
      (String.concat ","
         (List.map string_of_int (Array.to_list r.group_commits)))
  in
  Alcotest.(check string)
    "same seed, same sharded result"
    (fingerprint (clean_run ~seed:77 ()))
    (fingerprint (clean_run ~seed:77 ()))

(* ---------- checker negative tests ---------- *)

let mk_view node log applied =
  {
    Smr_checker.v_node = node;
    v_log = log;
    v_commit = List.length log;
    v_applied = applied;
    v_floor = 0;
    v_snap_applied = [];
    v_configs = [];
    v_epoch = 0;
  }

let all_submitted _ _ = true

let batch_a = (1 lsl 42) lor 1

let expand_fixture v = if v = batch_a then Some [ 10; 11; 12 ] else None

let shard_violations = Alcotest.testable Smr_checker.pp_shard_violation ( = )

let test_negative_group_violation () =
  (* Conflicting chosen values inside one group surface as a wrapped
     per-group violation. *)
  let svs =
    [
      {
        Smr_checker.sv_group = 0;
        sv_views = [ mk_view 0 [ (0, 5) ] [ 5 ]; mk_view 1 [ (0, 6) ] [ 6 ] ];
        sv_applied_cmds = [ (0, [ 5 ]); (1, [ 6 ]) ];
      };
    ]
  in
  match
    Smr_checker.check_shard_views ~submitted:all_submitted
      ~expand:(fun _ -> None) svs
  with
  | Smr_checker.Group_violation
      { group = 0; violation = Smr_checker.Log_disagreement _ }
    :: _ ->
      ()
  | vs ->
      Alcotest.fail
        ("expected a wrapped Log_disagreement, got "
        ^ String.concat "; " (List.map Smr_checker.shard_to_string vs))

let test_negative_cross_group_duplicate () =
  (* The same client command chosen by two different groups. *)
  let svs =
    [
      {
        Smr_checker.sv_group = 0;
        sv_views = [ mk_view 0 [ (0, 5) ] [ 5 ] ];
        sv_applied_cmds = [ (0, [ 5 ]) ];
      };
      {
        Smr_checker.sv_group = 1;
        sv_views = [ mk_view 0 [ (0, 5) ] [ 5 ] ];
        sv_applied_cmds = [ (0, [ 5 ]) ];
      };
    ]
  in
  let vs =
    Smr_checker.check_shard_views ~submitted:all_submitted
      ~expand:(fun _ -> None) svs
  in
  Alcotest.(check (list shard_violations))
    "one cross-group duplicate"
    [
      Smr_checker.Cross_group_duplicate
        { cmd = 5; group_a = 0; node_a = 0; group_b = 1; node_b = 0 };
    ]
    vs

let test_negative_same_replica_duplicate_across_batches () =
  (* One replica applies command 7 twice, hidden inside two distinct
     batch values — invisible to the per-group Duplicate_apply clause,
     which compares batch values. *)
  let b1 = (1 lsl 42) lor 21 and b2 = (1 lsl 42) lor 22 in
  let expand v =
    if v = b1 then Some [ 7; 8 ] else if v = b2 then Some [ 9; 7 ] else None
  in
  let svs =
    [
      {
        Smr_checker.sv_group = 0;
        sv_views = [ mk_view 0 [ (0, b1); (1, b2) ] [ b1; b2 ] ];
        sv_applied_cmds = [ (0, [ 7; 8; 9; 7 ]) ];
      };
    ]
  in
  let vs = Smr_checker.check_shard_views ~submitted:all_submitted ~expand svs in
  Alcotest.(check bool)
    "same-replica duplicate flagged" true
    (List.exists
       (function
         | Smr_checker.Cross_group_duplicate
             { cmd = 7; group_a = 0; group_b = 0; _ } ->
             true
         | _ -> false)
       vs)

let test_negative_batch_split () =
  (* The batch's commands applied out of order. *)
  let svs =
    [
      {
        Smr_checker.sv_group = 0;
        sv_views = [ mk_view 0 [ (0, batch_a) ] [ batch_a ] ];
        sv_applied_cmds = [ (0, [ 10; 12; 11 ]) ];
      };
    ]
  in
  (match
     Smr_checker.check_shard_views ~submitted:all_submitted
       ~expand:expand_fixture svs
   with
  | [ Smr_checker.Batch_split { batch; expected; actual; _ } ] ->
      Alcotest.(check int) "the batch value" batch_a batch;
      Alcotest.(check (list int)) "expected order" [ 10; 11; 12 ] expected;
      Alcotest.(check (list int)) "observed order" [ 10; 12; 11 ] actual
  | vs ->
      Alcotest.fail
        ("expected exactly one Batch_split, got "
        ^ String.concat "; " (List.map Smr_checker.shard_to_string vs)));
  (* Partial application: a member landed without its batch head. *)
  let svs_partial =
    [
      {
        Smr_checker.sv_group = 0;
        sv_views = [ mk_view 0 [ (0, batch_a) ] [ batch_a ] ];
        sv_applied_cmds = [ (0, [ 11 ]) ];
      };
    ]
  in
  Alcotest.(check bool)
    "partial batch flagged" true
    (List.exists
       (function Smr_checker.Batch_split _ -> true | _ -> false)
       (Smr_checker.check_shard_views ~submitted:all_submitted
          ~expand:expand_fixture svs_partial));
  (* All-or-nothing: a fully absent batch (snapshot-covered) is fine. *)
  let svs_absent =
    [
      {
        Smr_checker.sv_group = 0;
        sv_views = [ mk_view 0 [ (0, batch_a) ] [ batch_a ] ];
        sv_applied_cmds = [ (0, []) ];
      };
    ]
  in
  Alcotest.(check (list shard_violations))
    "absent batch is all-or-nothing clean" []
    (Smr_checker.check_shard_views ~submitted:all_submitted
       ~expand:expand_fixture svs_absent)

(* ---------- parallel determinism ---------- *)

let test_identical_across_jobs () =
  (* The sharded driver is a pure function of its seed: byte-identical
     results whether the harness runs on 1 or 2 domains. *)
  let fingerprint seed =
    let r = clean_run ~groups:4 ~batch:3 ~cmds:30 ~seed () in
    Printf.sprintf "c=%d b=%d lat=[%s] gc=[%s] v=%d" r.committed r.batches
      (String.concat ","
         (List.map string_of_int (Array.to_list r.latencies)))
      (String.concat ","
         (List.map string_of_int (Array.to_list r.group_commits)))
      (List.length r.violations)
  in
  let seeds = [| 3; 5; 8; 13 |] in
  let with_jobs domains =
    Par.with_pool ~domains (fun pool -> Par.map pool fingerprint seeds)
  in
  let one = with_jobs 1 and two = with_jobs 2 in
  Array.iteri
    (fun i a ->
      Alcotest.(check string)
        (Printf.sprintf "seed %d: jobs 1 = jobs 2" seeds.(i))
        a two.(i))
    one

(* ---------- fuzz smoke ---------- *)

let test_fuzz_smoke () =
  let outcome =
    Shard_fuzz.run { Shard_fuzz.default with iterations = 12; cmds = 20 } ~seed:9
  in
  (match outcome.Shard_fuzz.failure with
  | None -> ()
  | Some f -> Alcotest.failf "sharded fuzz failure: %a" Shard_fuzz.pp_failure f);
  Alcotest.(check int) "all iterations ran" 12 outcome.Shard_fuzz.iterations_run

let () =
  Alcotest.run "shard"
    [
      ( "zipf",
        [
          Alcotest.test_case "deterministic stream" `Quick
            test_zipf_deterministic;
          Alcotest.test_case "bounds and skew" `Quick test_zipf_bounds_and_skew;
        ] );
      ( "routing",
        [
          Alcotest.test_case "partition and cover" `Quick
            test_routing_partition;
        ] );
      ( "runs",
        [
          Alcotest.test_case "clean run commits all" `Quick
            test_clean_run_commits_all;
          Alcotest.test_case "batch round trip" `Quick test_batch_round_trip;
          Alcotest.test_case "single group degenerates" `Quick
            test_single_group_degenerates;
          Alcotest.test_case "crash regime" `Quick test_crash_regime;
          Alcotest.test_case "deterministic replay" `Quick
            test_deterministic_replay;
        ] );
      ( "checker",
        [
          Alcotest.test_case "wrapped group violation" `Quick
            test_negative_group_violation;
          Alcotest.test_case "cross-group duplicate" `Quick
            test_negative_cross_group_duplicate;
          Alcotest.test_case "same-replica duplicate across batches" `Quick
            test_negative_same_replica_duplicate_across_batches;
          Alcotest.test_case "batch split" `Quick test_negative_batch_split;
        ] );
      ( "par",
        [
          Alcotest.test_case "identical across jobs 1 vs 2" `Quick
            test_identical_across_jobs;
        ] );
      ( "fuzz",
        [ Alcotest.test_case "smoke" `Quick test_fuzz_smoke ] );
    ]
