(* The dual-graph (reliable + unreliable links) variant of the model:
   engine semantics, plus algorithm behaviour — the paper's future-work
   direction 1 (Sec 5). *)

module A = Amac.Algorithm

(* Probe: counts deliveries, never decides; broadcast once at init. *)
type probe_state = { mutable heard : int list }

let probe : (probe_state, int) A.t =
  {
    name = "probe";
    init =
      (fun ctx ->
        ( { heard = [] },
          [ A.Broadcast (Amac.Node_id.unique_exn ctx.id) ] ));
    on_receive =
      (fun _ctx st sender ->
        st.heard <- sender :: st.heard;
        []);
    on_ack = (fun ctx _st -> [ A.Decide ctx.input ]);
    msg_ids = (fun _ -> 1);
    hooks = None;
  }

let line4 = Amac.Topology.line 4

(* Unreliable chord between the two line endpoints. *)
let chord = Amac.Topology.of_edges ~n:4 [ (0, 3) ]

let always_deliver =
  Amac.Scheduler.with_unreliable Amac.Scheduler.synchronous
    ~plan:(fun ~now ~sender:_ ~candidates ~ack_at:_ ->
      List.map (fun c -> (c, now + 1)) candidates)

let test_unreliable_delivery_happens () =
  let outcome =
    Amac.Engine.run probe ~topology:line4 ~scheduler:always_deliver
      ~unreliable:chord ~inputs:[| 0; 0; 0; 0 |]
  in
  (* 3 reliable edges x 2 directions + 2 chord deliveries. *)
  Alcotest.(check int) "deliveries" 8 outcome.deliveries;
  Alcotest.(check int) "unreliable count" 2 outcome.unreliable_deliveries

let test_no_plan_no_delivery () =
  let outcome =
    Amac.Engine.run probe ~topology:line4
      ~scheduler:Amac.Scheduler.synchronous ~unreliable:chord
      ~inputs:[| 0; 0; 0; 0 |]
  in
  Alcotest.(check int) "reliable only" 6 outcome.deliveries;
  Alcotest.(check int) "no unreliable" 0 outcome.unreliable_deliveries

let test_no_graph_no_delivery () =
  let outcome =
    Amac.Engine.run probe ~topology:line4 ~scheduler:always_deliver
      ~inputs:[| 0; 0; 0; 0 |]
  in
  Alcotest.(check int) "no unreliable" 0 outcome.unreliable_deliveries

let test_overlap_rejected () =
  let overlapping = Amac.Topology.of_edges ~n:4 [ (0, 1) ] in
  Alcotest.check_raises "edge in both graphs"
    (Invalid_argument "Engine.run: edge (0,1) is both reliable and unreliable")
    (fun () ->
      ignore
        (Amac.Engine.run probe ~topology:line4 ~scheduler:always_deliver
           ~unreliable:overlapping ~inputs:[| 0; 0; 0; 0 |]))

let test_size_mismatch_rejected () =
  let wrong = Amac.Topology.of_edges ~n:5 [ (0, 4) ] in
  Alcotest.check_raises "size mismatch"
    (Invalid_argument "Engine.run: unreliable graph size mismatches topology")
    (fun () ->
      ignore
        (Amac.Engine.run probe ~topology:line4 ~scheduler:always_deliver
           ~unreliable:wrong ~inputs:[| 0; 0; 0; 0 |]))

let test_non_candidate_rejected () =
  let bad =
    Amac.Scheduler.with_unreliable Amac.Scheduler.synchronous
      ~plan:(fun ~now ~sender:_ ~candidates:_ ~ack_at:_ -> [ (2, now + 1) ])
  in
  Alcotest.check_raises "delivery to non-candidate"
    (Invalid_argument "Engine.run: unreliable delivery to a non-candidate")
    (fun () ->
      ignore
        (Amac.Engine.run probe ~topology:line4 ~scheduler:bad
           ~unreliable:chord ~inputs:[| 0; 0; 0; 0 |]))

let test_ack_never_waits_for_unreliable () =
  (* Unreliable deliveries land within the window; acks are unchanged. *)
  let outcome =
    Amac.Engine.run probe ~topology:line4 ~scheduler:always_deliver
      ~unreliable:chord ~inputs:[| 0; 0; 0; 0 |]
  in
  List.iter
    (fun t -> Alcotest.(check int) "ack at t=1 as without chords" 1 t)
    (Amac.Engine.decision_times outcome)

let test_bernoulli_extremes_through_engine () =
  (* p=1 behaves like always_deliver (and is counted as such); p=0 like no
     plan at all. *)
  let with_p p =
    Amac.Engine.run probe ~topology:line4
      ~scheduler:
        (Amac.Scheduler.bernoulli_unreliable (Amac.Rng.create 4) ~p
           Amac.Scheduler.synchronous)
      ~unreliable:chord ~inputs:[| 0; 0; 0; 0 |]
  in
  let certain = with_p 1.0 in
  Alcotest.(check int) "p=1: both chord directions counted" 2
    certain.unreliable_deliveries;
  Alcotest.(check int) "p=1: total includes chords" 8 certain.deliveries;
  let never = with_p 0.0 in
  Alcotest.(check int) "p=0: nothing on the chord" 0
    never.unreliable_deliveries;
  Alcotest.(check int) "p=0: reliable only" 6 never.deliveries

let test_bernoulli_validation () =
  Alcotest.check_raises "p out of range"
    (Invalid_argument "Scheduler.bernoulli_unreliable: p must be in [0, 1]")
    (fun () ->
      ignore
        (Amac.Scheduler.bernoulli_unreliable (Amac.Rng.create 1) ~p:1.5
           Amac.Scheduler.synchronous))

(* Algorithm behaviour on flaky links. *)

let chords_for n rng ~count =
  let topology = Amac.Topology.line n in
  let edges = ref [] in
  let attempts = ref 0 in
  while List.length !edges < count && !attempts < 100 do
    incr attempts;
    let u = Amac.Rng.int rng n and v = Amac.Rng.int rng n in
    let key = (min u v, max u v) in
    if
      u <> v
      && (not (Amac.Topology.has_edge topology u v))
      && not (List.mem key !edges)
    then edges := key :: !edges
  done;
  Amac.Topology.of_edges ~n !edges

let test_flood_gather_stays_correct () =
  (* Extra (unreliable) deliveries are pure information gain for
     flood-gather: correct on every seed, and never slower than without. *)
  List.iter
    (fun seed ->
      let n = 12 in
      let unreliable = chords_for n (Amac.Rng.create (seed * 3)) ~count:4 in
      let base = Amac.Scheduler.random (Amac.Rng.create seed) ~fack:4 in
      let scheduler =
        Amac.Scheduler.bernoulli_unreliable (Amac.Rng.create (seed + 50))
          ~p:0.5 base
      in
      let result =
        Consensus.Runner.run
          (Consensus.Flood_gather.make ())
          ~topology:(Amac.Topology.line n) ~scheduler ~unreliable
          ~inputs:(Consensus.Runner.inputs_alternating ~n)
          ~max_time:500_000
      in
      if not (Consensus.Checker.ok result.report) then
        Alcotest.failf "flood-gather flaky seed %d: %s" seed
          (String.concat "; " result.report.problems))
    [ 1; 2; 3; 4; 5; 6; 7; 8 ]

let test_wpaxos_safety_on_flaky_links () =
  (* The paper leaves the multihop upper bound with unreliable links open
     (Sec 5); what must survive unconditionally is SAFETY. *)
  let live = ref 0 in
  List.iter
    (fun seed ->
      let n = 12 in
      let unreliable = chords_for n (Amac.Rng.create (seed * 7)) ~count:4 in
      let base = Amac.Scheduler.random (Amac.Rng.create seed) ~fack:4 in
      let scheduler =
        Amac.Scheduler.bernoulli_unreliable (Amac.Rng.create (seed + 90))
          ~p:0.3 base
      in
      let result =
        Consensus.Runner.run (Consensus.Wpaxos.make ())
          ~topology:(Amac.Topology.line n) ~scheduler ~unreliable
          ~inputs:(Consensus.Runner.inputs_alternating ~n)
          ~max_time:100_000
      in
      if not (Consensus.Checker.safe result.report) then
        Alcotest.failf "wpaxos flaky seed %d UNSAFE: %s" seed
          (String.concat "; " result.report.problems);
      if Consensus.Checker.ok result.report then incr live)
    (List.init 12 (fun i -> i + 1));
  (* Liveness is not guaranteed by the paper here, but it should not be
     hopeless either. *)
  Alcotest.(check bool)
    (Printf.sprintf "some runs fully terminate (%d/12)" !live)
    true (!live >= 6)

let prop_two_phase_ignores_clique_chords =
  (* In a single hop network there are no extra nodes to hear from; an
     unreliable graph over the same clique must not exist (edges overlap) —
     instead check two-phase with an empty unreliable graph behaves
     identically. *)
  QCheck.Test.make ~name:"empty unreliable graph is a no-op" ~count:50
    QCheck.(pair (int_range 2 8) small_int)
    (fun (n, seed) ->
      let empty = Amac.Topology.of_edges ~n [] in
      let run unreliable =
        Consensus.Runner.run Consensus.Two_phase.algorithm
          ~topology:(Amac.Topology.clique n)
          ~scheduler:
            (Amac.Scheduler.bernoulli_unreliable
               (Amac.Rng.create (seed + 1))
               ~p:0.7
               (Amac.Scheduler.random (Amac.Rng.create seed) ~fack:5))
          ~inputs:(Consensus.Runner.inputs_alternating ~n)
          ?unreliable
      in
      let with_empty = run (Some empty) and without = run None in
      with_empty.outcome.decisions = without.outcome.decisions)

let () =
  Alcotest.run "unreliable"
    [
      ( "engine semantics",
        [
          Alcotest.test_case "deliveries happen" `Quick
            test_unreliable_delivery_happens;
          Alcotest.test_case "no plan, no delivery" `Quick
            test_no_plan_no_delivery;
          Alcotest.test_case "no graph, no delivery" `Quick
            test_no_graph_no_delivery;
          Alcotest.test_case "overlap rejected" `Quick test_overlap_rejected;
          Alcotest.test_case "size mismatch rejected" `Quick
            test_size_mismatch_rejected;
          Alcotest.test_case "non-candidate rejected" `Quick
            test_non_candidate_rejected;
          Alcotest.test_case "acks unchanged" `Quick
            test_ack_never_waits_for_unreliable;
          Alcotest.test_case "bernoulli p=0 / p=1" `Quick
            test_bernoulli_extremes_through_engine;
          Alcotest.test_case "bernoulli validation" `Quick
            test_bernoulli_validation;
        ] );
      ( "algorithms",
        [
          Alcotest.test_case "flood-gather stays correct" `Quick
            test_flood_gather_stays_correct;
          Alcotest.test_case "wpaxos safety" `Quick
            test_wpaxos_safety_on_flaky_links;
          QCheck_alcotest.to_alcotest prop_two_phase_ignores_clique_chords;
        ] );
    ]
