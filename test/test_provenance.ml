(* The causal provenance DAG (PR 8): the recorder's own validation, the
   structural invariants [Provenance.check] promises on real engine runs,
   vertex counts against the engine's outcome counters, and the export
   determinism contract — byte-identical DAG JSON across worker-pool
   parallelism (--jobs 1 vs 2) and under scheduler record/replay. *)

module P = Obs.Provenance

(* ---------- recorder unit tests ---------- *)

let test_record_validation () =
  let t = P.create () in
  let b = P.record t ~kind:(P.Boot { incarnation = 0 }) ~node:0 ~time:0 ~cause:(-1) in
  Alcotest.(check int) "first id" 0 b;
  let bc = P.record t ~kind:P.Broadcast ~node:0 ~time:3 ~cause:b in
  Alcotest.(check int) "second id" 1 bc;
  Alcotest.(check int) "length" 2 (P.length t);
  (* A forward (not-yet-recorded) cause would create a cycle escape hatch. *)
  Alcotest.check_raises "forward cause rejected"
    (Invalid_argument "Provenance.record: cause 2 not in [-1, 2)") (fun () ->
      ignore (P.record t ~kind:P.Ack ~node:0 ~time:4 ~cause:2));
  Alcotest.check_raises "cause below -1 rejected"
    (Invalid_argument "Provenance.record: cause -7 not in [-1, 2)") (fun () ->
      ignore (P.record t ~kind:P.Ack ~node:0 ~time:4 ~cause:(-7)));
  let v = P.get t 1 in
  Alcotest.(check int) "get returns vertex" b v.P.cause

let test_store_grows () =
  let t = P.create () in
  (* Push past the initial capacity (64) and far beyond. *)
  for i = 0 to 999 do
    let cause = if i = 0 then -1 else i - 1 in
    let kind = if i = 0 then P.Boot { incarnation = 0 } else P.Deliver { sender = 0 } in
    let kind = if i > 0 && i mod 2 = 0 then P.Broadcast else kind in
    ignore (P.record t ~kind ~node:0 ~time:i ~cause)
  done;
  Alcotest.(check int) "length after growth" 1000 (P.length t);
  Alcotest.(check int) "last vertex intact" 998 (P.get t 999).P.cause

let test_check_catches_violations () =
  (* Deliver caused by a non-broadcast, broadcast caused by an ack, time
     running backwards — each must surface as a violation. *)
  let t = P.create () in
  let boot = P.record t ~kind:(P.Boot { incarnation = 0 }) ~node:0 ~time:0 ~cause:(-1) in
  let bad_deliver =
    P.record t ~kind:(P.Deliver { sender = 1 }) ~node:0 ~time:2 ~cause:boot
  in
  let bc = P.record t ~kind:P.Broadcast ~node:0 ~time:4 ~cause:bad_deliver in
  let ack = P.record t ~kind:P.Ack ~node:0 ~time:6 ~cause:bc in
  let bad_bc = P.record t ~kind:P.Broadcast ~node:0 ~time:7 ~cause:ack in
  (* The last vertex is doubly wrong: time runs backwards AND a broadcast
     is caused by another broadcast (not an informational event). *)
  ignore (P.record t ~kind:P.Broadcast ~node:0 ~time:3 ~cause:bad_bc);
  let violations = P.check t in
  Alcotest.(check int) "four violations" 4 (List.length violations);
  Alcotest.(check bool) "deliver-cause violation named" true
    (List.exists
       (fun s -> s = Printf.sprintf "vertex %d: delivery/ack not caused by a broadcast" bad_deliver)
       violations)

let test_check_accepts_wellformed () =
  let t = P.create () in
  let boot = P.record t ~kind:(P.Boot { incarnation = 0 }) ~node:0 ~time:0 ~cause:(-1) in
  let bc = P.record t ~kind:P.Broadcast ~node:0 ~time:0 ~cause:boot in
  let d = P.record t ~kind:(P.Deliver { sender = 0 }) ~node:1 ~time:2 ~cause:bc in
  ignore (P.record t ~kind:P.Ack ~node:0 ~time:3 ~cause:bc);
  ignore (P.record t ~kind:(P.Decide { value = 1 }) ~node:1 ~time:2 ~cause:d);
  Alcotest.(check (list string)) "no violations" [] (P.check t)

(* ---------- real-run invariants ---------- *)

let run_wpaxos ?faults ~seed ~n () =
  let prov = P.create () in
  let result =
    Consensus.Runner.run ?faults (Consensus.Wpaxos.make ())
      ~topology:(Amac.Topology.line n)
      ~scheduler:(Amac.Scheduler.random (Amac.Rng.create seed) ~fack:3)
      ~inputs:(Array.init n (fun i -> i mod 2))
      ~provenance:prov
  in
  (prov, result.Consensus.Runner.outcome)

let count_kind p f =
  let c = ref 0 in
  P.iter (fun v -> if f v.P.kind then incr c) p;
  !c

let test_run_invariants () =
  let prov, outcome = run_wpaxos ~seed:11 ~n:5 () in
  Alcotest.(check (list string)) "well-formed" [] (P.check prov);
  Alcotest.(check int) "one Deliver vertex per delivery"
    outcome.Amac.Engine.deliveries
    (count_kind prov (function P.Deliver _ -> true | _ -> false));
  Alcotest.(check int) "one Broadcast vertex per accepted broadcast"
    outcome.Amac.Engine.broadcasts
    (count_kind prov (function P.Broadcast -> true | _ -> false));
  Alcotest.(check int) "one Boot root per init" 5
    (count_kind prov (function P.Boot _ -> true | _ -> false));
  let decided =
    Array.to_list outcome.Amac.Engine.decisions
    |> List.filter Option.is_some |> List.length
  in
  Alcotest.(check int) "one Decide vertex per deciding node" decided
    (count_kind prov (function P.Decide _ -> true | _ -> false))

let test_run_invariants_crash_recovery () =
  let faults =
    [ Fault.Crash { node = 1; at = 5 }; Fault.Recover { node = 1; at = 60 } ]
  in
  let prov, outcome = run_wpaxos ~faults ~seed:4 ~n:4 () in
  Alcotest.(check (list string)) "well-formed under faults" [] (P.check prov);
  let boots = count_kind prov (function P.Boot _ -> true | _ -> false) in
  let incarnations =
    Array.fold_left ( + ) 0 outcome.Amac.Engine.incarnations
  in
  Alcotest.(check int) "one Boot per init + one per recovery"
    (4 + incarnations) boots;
  Alcotest.(check bool) "node 1 recovered (fixture is live)" true
    (incarnations > 0);
  (* The second incarnation's Boot must carry the bumped incarnation. *)
  Alcotest.(check bool) "recovery Boot records incarnation" true
    (List.exists
       (fun v ->
         match v.P.kind with
         | P.Boot { incarnation } -> v.P.node = 1 && incarnation = 1
         | _ -> false)
       (P.to_list prov))

(* ---------- export determinism ---------- *)

let dag_bytes seed =
  let prov, _ = run_wpaxos ~seed ~n:5 () in
  Obs.Json.to_string (P.to_json prov)

let test_export_identical_across_jobs () =
  (* The profile export must not depend on how many worker domains the
     harness uses: the same seeds map to the same bytes under --jobs 1
     and --jobs 2. *)
  let seeds = [| 1; 2; 3; 4 |] in
  let with_jobs domains =
    Par.with_pool ~domains (fun pool -> Par.map pool dag_bytes seeds)
  in
  let one = with_jobs 1 and two = with_jobs 2 in
  Array.iteri
    (fun i a ->
      Alcotest.(check bool)
        (Printf.sprintf "seed %d: jobs 1 = jobs 2" seeds.(i))
        true (String.equal a two.(i)))
    one

let test_export_identical_under_replay () =
  (* Record the scheduler's decisions, replay them, and demand the same
     DAG bytes: provenance is a pure function of the event schedule. *)
  let run scheduler =
    let prov = P.create () in
    ignore
      (Consensus.Runner.run (Consensus.Wpaxos.make ())
         ~topology:(Amac.Topology.line 5)
         ~scheduler
         ~inputs:[| 1; 0; 1; 0; 1 |]
         ~provenance:prov);
    Obs.Json.to_string (P.to_json prov)
  in
  let recording, recorded =
    Amac.Scheduler.record (Amac.Scheduler.random (Amac.Rng.create 8) ~fack:3)
  in
  let original = run recording in
  let replayed = run (Amac.Scheduler.replay (recorded ())) in
  Alcotest.(check bool) "record = replay bytes" true
    (String.equal original replayed)

let () =
  Alcotest.run "provenance"
    [
      ( "recorder",
        [
          Alcotest.test_case "record validates causes" `Quick
            test_record_validation;
          Alcotest.test_case "store grows" `Quick test_store_grows;
          Alcotest.test_case "check catches violations" `Quick
            test_check_catches_violations;
          Alcotest.test_case "check accepts well-formed" `Quick
            test_check_accepts_wellformed;
        ] );
      ( "engine runs",
        [
          Alcotest.test_case "invariants on a clean run" `Quick
            test_run_invariants;
          Alcotest.test_case "invariants under crash-recovery" `Quick
            test_run_invariants_crash_recovery;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "identical across jobs 1 vs 2" `Quick
            test_export_identical_across_jobs;
          Alcotest.test_case "identical under record/replay" `Quick
            test_export_identical_under_replay;
        ] );
    ]
