(* Scheduler contract tests: every scheduler must plan deliveries within
   (now, ack] and the ack within F_ack; deliveries must cover exactly the
   neighbor set. *)

module S = Amac.Scheduler

let check_contract ~now ~neighbors (sched : S.t) =
  let plan = sched.plan ~now ~sender:0 ~neighbors in
  if plan.ack_at <= now then Alcotest.fail "ack not after broadcast";
  if plan.ack_at > now + sched.fack then Alcotest.fail "ack beyond F_ack";
  let planned = List.map fst plan.receives |> List.sort Int.compare in
  Alcotest.(check (list int)) "covers neighbors" neighbors planned;
  List.iter
    (fun (_, time) ->
      if time <= now || time > plan.ack_at then
        Alcotest.fail "delivery outside (now, ack]")
    plan.receives;
  plan

let neighbors = [ 1; 2; 3 ]

let test_synchronous () =
  let plan = check_contract ~now:10 ~neighbors S.synchronous in
  Alcotest.(check int) "ack next tick" 11 plan.ack_at;
  List.iter
    (fun (_, t) -> Alcotest.(check int) "delivery next tick" 11 t)
    plan.receives

let test_fixed () =
  let plan = check_contract ~now:5 ~neighbors (S.fixed ~delay:7) in
  Alcotest.(check int) "ack at now+7" 12 plan.ack_at

let test_max_delay () =
  let plan = check_contract ~now:0 ~neighbors (S.max_delay ~fack:9) in
  Alcotest.(check int) "ack at fack" 9 plan.ack_at;
  List.iter
    (fun (_, t) -> Alcotest.(check int) "delivery at fack" 9 t)
    plan.receives

let test_random_contract () =
  let sched = S.random (Amac.Rng.create 5) ~fack:12 in
  for now = 0 to 200 do
    ignore (check_contract ~now ~neighbors sched)
  done

let test_jittered_contract () =
  let sched = S.jittered (Amac.Rng.create 5) ~fack:10 ~spread:3 in
  for now = 0 to 200 do
    ignore (check_contract ~now ~neighbors sched)
  done

let test_jittered_validation () =
  Alcotest.check_raises "spread >= fack"
    (Invalid_argument "Scheduler.jittered: need 0 <= spread < fack")
    (fun () -> ignore (S.jittered (Amac.Rng.create 1) ~fack:3 ~spread:3))

let test_per_edge () =
  let sched =
    S.per_edge ~name:"asym" ~fack:10 ~delay:(fun ~sender:_ ~receiver ->
        if receiver = 2 then 10 else 1)
  in
  let plan = check_contract ~now:0 ~neighbors sched in
  Alcotest.(check int) "slow edge" 10 (List.assoc 2 plan.receives);
  Alcotest.(check int) "fast edge" 1 (List.assoc 1 plan.receives);
  Alcotest.(check int) "ack with slowest" 10 plan.ack_at

let test_per_edge_clamps () =
  let sched =
    S.per_edge ~name:"wild" ~fack:5 ~delay:(fun ~sender:_ ~receiver ->
        if receiver = 1 then 100 else -3)
  in
  let plan = check_contract ~now:0 ~neighbors sched in
  Alcotest.(check int) "clamped high" 5 (List.assoc 1 plan.receives);
  Alcotest.(check int) "clamped low" 1 (List.assoc 2 plan.receives)

let test_delayed_cut () =
  let cut ~sender ~receiver = sender = 0 && receiver = 2 in
  let sched = S.delayed_cut ~base_fack:1 ~until:50 ~cut in
  let plan = check_contract ~now:3 ~neighbors sched in
  Alcotest.(check int) "cut edge waits" 50 (List.assoc 2 plan.receives);
  Alcotest.(check int) "other edges next tick" 4 (List.assoc 1 plan.receives);
  Alcotest.(check int) "ack with slowest" 50 plan.ack_at;
  (* After the silence window, everything is synchronous again. *)
  let plan = check_contract ~now:60 ~neighbors sched in
  Alcotest.(check int) "post-window" 61 (List.assoc 2 plan.receives)

let test_delayed_cut_fack_covers_until () =
  let sched =
    S.delayed_cut ~base_fack:1 ~until:99 ~cut:(fun ~sender:_ ~receiver:_ ->
        true)
  in
  Alcotest.(check bool) "fack >= until" true (sched.fack >= 99)

let test_slow_node () =
  let sched = S.slow_node ~fack:8 ~node:0 in
  let plan = check_contract ~now:0 ~neighbors sched in
  Alcotest.(check int) "slow sender acks at fack" 8 plan.ack_at;
  let fast = sched.plan ~now:0 ~sender:1 ~neighbors:[ 0; 2 ] in
  Alcotest.(check int) "others ack next tick" 1 fast.ack_at

let test_bursty () =
  let sched = S.bursty ~fack:10 ~fast_len:5 ~slow_len:5 in
  let fast = check_contract ~now:2 ~neighbors sched in
  Alcotest.(check int) "fast epoch" 3 fast.ack_at;
  let slow = check_contract ~now:7 ~neighbors sched in
  Alcotest.(check int) "slow epoch" 17 slow.ack_at;
  let wrapped = check_contract ~now:11 ~neighbors sched in
  Alcotest.(check int) "period wraps" 12 wrapped.ack_at;
  Alcotest.check_raises "epoch validation"
    (Invalid_argument "Scheduler.bursty: epochs must be >= 1 tick") (fun () ->
      ignore (S.bursty ~fack:4 ~fast_len:0 ~slow_len:3))

let test_make_validation () =
  Alcotest.check_raises "fack >= 1"
    (Invalid_argument "Scheduler.make: fack must be >= 1") (fun () ->
      ignore
        (S.make ~name:"bad" ~fack:0 (fun ~now ~sender:_ ~neighbors:_ ->
             { S.receives = []; ack_at = now + 1 })))

let test_record_captures_relative_delays () =
  let recording, recorded = S.record (S.fixed ~delay:3) in
  ignore (recording.plan ~now:10 ~sender:0 ~neighbors);
  ignore (recording.plan ~now:25 ~sender:1 ~neighbors:[ 0 ]);
  match recorded () with
  | [ first; second ] ->
      Alcotest.(check int) "ack delay relative" 3 first.S.ack_delay;
      Alcotest.(check (list (pair int int)))
        "delivery delays relative"
        [ (1, 3); (2, 3); (3, 3) ]
        first.S.delays;
      Alcotest.(check (list (pair int int))) "broadcast order" [ (0, 3) ]
        second.S.delays
  | other ->
      Alcotest.failf "expected 2 decisions, got %d" (List.length other)

let test_record_replay_roundtrip () =
  (* A recorded random run, replayed, is the same scheduler as data. *)
  let recording, recorded = S.record (S.random (Amac.Rng.create 11) ~fack:9) in
  let plans =
    List.map (fun now -> recording.plan ~now ~sender:0 ~neighbors) [ 0; 4; 20 ]
  in
  let replayed = S.replay (recorded ()) in
  List.iteri
    (fun i now ->
      let original = List.nth plans i in
      let again = replayed.plan ~now ~sender:0 ~neighbors in
      Alcotest.(check int) "same ack" original.S.ack_at again.S.ack_at;
      Alcotest.(check (list (pair int int)))
        "same deliveries"
        (List.sort compare original.S.receives)
        (List.sort compare again.S.receives))
    [ 0; 4; 20 ]

let test_replay_total () =
  (* Replay never breaks the contract: delays are clamped into (now, ack],
     neighbors missing from the decision receive at the ack, and an
     exhausted list falls back to uniform delivery. *)
  let replayed =
    S.replay [ { S.ack_delay = 2; delays = [ (1, 5); (2, 0) ] } ]
  in
  let plan = check_contract ~now:10 ~neighbors replayed in
  Alcotest.(check int) "ack at recorded delay" 12 plan.ack_at;
  Alcotest.(check int) "overlong delay clamped to ack" 12
    (List.assoc 1 plan.receives);
  Alcotest.(check int) "zero delay clamped to 1 tick" 11
    (List.assoc 2 plan.receives);
  Alcotest.(check int) "missing neighbor delivered at ack" 12
    (List.assoc 3 plan.receives);
  let exhausted = check_contract ~now:30 ~neighbors replayed in
  Alcotest.(check int) "fallback after exhaustion" 31 exhausted.ack_at;
  Alcotest.check_raises "fallback validation"
    (Invalid_argument "Scheduler.replay: fallback_delay must be >= 1")
    (fun () -> ignore (S.replay ~fallback_delay:0 []))

let unreliable_plan_exn sched = Option.get sched.S.unreliable_plan

let test_bernoulli_window () =
  (* Every planned unreliable delivery lands in (now, ack_at], on a distinct
     candidate. *)
  let sched =
    S.bernoulli_unreliable (Amac.Rng.create 3) ~p:0.5 (S.max_delay ~fack:7)
  in
  let plan = unreliable_plan_exn sched in
  for now = 0 to 200 do
    let ack_at = now + 7 in
    let deliveries = plan ~now ~sender:0 ~candidates:[ 4; 5; 6 ] ~ack_at in
    List.iter
      (fun (v, t) ->
        if t <= now || t > ack_at then
          Alcotest.failf "delivery at %d outside (%d, %d]" t now ack_at;
        if not (List.mem v [ 4; 5; 6 ]) then
          Alcotest.failf "non-candidate %d" v)
      deliveries;
    let targets = List.map fst deliveries in
    Alcotest.(check (list int)) "each candidate at most once"
      (List.sort_uniq Int.compare targets)
      (List.sort Int.compare targets)
  done

let test_bernoulli_edge_probabilities () =
  let never =
    S.bernoulli_unreliable (Amac.Rng.create 1) ~p:0.0 S.synchronous
  in
  let always =
    S.bernoulli_unreliable (Amac.Rng.create 1) ~p:1.0 S.synchronous
  in
  for now = 0 to 50 do
    Alcotest.(check (list (pair int int)))
      "p=0 delivers nothing" []
      ((unreliable_plan_exn never) ~now ~sender:0 ~candidates:[ 1; 2 ]
         ~ack_at:(now + 1));
    Alcotest.(check (list int))
      "p=1 delivers to every candidate" [ 1; 2 ]
      (List.map fst
         ((unreliable_plan_exn always) ~now ~sender:0 ~candidates:[ 1; 2 ]
            ~ack_at:(now + 1))
       |> List.sort Int.compare)
  done;
  Alcotest.check_raises "p validation"
    (Invalid_argument "Scheduler.bernoulli_unreliable: p must be in [0, 1]")
    (fun () ->
      ignore (S.bernoulli_unreliable (Amac.Rng.create 1) ~p:1.5 S.synchronous))

let prop_random_plan_valid =
  QCheck.Test.make ~name:"random scheduler always honours the contract"
    ~count:300
    QCheck.(triple small_int (int_range 1 20) (int_range 0 1000))
    (fun (seed, fack, now) ->
      let sched = S.random (Amac.Rng.create seed) ~fack in
      let plan = sched.plan ~now ~sender:0 ~neighbors in
      plan.ack_at > now
      && plan.ack_at <= now + fack
      && List.for_all
           (fun (_, t) -> t > now && t <= plan.ack_at)
           plan.receives)

let () =
  Alcotest.run "scheduler"
    [
      ( "contract",
        [
          Alcotest.test_case "synchronous" `Quick test_synchronous;
          Alcotest.test_case "fixed" `Quick test_fixed;
          Alcotest.test_case "max_delay" `Quick test_max_delay;
          Alcotest.test_case "random" `Quick test_random_contract;
          Alcotest.test_case "jittered" `Quick test_jittered_contract;
          Alcotest.test_case "jittered validation" `Quick
            test_jittered_validation;
          Alcotest.test_case "per_edge" `Quick test_per_edge;
          Alcotest.test_case "per_edge clamps" `Quick test_per_edge_clamps;
          Alcotest.test_case "delayed_cut" `Quick test_delayed_cut;
          Alcotest.test_case "delayed_cut fack" `Quick
            test_delayed_cut_fack_covers_until;
          Alcotest.test_case "slow_node" `Quick test_slow_node;
          Alcotest.test_case "bursty" `Quick test_bursty;
          Alcotest.test_case "make validation" `Quick test_make_validation;
        ] );
      ( "record/replay",
        [
          Alcotest.test_case "record captures relative delays" `Quick
            test_record_captures_relative_delays;
          Alcotest.test_case "record/replay roundtrip" `Quick
            test_record_replay_roundtrip;
          Alcotest.test_case "replay is total" `Quick test_replay_total;
        ] );
      ( "unreliable",
        [
          Alcotest.test_case "bernoulli window" `Quick test_bernoulli_window;
          Alcotest.test_case "bernoulli p=0 / p=1" `Quick
            test_bernoulli_edge_probabilities;
        ] );
      ("property", [ QCheck_alcotest.to_alcotest prop_random_plan_valid ]);
    ]
