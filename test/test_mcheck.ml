(* Schedule-space exploration subsystem: the fuzzer must find (and shrink) a
   seeded violation in the deliberately broken two-phase variant, stay quiet
   on the correct algorithms, and the bounded explorer must exhaust the
   3-clique for two-phase. *)

module Fuzz = Mcheck.Fuzz
module Explore = Mcheck.Explore

(* Two-phase assumes a single hop network, so it is fuzzed on cliques. *)
let clique_only = { Fuzz.default with kinds = [ Fuzz.Clique ] }

let has_agreement =
  List.exists (function
    | Consensus.Checker.Agreement_violation _ -> true
    | _ -> false)

let test_fuzzer_catches_literal () =
  let outcome = Fuzz.run clique_only Consensus.Two_phase.literal ~seed:1 in
  match outcome.Fuzz.counterexample with
  | None -> Alcotest.fail "fuzzer missed the erratum in Two_phase.literal"
  | Some cx ->
      Alcotest.(check bool) "agreement violation" true
        (has_agreement cx.violations);
      Alcotest.(check bool) "shrunk to <= 4 nodes" true (cx.case.Fuzz.n <= 4);
      Alcotest.(check bool) "shrunk no larger than original" true
        (cx.case.Fuzz.n <= cx.original.Fuzz.n);
      Alcotest.(check bool) "timeline rendered" true (cx.timeline <> "")

let test_counterexample_replays_from_case () =
  (* The shrunk case is self-contained data: replaying it through
     Scheduler.replay reproduces the violation. *)
  let outcome = Fuzz.run clique_only Consensus.Two_phase.literal ~seed:1 in
  let cx = Option.get outcome.Fuzz.counterexample in
  let replayed = Fuzz.run_case clique_only Consensus.Two_phase.literal cx.case in
  Alcotest.(check bool) "replay still fails" true
    (has_agreement (Fuzz.violations_of clique_only replayed))

let test_counterexample_replays_from_seed () =
  (* The reported (seed, iteration) pair alone regenerates the original
     failing run. *)
  let outcome = Fuzz.run clique_only Consensus.Two_phase.literal ~seed:1 in
  let cx = Option.get outcome.Fuzz.counterexample in
  let case, result =
    Fuzz.generate clique_only Consensus.Two_phase.literal ~seed:1
      ~iteration:cx.iteration
  in
  Alcotest.(check bool) "same case regenerated" true (case = cx.original);
  Alcotest.(check bool) "still failing" true
    (has_agreement (Fuzz.violations_of clique_only result))

let test_generate_deterministic () =
  let once () =
    fst (Fuzz.generate Fuzz.default Consensus.Two_phase.algorithm ~seed:42 ~iteration:7)
  in
  Alcotest.(check bool) "same seed, same case" true (once () = once ())

let test_fuzzer_clean_on_corrected () =
  (* Same budget that catches the erratum within a handful of iterations
     finds nothing against the corrected rule. *)
  let outcome = Fuzz.run clique_only Consensus.Two_phase.algorithm ~seed:1 in
  Alcotest.(check bool) "no counterexample" true
    (outcome.Fuzz.counterexample = None);
  Alcotest.(check int) "all iterations ran" clique_only.Fuzz.iterations
    outcome.Fuzz.iterations_run

let test_fuzzer_clean_on_multihop_algorithms () =
  let config = { Fuzz.default with iterations = 60 } in
  List.iter
    (fun (name, outcome) ->
      match outcome.Fuzz.counterexample with
      | None -> ()
      | Some cx ->
          Alcotest.failf "%s violated: %s" name
            (Format.asprintf "%a" Fuzz.pp_counterexample cx))
    [
      ("wpaxos", Fuzz.run config (Consensus.Wpaxos.make ()) ~seed:2);
      ("flood-gather", Fuzz.run config (Consensus.Flood_gather.make ()) ~seed:3);
      ("flood-paxos", Fuzz.run config (Consensus.Flood_paxos.make ()) ~seed:4);
      ("ben-or", Fuzz.run config (Consensus.Ben_or.make ~seed:7 ()) ~seed:5);
    ]

let test_explorer_exhausts_two_phase_n3 () =
  (* The acceptance bar: every F_ack-respecting delivery ordering of the
     two-phase algorithm on the 3-clique, crash-free, is safe and decides. *)
  let stats =
    Explore.explore
      { Explore.default with check_termination = true }
      Consensus.Two_phase.algorithm
      ~topology:(Amac.Topology.clique 3) ~inputs:[| 0; 1; 1 |]
  in
  Alcotest.(check bool) "explored something" true (stats.Explore.states > 0);
  Alcotest.(check bool) "not truncated (a real verdict)" false
    stats.Explore.truncated;
  Alcotest.(check int) "no violations" 0
    (List.length stats.Explore.violations);
  Alcotest.(check bool) "dedup did work" true (stats.Explore.dedup_hits > 0);
  Alcotest.(check bool) "sleep sets pruned" true (stats.Explore.sleep_skips > 0)

let test_explorer_catches_literal () =
  (* Exhaustive search finds the erratum without any seed luck, and returns
     a concrete witness schedule. *)
  let stats =
    Explore.explore Explore.default Consensus.Two_phase.literal
      ~topology:(Amac.Topology.clique 3) ~inputs:[| 0; 1; 1 |]
  in
  match stats.Explore.violations with
  | [] -> Alcotest.fail "explorer missed the erratum in Two_phase.literal"
  | (violation, path) :: _ ->
      Alcotest.(check bool) "agreement violation" true
        (has_agreement [ violation ]);
      Alcotest.(check bool) "witness schedule attached" true (path <> [])

let test_explorer_crash_branching () =
  (* A crash budget multiplies the space (every prefix of every broadcast
     can be cut short) but must not break safety. *)
  let crash_free =
    Explore.explore Explore.default Consensus.Two_phase.algorithm
      ~topology:(Amac.Topology.clique 2) ~inputs:[| 0; 1 |]
  in
  let crashy =
    Explore.explore
      { Explore.default with crash_budget = 1 }
      Consensus.Two_phase.algorithm
      ~topology:(Amac.Topology.clique 2) ~inputs:[| 0; 1 |]
  in
  Alcotest.(check int) "crash-free safe" 0
    (List.length crash_free.Explore.violations);
  Alcotest.(check int) "safe under one crash" 0
    (List.length crashy.Explore.violations);
  Alcotest.(check bool) "crashes enlarge the space" true
    (crashy.Explore.states > crash_free.Explore.states)

let test_explorer_rejects_bad_inputs () =
  Alcotest.check_raises "size mismatch"
    (Invalid_argument "Explore.explore: inputs length mismatches topology")
    (fun () ->
      ignore
        (Explore.explore Explore.default Consensus.Two_phase.algorithm
           ~topology:(Amac.Topology.clique 3) ~inputs:[| 0 |]))

let test_explorer_keying_equivalence () =
  (* The fingerprint-keyed seen-set must carve up the state space exactly
     as the Marshal+MD5 one: same states, same transitions, same
     reduction counters — on both the correct and the violating
     algorithm. *)
  let check name algorithm =
    let run keying =
      Explore.explore
        { Explore.default with crash_budget = 1; keying }
        algorithm
        ~topology:(Amac.Topology.clique 2) ~inputs:[| 0; 1 |]
    in
    let fast = run `Fast and marshal = run `Marshal in
    Alcotest.(check int) (name ^ ": same states") marshal.Explore.states
      fast.Explore.states;
    Alcotest.(check int) (name ^ ": same transitions")
      marshal.Explore.transitions fast.Explore.transitions;
    Alcotest.(check int) (name ^ ": same dedup hits")
      marshal.Explore.dedup_hits fast.Explore.dedup_hits;
    Alcotest.(check int) (name ^ ": same sleep skips")
      marshal.Explore.sleep_skips fast.Explore.sleep_skips;
    Alcotest.(check int) (name ^ ": same violation count")
      (List.length marshal.Explore.violations)
      (List.length fast.Explore.violations)
  in
  check "two-phase" Consensus.Two_phase.algorithm;
  check "literal" Consensus.Two_phase.literal

let test_explorer_collision_check () =
  (* Debug mode: every `Fast lookup is double-checked against the Marshal
     digest; with 63-bit fingerprints a disagreement over this space is a
     code bug, not bad luck. *)
  let stats =
    Explore.explore
      { Explore.default with crash_budget = 1; check_collisions = true }
      Consensus.Two_phase.algorithm
      ~topology:(Amac.Topology.clique 2) ~inputs:[| 0; 1 |]
  in
  Alcotest.(check int) "no fingerprint/digest disagreements" 0
    stats.Explore.collisions;
  Alcotest.(check bool) "revisits actually checked" true
    (stats.Explore.dedup_hits > 0)

let () =
  Alcotest.run "mcheck"
    [
      ( "fuzz",
        [
          Alcotest.test_case "catches the two-phase erratum" `Quick
            test_fuzzer_catches_literal;
          Alcotest.test_case "counterexample replays from case" `Quick
            test_counterexample_replays_from_case;
          Alcotest.test_case "counterexample replays from seed" `Quick
            test_counterexample_replays_from_seed;
          Alcotest.test_case "generation is deterministic" `Quick
            test_generate_deterministic;
          Alcotest.test_case "clean on corrected two-phase" `Quick
            test_fuzzer_clean_on_corrected;
          Alcotest.test_case "clean on multihop algorithms" `Quick
            test_fuzzer_clean_on_multihop_algorithms;
        ] );
      ( "explore",
        [
          Alcotest.test_case "exhausts two-phase on the 3-clique" `Slow
            test_explorer_exhausts_two_phase_n3;
          Alcotest.test_case "catches the two-phase erratum" `Quick
            test_explorer_catches_literal;
          Alcotest.test_case "crash branching" `Quick
            test_explorer_crash_branching;
          Alcotest.test_case "input validation" `Quick
            test_explorer_rejects_bad_inputs;
          Alcotest.test_case "fast and marshal keying agree" `Quick
            test_explorer_keying_equivalence;
          Alcotest.test_case "collision check finds none" `Quick
            test_explorer_collision_check;
        ] );
    ]
