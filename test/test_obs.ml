(* lib/obs: JSON, metrics registry, span exports — and the determinism
   contract (same seed => byte-identical snapshot and trace export) that
   the whole observability layer promises. *)

let json =
  Alcotest.testable
    (fun ppf t -> Format.pp_print_string ppf (Obs.Json.to_string t))
    Obs.Json.equal

(* ------------------------------------------------------------------ *)
(* Json                                                                *)
(* ------------------------------------------------------------------ *)

let test_json_render () =
  let open Obs.Json in
  Alcotest.(check string) "compact, ordered"
    {|{"a":1,"b":[true,null,"x"],"c":2.5}|}
    (to_string
       (Obj
          [
            ("a", Int 1);
            ("b", List [ Bool true; Null; String "x" ]);
            ("c", Float 2.5);
          ]));
  Alcotest.(check string) "escapes" {|"a\"b\\c\nd"|}
    (to_string (String "a\"b\\c\nd"));
  Alcotest.(check string) "non-finite floats render null" {|[null,null,null]|}
    (to_string (List [ Float nan; Float infinity; Float neg_infinity ]));
  Alcotest.(check string) "float precision" {|0.1|} (to_string (Float 0.1))

let test_json_parse () =
  let open Obs.Json in
  Alcotest.check json "ints stay ints" (Int 42) (of_string " 42 ");
  Alcotest.check json "floats parse" (Float 2.5) (of_string "2.5");
  Alcotest.check json "exponent is float" (Float 100.0) (of_string "1e2");
  Alcotest.check json "unicode escape" (String "A\xc3\xa9") (of_string {|"Aé"|});
  Alcotest.check json "nested"
    (Obj [ ("xs", List [ Int 1; Obj [ ("y", Bool false) ] ]) ])
    (of_string {|{"xs":[1,{"y":false}]}|});
  Alcotest.(check bool) "garbage rejected" true
    (match of_string "{broken" with
    | exception Failure _ -> true
    | _ -> false);
  Alcotest.(check bool) "trailing junk rejected" true
    (match of_string "1 2" with
    | exception Failure _ -> true
    | _ -> false)

let test_json_roundtrip () =
  let open Obs.Json in
  let value =
    Obj
      [
        ("n", Int (-3));
        ("f", Float 1234.5678);
        ("s", String "tabs\tand \"quotes\"");
        ("l", List [ Null; Bool true; List []; Obj [] ]);
      ]
  in
  Alcotest.check json "parse (render v) = v" value (of_string (to_string value));
  (* equal treats Int n and Float (float n) as the same number: a parser
     may legally read a rendered 3.0 back as 3 *)
  Alcotest.(check bool) "3 = 3.0" true (equal (Int 3) (Float 3.0));
  Alcotest.(check bool) "3 <> 3.5" false (equal (Int 3) (Float 3.5))

(* ------------------------------------------------------------------ *)
(* Metrics registry                                                    *)
(* ------------------------------------------------------------------ *)

let test_registry_idempotent () =
  let reg = Obs.Metrics.create () in
  let c1 = Obs.Metrics.counter reg "hits" ~labels:[ ("node", "0") ] in
  (* same name, label order irrelevant after sorting; same instrument *)
  let c2 = Obs.Metrics.counter reg "hits" ~labels:[ ("node", "0") ] in
  Obs.Metrics.inc c1;
  Obs.Metrics.add c2 2;
  Alcotest.(check int) "shared instrument" 3 (Obs.Metrics.counter_value c1);
  Alcotest.(check bool) "kind clash rejected" true
    (match Obs.Metrics.gauge reg "hits" ~labels:[ ("node", "0") ] with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_snapshot_ordering () =
  let reg = Obs.Metrics.create () in
  (* registration order deliberately scrambled *)
  Obs.Metrics.inc (Obs.Metrics.counter reg "zeta");
  Obs.Metrics.set (Obs.Metrics.gauge reg "alpha" ~labels:[ ("b", "2") ]) 1.0;
  Obs.Metrics.set (Obs.Metrics.gauge reg "alpha" ~labels:[ ("b", "10") ]) 2.0;
  Obs.Metrics.inc (Obs.Metrics.counter reg "mid");
  let names =
    List.map
      (fun s ->
        s.Obs.Metrics.name
        ^ String.concat ""
            (List.map (fun (k, v) -> "|" ^ k ^ "=" ^ v) s.Obs.Metrics.labels))
      (Obs.Metrics.snapshot reg)
  in
  Alcotest.(check (list string)) "sorted by (name, labels)"
    [ "alpha|b=10"; "alpha|b=2"; "mid"; "zeta" ]
    names

let test_diff () =
  let reg = Obs.Metrics.create () in
  let c = Obs.Metrics.counter reg "events" in
  let g = Obs.Metrics.gauge reg "depth" in
  Obs.Metrics.add c 10;
  Obs.Metrics.set g 3.0;
  let before = Obs.Metrics.snapshot reg in
  Obs.Metrics.add c 5;
  Obs.Metrics.set g 7.0;
  let after = Obs.Metrics.snapshot reg in
  let d = Obs.Metrics.diff ~before ~after in
  Alcotest.(check int) "counters subtract" 5 (Obs.Metrics.counter_of d "events");
  (match Obs.Metrics.find d "depth" with
  | Some { value = Obs.Metrics.Gauge v; _ } ->
      Alcotest.(check (float 0.0)) "gauges keep after" 7.0 v
  | _ -> Alcotest.fail "gauge missing from diff");
  Alcotest.(check int) "absent counter reads 0"
    0
    (Obs.Metrics.counter_of d "no_such_counter")

let test_histogram_sample () =
  let reg = Obs.Metrics.create () in
  let h = Obs.Metrics.histogram reg "lat" ~buckets:[ 1.0; 10.0 ] in
  List.iter (Obs.Metrics.observe h) [ 0.5; 2.0; 3.0 ];
  match Obs.Metrics.find (Obs.Metrics.snapshot reg) "lat" with
  | Some { value = Obs.Metrics.Histogram_summary s; _ } ->
      Alcotest.(check int) "count" 3 s.Obs.Metrics.count;
      Alcotest.(check (float 1e-9)) "sum" 5.5 s.Obs.Metrics.sum;
      Alcotest.(check bool) "p50 present" true (s.Obs.Metrics.p50 <> None);
      Alcotest.(check (list (pair (float 0.0) int)))
        "buckets"
        [ (1.0, 1); (10.0, 2); (infinity, 0) ]
        s.Obs.Metrics.buckets
  | _ -> Alcotest.fail "histogram sample missing"

let test_metrics_json_roundtrip () =
  let reg = Obs.Metrics.create () in
  Obs.Metrics.add (Obs.Metrics.counter reg "c" ~labels:[ ("k", "v") ]) 2;
  Obs.Metrics.set (Obs.Metrics.gauge reg "g") 1.5;
  Obs.Metrics.observe (Obs.Metrics.histogram reg "h") 3.0;
  let j = Obs.Metrics.to_json (Obs.Metrics.snapshot reg) in
  Alcotest.check json "to_json parses back" j
    (Obs.Json.of_string (Obs.Json.to_string j))

(* ------------------------------------------------------------------ *)
(* Span exports                                                        *)
(* ------------------------------------------------------------------ *)

let sample_events =
  Obs.Span.
    [
      Complete
        {
          name = "broadcast";
          cat = "mac";
          start_time = 0;
          duration = 5;
          node = 0;
          args = [ ("msg", Obs.Json.String "m0") ];
        };
      Instant
        {
          name = "deliver";
          cat = "mac";
          time = 2;
          node = 1;
          args = [ ("from", Obs.Json.Int 0) ];
        };
      Instant
        { name = "decide"; cat = "consensus"; time = 9; node = 1; args = [] };
    ]

let test_span_jsonl_roundtrip () =
  let exported = Obs.Span.to_jsonl sample_events in
  Alcotest.(check int) "one line per event" 3
    (List.length
       (List.filter
          (fun l -> l <> "")
          (String.split_on_char '\n' exported)));
  Alcotest.(check bool) "same multiset" true
    (Obs.Span.same_multiset sample_events (Obs.Span.of_jsonl exported))

let test_span_chrome_roundtrip () =
  let exported = Obs.Span.to_chrome sample_events in
  let parsed = Obs.Json.of_string exported in
  (match Obs.Json.member "traceEvents" parsed with
  | Some (Obs.Json.List events) ->
      Alcotest.(check int) "all events exported" 3 (List.length events);
      List.iter
        (fun e ->
          (* the trace_event schema fields Perfetto requires *)
          List.iter
            (fun field ->
              Alcotest.(check bool)
                ("has " ^ field)
                true
                (Obs.Json.member field e <> None))
            [ "ph"; "name"; "cat"; "ts"; "pid"; "tid" ])
        events
  | _ -> Alcotest.fail "no traceEvents array");
  Alcotest.(check bool) "same multiset" true
    (Obs.Span.same_multiset sample_events (Obs.Span.of_chrome exported))

let test_span_rejects_foreign () =
  Alcotest.(check bool) "unsupported ph rejected" true
    (match
       Obs.Span.of_chrome
         {|{"traceEvents":[{"ph":"M","name":"meta","cat":"c","ts":0,"pid":1,"tid":0}]}|}
     with
    | exception Failure _ -> true
    | _ -> false)

(* ------------------------------------------------------------------ *)
(* Trace -> spans                                                      *)
(* ------------------------------------------------------------------ *)

let test_trace_export_spans () =
  let entries =
    Amac.Trace.
      [
        Broadcast_start { time = 0; node = 0; ids = 1; msg = "m0" };
        Delivered { time = 2; node = 1; sender = 0; msg = "m0"; cause = -1 };
        Acked { time = 5; node = 0 };
        Broadcast_start { time = 6; node = 1; ids = 1; msg = "m1" };
        Crashed { time = 8; node = 1 };
        Decided { time = 9; node = 0; value = 1 };
      ]
  in
  let events = Obs.Span.(List.sort compare_event (Amac.Trace_export.spans entries)) in
  let completes =
    List.filter_map
      (function Obs.Span.Complete c -> Some c | Obs.Span.Instant _ -> None)
      events
  in
  (match completes with
  | [ acked; crashed ] ->
      Alcotest.(check int) "acked span duration" 5 acked.Obs.Span.duration;
      Alcotest.(check int) "acked span node" 0 acked.Obs.Span.node;
      Alcotest.(check bool) "acked span not marked unacked" true
        (List.assoc_opt "unacked" acked.Obs.Span.args = None);
      (* node 1's broadcast never acked: the crash closes it, flagged *)
      Alcotest.(check int) "crash closes at crash time" 2
        crashed.Obs.Span.duration;
      Alcotest.(check bool) "flagged unacked" true
        (List.assoc_opt "unacked" crashed.Obs.Span.args
        = Some (Obs.Json.Bool true))
  | _ -> Alcotest.fail "expected exactly two complete spans");
  let instant_names =
    List.filter_map
      (function
        | Obs.Span.Instant i -> Some i.Obs.Span.name | Obs.Span.Complete _ -> None)
      events
  in
  Alcotest.(check (list string))
    "instants in order"
    [ "deliver"; "crash"; "decide" ]
    instant_names

(* ------------------------------------------------------------------ *)
(* End-to-end determinism                                              *)
(* ------------------------------------------------------------------ *)

let instrumented_run seed =
  let reg = Obs.Metrics.create () in
  let n = 9 in
  let result =
    Consensus.Runner.run (Consensus.Wpaxos.make ())
      ~topology:(Amac.Topology.grid ~width:3 ~height:3)
      ~scheduler:(Amac.Scheduler.random (Amac.Rng.create seed) ~fack:4)
      ~inputs:(Consensus.Runner.inputs_alternating ~n)
      ~record_trace:true ~obs:reg
  in
  let snapshot = Obs.Metrics.snapshot reg in
  let events = Amac.Trace_export.spans result.outcome.trace in
  (result, snapshot, events)

let test_determinism () =
  let _, snap1, events1 = instrumented_run 11 in
  let _, snap2, events2 = instrumented_run 11 in
  Alcotest.(check string) "byte-identical metrics JSON"
    (Obs.Json.to_string (Obs.Metrics.to_json snap1))
    (Obs.Json.to_string (Obs.Metrics.to_json snap2));
  Alcotest.(check string) "byte-identical JSONL export"
    (Obs.Span.to_jsonl events1) (Obs.Span.to_jsonl events2);
  Alcotest.(check string) "byte-identical Chrome export"
    (Obs.Span.to_chrome events1) (Obs.Span.to_chrome events2);
  (* and a different seed actually changes something *)
  let _, _, events3 = instrumented_run 12 in
  Alcotest.(check bool) "different seed, different trace" false
    (Obs.Span.to_jsonl events1 = Obs.Span.to_jsonl events3)

let test_engine_instrumentation () =
  let result, snapshot, events = instrumented_run 11 in
  let counter = Obs.Metrics.counter_of snapshot in
  let labels =
    [ ("algorithm", "wpaxos"); ("scheduler", "random(4)") ]
  in
  Alcotest.(check int) "deliveries counter matches outcome"
    result.outcome.Amac.Engine.deliveries
    (counter ~labels "engine_deliveries_total");
  Alcotest.(check int) "events counter matches outcome"
    result.outcome.Amac.Engine.events_processed
    (counter ~labels "engine_events_total");
  let per_node =
    List.init 9 (fun i ->
        counter
          ~labels:(("node", string_of_int i) :: labels)
          "engine_broadcasts_total")
  in
  Alcotest.(check int) "per-node broadcasts sum to the outcome total"
    result.outcome.Amac.Engine.broadcasts
    (List.fold_left ( + ) 0 per_node);
  (* every broadcast span in the export corresponds to a real broadcast *)
  let span_count =
    List.length
      (List.filter
         (function Obs.Span.Complete _ -> true | Obs.Span.Instant _ -> false)
         events)
  in
  Alcotest.(check int) "one complete span per broadcast"
    result.outcome.Amac.Engine.broadcasts span_count;
  (* checker verdict gauges, written by the runner *)
  match Obs.Metrics.find snapshot "checker_safe" ~labels:[ ("algorithm", "wpaxos") ] with
  | Some { value = Obs.Metrics.Gauge 1.0; _ } -> ()
  | Some _ -> Alcotest.fail "checker_safe gauge wrong"
  | None -> Alcotest.fail "checker_safe gauge missing"

let () =
  Alcotest.run "obs"
    [
      ( "json",
        [
          Alcotest.test_case "render" `Quick test_json_render;
          Alcotest.test_case "parse" `Quick test_json_parse;
          Alcotest.test_case "round-trip" `Quick test_json_roundtrip;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "idempotent registration" `Quick
            test_registry_idempotent;
          Alcotest.test_case "snapshot ordering" `Quick test_snapshot_ordering;
          Alcotest.test_case "diff" `Quick test_diff;
          Alcotest.test_case "histogram sample" `Quick test_histogram_sample;
          Alcotest.test_case "json round-trip" `Quick
            test_metrics_json_roundtrip;
        ] );
      ( "span",
        [
          Alcotest.test_case "jsonl round-trip" `Quick test_span_jsonl_roundtrip;
          Alcotest.test_case "chrome round-trip" `Quick
            test_span_chrome_roundtrip;
          Alcotest.test_case "foreign ph rejected" `Quick
            test_span_rejects_foreign;
          Alcotest.test_case "trace export spans" `Quick
            test_trace_export_spans;
        ] );
      ( "end-to-end",
        [
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "engine instrumentation" `Quick
            test_engine_instrumentation;
        ] );
    ]
