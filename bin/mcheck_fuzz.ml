(* CI quick-fuzz entry point (see .github/workflows/ci.yml).

   Default mode: fuzzes every consensus algorithm in the repo for
   MCHECK_ITERS iterations (default 200) of random schedules and crash
   patterns, expecting no safety violation; then, as a harness self-test,
   checks that the same fuzzer DOES catch the agreement bug in the erratum
   variant (Two_phase.literal) and that the bounded explorer still verifies
   two-phase on the 3-clique.

   MCHECK_SMR=1 switches to the replicated-log campaign: each iteration
   draws a topology, scheduler, workload shape (open- or closed-loop) and a
   full fault plan, runs the SMR log through lib/workload and judges it
   with Smr_checker — prefix agreement, no holes below commit, exactly-once
   apply, validity. Safety only: under adversarial plans a straggler's
   short log is legitimate. Every stochastic choice derives from
   (seed, iteration), so a failing iteration number IS the reproducer.

   MCHECK_LIFECYCLE=1 is the SMR campaign with the lifecycle surface
   switched on — aggressive compaction watermarks, snapshot transfers and
   mid-run joint-consensus reconfigurations drawn per iteration — plus the
   four canonical production scenarios (rolling restart, scale-up under
   load, crash-during-reconfig, restart-from-snapshot) gated for safety
   AND re-achieved liveness at the fixed seed.

   MCHECK_SHARD=1 switches to the sharded multi-group campaign: each
   iteration draws a topology, scheduler, group count, batch threshold and
   crash pattern, drives the sharded log (lib/shard) open-loop with Zipf
   keys and judges it with the sharded contract — per-group prefix
   agreement, cross-group exactly-once per client command, batch
   atomicity. Safety only, same (seed, iteration) reproducibility story as
   MCHECK_SMR.

   MCHECK_BYZ=1 switches to Byzantine-strategy mode (lib/byz): the
   Byzantine-tolerant protocol (byz_consensus) is gated — fuzzed with
   generated adversary strategies capped at its tolerance f = (n-1)/3 and
   expected to stay checker-clean over honest nodes — and the adversary is
   self-tested: an equivocation-only campaign against two-phase must find
   AND shrink a strategy that splits the honest decision. If MCHECK_ARTIFACT
   names a file, the shrunk counterexample of an unexpected gate violation
   is written there.

   MCHECK_MULTIHOP=1 switches to the multi-hop interference campaign: each
   iteration draws a topo_gen topology (grid / RGG / clustered mesh) and
   seed, an interference strength (alpha, optional cap) for the
   contention-stretching scheduler, a churn or mobility schedule and a full
   fault plan, then gates hardened wPAXOS for unconditional safety.
   Safety only — with contention-stretched acks and adversarial plans
   termination is conditional. Same (seed, iteration) reproducibility
   story as MCHECK_SMR. On failure the drawn parameters and violations are
   written to MCHECK_ARTIFACT if set.

   MCHECK_FAULTS=1 switches to fault-plan mode: fuzzes two-phase and
   hardened wPAXOS under generated fault plans (crash-recovery, lossy
   links, partition-and-heal, stutter) expecting safety to hold
   unconditionally; then, as a self-test, points the same fuzzer with
   termination checking at the unhardened wPAXOS (~retransmit:false) and
   expects it to find AND shrink a liveness failure. If MCHECK_ARTIFACT
   names a file, the shrunk counterexample is written there (CI uploads it
   as a build artifact).

   Flags: --jobs N spreads each fuzz campaign over N domains (the outcome
   is byte-identical to --jobs 1 by Fuzz.run_par's contract, so CI can use
   every core without losing reproducibility); --fingerprint fast/marshal
   selects the explorer's seen-table keying (fast = the per-algorithm
   fingerprint hooks, marshal = the seed Marshal+MD5 path — same verdict,
   kept selectable so either path can be pinned in CI).

   Exit status 0 = all good; 1 = a violation (or a missed one). Any
   uncaught exception also exits non-zero, after printing the replay seed —
   a crash in the harness must never read as a green CI job. *)

let iterations =
  match Sys.getenv_opt "MCHECK_ITERS" with
  | Some s -> (try int_of_string s with _ -> 200)
  | None -> 200

let seed =
  match Sys.getenv_opt "MCHECK_SEED" with
  | Some s -> (try int_of_string s with _ -> 1)
  | None -> 1

let fault_mode = Sys.getenv_opt "MCHECK_FAULTS" = Some "1"
let smr_mode = Sys.getenv_opt "MCHECK_SMR" = Some "1"
let byz_mode = Sys.getenv_opt "MCHECK_BYZ" = Some "1"
let lifecycle_mode = Sys.getenv_opt "MCHECK_LIFECYCLE" = Some "1"
let shard_mode = Sys.getenv_opt "MCHECK_SHARD" = Some "1"
let multihop_mode = Sys.getenv_opt "MCHECK_MULTIHOP" = Some "1"
let artifact = Sys.getenv_opt "MCHECK_ARTIFACT"

let jobs, fingerprint =
  let jobs = ref 1 and fingerprint = ref `Fast in
  let usage () =
    prerr_endline "usage: mcheck_fuzz [--jobs N] [--fingerprint fast|marshal]";
    exit 2
  in
  let rec parse = function
    | [] -> ()
    | "--jobs" :: n :: rest ->
        (match int_of_string_opt n with
        | Some n when n >= 1 -> jobs := n
        | Some _ | None -> usage ());
        parse rest
    | "--fingerprint" :: mode :: rest ->
        (match mode with
        | "fast" -> fingerprint := `Fast
        | "marshal" -> fingerprint := `Marshal
        | _ -> usage ());
        parse rest
    | _ -> usage ()
  in
  parse (List.tl (Array.to_list Sys.argv));
  (!jobs, !fingerprint)

let failures = ref 0
let config = { Mcheck.Fuzz.default with iterations }

(* All campaigns funnel through run_par: at --jobs 1 it IS Fuzz.run, and at
   any higher job count the outcome is byte-identical, so the gates below
   judge the same campaign regardless of parallelism. *)
let run_fuzz config algorithm = Mcheck.Fuzz.run_par ~jobs config algorithm ~seed

(* Two-phase is a single-hop algorithm (Sec 4.1): on multi-hop topologies
   agreement genuinely fails, so fuzz it on cliques only. *)
let clique_only = { config with kinds = [ Mcheck.Fuzz.Clique ] }

(* Replay the shrunk case through an instrumented registry so every failure
   report carries the minimal reproducer's metrics snapshot — what the
   engine actually did (drops, stutters, ack latencies), not just its
   decision log. Deterministic: the replay is schedule-driven. *)
let counterexample_metrics config algorithm cx =
  let reg = Obs.Metrics.create () in
  ignore (Mcheck.Fuzz.run_case ~obs:reg config algorithm cx.Mcheck.Fuzz.case);
  Obs.Metrics.render (Obs.Metrics.snapshot reg)

let fuzz_clean ?(config = config) name algorithm =
  let started = Sys.time () in
  let outcome = run_fuzz config algorithm in
  match outcome.Mcheck.Fuzz.counterexample with
  | None ->
      Printf.printf "fuzz %-14s %d iterations clean (%.1fs)\n%!" name
        outcome.Mcheck.Fuzz.iterations_run
        (Sys.time () -. started)
  | Some cx ->
      incr failures;
      Format.printf "fuzz %-14s VIOLATION (seed %d):@.%a@." name seed
        Mcheck.Fuzz.pp_counterexample cx;
      Printf.printf "--- metrics (shrunk case) ---\n%s--- end metrics ---\n%!"
        (counterexample_metrics config algorithm cx)

let save_artifact config algorithm name cx =
  match artifact with
  | None -> ()
  | Some path ->
      let oc = open_out path in
      let fmt = Format.formatter_of_out_channel oc in
      Format.fprintf fmt "%s (seed %d, iteration %d)@.%a@." name seed
        cx.Mcheck.Fuzz.iteration Mcheck.Fuzz.pp_counterexample cx;
      Format.fprintf fmt "--- metrics (shrunk case) ---@.%s--- end metrics ---@."
        (counterexample_metrics config algorithm cx);
      close_out oc;
      Printf.printf "wrote shrunk counterexample to %s\n%!" path

let default_mode () =
  fuzz_clean ~config:clique_only "two-phase" Consensus.Two_phase.algorithm;
  fuzz_clean "wpaxos" (Consensus.Wpaxos.make ());
  fuzz_clean "flood-gather" (Consensus.Flood_gather.make ());
  fuzz_clean "flood-paxos" (Consensus.Flood_paxos.make ());
  fuzz_clean "ben-or" (Consensus.Ben_or.make ~seed:7 ());

  (* Self-test: the harness must detect a real bug. *)
  (match
     (run_fuzz clique_only Consensus.Two_phase.literal)
       .Mcheck.Fuzz.counterexample
   with
  | Some cx ->
      Printf.printf
        "fuzz two-phase-literal: caught the erratum at iteration %d, shrunk \
         to n=%d (expected)\n%!"
        cx.Mcheck.Fuzz.iteration cx.Mcheck.Fuzz.case.Mcheck.Fuzz.n
  | None ->
      incr failures;
      Printf.printf
        "fuzz two-phase-literal: MISSED the known agreement bug in %d \
         iterations\n%!"
        iterations);

  let stats =
    Mcheck.Explore.explore
      { Mcheck.Explore.default with keying = fingerprint }
      Consensus.Two_phase.algorithm
      ~topology:(Amac.Topology.clique 3) ~inputs:[| 0; 1; 1 |]
  in
  if stats.Mcheck.Explore.violations = [] && not stats.Mcheck.Explore.truncated
  then
    Printf.printf "explore two-phase n=3: %d states, %d transitions, clean\n%!"
      stats.Mcheck.Explore.states stats.Mcheck.Explore.transitions
  else begin
    incr failures;
    Printf.printf "explore two-phase n=3: UNEXPECTED (truncated=%b)\n%!"
      stats.Mcheck.Explore.truncated
  end

let faults_mode () =
  let profile = Mcheck.Fuzz.default_fault_profile in
  let fault_config = { config with faults = Some profile } in
  (* What each algorithm's safety actually survives (DESIGN.md "Fault
     model"): wPAXOS rests on quorum intersection, indifferent to lost or
     partitioned deliveries, so it is gated under the full profile.
     Two-phase's agreement instead leans on the MAC ack-implies-delivered
     contract — exactly what loss and partitions break — and amnesiac
     recovery makes any voter vote twice; so two-phase is gated under
     crash+stutter plans only, and the fuzzer CATCHING its loss/recovery
     violations is a self-test below. All gates are fixed-seed fuzz runs,
     deterministic by construction. Liveness is judged only in the last
     self-test — under faults it is conditional. *)
  let crash_stutter_only =
    {
      fault_config with
      kinds = [ Mcheck.Fuzz.Clique ];
      faults =
        Some
          {
            profile with
            max_recoveries = 0;
            max_loss_windows = 0;
            max_partitions = 0;
          };
    }
  in
  fuzz_clean ~config:crash_stutter_only "two-phase"
    Consensus.Two_phase.algorithm;
  fuzz_clean ~config:fault_config "wpaxos" (Consensus.Wpaxos.make ());
  fuzz_clean ~config:fault_config "wpaxos-rtx-off"
    (Consensus.Wpaxos.make ~retransmit:false ());

  (* Self-test: under the full profile (loss, partitions, amnesiac
     recovery) two-phase genuinely loses agreement; the fault fuzzer must
     find and shrink such a violation. *)
  (match
     (run_fuzz
        { fault_config with kinds = [ Mcheck.Fuzz.Clique ] }
        Consensus.Two_phase.algorithm)
       .Mcheck.Fuzz.counterexample
   with
  | Some cx ->
      Printf.printf
        "fuzz two-phase+faults: caught the fault-induced agreement \
         violation at iteration %d, shrunk to n=%d with %d fault events \
         (expected)\n%!"
        cx.Mcheck.Fuzz.iteration cx.Mcheck.Fuzz.case.Mcheck.Fuzz.n
        (List.length cx.Mcheck.Fuzz.case.Mcheck.Fuzz.faults)
  | None ->
      incr failures;
      Printf.printf
        "fuzz two-phase+faults: MISSED the known fault-induced agreement \
         violation in %d iterations\n%!"
        iterations);

  (* Self-test: with termination checking on, the fuzzer must find a
     schedule in which a lost delivery permanently silences the unhardened
     protocol — and shrink it. *)
  let liveness_config =
    {
      fault_config with
      check_termination = true;
      max_time = 200_000 (* far past any plan horizon: silence is final *);
    }
  in
  (match
     (run_fuzz liveness_config (Consensus.Wpaxos.make ~retransmit:false ()))
       .Mcheck.Fuzz.counterexample
   with
  | Some cx ->
      Printf.printf
        "fuzz wpaxos-unhardened: caught a liveness failure at iteration %d, \
         shrunk to n=%d with %d fault events (expected)\n%!"
        cx.Mcheck.Fuzz.iteration cx.Mcheck.Fuzz.case.Mcheck.Fuzz.n
        (List.length cx.Mcheck.Fuzz.case.Mcheck.Fuzz.faults);
      save_artifact liveness_config
        (Consensus.Wpaxos.make ~retransmit:false ())
        "wpaxos-unhardened liveness counterexample" cx
  | None ->
      incr failures;
      Printf.printf
        "fuzz wpaxos-unhardened: MISSED the expected liveness failure in %d \
         iterations\n%!"
        iterations)

let byz_mode_run () =
  let run_byz config algorithm adapter =
    Byz.Fuzz.run_par ~jobs config algorithm adapter ~seed
  in
  let byz_metrics config algorithm adapter cx =
    let reg = Obs.Metrics.create () in
    ignore
      (Byz.Fuzz.run_case ~obs:reg config algorithm adapter cx.Byz.Fuzz.case);
    Obs.Metrics.render (Obs.Metrics.snapshot reg)
  in
  (* Gate: the Byzantine-tolerant protocol must survive every generated
     strategy inside its advertised tolerance. cap_f keeps the drawn
     adversary at f = (n-1)/3; n >= 4 so the budget is never empty. *)
  let gate_config =
    { Byz.Fuzz.default with iterations; min_n = 4; max_n = 7; cap_f = true }
  in
  let started = Sys.time () in
  (match
     (run_byz gate_config
        (Consensus.Byz_consensus.make ~seed:7 ())
        Byz.Adapters.byz_consensus)
       .Byz.Fuzz.counterexample
   with
  | None ->
      Printf.printf
        "fuzz byz-consensus %d iterations clean at f=(n-1)/3 (%.1fs)\n%!"
        iterations
        (Sys.time () -. started)
  | Some cx ->
      incr failures;
      Format.printf "fuzz byz-consensus VIOLATION (seed %d):@.%a@." seed
        Byz.Fuzz.pp_counterexample cx;
      Printf.printf "--- metrics (shrunk case) ---\n%s--- end metrics ---\n%!"
        (byz_metrics gate_config
           (Consensus.Byz_consensus.make ~seed:7 ())
           Byz.Adapters.byz_consensus cx);
      (match artifact with
      | None -> ()
      | Some path ->
          let oc = open_out path in
          let fmt = Format.formatter_of_out_channel oc in
          Format.fprintf fmt
            "byz-consensus violation (seed %d, iteration %d)@.%a@." seed
            cx.Byz.Fuzz.iteration Byz.Fuzz.pp_counterexample cx;
          close_out oc;
          Printf.printf "wrote shrunk counterexample to %s\n%!" path));

  (* Self-test: the adversary must earn its keep. An equivocation-only
     campaign (no silence, no replay, no forgery — the strategy wins or
     loses on per-recipient payload mutation alone) against two-phase must
     find a strategy that splits the HONEST decision, and shrink it. *)
  let equivocation_only =
    {
      Byz.Model.default_profile with
      Byz.Model.allow_silence = false;
      allow_replay = false;
      allow_forge = false;
      allow_drop_own = false;
    }
  in
  let attack_config =
    {
      Byz.Fuzz.default with
      iterations = max iterations 500;
      profile = equivocation_only;
      agreement_only = true;
    }
  in
  match
    (run_byz attack_config Consensus.Two_phase.algorithm
       Byz.Adapters.two_phase)
      .Byz.Fuzz.counterexample
  with
  | Some cx ->
      let shrunk = cx.Byz.Fuzz.case in
      Format.printf
        "fuzz two-phase+byz: equivocation split caught at iteration %d, \
         shrunk to n=%d with %d tamper(s) (expected):@.%a@."
        cx.Byz.Fuzz.iteration shrunk.Byz.Fuzz.n
        (List.length shrunk.Byz.Fuzz.strategy.Byz.Model.tampers)
        Byz.Fuzz.pp_counterexample cx
  | None ->
      incr failures;
      Printf.printf
        "fuzz two-phase+byz: MISSED the expected equivocation agreement \
         split in %d iterations\n%!"
        attack_config.Byz.Fuzz.iterations

let smr_mode_run ~lifecycle () =
  let config = { Smr_fuzz.default with iterations; lifecycle } in
  let name = if lifecycle then "smr-lifecycle" else "smr-log" in
  let started = Sys.time () in
  (* Progress ticks keep long CI campaigns visibly alive without drowning
     the log: one line per 25 iterations. *)
  let progress i =
    if (i + 1) mod 25 = 0 then
      Printf.printf "fuzz %-14s ... %d/%d (%.1fs)\n%!" name (i + 1) iterations
        (Sys.time () -. started)
  in
  let outcome = Smr_fuzz.run ~progress config ~seed in
  (match outcome.Smr_fuzz.failure with
  | None ->
      Printf.printf "fuzz %-14s %d iterations clean (%.1fs)\n%!" name
        outcome.Smr_fuzz.iterations_run
        (Sys.time () -. started)
  | Some f ->
      incr failures;
      Format.printf "fuzz %-14s SAFETY VIOLATION (seed %d):@.%a@." name seed
        Smr_fuzz.pp_failure f;
      (match artifact with
      | None -> ()
      | Some path ->
          let oc = open_out path in
          let fmt = Format.formatter_of_out_channel oc in
          Format.fprintf fmt "%s safety violation (seed %d)@.%a@." name seed
            Smr_fuzz.pp_failure f;
          close_out oc;
          Printf.printf "wrote failing draw to %s\n%!" path));
  (* In lifecycle mode the canonical scenario suite runs too: each of the
     four production runs (rolling restart, scale-up, crash-during-reconfig,
     restart-from-snapshot) must stay safe AND re-achieve liveness at the
     fixed seed. *)
  if lifecycle then
    List.iter
      (fun scenario ->
        let o = Lifecycle.run ~seed scenario in
        if o.Lifecycle.live then
          Printf.printf "scenario %-17s LIVE  %s\n%!"
            (Lifecycle.name scenario) o.Lifecycle.detail
        else begin
          incr failures;
          Printf.printf "scenario %-17s STUCK %s\n%!"
            (Lifecycle.name scenario) o.Lifecycle.detail;
          List.iter
            (fun v ->
              Printf.printf "  VIOLATION: %s\n%!" (Smr_checker.to_string v))
            o.Lifecycle.result.Workload.violations
        end)
      Lifecycle.all

let shard_mode_run () =
  let config = { Shard_fuzz.default with iterations } in
  let started = Sys.time () in
  let progress i =
    if (i + 1) mod 25 = 0 then
      Printf.printf "fuzz %-14s ... %d/%d (%.1fs)\n%!" "smr-shard" (i + 1)
        iterations
        (Sys.time () -. started)
  in
  let outcome = Shard_fuzz.run ~progress config ~seed in
  match outcome.Shard_fuzz.failure with
  | None ->
      Printf.printf "fuzz %-14s %d iterations clean (%.1fs)\n%!" "smr-shard"
        outcome.Shard_fuzz.iterations_run
        (Sys.time () -. started)
  | Some f ->
      incr failures;
      Format.printf "fuzz %-14s SAFETY VIOLATION (seed %d):@.%a@." "smr-shard"
        seed Shard_fuzz.pp_failure f;
      (match artifact with
      | None -> ()
      | Some path ->
          let oc = open_out path in
          let fmt = Format.formatter_of_out_channel oc in
          Format.fprintf fmt "smr-shard safety violation (seed %d)@.%a@." seed
            Shard_fuzz.pp_failure f;
          close_out oc;
          Printf.printf "wrote failing draw to %s\n%!" path)

let multihop_mode_run () =
  let config = { Multihop_fuzz.default with iterations } in
  let started = Sys.time () in
  let progress i =
    if (i + 1) mod 25 = 0 then
      Printf.printf "fuzz %-14s ... %d/%d (%.1fs)\n%!" "multihop" (i + 1)
        iterations
        (Sys.time () -. started)
  in
  let outcome = Multihop_fuzz.run ~progress config ~seed in
  match outcome.Multihop_fuzz.failure with
  | None ->
      Printf.printf "fuzz %-14s %d iterations clean (%.1fs)\n%!" "multihop"
        outcome.Multihop_fuzz.iterations_run
        (Sys.time () -. started)
  | Some f ->
      incr failures;
      Format.printf "fuzz %-14s SAFETY VIOLATION (seed %d):@.%a@." "multihop"
        seed Multihop_fuzz.pp_failure f;
      (match artifact with
      | None -> ()
      | Some path ->
          let oc = open_out path in
          let fmt = Format.formatter_of_out_channel oc in
          Format.fprintf fmt "multihop safety violation (seed %d)@.%a@." seed
            Multihop_fuzz.pp_failure f;
          close_out oc;
          Printf.printf "wrote failing draw to %s\n%!" path)

let () =
  Printexc.record_backtrace true;
  (try
     if lifecycle_mode then smr_mode_run ~lifecycle:true ()
     else if multihop_mode then multihop_mode_run ()
     else if shard_mode then shard_mode_run ()
     else if smr_mode then smr_mode_run ~lifecycle:false ()
     else if byz_mode then byz_mode_run ()
     else if fault_mode then faults_mode ()
     else default_mode ()
   with exn ->
     incr failures;
     Printf.printf
       "mcheck_fuzz: UNCAUGHT EXCEPTION (replay with MCHECK_SEED=%d \
        MCHECK_ITERS=%d%s): %s\n%s\n%!"
       seed iterations
       (if lifecycle_mode then " MCHECK_LIFECYCLE=1"
        else if multihop_mode then " MCHECK_MULTIHOP=1"
        else if shard_mode then " MCHECK_SHARD=1"
        else if smr_mode then " MCHECK_SMR=1"
        else if byz_mode then " MCHECK_BYZ=1"
        else if fault_mode then " MCHECK_FAULTS=1"
        else "")
       (Printexc.to_string exn)
       (Printexc.get_backtrace ()));
  exit (if !failures = 0 then 0 else 1)
