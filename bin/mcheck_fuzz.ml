(* CI quick-fuzz entry point (see .github/workflows/ci.yml).

   Fuzzes every consensus algorithm in the repo for MCHECK_ITERS iterations
   (default 200) of random schedules and crash patterns, expecting no safety
   violation; then, as a harness self-test, checks that the same fuzzer DOES
   catch the agreement bug in the erratum variant (Two_phase.literal) and
   that the bounded explorer still verifies two-phase on the 3-clique.
   Exit status 0 = all good; 1 = a violation (or a missed one). *)

let iterations =
  match Sys.getenv_opt "MCHECK_ITERS" with
  | Some s -> (try int_of_string s with _ -> 200)
  | None -> 200

let seed =
  match Sys.getenv_opt "MCHECK_SEED" with
  | Some s -> (try int_of_string s with _ -> 1)
  | None -> 1

let failures = ref 0

let config = { Mcheck.Fuzz.default with iterations }

(* Two-phase is a single-hop algorithm (Sec 4.1): on multi-hop topologies
   agreement genuinely fails, so fuzz it on cliques only. *)
let clique_only = { config with kinds = [ Mcheck.Fuzz.Clique ] }

let fuzz_clean ?(config = config) name algorithm =
  let started = Sys.time () in
  let outcome = Mcheck.Fuzz.run config algorithm ~seed in
  (match outcome.Mcheck.Fuzz.counterexample with
  | None ->
      Printf.printf "fuzz %-14s %d iterations clean (%.1fs)\n%!" name
        outcome.Mcheck.Fuzz.iterations_run
        (Sys.time () -. started)
  | Some cx ->
      incr failures;
      Format.printf "fuzz %-14s VIOLATION (seed %d):@.%a@." name seed
        Mcheck.Fuzz.pp_counterexample cx)

let () =
  fuzz_clean ~config:clique_only "two-phase" Consensus.Two_phase.algorithm;
  fuzz_clean "wpaxos" (Consensus.Wpaxos.make ());
  fuzz_clean "flood-gather" (Consensus.Flood_gather.make ());
  fuzz_clean "flood-paxos" (Consensus.Flood_paxos.make ());
  fuzz_clean "ben-or" (Consensus.Ben_or.make ~seed:7 ());

  (* Self-test: the harness must detect a real bug. *)
  (match
     (Mcheck.Fuzz.run clique_only Consensus.Two_phase.literal ~seed)
       .Mcheck.Fuzz.counterexample
   with
  | Some cx ->
      Printf.printf
        "fuzz two-phase-literal: caught the erratum at iteration %d, shrunk \
         to n=%d (expected)\n%!"
        cx.Mcheck.Fuzz.iteration cx.Mcheck.Fuzz.case.Mcheck.Fuzz.n
  | None ->
      incr failures;
      Printf.printf
        "fuzz two-phase-literal: MISSED the known agreement bug in %d \
         iterations\n%!"
        iterations);

  let stats =
    Mcheck.Explore.explore Mcheck.Explore.default Consensus.Two_phase.algorithm
      ~topology:(Amac.Topology.clique 3) ~inputs:[| 0; 1; 1 |]
  in
  if stats.Mcheck.Explore.violations = [] && not stats.Mcheck.Explore.truncated
  then
    Printf.printf "explore two-phase n=3: %d states, %d transitions, clean\n%!"
      stats.Mcheck.Explore.states stats.Mcheck.Explore.transitions
  else begin
    incr failures;
    Printf.printf "explore two-phase n=3: UNEXPECTED (truncated=%b)\n%!"
      stats.Mcheck.Explore.truncated
  end;

  exit (if !failures = 0 then 0 else 1)
