(* amac_sim: run any bundled consensus algorithm on any topology under any
   scheduler, and report the verified outcome.

   Examples:
     dune exec bin/amac_sim.exe -- run --algo wpaxos --topo grid:6x6 \
       --sched random --fack 5 --seed 3 --inputs alternating
     dune exec bin/amac_sim.exe -- run --algo two-phase --topo clique:8 \
       --sched max-delay --fack 10 --trace
     dune exec bin/amac_sim.exe -- --metrics --trace-out /tmp/t.chrome.json
     dune exec bin/amac_sim.exe -- validate-trace /tmp/t.chrome.json
     dune exec bin/amac_sim.exe -- lowerbounds *)

open Cmdliner

let parse_topology spec rng =
  match String.split_on_char ':' spec with
  | [ "clique"; n ] -> Amac.Topology.clique (int_of_string n)
  | [ "line"; n ] -> Amac.Topology.line (int_of_string n)
  | [ "ring"; n ] -> Amac.Topology.ring (int_of_string n)
  | [ "star"; n ] -> Amac.Topology.star (int_of_string n)
  | [ "tree"; n ] -> Amac.Topology.binary_tree (int_of_string n)
  | [ "grid"; dims ] | [ "torus"; dims ] -> (
      match String.split_on_char 'x' dims with
      | [ w; h ] ->
          let width = int_of_string w and height = int_of_string h in
          if String.length spec >= 5 && String.sub spec 0 5 = "torus" then
            Amac.Topology.torus ~width ~height
          else Amac.Topology.grid ~width ~height
      | _ -> failwith "grid/torus spec: grid:WxH")
  | [ "star-of-lines"; dims ] -> (
      match String.split_on_char 'x' dims with
      | [ arms; len ] ->
          Amac.Topology.star_of_lines ~arms:(int_of_string arms)
            ~arm_len:(int_of_string len)
      | _ -> failwith "star-of-lines spec: star-of-lines:ARMSxLEN")
  | [ "random"; n ] ->
      Amac.Topology.random_connected rng ~n:(int_of_string n)
        ~extra_edges:(int_of_string n / 3)
  | _ ->
      failwith
        "unknown topology; try clique:N line:N ring:N star:N tree:N grid:WxH \
         torus:WxH star-of-lines:AxL random:N"

let parse_scheduler spec ~fack rng =
  match spec with
  | "synchronous" | "sync" -> Amac.Scheduler.synchronous
  | "fixed" -> Amac.Scheduler.fixed ~delay:fack
  | "max-delay" -> Amac.Scheduler.max_delay ~fack
  | "random" -> Amac.Scheduler.random rng ~fack
  | "jittered" -> Amac.Scheduler.jittered rng ~fack ~spread:(max 0 ((fack / 2) - 1))
  | "bursty" -> Amac.Scheduler.bursty ~fack ~fast_len:(max 1 fack) ~slow_len:(max 1 fack)
  | _ ->
      failwith
        "unknown scheduler; try synchronous fixed max-delay random jittered \
         bursty"

let parse_inputs spec ~n rng =
  match spec with
  | "alternating" -> Consensus.Runner.inputs_alternating ~n
  | "zeros" -> Consensus.Runner.inputs_all ~n 0
  | "ones" -> Consensus.Runner.inputs_all ~n 1
  | "halves" -> Consensus.Runner.inputs_halves ~n
  | "random" -> Consensus.Runner.inputs_random rng ~n
  | bits when String.length bits = n ->
      Array.init n (fun i ->
          match bits.[i] with
          | '0' -> 0
          | '1' -> 1
          | _ -> failwith "inputs bit-string must be 0s and 1s")
  | _ -> failwith "inputs: alternating|zeros|ones|halves|random|<bitstring>"

(* Existentially package algorithms of different state/message types. *)
type packed = Packed : ('s, 'm) Amac.Algorithm.t * ('m -> string) -> packed

let parse_algorithm = function
  | "two-phase" -> Packed (Consensus.Two_phase.algorithm, Consensus.Two_phase.pp_msg)
  | "two-phase-literal" ->
      Packed (Consensus.Two_phase.literal, Consensus.Two_phase.pp_msg)
  | "wpaxos" -> Packed (Consensus.Wpaxos.make (), Consensus.Wpaxos.pp_msg)
  | "wpaxos-noagg" ->
      Packed (Consensus.Wpaxos.make ~aggregate:false (), Consensus.Wpaxos.pp_msg)
  | "flood-gather" ->
      Packed (Consensus.Flood_gather.make (), Consensus.Flood_gather.pp_msg)
  | "flood-paxos" ->
      Packed (Consensus.Flood_paxos.make (), Consensus.Flood_paxos.pp_msg)
  | "round-flood" ->
      Packed (Consensus.Round_flood.make ~target:`Knows_n, Consensus.Round_flood.pp_msg)
  | "ben-or" ->
      Packed (Consensus.Ben_or.make ~seed:97 (), Consensus.Ben_or.pp_msg)
  | _ ->
      failwith
        "unknown algorithm; try two-phase two-phase-literal wpaxos \
         wpaxos-noagg flood-gather flood-paxos round-flood ben-or"

(* Declarative fault events on the command line, one --fault per event:
   crash:N@T recover:N@T loss:U-V@A-B part:N1,N2,..@A-B stutter:N@A-B
   (windows are half-open [A, B), matching Fault's semantics). *)
let parse_fault spec =
  let fail () =
    failwith
      ("bad fault spec '" ^ spec
     ^ "'; try crash:N@T recover:N@T loss:U-V@A-B part:N1,N2,..@A-B \
        stutter:N@A-B")
  in
  let window s =
    match String.split_on_char '-' s with
    | [ a; b ] -> (int_of_string a, int_of_string b)
    | _ -> fail ()
  in
  match String.index_opt spec ':' with
  | None -> fail ()
  | Some i -> (
      let kind = String.sub spec 0 i in
      let rest = String.sub spec (i + 1) (String.length spec - i - 1) in
      match (kind, String.split_on_char '@' rest) with
      | "crash", [ node; at ] ->
          Fault.Crash { node = int_of_string node; at = int_of_string at }
      | "recover", [ node; at ] ->
          Fault.Recover { node = int_of_string node; at = int_of_string at }
      | "loss", [ edge; w ] -> (
          match String.split_on_char '-' edge with
          | [ u; v ] ->
              let from_, until = window w in
              Fault.Link_drop
                { edge = (int_of_string u, int_of_string v); from_; until }
          | _ -> fail ())
      | "part", [ cut; w ] ->
          let cut = List.map int_of_string (String.split_on_char ',' cut) in
          let from_, until = window w in
          Fault.Partition { cut; from_; until }
      | "stutter", [ node; w ] ->
          let from_, until = window w in
          Fault.Stutter { node = int_of_string node; from_; until }
      | _ -> fail ())

(* The export format is picked by extension: .jsonl gets one event per
   line, anything else the Chrome trace_event envelope. *)
let export_for file events =
  if Filename.check_suffix file ".jsonl" then Obs.Span.to_jsonl events
  else Obs.Span.to_chrome events

let parse_for file data =
  if Filename.check_suffix file ".jsonl" then Obs.Span.of_jsonl data
  else Obs.Span.of_chrome data

let run_cmd algo topo sched fack seed inputs_spec trace trace_out metrics
    max_time =
  let rng = Amac.Rng.create seed in
  let topology = parse_topology topo (Amac.Rng.split rng) in
  let n = Amac.Topology.size topology in
  let scheduler = parse_scheduler sched ~fack (Amac.Rng.split rng) in
  let inputs = parse_inputs inputs_spec ~n (Amac.Rng.split rng) in
  let (Packed (algorithm, pp_msg)) = parse_algorithm algo in
  Printf.printf "algorithm=%s topology=%s (%s) scheduler=%s inputs=%s\n"
    algorithm.Amac.Algorithm.name topo
    (Format.asprintf "%a" Amac.Topology.pp topology)
    scheduler.Amac.Scheduler.name inputs_spec;
  let obs = if metrics then Some (Obs.Metrics.create ()) else None in
  let result =
    Consensus.Runner.run algorithm ~topology ~scheduler ~inputs
      ~record_trace:(trace || trace_out <> None)
      ~pp_msg ~max_time ?obs
  in
  if trace then
    Printf.printf "--- trace ---\n%s--- end trace ---\n"
      (Format.asprintf "%a" Amac.Trace.pp result.outcome.trace);
  Printf.printf "%s\n" (Format.asprintf "%a" Consensus.Checker.pp result.report);
  Printf.printf
    "latency=%s broadcasts=%d deliveries=%d discarded=%d max_ids/msg=%d \
     events=%d\n"
    (match result.decision_time with
    | Some t -> string_of_int t
    | None -> "-")
    result.outcome.broadcasts result.outcome.deliveries
    result.outcome.discarded result.outcome.max_ids_per_message
    result.outcome.events_processed;
  (match trace_out with
  | None -> ()
  | Some file ->
      let events = Amac.Trace_export.spans result.outcome.trace in
      let oc = open_out_bin file in
      output_string oc (export_for file events);
      close_out oc;
      Printf.printf "trace: %d span events written to %s\n"
        (List.length events) file);
  (match obs with
  | None -> ()
  | Some reg ->
      Printf.printf "--- metrics ---\n%s--- end metrics ---\n"
        (Obs.Metrics.render (Obs.Metrics.snapshot reg)));
  if Consensus.Checker.ok result.report then 0 else 1

(* The replicated log: run the SMR algorithm under a generated workload and
   report throughput/latency plus the Smr_checker verdict. Exit status 1 on
   any safety violation. *)
let smr_cmd topo sched fack seed cmds mode window gap clients fault_specs
    metrics trace_out max_time =
  let rng = Amac.Rng.create seed in
  let topology = parse_topology topo (Amac.Rng.split rng) in
  let n = Amac.Topology.size topology in
  let scheduler = parse_scheduler sched ~fack (Amac.Rng.split rng) in
  let faults = List.map parse_fault fault_specs in
  let mode =
    match mode with
    | "open" -> Workload.Open_loop { mean_gap = gap }
    | "closed" -> Workload.Closed_loop { clients_per_node = clients }
    | _ -> failwith "mode: open|closed"
  in
  let obs = if metrics then Some (Obs.Metrics.create ()) else None in
  let result =
    Workload.run ~window ~faults ~max_time
      ~record_trace:(trace_out <> None)
      ?obs ~topology ~scheduler
      ~seed:(Amac.Rng.int rng 1_000_000)
      ~cmds ~mode ()
  in
  Printf.printf
    "smr: topology=%s (n=%d) scheduler=%s window=%d cmds=%d faults=%d\n" topo n
    scheduler.Amac.Scheduler.name window cmds (List.length faults);
  Printf.printf
    "issued=%d submitted=%d committed=%d commit_index=[%d,%d] end_time=%d \
     events=%d broadcasts=%d\n"
    result.Workload.issued result.Workload.submitted result.Workload.committed
    result.Workload.commit_index_min result.Workload.commit_index_max
    result.Workload.outcome.Amac.Engine.end_time
    result.Workload.outcome.Amac.Engine.events_processed
    result.Workload.outcome.Amac.Engine.broadcasts;
  let q label qv =
    match Workload.latency result ~q:qv with
    | Some l -> Printf.printf "%s=%d " label l
    | None -> Printf.printf "%s=- " label
  in
  Printf.printf "commit latency (ticks): ";
  q "p50" 0.50;
  q "p90" 0.90;
  q "p99" 0.99;
  print_newline ();
  (match trace_out with
  | None -> ()
  | Some file ->
      let events =
        Amac.Trace_export.spans result.Workload.outcome.Amac.Engine.trace
      in
      let oc = open_out_bin file in
      output_string oc (export_for file events);
      close_out oc;
      Printf.printf "trace: %d span events written to %s\n"
        (List.length events) file);
  (match obs with
  | None -> ()
  | Some reg ->
      Printf.printf "--- metrics ---\n%s--- end metrics ---\n"
        (Obs.Metrics.render (Obs.Metrics.snapshot reg)));
  match result.Workload.violations with
  | [] ->
      Printf.printf
        "smr checker: ok (prefix agreement, no holes, exactly-once apply, \
         validity)\n";
      0
  | vs ->
      List.iter
        (fun v -> Printf.printf "VIOLATION: %s\n" (Smr_checker.to_string v))
        vs;
      1

(* Sharded multi-group SMR: Zipf-keyed open-loop workload over G groups
   multiplexed on one engine run (see Shard / Shard_workload). Exit
   status 1 on any violation of the sharded contract — per-group prefix
   agreement, cross-group exactly-once, batch atomicity. *)
let shard_cmd topo sched fack seed cmds groups batch window gap burst affinity
    zipf fault_specs metrics trace_out max_time =
  let rng = Amac.Rng.create seed in
  let topology = parse_topology topo (Amac.Rng.split rng) in
  let n = Amac.Topology.size topology in
  let scheduler = parse_scheduler sched ~fack (Amac.Rng.split rng) in
  let faults = List.map parse_fault fault_specs in
  let obs = if metrics then Some (Obs.Metrics.create ()) else None in
  let result =
    Shard_workload.run ~window ~batch ~mean_gap:gap ~burst ~affinity
      ~theta:zipf ~faults ~max_time
      ~record_trace:(trace_out <> None)
      ?obs ~topology ~scheduler
      ~seed:(Amac.Rng.int rng 1_000_000)
      ~cmds ~groups ()
  in
  Printf.printf
    "shard: topology=%s (n=%d) scheduler=%s groups=%d batch=%d window=%d \
     cmds=%d zipf=%.2f faults=%d\n"
    topo n scheduler.Amac.Scheduler.name groups batch window cmds zipf
    (List.length faults);
  Printf.printf
    "issued=%d submitted=%d committed=%d batches=%d last_commit=%d \
     end_time=%d events=%d broadcasts=%d\n"
    result.Shard_workload.issued result.Shard_workload.submitted
    result.Shard_workload.committed result.Shard_workload.batches
    result.Shard_workload.last_commit
    result.Shard_workload.outcome.Amac.Engine.end_time
    result.Shard_workload.outcome.Amac.Engine.events_processed
    result.Shard_workload.outcome.Amac.Engine.broadcasts;
  Printf.printf "group commit indexes: [%s]\n"
    (String.concat "; "
       (Array.to_list
          (Array.map string_of_int result.Shard_workload.group_commits)));
  let q label qv =
    match Shard_workload.latency result ~q:qv with
    | Some l -> Printf.printf "%s=%d " label l
    | None -> Printf.printf "%s=- " label
  in
  Printf.printf "commit latency (ticks): ";
  q "p50" 0.50;
  q "p90" 0.90;
  q "p99" 0.99;
  print_newline ();
  (match trace_out with
  | None -> ()
  | Some file ->
      let events =
        Amac.Trace_export.spans result.Shard_workload.outcome.Amac.Engine.trace
      in
      let oc = open_out_bin file in
      output_string oc (export_for file events);
      close_out oc;
      Printf.printf "trace: %d span events written to %s\n"
        (List.length events) file);
  (match obs with
  | None -> ()
  | Some reg ->
      Printf.printf "--- metrics ---\n%s--- end metrics ---\n"
        (Obs.Metrics.render (Obs.Metrics.snapshot reg)));
  match result.Shard_workload.violations with
  | [] ->
      Printf.printf
        "shard checker: ok (per-group prefix agreement, cross-group \
         exactly-once, batch atomicity)\n";
      0
  | vs ->
      List.iter
        (fun v ->
          Printf.printf "VIOLATION: %s\n" (Smr_checker.shard_to_string v))
        vs;
      1

(* Multi-hop interference runs: a topo_gen topology (seeded grid / RGG /
   clustered mesh), the contention-stretching scheduler wrapper and an
   optional churn or mobility schedule — the paper's O(D*F_ack) latency
   story at generator scale. Deterministic per (topo-seed, seed). Exit
   status 1 on any checker failure when fault-free, or on a safety
   violation when a fault plan is injected (liveness is then
   conditional). *)
let parse_topo_gen_spec spec ~radius =
  let fail () = failwith "multihop topology: grid:WxH rgg:N cluster:CxS+B" in
  match String.split_on_char ':' spec with
  | [ "grid"; dims ] -> (
      match String.split_on_char 'x' dims with
      | [ w; h ] ->
          Topo_gen.Grid { width = int_of_string w; height = int_of_string h }
      | _ -> fail ())
  | [ "rgg"; n ] ->
      let n = int_of_string n in
      let radius =
        if radius > 0.0 then radius else Topo_gen.connectivity_radius ~n
      in
      Topo_gen.Rgg { n; radius }
  | [ "cluster"; dims ] -> (
      match String.split_on_char '+' dims with
      | [ cxs; b ] -> (
          match String.split_on_char 'x' cxs with
          | [ c; s ] ->
              Topo_gen.Cluster
                {
                  clusters = int_of_string c;
                  size = int_of_string s;
                  extra_bridges = int_of_string b;
                }
          | _ -> fail ())
      | _ -> fail ())
  | _ -> fail ()

let multihop_cmd algo topo topo_seed radius sched fack seed inputs_spec alpha
    cap churn mobility delta_start delta_gap fault_specs metrics trace_out
    max_time =
  if churn > 0 && mobility > 0 then
    failwith
      "--churn and --mobility are exclusive (both schedules are computed \
       against the initial topology)";
  let rng = Amac.Rng.create seed in
  let spec = parse_topo_gen_spec topo ~radius in
  let topology = Topo_gen.generate ~seed:topo_seed spec in
  let n = Amac.Topology.size topology in
  let diameter = Amac.Topology.diameter topology in
  let scheduler =
    Amac.Scheduler.interference ~alpha ?cap
      (parse_scheduler sched ~fack (Amac.Rng.split rng))
  in
  let inputs = parse_inputs inputs_spec ~n (Amac.Rng.split rng) in
  let faults = List.map parse_fault fault_specs in
  let topo_deltas =
    if churn > 0 then
      Topo_gen.churn ~seed:topo_seed topology ~events:churn ~start:delta_start
        ~gap:delta_gap
    else if mobility > 0 then
      Topo_gen.mobility ~seed:topo_seed topology ~moves:mobility
        ~start:delta_start ~gap:delta_gap
    else []
  in
  let (Packed (algorithm, pp_msg)) = parse_algorithm algo in
  let obs = if metrics then Some (Obs.Metrics.create ()) else None in
  let result =
    Consensus.Runner.run algorithm ~topology ~scheduler ~inputs ~faults
      ~topo_deltas
      ~record_trace:(trace_out <> None)
      ~pp_msg ~max_time ?obs
  in
  Printf.printf
    "multihop: algorithm=%s topology=%s topo-seed=%d n=%d diameter=%d \
     scheduler=%s deltas=%d faults=%d\n"
    algorithm.Amac.Algorithm.name (Topo_gen.name spec) topo_seed n diameter
    scheduler.Amac.Scheduler.name
    (List.length topo_deltas)
    (List.length faults);
  Printf.printf "%s\n" (Format.asprintf "%a" Consensus.Checker.pp result.report);
  let d = result.Consensus.Runner.degradation in
  Printf.printf "decided=%d/%d latency=%s bound(D*F_ack)=%d\n"
    d.Consensus.Checker.decided_correct d.Consensus.Checker.correct_total
    (match result.decision_time with
    | Some t -> string_of_int t
    | None -> "-")
    (diameter * fack);
  Printf.printf
    "broadcasts=%d deliveries=%d topo_changes=%d events=%d end_time=%d\n"
    result.outcome.broadcasts result.outcome.deliveries
    result.outcome.topo_changes result.outcome.events_processed
    result.outcome.end_time;
  (match trace_out with
  | None -> ()
  | Some file ->
      let events = Amac.Trace_export.spans result.outcome.trace in
      let oc = open_out_bin file in
      output_string oc (export_for file events);
      close_out oc;
      Printf.printf "trace: %d span events written to %s\n"
        (List.length events) file);
  (match obs with
  | None -> ()
  | Some reg ->
      Printf.printf "--- metrics ---\n%s--- end metrics ---\n"
        (Obs.Metrics.render (Obs.Metrics.snapshot reg)));
  if faults = [] then if Consensus.Checker.ok result.report then 0 else 1
  else if Consensus.Checker.safety_violations result.report = [] then 0
  else 1

(* The lifecycle scenario suite: detector, compaction/snapshot-transfer and
   reconfiguration runs under fire (see Workload.Lifecycle). Exit status 1
   if any scenario violates safety or fails to re-achieve liveness. *)
let lifecycle_cmd scenario_name seed fack max_time =
  let scenarios =
    if scenario_name = "all" then Lifecycle.all
    else
      match Lifecycle.of_name scenario_name with
      | Some s -> [ s ]
      | None ->
          failwith
            "unknown scenario; try rolling-restart scale-up crash-reconfig \
             snapshot-restart all"
  in
  let failures =
    List.filter_map
      (fun scenario ->
        let o = Lifecycle.run ~seed ~fack ~max_time scenario in
        Printf.printf "%-17s %s  %s\n" (Lifecycle.name scenario)
          (if o.Lifecycle.live then "LIVE" else "STUCK")
          o.Lifecycle.detail;
        List.iter
          (fun v ->
            Printf.printf "  VIOLATION: %s\n" (Smr_checker.to_string v))
          o.Lifecycle.result.Workload.violations;
        if o.Lifecycle.live then None else Some scenario)
      scenarios
  in
  if failures = [] then 0 else 1

(* Profiling: one run with the causal-provenance DAG collected, folded into
   critical paths (consensus mode) and energy/waiting segments, as a
   human-readable report plus a deterministic JSON export (same seed =>
   byte-identical bytes — what the CI observability job diffs). *)
let write_file file s =
  let oc = open_out_bin file in
  output_string oc s;
  close_out oc

(* Nearest-rank quantile of a sorted latency array, as Workload.latency. *)
let quantile arr q =
  let len = Array.length arr in
  if len = 0 then Obs.Json.Null
  else
    let rank = int_of_float (ceil (q *. float_of_int len)) in
    Obs.Json.Int arr.(max 0 (min (len - 1) (rank - 1)))

let quantiles arr =
  Obs.Json.Obj
    [
      ("p50", quantile arr 0.50);
      ("p90", quantile arr 0.90);
      ("p99", quantile arr 0.99);
      ("max", quantile arr 1.0);
    ]

let profile_cmd algo topo sched fack seed inputs_spec smr cmds mode window gap
    clients json_out dag_out max_time =
  let rng = Amac.Rng.create seed in
  let topology = parse_topology topo (Amac.Rng.split rng) in
  let n = Amac.Topology.size topology in
  let scheduler = parse_scheduler sched ~fack (Amac.Rng.split rng) in
  let provenance = Obs.Provenance.create () in
  let meta_base =
    [
      ("topology", Obs.Json.String topo);
      ("scheduler", Obs.Json.String scheduler.Amac.Scheduler.name);
      ("fack", Obs.Json.Int fack);
      ("seed", Obs.Json.Int seed);
      ("n", Obs.Json.Int n);
    ]
  in
  let report, ok =
    if smr then begin
      let mode =
        match mode with
        | "open" -> Workload.Open_loop { mean_gap = gap }
        | "closed" -> Workload.Closed_loop { clients_per_node = clients }
        | _ -> failwith "mode: open|closed"
      in
      let result =
        Workload.run ~window ~max_time ~record_trace:true ~provenance
          ~topology ~scheduler
          ~seed:(Amac.Rng.int rng 1_000_000)
          ~cmds ~mode ()
      in
      let outcome = result.Workload.outcome in
      let energy =
        Obs.Energy.account ~n ~duration:outcome.Amac.Engine.end_time
          (Amac.Trace_export.spans outcome.Amac.Engine.trace)
      in
      let extra =
        [
          ( "commit_latency",
            Obs.Json.Obj
              [
                ("total", quantiles result.Workload.latencies);
                ("queue", quantiles result.Workload.queue_latencies);
                ("replicate", quantiles result.Workload.replicate_latencies);
              ] );
        ]
      in
      ( Obs.Profile.make ~provenance ~committed:result.Workload.committed
          ~extra
          ~meta:
            (( "algorithm",
               Obs.Json.String "smr" )
            :: ("cmds", Obs.Json.Int cmds)
            :: meta_base)
          ~energy (),
        result.Workload.violations = [] )
    end
    else begin
      let inputs = parse_inputs inputs_spec ~n (Amac.Rng.split rng) in
      let (Packed (algorithm, pp_msg)) = parse_algorithm algo in
      let result =
        Consensus.Runner.run algorithm ~topology ~scheduler ~inputs
          ~record_trace:true ~provenance ~pp_msg ~max_time
      in
      let outcome = result.Consensus.Runner.outcome in
      let energy =
        Obs.Energy.account ~n ~duration:outcome.Amac.Engine.end_time
          (Amac.Trace_export.spans outcome.Amac.Engine.trace)
      in
      ( Obs.Profile.make ~provenance
          ~meta:
            (( "algorithm",
               Obs.Json.String algorithm.Amac.Algorithm.name )
            :: ("inputs", Obs.Json.String inputs_spec)
            :: meta_base)
          ~energy (),
        Consensus.Checker.ok result.Consensus.Runner.report )
    end
  in
  print_string (Obs.Profile.render report);
  (match json_out with
  | None -> ()
  | Some file ->
      write_file file (Obs.Json.to_string (Obs.Profile.to_json report) ^ "\n");
      Printf.printf "profile: JSON report written to %s\n" file);
  (match dag_out with
  | None -> ()
  | Some file ->
      write_file file
        (Obs.Json.to_string (Obs.Provenance.to_json provenance) ^ "\n");
      Printf.printf "profile: causal DAG (%d vertices) written to %s\n"
        (Obs.Provenance.length provenance)
        file);
  if ok then 0 else 1

(* CI's trace checker: parse the export, re-export, re-parse, and demand
   the same event multiset — the round-trip contract of Obs.Span. *)
let validate_trace_cmd file =
  let data =
    let ic = open_in_bin file in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    s
  in
  match parse_for file data with
  | exception Failure msg ->
      Printf.eprintf "invalid trace %s: %s\n" file msg;
      1
  | events ->
      let reparsed = parse_for file (export_for file events) in
      if Obs.Span.same_multiset events reparsed then (
        Printf.printf "ok: %s (%d span events, round-trip stable)\n" file
          (List.length events);
        0)
      else (
        Printf.eprintf "round-trip mismatch in %s\n" file;
        1)

let lowerbounds_cmd () =
  let f = Lowerbound.Indist.fig1_demo ~diameter:10 ~n:30 in
  Printf.printf "Thm 3.3 (Fig 1): victim ok on B=%b; violation on A=%b\n"
    f.b_ok f.violated;
  let k = Lowerbound.Indist.kd_demo ~diameter:8 in
  Printf.printf "Thm 3.9 (K_D): victim ok on line=%b; violation on K_D=%b\n"
    k.line_ok k.violated;
  let a =
    Lowerbound.Partition.analyze (Consensus.Wpaxos.make ()) ~diameter:10
      ~fack:4
  in
  Printf.printf
    "Thm 3.10: lower bound %d, earliest cross-influence %d, wPAXOS decided \
     at %d\n"
    a.lower_bound a.endpoint_cross_influence a.last_decision;
  0

let algo_arg =
  Arg.(value & opt string "wpaxos" & info [ "algo"; "a" ] ~doc:"Algorithm")

let topo_arg =
  Arg.(value & opt string "grid:4x4" & info [ "topo"; "t" ] ~doc:"Topology")

let sched_arg =
  Arg.(value & opt string "random" & info [ "sched"; "s" ] ~doc:"Scheduler")

let fack_arg = Arg.(value & opt int 5 & info [ "fack"; "f" ] ~doc:"F_ack bound")

let seed_arg = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"PRNG seed")

let inputs_arg =
  Arg.(
    value & opt string "alternating"
    & info [ "inputs"; "i" ] ~doc:"Input vector spec")

let trace_arg = Arg.(value & flag & info [ "trace" ] ~doc:"Print full trace")

let trace_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-out" ]
        ~doc:
          "Write the run's span trace to $(docv); .jsonl gets JSON Lines, \
           anything else Chrome trace_event (opens in Perfetto)"
        ~docv:"FILE")

let metrics_arg =
  Arg.(
    value & flag
    & info [ "metrics" ]
        ~doc:"Print the run's metrics snapshot (deterministic per seed)")

let max_time_arg =
  Arg.(value & opt int 1_000_000 & info [ "max-time" ] ~doc:"Time cap")

let run_term =
  Term.(
    const run_cmd $ algo_arg $ topo_arg $ sched_arg $ fack_arg $ seed_arg
    $ inputs_arg $ trace_arg $ trace_out_arg $ metrics_arg $ max_time_arg)

let cmds_arg =
  Arg.(value & opt int 100 & info [ "cmds" ] ~doc:"Total client commands")

let mode_arg =
  Arg.(
    value & opt string "closed"
    & info [ "mode" ]
        ~doc:
          "Workload shape: $(b,open) (Poisson arrivals) or $(b,closed) \
           (outstanding=1 clients)")

let window_arg =
  Arg.(value & opt int 4 & info [ "window" ] ~doc:"SMR pipelining window")

let gap_arg =
  Arg.(
    value & opt int 10
    & info [ "gap" ] ~doc:"Open loop: mean inter-arrival gap in ticks")

let clients_arg =
  Arg.(
    value & opt int 1
    & info [ "clients" ] ~doc:"Closed loop: clients per replica")

let fault_arg =
  Arg.(
    value & opt_all string []
    & info [ "fault" ]
        ~doc:
          "Fault event (repeatable): crash:N\\@T recover:N\\@T \
           loss:U-V\\@A-B part:N1,N2,..\\@A-B stutter:N\\@A-B"
        ~docv:"SPEC")

let smr_term =
  Term.(
    const smr_cmd $ topo_arg $ sched_arg $ fack_arg $ seed_arg $ cmds_arg
    $ mode_arg $ window_arg $ gap_arg $ clients_arg $ fault_arg $ metrics_arg
    $ trace_out_arg $ max_time_arg)

let groups_arg =
  Arg.(
    value & opt int 2
    & info [ "groups"; "g" ] ~doc:"Number of SMR groups (keyspace shards)")

let batch_arg =
  Arg.(
    value & opt int 4
    & info [ "batch" ]
        ~doc:"Command batching threshold per (node, group); 1 disables")

let burst_arg =
  Arg.(
    value & opt int 1
    & info [ "burst" ] ~doc:"Commands sharing each open-loop arrival")

let affinity_arg =
  Arg.(
    value & flag
    & info [ "affinity" ]
        ~doc:
          "Shard-aware clients: each command lands at a replica of its \
           owning group instead of a uniform node")

let zipf_arg =
  Arg.(
    value & opt float 0.99
    & info [ "zipf" ] ~doc:"Zipf skew theta for the key distribution")

let shard_term =
  Term.(
    const shard_cmd $ topo_arg $ sched_arg $ fack_arg $ seed_arg $ cmds_arg
    $ groups_arg $ batch_arg $ window_arg $ gap_arg $ burst_arg $ affinity_arg
    $ zipf_arg $ fault_arg $ metrics_arg $ trace_out_arg $ max_time_arg)

let topo_seed_arg =
  Arg.(
    value & opt int 1
    & info [ "topo-seed" ]
        ~doc:
          "Topology generator seed (same spec + seed => byte-identical \
           graph)")

let radius_arg =
  Arg.(
    value & opt float 0.0
    & info [ "radius" ]
        ~doc:
          "RGG connection radius; 0 picks the connectivity radius \
           sqrt(3 ln n / n)")

let alpha_arg =
  Arg.(
    value & opt int 1
    & info [ "alpha" ]
        ~doc:
          "Interference strength: each on-air neighbor stretches the ack \
           bound by $(docv) ticks; 0 is the degenerate no-interference mode"
        ~docv:"TICKS")

let cap_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "cap" ]
        ~doc:"Ack-stretch cap in ticks (default 4*F_ack)" ~docv:"TICKS")

let churn_arg =
  Arg.(
    value & opt int 0
    & info [ "churn" ]
        ~doc:"Churn events (alternating edge removals/insertions) to apply")

let mobility_arg =
  Arg.(
    value & opt int 0
    & info [ "mobility" ]
        ~doc:"Node-movement bursts to apply (exclusive with --churn)")

let delta_start_arg =
  Arg.(
    value & opt int 10
    & info [ "delta-start" ] ~doc:"First churn/mobility event time")

let delta_gap_arg =
  Arg.(
    value & opt int 10
    & info [ "delta-gap" ] ~doc:"Gap between churn/mobility events")

let multihop_term =
  Term.(
    const multihop_cmd $ algo_arg $ topo_arg $ topo_seed_arg $ radius_arg
    $ sched_arg $ fack_arg $ seed_arg $ inputs_arg $ alpha_arg $ cap_arg
    $ churn_arg $ mobility_arg $ delta_start_arg $ delta_gap_arg $ fault_arg
    $ metrics_arg $ trace_out_arg $ max_time_arg)

let smr_flag_arg =
  Arg.(
    value & flag
    & info [ "smr" ]
        ~doc:
          "Profile the replicated log under a workload (energy + commit \
           latency breakdown) instead of a single-decree consensus run")

let json_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "json" ]
        ~doc:
          "Write the deterministic JSON report to $(docv) (same seed => \
           byte-identical bytes)"
        ~docv:"FILE")

let dag_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "dag" ] ~doc:"Write the causal provenance DAG JSON to $(docv)"
        ~docv:"FILE")

let profile_term =
  Term.(
    const profile_cmd $ algo_arg $ topo_arg $ sched_arg $ fack_arg $ seed_arg
    $ inputs_arg $ smr_flag_arg $ cmds_arg $ mode_arg $ window_arg $ gap_arg
    $ clients_arg $ json_out_arg $ dag_out_arg $ max_time_arg)

let scenario_arg =
  Arg.(
    value & opt string "all"
    & info [ "scenario" ]
        ~doc:
          "Lifecycle scenario: $(b,rolling-restart), $(b,scale-up), \
           $(b,crash-reconfig), $(b,snapshot-restart) or $(b,all)")

let validate_file_arg =
  Arg.(
    required
    & pos 0 (some file) None
    & info [] ~docv:"FILE" ~doc:"Trace export to validate")

let cmds =
  Cmd.group ~default:run_term
    (Cmd.info "amac_sim" ~doc:"Abstract MAC layer consensus simulator")
    [
      Cmd.v
        (Cmd.info "run" ~doc:"Run one algorithm on one topology and verify")
        run_term;
      Cmd.v
        (Cmd.info "smr"
           ~doc:
             "Run the replicated log under a client workload and verify it \
              with the SMR checker")
        smr_term;
      Cmd.v
        (Cmd.info "shard"
           ~doc:
             "Run sharded multi-group SMR (keyspace partitioned across \
              --groups batching --batch commands per Propose) under a \
              Zipf-keyed open-loop workload and verify the sharded \
              contract: per-group prefix agreement, cross-group \
              exactly-once, batch atomicity")
        shard_term;
      Cmd.v
        (Cmd.info "multihop"
           ~doc:
             "Run on a generated multi-hop topology (grid:WxH rgg:N \
              cluster:CxS+B) under the interference-aware scheduler \
              (--alpha/--cap ack stretch per on-air neighbor), with \
              optional --churn/--mobility delta schedules and fault \
              events, and verify against the O(D*F_ack) story")
        multihop_term;
      Cmd.v
        (Cmd.info "lifecycle"
           ~doc:
             "Run the production-lifecycle scenario suite (failure \
              detection, compaction + snapshot transfer, membership \
              reconfiguration) and verify safety + re-achieved liveness")
        Term.(
          const lifecycle_cmd $ scenario_arg $ seed_arg $ fack_arg
          $ max_time_arg);
      Cmd.v
        (Cmd.info "profile"
           ~doc:
             "Run once with causal provenance collected and report critical \
              paths (hops vs the O(D*F_ack) bound, per-edge latency, leader \
              attribution) and energy/waiting accounting; --json emits a \
              deterministic report, --smr profiles the replicated log")
        profile_term;
      Cmd.v
        (Cmd.info "validate-trace"
           ~doc:"Check a --trace-out export parses and round-trips")
        Term.(const validate_trace_cmd $ validate_file_arg);
      Cmd.v
        (Cmd.info "lowerbounds" ~doc:"Run the three lower-bound demos")
        Term.(const lowerbounds_cmd $ const ());
    ]

let () = exit (Cmd.eval' cmds)
