(** Causal-influence tracking.

    For the Thm 3.10 experiment we need, for every node [u] and origin [o],
    the earliest time at which {e any} information originating at [o] can
    have reached [u] — i.e. the first event at [u] causally preceded by
    [o]'s initial state. The engine threads an influence set through every
    broadcast: a message carries (a snapshot of) its sender's current
    influence set, and delivery unions it into the receiver's.

    A node cannot have decided consistently with validity before its
    influence set contains an origin holding each represented input value —
    this turns the paper's indistinguishability partition argument into a
    measurable quantity. *)

type t

(** [create ~n] starts every node influenced only by itself (at time 0). *)
val create : n:int -> t

(** [snapshot t node] is a copy of [node]'s current influence set, to be
    attached to an outgoing broadcast. *)
val snapshot : t -> int -> Bitset.t

(** [absorb t ~node ~time incoming] merges a delivered message's influence
    set into [node]'s, recording first-influence times for any new
    origins. *)
val absorb : t -> node:int -> time:int -> Bitset.t -> unit

(** [influence t node] is [node]'s current influence set (not a copy). *)
val influence : t -> int -> Bitset.t

(** [first_influence t ~node ~origin] is the earliest time at which [origin]
    entered [node]'s influence set, or [None] if it never did.
    [first_influence t ~node:i ~origin:i = Some 0]. *)
val first_influence : t -> node:int -> origin:int -> int option

(** [earliest_full_influence t ~node] is the earliest time by which [node]
    was influenced by {e every} origin, or [None] if it never was. *)
val earliest_full_influence : t -> node:int -> int option
