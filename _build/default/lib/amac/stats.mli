(** Small statistics and table-formatting helpers for the bench harness. *)

(** [mean xs] — arithmetic mean. @raise Invalid_argument on []. *)
val mean : float list -> float

(** [minimum xs] / [maximum xs]. @raise Invalid_argument on []. *)
val minimum : float list -> float

val maximum : float list -> float

(** [percentile p xs] with [p] in [\[0, 100\]] (nearest-rank).
    @raise Invalid_argument on [] or out-of-range [p]. *)
val percentile : float -> float list -> float

val median : float list -> float

(** [stddev xs] — population standard deviation. *)
val stddev : float list -> float

(** Aligned plain-text tables, used by [bench/main.exe] to print the
    experiment tables recorded in EXPERIMENTS.md. *)
module Table : sig
  type t

  (** [create ~title ~columns] starts a table. *)
  val create : title:string -> columns:string list -> t

  (** [add_row t cells] appends a row; cell count must match the header. *)
  val add_row : t -> string list -> unit

  (** [add_note t note] appends a free-text footnote line. *)
  val add_note : t -> string -> unit

  (** [render t] is the formatted table (title, ruled header, rows, notes). *)
  val render : t -> string

  (** [print t] writes [render t] to stdout. *)
  val print : t -> unit
end
