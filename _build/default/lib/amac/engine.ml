type outcome = {
  decisions : (int * int) option array;
  extra_decides : (int * int * int) list;
  crashed : bool array;
  broadcasts : int;
  deliveries : int;
  discarded : int;
  dropped : int;
  max_ids_per_message : int;
  unreliable_deliveries : int;
  end_time : int;
  events_processed : int;
  hit_max_time : bool;
  causal : Causal.t option;
  trace : Trace.entry list;
}

let all_decided outcome =
  let ok = ref true in
  Array.iteri
    (fun i decision ->
      if (not outcome.crashed.(i)) && decision = None then ok := false)
    outcome.decisions;
  !ok

let decision_times outcome =
  let acc = ref [] in
  Array.iteri
    (fun i decision ->
      match decision with
      | Some (_, time) when not outcome.crashed.(i) -> acc := time :: !acc
      | Some _ | None -> ())
    outcome.decisions;
  List.rev !acc

let latest_decision outcome =
  match decision_times outcome with
  | [] -> None
  | times -> Some (List.fold_left max 0 times)

(* Event kinds, in processing-priority order at equal times: a crash takes
   effect before deliveries at the same tick (so "delivery at the crash
   instant" is lost, making crash-mid-broadcast expressible), and all
   deliveries of a tick land before any ack of that tick (the model requires
   every neighbor to receive before the sender's ack). *)
type 'm event =
  | Crash of { node : int }
  | Receive of { node : int; sender : int; msg : 'm; influence : Bitset.t option }
  | Ack of { node : int }

let kind_priority = function Crash _ -> 0 | Receive _ -> 1 | Ack _ -> 2

(* Event-queue keys encode (time, kind priority); Pqueue breaks remaining
   ties by insertion order, making runs bit-for-bit deterministic. *)
let key_of ~time event = (time * 4) + kind_priority event

let time_of_key key = key / 4

let run ?identities ?(give_n = true) ?(give_diameter = false) ?(crashes = [])
    ?(max_time = 1_000_000) ?(stop_when_all_decided = true)
    ?(track_causal = false) ?(record_trace = false) ?pp_msg ?unreliable
    (algorithm : ('s, 'm) Algorithm.t) ~topology ~scheduler ~inputs =
  let n = Topology.size topology in
  if Array.length inputs <> n then
    invalid_arg "Engine.run: inputs length mismatches topology size";
  (match unreliable with
  | None -> ()
  | Some extra ->
      if Topology.size extra <> n then
        invalid_arg "Engine.run: unreliable graph size mismatches topology";
      List.iter
        (fun (u, v) ->
          if Topology.has_edge topology u v then
            invalid_arg
              (Printf.sprintf
                 "Engine.run: edge (%d,%d) is both reliable and unreliable" u
                 v))
        (Topology.edges extra));
  let identities =
    match identities with
    | Some ids ->
        if Array.length ids <> n then
          invalid_arg "Engine.run: identities length mismatches topology size";
        ids
    | None -> Node_id.identity_assignment ~n ~kind:`Dense
  in
  let render_msg =
    match pp_msg with Some f -> f | None -> fun _ -> "<msg>"
  in
  let ctxs =
    Array.init n (fun i ->
        {
          Algorithm.id = identities.(i);
          n = (if give_n then Some n else None);
          diameter =
            (if give_diameter then Some (Topology.diameter topology) else None);
          degree = Topology.degree topology i;
          input = inputs.(i);
        })
  in
  let causal = if track_causal then Some (Causal.create ~n) else None in
  let queue : 'm event Pqueue.t = Pqueue.create () in
  let crashed = Array.make n false in
  let crash_time = Array.make n max_int in
  let busy = Array.make n false in
  let decisions = Array.make n None in
  let extra_decides = ref [] in
  let broadcasts = ref 0 in
  let deliveries = ref 0 in
  let discarded = ref 0 in
  let dropped = ref 0 in
  let max_ids = ref 0 in
  let events_processed = ref 0 in
  let unreliable_deliveries_planned = ref 0 in
  let end_time = ref 0 in
  let hit_max_time = ref false in
  let trace = ref [] in
  let log entry = if record_trace then trace := entry :: !trace in
  let live_undecided = ref n in

  List.iter
    (fun (node, time) ->
      if node < 0 || node >= n then invalid_arg "Engine.run: crash node range";
      if time < 0 then invalid_arg "Engine.run: negative crash time";
      Pqueue.add queue ~key:(key_of ~time (Crash { node })) (Crash { node }))
    crashes;

  let do_broadcast ~now sender msg =
    if busy.(sender) then begin
      incr discarded;
      log (Trace.Discarded { time = now; node = sender; msg = render_msg msg })
    end
    else begin
      busy.(sender) <- true;
      incr broadcasts;
      let ids = algorithm.msg_ids msg in
      if ids > !max_ids then max_ids := ids;
      log
        (Trace.Broadcast_start
           { time = now; node = sender; ids; msg = render_msg msg });
      let neighbors = Topology.neighbors topology sender in
      let plan =
        scheduler.Scheduler.plan ~now ~sender ~neighbors
      in
      (* Assert the scheduler respects the MAC layer contract. *)
      if plan.Scheduler.ack_at > now + scheduler.Scheduler.fack then
        invalid_arg
          (Printf.sprintf
             "Engine.run: scheduler %s acked at %d for broadcast at %d \
              (F_ack=%d)"
             scheduler.Scheduler.name plan.Scheduler.ack_at now
             scheduler.Scheduler.fack);
      if plan.Scheduler.ack_at <= now then
        invalid_arg "Engine.run: ack must be strictly after the broadcast";
      let planned = List.map fst plan.Scheduler.receives in
      if List.sort Int.compare planned <> neighbors then
        invalid_arg
          "Engine.run: scheduler must deliver to exactly the neighbor set";
      let influence =
        match causal with
        | Some c -> Some (Causal.snapshot c sender)
        | None -> None
      in
      let deliver (receiver, time) =
        if time <= now || time > plan.Scheduler.ack_at then
          invalid_arg
            (Printf.sprintf
               "Engine.run: delivery time %d outside (broadcast %d, ack %d]"
               time now plan.Scheduler.ack_at);
        let event = Receive { node = receiver; sender; msg; influence } in
        Pqueue.add queue ~key:(key_of ~time event) event
      in
      List.iter deliver plan.Scheduler.receives;
      (* Unreliable edges: the scheduler may additionally deliver to any
         subset of the sender's unreliable neighbors, at any time within
         the broadcast window. These deliveries never gate the ack. *)
      (match (unreliable, scheduler.Scheduler.unreliable_plan) with
      | Some extra, Some unreliable_plan ->
          let candidates = Topology.neighbors extra sender in
          if candidates <> [] then begin
            let chosen =
              unreliable_plan ~now ~sender ~candidates
                ~ack_at:plan.Scheduler.ack_at
            in
            List.iter
              (fun (receiver, time) ->
                if not (List.mem receiver candidates) then
                  invalid_arg
                    "Engine.run: unreliable delivery to a non-candidate";
                deliver (receiver, time);
                incr unreliable_deliveries_planned)
              chosen
          end
      | None, _ | _, None -> ());
      let ack = Ack { node = sender } in
      Pqueue.add queue ~key:(key_of ~time:plan.Scheduler.ack_at ack) ack
    end
  in

  let handle_decide ~now node value =
    match decisions.(node) with
    | None ->
        decisions.(node) <- Some (value, now);
        decr live_undecided;
        log (Trace.Decided { time = now; node; value })
    | Some (prior, _) ->
        if prior <> value then
          extra_decides := (node, value, now) :: !extra_decides
  in

  let rec apply_actions ~now node actions =
    match actions with
    | [] -> ()
    | Algorithm.Decide value :: rest ->
        handle_decide ~now node value;
        apply_actions ~now node rest
    | Algorithm.Broadcast msg :: rest ->
        do_broadcast ~now node msg;
        apply_actions ~now node rest
  in

  (* Initialise every node at time 0, in index order. *)
  let states =
    Array.init n (fun i ->
        let state, actions = algorithm.init ctxs.(i) in
        apply_actions ~now:0 i actions;
        state)
  in

  let stop = ref false in
  while (not !stop) && not (Pqueue.is_empty queue) do
    let key, event = Pqueue.pop queue in
    let now = time_of_key key in
    if now > max_time then begin
      hit_max_time := true;
      stop := true
    end
    else begin
      incr events_processed;
      end_time := now;
      (match event with
      | Crash { node } ->
          if not crashed.(node) then begin
            crashed.(node) <- true;
            crash_time.(node) <- now;
            if decisions.(node) = None then decr live_undecided;
            log (Trace.Crashed { time = now; node })
          end
      | Receive { node; sender; msg; influence } ->
          if crashed.(node) then incr dropped
          else if crash_time.(sender) <= now then
            (* The sender crashed mid-broadcast before this delivery. *)
            incr dropped
          else begin
            incr deliveries;
            (match (causal, influence) with
            | Some c, Some inf -> Causal.absorb c ~node ~time:now inf
            | Some _, None | None, _ -> ());
            log (Trace.Delivered { time = now; node; msg = render_msg msg });
            let actions = algorithm.on_receive ctxs.(node) states.(node) msg in
            apply_actions ~now node actions
          end
      | Ack { node } ->
          if not crashed.(node) then begin
            busy.(node) <- false;
            log (Trace.Acked { time = now; node });
            let actions = algorithm.on_ack ctxs.(node) states.(node) in
            apply_actions ~now node actions
          end);
      if stop_when_all_decided && !live_undecided = 0 then stop := true
    end
  done;

  {
    decisions;
    extra_decides = List.rev !extra_decides;
    crashed;
    broadcasts = !broadcasts;
    deliveries = !deliveries;
    discarded = !discarded;
    dropped = !dropped;
    max_ids_per_message = !max_ids;
    unreliable_deliveries = !unreliable_deliveries_planned;
    end_time = !end_time;
    events_processed = !events_processed;
    hit_max_time = !hit_max_time;
    causal;
    trace = List.rev !trace;
  }
