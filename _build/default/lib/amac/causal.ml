type t = {
  n : int;
  influence : Bitset.t array;
  first : int array array;  (* first.(node).(origin) = time, or max_int *)
}

let create ~n =
  let first = Array.init n (fun _ -> Array.make n max_int) in
  for i = 0 to n - 1 do
    first.(i).(i) <- 0
  done;
  { n; influence = Array.init n (fun i -> Bitset.singleton n i); first }

let snapshot t node = Bitset.copy t.influence.(node)

let absorb t ~node ~time incoming =
  let first = t.first.(node) in
  let note origin = if first.(origin) = max_int then first.(origin) <- time in
  Bitset.iter note incoming;
  Bitset.union_into ~src:incoming ~dst:t.influence.(node)

let influence t node = t.influence.(node)

let first_influence t ~node ~origin =
  let v = t.first.(node).(origin) in
  if v = max_int then None else Some v

let earliest_full_influence t ~node =
  let worst = Array.fold_left max 0 t.first.(node) in
  if worst = max_int then None else Some worst
