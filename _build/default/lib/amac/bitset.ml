type t = { bits : Bytes.t; universe : int }

let create universe =
  if universe < 0 then invalid_arg "Bitset.create: negative universe";
  { bits = Bytes.make ((universe + 7) / 8) '\000'; universe }

let capacity t = t.universe

let check t i =
  if i < 0 || i >= t.universe then invalid_arg "Bitset: index out of range"

let mem t i =
  check t i;
  Char.code (Bytes.get t.bits (i lsr 3)) land (1 lsl (i land 7)) <> 0

let add t i =
  check t i;
  let byte = i lsr 3 in
  Bytes.set t.bits byte
    (Char.chr (Char.code (Bytes.get t.bits byte) lor (1 lsl (i land 7))))

let remove t i =
  check t i;
  let byte = i lsr 3 in
  Bytes.set t.bits byte
    (Char.chr (Char.code (Bytes.get t.bits byte) land lnot (1 lsl (i land 7)) land 0xff))

let union_into ~src ~dst =
  if src.universe <> dst.universe then
    invalid_arg "Bitset.union_into: universe mismatch";
  for byte = 0 to Bytes.length src.bits - 1 do
    Bytes.set dst.bits byte
      (Char.chr
         (Char.code (Bytes.get dst.bits byte)
         lor Char.code (Bytes.get src.bits byte)))
  done

let copy t = { bits = Bytes.copy t.bits; universe = t.universe }

let popcount_byte =
  let table = Array.make 256 0 in
  for i = 1 to 255 do
    table.(i) <- table.(i lsr 1) + (i land 1)
  done;
  fun c -> table.(Char.code c)

let cardinal t =
  let count = ref 0 in
  Bytes.iter (fun c -> count := !count + popcount_byte c) t.bits;
  !count

let singleton universe i =
  let t = create universe in
  add t i;
  t

let is_empty t =
  let rec scan byte =
    byte >= Bytes.length t.bits
    || (Bytes.get t.bits byte = '\000' && scan (byte + 1))
  in
  scan 0

let equal a b = a.universe = b.universe && Bytes.equal a.bits b.bits

let subset a b =
  if a.universe <> b.universe then invalid_arg "Bitset.subset: universe mismatch";
  let rec scan byte =
    byte >= Bytes.length a.bits
    || (let xa = Char.code (Bytes.get a.bits byte) in
        let xb = Char.code (Bytes.get b.bits byte) in
        xa land xb = xa && scan (byte + 1))
  in
  scan 0

let iter f t =
  for i = 0 to t.universe - 1 do
    if mem t i then f i
  done

let elements t =
  let acc = ref [] in
  for i = t.universe - 1 downto 0 do
    if mem t i then acc := i :: !acc
  done;
  !acc
