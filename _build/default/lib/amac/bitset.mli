(** Fixed-capacity sets of small integers, packed into [Bytes].

    The engine's causal-influence tracker ({!Causal}) keeps one bitset per
    node per in-flight message; on large simulations these dominate memory,
    hence the packed representation. *)

type t

(** [create n] is the empty set over universe [\[0, n)]. *)
val create : int -> t

(** [capacity t] is the universe size given at creation. *)
val capacity : t -> int

(** [mem t i] tests membership. @raise Invalid_argument if [i] is outside the
    universe. *)
val mem : t -> int -> bool

(** [add t i] adds [i] in place. *)
val add : t -> int -> unit

(** [remove t i] removes [i] in place. *)
val remove : t -> int -> unit

(** [union_into ~src ~dst] adds every element of [src] to [dst]. The two sets
    must share a universe size. *)
val union_into : src:t -> dst:t -> unit

(** [copy t] is an independent copy. *)
val copy : t -> t

(** [cardinal t] is the number of elements. *)
val cardinal : t -> int

(** [singleton n i] is [{i}] over universe [n]. *)
val singleton : int -> int -> t

(** [is_empty t] is [cardinal t = 0] (but faster). *)
val is_empty : t -> bool

(** [equal a b] is set equality (universes must match). *)
val equal : t -> t -> bool

(** [subset a b] is true iff every element of [a] is in [b]. *)
val subset : t -> t -> bool

(** [iter f t] applies [f] to each element in increasing order. *)
val iter : (int -> unit) -> t -> unit

(** [elements t] is the sorted element list. *)
val elements : t -> int list
