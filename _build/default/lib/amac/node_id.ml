type t = Id of int | Anonymous

let compare a b =
  match (a, b) with
  | Anonymous, Anonymous -> 0
  | Anonymous, Id _ -> -1
  | Id _, Anonymous -> 1
  | Id x, Id y -> Int.compare x y

let equal a b = compare a b = 0

let pp fmt = function
  | Id i -> Format.fprintf fmt "#%d" i
  | Anonymous -> Format.pp_print_string fmt "anon"

let to_string t = Format.asprintf "%a" pp t

let unique_exn = function
  | Id i -> i
  | Anonymous ->
      invalid_arg "Node_id.unique_exn: anonymous node has no unique id"

let identity_assignment ~n ~kind =
  match kind with
  | `Anonymous -> Array.make n Anonymous
  | `Dense -> Array.init n (fun i -> Id i)
  | `Offset k -> Array.init n (fun i -> Id (k + i))
  | `Shuffled rng ->
      let ids = Array.init n (fun i -> i) in
      Rng.shuffle rng ids;
      Array.map (fun i -> Id i) ids
