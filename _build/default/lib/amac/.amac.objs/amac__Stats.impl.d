lib/amac/stats.ml: Buffer Float List Printf String
