lib/amac/causal.ml: Array Bitset
