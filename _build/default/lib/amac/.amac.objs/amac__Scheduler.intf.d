lib/amac/scheduler.mli: Rng
