lib/amac/node_id.mli: Format Rng
