lib/amac/trace.mli: Format
