lib/amac/bitset.ml: Array Bytes Char
