lib/amac/engine.ml: Algorithm Array Bitset Causal Int List Node_id Pqueue Printf Scheduler Topology Trace
