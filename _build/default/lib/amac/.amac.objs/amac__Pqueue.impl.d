lib/amac/pqueue.ml: Array
