lib/amac/rng.mli:
