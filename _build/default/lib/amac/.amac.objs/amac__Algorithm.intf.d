lib/amac/algorithm.mli: Node_id
