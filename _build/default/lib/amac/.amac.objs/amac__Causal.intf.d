lib/amac/causal.mli: Bitset
