lib/amac/algorithm.ml: List Node_id
