lib/amac/trace.ml: Array Buffer Format Hashtbl Int List Printf String
