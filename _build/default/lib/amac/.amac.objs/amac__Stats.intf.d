lib/amac/stats.mli:
