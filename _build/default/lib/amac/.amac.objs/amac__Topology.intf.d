lib/amac/topology.mli: Format Rng
