lib/amac/rng.ml: Array Int64 List
