lib/amac/node_id.ml: Array Format Int Rng
