lib/amac/scheduler.ml: List Printf Rng
