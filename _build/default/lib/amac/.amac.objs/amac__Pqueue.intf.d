lib/amac/pqueue.mli:
