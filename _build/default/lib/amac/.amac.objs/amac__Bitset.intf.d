lib/amac/bitset.mli:
