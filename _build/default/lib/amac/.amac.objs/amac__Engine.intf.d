lib/amac/engine.mli: Algorithm Causal Node_id Scheduler Topology Trace
