lib/amac/topology.ml: Array Format Hashtbl Int List Printf Queue Rng
