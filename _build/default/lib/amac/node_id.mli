(** Node identities.

    The simulator always addresses nodes by a dense {e index} in
    [\[0, n)] (array slots). Separately, each node carries an {e identity}:
    either a unique id (an arbitrary integer, not necessarily dense — the
    upper bounds of the paper assume unique ids but no structure on them) or
    [Anonymous] (Sec 3.2 studies algorithms that cannot use ids at all).

    Keeping index and identity distinct lets the same engine run both
    id-based algorithms (two-phase, wPAXOS) and anonymous algorithms (the
    Thm 3.3 victim), and lets tests permute the id assignment independently
    of the topology. *)

type t =
  | Id of int  (** a unique identifier *)
  | Anonymous  (** no identifier available to the algorithm *)

(** [compare] orders ids numerically; [Anonymous] is less than every [Id].
    The paper's algorithms only ever compare unique ids, but a total order
    keeps container use simple. *)
val compare : t -> t -> int

val equal : t -> t -> bool

(** [pp] prints [Id 7] as ["#7"] and [Anonymous] as ["anon"]. *)
val pp : Format.formatter -> t -> unit

val to_string : t -> string

(** [unique_exn t] is the integer id. @raise Invalid_argument on [Anonymous]
    — an anonymous algorithm has attempted to read an id, which is exactly
    the bug class Sec 3.2 is about. *)
val unique_exn : t -> int

(** [identity_assignment ~n ~kind] builds the id array handed to the engine:
    [`Dense] assigns 0..n-1 in index order, [`Shuffled rng] assigns a random
    permutation of 0..n-1, [`Offset k] assigns k, k+1, ..., and [`Anonymous]
    assigns no ids at all. *)
val identity_assignment :
  n:int ->
  kind:[ `Dense | `Shuffled of Rng.t | `Offset of int | `Anonymous ] ->
  t array
