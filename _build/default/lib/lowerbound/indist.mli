(** Executable indistinguishability arguments (Thm 3.3 and Thm 3.9).

    Each demo runs a {e victim} algorithm — one that genuinely solves
    consensus under the synchronous scheduler with the network knowledge the
    theorem grants — first in its "home" setting (where it is correct), then
    in the paper's adversarial construction, where the carefully delayed
    scheduler makes two network regions each believe they are the whole
    network. The result is an agreement violation, produced by an actual
    execution rather than argued on paper. *)

(** Thm 3.3 demo (Fig 1). The victim is anonymous min-flooding for n rounds
    ([Consensus.Round_flood] with [`Knows_n]): correct on network B under the
    synchronous scheduler, for both all-0 and all-1 inputs. Running the same
    algorithm — with the same n and D — on network A, with q's messages
    delayed past both gadgets' decisions, makes copy A0 decide 0 and copy A1
    decide 1. *)
type fig1_demo = {
  instance : Gadgets.fig1;
  b_decide_time_0 : int;  (** decision time on B, all inputs 0 *)
  b_decide_time_1 : int;  (** decision time on B, all inputs 1 *)
  b_ok : bool;  (** victim solved consensus on B in both runs *)
  a_report : Consensus.Checker.report;  (** the violated report on A *)
  a0_values : int list;  (** distinct values decided inside gadget copy A0 *)
  a1_values : int list;  (** distinct values decided inside gadget copy A1 *)
  violated : bool;  (** the expected agreement violation occurred *)
}

val fig1_demo : diameter:int -> n:int -> fig1_demo

(** Thm 3.9 demo (Fig 2). The victim has unique ids and knows D but not n
    ([`Knows_diameter]): correct on the standalone line L_D under the
    synchronous scheduler. On K_D (which also has diameter D), with the
    semi-synchronous scheduler silencing the middle line's endpoint, L¹_D
    decides 0 and L²_D decides 1. *)
type kd_demo = {
  kd : Gadgets.kd;
  line_ok : bool;  (** victim solved consensus on the standalone L_D *)
  line_decide_time : int;
  kd_report : Consensus.Checker.report;
  l1_values : int list;
  l2_values : int list;
  violated : bool;
}

val kd_demo : diameter:int -> kd_demo
