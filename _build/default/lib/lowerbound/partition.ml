type analysis = {
  diameter : int;
  fack : int;
  lower_bound : int;
  endpoint_cross_influence : int;
  first_decision : int;
  last_decision : int;
  ratio : float;
  consensus_ok : bool;
}

let analyze ?give_n ?(max_time = 10_000_000) algorithm ~diameter ~fack =
  let n = diameter + 1 in
  let topology = Amac.Topology.line n in
  let scheduler = Amac.Scheduler.max_delay ~fack in
  let inputs = Consensus.Runner.inputs_halves ~n in
  let result =
    Consensus.Runner.run ?give_n ~max_time ~track_causal:true algorithm
      ~topology ~scheduler ~inputs
  in
  let causal =
    match result.outcome.causal with
    | Some causal -> causal
    | None -> assert false
  in
  (* Earliest time an endpoint hears (transitively) from the far half. *)
  let cross_for ~node ~far_half =
    List.fold_left
      (fun acc origin ->
        match Amac.Causal.first_influence causal ~node ~origin with
        | Some t -> min acc t
        | None -> acc)
      max_int far_half
  in
  let far_for_0 = List.init (n - (n / 2)) (fun i -> (n / 2) + i) in
  let far_for_last = List.init (n / 2) (fun i -> i) in
  let endpoint_cross_influence =
    min (cross_for ~node:0 ~far_half:far_for_0)
      (cross_for ~node:(n - 1) ~far_half:far_for_last)
  in
  let times = Amac.Engine.decision_times result.outcome in
  (match times with
  | [] ->
      failwith
        (Printf.sprintf "Partition.analyze: %s never decided (D=%d, fack=%d)"
           algorithm.Amac.Algorithm.name diameter fack)
  | _ :: _ -> ());
  let first_decision = List.fold_left min max_int times in
  let last_decision = List.fold_left max 0 times in
  let lower_bound = diameter / 2 * fack in
  {
    diameter;
    fack;
    lower_bound;
    endpoint_cross_influence;
    first_decision;
    last_decision;
    ratio = float_of_int last_decision /. float_of_int (max 1 lower_bound);
    consensus_ok = Consensus.Checker.ok result.report;
  }
