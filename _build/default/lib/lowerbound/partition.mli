(** The Ω(D · F_ack) time lower bound, measured (Thm 3.10).

    On a line of diameter D under the max-delay scheduler, information needs
    exactly F_ack per hop, so an endpoint cannot be causally influenced by
    the far half of the line before ⌊D/2⌋ · F_ack — and validity plus
    agreement force any correct algorithm to wait at least that long when
    the two halves start with different values. The engine's causal tracker
    ({!Amac.Causal}) makes this measurable: we record when each endpoint is
    first influenced by any node of the opposite half, and compare the
    algorithm's actual decision times against the bound. *)

type analysis = {
  diameter : int;
  fack : int;
  lower_bound : int;  (** ⌊D/2⌋ · F_ack *)
  endpoint_cross_influence : int;
      (** earliest time either endpoint was influenced by any node of the
          opposite half — always ≥ [lower_bound] under max-delay *)
  first_decision : int;  (** earliest decision by any node *)
  last_decision : int;  (** the run's consensus latency *)
  ratio : float;  (** last_decision /. lower_bound — the optimality gap *)
  consensus_ok : bool;
}

(** [analyze algorithm ~diameter ~fack ...] runs [algorithm] on the
    (diameter+1)-node line under [Scheduler.max_delay ~fack], halves
    inputs 0/1, causal tracking on.
    @param give_n as in {!Amac.Engine.run} (default [true]).
    @raise Failure if the algorithm fails to decide within [max_time]. *)
val analyze :
  ?give_n:bool ->
  ?max_time:int ->
  ('s, 'm) Amac.Algorithm.t ->
  diameter:int ->
  fack:int ->
  analysis
