(* Gadget H layout (indices), for parameters d >= 4, k >= 2:

     0                c   (the connector)
     1 .. d-2         a1 .. a_{d-2}, a chain hanging from c
     d-1, d           p2, p3: with c and a1 they close a 4-cycle
                      c - a1 - p2 - p3 - c
     d+1 .. d+k       the parallel band, each adjacent to a_{d-2}
     d+k+1            the terminal, adjacent to every band node

   Eccentricity of c is d (the terminal); the 4-cycle exists so that the
   3-lift can permute the c-a1 edge and stay connected, and so that the
   detour a1^i .. a1^j between lift copies costs exactly 4 hops, keeping
   diameter(B) = diameter(A) = 2d+2. *)

type fig1 = {
  d : int;
  k : int;
  gadget : Amac.Topology.t;
  network_a : Amac.Topology.t;
  a0 : int list;
  a1 : int list;
  q : int;
  clique : int list;
  network_b : Amac.Topology.t;
  b_copy : copy:int -> int -> int;
  a_node : side:int -> int -> int;
}

let gadget_size ~d ~k = d + k + 2

let connector = 0

let gadget_edges ~d ~k =
  let p2 = d - 1 and p3 = d in
  let band = List.init k (fun j -> d + 1 + j) in
  let terminal = d + k + 1 in
  let chain = List.init (d - 3) (fun j -> (j + 1, j + 2)) in
  let cycle = [ (connector, 1); (1, p2); (p2, p3); (p3, connector) ] in
  let band_edges =
    List.concat_map (fun b -> [ (d - 2, b); (b, terminal) ]) band
  in
  cycle @ chain @ band_edges

let gadget ~d ~k =
  Amac.Topology.of_edges ~n:(gadget_size ~d ~k) (gadget_edges ~d ~k)

let fig1 ~d ~k =
  if d < 4 then invalid_arg "Gadgets.fig1: need d >= 4";
  if k < 2 then invalid_arg "Gadgets.fig1: need k >= 2 (lift connectivity)";
  let g = gadget_size ~d ~k in
  let edges = gadget_edges ~d ~k in
  (* Network A: two gadget copies, bridge q on both connectors, padding
     clique of size g-1 so |A| = 3g = |B|. *)
  let a_node ~side v = (side * g) + v in
  let q = 2 * g in
  let clique = List.init (g - 1) (fun j -> (2 * g) + 1 + j) in
  let a_edges =
    List.concat_map
      (fun (u, v) -> [ (u, v); (u + g, v + g) ])
      edges
    @ [ (q, a_node ~side:0 connector); (q, a_node ~side:1 connector) ]
    @ List.map (fun node -> (q, node)) clique
    @ List.concat_map
        (fun u -> List.filter_map (fun v -> if u < v then Some (u, v) else None) clique)
        clique
  in
  let network_a = Amac.Topology.of_edges ~n:(3 * g) a_edges in
  (* Network B: the 3-lift of H, with the copies of the c-a1 edge permuted
     cyclically (it lies on the 4-cycle, so the lift is connected). *)
  let b_copy ~copy v = (copy * g) + v in
  let b_edges =
    List.concat_map
      (fun (u, v) ->
        List.init 3 (fun copy ->
            if (u, v) = (connector, 1) then
              (b_copy ~copy connector, b_copy ~copy:((copy + 1) mod 3) 1)
            else (b_copy ~copy u, b_copy ~copy v)))
      edges
  in
  let network_b = Amac.Topology.of_edges ~n:(3 * g) b_edges in
  {
    d;
    k;
    gadget = gadget ~d ~k;
    network_a;
    a0 = List.init g (fun v -> a_node ~side:0 v);
    a1 = List.init g (fun v -> a_node ~side:1 v);
    q;
    clique;
    network_b;
    b_copy;
    a_node;
  }

let fig1_for ~diameter ~n =
  if diameter < 10 || diameter mod 2 <> 0 then
    invalid_arg "Gadgets.fig1_for: need an even diameter >= 10";
  if n < diameter then invalid_arg "Gadgets.fig1_for: need n >= diameter";
  let d = (diameter - 2) / 2 in
  (* Smallest k >= 2 with 3 * (d + k + 2) >= n. *)
  let k_min =
    let needed = ((n + 2) / 3) - d - 2 in
    max 2 needed
  in
  fig1 ~d ~k:k_min

type kd = {
  diameter : int;
  topology : Amac.Topology.t;
  l1 : int list;
  l2 : int list;
  middle : int list;
  endpoint : int;
}

let kd ~diameter =
  if diameter < 2 then invalid_arg "Gadgets.kd: need diameter >= 2";
  let dd = diameter in
  let l1 = List.init (dd + 1) (fun i -> i) in
  let l2 = List.init (dd + 1) (fun i -> dd + 1 + i) in
  let middle = List.init dd (fun i -> (2 * dd) + 2 + i) in
  let endpoint = (2 * dd) + 2 in
  let line_edges nodes =
    let arr = Array.of_list nodes in
    List.init (Array.length arr - 1) (fun i -> (arr.(i), arr.(i + 1)))
  in
  let edges =
    line_edges l1 @ line_edges l2 @ line_edges middle
    @ List.map (fun u -> (u, endpoint)) (l1 @ l2)
  in
  {
    diameter;
    topology = Amac.Topology.of_edges ~n:((3 * dd) + 2) edges;
    l1;
    l2;
    middle;
    endpoint;
  }
