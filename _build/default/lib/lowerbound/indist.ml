type fig1_demo = {
  instance : Gadgets.fig1;
  b_decide_time_0 : int;
  b_decide_time_1 : int;
  b_ok : bool;
  a_report : Consensus.Checker.report;
  a0_values : int list;
  a1_values : int list;
  violated : bool;
}

let decided_values_of (outcome : Amac.Engine.outcome) nodes =
  nodes
  |> List.filter_map (fun node ->
         Option.map fst outcome.decisions.(node))
  |> List.sort_uniq Int.compare

let fig1_demo ~diameter ~n =
  let instance = Gadgets.fig1_for ~diameter ~n in
  let size = Amac.Topology.size instance.network_b in
  let victim = Consensus.Round_flood.make ~target:`Knows_n in
  (* The victim is anonymous: run it with no ids at all. *)
  let identities = Amac.Node_id.identity_assignment ~n:size ~kind:`Anonymous in
  let run_b value =
    Consensus.Runner.run victim ~topology:instance.network_b
      ~scheduler:Amac.Scheduler.synchronous ~identities ~give_diameter:true
      ~inputs:(Consensus.Runner.inputs_all ~n:size value)
  in
  let b0 = run_b 0 and b1 = run_b 1 in
  let b_ok =
    Consensus.Checker.ok b0.report
    && Consensus.Checker.ok b1.report
    && b0.report.decided_values = [ 0 ]
    && b1.report.decided_values = [ 1 ]
  in
  let t_sync =
    max
      (Option.value ~default:0 b0.decision_time)
      (Option.value ~default:0 b1.decision_time)
  in
  (* Network A: both gadget executions must complete their t synchronous
     steps before anything from q arrives. *)
  let cut ~sender ~receiver:_ = sender = instance.q in
  let scheduler =
    Amac.Scheduler.delayed_cut ~base_fack:1 ~until:(2 * (t_sync + 2)) ~cut
  in
  let inputs = Array.make size 0 in
  List.iter (fun node -> inputs.(node) <- 1) instance.a1;
  (* q and the padding clique hold arbitrary inputs; give them 0. *)
  let a_result =
    Consensus.Runner.run victim ~topology:instance.network_a ~scheduler
      ~identities ~give_diameter:true ~inputs
  in
  let a0_values = decided_values_of a_result.outcome instance.a0 in
  let a1_values = decided_values_of a_result.outcome instance.a1 in
  {
    instance;
    b_decide_time_0 = Option.value ~default:0 b0.decision_time;
    b_decide_time_1 = Option.value ~default:0 b1.decision_time;
    b_ok;
    a_report = a_result.report;
    a0_values;
    a1_values;
    violated =
      (not a_result.report.Consensus.Checker.agreement)
      && a0_values = [ 0 ] && a1_values = [ 1 ];
  }

type kd_demo = {
  kd : Gadgets.kd;
  line_ok : bool;
  line_decide_time : int;
  kd_report : Consensus.Checker.report;
  l1_values : int list;
  l2_values : int list;
  violated : bool;
}

let kd_demo ~diameter =
  let kd = Gadgets.kd ~diameter in
  let victim = Consensus.Round_flood.make ~target:`Knows_diameter in
  (* Home setting: the standalone line L_D (diameter D, like K_D), mixed
     inputs, synchronous scheduler. *)
  let line = Amac.Topology.line (diameter + 1) in
  let line_result =
    Consensus.Runner.run victim ~topology:line
      ~scheduler:Amac.Scheduler.synchronous ~give_n:false ~give_diameter:true
      ~inputs:(Consensus.Runner.inputs_halves ~n:(diameter + 1))
  in
  let line_ok = Consensus.Checker.ok line_result.report in
  let t_sync = Option.value ~default:0 line_result.decision_time in
  (* K_D: silence the middle line's endpoint toward both L_D copies until
     both have decided. *)
  let size = Amac.Topology.size kd.topology in
  let in_l side node = List.mem node (if side = 1 then kd.l1 else kd.l2) in
  let cut ~sender ~receiver =
    sender = kd.endpoint && (in_l 1 receiver || in_l 2 receiver)
  in
  let scheduler =
    Amac.Scheduler.delayed_cut ~base_fack:1 ~until:(2 * (t_sync + 2)) ~cut
  in
  let inputs = Array.make size 0 in
  List.iter (fun node -> inputs.(node) <- 1) kd.l2;
  let kd_result =
    Consensus.Runner.run victim ~topology:kd.topology ~scheduler ~give_n:false
      ~give_diameter:true ~inputs
  in
  let l1_values = decided_values_of kd_result.outcome kd.l1 in
  let l2_values = decided_values_of kd_result.outcome kd.l2 in
  {
    kd;
    line_ok;
    line_decide_time = t_sync;
    kd_report = kd_result.report;
    l1_values;
    l2_values;
    violated =
      (not kd_result.report.Consensus.Checker.agreement)
      && l1_values = [ 0 ] && l2_values = [ 1 ];
  }
