lib/lowerbound/erratum.mli: Consensus
