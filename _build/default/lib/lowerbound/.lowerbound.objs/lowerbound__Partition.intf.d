lib/lowerbound/partition.mli: Amac
