lib/lowerbound/indist.mli: Consensus Gadgets
