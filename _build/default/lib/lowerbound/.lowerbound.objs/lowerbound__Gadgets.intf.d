lib/lowerbound/gadgets.mli: Amac
