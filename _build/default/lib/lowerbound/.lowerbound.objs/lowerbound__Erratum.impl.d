lib/lowerbound/erratum.ml: Amac Array Consensus Hashtbl List Option
