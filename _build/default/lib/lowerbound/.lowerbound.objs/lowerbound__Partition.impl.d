lib/lowerbound/partition.ml: Amac Consensus List Printf
