lib/lowerbound/bivalence.mli: Amac Format
