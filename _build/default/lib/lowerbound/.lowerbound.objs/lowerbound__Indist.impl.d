lib/lowerbound/indist.ml: Amac Array Consensus Gadgets Int List Option
