lib/lowerbound/bivalence.ml: Amac Array Digest Format Hashtbl List Marshal Queue
