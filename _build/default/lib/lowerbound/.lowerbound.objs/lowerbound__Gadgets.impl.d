lib/lowerbound/gadgets.ml: Amac Array List
