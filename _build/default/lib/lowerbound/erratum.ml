type demo = {
  literal_report : Consensus.Checker.report;
  corrected_report : Consensus.Checker.report;
  literal_decisions : (int * int) list;
}

(* Node 0 is fast (delay 1 always); node 1's first broadcast — its phase-1 —
   crawls (delay 5), so everything node 0 sends arrives during node 1's
   phase 1 and is recorded in R1. Per-sender broadcast counting makes this
   expressible as a deterministic scheduler. *)
let slow_first_broadcast () =
  let broadcasts_seen = Hashtbl.create 4 in
  Amac.Scheduler.make ~name:"erratum-schedule" ~fack:5
    (fun ~now ~sender ~neighbors ->
      let count =
        Option.value ~default:0 (Hashtbl.find_opt broadcasts_seen sender)
      in
      Hashtbl.replace broadcasts_seen sender (count + 1);
      let delay = if sender = 1 && count = 0 then 5 else 1 in
      {
        Amac.Scheduler.receives =
          List.map (fun v -> (v, now + delay)) neighbors;
        ack_at = now + delay;
      })

let run algorithm =
  Consensus.Runner.run algorithm
    ~topology:(Amac.Topology.clique 2)
    ~scheduler:(slow_first_broadcast ())
    ~inputs:[| 0; 1 |]

let two_phase_demo () =
  let literal = run Consensus.Two_phase.literal in
  let corrected = run Consensus.Two_phase.algorithm in
  let literal_decisions =
    Array.to_list literal.outcome.decisions
    |> List.mapi (fun node decision -> (node, decision))
    |> List.filter_map (fun (node, decision) ->
           Option.map (fun (value, _) -> (node, value)) decision)
  in
  {
    literal_report = literal.report;
    corrected_report = corrected.report;
    literal_decisions;
  }
