(** The worst-case network constructions of the paper's lower bounds.

    {b Figure 1} (Thm 3.3, impossibility without unique ids): a {e gadget}
    graph H with a designated connector node [c]; {e network A} is two
    disjoint copies of H plus a bridge node [q] adjacent to both connectors
    and to a padding clique [C]; {e network B} is a connected 3-fold
    covering (3-lift) of H — three copies with one cycle-edge's copies
    permuted cyclically to interconnect them. The covering property is
    exactly the paper's property (★): every B-node's neighborhood is one
    node from each neighbor-class, so an anonymous node cannot tell A's
    split execution from B's synchronous one. The clique size is chosen so
    [size A = size B], and the gadget's proportions so
    [diameter A = diameter B = D] (Claim 3.4 — checked by
    [test_gadgets.ml]).

    Our gadget has one fewer padding node than the figure's (the paper's
    exact pendant wiring is not fully specified by the diagram); the
    properties the proof uses — equal sizes, equal diameter D, covering
    structure — are preserved and tested.

    {b Figure 2} (Thm 3.9, impossibility without knowledge of n): K_D is two
    copies of the (D+1)-node line L_D plus a (D)-node line L_{D-1}, with
    every node of both L_D copies adjacent to one fixed endpoint of
    L_{D-1}. *)

(** Figure 1 instantiation. All node lists are disjoint index sets into the
    respective topology. *)
type fig1 = {
  d : int;  (** the paper's d = (D-2)/2 *)
  k : int;  (** width of the parallel band (the size knob) *)
  gadget : Amac.Topology.t;  (** H itself, connector = index 0 *)
  network_a : Amac.Topology.t;
  a0 : int list;  (** nodes of gadget copy A0 (initial value 0) *)
  a1 : int list;  (** nodes of gadget copy A1 (initial value 1) *)
  q : int;  (** the bridge node *)
  clique : int list;  (** the padding clique C *)
  network_b : Amac.Topology.t;
  b_copy : copy:int -> int -> int;
      (** [b_copy ~copy g] is the B-index of gadget node [g]'s image in copy
          [copy] ∈ {0,1,2} *)
  a_node : side:int -> int -> int;
      (** [a_node ~side g] is the A-index of gadget node [g] in copy
          [side] ∈ {0,1} *)
}

(** [fig1 ~d ~k] builds the instantiation. Requires [d >= 4] (so the pendant
    path does not dominate the diameter) and [k >= 2] (so the lift stays
    connected after permuting one band edge).
    @raise Invalid_argument otherwise. *)
val fig1 : d:int -> k:int -> fig1

(** [fig1_for ~diameter ~n] chooses d = (diameter-2)/2 and the smallest k
    giving [size >= n], as in Thm 3.3. Requires [diameter] even, ≥ 10, and
    [n >= diameter].
    @raise Invalid_argument otherwise. *)
val fig1_for : diameter:int -> n:int -> fig1

(** Figure 2 instantiation. *)
type kd = {
  diameter : int;
  topology : Amac.Topology.t;
  l1 : int list;  (** first L_D copy (initial value 0) *)
  l2 : int list;  (** second L_D copy (initial value 1) *)
  middle : int list;  (** the L_{D-1} line *)
  endpoint : int;  (** the end of L_{D-1} adjacent to every L_D node *)
}

(** [kd ~diameter] builds K_D. Requires [diameter >= 2].
    @raise Invalid_argument otherwise. *)
val kd : diameter:int -> kd
