(** Machine-checking the FLP-style argument of Sec 3.1 (Thm 3.2).

    The impossibility proof restricts attention to {e valid steps}: every
    sending node's next step is forced — deliver its in-flight message to
    the {e smallest} node that has not yet received it, or, once every live
    neighbor has it, receive the ack. The only non-determinism left is
    {e which node} steps next (plus crash timing), which makes the execution
    tree finitely branching and, for terminating algorithms, finite — so
    valency ("which decision values are still reachable") is computable by
    memoized exhaustive search.

    This module implements that semantics for any algorithm whose state
    contains no functions (configurations are snapshotted and deduplicated
    with [Marshal]), and provides the searches behind experiment E7:

    - classify initial configurations (a {e bivalent} initial configuration
      exists for mixed inputs — the FLP Lemma-2 analogue);
    - measure how long bivalence persists along crash-free executions;
    - with a crash budget, search for executions that break {e termination}
      (a blocked configuration with undecided live nodes) or {e agreement}
      (two different decided values) — for our two-phase algorithm the
      former exists and the latter must not, which is exactly "safety holds,
      liveness is what one crash kills". *)

type verdict =
  | Univalent of int  (** every deciding extension decides this value *)
  | Bivalent  (** both 0 and 1 remain reachable *)
  | Blocked  (** no extension reaches any decision *)

type step =
  | Deliver of { sender : int; receiver : int }
  | Ack of int
  | Crash of int

val pp_step : Format.formatter -> step -> unit

type ('s, 'm) t
(** An explorer instance: algorithm + topology + inputs, with a memo table.
    Configurations are immutable snapshots; the same instance can serve
    multiple queries. *)

(** [create algorithm ~topology ~inputs] — [give_n]/[give_diameter] as in
    {!Amac.Engine.run}.
    @raise Invalid_argument on input/topology size mismatch. *)
val create :
  ?give_n:bool ->
  ?give_diameter:bool ->
  ('s, 'm) Amac.Algorithm.t ->
  topology:Amac.Topology.t ->
  inputs:int array ->
  ('s, 'm) t

(** [initial_verdict t] — the valency of the initial configuration under
    crash-free valid-step extensions. *)
val initial_verdict : ('s, 'm) t -> verdict

(** Exploration statistics for crash-free valid-step executions. *)
type stats = {
  configs_by_depth : int array;  (** distinct configs first seen per depth *)
  bivalent_by_depth : int array;
  deepest_bivalent : int;  (** last depth with a bivalent config, -1 if none *)
  total_configs : int;
}

(** [explore t ~max_depth] — BFS of the crash-free valid-step execution DAG,
    classifying every configuration. *)
val explore : ('s, 'm) t -> max_depth:int -> stats

(** [find_termination_violation t ~max_crashes ~max_depth] searches (DFS)
    for an execution with at most [max_crashes] crashes ending in a
    configuration with no valid steps where some live node is undecided —
    the way one crash actually kills two-phase consensus. Returns the
    violating schedule. *)
val find_termination_violation :
  ('s, 'm) t ->
  max_crashes:int ->
  max_depth:int ->
  ?max_configs:int ->
  unit ->
  step list option

(** [find_agreement_violation t ~max_crashes ~max_depth] searches for an
    execution (crashes allowed) reaching a configuration where two nodes
    decided differently. [None] = no violation found within the depth and
    [max_configs] visit budget (default 500k distinct configurations). *)
val find_agreement_violation :
  ('s, 'm) t ->
  max_crashes:int ->
  max_depth:int ->
  ?max_configs:int ->
  unit ->
  step list option

(** [check_lemma_3_1 t ~node ~search_depth] — Lemma 3.1's property at the
    initial configuration: is there a finite valid extension α' such that
    α'·s_node is bivalent? Returns the extension if found. Only meaningful
    when the initial configuration is bivalent and [node] is sending.

    Note the logic of the paper's proof: Lemma 3.1 holds for every node
    {e assuming} the algorithm tolerates one crash. For an algorithm that
    does not (e.g. two-phase), the property legitimately fails at some
    nodes — that failure is how the algorithm escapes Thm 3.2. *)
val check_lemma_3_1 :
  ('s, 'm) t -> node:int -> search_depth:int -> step list option
