type verdict = Univalent of int | Bivalent | Blocked

type step =
  | Deliver of { sender : int; receiver : int }
  | Ack of int
  | Crash of int

let pp_step fmt = function
  | Deliver { sender; receiver } ->
      Format.fprintf fmt "deliver(%d->%d)" sender receiver
  | Ack node -> Format.fprintf fmt "ack(%d)" node
  | Crash node -> Format.fprintf fmt "crash(%d)" node

type ('s, 'm) node_cfg = {
  st : 's;
  outgoing : 'm option;
  received : bool array;  (* receiver index -> got the current message *)
  decided : int option;
  crashed : bool;
}

type ('s, 'm) config = ('s, 'm) node_cfg array

type ('s, 'm) t = {
  algorithm : ('s, 'm) Amac.Algorithm.t;
  topology : Amac.Topology.t;
  ctxs : Amac.Algorithm.ctx array;
  initial : ('s, 'm) config;
  valency_memo : (string, bool * bool) Hashtbl.t;  (* key -> reachable values *)
}

(* Configurations are keyed by the MD5 digest of their marshalled bytes:
   16 bytes per entry instead of kilobytes, at an astronomically small
   collision risk. Keys are not canonical (internal list layout leaks in),
   which only costs duplicate exploration, never wrong answers. *)
let key (config : ('s, 'm) config) = Digest.string (Marshal.to_string config [])

let snapshot (config : ('s, 'm) config) : ('s, 'm) config =
  Marshal.from_string (Marshal.to_string config []) 0

(* Apply an algorithm's actions to one node of a (private) configuration.
   Broadcasting while a message is in flight discards, as in the engine. *)
let apply_actions ~n config node actions =
  let cfg = config.(node) in
  let cfg =
    List.fold_left
      (fun cfg action ->
        match action with
        | Amac.Algorithm.Decide value ->
            if cfg.decided = None then { cfg with decided = Some value }
            else cfg
        | Amac.Algorithm.Broadcast message ->
            if cfg.outgoing = None then
              {
                cfg with
                outgoing = Some message;
                received = Array.make n false;
              }
            else cfg)
      cfg actions
  in
  config.(node) <- cfg

let create ?(give_n = true) ?(give_diameter = false) algorithm ~topology
    ~inputs =
  let n = Amac.Topology.size topology in
  if Array.length inputs <> n then
    invalid_arg "Bivalence.create: inputs length mismatches topology";
  let ctxs =
    Array.init n (fun i ->
        {
          Amac.Algorithm.id = Amac.Node_id.Id i;
          n = (if give_n then Some n else None);
          diameter =
            (if give_diameter then Some (Amac.Topology.diameter topology)
             else None);
          degree = Amac.Topology.degree topology i;
          input = inputs.(i);
        })
  in
  let inits = Array.map algorithm.Amac.Algorithm.init ctxs in
  let config =
    Array.map
      (fun (st, _) ->
        {
          st;
          outgoing = None;
          received = Array.make n false;
          decided = None;
          crashed = false;
        })
      inits
  in
  Array.iteri (fun i (_, actions) -> apply_actions ~n config i actions) inits;
  { algorithm; topology; ctxs; initial = config; valency_memo = Hashtbl.create 4096 }

(* The unique valid step of a sending node: deliver to the smallest live
   neighbor that lacks the message, else the ack. *)
let valid_step_of t (config : ('s, 'm) config) sender =
  let cfg = config.(sender) in
  if cfg.crashed then None
  else
    match cfg.outgoing with
    | None -> None
    | Some _ ->
        let pending =
          List.filter
            (fun v -> (not config.(v).crashed) && not cfg.received.(v))
            (Amac.Topology.neighbors t.topology sender)
        in
        (match pending with
        | [] -> Some (Ack sender)
        | receiver :: _ -> Some (Deliver { sender; receiver }))

let valid_steps t config =
  let steps = ref [] in
  for sender = Array.length config - 1 downto 0 do
    match valid_step_of t config sender with
    | Some step -> steps := step :: !steps
    | None -> ()
  done;
  !steps

(* Apply a step to a fresh copy of the configuration. *)
let apply t config step =
  let config = snapshot config in
  (match step with
  | Crash node ->
      config.(node) <-
        { (config.(node)) with crashed = true; outgoing = None }
  | Deliver { sender; receiver } ->
      let message =
        match config.(sender).outgoing with
        | Some m -> m
        | None -> invalid_arg "Bivalence.apply: sender not sending"
      in
      config.(sender).received.(receiver) <- true;
      if not config.(receiver).crashed then begin
        let actions =
          t.algorithm.on_receive t.ctxs.(receiver) config.(receiver).st message
        in
        apply_actions ~n:(Array.length config) config receiver actions
      end
  | Ack node ->
      config.(node) <- { (config.(node)) with outgoing = None };
      let actions = t.algorithm.on_ack t.ctxs.(node) config.(node).st in
      apply_actions ~n:(Array.length config) config node actions);
  config

let decided_pair config =
  Array.fold_left
    (fun (zero, one) cfg ->
      match cfg.decided with
      | Some 0 -> (true, one)
      | Some _ -> (zero, true)
      | None -> (zero, one))
    (false, false) config

(* Crash-free valency: which decision values are reachable by valid-step
   extensions (memoized exhaustive search). *)
let rec valency t config =
  let k = key config in
  match Hashtbl.find_opt t.valency_memo k with
  | Some v -> v
  | None ->
      (* Mark in-progress to cut cycles (revisiting adds nothing new). *)
      Hashtbl.replace t.valency_memo k (false, false);
      let zero, one = decided_pair config in
      let result =
        List.fold_left
          (fun (zero, one) step ->
            if zero && one then (zero, one)
            else
              let z, o = valency t (apply t config step) in
              (zero || z, one || o))
          (zero, one) (valid_steps t config)
      in
      Hashtbl.replace t.valency_memo k result;
      result

let verdict_of = function
  | true, true -> Bivalent
  | true, false -> Univalent 0
  | false, true -> Univalent 1
  | false, false -> Blocked

let initial_verdict t = verdict_of (valency t t.initial)

type stats = {
  configs_by_depth : int array;
  bivalent_by_depth : int array;
  deepest_bivalent : int;
  total_configs : int;
}

let explore t ~max_depth =
  let configs_by_depth = Array.make (max_depth + 1) 0 in
  let bivalent_by_depth = Array.make (max_depth + 1) 0 in
  let seen = Hashtbl.create 4096 in
  let deepest = ref (-1) in
  let total = ref 0 in
  let queue = Queue.create () in
  Queue.add (t.initial, 0) queue;
  Hashtbl.replace seen (key t.initial) ();
  while not (Queue.is_empty queue) do
    let config, depth = Queue.pop queue in
    incr total;
    configs_by_depth.(depth) <- configs_by_depth.(depth) + 1;
    (match verdict_of (valency t config) with
    | Bivalent ->
        bivalent_by_depth.(depth) <- bivalent_by_depth.(depth) + 1;
        if depth > !deepest then deepest := depth
    | Univalent _ | Blocked -> ());
    if depth < max_depth then
      List.iter
        (fun step ->
          let next = apply t config step in
          let k = key next in
          if not (Hashtbl.mem seen k) then begin
            Hashtbl.replace seen k ();
            Queue.add (next, depth + 1) queue
          end)
        (valid_steps t config)
  done;
  {
    configs_by_depth;
    bivalent_by_depth;
    deepest_bivalent = !deepest;
    total_configs = !total;
  }

(* DFS with crash steps allowed, looking for a configuration satisfying
   [target]. Returns the schedule in execution order. [max_configs] bounds
   the distinct configurations visited: with crash steps the tree can be
   enormous and configuration keys are not canonical, so an absolute budget
   keeps searches predictable (None then means "none found within the
   budget"). *)
let search_with_crashes t ~max_crashes ~max_depth ~max_configs ~target =
  let seen = Hashtbl.create 4096 in
  let visited = ref 0 in
  let exception Found of step list in
  let exception Budget_exhausted in
  let rec dfs config ~crashes ~depth ~path =
    if target config then raise (Found (List.rev path));
    incr visited;
    if !visited > max_configs then raise Budget_exhausted;
    if depth < max_depth then begin
      let k = key config in
      let prior = Hashtbl.find_opt seen k in
      (* Revisit only if we now have more crash budget than before. *)
      let fresh =
        match prior with None -> true | Some best -> crashes < best
      in
      if fresh then begin
        Hashtbl.replace seen k crashes;
        let crash_steps =
          if crashes < max_crashes then
            List.filter_map
              (fun i ->
                if config.(i).crashed then None else Some (Crash i))
              (List.init (Array.length config) (fun i -> i))
          else []
        in
        List.iter
          (fun step ->
            let extra = match step with Crash _ -> 1 | _ -> 0 in
            dfs (apply t config step) ~crashes:(crashes + extra)
              ~depth:(depth + 1) ~path:(step :: path))
          (valid_steps t config @ crash_steps)
      end
    end
  in
  try
    dfs t.initial ~crashes:0 ~depth:0 ~path:[];
    None
  with
  | Found schedule -> Some schedule
  | Budget_exhausted -> None

let find_termination_violation t ~max_crashes ~max_depth ?(max_configs = 500_000) () =
  let target config =
    valid_steps t config = []
    && Array.exists (fun cfg -> (not cfg.crashed) && cfg.decided = None) config
  in
  search_with_crashes t ~max_crashes ~max_depth ~max_configs ~target

let find_agreement_violation t ~max_crashes ~max_depth ?(max_configs = 500_000) () =
  let target config =
    let zero, one = decided_pair config in
    zero && one
  in
  search_with_crashes t ~max_crashes ~max_depth ~max_configs ~target

let check_lemma_3_1 t ~node ~search_depth =
  let seen = Hashtbl.create 1024 in
  let exception Found of step list in
  let rec dfs config ~depth ~path =
    (match valid_step_of t config node with
    | Some s ->
        let zero, one = valency t (apply t config s) in
        if zero && one then raise (Found (List.rev path))
    | None -> ());
    if depth < search_depth then begin
      let k = key config in
      if not (Hashtbl.mem seen k) then begin
        Hashtbl.replace seen k ();
        List.iter
          (fun step -> dfs (apply t config step) ~depth:(depth + 1) ~path:(step :: path))
          (valid_steps t config)
      end
    end
  in
  try
    dfs t.initial ~depth:0 ~path:[];
    None
  with Found schedule -> Some schedule
