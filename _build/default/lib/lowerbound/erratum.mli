(** An executable erratum for Algorithm 1 (two-phase consensus, Sec 4.1).

    Line 23 of the printed pseudocode decides 0 only if a
    [⟨phase 2, *, decided(0)⟩] message is in {e R2}. But a fast node's
    phase-2 [decided(0)] broadcast can reach a slow node while that node is
    still waiting for its {e phase-1} ack — the message then lands in R1,
    the witness condition for the fast node is already satisfied, and the
    printed rule decides the default 1 while the fast node decides 0.
    The proof of Thm 4.1 ("it will therefore see that u has a status of
    decided(0)") clearly intends the check to range over R1 ∪ R2, which is
    what [Consensus.Two_phase.algorithm] implements.

    This module builds the two-node schedule realising the bad interleaving
    and runs both variants on it: the literal transcription violates
    agreement, the corrected one does not. *)

type demo = {
  literal_report : Consensus.Checker.report;
      (** agreement is [false] here — the violation *)
  corrected_report : Consensus.Checker.report;  (** fully ok *)
  literal_decisions : (int * int) list;  (** (node, value), both nodes *)
}

(** [two_phase_demo ()] runs the schedule: node 0 (input 0) is fast — its
    phase-1 and phase-2 broadcasts deliver and ack within 1 tick; node 1
    (input 1) is slow — its phase-1 broadcast's deliveries and ack take 5
    ticks, so node 0's entire execution lands inside node 1's phase 1. *)
val two_phase_demo : unit -> demo
