(** Round-counting min-flooding — the "victim" algorithm for the network-
    knowledge lower bounds (Secs 3.2 and 3.3).

    Each node repeatedly broadcasts the smallest value it has seen, counting
    its own acks as rounds; after a target number of rounds it decides that
    minimum. The target is computed from the node's a-priori knowledge only
    (e.g. [n], or [D + 1]).

    Under the {e synchronous} scheduler of Sec 3.2, acks mark global
    lock-step rounds, values propagate one hop per round, and the algorithm
    solves consensus in any connected network whenever the target is at least
    the diameter — fully anonymously (messages carry no ids: 0 ids per
    message). That is precisely the premise of the indistinguishability
    proofs: Thm 3.3 pits the [`Knows_n] variant against the Fig 1 networks
    (same n, same D, split scheduler → agreement violation despite the
    algorithm being correct on network B), and Thm 3.9 pits the
    [`Knows_diameter] variant against K_D with the semi-synchronous scheduler
    (Fig 2). Under adversarial schedulers ack counting means nothing — which
    is the lesson. *)

type msg

type state

(** How many rounds to run before deciding:
    - [`Knows_n]: n rounds (n ≥ D in connected graphs) — the anonymous,
      knows-n-and-D victim of Thm 3.3;
    - [`Knows_diameter]: D + 1 rounds — the has-ids, knows-D, no-n victim of
      Thm 3.9;
    - [`Fixed r]: exactly [r] rounds.

    @raise Invalid_argument at [init] time if the required knowledge is not
    granted to the node. *)
val make :
  target:[ `Knows_n | `Knows_diameter | `Fixed of int ] ->
  (state, msg) Amac.Algorithm.t

val pp_msg : msg -> string
