type report = {
  agreement : bool;
  validity : bool;
  termination : bool;
  irrevocability : bool;
  decided_values : int list;
  problems : string list;
}

let check ~inputs (outcome : Amac.Engine.outcome) =
  let n = Array.length outcome.decisions in
  if Array.length inputs <> n then
    invalid_arg "Checker.check: inputs length mismatches outcome";
  let problems = ref [] in
  let problem fmt = Printf.ksprintf (fun s -> problems := s :: !problems) fmt in
  let decided_values =
    Array.to_list outcome.decisions
    |> List.filter_map (Option.map fst)
    |> List.sort_uniq Int.compare
  in
  let agreement =
    match decided_values with
    | [] | [ _ ] -> true
    | values ->
        problem "agreement violated: decided values {%s}"
          (String.concat "," (List.map string_of_int values));
        false
  in
  let input_values =
    Array.to_list inputs |> List.sort_uniq Int.compare
  in
  let validity =
    let invalid = List.filter (fun v -> not (List.mem v input_values)) decided_values in
    match invalid with
    | [] -> true
    | values ->
        problem "validity violated: decided {%s} not among inputs {%s}"
          (String.concat "," (List.map string_of_int values))
          (String.concat "," (List.map string_of_int input_values));
        false
  in
  let termination =
    let missing = ref [] in
    Array.iteri
      (fun i decision ->
        if (not outcome.crashed.(i)) && decision = None then
          missing := i :: !missing)
      outcome.decisions;
    match !missing with
    | [] -> true
    | nodes ->
        problem "termination violated: nodes {%s} never decided"
          (String.concat "," (List.rev_map string_of_int nodes));
        false
  in
  let irrevocability =
    match outcome.extra_decides with
    | [] -> true
    | extras ->
        List.iter
          (fun (node, value, time) ->
            problem "irrevocability violated: node %d re-decided %d at t=%d"
              node value time)
          extras;
        false
  in
  {
    agreement;
    validity;
    termination;
    irrevocability;
    decided_values;
    problems = List.rev !problems;
  }

let ok r = r.agreement && r.validity && r.termination && r.irrevocability

let safe r = r.agreement && r.validity && r.irrevocability

let pp fmt r =
  if ok r then
    Format.fprintf fmt "consensus ok (decided {%s})"
      (String.concat "," (List.map string_of_int r.decided_values))
  else
    Format.fprintf fmt "consensus violated:@;%a"
      (Format.pp_print_list ~pp_sep:Format.pp_print_space Format.pp_print_string)
      r.problems
