(** Multi-valued consensus from binary consensus — the reduction the paper
    treats as the baseline for its open problem (Sec 2: "a solution more
    efficient than agreeing on the bits of a general value, one by one,
    using binary consensus" is non-trivial and open; this module implements
    exactly that one-by-one reduction, carefully).

    Given any binary consensus algorithm for the model, [make] builds an
    algorithm deciding values in [\[0, 2^bits)]. Instances of the binary
    algorithm run sequentially, instance [j] agreeing on bit [j] (LSB
    first). The naive reduction — every node always proposes the bit of its
    own input — breaks {e validity}: the decided bit-vector can be a
    mixture matching no input. The fix is the classic candidate-adoption
    protocol:

    - every node maintains a {e candidate} (initially its input), and
      proposes the candidate's bit [j] to instance [j];
    - when bit [j] is decided, nodes whose candidate disagrees with the
      decided prefix must {e adopt}: by the binary algorithm's validity the
      decided bit was proposed by some node whose candidate matches the
      whole decided prefix, and each such node floods its candidate after
      the instance; inconsistent nodes adopt the first such candidate they
      hear (and re-flood it, so it propagates in multihop networks);
    - after the last bit, a node's candidate equals the decided bit-vector,
      which by induction is some node's input: validity holds.

    All instance traffic is multiplexed over the node's single MAC-layer
    channel (messages are tagged with their instance; future-instance
    messages from faster nodes are buffered and replayed).

    Works over any binary algorithm that terminates without crashes in the
    target topology class — e.g. [Two_phase.algorithm] for single hop,
    [Wpaxos.make ()] for multihop. Time is [bits] times the base
    algorithm's latency plus a candidate-flood round per bit. *)

type 'm msg

type ('s, 'm) state

(** [make ~bits base] — values are integers in [\[0, 2^bits)]; inputs
    outside that range are rejected at [init] time.
    @raise Invalid_argument if [bits < 1] or [bits > 30]. *)
val make :
  bits:int ->
  ('s, 'm) Amac.Algorithm.t ->
  (('s, 'm) state, 'm msg) Amac.Algorithm.t

(** [pp_msg pp_inner] renders the tagged wire format. *)
val pp_msg : ('m -> string) -> 'm msg -> string
