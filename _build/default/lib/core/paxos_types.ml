type pno = { tag : int; proposer : int }

let compare_pno a b =
  match Int.compare a.tag b.tag with
  | 0 -> Int.compare a.proposer b.proposer
  | c -> c

let pno_lt a b = compare_pno a b < 0

let pno_le a b = compare_pno a b <= 0

let pp_pno { tag; proposer } = Printf.sprintf "%d.%d" tag proposer

type prior = { pno : pno; value : int }

let max_prior a b =
  match (a, b) with
  | None, x | x, None -> x
  | Some pa, Some pb -> if pno_lt pa.pno pb.pno then b else a

let max_committed a b =
  match (a, b) with
  | None, x | x, None -> x
  | Some na, Some nb -> if pno_lt na nb then b else a

type proposer_msg = Prepare of pno | Propose of { pno : pno; value : int }

let pno_of_proposer_msg = function Prepare pno -> pno | Propose { pno; _ } -> pno

type round = Prepare_round | Propose_round

let round_rank = function Prepare_round -> 0 | Propose_round -> 1

let compare_proposition (pa, ra) (pb, rb) =
  match compare_pno pa pb with
  | 0 -> Int.compare (round_rank ra) (round_rank rb)
  | c -> c

type response = {
  dest : int;
  target : int;
  pno : pno;
  round : round;
  positive : bool;
  count : int;
  best_prior : prior option;
  committed : pno option;
}

let mergeable a b =
  a.dest = b.dest && a.target = b.target
  && compare_pno a.pno b.pno = 0
  && a.round = b.round && a.positive = b.positive

let merge a b =
  if not (mergeable a b) then invalid_arg "Paxos_types.merge: not mergeable";
  {
    a with
    count = a.count + b.count;
    best_prior = max_prior a.best_prior b.best_prior;
    committed = max_committed a.committed b.committed;
  }

let aggregate responses =
  let merged = ref [] in
  let absorb r =
    let rec place = function
      | [] -> [ r ]
      | existing :: rest ->
          if mergeable existing r then merge existing r :: rest
          else existing :: place rest
    in
    merged := place !merged
  in
  List.iter absorb responses;
  !merged

let pp_round = function Prepare_round -> "prep" | Propose_round -> "prop"

let pp_proposer_msg = function
  | Prepare pno -> Printf.sprintf "prepare(%s)" (pp_pno pno)
  | Propose { pno; value } -> Printf.sprintf "propose(%s,v=%d)" (pp_pno pno) value

let pp_response r =
  Printf.sprintf "resp{to=%d;tgt=%d;%s/%s;%s;x%d%s%s}" r.dest r.target
    (pp_pno r.pno) (pp_round r.round)
    (if r.positive then "yes" else "no")
    r.count
    (match r.best_prior with
    | None -> ""
    | Some p -> Printf.sprintf ";prior=%s:%d" (pp_pno p.pno) p.value)
    (match r.committed with
    | None -> ""
    | Some c -> Printf.sprintf ";comm=%s" (pp_pno c))

let proposer_msg_ids = function Prepare _ | Propose _ -> 1

let response_ids r =
  (* dest, target, pno.proposer, plus ids inside prior/committed. *)
  3
  + (match r.best_prior with None -> 0 | Some _ -> 1)
  + match r.committed with None -> 0 | Some _ -> 1
