(** Two-phase consensus for single hop networks (Sec 4.1, Algorithm 1).

    Solves binary consensus in a clique in O(F_ack) time — concretely, a node
    decides after exactly two of its own broadcasts complete plus however
    long it must wait for its witnesses' phase-2 messages, all of which are
    in flight by then, so every node decides within 3·F_ack (and within
    2·F_ack under schedulers that ack with the last delivery). Requires
    unique ids but {e no knowledge of n} and no knowledge of the participant
    set — impossible in the ack-free asynchronous broadcast model
    (Abboud et al.), which is the separation the paper highlights.

    How it works: each node broadcasts its value (phase 1); when that
    broadcast completes it knows whether it has seen evidence of the other
    value, fixing its {e status} — [decided v] (it saw only [v]) or
    [bivalent]. It then broadcasts its status (phase 2) and waits until it
    has a phase-2 message from every {e witness} — every node it has heard
    from at all. A bivalent node defers to any [decided] status it sees; with
    none in sight it decides the default 1. The witness wait is what makes a
    [decided(0)] node and a bivalent node impossible to separate: one of them
    always hears the other in time (Thm 4.1).

    {b Erratum.} Algorithm 1 as printed decides by checking for a
    [decided(0)] status in R2 only (line 23) — the messages received {e
    after} phase 1 completed. But a fast node's phase-2 [decided(0)] message
    can be delivered to a slow node {e before that node's phase-1 broadcast
    completes}, landing in R1: the printed rule then misses it, the slow node
    decides the default 1, and agreement is violated. The proof of Thm 4.1
    ("It will therefore see that u has a status of decided(0)") plainly
    intends the check to range over everything received, i.e. R1 ∪ R2.
    [algorithm] implements the corrected rule; [literal] implements the
    printed rule so the violating schedule can be demonstrated (see
    [test_two_phase.ml] and experiment E1). *)

type status = Bivalent | Decided_value of int

type msg =
  | Phase1 of { id : int; value : int }
  | Phase2 of { id : int; status : status }

type state

(** The corrected algorithm (decision check over R1 ∪ R2). *)
val algorithm : (state, msg) Amac.Algorithm.t

(** The algorithm exactly as printed in the paper (decision check over R2
    only) — exhibits an agreement violation under the schedule described
    above; kept for the erratum demonstration. *)
val literal : (state, msg) Amac.Algorithm.t

val pp_msg : msg -> string
