(** Types shared by the PAXOS logic and the wPAXOS support services
    (Sec 4.2).

    A proposal number is a (tag, proposer id) pair compared
    lexicographically; tags stay polynomial in n (Lemma 4.4). Acceptor
    responses are the unit the tree-aggregation machinery of Sec 4.2.1
    manipulates: responses of the same kind to the same proposition,
    traveling to the same parent, merge into one response carrying a count —
    plus the largest embedded prior proposal / committed number, which is all
    PAXOS's phase-2 value choice needs (footnote 6 of the paper). *)

(** Proposal numbers, ordered by tag then proposer id. *)
type pno = { tag : int; proposer : int }

val compare_pno : pno -> pno -> int

val pno_lt : pno -> pno -> bool

val pno_le : pno -> pno -> bool

val pp_pno : pno -> string

(** A previously accepted proposal, as reported in promises. *)
type prior = { pno : pno; value : int }

(** [max_prior a b] keeps the higher-numbered of two optional priors. *)
val max_prior : prior option -> prior option -> prior option

(** [max_committed a b] keeps the larger of two optional proposal numbers
    (used to aggregate the committed numbers piggybacked on rejections). *)
val max_committed : pno option -> pno option -> pno option

(** Proposer-originated messages, disseminated by flooding. *)
type proposer_msg =
  | Prepare of pno
  | Propose of { pno : pno; value : int }

val pno_of_proposer_msg : proposer_msg -> pno

(** Which proposition a response refers to. *)
type round = Prepare_round | Propose_round

(** Rounds of the same proposal number are ordered Prepare < Propose. *)
val compare_proposition : pno * round -> pno * round -> int

(** An (possibly aggregated) acceptor response traveling up the tree toward
    the proposer. [dest] is the id of the next hop (the responder's parent in
    the tree rooted at the proposer); every other receiver ignores it.
    [count] is how many acceptors this response stands for. *)
type response = {
  dest : int;
  target : int;  (** id of the proposer this responds to *)
  pno : pno;
  round : round;
  positive : bool;
  count : int;
  best_prior : prior option;
      (** among positive prepare responses: highest prior accepted *)
  committed : pno option;
      (** among negative responses: largest number already committed *)
}

(** [mergeable a b] — same destination, proposition and polarity. *)
val mergeable : response -> response -> bool

(** [merge a b] combines two mergeable responses: counts add, priors and
    committed numbers take the maximum.
    @raise Invalid_argument if [not (mergeable a b)]. *)
val merge : response -> response -> response

(** [aggregate responses] merges every mergeable pair in the list — the
    invariant maintained by an acceptor's outgoing queue. The total count per
    proposition is preserved (this is the conservation property behind
    Lemma 4.2). *)
val aggregate : response list -> response list

val pp_proposer_msg : proposer_msg -> string

val pp_response : response -> string

(** Ids carried by each payload, for the O(1)-ids-per-message accounting. *)
val proposer_msg_ids : proposer_msg -> int

val response_ids : response -> int
