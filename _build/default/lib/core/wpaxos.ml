open Paxos_types

type component =
  | Leader of int
  | Change of { counter : int; origin : int }
  | Search of { root : int; hops : int; sender : int }
  | Proposal of proposer_msg
  | Response of response
  | Decision of int

type msg = component list

module Instrument = struct
  (* Conservation accounting for Lemma 4.2: [generated] counts affirmative
     responses produced by acceptors, [counted] counts what proposers
     accumulate. The lemma says counted <= generated, per proposition. *)
  type key = { k_pno : pno; k_round : round }

  type t = {
    generated_tbl : (key, int) Hashtbl.t;
    counted_tbl : (key, int) Hashtbl.t;
  }

  let create () =
    { generated_tbl = Hashtbl.create 64; counted_tbl = Hashtbl.create 64 }

  let bump tbl key amount =
    let current = Option.value ~default:0 (Hashtbl.find_opt tbl key) in
    Hashtbl.replace tbl key (current + amount)

  let note_generated t ~pno ~round =
    bump t.generated_tbl { k_pno = pno; k_round = round } 1

  let note_counted t ~pno ~round ~count =
    bump t.counted_tbl { k_pno = pno; k_round = round } count

  let violations t =
    Hashtbl.fold
      (fun key counted acc ->
        let generated =
          Option.value ~default:0 (Hashtbl.find_opt t.generated_tbl key)
        in
        if counted > generated then
          (key.k_pno, key.k_round, generated, counted) :: acc
        else acc)
      t.counted_tbl []

  let total tbl = Hashtbl.fold (fun _ v acc -> acc + v) tbl 0

  let generated t = total t.generated_tbl

  let counted t = total t.counted_tbl

  let max_tag t =
    Hashtbl.fold
      (fun key _ acc -> max acc key.k_pno.tag)
      t.generated_tbl 0
end

type config = {
  leader_priority : bool;
  aggregate : bool;
  quorum : int option;  (* override of the majority threshold (footnote 1) *)
  instrument : Instrument.t option;
}

type proposer_phase =
  | Idle
  | Preparing of {
      pno : pno;
      mutable yes : int;
      mutable no : int;
      mutable best_prior : prior option;
    }
  | Proposing of {
      pno : pno;
      value : int;
      mutable yes : int;
      mutable no : int;
    }

(* An acceptor response waiting in the outgoing queue. The destination
   (parent in the tree rooted at [q_target]) is resolved when the response is
   dequeued for sending, so routing always uses the freshest parent pointer;
   an entry whose target has no known parent yet simply stays queued. *)
type pending_response = {
  q_target : int;
  q_pno : pno;
  q_round : round;
  q_positive : bool;
  mutable q_count : int;
  mutable q_prior : prior option;
  mutable q_committed : pno option;
}

type state = {
  me : int;
  n : int;
  input : int;
  cfg : config;
  (* leader election service (Alg 2) *)
  mutable omega : int;
  mutable leader_q : int option;
  (* change service (Alg 3) *)
  mutable lamport : int;
  mutable last_change : int * int;  (* (counter, origin); (-1,-1) = -inf *)
  mutable change_q : (int * int) option;
  (* tree building service (Alg 4) *)
  dist : (int, int) Hashtbl.t;
  parent : (int, int) Hashtbl.t;
  mutable tree_q : (int * int) list;  (* (root, hops to advertise) *)
  (* proposer *)
  mutable max_tag : int;
  mutable phase : proposer_phase;
  mutable attempts_left : int;
  mutable proposal_q : proposer_msg option;
  mutable best_proposal_seen : (pno * round) option;
  (* acceptor *)
  mutable promised : pno option;
  mutable accepted : prior option;
  mutable responded : (pno * round) option;
  mutable response_q : pending_response list;
  (* decision *)
  mutable decision : int option;
  mutable announced : bool;
  mutable decide_q : int option;
  (* transport *)
  mutable sending : bool;
}

let majority st =
  match st.cfg.quorum with Some q -> q | None -> (st.n / 2) + 1

(* Once this many acceptors rejected, yes can no longer reach a majority.
   (The paper says "a majority of the acceptors rejecting"; with even n a
   proposition can split n/2–n/2 and reach neither majority, so we fail at
   the exact can't-win point instead.) *)
let fail_threshold st = st.n - majority st + 1

let stamp_compare (ca, oa) (cb, ob) =
  match Int.compare ca cb with 0 -> Int.compare oa ob | c -> c

(* ------------------------------------------------------------------ *)
(* Broadcast service (Alg 5): pack one message per non-empty queue.    *)
(* ------------------------------------------------------------------ *)

let dequeue_tree st =
  match st.tree_q with
  | [] -> None
  | entries ->
      let chosen =
        if st.cfg.leader_priority then
          match List.find_opt (fun (root, _) -> root = st.omega) entries with
          | Some entry -> entry
          | None -> List.hd entries
        else List.hd entries
      in
      st.tree_q <- List.filter (fun e -> e <> chosen) st.tree_q;
      let root, hops = chosen in
      Some (Search { root; hops; sender = st.me })

(* Take the first response whose destination is routable; unroutable entries
   stay queued until a search message establishes the parent pointer. *)
let dequeue_response st =
  let rec pick acc = function
    | [] -> None
    | entry :: rest -> (
        match Hashtbl.find_opt st.parent entry.q_target with
        | Some parent_id ->
            st.response_q <- List.rev_append acc rest;
            Some
              (Response
                 {
                   dest = parent_id;
                   target = entry.q_target;
                   pno = entry.q_pno;
                   round = entry.q_round;
                   positive = entry.q_positive;
                   count = entry.q_count;
                   best_prior = entry.q_prior;
                   committed = entry.q_committed;
                 })
        | None -> pick (entry :: acc) rest)
  in
  pick [] st.response_q

let compose st =
  let components = ref [] in
  (match st.decide_q with
  | Some v ->
      st.decide_q <- None;
      components := Decision v :: !components
  | None -> ());
  (match dequeue_response st with
  | Some c -> components := c :: !components
  | None -> ());
  (match st.proposal_q with
  | Some p ->
      st.proposal_q <- None;
      components := Proposal p :: !components
  | None -> ());
  (match dequeue_tree st with
  | Some c -> components := c :: !components
  | None -> ());
  (match st.change_q with
  | Some (counter, origin) ->
      st.change_q <- None;
      components := Change { counter; origin } :: !components
  | None -> ());
  (match st.leader_q with
  | Some id ->
      st.leader_q <- None;
      components := Leader id :: !components
  | None -> ());
  !components

let maybe_send st =
  if st.sending then []
  else
    match compose st with
    | [] -> []
    | components ->
        st.sending <- true;
        [ Amac.Algorithm.Broadcast components ]

(* Wrap up a handler: emit a pending decide announcement, then try to send. *)
let finish st =
  let announce =
    match st.decision with
    | Some v when not st.announced ->
        st.announced <- true;
        [ Amac.Algorithm.Decide v ]
    | Some _ | None -> []
  in
  announce @ maybe_send st

(* ------------------------------------------------------------------ *)
(* PAXOS proposer and acceptor                                          *)
(* ------------------------------------------------------------------ *)

let decide st value =
  if st.decision = None then begin
    st.decision <- Some value;
    st.decide_q <- Some value;
    st.phase <- Idle
  end

(* Queue invariant (Sec 4.2.1): responses only for the current leader's
   largest proposal number. *)
let prune_response_q st =
  st.response_q <-
    List.filter (fun entry -> entry.q_target = st.omega) st.response_q;
  let largest =
    List.fold_left
      (fun acc entry ->
        match acc with
        | None -> Some entry.q_pno
        | Some best -> if pno_lt best entry.q_pno then Some entry.q_pno else acc)
      None st.response_q
  in
  match largest with
  | None -> ()
  | Some best ->
      st.response_q <-
        List.filter (fun entry -> compare_pno entry.q_pno best = 0) st.response_q

let enqueue_response st ~target ~pno ~round ~positive ~count ~prior ~committed =
  let entry =
    {
      q_target = target;
      q_pno = pno;
      q_round = round;
      q_positive = positive;
      q_count = count;
      q_prior = prior;
      q_committed = committed;
    }
  in
  let mergeable existing =
    existing.q_target = entry.q_target
    && compare_pno existing.q_pno entry.q_pno = 0
    && existing.q_round = entry.q_round
    && existing.q_positive = entry.q_positive
  in
  (if st.cfg.aggregate then
     match List.find_opt mergeable st.response_q with
     | Some existing ->
         existing.q_count <- existing.q_count + entry.q_count;
         existing.q_prior <- max_prior existing.q_prior entry.q_prior;
         existing.q_committed <- max_committed existing.q_committed entry.q_committed
     | None -> st.response_q <- st.response_q @ [ entry ]
   else st.response_q <- st.response_q @ [ entry ]);
  prune_response_q st

let note_counted st ~pno ~round ~count =
  match st.cfg.instrument with
  | Some instrument when count > 0 ->
      Instrument.note_counted instrument ~pno ~round ~count
  | Some _ | None -> ()

let rec generate_proposal st =
  if st.decision = None && st.omega = st.me then begin
    st.max_tag <- st.max_tag + 1;
    let pno = { tag = st.max_tag; proposer = st.me } in
    st.phase <- Preparing { pno; yes = 0; no = 0; best_prior = None };
    let message = Prepare pno in
    st.proposal_q <- Some message;
    st.best_proposal_seen <- Some (pno, Prepare_round);
    self_respond st message
  end

(* The change service's UpdateQ (Alg 3): enqueue the stamp and, at the
   leader, generate a fresh proposal. *)
and change_updateq st stamp =
  st.change_q <- Some stamp;
  if st.omega = st.me && st.decision = None then begin
    st.attempts_left <- 1;
    generate_proposal st
  end

(* ONCHANGE (Alg 3): omega or a dist entry was updated locally. *)
and local_change st =
  st.lamport <- st.lamport + 1;
  let stamp = (st.lamport, st.me) in
  st.last_change <- stamp;
  change_updateq st stamp

(* A proposition failed with a majority of rejections. The paper allows one
   immediate retry per change notification; past that we raise a fresh local
   change (documented deviation — see the .mli), which floods and resets the
   budget. Each retry sets the tag above every committed number learned, so
   the retry chain terminates. *)
and proposition_failed st =
  if st.omega = st.me && st.decision = None then begin
    if st.attempts_left > 0 then begin
      st.attempts_left <- st.attempts_left - 1;
      generate_proposal st
    end
    else local_change st
  end
  else st.phase <- Idle

and start_propose st ~pno ~best_prior =
  let value =
    match best_prior with Some prior -> prior.value | None -> st.input
  in
  st.phase <- Proposing { pno; value; yes = 0; no = 0 };
  let message = Propose { pno; value } in
  st.proposal_q <- Some message;
  st.best_proposal_seen <- Some (pno, Propose_round);
  self_respond st message

(* Proposer-side counting of (aggregated) responses addressed to us. *)
and count_response st (r : response) =
  match st.phase with
  | Preparing p when compare_pno p.pno r.pno = 0 && r.round = Prepare_round ->
      if r.positive then begin
        note_counted st ~pno:r.pno ~round:r.round ~count:r.count;
        p.yes <- p.yes + r.count;
        p.best_prior <- max_prior p.best_prior r.best_prior;
        if p.yes >= majority st then
          start_propose st ~pno:p.pno ~best_prior:p.best_prior
      end
      else begin
        p.no <- p.no + r.count;
        (match r.committed with
        | Some committed -> st.max_tag <- max st.max_tag committed.tag
        | None -> ());
        if p.no >= fail_threshold st then proposition_failed st
      end
  | Proposing p when compare_pno p.pno r.pno = 0 && r.round = Propose_round ->
      if r.positive then begin
        note_counted st ~pno:r.pno ~round:r.round ~count:r.count;
        p.yes <- p.yes + r.count;
        if p.yes >= majority st then decide st p.value
      end
      else begin
        p.no <- p.no + r.count;
        (match r.committed with
        | Some committed -> st.max_tag <- max st.max_tag committed.tag
        | None -> ());
        if p.no >= fail_threshold st then proposition_failed st
      end
  | Idle | Preparing _ | Proposing _ -> ()

(* Acceptor logic. Returns the response this acceptor generates, already
   noted in the instrumentation. *)
and acceptor_respond st (message : proposer_msg) =
  let pno = pno_of_proposer_msg message in
  let ok =
    match st.promised with None -> true | Some p -> pno_le p pno
  in
  let round, positive, prior, committed =
    match message with
    | Prepare _ ->
        if ok then begin
          st.promised <- Some pno;
          (Prepare_round, true, st.accepted, None)
        end
        else (Prepare_round, false, None, st.promised)
    | Propose { value; _ } ->
        if ok then begin
          st.promised <- Some pno;
          st.accepted <- Some { pno; value };
          (Propose_round, true, None, None)
        end
        else (Propose_round, false, None, st.promised)
  in
  st.responded <- Some (pno, round);
  (match st.cfg.instrument with
  | Some instrument when positive ->
      Instrument.note_generated instrument ~pno ~round
  | Some _ | None -> ());
  (round, positive, prior, committed)

(* The proposer's own acceptor answers directly, skipping the queue. *)
and self_respond st (message : proposer_msg) =
  let pno = pno_of_proposer_msg message in
  let round, positive, prior, committed = acceptor_respond st message in
  count_response st
    {
      dest = st.me;
      target = st.me;
      pno;
      round;
      positive;
      count = 1;
      best_prior = prior;
      committed;
    }

(* ------------------------------------------------------------------ *)
(* Component handlers                                                   *)
(* ------------------------------------------------------------------ *)

let on_leader st id =
  if id > st.omega then begin
    st.omega <- id;
    st.leader_q <- Some id;
    (* ONLEADERCHANGE: the proposer stands down and both PAXOS queues keep
       only current-leader content. *)
    st.phase <- Idle;
    (match st.proposal_q with
    | Some p when (pno_of_proposer_msg p).proposer <> st.omega ->
        st.proposal_q <- None
    | Some _ | None -> ());
    prune_response_q st;
    (* Omega was updated: a change event (Alg 3). *)
    local_change st
  end

let on_change st ~counter ~origin =
  st.lamport <- max st.lamport counter;
  let stamp = (counter, origin) in
  if stamp_compare stamp st.last_change > 0 then begin
    st.last_change <- stamp;
    change_updateq st stamp
  end

let on_search st ~root ~hops ~sender =
  let current =
    Option.value ~default:max_int (Hashtbl.find_opt st.dist root)
  in
  if hops < current then begin
    Hashtbl.replace st.dist root hops;
    Hashtbl.replace st.parent root sender;
    (* UpdateQ (Alg 4): FIFO, one queued search per root, smallest hop
       count; the leader's entry is pulled to the front at dequeue time. *)
    st.tree_q <-
      List.filter (fun (r, _) -> r <> root) st.tree_q @ [ (root, hops + 1) ];
    (* A change event (Alg 3) — but only for the distance to the CURRENT
       leader. This is the reading Lemma 4.5's GST argument needs: changes
       stop once the leader election and the leader's tree stabilize
       (O(D*F_ack)), even though background trees for other roots keep
       refining for Theta(n*F_ack). Firing on every root's dist update
       would keep regenerating proposals over that whole window and inflate
       decision latency from O(D*F_ack) to Theta(n*F_ack). *)
    if root = st.omega then local_change st
  end

let proposition_gt a b =
  match b with None -> true | Some b -> compare_proposition a b > 0

let on_proposal st (message : proposer_msg) =
  let pno = pno_of_proposer_msg message in
  st.max_tag <- max st.max_tag pno.tag;
  if pno.proposer = st.omega && pno.proposer <> st.me then begin
    let round =
      match message with Prepare _ -> Prepare_round | Propose _ -> Propose_round
    in
    (* Flooding with the proposer-queue invariant: forward the first copy of
       each proposition, keeping only the largest from the current leader. *)
    if proposition_gt (pno, round) st.best_proposal_seen then begin
      st.best_proposal_seen <- Some (pno, round);
      st.proposal_q <- Some message
    end;
    (* Acceptor: respond once per proposition, routed up the leader's tree. *)
    if proposition_gt (pno, round) st.responded then begin
      let round, positive, prior, committed = acceptor_respond st message in
      enqueue_response st ~target:pno.proposer ~pno ~round ~positive ~count:1
        ~prior ~committed
    end
  end

let on_response st (r : response) =
  if r.dest = st.me then
    if r.target = st.me then count_response st r
    else if r.target = st.omega then
      (* Relay hop: re-enqueue toward our own parent, aggregating. *)
      enqueue_response st ~target:r.target ~pno:r.pno ~round:r.round
        ~positive:r.positive ~count:r.count ~prior:r.best_prior
        ~committed:r.committed

let on_decision st value =
  if st.decision = None then begin
    st.decision <- Some value;
    st.decide_q <- Some value;
    st.phase <- Idle
  end

(* ------------------------------------------------------------------ *)
(* Algorithm wiring                                                     *)
(* ------------------------------------------------------------------ *)

let init cfg (ctx : Amac.Algorithm.ctx) =
  let n =
    match ctx.n with
    | Some n -> n
    | None -> invalid_arg "Wpaxos: requires knowledge of n (see Thm 3.9)"
  in
  let me = Amac.Node_id.unique_exn ctx.id in
  let st =
    {
      me;
      n;
      input = ctx.input;
      cfg;
      omega = me;
      leader_q = Some me;
      lamport = 0;
      last_change = (-1, -1);
      change_q = None;
      dist = Hashtbl.create 16;
      parent = Hashtbl.create 16;
      tree_q = [ (me, 1) ];
      max_tag = 0;
      phase = Idle;
      attempts_left = 1;
      proposal_q = None;
      best_proposal_seen = None;
      promised = None;
      accepted = None;
      responded = None;
      response_q = [];
      decision = None;
      announced = false;
      decide_q = None;
      sending = false;
    }
  in
  Hashtbl.replace st.dist me 0;
  Hashtbl.replace st.parent me me;
  (* Initialisation counts as a change (omega and dist were just set): every
     node starts as its own leader and issues an initial proposal. *)
  local_change st;
  (st, finish st)

let on_receive _ctx st (components : msg) =
  (* Leader updates first so later components in the same broadcast are
     judged against the freshest omega. *)
  let rank = function
    | Leader _ -> 0
    | Change _ -> 1
    | Search _ -> 2
    | Proposal _ -> 3
    | Response _ -> 4
    | Decision _ -> 5
  in
  let ordered =
    List.sort (fun a b -> Int.compare (rank a) (rank b)) components
  in
  List.iter
    (fun component ->
      match component with
      | Leader id -> on_leader st id
      | Change { counter; origin } -> on_change st ~counter ~origin
      | Search { root; hops; sender } -> on_search st ~root ~hops ~sender
      | Proposal p -> on_proposal st p
      | Response r -> on_response st r
      | Decision v -> on_decision st v)
    ordered;
  finish st

let on_ack _ctx st =
  st.sending <- false;
  finish st

let component_ids = function
  | Leader _ -> 1
  | Change _ -> 1
  | Search _ -> 2
  | Proposal p -> proposer_msg_ids p
  | Response r -> response_ids r
  | Decision _ -> 0

let msg_ids components =
  List.fold_left (fun acc c -> acc + component_ids c) 0 components

let pp_component = function
  | Leader id -> Printf.sprintf "leader(%d)" id
  | Change { counter; origin } -> Printf.sprintf "change(%d@%d)" counter origin
  | Search { root; hops; sender } ->
      Printf.sprintf "search(root=%d,h=%d,from=%d)" root hops sender
  | Proposal p -> pp_proposer_msg p
  | Response r -> pp_response r
  | Decision v -> Printf.sprintf "decide(%d)" v

let pp_msg components = String.concat "+" (List.map pp_component components)

let make ?(leader_priority = true) ?(aggregate = true) ?quorum ?instrument ()
    =
  (match quorum with
  | Some q when q < 1 -> invalid_arg "Wpaxos.make: quorum must be >= 1"
  | Some _ | None -> ());
  let cfg = { leader_priority; aggregate; quorum; instrument } in
  {
    Amac.Algorithm.name =
      (if leader_priority && aggregate then "wpaxos"
       else
         Printf.sprintf "wpaxos[prio=%b,agg=%b]" leader_priority aggregate);
    init = init cfg;
    on_receive;
    on_ack;
    msg_ids;
  }
