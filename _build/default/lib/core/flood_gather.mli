(** The "simple flooding" baseline the paper argues against (Sec 1, 4.2).

    With unique ids, knowledge of n and no crash failures, consensus is
    information-theoretically easy: flood every (id, value) pair, wait until
    all n are known, decide the minimum value. The catch is the model's
    bounded message size — each broadcast carries at most [pairs_per_msg]
    pairs — so a bottleneck node with Ω(n) pairs to forward needs Ω(n)
    sequential broadcasts: Θ(n · F_ack) on stars and similar topologies.
    This is the O(n · F_ack) strawman whose cost wPAXOS's aggregation trees
    eliminate (experiment E3). *)

type msg

type state

(** [make ~pairs_per_msg ()] — default [pairs_per_msg] is 2, honouring the
    O(1)-unique-ids-per-message restriction.
    @raise Invalid_argument if [pairs_per_msg < 1]. *)
val make : ?pairs_per_msg:int -> unit -> (state, msg) Amac.Algorithm.t

val pp_msg : msg -> string
