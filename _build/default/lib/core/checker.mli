(** Verification of the consensus properties over an engine outcome.

    Checks the three properties of Sec 2 — agreement, validity,
    termination — plus irrevocability of the decide action. Used by every
    test and by the impossibility demonstrations, where a {e failing} report
    is the expected artifact (the whole point of E5/E6 is exhibiting an
    agreement violation). *)

type report = {
  agreement : bool;  (** no two nodes decided different values *)
  validity : bool;  (** every decided value was some node's input *)
  termination : bool;  (** every non-crashed node decided *)
  irrevocability : bool;  (** no node decided twice with different values *)
  decided_values : int list;  (** distinct decided values, sorted *)
  problems : string list;  (** human-readable explanations, empty when ok *)
}

(** [check ~inputs outcome] — [inputs] must be the array the run started
    with. *)
val check : inputs:int array -> Amac.Engine.outcome -> report

(** [ok report] — all four properties hold. *)
val ok : report -> bool

(** [safe report] — agreement, validity and irrevocability hold (termination
    not required); the right notion when a run was cut off by [max_time]. *)
val safe : report -> bool

val pp : Format.formatter -> report -> unit
