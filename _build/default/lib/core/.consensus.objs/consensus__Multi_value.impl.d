lib/core/multi_value.ml: Amac Array List Printf
