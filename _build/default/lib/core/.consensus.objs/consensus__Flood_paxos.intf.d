lib/core/flood_paxos.mli: Amac
