lib/core/multi_value.mli: Amac
