lib/core/flood_gather.mli: Amac
