lib/core/ben_or.mli: Amac
