lib/core/paxos_types.ml: Int List Printf
