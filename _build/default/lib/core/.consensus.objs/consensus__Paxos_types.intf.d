lib/core/paxos_types.mli:
