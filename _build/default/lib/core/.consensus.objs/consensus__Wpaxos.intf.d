lib/core/wpaxos.mli: Amac Paxos_types
