lib/core/checker.mli: Amac Format
