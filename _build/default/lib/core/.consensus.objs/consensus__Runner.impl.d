lib/core/runner.ml: Amac Array Checker Format Printf String
