lib/core/two_phase.mli: Amac
