lib/core/runner.mli: Amac Checker
