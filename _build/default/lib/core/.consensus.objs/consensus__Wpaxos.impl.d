lib/core/wpaxos.ml: Amac Hashtbl Int List Option Paxos_types Printf String
