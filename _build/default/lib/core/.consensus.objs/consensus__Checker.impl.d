lib/core/checker.ml: Amac Array Format Int List Option Printf String
