lib/core/ben_or.ml: Amac Hashtbl List Printf
