lib/core/flood_gather.ml: Amac Hashtbl List Printf String
