lib/core/flood_paxos.ml: Amac Hashtbl Int List Paxos_types Printf String
