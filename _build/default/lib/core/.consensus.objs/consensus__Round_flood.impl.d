lib/core/round_flood.ml: Amac Printf
