lib/core/round_flood.mli: Amac
