lib/core/two_phase.ml: Amac Int List Printf
