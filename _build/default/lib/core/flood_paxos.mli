(** PAXOS over naive flooding — the O(n · F_ack) comparator of Sec 4.2.

    Identical high-level logic to {!Wpaxos} (same proposer/acceptor rules,
    same leader-election and change services), but acceptor responses are
    {e flooded individually} instead of aggregated up a routing tree: every
    response is a separate unit carrying its responder's id, every node
    re-broadcasts each unit once, and a message carries at most one unit.
    A proposer waiting on a majority must therefore receive Θ(n) distinct
    units, and any bottleneck node must forward Θ(n) units one broadcast at
    a time — the paper's argument for why "PAXOS + basic flooding" costs
    O(n · F_ack) and why the stabilising tree services are the actual
    contribution (experiments E3 and E9). *)

type msg

type state

val make : unit -> (state, msg) Amac.Algorithm.t

val pp_msg : msg -> string
