examples/beyond_the_paper.mli:
