examples/beyond_the_paper.ml: Amac Array Consensus Format List Printf String
