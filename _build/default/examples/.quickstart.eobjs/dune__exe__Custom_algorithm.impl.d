examples/custom_algorithm.ml: Amac Consensus Format List Lowerbound Option Printf String
