examples/sensor_field.ml: Amac Array Consensus List Printf String
