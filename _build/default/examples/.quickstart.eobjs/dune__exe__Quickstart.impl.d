examples/quickstart.ml: Amac Array Consensus Format Printf String
