examples/quickstart.mli:
