examples/adversarial.ml: Amac Consensus Format List Lowerbound Printf String
