examples/adversarial.mli:
