(* A multihop deployment scenario: a 10x10 grid of battery-powered sensors
   must agree whether to raise a field-wide alarm (binary consensus), using
   wPAXOS (Sec 4.2 of the paper) over the abstract MAC layer.

     dune exec examples/sensor_field.exe

   The radios only reach their grid neighbors (multihop, D = 18); a handful
   of sensors detected the event (input 1), the rest did not (input 0).
   wPAXOS elects a leader, grows a shortest-path tree around it, aggregates
   acceptor responses up the tree, and decides in O(D * F_ack) — here we
   also run the naive flood-gather baseline to show what the tree buys. *)

let () =
  let width = 10 and height = 10 in
  let topology = Amac.Topology.grid ~width ~height in
  let n = Amac.Topology.size topology in
  let diameter = Amac.Topology.diameter topology in
  let fack = 4 in
  let rng = Amac.Rng.create 7 in
  let scheduler = Amac.Scheduler.random rng ~fack in

  (* Sensors 13, 47, 71 detected the event. *)
  let inputs = Array.make n 0 in
  List.iter (fun s -> inputs.(s) <- 1) [ 13; 47; 71 ];

  Printf.printf "Sensor field: %dx%d grid, n=%d, D=%d, F_ack=%d\n" width
    height n diameter fack;
  Printf.printf "Detections at sensors 13, 47, 71.\n\n";

  let show name (result : Consensus.Runner.result) =
    Printf.printf "%-22s decided {%s} at t=%s | %6d broadcasts, %d ids/msg max\n"
      name
      (String.concat ","
         (List.map string_of_int result.report.decided_values))
      (match result.decision_time with
      | Some t -> string_of_int t
      | None -> "never")
      result.outcome.broadcasts result.outcome.max_ids_per_message;
    if not (Consensus.Checker.ok result.report) then
      Printf.printf "  PROBLEMS: %s\n"
        (String.concat "; " result.report.problems)
  in

  show "wPAXOS"
    (Consensus.Runner.run (Consensus.Wpaxos.make ()) ~topology ~scheduler
       ~inputs ~max_time:200_000);

  (* Same field, same inputs, naive baseline: every sensor floods all 100
     (id, value) pairs, two per message. *)
  show "flood-gather"
    (Consensus.Runner.run
       (Consensus.Flood_gather.make ())
       ~topology
       ~scheduler:(Amac.Scheduler.random (Amac.Rng.create 7) ~fack)
       ~inputs ~max_time:200_000);

  (* A straggler in the middle of the field: PAXOS only needs a majority of
     acceptors, so one slow sensor does not slow the decision much. *)
  let slow = Amac.Scheduler.slow_node ~fack:60 ~node:55 in
  show "wPAXOS + straggler"
    (Consensus.Runner.run (Consensus.Wpaxos.make ()) ~topology ~scheduler:slow
       ~inputs ~max_time:200_000);

  Printf.printf
    "\nOn a well-connected grid both approaches are fine (flooding has many\n\
     parallel paths). The paper's separation appears when the field drains\n\
     through a relay hub — same sensors, hub-and-spokes wiring:\n\n";

  (* Hub topology: every arm of sensors reaches the rest through one relay.
     Fixed D, so wPAXOS's O(D * F_ack) is flat, while flood-gather must push
     all n pairs through the hub two at a time: Theta(n * F_ack). *)
  List.iter
    (fun arms ->
      let topology = Amac.Topology.star_of_lines ~arms ~arm_len:4 in
      let n = Amac.Topology.size topology in
      let inputs = Array.make n 0 in
      inputs.(1) <- 1;
      let run algo =
        Consensus.Runner.run algo ~topology
          ~scheduler:(Amac.Scheduler.fixed ~delay:fack)
          ~inputs ~max_time:500_000
      in
      let wp = run (Consensus.Wpaxos.make ()) in
      let fg = run (Consensus.Flood_gather.make ()) in
      Printf.printf
        "  hub, %3d sensors (D=8): wPAXOS t=%-4s flood-gather t=%-4s\n" n
        (match wp.decision_time with Some t -> string_of_int t | None -> "-")
        (match fg.decision_time with Some t -> string_of_int t | None -> "-"))
    [ 4; 16; 48 ];
  Printf.printf
    "\nwPAXOS stays near D * F_ack = %d as the field grows; the flooding\n\
     baseline scales with n — Sec 4.2's motivation (see bench E3).\n"
    (8 * fack)
