(* The paper's lower bounds, executed. Three demonstrations:

     dune exec examples/adversarial.exe

   1. Thm 3.3 / Fig 1 — anonymity is fatal: an anonymous algorithm that is
      provably correct on network B (same n, same D) is split-scheduled
      into an agreement violation on network A.
   2. Thm 3.9 / Fig 2 — not knowing n is fatal in multihop networks: an
      algorithm with ids and knowledge of D is driven into disagreement on
      K_D.
   3. Thm 3.2 / FLP — one crash is fatal: exhaustive search over valid-step
      schedules finds a crash placement that blocks two-phase consensus
      forever (and verifies that no 1-crash schedule breaks agreement). *)

let rule title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

let () =
  rule "1. Thm 3.3 (Fig 1): consensus without unique ids";
  let f = Lowerbound.Indist.fig1_demo ~diameter:10 ~n:30 in
  Printf.printf
    "Networks A and B: |A|=%d |B|=%d, diameter 10 each (Claim 3.4).\n"
    (Amac.Topology.size f.instance.network_a)
    (Amac.Topology.size f.instance.network_b);
  Printf.printf
    "Victim: anonymous min-flooding, n rounds (correct on B: %b; decides by \
     t=%d/%d).\n"
    f.b_ok f.b_decide_time_0 f.b_decide_time_1;
  Printf.printf
    "On network A with q silenced: gadget A0 decides %s, gadget A1 decides \
     %s.\n"
    (String.concat "," (List.map string_of_int f.a0_values))
    (String.concat "," (List.map string_of_int f.a1_values));
  Printf.printf "Agreement violated: %b\n" (not f.a_report.agreement);

  rule "2. Thm 3.9 (Fig 2): consensus without knowledge of n";
  let k = Lowerbound.Indist.kd_demo ~diameter:8 in
  Printf.printf
    "Victim: min-flooding for D+1 rounds with unique ids (correct on the \
     standalone line: %b).\n"
    k.line_ok;
  Printf.printf
    "On K_D with the semi-synchronous scheduler: L1 decides %s, L2 decides \
     %s.\n"
    (String.concat "," (List.map string_of_int k.l1_values))
    (String.concat "," (List.map string_of_int k.l2_values));
  Printf.printf "Agreement violated: %b\n" (not k.kd_report.agreement);

  rule "3. Thm 3.2 (FLP): consensus with one crash failure";
  let explorer =
    Lowerbound.Bivalence.create Consensus.Two_phase.algorithm
      ~topology:(Amac.Topology.clique 3)
      ~inputs:[| 0; 1; 1 |]
  in
  (match Lowerbound.Bivalence.initial_verdict explorer with
  | Bivalent -> Printf.printf "Initial configuration [0;1;1] is bivalent.\n"
  | Univalent v -> Printf.printf "Initial configuration univalent(%d)?!\n" v
  | Blocked -> Printf.printf "Initial configuration blocked?!\n");
  (match
     Lowerbound.Bivalence.find_termination_violation explorer ~max_crashes:1
       ~max_depth:25 ()
   with
  | Some schedule ->
      Printf.printf
        "Found a 1-crash schedule (%d steps) after which a live node waits \
         forever:\n  %s\n"
        (List.length schedule)
        (String.concat " "
           (List.map
              (Format.asprintf "%a" Lowerbound.Bivalence.pp_step)
              schedule))
  | None -> Printf.printf "No termination violation found (unexpected).\n");
  (match
     Lowerbound.Bivalence.find_agreement_violation explorer ~max_crashes:1
       ~max_depth:20 ~max_configs:100_000 ()
   with
  | None ->
      Printf.printf
        "Bounded-exhaustive search: no 1-crash schedule violates agreement \
         — the crash kills liveness, not safety.\n"
  | Some _ -> Printf.printf "Agreement violation found (unexpected!).\n");

  rule "4. Bonus: the Algorithm 1 erratum";
  let e = Lowerbound.Erratum.two_phase_demo () in
  Printf.printf
    "Printed pseudocode (decision check over R2 only): node decisions %s — \
     agreement %b.\n"
    (String.concat ", "
       (List.map
          (fun (node, v) -> Printf.sprintf "%d->%d" node v)
          e.literal_decisions))
    e.literal_report.agreement;
  Printf.printf "Corrected rule (check over R1 u R2): ok = %b.\n"
    (Consensus.Checker.ok e.corrected_report)
