(* Quickstart: two-phase consensus (Algorithm 1 of the paper) on a 5-node
   single hop network, with an annotated trace.

     dune exec examples/quickstart.exe

   Five radios in range of each other must agree on a binary value. Each
   only knows its own id and input — not how many others there are. The
   MAC layer below them delivers broadcasts in adversarial order, bounded
   only by an (unknown) F_ack. *)

let () =
  let n = 5 in
  let topology = Amac.Topology.clique n in
  (* A randomized scheduler standing in for a busy CSMA channel: every
     broadcast completes within F_ack = 6 ticks, deliveries in any order. *)
  let scheduler = Amac.Scheduler.random (Amac.Rng.create 2024) ~fack:6 in
  let inputs = [| 0; 1; 1; 0; 1 |] in

  Printf.printf "Topology: %d-clique (single hop). Inputs: %s\n" n
    (String.concat " "
       (Array.to_list (Array.map string_of_int inputs)));
  Printf.printf "Scheduler: %s (F_ack unknown to the nodes)\n\n"
    scheduler.name;

  let result =
    Consensus.Runner.run Consensus.Two_phase.algorithm ~topology ~scheduler
      ~inputs ~give_n:false (* two-phase does not need to know n! *)
      ~record_trace:true ~pp_msg:Consensus.Two_phase.pp_msg
  in

  Printf.printf "--- trace ---\n%s--- end trace ---\n\n"
    (Format.asprintf "%a" Amac.Trace.pp result.outcome.trace);

  Printf.printf
    "Timeline (B broadcast, r receive, a ack, D decide, ~ discarded):\n%s\n"
    (Amac.Trace.timeline ~n result.outcome.trace);

  Array.iteri
    (fun node decision ->
      match decision with
      | Some (value, time) ->
          Printf.printf "node %d decided %d at t=%d\n" node value time
      | None -> Printf.printf "node %d never decided\n" node)
    result.outcome.decisions;

  Printf.printf "\nChecker: %s\n"
    (Format.asprintf "%a" Consensus.Checker.pp result.report);
  Printf.printf
    "Broadcasts: %d, deliveries: %d, max ids per message: %d\n"
    result.outcome.broadcasts result.outcome.deliveries
    result.outcome.max_ids_per_message;
  match result.decision_time with
  | Some t ->
      Printf.printf
        "Consensus latency: %d ticks — at most 3 x F_ack = 18, regardless \
         of n (Thm 4.1).\n"
        t
  | None -> ()
