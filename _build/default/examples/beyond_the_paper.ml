(* Beyond the paper: the three future-work directions of Sec 5, plus the
   footnote-1 quorum knob and the Sec 2 multi-valued open problem.

     dune exec examples/beyond_the_paper.exe

   1. Randomized consensus (Ben-Or) survives the crash schedule that kills
      deterministic two-phase consensus (future work 3).
   2. The dual-graph model with unreliable links: safety is free, liveness
      is the open question (future work 1).
   3. wPAXOS with partial knowledge of n (footnote 1): a quorum above n/2
      suffices; one at or below n/2 splits the brain.
   4. Multi-valued consensus by bit-by-bit binary consensus (the Sec 2
      baseline reduction, with candidate adoption for validity). *)

let rule title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

let () =
  rule "1. Randomness vs crashes (Ben-Or over the MAC layer)";
  let crash_schedule = [ (2, 5) ] in
  let inputs = [| 0; 1; 1 |] in
  let two_phase =
    Consensus.Runner.run Consensus.Two_phase.algorithm
      ~topology:(Amac.Topology.clique 3)
      ~scheduler:(Amac.Scheduler.fixed ~delay:4)
      ~inputs ~crashes:crash_schedule ~max_time:2_000
  in
  Printf.printf
    "two-phase, crash(node 2 @ t=5): termination=%b (blocked forever; \
     safety intact=%b)\n"
    two_phase.report.termination
    (Consensus.Checker.safe two_phase.report);
  let ben_or =
    Consensus.Runner.run
      (Consensus.Ben_or.make ~seed:11 ())
      ~topology:(Amac.Topology.clique 3)
      ~scheduler:(Amac.Scheduler.fixed ~delay:4)
      ~inputs ~crashes:crash_schedule ~max_time:200_000
  in
  Printf.printf "ben-or,   same crash: %s (t=%s)\n"
    (Format.asprintf "%a" Consensus.Checker.pp ben_or.report)
    (match ben_or.decision_time with Some t -> string_of_int t | None -> "-");

  rule "2. Unreliable links (the dual-graph model)";
  let n = 12 in
  let reliable = Amac.Topology.line n in
  let chords = Amac.Topology.of_edges ~n [ (0, 6); (2, 9); (4, 11); (1, 7) ] in
  List.iter
    (fun p ->
      let safe = ref 0 and ok = ref 0 in
      for seed = 1 to 10 do
        let scheduler =
          Amac.Scheduler.bernoulli_unreliable
            (Amac.Rng.create (seed + 40))
            ~p
            (Amac.Scheduler.random (Amac.Rng.create seed) ~fack:4)
        in
        let result =
          Consensus.Runner.run (Consensus.Wpaxos.make ()) ~topology:reliable
            ~scheduler ~unreliable:chords
            ~inputs:(Consensus.Runner.inputs_alternating ~n)
            ~max_time:100_000
        in
        if Consensus.Checker.safe result.report then incr safe;
        if Consensus.Checker.ok result.report then incr ok
      done;
      Printf.printf
        "wPAXOS on line-12 + 4 chords delivering with p=%.1f: safe %d/10, \
         fully live %d/10\n"
        p !safe !ok)
    [ 0.0; 0.3; 0.7 ];
  Printf.printf
    "(safety never breaks; liveness under flaky links is exactly the \
     question Sec 5 leaves open)\n";

  rule "3. Partial knowledge of n (footnote 1)";
  (* Two 5-cliques joined at their lowest-id nodes; partition the bridge. *)
  let edges = ref [ (0, 5) ] in
  for u = 0 to 4 do
    for v = u + 1 to 4 do
      edges := (u, v) :: (u + 5, v + 5) :: !edges
    done
  done;
  let topology = Amac.Topology.of_edges ~n:10 !edges in
  let inputs = Array.init 10 (fun i -> if i < 5 then 0 else 1) in
  let cut ~sender ~receiver =
    (sender = 0 && receiver = 5) || (sender = 5 && receiver = 0)
  in
  let scheduler = Amac.Scheduler.delayed_cut ~base_fack:2 ~until:5000 ~cut in
  List.iter
    (fun quorum ->
      let result =
        Consensus.Runner.run
          (Consensus.Wpaxos.make ~quorum ())
          ~topology ~scheduler ~inputs ~max_time:500_000
      in
      Printf.printf "quorum=%2d: agreement=%b decided={%s}\n" quorum
        result.report.agreement
        (String.concat ","
           (List.map string_of_int result.report.decided_values)))
    [ 4; 6; 8 ];
  Printf.printf
    "(4 <= n/2: the partitioned cliques each assemble a \"quorum\" and \
     split; >n/2 quorums always intersect)\n";

  rule "4. Multi-valued consensus, bit by bit (Sec 2's baseline reduction)";
  let inputs = [| 14; 11; 8; 5; 2 |] in
  let algorithm =
    Consensus.Multi_value.make ~bits:4 Consensus.Two_phase.algorithm
  in
  let result =
    Consensus.Runner.run algorithm ~give_n:false
      ~topology:(Amac.Topology.clique 5)
      ~scheduler:(Amac.Scheduler.random (Amac.Rng.create 2) ~fack:5)
      ~inputs ~max_time:500_000
  in
  Printf.printf "inputs {14,11,8,5,2}: %s at t=%s\n"
    (Format.asprintf "%a" Consensus.Checker.pp result.report)
    (match result.decision_time with Some t -> string_of_int t | None -> "-");
  Printf.printf
    "(naive bitwise agreement could decide e.g. 10 = 1010, nobody's input; \
     candidate adoption preserves validity)\n"
