(* Multi-valued consensus via bit-by-bit binary consensus (the reduction
   the paper's Sec 2 open problem takes as the baseline). The subtle
   property is validity: the decided value must be some node's input, which
   naive bitwise agreement does not give — these tests hammer exactly
   that. *)

let over_two_phase ~bits = Consensus.Multi_value.make ~bits Consensus.Two_phase.algorithm

let run ?(algorithm = over_two_phase ~bits:4) ?(give_n = false) ~n ~seed
    ?(fack = 5) inputs =
  Consensus.Runner.run algorithm ~give_n
    ~topology:(Amac.Topology.clique n)
    ~scheduler:(Amac.Scheduler.random (Amac.Rng.create seed) ~fack)
    ~inputs ~max_time:500_000

let check_ok what (result : Consensus.Runner.result) =
  if not (Consensus.Checker.ok result.report) then
    Alcotest.failf "%s: %s" what
      (String.concat "; " result.report.Consensus.Checker.problems)

let test_unanimous () =
  List.iter
    (fun value ->
      let result = run ~n:5 ~seed:1 (Array.make 5 value) in
      check_ok "unanimous" result;
      Alcotest.(check (list int)) "decides the input" [ value ]
        result.report.decided_values)
    [ 0; 9; 15 ]

let test_distinct_values () =
  let inputs = [| 14; 11; 8; 5; 2 |] in
  let result = run ~n:5 ~seed:2 inputs in
  check_ok "all distinct" result

let test_single_node () =
  let result = run ~n:1 ~seed:3 [| 12 |] in
  check_ok "n=1" result;
  Alcotest.(check (list int)) "own value" [ 12 ] result.report.decided_values

let test_two_nodes () =
  let result = run ~n:2 ~seed:4 [| 3; 12 |] in
  check_ok "n=2" result

let test_one_bit_degenerate () =
  (* bits=1 is plain binary consensus. *)
  let result = run ~algorithm:(over_two_phase ~bits:1) ~n:6 ~seed:5
      (Consensus.Runner.inputs_alternating ~n:6)
  in
  check_ok "bits=1" result

let test_over_wpaxos_multihop () =
  let inputs = [| 5; 2; 7; 1; 6; 3; 0; 4; 5 |] in
  let algorithm = Consensus.Multi_value.make ~bits:3 (Consensus.Wpaxos.make ()) in
  let result =
    Consensus.Runner.run algorithm
      ~topology:(Amac.Topology.grid ~width:3 ~height:3)
      ~scheduler:(Amac.Scheduler.random (Amac.Rng.create 9) ~fack:3)
      ~inputs ~max_time:2_000_000
  in
  check_ok "multi-value over wpaxos" result

let test_input_range_validation () =
  (try
     ignore (run ~algorithm:(over_two_phase ~bits:2) ~n:2 ~seed:1 [| 4; 0 |]);
     Alcotest.fail "input out of range accepted"
   with Invalid_argument _ -> ());
  Alcotest.check_raises "bits range"
    (Invalid_argument "Multi_value.make: need 1 <= bits <= 30") (fun () ->
      ignore (over_two_phase ~bits:0))

let test_message_tagging () =
  (* The wire format keeps the base algorithm's id budget. *)
  let result = run ~n:4 ~seed:6 [| 1; 2; 3; 4 |] in
  Alcotest.(check bool) "one id per message (two-phase payloads)" true
    (result.outcome.max_ids_per_message <= 1)

(* The central property: agreement + validity + termination for arbitrary
   value vectors, sizes, seeds — validity is where naive bitwise agreement
   would fail (e.g. inputs {14=1110, 11=1011} can naively decide 1010=10,
   nobody's input). *)
let prop_consensus_multivalued =
  QCheck.Test.make ~name:"multi-value consensus (validity included)"
    ~count:200
    QCheck.(
      quad (int_range 1 8) small_int (int_range 1 8)
        (list_of_size (Gen.return 8) (int_range 0 15)))
    (fun (n, seed, fack, values) ->
      let inputs = Array.init n (List.nth values) in
      let result = run ~n ~seed ~fack inputs in
      Consensus.Checker.ok result.report)

(* Regression for the adversarial-validity scenario specifically: two
   values whose bitwise mix is in neither. *)
let prop_no_bit_mixing =
  QCheck.Test.make ~name:"decided value is never a bitwise mixture"
    ~count:100
    QCheck.(triple small_int (int_range 0 15) (int_range 0 15))
    (fun (seed, a, b) ->
      QCheck.assume (a <> b);
      let inputs = [| a; b; a; b; a |] in
      let result = run ~n:5 ~seed inputs in
      Consensus.Checker.ok result.report
      && List.for_all (fun v -> v = a || v = b) result.report.decided_values)

let () =
  Alcotest.run "multi_value"
    [
      ( "unit",
        [
          Alcotest.test_case "unanimous" `Quick test_unanimous;
          Alcotest.test_case "distinct values" `Quick test_distinct_values;
          Alcotest.test_case "single node" `Quick test_single_node;
          Alcotest.test_case "two nodes" `Quick test_two_nodes;
          Alcotest.test_case "bits=1" `Quick test_one_bit_degenerate;
          Alcotest.test_case "over wpaxos (multihop)" `Slow
            test_over_wpaxos_multihop;
          Alcotest.test_case "validation" `Quick test_input_range_validation;
          Alcotest.test_case "message tagging" `Quick test_message_tagging;
        ] );
      ( "property",
        [
          QCheck_alcotest.to_alcotest prop_consensus_multivalued;
          QCheck_alcotest.to_alcotest prop_no_bit_mixing;
        ] );
    ]
