(* The Fig 1 / Fig 2 constructions: Claim 3.4 and the covering property. *)

module T = Amac.Topology
module G = Lowerbound.Gadgets

let test_fig1_claim_3_4 () =
  (* Claim 3.4: networks A and B have the same size and the same diameter
     (the target D = 2d + 2). *)
  List.iter
    (fun (d, k) ->
      let f = G.fig1 ~d ~k in
      let target_diameter = (2 * d) + 2 in
      Alcotest.(check int)
        (Printf.sprintf "sizes equal (d=%d,k=%d)" d k)
        (T.size f.network_a) (T.size f.network_b);
      Alcotest.(check int) "A diameter" target_diameter (T.diameter f.network_a);
      Alcotest.(check int) "B diameter" target_diameter (T.diameter f.network_b);
      Alcotest.(check bool) "A connected" true (T.is_connected f.network_a);
      Alcotest.(check bool) "B connected" true (T.is_connected f.network_b))
    [ (4, 2); (4, 5); (5, 2); (7, 9); (10, 3) ]

let test_fig1_for_target () =
  List.iter
    (fun (diameter, n) ->
      let f = G.fig1_for ~diameter ~n in
      Alcotest.(check int) "hits diameter" diameter (T.diameter f.network_a);
      Alcotest.(check bool) "size at least n" true (T.size f.network_a >= n);
      (* Thm 3.3 promises n' = Theta(n): our construction stays within 3x. *)
      Alcotest.(check bool) "size O(n)" true
        (T.size f.network_a <= max (3 * n) (3 * diameter)))
    [ (10, 10); (10, 60); (14, 30); (24, 100) ]

let test_fig1_validation () =
  Alcotest.check_raises "d >= 4" (Invalid_argument "Gadgets.fig1: need d >= 4")
    (fun () -> ignore (G.fig1 ~d:3 ~k:2));
  Alcotest.check_raises "k >= 2"
    (Invalid_argument "Gadgets.fig1: need k >= 2 (lift connectivity)")
    (fun () -> ignore (G.fig1 ~d:4 ~k:1));
  Alcotest.check_raises "even diameter"
    (Invalid_argument "Gadgets.fig1_for: need an even diameter >= 10")
    (fun () -> ignore (G.fig1_for ~diameter:11 ~n:20))

let test_fig1_partition_structure () =
  let f = G.fig1 ~d:5 ~k:3 in
  let g = T.size f.gadget in
  Alcotest.(check int) "a0 size" g (List.length f.a0);
  Alcotest.(check int) "a1 size" g (List.length f.a1);
  Alcotest.(check int) "clique size" (g - 1) (List.length f.clique);
  Alcotest.(check int) "total" (3 * g) (T.size f.network_a);
  (* q is adjacent to both connectors and all clique nodes. *)
  Alcotest.(check bool) "q-c0" true
    (T.has_edge f.network_a f.q (f.a_node ~side:0 0));
  Alcotest.(check bool) "q-c1" true
    (T.has_edge f.network_a f.q (f.a_node ~side:1 0));
  List.iter
    (fun c -> Alcotest.(check bool) "q-clique" true (T.has_edge f.network_a f.q c))
    f.clique;
  (* No edge crosses directly between the two gadget copies. *)
  List.iter
    (fun u ->
      List.iter
        (fun v ->
          if T.has_edge f.network_a u v then
            Alcotest.fail "gadget copies must only meet at q")
        f.a1)
    f.a0

(* The paper's property (star): every node of B has, for each neighbor class Sv
   of its gadget-node's neighbors, exactly one neighbor — and nothing else.
   Equivalently: B is a covering graph of the gadget. *)
let test_fig1_covering_property () =
  let f = G.fig1 ~d:6 ~k:4 in
  let g = T.size f.gadget in
  for copy = 0 to 2 do
    for v = 0 to g - 1 do
      let image = f.b_copy ~copy v in
      let b_neighbors = T.neighbors f.network_b image in
      let gadget_neighbors = T.neighbors f.gadget v in
      (* Same degree... *)
      Alcotest.(check int)
        (Printf.sprintf "degree of copy %d of %d" copy v)
        (List.length gadget_neighbors)
        (List.length b_neighbors);
      (* ...and each B-neighbor projects to a distinct gadget-neighbor. *)
      let projected =
        List.map (fun u -> u mod g) b_neighbors |> List.sort_uniq Int.compare
      in
      Alcotest.(check (list int))
        (Printf.sprintf "projection of copy %d of %d" copy v)
        gadget_neighbors projected
    done
  done

let test_kd_structure () =
  List.iter
    (fun diameter ->
      let kd = G.kd ~diameter in
      Alcotest.(check int) "diameter" diameter (T.diameter kd.topology);
      Alcotest.(check int) "size" ((3 * diameter) + 2) (T.size kd.topology);
      Alcotest.(check int) "l1 size" (diameter + 1) (List.length kd.l1);
      Alcotest.(check int) "l2 size" (diameter + 1) (List.length kd.l2);
      Alcotest.(check int) "middle size" diameter (List.length kd.middle);
      (* Every L node touches the endpoint. *)
      List.iter
        (fun u ->
          Alcotest.(check bool) "endpoint edge" true
            (T.has_edge kd.topology u kd.endpoint))
        (kd.l1 @ kd.l2);
      (* The two L_D copies never touch each other directly. *)
      List.iter
        (fun u ->
          List.iter
            (fun v ->
              if T.has_edge kd.topology u v then
                Alcotest.fail "L1 and L2 must be disjoint")
            kd.l2)
        kd.l1)
    [ 2; 3; 6; 12 ]

let test_kd_validation () =
  Alcotest.check_raises "diameter >= 2"
    (Invalid_argument "Gadgets.kd: need diameter >= 2") (fun () ->
      ignore (G.kd ~diameter:1))

let prop_fig1_claim_3_4_holds =
  QCheck.Test.make ~name:"Claim 3.4 for random (d, k)" ~count:25
    QCheck.(pair (int_range 4 9) (int_range 2 8))
    (fun (d, k) ->
      let f = G.fig1 ~d ~k in
      T.size f.network_a = T.size f.network_b
      && T.diameter f.network_a = (2 * d) + 2
      && T.diameter f.network_b = (2 * d) + 2)

let () =
  Alcotest.run "gadgets"
    [
      ( "fig1",
        [
          Alcotest.test_case "claim 3.4" `Quick test_fig1_claim_3_4;
          Alcotest.test_case "fig1_for targets" `Quick test_fig1_for_target;
          Alcotest.test_case "validation" `Quick test_fig1_validation;
          Alcotest.test_case "partition structure" `Quick
            test_fig1_partition_structure;
          Alcotest.test_case "covering property (star)" `Quick
            test_fig1_covering_property;
        ] );
      ( "kd",
        [
          Alcotest.test_case "structure" `Quick test_kd_structure;
          Alcotest.test_case "validation" `Quick test_kd_validation;
        ] );
      ("property", [ QCheck_alcotest.to_alcotest prop_fig1_claim_3_4_holds ]);
    ]
