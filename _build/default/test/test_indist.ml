(* The executable Thm 3.3 / Thm 3.9 indistinguishability demos. *)

let test_fig1_violation () =
  let demo = Lowerbound.Indist.fig1_demo ~diameter:10 ~n:30 in
  Alcotest.(check bool) "victim correct on network B" true demo.b_ok;
  Alcotest.(check bool) "agreement violated on network A" false
    demo.a_report.agreement;
  Alcotest.(check (list int)) "A0 decided 0" [ 0 ] demo.a0_values;
  Alcotest.(check (list int)) "A1 decided 1" [ 1 ] demo.a1_values;
  Alcotest.(check bool) "overall violation flag" true demo.violated

let test_fig1_various_sizes () =
  List.iter
    (fun (diameter, n) ->
      let demo = Lowerbound.Indist.fig1_demo ~diameter ~n in
      if not demo.violated then
        Alcotest.failf "no violation for D=%d n=%d" diameter n)
    [ (10, 10); (12, 40); (16, 60) ]

let test_fig1_b_decides_both_ways () =
  (* Lemma 3.5: on B the victim terminates deciding b for both inputs b. *)
  let demo = Lowerbound.Indist.fig1_demo ~diameter:10 ~n:24 in
  Alcotest.(check bool) "decision times recorded" true
    (demo.b_decide_time_0 > 0 && demo.b_decide_time_1 > 0)

let test_kd_violation () =
  let demo = Lowerbound.Indist.kd_demo ~diameter:6 in
  Alcotest.(check bool) "victim correct on the line" true demo.line_ok;
  Alcotest.(check bool) "agreement violated on K_D" false
    demo.kd_report.agreement;
  Alcotest.(check (list int)) "L1 decided 0" [ 0 ] demo.l1_values;
  Alcotest.(check (list int)) "L2 decided 1" [ 1 ] demo.l2_values;
  Alcotest.(check bool) "overall violation flag" true demo.violated

let test_kd_various_diameters () =
  List.iter
    (fun diameter ->
      let demo = Lowerbound.Indist.kd_demo ~diameter in
      if not demo.violated then Alcotest.failf "no violation for D=%d" diameter)
    [ 3; 5; 9; 14 ]

(* Control: with ids AND knowledge of n, wPAXOS is untroubled by K_D under
   the same semi-synchronous scheduler — the lower bound is specifically
   about the missing knowledge, not the topology. *)
let test_kd_wpaxos_control () =
  let kd = Lowerbound.Gadgets.kd ~diameter:5 in
  let size = Amac.Topology.size kd.topology in
  let cut ~sender ~receiver =
    sender = kd.endpoint && List.mem receiver (kd.l1 @ kd.l2)
  in
  let scheduler = Amac.Scheduler.delayed_cut ~base_fack:1 ~until:40 ~cut in
  let inputs = Array.make size 0 in
  List.iter (fun node -> inputs.(node) <- 1) kd.l2;
  let result =
    Consensus.Runner.run (Consensus.Wpaxos.make ()) ~topology:kd.topology
      ~scheduler ~inputs ~max_time:1_000_000
  in
  Alcotest.(check bool) "wpaxos survives the K_D scheduler" true
    (Consensus.Checker.ok result.report)

(* Control: the anonymous victim is fine on network A when the scheduler is
   honestly synchronous — the violation needs the adversarial delays. *)
let test_fig1_synchronous_control () =
  let f = Lowerbound.Gadgets.fig1_for ~diameter:10 ~n:20 in
  let size = Amac.Topology.size f.network_a in
  let identities = Amac.Node_id.identity_assignment ~n:size ~kind:`Anonymous in
  let inputs = Array.make size 0 in
  List.iter (fun node -> inputs.(node) <- 1) f.a1;
  let result =
    Consensus.Runner.run
      (Consensus.Round_flood.make ~target:`Knows_n)
      ~identities ~topology:f.network_a
      ~scheduler:Amac.Scheduler.synchronous ~inputs
  in
  Alcotest.(check bool) "synchronous A is fine" true
    (Consensus.Checker.ok result.report)

let () =
  Alcotest.run "indist"
    [
      ( "thm 3.3 (fig 1)",
        [
          Alcotest.test_case "violation demo" `Quick test_fig1_violation;
          Alcotest.test_case "various sizes" `Slow test_fig1_various_sizes;
          Alcotest.test_case "B decides both ways" `Quick
            test_fig1_b_decides_both_ways;
          Alcotest.test_case "synchronous control" `Quick
            test_fig1_synchronous_control;
        ] );
      ( "thm 3.9 (K_D)",
        [
          Alcotest.test_case "violation demo" `Quick test_kd_violation;
          Alcotest.test_case "various diameters" `Quick
            test_kd_various_diameters;
          Alcotest.test_case "wpaxos control" `Quick test_kd_wpaxos_control;
        ] );
    ]
