let test_compare () =
  let open Amac.Node_id in
  Alcotest.(check bool) "id order" true (compare (Id 1) (Id 2) < 0);
  Alcotest.(check bool) "id equal" true (compare (Id 3) (Id 3) = 0);
  Alcotest.(check bool) "anon below ids" true (compare Anonymous (Id 0) < 0);
  Alcotest.(check bool) "anon equal" true (compare Anonymous Anonymous = 0);
  Alcotest.(check bool) "equal fn" true (equal (Id 7) (Id 7));
  Alcotest.(check bool) "not equal fn" false (equal (Id 7) Anonymous)

let test_pp () =
  Alcotest.(check string) "id" "#7" (Amac.Node_id.to_string (Id 7));
  Alcotest.(check string) "anon" "anon" (Amac.Node_id.to_string Anonymous)

let test_unique_exn () =
  Alcotest.(check int) "id value" 9 (Amac.Node_id.unique_exn (Id 9));
  Alcotest.check_raises "anonymous raises"
    (Invalid_argument "Node_id.unique_exn: anonymous node has no unique id")
    (fun () -> ignore (Amac.Node_id.unique_exn Anonymous))

let ids_of = Array.map Amac.Node_id.unique_exn

let test_dense () =
  let ids = Amac.Node_id.identity_assignment ~n:5 ~kind:`Dense in
  Alcotest.(check (array int)) "dense" [| 0; 1; 2; 3; 4 |] (ids_of ids)

let test_offset () =
  let ids = Amac.Node_id.identity_assignment ~n:3 ~kind:(`Offset 100) in
  Alcotest.(check (array int)) "offset" [| 100; 101; 102 |] (ids_of ids)

let test_anonymous () =
  let ids = Amac.Node_id.identity_assignment ~n:4 ~kind:`Anonymous in
  Array.iter
    (fun id ->
      Alcotest.(check bool) "anon" true (Amac.Node_id.equal id Anonymous))
    ids

let prop_shuffled_is_permutation =
  QCheck.Test.make ~name:"shuffled ids are a permutation of 0..n-1" ~count:100
    QCheck.(pair small_int (int_range 1 50))
    (fun (seed, n) ->
      let rng = Amac.Rng.create seed in
      let ids =
        Amac.Node_id.identity_assignment ~n ~kind:(`Shuffled rng) |> ids_of
      in
      List.sort Int.compare (Array.to_list ids) = List.init n (fun i -> i))

let () =
  Alcotest.run "node_id"
    [
      ( "unit",
        [
          Alcotest.test_case "compare" `Quick test_compare;
          Alcotest.test_case "pp" `Quick test_pp;
          Alcotest.test_case "unique_exn" `Quick test_unique_exn;
          Alcotest.test_case "dense assignment" `Quick test_dense;
          Alcotest.test_case "offset assignment" `Quick test_offset;
          Alcotest.test_case "anonymous assignment" `Quick test_anonymous;
        ] );
      ("property", [ QCheck_alcotest.to_alcotest prop_shuffled_is_permutation ]);
    ]
