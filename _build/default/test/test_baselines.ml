(* Baseline algorithms: flood-gather, flood-paxos, round-flood. *)

let check_ok what (result : Consensus.Runner.result) =
  if not (Consensus.Checker.ok result.report) then
    Alcotest.failf "%s: %s" what
      (String.concat "; " result.report.Consensus.Checker.problems)

(* ---------------- flood-gather ---------------- *)

let test_fg_decides_min () =
  let result =
    Consensus.Runner.run
      (Consensus.Flood_gather.make ())
      ~topology:(Amac.Topology.ring 6)
      ~scheduler:Amac.Scheduler.synchronous
      ~inputs:[| 1; 1; 0; 1; 1; 1 |]
  in
  check_ok "flood-gather" result;
  Alcotest.(check (list int)) "min value" [ 0 ] result.report.decided_values

let test_fg_unanimous_one () =
  let result =
    Consensus.Runner.run
      (Consensus.Flood_gather.make ())
      ~topology:(Amac.Topology.line 5)
      ~scheduler:Amac.Scheduler.synchronous
      ~inputs:(Consensus.Runner.inputs_all ~n:5 1)
  in
  check_ok "flood-gather all-1" result;
  Alcotest.(check (list int)) "min is 1" [ 1 ] result.report.decided_values

let test_fg_requires_n () =
  Alcotest.check_raises "needs n"
    (Invalid_argument "Flood_gather: requires knowledge of n") (fun () ->
      ignore
        (Consensus.Runner.run
           (Consensus.Flood_gather.make ())
           ~give_n:false
           ~topology:(Amac.Topology.line 3)
           ~scheduler:Amac.Scheduler.synchronous ~inputs:[| 0; 0; 1 |]))

let test_fg_pairs_validation () =
  Alcotest.check_raises "pairs_per_msg >= 1"
    (Invalid_argument "Flood_gather.make: pairs_per_msg must be >= 1")
    (fun () -> ignore (Consensus.Flood_gather.make ~pairs_per_msg:0 ()))

let test_fg_message_size_respected () =
  let result =
    Consensus.Runner.run
      (Consensus.Flood_gather.make ~pairs_per_msg:2 ())
      ~topology:(Amac.Topology.star 12)
      ~scheduler:Amac.Scheduler.synchronous
      ~inputs:(Consensus.Runner.inputs_alternating ~n:12)
  in
  check_ok "flood-gather star" result;
  Alcotest.(check bool) "at most 2 ids per message" true
    (result.outcome.max_ids_per_message <= 2)

let test_fg_bottleneck_scales_with_n () =
  (* On a star, the hub must forward ~n pairs 2 at a time: time grows
     linearly with n even though D = 2. *)
  let time n =
    let result =
      Consensus.Runner.run
        (Consensus.Flood_gather.make ())
        ~topology:(Amac.Topology.star n)
        ~scheduler:(Amac.Scheduler.fixed ~delay:1)
        ~inputs:(Consensus.Runner.inputs_alternating ~n)
    in
    check_ok "star run" result;
    Option.get result.decision_time
  in
  let t16 = time 16 and t64 = time 64 in
  Alcotest.(check bool)
    (Printf.sprintf "hub bottleneck grows (t16=%d t64=%d)" t16 t64)
    true
    (t64 >= 3 * t16)

let prop_fg_consensus =
  QCheck.Test.make ~name:"flood-gather solves consensus" ~count:150
    QCheck.(
      quad (int_range 1 12) small_int (int_range 1 5)
        (list_of_size (Gen.return 12) bool))
    (fun (n, seed, fack, bits) ->
      let rng = Amac.Rng.create (seed + 100) in
      let topology = Amac.Topology.random_connected rng ~n ~extra_edges:2 in
      let inputs = Array.init n (fun i -> if List.nth bits i then 1 else 0) in
      let result =
        Consensus.Runner.run
          (Consensus.Flood_gather.make ())
          ~topology
          ~scheduler:(Amac.Scheduler.random (Amac.Rng.create seed) ~fack)
          ~inputs ~max_time:1_000_000
      in
      Consensus.Checker.ok result.report
      && result.report.decided_values
         = [ Array.fold_left min max_int inputs ])

(* ---------------- flood-paxos ---------------- *)

let test_fp_families () =
  List.iter
    (fun (name, topology) ->
      let n = Amac.Topology.size topology in
      let result =
        Consensus.Runner.run
          (Consensus.Flood_paxos.make ())
          ~topology ~scheduler:Amac.Scheduler.synchronous
          ~inputs:(Consensus.Runner.inputs_alternating ~n)
          ~max_time:1_000_000
      in
      check_ok name result)
    [
      ("line", Amac.Topology.line 7);
      ("star", Amac.Topology.star 9);
      ("grid", Amac.Topology.grid ~width:3 ~height:3);
    ]

let test_fp_requires_n () =
  Alcotest.check_raises "needs n"
    (Invalid_argument "Flood_paxos: requires knowledge of n") (fun () ->
      ignore
        (Consensus.Runner.run
           (Consensus.Flood_paxos.make ())
           ~give_n:false
           ~topology:(Amac.Topology.line 3)
           ~scheduler:Amac.Scheduler.synchronous ~inputs:[| 0; 0; 1 |]))

let prop_fp_consensus =
  QCheck.Test.make ~name:"flood-paxos solves consensus" ~count:60
    QCheck.(triple (int_range 1 10) small_int (int_range 1 4))
    (fun (n, seed, fack) ->
      let rng = Amac.Rng.create (seed + 7) in
      let topology = Amac.Topology.random_connected rng ~n ~extra_edges:2 in
      let result =
        Consensus.Runner.run
          (Consensus.Flood_paxos.make ())
          ~topology
          ~scheduler:(Amac.Scheduler.random (Amac.Rng.create seed) ~fack)
          ~inputs:(Consensus.Runner.inputs_random (Amac.Rng.create seed) ~n)
          ~max_time:1_000_000
      in
      Consensus.Checker.ok result.report)

(* ---------------- round-flood ---------------- *)

let test_rf_synchronous_families () =
  (* Correct under the synchronous scheduler in any network when the round
     target covers the diameter — even anonymously. *)
  List.iter
    (fun (name, topology) ->
      let n = Amac.Topology.size topology in
      let identities =
        Amac.Node_id.identity_assignment ~n ~kind:`Anonymous
      in
      let result =
        Consensus.Runner.run
          (Consensus.Round_flood.make ~target:`Knows_n)
          ~identities ~topology ~scheduler:Amac.Scheduler.synchronous
          ~inputs:(Consensus.Runner.inputs_halves ~n)
      in
      check_ok name result;
      Alcotest.(check (list int)) "min wins" [ 0 ] result.report.decided_values)
    [
      ("line", Amac.Topology.line 6);
      ("ring", Amac.Topology.ring 7);
      ("grid", Amac.Topology.grid ~width:3 ~height:4);
    ]

let test_rf_knows_diameter () =
  let topology = Amac.Topology.line 8 in
  let result =
    Consensus.Runner.run
      (Consensus.Round_flood.make ~target:`Knows_diameter)
      ~give_n:false ~give_diameter:true ~topology
      ~scheduler:Amac.Scheduler.synchronous
      ~inputs:(Consensus.Runner.inputs_halves ~n:8)
  in
  check_ok "knows diameter" result

let test_rf_fixed_target () =
  let result =
    Consensus.Runner.run
      (Consensus.Round_flood.make ~target:(`Fixed 10))
      ~give_n:false
      ~topology:(Amac.Topology.ring 5)
      ~scheduler:Amac.Scheduler.synchronous
      ~inputs:(Consensus.Runner.inputs_alternating ~n:5)
  in
  check_ok "fixed target" result

let test_rf_missing_knowledge () =
  Alcotest.check_raises "knows_n without n"
    (Invalid_argument "Round_flood: `Knows_n requires knowledge of n")
    (fun () ->
      ignore
        (Consensus.Runner.run
           (Consensus.Round_flood.make ~target:`Knows_n)
           ~give_n:false
           ~topology:(Amac.Topology.line 2)
           ~scheduler:Amac.Scheduler.synchronous ~inputs:[| 0; 1 |]));
  Alcotest.check_raises "knows_diameter without D"
    (Invalid_argument "Round_flood: `Knows_diameter requires knowledge of D")
    (fun () ->
      ignore
        (Consensus.Runner.run
           (Consensus.Round_flood.make ~target:`Knows_diameter)
           ~topology:(Amac.Topology.line 2)
           ~scheduler:Amac.Scheduler.synchronous ~inputs:[| 0; 1 |]))

let test_rf_anonymous_messages () =
  let result =
    Consensus.Runner.run
      (Consensus.Round_flood.make ~target:`Knows_n)
      ~topology:(Amac.Topology.ring 5)
      ~scheduler:Amac.Scheduler.synchronous
      ~inputs:(Consensus.Runner.inputs_alternating ~n:5)
  in
  Alcotest.(check int) "zero ids per message" 0
    result.outcome.max_ids_per_message

let prop_rf_synchronous_consensus =
  QCheck.Test.make
    ~name:"round-flood correct on random topologies (synchronous)" ~count:150
    QCheck.(pair (int_range 1 15) small_int)
    (fun (n, seed) ->
      let rng = Amac.Rng.create (seed * 3) in
      let topology = Amac.Topology.random_connected rng ~n ~extra_edges:3 in
      let result =
        Consensus.Runner.run
          (Consensus.Round_flood.make ~target:`Knows_n)
          ~topology ~scheduler:Amac.Scheduler.synchronous
          ~inputs:(Consensus.Runner.inputs_random (Amac.Rng.create seed) ~n)
      in
      Consensus.Checker.ok result.report)

let () =
  Alcotest.run "baselines"
    [
      ( "flood-gather",
        [
          Alcotest.test_case "decides min" `Quick test_fg_decides_min;
          Alcotest.test_case "unanimous 1" `Quick test_fg_unanimous_one;
          Alcotest.test_case "requires n" `Quick test_fg_requires_n;
          Alcotest.test_case "pairs validation" `Quick
            test_fg_pairs_validation;
          Alcotest.test_case "message size" `Quick
            test_fg_message_size_respected;
          Alcotest.test_case "hub bottleneck" `Slow
            test_fg_bottleneck_scales_with_n;
          QCheck_alcotest.to_alcotest prop_fg_consensus;
        ] );
      ( "flood-paxos",
        [
          Alcotest.test_case "families" `Quick test_fp_families;
          Alcotest.test_case "requires n" `Quick test_fp_requires_n;
          QCheck_alcotest.to_alcotest prop_fp_consensus;
        ] );
      ( "round-flood",
        [
          Alcotest.test_case "synchronous families" `Quick
            test_rf_synchronous_families;
          Alcotest.test_case "knows diameter" `Quick test_rf_knows_diameter;
          Alcotest.test_case "fixed target" `Quick test_rf_fixed_target;
          Alcotest.test_case "missing knowledge" `Quick
            test_rf_missing_knowledge;
          Alcotest.test_case "anonymous messages" `Quick
            test_rf_anonymous_messages;
          QCheck_alcotest.to_alcotest prop_rf_synchronous_consensus;
        ] );
    ]
