(* Two-phase consensus (Algorithm 1, Sec 4.1). *)

let run ?identities ?(algorithm = Consensus.Two_phase.algorithm) ~n ~scheduler
    inputs =
  Consensus.Runner.run algorithm ?identities ~give_n:false
    ~topology:(Amac.Topology.clique n) ~scheduler ~inputs

let test_unanimous () =
  List.iter
    (fun value ->
      let result =
        run ~n:5 ~scheduler:Amac.Scheduler.synchronous
          (Consensus.Runner.inputs_all ~n:5 value)
      in
      Alcotest.(check bool) "ok" true (Consensus.Checker.ok result.report);
      Alcotest.(check (list int)) "decides the input" [ value ]
        result.report.decided_values)
    [ 0; 1 ]

let test_mixed_synchronous () =
  let result =
    run ~n:6 ~scheduler:Amac.Scheduler.synchronous
      (Consensus.Runner.inputs_alternating ~n:6)
  in
  Alcotest.(check bool) "ok" true (Consensus.Checker.ok result.report);
  (* Lock-step: everyone sees both values in phase 1, all bivalent, default
     1 wins. *)
  Alcotest.(check (list int)) "default 1" [ 1 ] result.report.decided_values

let test_single_node () =
  let result =
    run ~n:1 ~scheduler:Amac.Scheduler.synchronous [| 0 |]
  in
  Alcotest.(check bool) "ok" true (Consensus.Checker.ok result.report);
  Alcotest.(check (list int)) "own value" [ 0 ] result.report.decided_values

let test_two_nodes_conflict () =
  let result = run ~n:2 ~scheduler:Amac.Scheduler.synchronous [| 0; 1 |] in
  Alcotest.(check bool) "ok" true (Consensus.Checker.ok result.report)

let test_time_bound_synchronous () =
  (* Two broadcast cycles at F_ack = 1: decisions by t = 2 + slack for the
     witness wait; under the synchronous scheduler witnesses are already
     covered, so exactly 2. *)
  let result =
    run ~n:8 ~scheduler:Amac.Scheduler.synchronous
      (Consensus.Runner.inputs_alternating ~n:8)
  in
  Alcotest.(check (option int)) "2 ticks" (Some 2) result.decision_time

let test_time_bound_fixed () =
  (* At fixed delay F the two phases take exactly 2F. *)
  List.iter
    (fun fack ->
      let result =
        run ~n:5
          ~scheduler:(Amac.Scheduler.fixed ~delay:fack)
          (Consensus.Runner.inputs_alternating ~n:5)
      in
      match result.decision_time with
      | Some t ->
          if t > 3 * fack then
            Alcotest.failf "decision at %d exceeds 3*F_ack=%d" t (3 * fack)
      | None -> Alcotest.fail "no decision")
    [ 1; 2; 5; 13 ]

let test_time_independent_of_n () =
  (* O(F_ack), not O(n): decision times must not grow with n. *)
  let time n =
    let result =
      run ~n ~scheduler:(Amac.Scheduler.fixed ~delay:3)
        (Consensus.Runner.inputs_alternating ~n)
    in
    Option.get result.decision_time
  in
  Alcotest.(check int) "n=4 equals n=64" (time 4) (time 64)

let test_slow_node_still_agrees () =
  (* One straggler delays everyone's witness wait but not agreement. *)
  let result =
    run ~n:5
      ~scheduler:(Amac.Scheduler.slow_node ~fack:20 ~node:3)
      (Consensus.Runner.inputs_one_dissent ~n:5 ~dissenter:3 ~value:0)
  in
  Alcotest.(check bool) "ok" true (Consensus.Checker.ok result.report)

let test_shuffled_ids () =
  let rng = Amac.Rng.create 77 in
  let identities = Amac.Node_id.identity_assignment ~n:7 ~kind:(`Shuffled rng) in
  let result =
    run ~n:7 ~identities
      ~scheduler:(Amac.Scheduler.random (Amac.Rng.create 3) ~fack:6)
      (Consensus.Runner.inputs_alternating ~n:7)
  in
  Alcotest.(check bool) "ok with shuffled ids" true
    (Consensus.Checker.ok result.report)

let test_literal_violates () =
  let demo = Lowerbound.Erratum.two_phase_demo () in
  Alcotest.(check bool) "literal pseudocode violates agreement" false
    demo.literal_report.agreement

let test_corrected_survives_erratum_schedule () =
  let demo = Lowerbound.Erratum.two_phase_demo () in
  Alcotest.(check bool) "corrected rule is fine" true
    (Consensus.Checker.ok demo.corrected_report)

(* The central property: for every n, scheduler seed and input vector,
   two-phase consensus holds all four properties — without knowledge of n. *)
let prop_consensus_random_schedules =
  QCheck.Test.make ~name:"two-phase solves consensus (random schedules)"
    ~count:400
    QCheck.(
      quad (int_range 1 12) small_int (int_range 1 10)
        (list_of_size (Gen.return 12) bool))
    (fun (n, seed, fack, input_bits) ->
      let inputs =
        Array.init n (fun i -> if List.nth input_bits i then 1 else 0)
      in
      let scheduler = Amac.Scheduler.random (Amac.Rng.create seed) ~fack in
      let result = run ~n ~scheduler inputs in
      Consensus.Checker.ok result.report)

(* Decision time is always within 3 F_ack (2 broadcasts + witness wait,
   each bounded by F_ack), independent of n. *)
let prop_time_bound =
  QCheck.Test.make ~name:"two-phase decides within 3*F_ack" ~count:300
    QCheck.(triple (int_range 1 16) small_int (int_range 1 8))
    (fun (n, seed, fack) ->
      let scheduler = Amac.Scheduler.random (Amac.Rng.create seed) ~fack in
      let result = run ~n ~scheduler (Consensus.Runner.inputs_alternating ~n) in
      match result.decision_time with
      | Some t -> t <= 3 * fack
      | None -> false)

(* Messages carry exactly one id. *)
let prop_message_size =
  QCheck.Test.make ~name:"two-phase messages carry 1 id" ~count:100
    QCheck.(pair (int_range 2 10) small_int)
    (fun (n, seed) ->
      let scheduler = Amac.Scheduler.random (Amac.Rng.create seed) ~fack:4 in
      let result = run ~n ~scheduler (Consensus.Runner.inputs_alternating ~n) in
      result.outcome.max_ids_per_message = 1)

let () =
  Alcotest.run "two_phase"
    [
      ( "unit",
        [
          Alcotest.test_case "unanimous inputs" `Quick test_unanimous;
          Alcotest.test_case "mixed synchronous" `Quick test_mixed_synchronous;
          Alcotest.test_case "single node" `Quick test_single_node;
          Alcotest.test_case "two nodes conflict" `Quick
            test_two_nodes_conflict;
          Alcotest.test_case "time bound (sync)" `Quick
            test_time_bound_synchronous;
          Alcotest.test_case "time bound (fixed)" `Quick test_time_bound_fixed;
          Alcotest.test_case "time independent of n" `Quick
            test_time_independent_of_n;
          Alcotest.test_case "slow node" `Quick test_slow_node_still_agrees;
          Alcotest.test_case "shuffled ids" `Quick test_shuffled_ids;
          Alcotest.test_case "erratum: literal violates" `Quick
            test_literal_violates;
          Alcotest.test_case "erratum: corrected ok" `Quick
            test_corrected_survives_erratum_schedule;
        ] );
      ( "property",
        [
          QCheck_alcotest.to_alcotest prop_consensus_random_schedules;
          QCheck_alcotest.to_alcotest prop_time_bound;
          QCheck_alcotest.to_alcotest prop_message_size;
        ] );
    ]
