(* wPAXOS (Sec 4.2): correctness across topologies and schedulers, the
   O(D * F_ack) shape, the Lemma 4.2 conservation invariant, message-size
   accounting, and the ablation variants. *)

let run ?(algorithm = Consensus.Wpaxos.make ()) ?max_time topology scheduler
    inputs =
  Consensus.Runner.run algorithm ?max_time ~topology ~scheduler ~inputs

let check_ok what result =
  if not (Consensus.Checker.ok result.Consensus.Runner.report) then
    Alcotest.failf "%s: %s" what
      (String.concat "; " result.report.Consensus.Checker.problems)

let test_families_synchronous () =
  let cases =
    [
      ("clique", Amac.Topology.clique 6);
      ("line", Amac.Topology.line 9);
      ("ring", Amac.Topology.ring 8);
      ("star", Amac.Topology.star 10);
      ("grid", Amac.Topology.grid ~width:4 ~height:3);
      ("tree", Amac.Topology.binary_tree 11);
      ("barbell", Amac.Topology.barbell ~clique_size:4);
      ("star-of-lines", Amac.Topology.star_of_lines ~arms:3 ~arm_len:3);
    ]
  in
  List.iter
    (fun (name, topology) ->
      let n = Amac.Topology.size topology in
      let result =
        run topology Amac.Scheduler.synchronous
          (Consensus.Runner.inputs_alternating ~n)
      in
      check_ok name result)
    cases

let test_single_node () =
  let result =
    run (Amac.Topology.line 1) Amac.Scheduler.synchronous [| 1 |]
  in
  check_ok "single node" result;
  Alcotest.(check (list int)) "own value" [ 1 ] result.report.decided_values

let test_two_nodes () =
  let result =
    run (Amac.Topology.line 2) Amac.Scheduler.synchronous [| 0; 1 |]
  in
  check_ok "two nodes" result

let test_unanimity_validity () =
  (* All-zero inputs must decide 0 (validity leaves no other choice). *)
  let result =
    run
      (Amac.Topology.grid ~width:3 ~height:3)
      (Amac.Scheduler.random (Amac.Rng.create 5) ~fack:4)
      (Consensus.Runner.inputs_all ~n:9 0)
  in
  check_ok "unanimous" result;
  Alcotest.(check (list int)) "decides 0" [ 0 ] result.report.decided_values

let test_requires_n () =
  Alcotest.check_raises "no knowledge of n"
    (Invalid_argument "Wpaxos: requires knowledge of n (see Thm 3.9)")
    (fun () ->
      ignore
        (Consensus.Runner.run (Consensus.Wpaxos.make ()) ~give_n:false
           ~topology:(Amac.Topology.line 3)
           ~scheduler:Amac.Scheduler.synchronous ~inputs:[| 0; 1; 0 |]))

let test_message_ids_constant () =
  (* The max ids per message must be the same small constant on a big
     network as on a small one. *)
  let max_ids topology =
    let n = Amac.Topology.size topology in
    let result =
      run topology
        (Amac.Scheduler.random (Amac.Rng.create 11) ~fack:3)
        (Consensus.Runner.inputs_alternating ~n)
    in
    check_ok "ids run" result;
    result.outcome.max_ids_per_message
  in
  let small = max_ids (Amac.Topology.line 4) in
  let large = max_ids (Amac.Topology.star_of_lines ~arms:6 ~arm_len:6) in
  Alcotest.(check bool) "constant-size messages" true (large <= small + 4);
  Alcotest.(check bool) "genuinely bounded" true (large <= 12)

let test_lemma_4_2_conservation () =
  (* Proposer counts never exceed acceptor-generated affirmatives. *)
  List.iter
    (fun seed ->
      let instrument = Consensus.Wpaxos.Instrument.create () in
      let algorithm = Consensus.Wpaxos.make ~instrument () in
      let rng = Amac.Rng.create seed in
      let topology = Amac.Topology.random_connected rng ~n:14 ~extra_edges:4 in
      let result =
        run ~algorithm topology
          (Amac.Scheduler.random (Amac.Rng.create (seed + 1)) ~fack:5)
          (Consensus.Runner.inputs_random (Amac.Rng.create (seed + 2)) ~n:14)
      in
      check_ok "instrumented run" result;
      Alcotest.(check (list (triple (pair int int) int int)))
        "no conservation violations" []
        (List.map
           (fun (pno, _round, generated, counted) ->
             ((pno.Consensus.Paxos_types.tag, pno.proposer), generated, counted))
           (Consensus.Wpaxos.Instrument.violations instrument));
      Alcotest.(check bool) "counted <= generated overall" true
        (Consensus.Wpaxos.Instrument.counted instrument
        <= Consensus.Wpaxos.Instrument.generated instrument))
    [ 1; 2; 3; 4; 5 ]

let test_time_scales_with_d_not_n () =
  (* Fixed diameter, growing n: wPAXOS time should stay roughly flat.
     star_of_lines with arm_len 4 keeps D = 8 while n grows. *)
  let time arms =
    let topology = Amac.Topology.star_of_lines ~arms ~arm_len:4 in
    let n = Amac.Topology.size topology in
    let result =
      run topology (Amac.Scheduler.fixed ~delay:2)
        (Consensus.Runner.inputs_alternating ~n)
    in
    check_ok "scaling run" result;
    Option.get result.decision_time
  in
  let small = time 3 and large = time 12 in
  (* n quadruples; time may wobble but must not scale linearly with n. *)
  Alcotest.(check bool)
    (Printf.sprintf "time roughly flat in n (%d vs %d)" small large)
    true
    (float_of_int large <= 2.0 *. float_of_int small)

let test_time_linear_in_d () =
  (* Growing diameter at fixed F_ack: time grows, bounded by c * D * F_ack. *)
  List.iter
    (fun d ->
      let topology = Amac.Topology.line (d + 1) in
      let result =
        run topology (Amac.Scheduler.fixed ~delay:2)
          (Consensus.Runner.inputs_alternating ~n:(d + 1))
      in
      check_ok "line run" result;
      let t = Option.get result.decision_time in
      let bound = 16 * d * 2 in
      if t > bound then
        Alcotest.failf "D=%d: time %d exceeds 16*D*F_ack=%d" d t bound)
    [ 4; 8; 16; 32 ]

let test_ablation_variants_correct () =
  (* Disabling leader priority or aggregation must never break safety or
     liveness — only speed. *)
  List.iter
    (fun (name, algorithm) ->
      let topology = Amac.Topology.star_of_lines ~arms:4 ~arm_len:3 in
      let n = Amac.Topology.size topology in
      let result =
        run ~algorithm topology
          (Amac.Scheduler.random (Amac.Rng.create 9) ~fack:4)
          (Consensus.Runner.inputs_alternating ~n)
          ~max_time:500_000
      in
      check_ok name result)
    [
      ("no leader priority", Consensus.Wpaxos.make ~leader_priority:false ());
      ("no aggregation", Consensus.Wpaxos.make ~aggregate:false ());
      ( "neither",
        Consensus.Wpaxos.make ~leader_priority:false ~aggregate:false () );
    ]

let test_adversarial_schedulers () =
  let topology = Amac.Topology.grid ~width:3 ~height:3 in
  let inputs = Consensus.Runner.inputs_halves ~n:9 in
  List.iter
    (fun (name, scheduler) ->
      let result = run topology scheduler inputs ~max_time:500_000 in
      check_ok name result)
    [
      ("max delay", Amac.Scheduler.max_delay ~fack:7);
      ("slow node", Amac.Scheduler.slow_node ~fack:30 ~node:4);
      ( "asymmetric edges",
        Amac.Scheduler.per_edge ~name:"asym" ~fack:9
          ~delay:(fun ~sender ~receiver -> 1 + ((sender + (3 * receiver)) mod 9))
      );
      ( "long partition",
        Amac.Scheduler.delayed_cut ~base_fack:2 ~until:60
          ~cut:(fun ~sender ~receiver ->
            (* silence the grid's middle row in one direction for a while *)
            sender >= 3 && sender < 6 && receiver >= 6) );
    ]

let test_shuffled_and_offset_ids () =
  let topology = Amac.Topology.ring 7 in
  let inputs = Consensus.Runner.inputs_alternating ~n:7 in
  List.iter
    (fun kind ->
      let identities = Amac.Node_id.identity_assignment ~n:7 ~kind in
      let result =
        Consensus.Runner.run (Consensus.Wpaxos.make ()) ~identities ~topology
          ~scheduler:(Amac.Scheduler.random (Amac.Rng.create 21) ~fack:3)
          ~inputs
      in
      check_ok "id assignment" result)
    [ `Shuffled (Amac.Rng.create 4); `Offset 1000 ]

let test_safety_under_crashes () =
  (* The paper assumes no crashes for its upper bounds (Thm 3.2 forces
     that for termination) — but SAFETY must not depend on the assumption:
     with nodes crashing, wPAXOS may stall, never split. *)
  List.iter
    (fun (seed, crashes) ->
      let topology = Amac.Topology.grid ~width:3 ~height:3 in
      let result =
        Consensus.Runner.run (Consensus.Wpaxos.make ()) ~topology
          ~scheduler:(Amac.Scheduler.random (Amac.Rng.create seed) ~fack:4)
          ~inputs:(Consensus.Runner.inputs_halves ~n:9)
          ~crashes ~max_time:20_000
      in
      if not (Consensus.Checker.safe result.report) then
        Alcotest.failf "wpaxos UNSAFE under crashes (seed %d): %s" seed
          (String.concat "; " result.report.Consensus.Checker.problems))
    [
      (1, [ (8, 3) ]);  (* the initial leader dies early *)
      (2, [ (8, 40) ]);  (* the leader dies mid-protocol *)
      (3, [ (4, 10); (8, 10) ]);  (* center + leader *)
      (4, [ (0, 0); (1, 0); (2, 0); (3, 0) ]);  (* minority dead on arrival *)
    ]

(* Footnote 1: wPAXOS needs only enough knowledge of n to recognise a
   majority. Any quorum in (n/2, n] is safe and live; a quorum of n/2 or
   less breaks quorum intersection, and a long partition splits the
   decision. *)
let split_brain_fixture () =
  (* Two 5-cliques joined by a single edge between their LOWEST-id nodes,
     so the per-side leaders (4 and 9) keep fast acks during the cut. *)
  let n = 10 in
  let edges = ref [ (0, 5) ] in
  for u = 0 to 4 do
    for v = u + 1 to 4 do
      edges := (u, v) :: (u + 5, v + 5) :: !edges
    done
  done;
  let topology = Amac.Topology.of_edges ~n !edges in
  let inputs = Array.init n (fun i -> if i < 5 then 0 else 1) in
  let cut ~sender ~receiver =
    (sender = 0 && receiver = 5) || (sender = 5 && receiver = 0)
  in
  (topology, inputs, Amac.Scheduler.delayed_cut ~base_fack:2 ~until:5000 ~cut)

let test_quorum_overrides_work () =
  let topology, inputs, scheduler = split_brain_fixture () in
  List.iter
    (fun quorum ->
      let result =
        run
          ~algorithm:(Consensus.Wpaxos.make ~quorum ())
          topology scheduler inputs ~max_time:500_000
      in
      check_ok (Printf.sprintf "quorum %d" quorum) result)
    [ 6; 8; 10 ]

let test_small_quorum_splits_brain () =
  let topology, inputs, scheduler = split_brain_fixture () in
  let result =
    run
      ~algorithm:(Consensus.Wpaxos.make ~quorum:4 ())
      topology scheduler inputs ~max_time:500_000
  in
  Alcotest.(check bool) "agreement violated" false
    result.report.Consensus.Checker.agreement;
  Alcotest.(check (list int)) "split decision" [ 0; 1 ]
    result.report.decided_values

let test_quorum_validation () =
  Alcotest.check_raises "quorum >= 1"
    (Invalid_argument "Wpaxos.make: quorum must be >= 1") (fun () ->
      ignore (Consensus.Wpaxos.make ~quorum:0 ()))

(* The heavyweight property: wPAXOS solves consensus on random connected
   topologies under random schedulers, whatever the inputs. *)
let prop_consensus_random =
  QCheck.Test.make ~name:"wpaxos solves consensus (random topo+sched)"
    ~count:120
    QCheck.(
      quad (int_range 1 14) small_int (int_range 1 6)
        (list_of_size (Gen.return 14) bool))
    (fun (n, seed, fack, input_bits) ->
      let rng = Amac.Rng.create (seed * 31) in
      let topology = Amac.Topology.random_connected rng ~n ~extra_edges:(n / 3) in
      let scheduler = Amac.Scheduler.random (Amac.Rng.create seed) ~fack in
      let inputs =
        Array.init n (fun i -> if List.nth input_bits i then 1 else 0)
      in
      let result = run topology scheduler inputs ~max_time:1_000_000 in
      Consensus.Checker.ok result.report)

(* Ablations stay safe too (they are only slower). *)
let prop_ablation_safe =
  QCheck.Test.make ~name:"wpaxos without aggregation stays correct" ~count:40
    QCheck.(triple (int_range 2 10) small_int (int_range 1 4))
    (fun (n, seed, fack) ->
      let rng = Amac.Rng.create (seed * 17) in
      let topology = Amac.Topology.random_connected rng ~n ~extra_edges:2 in
      let scheduler = Amac.Scheduler.random (Amac.Rng.create seed) ~fack in
      let result =
        run
          ~algorithm:(Consensus.Wpaxos.make ~aggregate:false ())
          topology scheduler
          (Consensus.Runner.inputs_alternating ~n)
          ~max_time:1_000_000
      in
      Consensus.Checker.ok result.report)

let () =
  Alcotest.run "wpaxos"
    [
      ( "unit",
        [
          Alcotest.test_case "topology families" `Quick
            test_families_synchronous;
          Alcotest.test_case "single node" `Quick test_single_node;
          Alcotest.test_case "two nodes" `Quick test_two_nodes;
          Alcotest.test_case "unanimity validity" `Quick
            test_unanimity_validity;
          Alcotest.test_case "requires n" `Quick test_requires_n;
          Alcotest.test_case "message ids constant" `Quick
            test_message_ids_constant;
          Alcotest.test_case "lemma 4.2 conservation" `Quick
            test_lemma_4_2_conservation;
          Alcotest.test_case "time flat in n (fixed D)" `Slow
            test_time_scales_with_d_not_n;
          Alcotest.test_case "time linear in D" `Slow test_time_linear_in_d;
          Alcotest.test_case "ablations correct" `Quick
            test_ablation_variants_correct;
          Alcotest.test_case "adversarial schedulers" `Quick
            test_adversarial_schedulers;
          Alcotest.test_case "id assignments" `Quick
            test_shuffled_and_offset_ids;
        ] );
      ( "crash safety",
        [
          Alcotest.test_case "safe under crashes" `Quick
            test_safety_under_crashes;
        ] );
      ( "quorum knowledge (footnote 1)",
        [
          Alcotest.test_case "valid quorums work" `Quick
            test_quorum_overrides_work;
          Alcotest.test_case "small quorum splits" `Quick
            test_small_quorum_splits_brain;
          Alcotest.test_case "validation" `Quick test_quorum_validation;
        ] );
      ( "property",
        [
          QCheck_alcotest.to_alcotest prop_consensus_random;
          QCheck_alcotest.to_alcotest prop_ablation_safe;
        ] );
    ]
