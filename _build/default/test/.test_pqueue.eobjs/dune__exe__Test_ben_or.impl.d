test/test_ben_or.ml: Alcotest Amac Array Consensus Gen List Printf QCheck QCheck_alcotest String
