test/test_stats.ml: Alcotest Amac Gen List QCheck QCheck_alcotest String
