test/test_topology.ml: Alcotest Amac Array List QCheck QCheck_alcotest
