test/test_bivalence.mli:
