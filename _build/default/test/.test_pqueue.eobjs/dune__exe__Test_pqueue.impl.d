test/test_pqueue.ml: Alcotest Amac Int List QCheck QCheck_alcotest
