test/test_scheduler.ml: Alcotest Amac Int List QCheck QCheck_alcotest
