test/test_unreliable.ml: Alcotest Amac Consensus List Printf QCheck QCheck_alcotest String
