test/test_bivalence.ml: Alcotest Amac Array Consensus Format List Lowerbound QCheck QCheck_alcotest String
