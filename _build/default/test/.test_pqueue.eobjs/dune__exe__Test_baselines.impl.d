test/test_baselines.ml: Alcotest Amac Array Consensus Gen List Option Printf QCheck QCheck_alcotest String
