test/test_two_phase.ml: Alcotest Amac Array Consensus Gen List Lowerbound Option QCheck QCheck_alcotest
