test/test_rng.ml: Alcotest Amac Array Int List QCheck QCheck_alcotest
