test/test_wpaxos.mli:
