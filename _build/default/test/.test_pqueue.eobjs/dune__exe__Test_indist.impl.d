test/test_indist.ml: Alcotest Amac Array Consensus List Lowerbound
