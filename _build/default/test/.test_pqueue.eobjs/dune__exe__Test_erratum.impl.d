test/test_erratum.ml: Alcotest Amac Consensus Lazy Lowerbound QCheck QCheck_alcotest
