test/test_node_id.mli:
