test/test_engine.ml: Alcotest Amac Array Int List Option QCheck QCheck_alcotest
