test/test_node_id.ml: Alcotest Amac Array Int List QCheck QCheck_alcotest
