test/test_partition.ml: Alcotest Consensus List Lowerbound Printf QCheck QCheck_alcotest
