test/test_causal.ml: Alcotest Amac Array Gen Int List Printf QCheck QCheck_alcotest
