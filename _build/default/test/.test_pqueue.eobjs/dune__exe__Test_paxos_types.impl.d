test/test_paxos_types.ml: Alcotest Consensus List QCheck QCheck_alcotest String
