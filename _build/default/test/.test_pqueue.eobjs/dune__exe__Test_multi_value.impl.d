test/test_multi_value.ml: Alcotest Amac Array Consensus Gen List QCheck QCheck_alcotest String
