test/test_unreliable.mli:
