test/test_paxos_types.mli:
