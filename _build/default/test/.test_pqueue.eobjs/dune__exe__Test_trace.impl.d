test/test_trace.ml: Alcotest Amac Consensus Format List String
