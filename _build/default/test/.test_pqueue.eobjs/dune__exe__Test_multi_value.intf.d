test/test_multi_value.mli:
