test/test_ben_or.mli:
