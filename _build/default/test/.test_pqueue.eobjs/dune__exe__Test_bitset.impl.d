test/test_bitset.ml: Alcotest Amac Int List QCheck QCheck_alcotest Set
