test/test_gadgets.ml: Alcotest Amac Int List Lowerbound Printf QCheck QCheck_alcotest
