test/test_checker.ml: Alcotest Amac Array Consensus Format
