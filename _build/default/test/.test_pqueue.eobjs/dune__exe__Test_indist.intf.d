test/test_indist.mli:
