(* The Sec 3.1 (FLP-style) machinery: valency classification, persistence of
   bivalence, and what one crash does to two-phase consensus. *)

module B = Lowerbound.Bivalence

let explorer ?(n = 3) inputs =
  B.create Consensus.Two_phase.algorithm
    ~topology:(Amac.Topology.clique n)
    ~inputs

let test_unanimous_univalent () =
  (* Validity forces unanimity to be univalent (FLP Lemma 2's base case). *)
  Alcotest.(check bool) "all-0 univalent(0)" true
    (B.initial_verdict (explorer [| 0; 0; 0 |]) = B.Univalent 0);
  Alcotest.(check bool) "all-1 univalent(1)" true
    (B.initial_verdict (explorer [| 1; 1; 1 |]) = B.Univalent 1)

let test_mixed_bivalent () =
  (* A bivalent initial configuration exists — the FLP Lemma 2 analogue. *)
  Alcotest.(check bool) "0;1;1 bivalent" true
    (B.initial_verdict (explorer [| 0; 1; 1 |]) = B.Bivalent);
  Alcotest.(check bool) "0;0;1 bivalent" true
    (B.initial_verdict (explorer [| 0; 0; 1 |]) = B.Bivalent)

let test_two_node_bivalent () =
  Alcotest.(check bool) "n=2 mixed bivalent" true
    (B.initial_verdict (explorer ~n:2 [| 0; 1 |]) = B.Bivalent)

let test_explore_stats () =
  let stats = B.explore (explorer [| 0; 1; 1 |]) ~max_depth:6 in
  Alcotest.(check int) "one initial config" 1 stats.configs_by_depth.(0);
  Alcotest.(check int) "initial is bivalent" 1 stats.bivalent_by_depth.(0);
  Alcotest.(check bool) "bivalence persists at least one step" true
    (stats.deepest_bivalent >= 1);
  Alcotest.(check bool) "exploration expands" true (stats.total_configs > 10)

let test_bivalence_dies_without_crashes () =
  (* Two-phase terminates without crashes, so along crash-free valid-step
     executions bivalence must die out well before termination depth. *)
  let stats = B.explore (explorer [| 0; 1; 1 |]) ~max_depth:20 in
  Alcotest.(check bool) "bivalence bounded" true
    (stats.deepest_bivalent < 10)

let test_lemma_3_1_witness () =
  (* Lemma 3.1 says: for a 1-crash-TOLERANT algorithm, every node has an
     extension after which its own valid step keeps bivalence. Two-phase is
     not 1-crash tolerant, so the lemma need not hold at every node — and
     indeed it does not: that escape hatch is exactly how the algorithm
     evades the Thm 3.2 impossibility. We check both sides: some node has a
     witness (bivalence genuinely extends), and some node has none within
     the search depth (the lemma fails for this algorithm, as it must). *)
  let t = explorer [| 0; 1; 1 |] in
  let witness node = B.check_lemma_3_1 t ~node ~search_depth:8 <> None in
  let results = List.map witness [ 0; 1; 2 ] in
  Alcotest.(check bool) "some node has a witness" true
    (List.mem true results);
  Alcotest.(check bool) "some node has no witness (not crash-tolerant)" true
    (List.mem false results)

let test_one_crash_kills_termination () =
  (* Thm 3.2 in action: a single crash yields an execution where a live
     node waits forever (a blocked undecided configuration). *)
  let t = explorer [| 0; 1; 1 |] in
  match B.find_termination_violation t ~max_crashes:1 ~max_depth:25 () with
  | Some schedule ->
      Alcotest.(check bool) "schedule contains a crash" true
        (List.exists (function B.Crash _ -> true | _ -> false) schedule)
  | None -> Alcotest.fail "expected a termination violation with 1 crash"

let test_no_termination_violation_without_crashes () =
  let t = explorer [| 0; 1; 1 |] in
  Alcotest.(check bool) "crash-free executions all decide" true
    (B.find_termination_violation t ~max_crashes:0 ~max_depth:25 () = None)

let test_agreement_survives_one_crash () =
  (* Safety is crash-tolerant even though liveness is not: exhaustively, no
     1-crash schedule makes two-phase disagree. *)
  List.iter
    (fun inputs ->
      let t = explorer inputs in
      match
        B.find_agreement_violation t ~max_crashes:1 ~max_depth:22
          ~max_configs:150_000 ()
      with
      | None -> ()
      | Some schedule ->
          Alcotest.failf "agreement violation: %s"
            (String.concat " "
               (List.map (Format.asprintf "%a" B.pp_step) schedule)))
    [ [| 0; 1; 1 |]; [| 0; 0; 1 |]; [| 1; 0; 1 |] ]

let test_literal_two_phase_disagrees_under_crash_free_steps () =
  (* The erratum also shows up here: the literal pseudocode of Algorithm 1
     admits a crash-FREE valid-step execution deciding both values on a
     2-clique... — valid steps alone may or may not realise the erratum
     interleaving; what must hold is that the CORRECTED algorithm never
     does. *)
  let t =
    B.create Consensus.Two_phase.algorithm
      ~topology:(Amac.Topology.clique 2)
      ~inputs:[| 0; 1 |]
  in
  Alcotest.(check bool) "corrected never disagrees (0 crashes)" true
    (B.find_agreement_violation t ~max_crashes:0 ~max_depth:30 () = None)

let test_pp_step () =
  Alcotest.(check string) "deliver" "deliver(0->2)"
    (Format.asprintf "%a" B.pp_step (B.Deliver { sender = 0; receiver = 2 }));
  Alcotest.(check string) "ack" "ack(1)" (Format.asprintf "%a" B.pp_step (B.Ack 1));
  Alcotest.(check string) "crash" "crash(2)"
    (Format.asprintf "%a" B.pp_step (B.Crash 2))

let test_create_validation () =
  Alcotest.check_raises "input mismatch"
    (Invalid_argument "Bivalence.create: inputs length mismatches topology")
    (fun () -> ignore (explorer [| 0; 1 |]))

(* Property: initial verdict of a unanimous vector is always univalent of
   that value, across n. *)
let prop_unanimity_univalent =
  (* n capped at 3: valency is an exhaustive search and the valid-step
     space grows super-exponentially in n. *)
  QCheck.Test.make ~name:"unanimous inputs are univalent" ~count:8
    QCheck.(pair (int_range 2 3) bool)
    (fun (n, bit) ->
      let v = if bit then 1 else 0 in
      B.initial_verdict (explorer ~n (Array.make n v)) = B.Univalent v)

let () =
  Alcotest.run "bivalence"
    [
      ( "valency",
        [
          Alcotest.test_case "unanimous univalent" `Quick
            test_unanimous_univalent;
          Alcotest.test_case "mixed bivalent" `Quick test_mixed_bivalent;
          Alcotest.test_case "two nodes" `Quick test_two_node_bivalent;
          Alcotest.test_case "explore stats" `Quick test_explore_stats;
          Alcotest.test_case "bivalence dies without crashes" `Quick
            test_bivalence_dies_without_crashes;
          Alcotest.test_case "lemma 3.1 witnesses" `Quick
            test_lemma_3_1_witness;
        ] );
      ( "crashes",
        [
          Alcotest.test_case "one crash kills termination" `Quick
            test_one_crash_kills_termination;
          Alcotest.test_case "no violation without crashes" `Quick
            test_no_termination_violation_without_crashes;
          Alcotest.test_case "agreement survives one crash" `Slow
            test_agreement_survives_one_crash;
          Alcotest.test_case "corrected never disagrees" `Quick
            test_literal_two_phase_disagrees_under_crash_free_steps;
        ] );
      ( "misc",
        [
          Alcotest.test_case "pp_step" `Quick test_pp_step;
          Alcotest.test_case "create validation" `Quick test_create_validation;
          QCheck_alcotest.to_alcotest prop_unanimity_univalent;
        ] );
    ]
