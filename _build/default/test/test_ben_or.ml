(* Randomized consensus (Ben-Or over the abstract MAC layer): the paper's
   future-work direction 3 — circumventing the Thm 3.2 crash impossibility
   with randomness. *)

let run ?(crashes = []) ?(fack = 4) ~n ~seed inputs =
  Consensus.Runner.run
    (Consensus.Ben_or.make ~seed ())
    ~topology:(Amac.Topology.clique n)
    ~scheduler:(Amac.Scheduler.random (Amac.Rng.create seed) ~fack)
    ~inputs ~crashes ~max_time:200_000

let check_ok what (result : Consensus.Runner.result) =
  if not (Consensus.Checker.ok result.report) then
    Alcotest.failf "%s: %s" what
      (String.concat "; " result.report.Consensus.Checker.problems)

let test_unanimous () =
  List.iter
    (fun value ->
      let result = run ~n:5 ~seed:1 (Consensus.Runner.inputs_all ~n:5 value) in
      check_ok "unanimous" result;
      Alcotest.(check (list int)) "decides the common input" [ value ]
        result.report.decided_values)
    [ 0; 1 ]

let test_mixed_inputs () =
  List.iter
    (fun seed ->
      check_ok "mixed"
        (run ~n:6 ~seed (Consensus.Runner.inputs_alternating ~n:6)))
    [ 1; 2; 3; 4; 5 ]

let test_single_and_pair () =
  check_ok "n=1" (run ~n:1 ~seed:1 [| 0 |]);
  check_ok "n=2" (run ~n:2 ~seed:2 [| 0; 1 |])

let test_survives_minority_crashes () =
  (* f = ceil(n/2) - 1 crashes at assorted times: all live nodes decide. *)
  List.iter
    (fun (n, crashes, seed) ->
      let result =
        run ~n ~seed ~crashes (Consensus.Runner.inputs_alternating ~n)
      in
      check_ok (Printf.sprintf "n=%d with %d crashes" n (List.length crashes))
        result)
    [
      (3, [ (0, 2) ], 1);
      (5, [ (1, 0); (3, 6) ], 2);
      (7, [ (0, 1); (2, 4); (5, 9) ], 3);
      (9, [ (0, 1); (1, 5); (2, 9); (3, 13) ], 4);
      (4, [ (2, 3) ], 5);
    ]

let test_crash_mid_broadcast () =
  (* A crash splitting a broadcast (some receive, some do not) must not
     hurt: per-edge delays make node 0's messages reach node 1 fast and
     node 2 slow, then node 0 dies in between. *)
  let scheduler =
    Amac.Scheduler.per_edge ~name:"split" ~fack:9
      ~delay:(fun ~sender ~receiver ->
        if sender = 0 && receiver = 2 then 9 else 1)
  in
  let result =
    Consensus.Runner.run
      (Consensus.Ben_or.make ~seed:3 ())
      ~topology:(Amac.Topology.clique 3)
      ~scheduler ~inputs:[| 1; 0; 0 |] ~crashes:[ (0, 4) ] ~max_time:200_000
  in
  check_ok "crash mid-broadcast" result

let test_circumvents_flp () =
  (* The headline: the exact crash schedule that blocks deterministic
     two-phase consensus forever (crash mid-phase-2) is harmless to Ben-Or.
     fixed(4): phase 1 acks at t=4, phase-2 deliveries due t=8; crashing
     node 2 at t=5 leaves the others waiting for its phase-2 message. *)
  let scheduler = Amac.Scheduler.fixed ~delay:4 in
  let crashes = [ (2, 5) ] in
  let inputs = [| 0; 1; 1 |] in
  let two_phase =
    Consensus.Runner.run Consensus.Two_phase.algorithm
      ~topology:(Amac.Topology.clique 3)
      ~scheduler ~inputs ~crashes ~max_time:2_000
  in
  Alcotest.(check bool) "two-phase blocks (termination violated)" false
    two_phase.report.termination;
  Alcotest.(check bool) "two-phase stays safe though" true
    (Consensus.Checker.safe two_phase.report);
  let ben_or =
    Consensus.Runner.run
      (Consensus.Ben_or.make ~seed:11 ())
      ~topology:(Amac.Topology.clique 3)
      ~scheduler ~inputs ~crashes ~max_time:200_000
  in
  check_ok "ben-or decides under the same schedule" ben_or

let test_requires_n () =
  Alcotest.check_raises "needs n"
    (Invalid_argument "Ben_or: requires knowledge of n") (fun () ->
      ignore
        (Consensus.Runner.run
           (Consensus.Ben_or.make ~seed:1 ())
           ~give_n:false
           ~topology:(Amac.Topology.clique 3)
           ~scheduler:Amac.Scheduler.synchronous ~inputs:[| 0; 1; 0 |]))

let test_message_ids () =
  let result = run ~n:4 ~seed:9 (Consensus.Runner.inputs_alternating ~n:4) in
  Alcotest.(check int) "one id per message" 1
    result.outcome.max_ids_per_message

let prop_consensus_with_random_crashes =
  QCheck.Test.make
    ~name:"ben-or: agreement+validity+termination under minority crashes"
    ~count:150
    QCheck.(
      quad (int_range 1 9) small_int (int_range 1 6)
        (pair (list_of_size (Gen.return 9) bool) (list_of_size (Gen.return 4) (int_range 0 30))))
    (fun (n, seed, fack, (bits, crash_times)) ->
      let f = if n <= 2 then 0 else (n - 1) / 2 in
      let crashes =
        List.filteri (fun i _ -> i < f)
          (List.mapi (fun i t -> (i, t)) crash_times)
      in
      let inputs = Array.init n (fun i -> if List.nth bits i then 1 else 0) in
      let result = run ~n ~seed ~fack ~crashes inputs in
      Consensus.Checker.ok result.report)

let prop_unanimity_is_deterministic =
  QCheck.Test.make ~name:"ben-or: unanimity decides round 1, no coin needed"
    ~count:60
    QCheck.(triple (int_range 1 8) small_int bool)
    (fun (n, seed, bit) ->
      let v = if bit then 1 else 0 in
      let result = run ~n ~seed (Consensus.Runner.inputs_all ~n v) in
      Consensus.Checker.ok result.report
      && result.report.decided_values = [ v ])

let () =
  Alcotest.run "ben_or"
    [
      ( "unit",
        [
          Alcotest.test_case "unanimous" `Quick test_unanimous;
          Alcotest.test_case "mixed inputs" `Quick test_mixed_inputs;
          Alcotest.test_case "tiny networks" `Quick test_single_and_pair;
          Alcotest.test_case "minority crashes" `Quick
            test_survives_minority_crashes;
          Alcotest.test_case "crash mid-broadcast" `Quick
            test_crash_mid_broadcast;
          Alcotest.test_case "circumvents FLP schedule" `Quick
            test_circumvents_flp;
          Alcotest.test_case "requires n" `Quick test_requires_n;
          Alcotest.test_case "message ids" `Quick test_message_ids;
        ] );
      ( "property",
        [
          QCheck_alcotest.to_alcotest prop_consensus_with_random_crashes;
          QCheck_alcotest.to_alcotest prop_unanimity_is_deterministic;
        ] );
    ]
