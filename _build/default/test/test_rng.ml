(* Tests for the deterministic splittable PRNG. *)

let test_determinism () =
  let a = Amac.Rng.create 42 and b = Amac.Rng.create 42 in
  let seq rng = List.init 50 (fun _ -> Amac.Rng.int rng 1000) in
  Alcotest.(check (list int)) "same seed, same stream" (seq a) (seq b)

let test_seed_sensitivity () =
  let a = Amac.Rng.create 1 and b = Amac.Rng.create 2 in
  let seq rng = List.init 20 (fun _ -> Amac.Rng.int rng 1_000_000) in
  Alcotest.(check bool) "different seeds diverge" true (seq a <> seq b)

let test_int_bounds () =
  let rng = Amac.Rng.create 7 in
  for _ = 1 to 1000 do
    let v = Amac.Rng.int rng 17 in
    if v < 0 || v >= 17 then Alcotest.fail "int out of bounds"
  done

let test_int_invalid () =
  let rng = Amac.Rng.create 7 in
  Alcotest.check_raises "zero bound"
    (Invalid_argument "Rng.int: bound must be positive") (fun () ->
      ignore (Amac.Rng.int rng 0))

let test_int_range () =
  let rng = Amac.Rng.create 11 in
  let saw_lo = ref false and saw_hi = ref false in
  for _ = 1 to 2000 do
    let v = Amac.Rng.int_range rng ~lo:3 ~hi:5 in
    if v < 3 || v > 5 then Alcotest.fail "int_range out of bounds";
    if v = 3 then saw_lo := true;
    if v = 5 then saw_hi := true
  done;
  Alcotest.(check bool) "inclusive bounds hit" true (!saw_lo && !saw_hi)

let test_split_independence () =
  let parent = Amac.Rng.create 3 in
  let child = Amac.Rng.split parent in
  let child_seq = List.init 10 (fun _ -> Amac.Rng.int child 1000) in
  (* Drawing more from the parent must not change what the child produced. *)
  let parent2 = Amac.Rng.create 3 in
  let child2 = Amac.Rng.split parent2 in
  ignore (Amac.Rng.int parent2 10);
  let child2_seq = List.init 10 (fun _ -> Amac.Rng.int child2 1000) in
  Alcotest.(check (list int)) "split stream is fixed at split time" child_seq
    child2_seq

let test_float_bounds () =
  let rng = Amac.Rng.create 13 in
  for _ = 1 to 1000 do
    let v = Amac.Rng.float rng 2.5 in
    if v < 0.0 || v >= 2.5 then Alcotest.fail "float out of bounds"
  done

let test_bool_mixes () =
  let rng = Amac.Rng.create 17 in
  let trues = ref 0 in
  for _ = 1 to 1000 do
    if Amac.Rng.bool rng then incr trues
  done;
  (* A fair coin landing outside [300, 700] of 1000 would be astronomical. *)
  Alcotest.(check bool) "roughly fair" true (!trues > 300 && !trues < 700)

let test_pick () =
  let rng = Amac.Rng.create 19 in
  for _ = 1 to 100 do
    let v = Amac.Rng.pick rng [ 1; 2; 3 ] in
    if v < 1 || v > 3 then Alcotest.fail "pick out of list"
  done;
  Alcotest.check_raises "empty pick"
    (Invalid_argument "Rng.pick: empty list") (fun () ->
      ignore (Amac.Rng.pick rng []))

let prop_shuffle_permutes =
  QCheck.Test.make ~name:"shuffle yields a permutation" ~count:200
    QCheck.(pair small_int (list small_int))
    (fun (seed, values) ->
      let rng = Amac.Rng.create seed in
      let arr = Array.of_list values in
      Amac.Rng.shuffle rng arr;
      List.sort Int.compare (Array.to_list arr)
      = List.sort Int.compare values)

let () =
  Alcotest.run "rng"
    [
      ( "unit",
        [
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "seed sensitivity" `Quick test_seed_sensitivity;
          Alcotest.test_case "int bounds" `Quick test_int_bounds;
          Alcotest.test_case "int invalid" `Quick test_int_invalid;
          Alcotest.test_case "int_range inclusive" `Quick test_int_range;
          Alcotest.test_case "split independence" `Quick test_split_independence;
          Alcotest.test_case "float bounds" `Quick test_float_bounds;
          Alcotest.test_case "bool mixes" `Quick test_bool_mixes;
          Alcotest.test_case "pick" `Quick test_pick;
        ] );
      ("property", [ QCheck_alcotest.to_alcotest prop_shuffle_permutes ]);
    ]
