(* Bitset checked against a reference implementation (stdlib Set). *)

module Iset = Set.Make (Int)

let of_list universe elements =
  let set = Amac.Bitset.create universe in
  List.iter (Amac.Bitset.add set) elements;
  set

let test_empty () =
  let set = Amac.Bitset.create 100 in
  Alcotest.(check int) "cardinal" 0 (Amac.Bitset.cardinal set);
  Alcotest.(check bool) "is_empty" true (Amac.Bitset.is_empty set);
  Alcotest.(check bool) "mem" false (Amac.Bitset.mem set 5)

let test_add_remove () =
  let set = Amac.Bitset.create 20 in
  Amac.Bitset.add set 7;
  Amac.Bitset.add set 0;
  Amac.Bitset.add set 19;
  Alcotest.(check (list int)) "elements" [ 0; 7; 19 ] (Amac.Bitset.elements set);
  Amac.Bitset.remove set 7;
  Alcotest.(check (list int)) "after remove" [ 0; 19 ] (Amac.Bitset.elements set);
  Amac.Bitset.remove set 7;
  Alcotest.(check (list int)) "idempotent remove" [ 0; 19 ]
    (Amac.Bitset.elements set)

let test_bounds () =
  let set = Amac.Bitset.create 8 in
  Alcotest.check_raises "out of range"
    (Invalid_argument "Bitset: index out of range") (fun () ->
      Amac.Bitset.add set 8)

let test_union_into () =
  let a = of_list 16 [ 1; 3; 5 ] and b = of_list 16 [ 3; 4 ] in
  Amac.Bitset.union_into ~src:a ~dst:b;
  Alcotest.(check (list int)) "union" [ 1; 3; 4; 5 ] (Amac.Bitset.elements b);
  Alcotest.(check (list int)) "src untouched" [ 1; 3; 5 ] (Amac.Bitset.elements a)

let test_union_mismatch () =
  let a = Amac.Bitset.create 8 and b = Amac.Bitset.create 9 in
  Alcotest.check_raises "universe mismatch"
    (Invalid_argument "Bitset.union_into: universe mismatch") (fun () ->
      Amac.Bitset.union_into ~src:a ~dst:b)

let test_copy_independent () =
  let a = of_list 10 [ 2; 4 ] in
  let b = Amac.Bitset.copy a in
  Amac.Bitset.add b 6;
  Alcotest.(check (list int)) "copy modified" [ 2; 4; 6 ] (Amac.Bitset.elements b);
  Alcotest.(check (list int)) "original intact" [ 2; 4 ] (Amac.Bitset.elements a)

let test_subset_equal () =
  let a = of_list 12 [ 1; 2 ] and b = of_list 12 [ 1; 2; 3 ] in
  Alcotest.(check bool) "a subset b" true (Amac.Bitset.subset a b);
  Alcotest.(check bool) "b not subset a" false (Amac.Bitset.subset b a);
  Alcotest.(check bool) "equal self" true (Amac.Bitset.equal a a);
  Alcotest.(check bool) "not equal" false (Amac.Bitset.equal a b)

let test_singleton () =
  let s = Amac.Bitset.singleton 33 32 in
  Alcotest.(check (list int)) "singleton" [ 32 ] (Amac.Bitset.elements s);
  Alcotest.(check int) "capacity" 33 (Amac.Bitset.capacity s)

let gen_ops =
  QCheck.(list (pair bool (int_range 0 63)))

(* Property: a bitset driven by a random add/remove script agrees with a
   reference Set at every observation point. *)
let prop_matches_reference =
  QCheck.Test.make ~name:"bitset matches Set reference" ~count:300 gen_ops
    (fun ops ->
      let set = Amac.Bitset.create 64 in
      let reference =
        List.fold_left
          (fun reference (is_add, i) ->
            if is_add then begin
              Amac.Bitset.add set i;
              Iset.add i reference
            end
            else begin
              Amac.Bitset.remove set i;
              Iset.remove i reference
            end)
          Iset.empty ops
      in
      Amac.Bitset.elements set = Iset.elements reference
      && Amac.Bitset.cardinal set = Iset.cardinal reference
      && Amac.Bitset.is_empty set = Iset.is_empty reference)

let prop_union_is_set_union =
  QCheck.Test.make ~name:"union_into is set union" ~count:300
    QCheck.(pair (list (int_range 0 63)) (list (int_range 0 63)))
    (fun (xs, ys) ->
      let a = of_list 64 xs and b = of_list 64 ys in
      Amac.Bitset.union_into ~src:a ~dst:b;
      Amac.Bitset.elements b
      = Iset.elements (Iset.union (Iset.of_list xs) (Iset.of_list ys)))

let () =
  Alcotest.run "bitset"
    [
      ( "unit",
        [
          Alcotest.test_case "empty" `Quick test_empty;
          Alcotest.test_case "add/remove" `Quick test_add_remove;
          Alcotest.test_case "bounds" `Quick test_bounds;
          Alcotest.test_case "union_into" `Quick test_union_into;
          Alcotest.test_case "union mismatch" `Quick test_union_mismatch;
          Alcotest.test_case "copy independence" `Quick test_copy_independent;
          Alcotest.test_case "subset/equal" `Quick test_subset_equal;
          Alcotest.test_case "singleton" `Quick test_singleton;
        ] );
      ( "property",
        [
          QCheck_alcotest.to_alcotest prop_matches_reference;
          QCheck_alcotest.to_alcotest prop_union_is_set_union;
        ] );
    ]
