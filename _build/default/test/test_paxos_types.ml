(* Proposal numbers and response aggregation — the local step of the
   Lemma 4.2 conservation argument. *)

module P = Consensus.Paxos_types

let pno tag proposer = { P.tag; proposer }

let test_pno_order () =
  Alcotest.(check bool) "tag dominates" true (P.pno_lt (pno 1 9) (pno 2 0));
  Alcotest.(check bool) "id breaks ties" true (P.pno_lt (pno 3 1) (pno 3 2));
  Alcotest.(check bool) "equal" true (P.compare_pno (pno 3 1) (pno 3 1) = 0);
  Alcotest.(check bool) "le reflexive" true (P.pno_le (pno 3 1) (pno 3 1));
  Alcotest.(check bool) "not lt self" false (P.pno_lt (pno 3 1) (pno 3 1))

let test_proposition_order () =
  let open P in
  Alcotest.(check bool) "prepare < propose same pno" true
    (compare_proposition (pno 2 1, Prepare_round) (pno 2 1, Propose_round) < 0);
  Alcotest.(check bool) "higher pno wins over round" true
    (compare_proposition (pno 2 1, Propose_round) (pno 3 0, Prepare_round) < 0)

let test_max_prior () =
  let a = Some { P.pno = pno 2 1; value = 0 } in
  let b = Some { P.pno = pno 3 0; value = 1 } in
  Alcotest.(check bool) "picks higher pno" true (P.max_prior a b = b);
  Alcotest.(check bool) "commutes" true (P.max_prior b a = b);
  Alcotest.(check bool) "none identity" true (P.max_prior None a = a);
  Alcotest.(check bool) "both none" true (P.max_prior None None = None)

let test_max_committed () =
  let a = Some (pno 1 5) and b = Some (pno 2 0) in
  Alcotest.(check bool) "max" true (P.max_committed a b = b);
  Alcotest.(check bool) "none identity" true (P.max_committed b None = b)

let response ?(dest = 7) ?(target = 9) ?(p = pno 2 9) ?(round = P.Prepare_round)
    ?(positive = true) ?(count = 1) ?prior ?committed () =
  {
    P.dest;
    target;
    pno = p;
    round;
    positive;
    count;
    best_prior = prior;
    committed;
  }

let test_mergeable () =
  let a = response () and b = response ~count:3 () in
  Alcotest.(check bool) "same key merges" true (P.mergeable a b);
  Alcotest.(check bool) "different dest" false
    (P.mergeable a (response ~dest:8 ()));
  Alcotest.(check bool) "different polarity" false
    (P.mergeable a (response ~positive:false ()));
  Alcotest.(check bool) "different round" false
    (P.mergeable a (response ~round:P.Propose_round ()));
  Alcotest.(check bool) "different pno" false
    (P.mergeable a (response ~p:(pno 3 9) ()))

let test_merge_counts_and_priors () =
  let a = response ~count:2 ~prior:{ P.pno = pno 1 1; value = 0 } () in
  let b = response ~count:3 ~prior:{ P.pno = pno 2 0; value = 1 } () in
  let merged = P.merge a b in
  Alcotest.(check int) "counts add" 5 merged.P.count;
  Alcotest.(check bool) "keeps higher prior" true
    (merged.P.best_prior = Some { P.pno = pno 2 0; value = 1 })

let test_merge_rejects_unmergeable () =
  Alcotest.check_raises "unmergeable"
    (Invalid_argument "Paxos_types.merge: not mergeable") (fun () ->
      ignore (P.merge (response ()) (response ~dest:8 ())))

let test_aggregate_groups () =
  let responses =
    [
      response ~count:1 ();
      response ~count:2 ~positive:false ();
      response ~count:3 ();
      response ~count:4 ~round:P.Propose_round ();
    ]
  in
  let aggregated = P.aggregate responses in
  Alcotest.(check int) "three classes" 3 (List.length aggregated);
  let total rs = List.fold_left (fun acc r -> acc + r.P.count) 0 rs in
  Alcotest.(check int) "count preserved" (total responses) (total aggregated)

(* Conservation: however a batch is aggregated, per-proposition counts are
   exactly preserved — the base fact the Lemma 4.2 induction rests on. *)
let gen_response =
  QCheck.Gen.(
    let* dest = int_range 0 3 in
    let* positive = bool in
    let* round = oneofl [ P.Prepare_round; P.Propose_round ] in
    let* tag = int_range 0 2 in
    let* count = int_range 1 5 in
    return
      (response ~dest ~p:(pno tag 9) ~round ~positive ~count ()))

let prop_aggregate_conserves_counts =
  QCheck.Test.make ~name:"aggregate conserves per-class counts" ~count:300
    (QCheck.make QCheck.Gen.(list_size (int_range 0 25) gen_response))
    (fun responses ->
      let aggregated = P.aggregate responses in
      let key r = (r.P.dest, r.P.pno, r.P.round, r.P.positive) in
      let sum rs k =
        List.fold_left
          (fun acc r -> if key r = k then acc + r.P.count else acc)
          0 rs
      in
      let keys = List.sort_uniq compare (List.map key responses) in
      List.for_all (fun k -> sum responses k = sum aggregated k) keys
      (* and each class appears at most once after aggregation *)
      && List.length aggregated
         = List.length (List.sort_uniq compare (List.map key aggregated)))

let prop_merge_associative_on_counts =
  QCheck.Test.make ~name:"merge count is associative" ~count:100
    QCheck.(triple (int_range 1 10) (int_range 1 10) (int_range 1 10))
    (fun (a, b, c) ->
      let r n = response ~count:n () in
      let left = P.merge (P.merge (r a) (r b)) (r c) in
      let right = P.merge (r a) (P.merge (r b) (r c)) in
      left.P.count = right.P.count && left.P.count = a + b + c)

let test_pp_smoke () =
  (* Rendering shouldn't raise and should mention the key fields. *)
  let s = P.pp_response (response ~prior:{ P.pno = pno 1 2; value = 1 } ()) in
  Alcotest.(check bool) "mentions count" true
    (String.length s > 0 && String.contains s 'x');
  let s = P.pp_proposer_msg (P.Propose { pno = pno 4 2; value = 1 }) in
  Alcotest.(check bool) "mentions propose" true (String.length s > 6)

let test_id_accounting () =
  Alcotest.(check int) "prepare ids" 1 (P.proposer_msg_ids (P.Prepare (pno 1 2)));
  Alcotest.(check int) "bare response" 3 (P.response_ids (response ()));
  Alcotest.(check int) "with prior and committed" 5
    (P.response_ids
       (response ~prior:{ P.pno = pno 1 2; value = 0 } ~committed:(pno 2 2) ()))

let () =
  Alcotest.run "paxos_types"
    [
      ( "ordering",
        [
          Alcotest.test_case "pno order" `Quick test_pno_order;
          Alcotest.test_case "proposition order" `Quick test_proposition_order;
          Alcotest.test_case "max_prior" `Quick test_max_prior;
          Alcotest.test_case "max_committed" `Quick test_max_committed;
        ] );
      ( "aggregation",
        [
          Alcotest.test_case "mergeable" `Quick test_mergeable;
          Alcotest.test_case "merge" `Quick test_merge_counts_and_priors;
          Alcotest.test_case "merge rejects" `Quick
            test_merge_rejects_unmergeable;
          Alcotest.test_case "aggregate groups" `Quick test_aggregate_groups;
          QCheck_alcotest.to_alcotest prop_aggregate_conserves_counts;
          QCheck_alcotest.to_alcotest prop_merge_associative_on_counts;
        ] );
      ( "misc",
        [
          Alcotest.test_case "pp smoke" `Quick test_pp_smoke;
          Alcotest.test_case "id accounting" `Quick test_id_accounting;
        ] );
    ]
