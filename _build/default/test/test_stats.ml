let feq = Alcotest.float 1e-9

let test_mean () =
  Alcotest.check feq "mean" 2.5 (Amac.Stats.mean [ 1.0; 2.0; 3.0; 4.0 ]);
  Alcotest.check feq "singleton" 7.0 (Amac.Stats.mean [ 7.0 ])

let test_min_max () =
  Alcotest.check feq "min" 1.0 (Amac.Stats.minimum [ 3.0; 1.0; 2.0 ]);
  Alcotest.check feq "max" 3.0 (Amac.Stats.maximum [ 3.0; 1.0; 2.0 ])

let test_percentile () =
  let xs = List.init 100 (fun i -> float_of_int (i + 1)) in
  Alcotest.check feq "p50" 50.0 (Amac.Stats.percentile 50.0 xs);
  Alcotest.check feq "p99" 99.0 (Amac.Stats.percentile 99.0 xs);
  Alcotest.check feq "p0 -> min" 1.0 (Amac.Stats.percentile 0.0 xs);
  Alcotest.check feq "p100 -> max" 100.0 (Amac.Stats.percentile 100.0 xs);
  Alcotest.check feq "median alias" 50.0 (Amac.Stats.median xs)

let test_stddev () =
  Alcotest.check feq "constant" 0.0 (Amac.Stats.stddev [ 5.0; 5.0; 5.0 ]);
  Alcotest.check feq "spread" 2.0 (Amac.Stats.stddev [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ])

let test_empty_raises () =
  Alcotest.check_raises "mean" (Invalid_argument "Stats.mean: empty list")
    (fun () -> ignore (Amac.Stats.mean []));
  Alcotest.check_raises "percentile range"
    (Invalid_argument "Stats.percentile: p out of range") (fun () ->
      ignore (Amac.Stats.percentile 101.0 [ 1.0 ]))

let test_table () =
  let table =
    Amac.Stats.Table.create ~title:"demo" ~columns:[ "name"; "value" ]
  in
  Amac.Stats.Table.add_row table [ "alpha"; "1" ];
  Amac.Stats.Table.add_row table [ "b"; "22" ];
  Amac.Stats.Table.add_note table "a footnote";
  let rendered = Amac.Stats.Table.render table in
  Alcotest.(check bool) "has title" true
    (String.length rendered > 0
    && String.sub rendered 0 11 = "== demo ==\n");
  (* Columns aligned: every data row has the same 'value' column offset. *)
  let lines = String.split_on_char '\n' rendered in
  Alcotest.(check int) "line count (title+hdr+rule+2rows+note+trailing)" 7
    (List.length lines);
  Alcotest.(check bool) "note present" true
    (List.exists (fun l -> l = "  note: a footnote") lines)

let test_table_arity () =
  let table = Amac.Stats.Table.create ~title:"t" ~columns:[ "a"; "b" ] in
  Alcotest.check_raises "cell count"
    (Invalid_argument "Stats.Table.add_row: 1 cells for 2 columns") (fun () ->
      Amac.Stats.Table.add_row table [ "only" ])

let prop_percentile_bounds =
  QCheck.Test.make ~name:"percentile stays within [min, max]" ~count:200
    QCheck.(pair (list_of_size Gen.(1 -- 40) (float_bound_exclusive 100.0)) (float_bound_inclusive 100.0))
    (fun (xs, p) ->
      let v = Amac.Stats.percentile p xs in
      v >= Amac.Stats.minimum xs && v <= Amac.Stats.maximum xs)

let prop_mean_bounds =
  QCheck.Test.make ~name:"mean stays within [min, max]" ~count:200
    QCheck.(list_of_size Gen.(1 -- 40) (float_bound_exclusive 100.0))
    (fun xs ->
      let m = Amac.Stats.mean xs in
      m >= Amac.Stats.minimum xs -. 1e-9 && m <= Amac.Stats.maximum xs +. 1e-9)

let () =
  Alcotest.run "stats"
    [
      ( "unit",
        [
          Alcotest.test_case "mean" `Quick test_mean;
          Alcotest.test_case "min/max" `Quick test_min_max;
          Alcotest.test_case "percentile" `Quick test_percentile;
          Alcotest.test_case "stddev" `Quick test_stddev;
          Alcotest.test_case "empty raises" `Quick test_empty_raises;
          Alcotest.test_case "table rendering" `Quick test_table;
          Alcotest.test_case "table arity" `Quick test_table_arity;
        ] );
      ( "property",
        [
          QCheck_alcotest.to_alcotest prop_percentile_bounds;
          QCheck_alcotest.to_alcotest prop_mean_bounds;
        ] );
    ]
