module T = Amac.Topology

let test_clique () =
  let g = T.clique 6 in
  Alcotest.(check int) "size" 6 (T.size g);
  Alcotest.(check int) "edges" 15 (T.num_edges g);
  Alcotest.(check int) "diameter" 1 (T.diameter g);
  Alcotest.(check bool) "is_clique" true (T.is_clique g);
  Alcotest.(check int) "degree" 5 (T.degree g 3)

let test_line () =
  let g = T.line 8 in
  Alcotest.(check int) "diameter" 7 (T.diameter g);
  Alcotest.(check int) "endpoint degree" 1 (T.degree g 0);
  Alcotest.(check int) "inner degree" 2 (T.degree g 4);
  Alcotest.(check bool) "not clique" false (T.is_clique g);
  Alcotest.(check (list int)) "neighbors of 3" [ 2; 4 ] (T.neighbors g 3)

let test_single_node () =
  let g = T.line 1 in
  Alcotest.(check int) "size" 1 (T.size g);
  Alcotest.(check bool) "connected" true (T.is_connected g);
  Alcotest.(check int) "diameter" 0 (T.diameter g);
  Alcotest.(check bool) "clique" true (T.is_clique g)

let test_ring () =
  let g = T.ring 10 in
  Alcotest.(check int) "diameter" 5 (T.diameter g);
  Alcotest.(check int) "edges" 10 (T.num_edges g);
  Alcotest.(check bool) "wrap edge" true (T.has_edge g 9 0)

let test_star () =
  let g = T.star 9 in
  Alcotest.(check int) "diameter" 2 (T.diameter g);
  Alcotest.(check int) "hub degree" 8 (T.degree g 0);
  Alcotest.(check int) "leaf degree" 1 (T.degree g 5)

let test_grid () =
  let g = T.grid ~width:4 ~height:3 in
  Alcotest.(check int) "size" 12 (T.size g);
  Alcotest.(check int) "diameter" 5 (T.diameter g);
  (* corner, edge, inner degrees *)
  Alcotest.(check int) "corner" 2 (T.degree g 0);
  Alcotest.(check int) "inner" 4 (T.degree g 5)

let test_torus () =
  let g = T.torus ~width:4 ~height:4 in
  Alcotest.(check int) "size" 16 (T.size g);
  Alcotest.(check int) "regular degree" 4 (T.degree g 0);
  Alcotest.(check int) "diameter" 4 (T.diameter g)

let test_binary_tree () =
  let g = T.binary_tree 7 in
  Alcotest.(check int) "size" 7 (T.size g);
  Alcotest.(check int) "edges" 6 (T.num_edges g);
  Alcotest.(check int) "diameter" 4 (T.diameter g);
  Alcotest.(check int) "root degree" 2 (T.degree g 0)

let test_barbell () =
  let g = T.barbell ~clique_size:5 in
  Alcotest.(check int) "size" 10 (T.size g);
  Alcotest.(check int) "diameter" 3 (T.diameter g);
  Alcotest.(check bool) "bridge" true (T.has_edge g 4 5)

let test_star_of_lines () =
  let g = T.star_of_lines ~arms:3 ~arm_len:4 in
  Alcotest.(check int) "size" 13 (T.size g);
  Alcotest.(check int) "diameter" 8 (T.diameter g);
  Alcotest.(check int) "hub degree" 3 (T.degree g 0)

let test_lollipop () =
  let g = T.lollipop ~clique_size:4 ~tail_len:3 in
  Alcotest.(check int) "size" 7 (T.size g);
  Alcotest.(check int) "diameter" 4 (T.diameter g)

let test_of_edges_validation () =
  Alcotest.check_raises "self loop"
    (Invalid_argument "Topology: self-loop at node 2") (fun () ->
      ignore (T.of_edges ~n:3 [ (2, 2) ]));
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Topology: duplicate edge (0,1)") (fun () ->
      ignore (T.of_edges ~n:3 [ (0, 1); (1, 0) ]));
  Alcotest.check_raises "out of range"
    (Invalid_argument "Topology: edge (0,5) out of range for n=3") (fun () ->
      ignore (T.of_edges ~n:3 [ (0, 5) ]))

let test_disconnected () =
  let g = T.of_edges ~n:4 [ (0, 1); (2, 3) ] in
  Alcotest.(check bool) "not connected" false (T.is_connected g);
  Alcotest.check_raises "diameter raises"
    (Invalid_argument "Topology.eccentricity: graph is disconnected")
    (fun () -> ignore (T.diameter g))

let test_bfs_dist () =
  let g = T.line 5 in
  Alcotest.(check (array int)) "distances from 0" [| 0; 1; 2; 3; 4 |]
    (T.bfs_dist g 0);
  Alcotest.(check (array int)) "distances from middle" [| 2; 1; 0; 1; 2 |]
    (T.bfs_dist g 2)

let test_disjoint_union_add_edges () =
  let g = T.disjoint_union (T.line 3) (T.line 2) in
  Alcotest.(check int) "size" 5 (T.size g);
  Alcotest.(check bool) "disconnected" false (T.is_connected g);
  let g = T.add_edges g [ (2, 3) ] in
  Alcotest.(check bool) "joined" true (T.is_connected g);
  Alcotest.(check int) "diameter" 4 (T.diameter g)

let test_edges_each_once () =
  let g = T.clique 4 in
  Alcotest.(check int) "edge count" 6 (List.length (T.edges g));
  List.iter
    (fun (u, v) ->
      if u >= v then Alcotest.fail "edge not normalized (u < v expected)")
    (T.edges g)

let prop_random_connected =
  QCheck.Test.make ~name:"random_connected is connected with right size"
    ~count:150
    QCheck.(triple small_int (int_range 1 60) (int_range 0 30))
    (fun (seed, n, extra) ->
      let rng = Amac.Rng.create seed in
      let g = T.random_connected rng ~n ~extra_edges:extra in
      T.size g = n && T.is_connected g && T.num_edges g >= n - 1)

let prop_grid_diameter =
  QCheck.Test.make ~name:"grid diameter = (w-1)+(h-1)" ~count:50
    QCheck.(pair (int_range 1 8) (int_range 1 8))
    (fun (w, h) ->
      T.diameter (T.grid ~width:w ~height:h) = w - 1 + (h - 1))

let prop_bfs_triangle_inequality =
  QCheck.Test.make ~name:"bfs distances obey the triangle inequality"
    ~count:60
    QCheck.(pair small_int (int_range 2 25))
    (fun (seed, n) ->
      let rng = Amac.Rng.create seed in
      let g = T.random_connected rng ~n ~extra_edges:(n / 2) in
      let d0 = T.bfs_dist g 0 in
      List.for_all
        (fun (u, v) -> abs (d0.(u) - d0.(v)) <= 1)
        (T.edges g))

let () =
  Alcotest.run "topology"
    [
      ( "families",
        [
          Alcotest.test_case "clique" `Quick test_clique;
          Alcotest.test_case "line" `Quick test_line;
          Alcotest.test_case "single node" `Quick test_single_node;
          Alcotest.test_case "ring" `Quick test_ring;
          Alcotest.test_case "star" `Quick test_star;
          Alcotest.test_case "grid" `Quick test_grid;
          Alcotest.test_case "torus" `Quick test_torus;
          Alcotest.test_case "binary tree" `Quick test_binary_tree;
          Alcotest.test_case "barbell" `Quick test_barbell;
          Alcotest.test_case "star of lines" `Quick test_star_of_lines;
          Alcotest.test_case "lollipop" `Quick test_lollipop;
        ] );
      ( "structure",
        [
          Alcotest.test_case "of_edges validation" `Quick
            test_of_edges_validation;
          Alcotest.test_case "disconnected" `Quick test_disconnected;
          Alcotest.test_case "bfs distances" `Quick test_bfs_dist;
          Alcotest.test_case "disjoint union / add edges" `Quick
            test_disjoint_union_add_edges;
          Alcotest.test_case "edges each once" `Quick test_edges_each_once;
        ] );
      ( "property",
        [
          QCheck_alcotest.to_alcotest prop_random_connected;
          QCheck_alcotest.to_alcotest prop_grid_diameter;
          QCheck_alcotest.to_alcotest prop_bfs_triangle_inequality;
        ] );
    ]
