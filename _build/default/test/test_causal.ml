(* The causal-influence tracker in isolation (its engine integration is
   covered in test_engine.ml and test_partition.ml). *)

module C = Amac.Causal

let test_initial_self_influence () =
  let c = C.create ~n:4 in
  for i = 0 to 3 do
    Alcotest.(check (option int))
      (Printf.sprintf "node %d self at 0" i)
      (Some 0)
      (C.first_influence c ~node:i ~origin:i)
  done;
  Alcotest.(check (option int)) "no cross influence yet" None
    (C.first_influence c ~node:0 ~origin:1)

let test_absorb_records_first_time () =
  let c = C.create ~n:3 in
  let snapshot_of_1 = C.snapshot c 1 in
  C.absorb c ~node:0 ~time:7 snapshot_of_1;
  Alcotest.(check (option int)) "1 -> 0 at t=7" (Some 7)
    (C.first_influence c ~node:0 ~origin:1);
  (* A later re-delivery must not overwrite the first time. *)
  C.absorb c ~node:0 ~time:20 snapshot_of_1;
  Alcotest.(check (option int)) "first time kept" (Some 7)
    (C.first_influence c ~node:0 ~origin:1)

let test_transitivity () =
  let c = C.create ~n:3 in
  (* 2's influence reaches 1 at t=3; then 1's (now including 2) reaches 0 at
     t=9: node 0 is influenced by 2 at 9, not 3. *)
  C.absorb c ~node:1 ~time:3 (C.snapshot c 2);
  C.absorb c ~node:0 ~time:9 (C.snapshot c 1);
  Alcotest.(check (option int)) "2 -> 0 via 1" (Some 9)
    (C.first_influence c ~node:0 ~origin:2);
  Alcotest.(check (option int)) "1 -> 0 direct" (Some 9)
    (C.first_influence c ~node:0 ~origin:1)

let test_snapshot_isolation () =
  let c = C.create ~n:3 in
  let snap = C.snapshot c 1 in
  (* Influence absorbed by node 1 AFTER the snapshot must not leak through
     the old snapshot — that is the point of snapshotting at broadcast
     time. *)
  C.absorb c ~node:1 ~time:2 (C.snapshot c 2);
  C.absorb c ~node:0 ~time:5 snap;
  Alcotest.(check (option int)) "no leak of 2 through old snapshot" None
    (C.first_influence c ~node:0 ~origin:2)

let test_earliest_full_influence () =
  let c = C.create ~n:3 in
  Alcotest.(check (option int)) "not full yet" None
    (C.earliest_full_influence c ~node:0);
  C.absorb c ~node:0 ~time:4 (C.snapshot c 1);
  C.absorb c ~node:0 ~time:11 (C.snapshot c 2);
  Alcotest.(check (option int)) "full at the last arrival" (Some 11)
    (C.earliest_full_influence c ~node:0)

let test_influence_set_contents () =
  let c = C.create ~n:4 in
  C.absorb c ~node:0 ~time:1 (C.snapshot c 3);
  Alcotest.(check (list int)) "influence set" [ 0; 3 ]
    (Amac.Bitset.elements (C.influence c 0))

(* Property: under a random absorb script, first_influence times are
   monotone along causality — checked against a naive reference that
   replays the script. *)
let prop_first_influence_matches_reference =
  QCheck.Test.make ~name:"causal tracker matches a replay reference"
    ~count:150
    QCheck.(
      list_of_size
        Gen.(1 -- 30)
        (triple (int_range 0 5) (int_range 0 5) (int_range 1 50)))
    (fun script ->
      let n = 6 in
      let c = C.create ~n in
      (* Reference: explicit influence sets as int lists. *)
      let reference = Array.init n (fun i -> [ i ]) in
      let first = Array.make_matrix n n None in
      for i = 0 to n - 1 do
        first.(i).(i) <- Some 0
      done;
      (* Times must be non-decreasing for the reference semantics; sort. *)
      let script =
        List.sort (fun (_, _, a) (_, _, b) -> Int.compare a b) script
      in
      List.iter
        (fun (src, dst, time) ->
          let snap = C.snapshot c src in
          C.absorb c ~node:dst ~time snap;
          List.iter
            (fun origin ->
              if not (List.mem origin reference.(dst)) then begin
                reference.(dst) <- origin :: reference.(dst);
                first.(dst).(origin) <- Some time
              end)
            reference.(src))
        script;
      let ok = ref true in
      for node = 0 to n - 1 do
        for origin = 0 to n - 1 do
          if C.first_influence c ~node ~origin <> first.(node).(origin) then
            ok := false
        done
      done;
      !ok)

let () =
  Alcotest.run "causal"
    [
      ( "unit",
        [
          Alcotest.test_case "initial self influence" `Quick
            test_initial_self_influence;
          Alcotest.test_case "absorb first time" `Quick
            test_absorb_records_first_time;
          Alcotest.test_case "transitivity" `Quick test_transitivity;
          Alcotest.test_case "snapshot isolation" `Quick
            test_snapshot_isolation;
          Alcotest.test_case "earliest full influence" `Quick
            test_earliest_full_influence;
          Alcotest.test_case "influence set" `Quick test_influence_set_contents;
        ] );
      ( "property",
        [ QCheck_alcotest.to_alcotest prop_first_influence_matches_reference ]
      );
    ]
