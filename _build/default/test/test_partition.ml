(* The Thm 3.10 Omega(D * F_ack) bound, measured via causal influence. *)

let test_cross_influence_exact () =
  (* Under max-delay, influence crosses exactly one hop per F_ack. The
     nearest opposite-half node is ceil(D/2) hops from an endpoint, so the
     earliest cross-influence is exactly ceil(D/2) * F_ack — which meets the
     paper's floor(D/2) * F_ack bound with equality at even D and exceeds it
     by one hop at odd D. *)
  List.iter
    (fun (diameter, fack) ->
      let a =
        Lowerbound.Partition.analyze (Consensus.Wpaxos.make ()) ~diameter
          ~fack
      in
      Alcotest.(check int)
        (Printf.sprintf "bound D=%d fack=%d" diameter fack)
        (diameter / 2 * fack)
        a.lower_bound;
      Alcotest.(check int) "cross influence = ceil(D/2)*F_ack"
        ((diameter + 1) / 2 * fack)
        a.endpoint_cross_influence;
      Alcotest.(check bool) "cross influence >= bound" true
        (a.endpoint_cross_influence >= a.lower_bound))
    [ (4, 3); (8, 2); (8, 5); (13, 4) ]

let test_decisions_respect_bound () =
  List.iter
    (fun (diameter, fack) ->
      let a =
        Lowerbound.Partition.analyze (Consensus.Wpaxos.make ()) ~diameter
          ~fack
      in
      Alcotest.(check bool) "consensus ok" true a.consensus_ok;
      if a.first_decision < a.lower_bound then
        Alcotest.failf "decision at %d before bound %d" a.first_decision
          a.lower_bound)
    [ (4, 3); (8, 4); (16, 2) ]

let test_two_phase_also_respects_bound () =
  (* Even the (single-hop) two-phase algorithm on a diameter-1 "line" (a
     2-clique) respects the trivial bound. More interestingly, flood-gather
     on lines also sits above the bound. *)
  let a =
    Lowerbound.Partition.analyze
      (Consensus.Flood_gather.make ())
      ~diameter:10 ~fack:3
  in
  Alcotest.(check bool) "consensus ok" true a.consensus_ok;
  Alcotest.(check bool) "bound respected" true
    (a.first_decision >= a.lower_bound)

let test_ratio_stays_bounded () =
  (* Optimality in the Thm 4.6 sense: decision time / (D * F_ack/2) stays a
     small constant as D grows — no super-linear blowup. *)
  let ratios =
    List.map
      (fun diameter ->
        let a =
          Lowerbound.Partition.analyze (Consensus.Wpaxos.make ()) ~diameter
            ~fack:3
        in
        a.ratio)
      [ 6; 12; 24 ]
  in
  List.iter
    (fun r ->
      if r > 40.0 then Alcotest.failf "ratio %.1f suggests non-linear time" r)
    ratios

let prop_bound_holds_on_random_fack =
  QCheck.Test.make ~name:"first decision >= floor(D/2)*F_ack (max-delay)"
    ~count:20
    QCheck.(pair (int_range 2 10) (int_range 1 6))
    (fun (diameter, fack) ->
      let a =
        Lowerbound.Partition.analyze (Consensus.Wpaxos.make ()) ~diameter
          ~fack
      in
      a.consensus_ok && a.first_decision >= a.lower_bound)

let () =
  Alcotest.run "partition"
    [
      ( "thm 3.10",
        [
          Alcotest.test_case "cross influence exact" `Quick
            test_cross_influence_exact;
          Alcotest.test_case "decisions respect bound" `Quick
            test_decisions_respect_bound;
          Alcotest.test_case "other algorithms too" `Quick
            test_two_phase_also_respects_bound;
          Alcotest.test_case "ratio bounded (optimality)" `Slow
            test_ratio_stays_bounded;
          QCheck_alcotest.to_alcotest prop_bound_holds_on_random_fack;
        ] );
    ]
