(* The Algorithm 1 erratum demonstration as a regression suite. *)

let demo = lazy (Lowerbound.Erratum.two_phase_demo ())

let test_literal_violates_agreement () =
  let d = Lazy.force demo in
  Alcotest.(check bool) "agreement broken" false d.literal_report.agreement;
  (* The fast node (0) decides its value 0; the slow node (1), missing the
     decided(0) status hidden in R1, falls back to the default 1. *)
  Alcotest.(check (list (pair int int))) "who decided what" [ (0, 0); (1, 1) ]
    d.literal_decisions

let test_literal_other_properties_hold () =
  let d = Lazy.force demo in
  Alcotest.(check bool) "validity still fine" true d.literal_report.validity;
  Alcotest.(check bool) "termination still fine" true
    d.literal_report.termination;
  Alcotest.(check bool) "irrevocability still fine" true
    d.literal_report.irrevocability

let test_corrected_ok () =
  let d = Lazy.force demo in
  Alcotest.(check bool) "corrected algorithm agrees" true
    (Consensus.Checker.ok d.corrected_report);
  (* The corrected rule sees decided(0) in R1 and follows it. *)
  Alcotest.(check (list int)) "decides 0" [ 0 ]
    d.corrected_report.decided_values

let test_literal_fine_on_benign_schedules () =
  (* The literal transcription is only wrong on the nasty interleaving; on
     the synchronous scheduler it behaves. *)
  let result =
    Consensus.Runner.run Consensus.Two_phase.literal
      ~topology:(Amac.Topology.clique 4)
      ~scheduler:Amac.Scheduler.synchronous ~give_n:false
      ~inputs:(Consensus.Runner.inputs_alternating ~n:4)
  in
  Alcotest.(check bool) "literal ok under synchrony" true
    (Consensus.Checker.ok result.report)

(* Property: across random schedules, whenever literal and corrected runs
   both terminate, the CORRECTED one never violates; any divergence between
   them is a literal-rule agreement break. *)
let prop_corrected_never_worse =
  QCheck.Test.make ~name:"corrected two-phase correct wherever literal runs"
    ~count:200
    QCheck.(triple (int_range 2 8) small_int (int_range 1 8))
    (fun (n, seed, fack) ->
      let run algorithm =
        Consensus.Runner.run algorithm
          ~topology:(Amac.Topology.clique n)
          ~scheduler:(Amac.Scheduler.random (Amac.Rng.create seed) ~fack)
          ~give_n:false
          ~inputs:(Consensus.Runner.inputs_alternating ~n)
      in
      let corrected = run Consensus.Two_phase.algorithm in
      Consensus.Checker.ok corrected.report)

let () =
  Alcotest.run "erratum"
    [
      ( "algorithm 1 line 23",
        [
          Alcotest.test_case "literal violates agreement" `Quick
            test_literal_violates_agreement;
          Alcotest.test_case "only agreement breaks" `Quick
            test_literal_other_properties_hold;
          Alcotest.test_case "corrected ok" `Quick test_corrected_ok;
          Alcotest.test_case "literal ok when benign" `Quick
            test_literal_fine_on_benign_schedules;
          QCheck_alcotest.to_alcotest prop_corrected_never_worse;
        ] );
    ]
