(** Bounded exhaustive exploration of the schedule space.

    The abstract MAC layer's guarantees are {e ordering} constraints: every
    neighbor receives a broadcast before the sender's ack, and the ack
    arrives within [F_ack]. Since [F_ack] only bounds time — never the
    interleaving — the set of behaviours an [F_ack]-respecting adversary can
    produce is exactly the set of interleavings of {e deliver} and {e ack}
    events in which each broadcast's deliveries precede its ack. This module
    enumerates that set, up to a depth, over any [('s, 'm) Algorithm.t],
    checking agreement / validity / irrevocability on every reachable
    configuration (and, optionally, termination at quiescent ones).

    This generalises [Lowerbound.Bivalence]'s valid-step semantics, which
    pins each sender's next delivery to its smallest unserved neighbor; here
    {e every} pending delivery (and, under a crash budget, every crash,
    including mid-broadcast ones) is a branch.

    Tractability comes from two reductions:
    - {b state-hash deduplication}: configurations are keyed by the digest
      of their marshalled bytes, so converging interleavings are explored
      once;
    - {b sleep sets} (Godefroid-style partial-order reduction): after
      exploring a transition [t] from a configuration, [t] is put to sleep
      in the siblings' subtrees and stays asleep as long as only transitions
      independent of it execute — deliveries to distinct receivers commute,
      so one order of each commuting pair is pruned. A configuration is
      re-explored only when reached with a sleep set no stored visit
      subsumes, which keeps the reduction sound for state matching. *)

type step =
  | Deliver of { sender : int; receiver : int }
  | Ack of int
  | Crash of int

val pp_step : Format.formatter -> step -> unit

type config = {
  max_depth : int;  (** longest explored schedule, in steps *)
  max_states : int;  (** distinct-configuration budget *)
  crash_budget : int;  (** crash steps allowed per schedule *)
  check_termination : bool;
      (** also report quiescent configurations where a live node never
          decided (meaningful for crash-free runs of terminating
          algorithms; a crash legitimately blocks e.g. two-phase) *)
  stop_at_first_violation : bool;
}

(** [{ max_depth = 64; max_states = 2_000_000; crash_budget = 0;
    check_termination = false; stop_at_first_violation = true }] *)
val default : config

type stats = {
  states : int;  (** distinct configurations visited *)
  transitions : int;  (** steps applied *)
  dedup_hits : int;  (** revisits answered by the state-hash table *)
  sleep_skips : int;  (** enabled transitions pruned by sleep sets *)
  violations : (Consensus.Checker.violation * step list) list;
      (** each distinct violation with a schedule reaching it *)
  truncated : bool;
      (** true when some schedule was cut by [max_depth] / [max_states] —
          [violations = []] is then a bounded verdict, not a proof *)
}

(** [explore config algorithm ~topology ~inputs] — exhaustive up to the
    budgets; [give_n] / [give_diameter] as in {!Amac.Engine.run}.
    @raise Invalid_argument on input/topology size mismatch. *)
val explore :
  ?give_n:bool ->
  ?give_diameter:bool ->
  config ->
  ('s, 'm) Amac.Algorithm.t ->
  topology:Amac.Topology.t ->
  inputs:int array ->
  stats
