(** Bounded exhaustive exploration of the schedule space.

    The abstract MAC layer's guarantees are {e ordering} constraints: every
    neighbor receives a broadcast before the sender's ack, and the ack
    arrives within [F_ack]. Since [F_ack] only bounds time — never the
    interleaving — the set of behaviours an [F_ack]-respecting adversary can
    produce is exactly the set of interleavings of {e deliver} and {e ack}
    events in which each broadcast's deliveries precede its ack. This module
    enumerates that set, up to a depth, over any [('s, 'm) Algorithm.t],
    checking agreement / validity / irrevocability on every reachable
    configuration (and, optionally, termination at quiescent ones).

    This generalises [Lowerbound.Bivalence]'s valid-step semantics, which
    pins each sender's next delivery to its smallest unserved neighbor; here
    {e every} pending delivery (and, under a crash budget, every crash,
    including mid-broadcast ones) is a branch.

    Tractability comes from two reductions:
    - {b state deduplication}: configurations are keyed — by a fast
      structural fingerprint when the algorithm provides
      {!Amac.Algorithm.hooks} (an int-keyed open-addressed table, no
      marshalling, no MD5), falling back to the digest of the marshalled
      bytes otherwise — so converging interleavings are explored once;
    - {b sleep sets} (Godefroid-style partial-order reduction): after
      exploring a transition [t] from a configuration, [t] is put to sleep
      in the siblings' subtrees and stays asleep as long as only transitions
      independent of it execute — deliveries to distinct receivers commute,
      so one order of each commuting pair is pruned. A configuration is
      re-explored only when reached with a sleep set no stored visit
      subsumes, which keeps the reduction sound for state matching.

    Cloning a configuration for a child transition likewise uses the
    algorithm's [clone] hook when present, instead of a Marshal
    round-trip. *)

type step =
  | Deliver of { sender : int; receiver : int }
  | Ack of int
  | Crash of int

val pp_step : Format.formatter -> step -> unit

type config = {
  max_depth : int;  (** longest explored schedule, in steps *)
  max_states : int;  (** distinct-configuration budget *)
  crash_budget : int;  (** crash steps allowed per schedule *)
  check_termination : bool;
      (** also report quiescent configurations where a live node never
          decided (meaningful for crash-free runs of terminating
          algorithms; a crash legitimately blocks e.g. two-phase) *)
  stop_at_first_violation : bool;
  keying : [ `Fast | `Marshal ];
      (** [`Fast] keys the seen-set on the hooks' structural fingerprint
          (63-bit; distinct states alias with probability ~2^-63 per
          pair); [`Marshal] forces the digest-of-marshalled-bytes
          fallback. Algorithms without hooks always use the fallback. *)
  check_collisions : bool;
      (** debug mode for [`Fast]: additionally compute the Marshal digest
          per visit and count fingerprints claimed by two distinct
          digests (reported in [stats.collisions]) *)
}

(** [{ max_depth = 64; max_states = 2_000_000; crash_budget = 0;
    check_termination = false; stop_at_first_violation = true;
    keying = `Fast; check_collisions = false }] *)
val default : config

type stats = {
  states : int;  (** distinct configurations visited *)
  transitions : int;  (** steps applied *)
  dedup_hits : int;  (** revisits answered by the seen-set *)
  sleep_skips : int;  (** enabled transitions pruned by sleep sets *)
  collisions : int;  (** fingerprint/digest disagreements; 0 unless
                         [check_collisions] *)
  violations : (Consensus.Checker.violation * step list) list;
      (** each distinct violation with a schedule reaching it *)
  truncated : bool;
      (** true when some schedule was cut by [max_depth] / [max_states] —
          [violations = []] is then a bounded verdict, not a proof *)
}

(** [explore config algorithm ~topology ~inputs] — exhaustive up to the
    budgets; [give_n] / [give_diameter] as in {!Amac.Engine.run}. [?obs]
    records [explore_*] throughput counters into the registry on return.
    @raise Invalid_argument on input/topology size mismatch. *)
val explore :
  ?give_n:bool ->
  ?give_diameter:bool ->
  ?obs:Obs.Metrics.registry ->
  config ->
  ('s, 'm) Amac.Algorithm.t ->
  topology:Amac.Topology.t ->
  inputs:int array ->
  stats

(** [explore_par ?pool ?jobs config algorithm ~topology ~inputs] — the
    same state space walked level-synchronously: each frontier level is
    sliced across a {!Par} domain pool, every slice dedups against a
    fingerprint-partitioned sharded seen-set (per-shard locks) and expands
    its survivors with exactly the serial step order and sleep-set
    algebra. Slice-local counters and violations merge in slice order on
    the calling domain.

    Soundness matches {!explore}: a visit is skipped only when a stored
    visit subsumes it. The {e verdict} (violations vs clean, up to the
    budgets) is the same; [stats] may differ slightly from the serial DFS
    — visit order changes which sleep sets reach a configuration first,
    and [stop_at_first_violation] / [max_states] cut at level rather than
    step granularity. Memory is proportional to the widest level.

    [?pool] reuses a caller-owned pool (its size wins over [jobs]);
    otherwise a throwaway pool of [jobs] domains is created and shut down.
    [jobs <= 1] without a pool is exactly {!explore}. [?obs] additionally
    records steal counts and shard occupancy. *)
val explore_par :
  ?give_n:bool ->
  ?give_diameter:bool ->
  ?pool:Par.pool ->
  ?jobs:int ->
  ?obs:Obs.Metrics.registry ->
  config ->
  ('s, 'm) Amac.Algorithm.t ->
  topology:Amac.Topology.t ->
  inputs:int array ->
  stats

(** {1 Reachable-configuration sampling}

    A keying-neutral batch of distinct reachable configurations (BFS from
    the initial one, deduplicated by Marshal digest), exposed so
    benchmarks and tests can time / compare the two key and clone
    implementations on exactly the states the explorer visits, without
    the library timing itself. *)

type ('s, 'm) snapshot_set

(** [sample config algorithm ~topology ~inputs ~max_samples] — up to
    [max_samples] distinct configurations, respecting [config]'s depth
    and crash budgets. Violations encountered while sampling are
    ignored. *)
val sample :
  ?give_n:bool ->
  ?give_diameter:bool ->
  config ->
  ('s, 'm) Amac.Algorithm.t ->
  topology:Amac.Topology.t ->
  inputs:int array ->
  max_samples:int ->
  ('s, 'm) snapshot_set

val sample_size : ('s, 'm) snapshot_set -> int

(** Key every sampled configuration via Marshal + Digest; returns a fold
    of the keys (a sink, so the work cannot be optimised away). *)
val keys_marshal : ('s, 'm) snapshot_set -> int

(** Key every sampled configuration via the fingerprint hooks.
    @raise Invalid_argument if the algorithm has no hooks. *)
val keys_fast : ('s, 'm) snapshot_set -> int

(** Clone every sampled configuration's nodes via a Marshal round-trip. *)
val clones_marshal : ('s, 'm) snapshot_set -> int

(** Clone every sampled configuration's nodes via the clone hook.
    @raise Invalid_argument if the algorithm has no hooks. *)
val clones_fast : ('s, 'm) snapshot_set -> int

(** [(Marshal digest, fingerprint)] per sampled configuration — the raw
    material for the fingerprint soundness property (digest-equal implies
    fingerprint-equal) and for measuring the collision rate.
    @raise Invalid_argument if the algorithm has no hooks. *)
val key_pairs : ('s, 'm) snapshot_set -> (string * int) array
