(** Seeded schedule/crash fuzzing with counterexample shrinking.

    Each iteration derives a generator from [(seed, iteration)], draws a
    topology, inputs, [F_ack], a crash pattern (times land inside broadcast
    windows, so crash-mid-broadcast non-atomicity is exercised), and a
    random scheduler wrapped in {!Amac.Scheduler.record}. The run goes
    through {!Consensus.Runner.run} and is judged by
    {!Consensus.Checker.safety_violations} (termination optionally too).

    On failure the recorded decision list makes the whole execution {e
    data}: a {!case} (topology kind + n + inputs + crashes + decision list)
    replays deterministically via {!Amac.Scheduler.replay}, and the shrinker
    delta-debugs it — dropping nodes, dropping and advancing crashes,
    truncating and flattening scheduler decisions, canonicalising inputs —
    re-running after each mutation and keeping it only while some violation
    survives. The result is a minimal reproducer plus the seed that found
    it. *)

type topo_kind = Clique | Line | Ring | Star | Random_graph of int

type case = {
  kind : topo_kind;
  n : int;
  fack : int;  (** recorded for reporting; replay recomputes its own bound *)
  inputs : int array;
  crashes : (int * int) list;
      (** legacy clean-crash schedule; [] when fault-plan fuzzing is on
          (crashes then live inside [faults] so recoveries can pair with
          them and the whole schedule shrinks as one object) *)
  faults : Fault.plan;  (** [] unless [config.faults] is set *)
  plan : Amac.Scheduler.decision list;
}

val pp_case : Format.formatter -> case -> unit

(** [topology_of case] rebuilds the graph ([Random_graph seed] is
    deterministic in its seed and [n]). *)
val topology_of : case -> Amac.Topology.t

(** Sizes for fault-plan generation. Recoveries pair with generated
    crashes; loss windows land on distinct edges; partition windows are
    mutually disjoint; stutters hit distinct nodes — so generated plans are
    valid by construction (and double-checked by {!Fault.validate}). *)
type fault_profile = {
  max_recoveries : int;  (** how many crashed nodes may restart *)
  max_loss_windows : int;  (** per-edge bounded loss windows *)
  max_partitions : int;  (** partition-and-heal episodes *)
  max_stutters : int;  (** per-node stutter windows *)
  max_window : int;  (** maximum width of any window *)
}

type config = {
  iterations : int;
  max_n : int;  (** nodes drawn from [\[2, max_n\]] *)
  max_fack : int;  (** F_ack drawn from [\[1, max_fack\]] *)
  max_crashes : int;  (** crash-pattern size drawn from [\[0, max_crashes\]] *)
  kinds : topo_kind list;  (** topology families to draw from *)
  give_n : bool;
  check_termination : bool;
      (** when true, a completed run (not cut off by [max_time]) in which a
          live node never decided also counts as a failure *)
  max_time : int;
  max_shrink_runs : int;  (** re-run budget for the shrinker *)
  faults : fault_profile option;
      (** [Some profile] switches on fault-plan fuzzing: each case carries a
          generated {!Fault.plan} and the shrinker delta-debugs its events,
          windows and times alongside the other dimensions *)
}

(** 300 iterations, n ≤ 6, F_ack ≤ 8, ≤ 2 crashes, cliques and lines,
    safety-only, 2000 shrink runs, no fault plans. *)
val default : config

(** ≤ 2 recoveries, ≤ 2 loss windows, ≤ 1 partition, ≤ 1 stutter, windows
    up to 40 ticks. *)
val default_fault_profile : fault_profile

(** [derive ~seed ~iteration] is the campaign's per-iteration generator:
    splitmix-style mixing, so [(seed, iteration)] pairs give uncorrelated
    streams without the caller managing one. Exposed so other seeded
    campaigns (e.g. the SMR workload fuzzer) share the same convention. *)
val derive : seed:int -> iteration:int -> Amac.Rng.t

(** [gen_fault_plan rng ~n ~fack ~crashes profile] draws a valid fault plan
    sized by [profile]: the given [(node, time)] crashes become plan events,
    a subset gains paired recoveries, plus per-edge loss windows, disjoint
    partition episodes and per-node stutters — all within a horizon scaled
    by [fack], validated by {!Fault.validate}. *)
val gen_fault_plan :
  Amac.Rng.t ->
  n:int ->
  fack:int ->
  crashes:(int * int) list ->
  fault_profile ->
  Fault.plan

type counterexample = {
  iteration : int;  (** which iteration failed — replay via {!generate} *)
  case : case;  (** the shrunk reproducer *)
  original : case;  (** the case as generated, before shrinking *)
  violations : Consensus.Checker.violation list;  (** of the shrunk case *)
  timeline : string;  (** {!Amac.Trace.timeline} of the shrunk run *)
}

type outcome = {
  iterations_run : int;
  counterexample : counterexample option;  (** [None] — all iterations clean *)
}

val pp_counterexample : Format.formatter -> counterexample -> unit

(** [run config algorithm ~seed] fuzzes until a violation is found (then
    shrinks and stops) or [config.iterations] clean iterations pass. *)
val run : config -> ('s, 'm) Amac.Algorithm.t -> seed:int -> outcome

(** [run_par ?pool ?jobs config algorithm ~seed] — the same campaign
    spread over a {!Par} domain pool. Iterations are scanned in waves of
    contiguous chunks; each iteration re-derives its generator from
    [(seed, iteration)], so chunks are independent, and a wave with
    failures reports the {e minimum} failing iteration — the one the
    sequential scan stops at. Shrinking runs on the calling domain. The
    outcome is therefore byte-identical to {!run}'s at any job count.

    [?pool] reuses a caller-owned pool (its size wins over [jobs]);
    otherwise a throwaway pool of [jobs] domains is created and shut
    down. [jobs <= 1] without a pool is exactly {!run}. *)
val run_par :
  ?pool:Par.pool ->
  ?jobs:int ->
  config ->
  ('s, 'm) Amac.Algorithm.t ->
  seed:int ->
  outcome

(** [generate config algorithm ~seed ~iteration] regenerates one iteration's
    case — including the recorded schedule, which requires running it — and
    returns it with the run's verdict. This is how a reported seed is
    replayed. *)
val generate :
  config ->
  ('s, 'm) Amac.Algorithm.t ->
  seed:int ->
  iteration:int ->
  case * Consensus.Runner.result

(** [run_case config algorithm case] replays a case through
    {!Amac.Scheduler.replay}. [?obs] instruments the replay (see
    {!Consensus.Runner.run}) — how a counterexample's metrics snapshot is
    produced for failure artifacts. *)
val run_case :
  ?record_trace:bool ->
  ?obs:Obs.Metrics.registry ->
  config ->
  ('s, 'm) Amac.Algorithm.t ->
  case ->
  Consensus.Runner.result

(** [violations_of config result] — the failure predicate: safety
    violations, plus termination ones when [config.check_termination] and
    the run was not cut off by [max_time]. *)
val violations_of :
  config -> Consensus.Runner.result -> Consensus.Checker.violation list

(** [shrink config algorithm case] — greedy fixpoint of the shrinking
    passes, bounded by [config.max_shrink_runs] replays. The argument must
    currently fail ({!violations_of} non-empty); the result still does. *)
val shrink : config -> ('s, 'm) Amac.Algorithm.t -> case -> case
