type topo_kind = Clique | Line | Ring | Star | Random_graph of int

type case = {
  kind : topo_kind;
  n : int;
  fack : int;
  inputs : int array;
  crashes : (int * int) list;
  faults : Fault.plan;
  plan : Amac.Scheduler.decision list;
}

let kind_name = function
  | Clique -> "clique"
  | Line -> "line"
  | Ring -> "ring"
  | Star -> "star"
  | Random_graph seed -> Printf.sprintf "random(seed=%d)" seed

let pp_case fmt case =
  Format.fprintf fmt
    "@[<v>%s n=%d F_ack=%d@,inputs=[%s]@,crashes=[%s]@,plan=%d decisions@]"
    (kind_name case.kind) case.n case.fack
    (String.concat ";"
       (Array.to_list (Array.map string_of_int case.inputs)))
    (String.concat ";"
       (List.map
          (fun (node, time) -> Printf.sprintf "%d@t%d" node time)
          case.crashes))
    (List.length case.plan);
  if case.faults <> [] then
    Format.fprintf fmt "@,faults:@,%a" Fault.pp case.faults

let topology_of case =
  match case.kind with
  | Clique -> Amac.Topology.clique case.n
  | Line -> Amac.Topology.line case.n
  | Ring -> Amac.Topology.ring case.n
  | Star -> Amac.Topology.star case.n
  | Random_graph seed ->
      Amac.Topology.random_connected
        (Amac.Rng.create seed)
        ~n:case.n ~extra_edges:(case.n / 3)

type fault_profile = {
  max_recoveries : int;
  max_loss_windows : int;
  max_partitions : int;
  max_stutters : int;
  max_window : int;
}

type config = {
  iterations : int;
  max_n : int;
  max_fack : int;
  max_crashes : int;
  kinds : topo_kind list;
  give_n : bool;
  check_termination : bool;
  max_time : int;
  max_shrink_runs : int;
  faults : fault_profile option;
}

let default =
  {
    iterations = 300;
    max_n = 6;
    max_fack = 8;
    max_crashes = 2;
    kinds = [ Clique; Line ];
    give_n = true;
    check_termination = false;
    max_time = 100_000;
    max_shrink_runs = 2_000;
    faults = None;
  }

let default_fault_profile =
  {
    max_recoveries = 2;
    max_loss_windows = 2;
    max_partitions = 1;
    max_stutters = 1;
    max_window = 40;
  }

type counterexample = {
  iteration : int;
  case : case;
  original : case;
  violations : Consensus.Checker.violation list;
  timeline : string;
}

type outcome = {
  iterations_run : int;
  counterexample : counterexample option;
}

let violations_of config (result : Consensus.Runner.result) =
  let safety = Consensus.Checker.safety_violations result.report in
  if
    config.check_termination
    && (not result.outcome.hit_max_time)
    && not result.report.termination
  then
    safety
    @ List.filter
        (function
          | Consensus.Checker.Termination_violation _ -> true | _ -> false)
        result.report.violations
  else safety

let run_case ?(record_trace = false) ?obs config algorithm case =
  Consensus.Runner.run algorithm ~give_n:config.give_n
    ~topology:(topology_of case)
    ~scheduler:(Amac.Scheduler.replay case.plan)
    ~inputs:case.inputs ~crashes:case.crashes ~faults:case.faults
    ~max_time:config.max_time ~record_trace ?obs

(* splitmix-style mixing so that (seed, iteration) pairs give uncorrelated
   generators without the caller managing a stream. *)
let derive ~seed ~iteration =
  let rng = Amac.Rng.create ((seed * 0x9E3779B1) lxor iteration) in
  ignore (Amac.Rng.bits64 rng);
  rng

(* The crashes move INTO the plan (so recoveries can refer to them and the
   whole fault schedule shrinks as one object) and the plan gains loss
   windows, a partition, stutters — each family built valid by construction
   (distinct edges/nodes, disjoint partition windows) and checked by
   Fault.validate before use. *)
let gen_fault_plan rng ~n ~fack ~crashes p =
  let horizon = ((2 * fack) + 1) * 4 in
  let window rng =
    let from_ = Amac.Rng.int rng horizon in
    let width = 1 + Amac.Rng.int rng (max 1 p.max_window) in
    (from_, from_ + width)
  in
  let crash_events =
    List.map (fun (node, at) -> Fault.Crash { node; at }) crashes
  in
  let recov_budget = Amac.Rng.int rng (p.max_recoveries + 1) in
  let recoveries =
    List.filteri (fun i _ -> i < recov_budget) crashes
    |> List.map (fun (node, at) ->
           Fault.Recover { node; at = at + 1 + Amac.Rng.int rng horizon })
  in
  let rec draw_loss acc used k =
    if k = 0 then acc
    else
      let u = Amac.Rng.int rng n and v = Amac.Rng.int rng n in
      let e = if u < v then (u, v) else (v, u) in
      if u = v || List.mem e used then draw_loss acc used (k - 1)
      else
        let from_, until = window rng in
        draw_loss
          (Fault.Link_drop { edge = e; from_; until } :: acc)
          (e :: used) (k - 1)
  in
  let loss = draw_loss [] [] (Amac.Rng.int rng (p.max_loss_windows + 1)) in
  let rec place_partitions acc t k =
    if k = 0 then acc
    else
      let from_ = t + Amac.Rng.int rng horizon in
      let width = 1 + Amac.Rng.int rng (max 1 p.max_window) in
      let cut =
        List.filter (fun _ -> Amac.Rng.bool rng) (List.init n Fun.id)
      in
      let cut =
        match cut with
        | [] -> [ Amac.Rng.int rng n ]
        | cut when List.length cut = n -> List.tl cut
        | cut -> cut
      in
      place_partitions
        (Fault.Partition { cut; from_; until = from_ + width } :: acc)
        (from_ + width) (k - 1)
  in
  let partitions =
    if n < 2 then []
    else place_partitions [] 0 (Amac.Rng.int rng (p.max_partitions + 1))
  in
  let rec draw_stutters acc used k =
    if k = 0 then acc
    else
      let node = Amac.Rng.int rng n in
      if List.mem node used then draw_stutters acc used (k - 1)
      else
        let from_, until = window rng in
        draw_stutters
          (Fault.Stutter { node; from_; until } :: acc)
          (node :: used) (k - 1)
  in
  let stutters = draw_stutters [] [] (Amac.Rng.int rng (p.max_stutters + 1)) in
  let plan = crash_events @ recoveries @ loss @ partitions @ stutters in
  Fault.validate ~n plan;
  plan

let generate config algorithm ~seed ~iteration =
  let rng = derive ~seed ~iteration in
  let n = Amac.Rng.int_range rng ~lo:2 ~hi:(max 2 config.max_n) in
  let kind =
    match Amac.Rng.pick rng config.kinds with
    | Random_graph _ -> Random_graph (Amac.Rng.int rng 1_000_000)
    | (Clique | Line | Ring | Star) as k -> k
  in
  let kind = if n < 3 && kind = Ring then Clique else kind in
  let fack = Amac.Rng.int_range rng ~lo:1 ~hi:(max 1 config.max_fack) in
  let inputs = Array.init n (fun _ -> if Amac.Rng.bool rng then 1 else 0) in
  (* Crash times are drawn from the first few broadcast windows: every
     algorithm broadcasts at t=0, so times in [1, fack] land mid-broadcast
     (the window is (0, ack <= fack]), exercising Sec 2's non-atomic
     crashes; later times interrupt follow-up phases. At most one crash per
     node: the engine (rightly) rejects a second crash of the same
     incarnation. *)
  let crash_count = Amac.Rng.int rng (config.max_crashes + 1) in
  let crashes =
    List.init crash_count (fun _ ->
        ( Amac.Rng.int rng n,
          Amac.Rng.int_range rng ~lo:0 ~hi:(((2 * fack) + 1) * 2) ))
    |> List.sort_uniq compare
    |> List.fold_left
         (fun acc (node, time) ->
           if List.mem_assoc node acc then acc else (node, time) :: acc)
         []
    |> List.rev
  in
  let faults =
    match config.faults with
    | None -> []
    | Some p -> gen_fault_plan rng ~n ~fack ~crashes p
  in
  let crashes = if config.faults = None then crashes else [] in
  let base = Amac.Scheduler.random (Amac.Rng.split rng) ~fack in
  let recording, recorded = Amac.Scheduler.record base in
  let result =
    Consensus.Runner.run algorithm ~give_n:config.give_n
      ~topology:
        (topology_of { kind; n; fack; inputs; crashes; faults; plan = [] })
      ~scheduler:recording ~inputs ~crashes ~faults ~max_time:config.max_time
  in
  ({ kind; n; fack; inputs; crashes; faults; plan = recorded () }, result)

(* ---------------------------------------------------------------- *)
(* Shrinking: greedy delta-debugging over the case's four dimensions *)
(* ---------------------------------------------------------------- *)

let restrict_plan plan n' =
  List.filter_map
    (function
      | Fault.Crash { node; _ } as e -> if node < n' then Some e else None
      | Fault.Recover { node; _ } as e -> if node < n' then Some e else None
      | Fault.Link_drop { edge = u, v; _ } as e ->
          if u < n' && v < n' then Some e else None
      | Fault.Partition { cut; from_; until } ->
          let cut = List.filter (fun v -> v < n') cut in
          if cut <> [] && List.length cut < n' then
            Some (Fault.Partition { cut; from_; until })
          else None
      | Fault.Stutter { node; _ } as e -> if node < n' then Some e else None)
    plan

let restrict_to case n' =
  {
    case with
    n = n';
    inputs = Array.sub case.inputs 0 n';
    crashes = List.filter (fun (node, _) -> node < n') case.crashes;
    faults = restrict_plan case.faults n';
  }

let normalize_decision (d : Amac.Scheduler.decision) =
  {
    Amac.Scheduler.ack_delay = 1;
    delays = List.map (fun (v, _) -> (v, 1)) d.Amac.Scheduler.delays;
  }

(* Pull a fault event toward the trivial one: times toward 0, windows
   narrowed to width >= 1. [divisor = max_int] is the all-the-way jump. *)
let shrink_fault_event divisor = function
  | Fault.Crash { node; at } -> Fault.Crash { node; at = at / divisor }
  | Fault.Recover { node; at } -> Fault.Recover { node; at = at / divisor }
  | Fault.Link_drop { edge; from_; until } ->
      let width = max 1 ((until - from_) / divisor) in
      let from_ = from_ / divisor in
      Fault.Link_drop { edge; from_; until = from_ + width }
  | Fault.Partition { cut; from_; until } ->
      let width = max 1 ((until - from_) / divisor) in
      let from_ = from_ / divisor in
      Fault.Partition { cut; from_; until = from_ + width }
  | Fault.Stutter { node; from_; until } ->
      let width = max 1 ((until - from_) / divisor) in
      let from_ = from_ / divisor in
      Fault.Stutter { node; from_; until = from_ + width }

let shrink config algorithm case =
  let budget = ref config.max_shrink_runs in
  let fails candidate =
    !budget > 0
    &&
    (decr budget;
     match run_case config algorithm candidate with
     | result -> violations_of config result <> []
     | exception Invalid_argument _ -> false)
  in
  let improve case candidates =
    match List.find_opt fails candidates with
    | Some better -> (true, better)
    | None -> (false, case)
  in
  let pass_nodes case =
    (* Smallest n that still fails, trying from 2 upward. *)
    let candidates =
      List.filter_map
        (fun n' -> if n' < case.n then Some (restrict_to case n') else None)
        (List.init (max 0 (case.n - 2)) (fun i -> i + 2))
    in
    improve case candidates
  in
  let pass_crashes case =
    (* Drop each crash; then pull each crash time toward 0. *)
    let drops =
      List.mapi
        (fun i _ ->
          { case with crashes = List.filteri (fun j _ -> j <> i) case.crashes })
        case.crashes
    in
    let earlier =
      List.concat_map
        (fun divisor ->
          List.mapi
            (fun i (node, time) ->
              {
                case with
                crashes =
                  List.mapi
                    (fun j c -> if i = j then (node, time / divisor) else c)
                    case.crashes;
              })
            case.crashes)
        [ max_int; 2 ]
    in
    improve case (drops @ earlier)
  in
  let pass_plan_truncate case =
    let len = List.length case.plan in
    let truncate k = { case with plan = List.filteri (fun i _ -> i < k) case.plan } in
    improve case
      (List.filter_map
         (fun k -> if k < len then Some (truncate k) else None)
         [ 0; len / 4; len / 2; 3 * len / 4; len - 1 ])
  in
  let pass_plan_flatten case =
    (* Normalise decisions (every delay to 1) — all at once, then one by
       one. A decision that survives flattening was not load-bearing. *)
    let all = { case with plan = List.map normalize_decision case.plan } in
    let singles =
      List.mapi
        (fun i _ ->
          {
            case with
            plan =
              List.mapi
                (fun j d -> if i = j then normalize_decision d else d)
                case.plan;
          })
        case.plan
    in
    improve case (all :: singles)
  in
  let pass_inputs case =
    let flips =
      List.filter_map
        (fun i ->
          if case.inputs.(i) = 1 then (
            let inputs = Array.copy case.inputs in
            inputs.(i) <- 0;
            Some { case with inputs })
          else None)
        (List.init case.n (fun i -> i))
    in
    improve case flips
  in
  let pass_faults (case : case) =
    (* Drop each event; drop crash+recovery pairs together (a lone recovery
       is invalid and would be rejected, masking the shrink); narrow windows
       and pull times toward 0 (all-at-once, then halving); thin partition
       cuts. Any candidate the validator rejects fails [fails] safely. *)
    let replace i e' =
      { case with faults = List.mapi (fun j e -> if i = j then e' else e) case.faults }
    in
    let drops =
      List.mapi
        (fun i _ ->
          { case with faults = List.filteri (fun j _ -> j <> i) case.faults })
        case.faults
    in
    let drop_pairs =
      List.filter_map
        (function
          | Fault.Crash { node; _ } ->
              Some
                {
                  case with
                  faults =
                    List.filter
                      (function
                        | Fault.Crash { node = v; _ }
                        | Fault.Recover { node = v; _ } ->
                            v <> node
                        | _ -> true)
                      case.faults;
                }
          | _ -> None)
        case.faults
    in
    let narrowed divisor =
      List.mapi (fun i e -> replace i (shrink_fault_event divisor e)) case.faults
    in
    let cut_thinning =
      List.concat
        (List.mapi
           (fun i e ->
             match e with
             | Fault.Partition { cut; from_; until } when List.length cut > 1
               ->
                 List.map
                   (fun v ->
                     replace i
                       (Fault.Partition
                          { cut = List.filter (( <> ) v) cut; from_; until }))
                   cut
             | _ -> [])
           case.faults)
    in
    improve case
      (drops @ drop_pairs @ narrowed max_int @ narrowed 2 @ cut_thinning)
  in
  let passes =
    [
      pass_nodes;
      pass_crashes;
      pass_faults;
      pass_plan_truncate;
      pass_plan_flatten;
      pass_inputs;
    ]
  in
  let rec fixpoint case =
    let changed, case =
      List.fold_left
        (fun (changed, case) pass ->
          let c, case = pass case in
          (changed || c, case))
        (false, case) passes
    in
    if changed && !budget > 0 then fixpoint case else case
  in
  fixpoint case

let pp_counterexample fmt cx =
  Format.fprintf fmt
    "@[<v>iteration %d:@,%a@,violations:@,  %a@,timeline:@,%s@]" cx.iteration
    pp_case cx.case
    (Format.pp_print_list ~pp_sep:Format.pp_print_space
       Consensus.Checker.pp_violation)
    cx.violations cx.timeline

(* First failing iteration in [lo, hi), with its (unshrunk) case. Pure in
   (config, algorithm, seed, lo, hi): every iteration re-derives its own
   generator, so the same range scanned on any domain yields the same
   answer — the keystone of [run_par]'s determinism. *)
let find_failure config algorithm ~seed ~lo ~hi =
  let rec scan i =
    if i >= hi then None
    else
      let case, first = generate config algorithm ~seed ~iteration:i in
      if violations_of config first <> [] then Some (i, case) else scan (i + 1)
  in
  scan lo

let finalize config algorithm ~iteration case =
  let shrunk = shrink config algorithm case in
  let replay = run_case ~record_trace:true config algorithm shrunk in
  {
    iteration;
    case = shrunk;
    original = case;
    violations = violations_of config replay;
    timeline = Amac.Trace.timeline ~n:shrunk.n replay.outcome.trace;
  }

let run config algorithm ~seed =
  match find_failure config algorithm ~seed ~lo:0 ~hi:config.iterations with
  | None -> { iterations_run = config.iterations; counterexample = None }
  | Some (iteration, case) ->
      {
        iterations_run = iteration + 1;
        counterexample = Some (finalize config algorithm ~iteration case);
      }

(* Parallel campaign over a domain pool. Iterations are scanned in waves
   of contiguous chunks; a wave with failures reports the MINIMUM failing
   iteration — exactly the one the sequential scan would have stopped at,
   since every earlier iteration was scanned clean in this or an earlier
   wave. Shrinking and replay run on the calling domain. Hence the outcome
   (and anything printed from it) is byte-identical to [run]'s at any job
   count. *)
let run_par ?pool ?(jobs = 1) config algorithm ~seed =
  let owned, pool =
    match pool with
    | Some p -> (None, Some p)
    | None ->
        if jobs <= 1 then (None, None)
        else
          let p = Par.create ~domains:jobs () in
          (Some p, Some p)
  in
  match pool with
  | None -> run config algorithm ~seed
  | Some pool ->
      Fun.protect
        ~finally:(fun () ->
          match owned with Some p -> Par.shutdown p | None -> ())
        (fun () ->
          if Par.size pool <= 1 then run config algorithm ~seed
          else begin
            (* Small chunks: each iteration is already tens of
               microseconds, so a chunk of a few amortizes the
               cross-domain wakeup, keeps the per-domain allocation
               bursts short (long concurrent bursts amplify minor-GC
               stop-the-world stalls), and bounds wasted work past the
               first failure to wave granularity. *)
            let chunk = 4 in
            let wave = Par.size pool * 4 * chunk in
            let rec waves start =
              if start >= config.iterations then
                { iterations_run = config.iterations; counterexample = None }
              else
                let stop = min config.iterations (start + wave) in
                let chunks =
                  Array.init
                    ((stop - start + chunk - 1) / chunk)
                    (fun k ->
                      let lo = start + (k * chunk) in
                      (lo, min stop (lo + chunk)))
                in
                let hits =
                  Par.map pool
                    (fun (lo, hi) -> find_failure config algorithm ~seed ~lo ~hi)
                    chunks
                  |> Array.to_list
                  |> List.filter_map Fun.id
                in
                match hits with
                | [] -> waves stop
                | first :: rest ->
                    let iteration, case =
                      List.fold_left
                        (fun (bi, bc) (i, c) ->
                          if i < bi then (i, c) else (bi, bc))
                        first rest
                    in
                    {
                      iterations_run = iteration + 1;
                      counterexample =
                        Some (finalize config algorithm ~iteration case);
                    }
            in
            waves 0
          end)
