type step =
  | Deliver of { sender : int; receiver : int }
  | Ack of int
  | Crash of int

let pp_step fmt = function
  | Deliver { sender; receiver } ->
      Format.fprintf fmt "deliver(%d->%d)" sender receiver
  | Ack node -> Format.fprintf fmt "ack(%d)" node
  | Crash node -> Format.fprintf fmt "crash(%d)" node

type config = {
  max_depth : int;
  max_states : int;
  crash_budget : int;
  check_termination : bool;
  stop_at_first_violation : bool;
}

let default =
  {
    max_depth = 64;
    max_states = 2_000_000;
    crash_budget = 0;
    check_termination = false;
    stop_at_first_violation = true;
  }

type stats = {
  states : int;
  transitions : int;
  dedup_hits : int;
  sleep_skips : int;
  violations : (Consensus.Checker.violation * step list) list;
  truncated : bool;
}

(* A node's untimed view: its algorithm state, the broadcast in flight (with
   the live neighbors still owed a delivery), and what it decided. Times are
   gone — only the MAC layer's ordering constraints remain. *)
type ('s, 'm) node_cfg = {
  st : 's;
  outgoing : 'm option;
  undelivered : int list;  (* live neighbors still owed the delivery *)
  decided : int option;
  crashed : bool;
}

type ('s, 'm) cfg = {
  nodes : ('s, 'm) node_cfg array;
  crashes_used : int;
}

(* Two transitions commute iff neither reads state the other writes.
   Deliver(s,r) writes r's algorithm state and removes r from s's
   undelivered set; Ack(u) writes u. Deliveries to distinct receivers
   always commute (removals from the same sender's set are disjoint, and a
   receiver's reaction only reads the in-flight message, which is fixed
   until the ack). Crashes mutate every sender still owing the crashed node
   a delivery, so they are conservatively dependent on everything. *)
let independent a b =
  match (a, b) with
  | Deliver d1, Deliver d2 -> d1.receiver <> d2.receiver
  | Deliver d, Ack u | Ack u, Deliver d -> d.receiver <> u && d.sender <> u
  | Ack u, Ack v -> u <> v
  | Crash _, _ | _, Crash _ -> false

(* Configurations are keyed by the digest of their marshalled bytes, as in
   Lowerbound.Bivalence: 16 bytes per state, non-canonical keys only cost
   duplicate work. The crash budget used so far is part of the key — equal
   node states with different remaining budgets have different futures. *)
let key cfg = Digest.string (Marshal.to_string (cfg.nodes, cfg.crashes_used) [])

let snapshot_nodes nodes : ('s, 'm) node_cfg array =
  Marshal.from_string (Marshal.to_string nodes []) 0

exception Violation_found

let explore ?(give_n = true) ?(give_diameter = false) config algorithm
    ~topology ~inputs =
  let n = Amac.Topology.size topology in
  if Array.length inputs <> n then
    invalid_arg "Explore.explore: inputs length mismatches topology";
  let ctxs =
    Array.init n (fun i ->
        {
          Amac.Algorithm.id = Amac.Node_id.Id i;
          n = (if give_n then Some n else None);
          diameter =
            (if give_diameter then Some (Amac.Topology.diameter topology)
             else None);
          degree = Amac.Topology.degree topology i;
          input = inputs.(i);
        })
  in
  let input_values = Array.to_list inputs |> List.sort_uniq Int.compare in
  let states = ref 0 in
  let transitions = ref 0 in
  let dedup_hits = ref 0 in
  let sleep_skips = ref 0 in
  let truncated = ref false in
  let violations = ref [] in
  let record_violation violation path =
    if not (List.mem_assoc violation !violations) then begin
      violations := (violation, List.rev path) :: !violations;
      if config.stop_at_first_violation then raise Violation_found
    end
  in

  (* Apply a node's actions in place (the caller owns a private snapshot).
     Broadcasting while one is in flight discards, as in the engine; a
     re-decide with a different value is an irrevocability violation. *)
  let apply_actions nodes node actions ~path =
    List.iter
      (fun action ->
        match action with
        | Amac.Algorithm.Decide value -> (
            match nodes.(node).decided with
            | None -> nodes.(node) <- { (nodes.(node)) with decided = Some value }
            | Some prior ->
                if prior <> value then
                  record_violation
                    (Consensus.Checker.Irrevocability_violation
                       { node; value; time = 0 })
                    path)
        | Amac.Algorithm.Broadcast message ->
            if nodes.(node).outgoing = None then
              nodes.(node) <-
                {
                  (nodes.(node)) with
                  outgoing = Some message;
                  undelivered =
                    List.filter
                      (fun v -> not nodes.(v).crashed)
                      (Amac.Topology.neighbors topology node);
                })
      actions
  in

  let check_safety nodes ~path =
    let decided =
      Array.to_list nodes
      |> List.filter_map (fun c -> c.decided)
      |> List.sort_uniq Int.compare
    in
    (match decided with
    | [] | [ _ ] -> ()
    | values ->
        record_violation (Consensus.Checker.Agreement_violation { values }) path);
    let invalid = List.filter (fun v -> not (List.mem v input_values)) decided in
    if invalid <> [] then
      record_violation
        (Consensus.Checker.Validity_violation
           { values = invalid; inputs = input_values })
        path
  in

  let enabled cfg =
    let steps = ref [] in
    if cfg.crashes_used < config.crash_budget then
      for u = n - 1 downto 0 do
        if not cfg.nodes.(u).crashed then steps := Crash u :: !steps
      done;
    for s = n - 1 downto 0 do
      let node = cfg.nodes.(s) in
      if (not node.crashed) && node.outgoing <> None then
        match node.undelivered with
        | [] -> steps := Ack s :: !steps
        | pending ->
            List.iter (fun r -> steps := Deliver { sender = s; receiver = r } :: !steps)
              (List.rev pending)
    done;
    !steps
  in

  let apply cfg step ~path =
    incr transitions;
    let nodes = snapshot_nodes cfg.nodes in
    let crashes_used = ref cfg.crashes_used in
    (match step with
    | Crash u ->
        incr crashes_used;
        (* Mid-broadcast non-atomicity: neighbors already served keep the
           message; the rest never receive it. *)
        nodes.(u) <-
          { (nodes.(u)) with crashed = true; outgoing = None; undelivered = [] };
        Array.iteri
          (fun s node ->
            if List.mem u node.undelivered then
              nodes.(s) <-
                {
                  node with
                  undelivered = List.filter (fun v -> v <> u) node.undelivered;
                })
          nodes
    | Deliver { sender; receiver } ->
        let message =
          match nodes.(sender).outgoing with
          | Some m -> m
          | None -> invalid_arg "Explore.apply: sender not sending"
        in
        nodes.(sender) <-
          {
            (nodes.(sender)) with
            undelivered =
              List.filter (fun v -> v <> receiver) nodes.(sender).undelivered;
          };
        let actions =
          algorithm.Amac.Algorithm.on_receive ctxs.(receiver)
            nodes.(receiver).st message
        in
        apply_actions nodes receiver actions ~path
    | Ack u ->
        nodes.(u) <- { (nodes.(u)) with outgoing = None };
        let actions = algorithm.Amac.Algorithm.on_ack ctxs.(u) nodes.(u).st in
        apply_actions nodes u actions ~path);
    let cfg = { nodes; crashes_used = !crashes_used } in
    check_safety cfg.nodes ~path;
    cfg
  in

  (* seen : digest -> sleep sets already explored from that configuration.
     A visit is redundant iff some stored sleep set is a subset of the
     incoming one (everything the new visit would explore, an old one did). *)
  let seen : (string, step list list) Hashtbl.t = Hashtbl.create 4096 in
  let subset a b = List.for_all (fun x -> List.mem x b) a in

  let rec dfs cfg ~depth ~sleep ~path =
    let k = key cfg in
    let stored = try Hashtbl.find seen k with Not_found -> [] in
    if List.exists (fun old -> subset old sleep) stored then incr dedup_hits
    else begin
      if stored = [] then incr states;
      Hashtbl.replace seen k
        (sleep :: List.filter (fun old -> not (subset sleep old)) stored);
      if !states > config.max_states then truncated := true
      else begin
        let steps = enabled cfg in
        (match steps with
        | [] ->
            if config.check_termination && cfg.crashes_used = 0 then begin
              let undecided = ref [] in
              Array.iteri
                (fun i node ->
                  if (not node.crashed) && node.decided = None then
                    undecided := i :: !undecided)
                cfg.nodes;
              if !undecided <> [] then
                record_violation
                  (Consensus.Checker.Termination_violation
                     { nodes = List.rev !undecided })
                  path
            end
        | _ :: _ when depth >= config.max_depth -> truncated := true
        | _ :: _ ->
            let executed = ref [] in
            List.iter
              (fun step ->
                if List.mem step sleep then incr sleep_skips
                else begin
                  let child = apply cfg step ~path:(step :: path) in
                  let child_sleep =
                    List.filter (independent step) (sleep @ List.rev !executed)
                  in
                  dfs child ~depth:(depth + 1) ~sleep:child_sleep
                    ~path:(step :: path);
                  executed := step :: !executed
                end)
              steps)
      end
    end
  in

  let initial =
    let inits = Array.map algorithm.Amac.Algorithm.init ctxs in
    let nodes =
      Array.map
        (fun (st, _) ->
          { st; outgoing = None; undelivered = []; decided = None; crashed = false })
        inits
    in
    Array.iteri
      (fun i (_, actions) -> apply_actions nodes i actions ~path:[])
      inits;
    check_safety nodes ~path:[];
    { nodes; crashes_used = 0 }
  in
  (try dfs initial ~depth:0 ~sleep:[] ~path:[] with Violation_found -> ());
  {
    states = !states;
    transitions = !transitions;
    dedup_hits = !dedup_hits;
    sleep_skips = !sleep_skips;
    violations = List.rev !violations;
    truncated = !truncated;
  }
