type step =
  | Deliver of { sender : int; receiver : int }
  | Ack of int
  | Crash of int

let pp_step fmt = function
  | Deliver { sender; receiver } ->
      Format.fprintf fmt "deliver(%d->%d)" sender receiver
  | Ack node -> Format.fprintf fmt "ack(%d)" node
  | Crash node -> Format.fprintf fmt "crash(%d)" node

type config = {
  max_depth : int;
  max_states : int;
  crash_budget : int;
  check_termination : bool;
  stop_at_first_violation : bool;
  keying : [ `Fast | `Marshal ];
  check_collisions : bool;
}

let default =
  {
    max_depth = 64;
    max_states = 2_000_000;
    crash_budget = 0;
    check_termination = false;
    stop_at_first_violation = true;
    keying = `Fast;
    check_collisions = false;
  }

type stats = {
  states : int;
  transitions : int;
  dedup_hits : int;
  sleep_skips : int;
  collisions : int;
  violations : (Consensus.Checker.violation * step list) list;
  truncated : bool;
}

(* A node's untimed view: its algorithm state, the broadcast in flight (with
   the live neighbors still owed a delivery), and what it decided. Times are
   gone — only the MAC layer's ordering constraints remain. *)
type ('s, 'm) node_cfg = {
  st : 's;
  outgoing : 'm option;
  undelivered : int list;  (* live neighbors still owed the delivery *)
  decided : int option;
  crashed : bool;
}

type ('s, 'm) cfg = {
  nodes : ('s, 'm) node_cfg array;
  crashes_used : int;
  fps : int array;
      (* per-node fingerprint cache: [fps.(i)] is the finalized fingerprint
         of [nodes.(i)] (seeded with [i]), or -1 when not yet computed. A
         child copies its parent's array and resets only the slots its step
         touched, so keying costs O(changed nodes), not O(n). Kept OUTSIDE
         [node_cfg] so the Marshal digest of [(nodes, crashes_used)] — the
         fallback key and the collision-check ground truth — is independent
         of cache state. Cross-domain safety: a slot is only ever written
         with the one value determined by the node's content, so racy reads
         see either -1 (recompute, same result) or that value. *)
}

(* Two transitions commute iff neither reads state the other writes.
   Deliver(s,r) writes r's algorithm state and removes r from s's
   undelivered set; Ack(u) writes u. Deliveries to distinct receivers
   always commute (removals from the same sender's set are disjoint, and a
   receiver's reaction only reads the in-flight message, which is fixed
   until the ack). Crashes mutate every sender still owing the crashed node
   a delivery, so they are conservatively dependent on everything. *)
let independent a b =
  match (a, b) with
  | Deliver d1, Deliver d2 -> d1.receiver <> d2.receiver
  | Deliver d, Ack u | Ack u, Deliver d -> d.receiver <> u && d.sender <> u
  | Ack u, Ack v -> u <> v
  | Crash _, _ | _, Crash _ -> false

(* Fallback keying: digest of the marshalled bytes, as in
   Lowerbound.Bivalence. The crash budget used so far is part of the key —
   equal node states with different remaining budgets have different
   futures. *)
let key cfg = Digest.string (Marshal.to_string (cfg.nodes, cfg.crashes_used) [])

let marshal_snapshot nodes : ('s, 'm) node_cfg array =
  Marshal.from_string (Marshal.to_string nodes []) 0

module F = Amac.Fingerprint

(* Per-run machinery shared by the serial DFS, the parallel frontier
   explorer and the sampling API. [snapshot] and [fingerprint] come from
   the algorithm's hooks when present: cloning replaces the Marshal
   round-trip, and keying replaces digest-of-marshalled-bytes with a
   63-bit structural fold (config.keying can force the fallback). *)
type ('s, 'm) rt = {
  n : int;
  topology : Amac.Topology.t;
  ctxs : Amac.Algorithm.ctx array;
  algorithm : ('s, 'm) Amac.Algorithm.t;
  input_values : int list;
  clone_state : 's -> 's;
  fingerprint : (('s, 'm) cfg -> int) option;
}

let make_rt ~give_n ~give_diameter algorithm ~topology ~inputs =
  let n = Amac.Topology.size topology in
  if Array.length inputs <> n then
    invalid_arg "Explore.explore: inputs length mismatches topology";
  let ctxs =
    Array.init n (fun i ->
        {
          Amac.Algorithm.id = Amac.Node_id.Id i;
          n = (if give_n then Some n else None);
          diameter =
            (if give_diameter then Some (Amac.Topology.diameter topology)
             else None);
          degree = Amac.Topology.degree topology i;
          input = inputs.(i);
        })
  in
  let input_values = Array.to_list inputs |> List.sort_uniq Int.compare in
  let clone_state, fingerprint =
    match algorithm.Amac.Algorithm.hooks with
    | Some h ->
        let fp_node nc i =
          F.int i F.empty |> h.fingerprint nc.st
          |> F.option h.fingerprint_msg nc.outgoing
          |> F.list F.int nc.undelivered
          |> F.option F.int nc.decided
          |> F.bool nc.crashed |> F.to_int
        in
        ( h.clone,
          Some
            (fun cfg ->
              (* Zobrist-style combine: XOR of per-node finalized
                 fingerprints (each seeded with its index, so permutations
                 differ), then one finishing mix with the crash budget.
                 XOR makes the per-node cache possible — an order-dependent
                 fold could not reuse untouched nodes' work. *)
              let acc = ref 0 in
              for i = 0 to Array.length cfg.nodes - 1 do
                let f = cfg.fps.(i) in
                let f =
                  if f >= 0 then f
                  else begin
                    let f = fp_node cfg.nodes.(i) i in
                    cfg.fps.(i) <- f;
                    f
                  end
                in
                acc := !acc lxor f
              done;
              F.to_int (F.int cfg.crashes_used (F.int !acc F.empty))) )
    | None ->
        ((fun st -> Marshal.from_string (Marshal.to_string st []) 0), None)
  in
  { n; topology; ctxs; algorithm; input_values; clone_state; fingerprint }

(* Apply a node's actions in place (the caller owns a private snapshot).
   Broadcasting while one is in flight discards, as in the engine; a
   re-decide with a different value is an irrevocability violation. *)
let apply_actions rt ~record nodes node actions ~path =
  List.iter
    (fun action ->
      match action with
      | Amac.Algorithm.Decide value -> (
          match nodes.(node).decided with
          | None -> nodes.(node) <- { (nodes.(node)) with decided = Some value }
          | Some prior ->
              if prior <> value then
                record
                  (Consensus.Checker.Irrevocability_violation
                     { node; value; time = 0 })
                  path)
      | Amac.Algorithm.Broadcast message ->
          if nodes.(node).outgoing = None then
            nodes.(node) <-
              {
                (nodes.(node)) with
                outgoing = Some message;
                undelivered =
                  List.filter
                    (fun v -> not nodes.(v).crashed)
                    (Amac.Topology.neighbors rt.topology node);
              })
    actions

let check_safety rt ~record nodes ~path =
  (* Allocation-free scan for the overwhelmingly common clean case
     ([memq] is exact on immediate ints and skips the polymorphic-equality
     C call); the slow path below recomputes the exact violation values on
     demand. *)
  let len = Array.length nodes in
  let rec clean i first seen_one =
    if i = len then true
    else
      match nodes.(i).decided with
      | None -> clean (i + 1) first seen_one
      | Some v ->
          List.memq v rt.input_values
          && ((not seen_one) || v = first)
          && clean (i + 1) v true
  in
  if not (clean 0 0 false) then begin
    let decided =
      Array.to_list nodes
      |> List.filter_map (fun c -> c.decided)
      |> List.sort_uniq Int.compare
    in
    (match decided with
    | [] | [ _ ] -> ()
    | values ->
        record (Consensus.Checker.Agreement_violation { values }) path);
    let invalid =
      List.filter (fun v -> not (List.mem v rt.input_values)) decided
    in
    if invalid <> [] then
      record
        (Consensus.Checker.Validity_violation
           { values = invalid; inputs = rt.input_values })
        path
  end

let enabled config rt cfg =
  let steps = ref [] in
  if cfg.crashes_used < config.crash_budget then
    for u = rt.n - 1 downto 0 do
      if not cfg.nodes.(u).crashed then steps := Crash u :: !steps
    done;
  for s = rt.n - 1 downto 0 do
    let node = cfg.nodes.(s) in
    if (not node.crashed) && node.outgoing <> None then
      match node.undelivered with
      | [] -> steps := Ack s :: !steps
      | pending ->
          List.iter
            (fun r -> steps := Deliver { sender = s; receiver = r } :: !steps)
            (List.rev pending)
  done;
  !steps

(* The child configuration shares everything with the parent except what
   the step touches: node_cfg records are updated functionally on a fresh
   array, and only the stepped node's algorithm state is cloned before its
   handler mutates it. Sound because this clone-before-mutate discipline
   holds for every transition — a shared ['s] is never written through. *)
let apply rt ~record ~transitions cfg step ~path =
  incr transitions;
  let nodes = Array.copy cfg.nodes in
  let fps = Array.copy cfg.fps in
  let crashes_used =
    match step with Crash _ -> cfg.crashes_used + 1 | _ -> cfg.crashes_used
  in
  (match step with
  | Crash u ->
      (* Mid-broadcast non-atomicity: neighbors already served keep the
         message; the rest never receive it. No algorithm state mutates. *)
      nodes.(u) <-
        { (nodes.(u)) with crashed = true; outgoing = None; undelivered = [] };
      fps.(u) <- -1;
      Array.iteri
        (fun s node ->
          if List.memq u node.undelivered then begin
            nodes.(s) <-
              {
                node with
                undelivered = List.filter (fun v -> v <> u) node.undelivered;
              };
            fps.(s) <- -1
          end)
        nodes
  | Deliver { sender; receiver } ->
      let message =
        match nodes.(sender).outgoing with
        | Some m -> m
        | None -> invalid_arg "Explore.apply: sender not sending"
      in
      nodes.(sender) <-
        {
          (nodes.(sender)) with
          undelivered =
            List.filter (fun v -> v <> receiver) nodes.(sender).undelivered;
        };
      fps.(sender) <- -1;
      let st = rt.clone_state nodes.(receiver).st in
      nodes.(receiver) <- { (nodes.(receiver)) with st };
      fps.(receiver) <- -1;
      let actions =
        rt.algorithm.Amac.Algorithm.on_receive rt.ctxs.(receiver) st message
      in
      apply_actions rt ~record nodes receiver actions ~path
  | Ack u ->
      let st = rt.clone_state nodes.(u).st in
      nodes.(u) <- { (nodes.(u)) with st; outgoing = None };
      fps.(u) <- -1;
      let actions = rt.algorithm.Amac.Algorithm.on_ack rt.ctxs.(u) st in
      apply_actions rt ~record nodes u actions ~path);
  let cfg = { nodes; crashes_used; fps } in
  check_safety rt ~record cfg.nodes ~path;
  cfg

let initial_cfg rt ~record =
  let inits = Array.map rt.algorithm.Amac.Algorithm.init rt.ctxs in
  let nodes =
    Array.map
      (fun (st, _) ->
        { st; outgoing = None; undelivered = []; decided = None; crashed = false })
      inits
  in
  Array.iteri
    (fun i (_, actions) -> apply_actions rt ~record nodes i actions ~path:[])
    inits;
  check_safety rt ~record nodes ~path:[];
  { nodes; crashes_used = 0; fps = Array.make (Array.length nodes) (-1) }

let quiescent_check config ~record cfg ~path =
  if config.check_termination && cfg.crashes_used = 0 then begin
    let undecided = ref [] in
    Array.iteri
      (fun i node ->
        if (not node.crashed) && node.decided = None then
          undecided := i :: !undecided)
      cfg.nodes;
    if !undecided <> [] then
      record
        (Consensus.Checker.Termination_violation { nodes = List.rev !undecided })
        path
  end

(* Monomorphic step equality: the sleep-set algebra compares steps on
   every visit, and the polymorphic [List.mem] pays a C call per
   comparison. *)
let step_eq a b =
  match (a, b) with
  | Deliver d1, Deliver d2 ->
      d1.sender = d2.sender && d1.receiver = d2.receiver
  | Ack u, Ack v | Crash u, Crash v -> u = v
  | _ -> false

let mem_step step steps = List.exists (step_eq step) steps

(* A visit cell stores the sleep sets already explored from its
   configuration. A visit is redundant iff some stored set is a subset of
   the incoming one (everything the new visit would explore, an old one
   did). *)
let subset a b = List.for_all (fun x -> mem_step x b) a

let visit_cell cell sleep =
  let stored = !cell in
  if List.exists (fun old -> subset old sleep) stored then `Dedup
  else begin
    cell := sleep :: List.filter (fun old -> not (subset sleep old)) stored;
    if stored = [] then `Fresh else `Revisit
  end

(* seen-set for the serial explorer: cfg -> visit cell, created empty on
   first sight. Fast keying probes an int-keyed open-addressed table with
   the structural fingerprint; [check_collisions] cross-checks each
   fingerprint against the Marshal digest and counts fingerprints claimed
   by two distinct digests. The fallback keeps the digest-keyed Hashtbl,
   but pays one probe per revisit ([find_opt] on a mutable cell) instead
   of the old find-then-replace pair. *)
let make_seen config rt =
  match rt.fingerprint with
  | Some fp when config.keying = `Fast ->
      let table : step list list ref F.Table.t = F.Table.create 4096 in
      let digests =
        if config.check_collisions then Some (Hashtbl.create 4096) else None
      in
      let collisions = ref 0 in
      let lookup cfg =
        let k = fp cfg in
        (match digests with
        | Some tbl -> (
            let d = key cfg in
            match Hashtbl.find_opt tbl k with
            | Some prior -> if prior <> d then incr collisions
            | None -> Hashtbl.add tbl k d)
        | None -> ());
        match F.Table.find table k with
        | Some cell -> cell
        | None ->
            let cell = ref [] in
            F.Table.set table k cell;
            cell
      in
      (lookup, collisions)
  | _ ->
      let seen : (string, step list list ref) Hashtbl.t = Hashtbl.create 4096 in
      let lookup cfg =
        let k = key cfg in
        match Hashtbl.find_opt seen k with
        | Some cell -> cell
        | None ->
            let cell = ref [] in
            Hashtbl.add seen k cell;
            cell
      in
      (lookup, ref 0)

let record_obs obs stats ~steals ~occupancy =
  match obs with
  | None -> ()
  | Some reg ->
      let c name v = Obs.Metrics.add (Obs.Metrics.counter reg name) v in
      c "explore_states_total" stats.states;
      c "explore_transitions_total" stats.transitions;
      c "explore_dedup_hits_total" stats.dedup_hits;
      c "explore_sleep_skips_total" stats.sleep_skips;
      (match steals with Some s -> c "explore_steals_total" s | None -> ());
      (match occupancy with
      | Some occ ->
          Obs.Metrics.set
            (Obs.Metrics.gauge reg "explore_seen_shards")
            (float_of_int (Array.length occ));
          Obs.Metrics.set
            (Obs.Metrics.gauge reg "explore_shard_max_states")
            (float_of_int (Array.fold_left max 0 occ))
      | None -> ())

exception Violation_found

let explore ?(give_n = true) ?(give_diameter = false) ?obs config algorithm
    ~topology ~inputs =
  let rt = make_rt ~give_n ~give_diameter algorithm ~topology ~inputs in
  let states = ref 0 in
  let transitions = ref 0 in
  let dedup_hits = ref 0 in
  let sleep_skips = ref 0 in
  let truncated = ref false in
  let violations = ref [] in
  let record violation path =
    if not (List.mem_assoc violation !violations) then begin
      violations := (violation, List.rev path) :: !violations;
      if config.stop_at_first_violation then raise Violation_found
    end
  in
  let lookup, collisions = make_seen config rt in
  let rec dfs cfg ~depth ~sleep ~path =
    match visit_cell (lookup cfg) sleep with
    | `Dedup -> incr dedup_hits
    | (`Fresh | `Revisit) as verdict ->
        if verdict = `Fresh then incr states;
        if !states > config.max_states then truncated := true
        else begin
          let steps = enabled config rt cfg in
          match steps with
          | [] -> quiescent_check config ~record cfg ~path
          | _ :: _ when depth >= config.max_depth -> truncated := true
          | _ :: _ ->
              (* [all] is sleep ∪ executed-so-far, grown by consing — sleep
                 sets are compared as sets, so order is immaterial. *)
              let rec siblings all = function
                | [] -> ()
                | step :: rest ->
                    if mem_step step sleep then begin
                      incr sleep_skips;
                      siblings all rest
                    end
                    else begin
                      let path = step :: path in
                      let child = apply rt ~record ~transitions cfg step ~path in
                      let child_sleep = List.filter (independent step) all in
                      dfs child ~depth:(depth + 1) ~sleep:child_sleep ~path;
                      siblings (step :: all) rest
                    end
              in
              siblings sleep steps
        end
  in
  (try
     let initial = initial_cfg rt ~record in
     dfs initial ~depth:0 ~sleep:[] ~path:[]
   with Violation_found -> ());
  let result =
    {
      states = !states;
      transitions = !transitions;
      dedup_hits = !dedup_hits;
      sleep_skips = !sleep_skips;
      collisions = !collisions;
      violations = List.rev !violations;
      truncated = !truncated;
    }
  in
  record_obs obs result ~steals:None ~occupancy:None;
  result

(* ------------------------------------------------------------------ *)
(* Parallel frontier exploration                                      *)
(* ------------------------------------------------------------------ *)

(* Sharded seen-set: the key space is partitioned by its low bits over
   [shard_count] independently locked tables, so concurrent visits only
   contend when they land on the same shard. The subsumption check and
   sleep-set update happen atomically under the shard lock. *)
let make_sharded_seen config rt ~shard_count =
  let mask = shard_count - 1 in
  let locks = Array.init shard_count (fun _ -> Mutex.create ()) in
  let collision_counts = Array.make shard_count 0 in
  match rt.fingerprint with
  | Some fp when config.keying = `Fast ->
      let tables = Array.init shard_count (fun _ -> F.Table.create 1024) in
      let digests =
        if config.check_collisions then
          Some (Array.init shard_count (fun _ -> Hashtbl.create 256))
        else None
      in
      let visit cfg sleep =
        let k = fp cfg in
        let s = k land mask in
        Mutex.lock locks.(s);
        (match digests with
        | Some ds -> (
            let d = key cfg in
            match Hashtbl.find_opt ds.(s) k with
            | Some prior ->
                if prior <> d then
                  collision_counts.(s) <- collision_counts.(s) + 1
            | None -> Hashtbl.add ds.(s) k d)
        | None -> ());
        let cell =
          match F.Table.find tables.(s) k with
          | Some cell -> cell
          | None ->
              let cell = ref [] in
              F.Table.set tables.(s) k cell;
              cell
        in
        let verdict = visit_cell cell sleep in
        Mutex.unlock locks.(s);
        verdict
      in
      ( visit,
        (fun () -> Array.map F.Table.length tables),
        fun () -> Array.fold_left ( + ) 0 collision_counts )
  | _ ->
      let tables = Array.init shard_count (fun _ -> Hashtbl.create 256) in
      let visit cfg sleep =
        let d = key cfg in
        let s = Hashtbl.hash d land mask in
        Mutex.lock locks.(s);
        let cell =
          match Hashtbl.find_opt tables.(s) d with
          | Some cell -> cell
          | None ->
              let cell = ref [] in
              Hashtbl.add tables.(s) d cell;
              cell
        in
        let verdict = visit_cell cell sleep in
        Mutex.unlock locks.(s);
        verdict
      in
      ( visit,
        (fun () -> Array.map Hashtbl.length tables),
        fun () -> 0 )

type ('s, 'm) item = {
  it_cfg : ('s, 'm) cfg;
  it_sleep : step list;
  it_path : step list;  (* reversed *)
}

type ('s, 'm) slice_out = {
  out_children : ('s, 'm) item list;  (* reversed *)
  out_transitions : int;
  out_fresh : int;
  out_dedup : int;
  out_sleeps : int;
  out_trunc : bool;
  out_viols : (Consensus.Checker.violation * step list) list;  (* reversed *)
}

let explore_par ?(give_n = true) ?(give_diameter = false) ?pool ?(jobs = 1)
    ?obs config algorithm ~topology ~inputs =
  let owned, pool =
    match pool with
    | Some p -> (None, Some p)
    | None ->
        if jobs <= 1 then (None, None)
        else
          let p = Par.create ~domains:jobs () in
          (Some p, Some p)
  in
  match pool with
  | None -> explore ~give_n ~give_diameter ?obs config algorithm ~topology ~inputs
  | Some pool ->
      Fun.protect
        ~finally:(fun () ->
          match owned with Some p -> Par.shutdown p | None -> ())
        (fun () ->
          if Par.size pool <= 1 then
            explore ~give_n ~give_diameter ?obs config algorithm ~topology
              ~inputs
          else begin
            let rt = make_rt ~give_n ~give_diameter algorithm ~topology ~inputs in
            let shard_count =
              let want = 4 * Par.size pool in
              let rec pow2 k = if k >= want then k else pow2 (2 * k) in
              pow2 8
            in
            let visit, occupancy, collisions =
              make_sharded_seen config rt ~shard_count
            in
            let steals_before = (Par.stats pool).Par.steals in
            let states = ref 0 in
            let transitions = ref 0 in
            let dedup_hits = ref 0 in
            let sleep_skips = ref 0 in
            let truncated = ref false in
            let violations = ref [] in
            let merge_violation (v, path) =
              if not (List.mem_assoc v !violations) then
                violations := (v, path) :: !violations
            in
            (* Initial configuration on the calling domain; its violations
               are recorded directly (paths are already chronological at
               the root). *)
            let initial =
              initial_cfg rt ~record:(fun v path ->
                  merge_violation (v, List.rev path))
            in
            let stop () =
              (config.stop_at_first_violation && !violations <> [])
              || !states > config.max_states
            in
            (* Each level fans its frontier out as contiguous slices; a
               slice dedups each item against the sharded seen-set and, if
               the visit is not subsumed, expands it exactly as the serial
               DFS would (same step order, same sleep-set algebra). All
               counters and violations are slice-local and merged in slice
               order on the calling domain, so the only cross-domain
               mutation is the locked seen-set. *)
            let process depth slice =
              let transitions = ref 0 in
              let fresh = ref 0 in
              let dedup = ref 0 in
              let sleeps = ref 0 in
              let trunc = ref false in
              let viols = ref [] in
              let children = ref [] in
              let record v path = viols := (v, List.rev path) :: !viols in
              Array.iter
                (fun item ->
                  match visit item.it_cfg item.it_sleep with
                  | `Dedup -> incr dedup
                  | (`Fresh | `Revisit) as verdict ->
                      if verdict = `Fresh then incr fresh;
                      let steps = enabled config rt item.it_cfg in
                      (match steps with
                      | [] ->
                          quiescent_check config ~record item.it_cfg
                            ~path:item.it_path
                      | _ :: _ when depth >= config.max_depth -> trunc := true
                      | _ :: _ ->
                          let rec siblings all = function
                            | [] -> ()
                            | step :: rest ->
                                if mem_step step item.it_sleep then begin
                                  incr sleeps;
                                  siblings all rest
                                end
                                else begin
                                  let path = step :: item.it_path in
                                  let child =
                                    apply rt ~record ~transitions item.it_cfg
                                      step ~path
                                  in
                                  let child_sleep =
                                    List.filter (independent step) all
                                  in
                                  children :=
                                    {
                                      it_cfg = child;
                                      it_sleep = child_sleep;
                                      it_path = path;
                                    }
                                    :: !children;
                                  siblings (step :: all) rest
                                end
                          in
                          siblings item.it_sleep steps))
                slice;
              {
                out_children = !children;
                out_transitions = !transitions;
                out_fresh = !fresh;
                out_dedup = !dedup;
                out_sleeps = !sleeps;
                out_trunc = !trunc;
                out_viols = !viols;
              }
            in
            let frontier =
              ref [| { it_cfg = initial; it_sleep = []; it_path = [] } |]
            in
            let depth = ref 0 in
            while Array.length !frontier > 0 && not (stop ()) do
              let items = !frontier in
              let len = Array.length items in
              let slice_count = min len (4 * Par.size pool) in
              let slices =
                Array.init slice_count (fun k ->
                    let lo = len * k / slice_count in
                    let hi = len * (k + 1) / slice_count in
                    Array.sub items lo (hi - lo))
              in
              let outs = Par.map pool (process !depth) slices in
              let next = ref [] in
              Array.iter
                (fun out ->
                  states := !states + out.out_fresh;
                  transitions := !transitions + out.out_transitions;
                  dedup_hits := !dedup_hits + out.out_dedup;
                  sleep_skips := !sleep_skips + out.out_sleeps;
                  if out.out_trunc then truncated := true;
                  List.iter merge_violation (List.rev out.out_viols);
                  next := List.rev_append out.out_children !next)
                outs;
              if !states > config.max_states then truncated := true;
              frontier := Array.of_list (List.rev !next);
              incr depth
            done;
            let result =
              {
                states = !states;
                transitions = !transitions;
                dedup_hits = !dedup_hits;
                sleep_skips = !sleep_skips;
                collisions = collisions ();
                violations = List.rev !violations;
                truncated = !truncated;
              }
            in
            let steals = (Par.stats pool).Par.steals - steals_before in
            record_obs obs result ~steals:(Some steals)
              ~occupancy:(Some (occupancy ()));
            result
          end)

(* ------------------------------------------------------------------ *)
(* Reachable-configuration sampling (bench B7, fingerprint tests)      *)
(* ------------------------------------------------------------------ *)

type ('s, 'm) snapshot_set = {
  ss_rt : ('s, 'm) rt;
  ss_cfgs : ('s, 'm) cfg array;
}

let sample ?(give_n = true) ?(give_diameter = false) config algorithm ~topology
    ~inputs ~max_samples =
  let rt = make_rt ~give_n ~give_diameter algorithm ~topology ~inputs in
  let quiet _ _ = () in
  let seen = Hashtbl.create 1024 in
  let collected = ref [] in
  let count = ref 0 in
  let q = Queue.create () in
  let push cfg ~depth =
    (* Keyed on the Marshal digest regardless of hooks: the sample must be
       keying-neutral ground truth for comparing the two key functions. *)
    if !count < max_samples then begin
      let d = key cfg in
      if not (Hashtbl.mem seen d) then begin
        Hashtbl.add seen d ();
        collected := cfg :: !collected;
        incr count;
        Queue.add (cfg, depth) q
      end
    end
  in
  let transitions = ref 0 in
  push (initial_cfg rt ~record:quiet) ~depth:0;
  while !count < max_samples && not (Queue.is_empty q) do
    let cfg, depth = Queue.pop q in
    if depth < config.max_depth then
      List.iter
        (fun step ->
          push (apply rt ~record:quiet ~transitions cfg step ~path:[])
            ~depth:(depth + 1))
        (enabled config rt cfg)
  done;
  { ss_rt = rt; ss_cfgs = Array.of_list (List.rev !collected) }

let sample_size ss = Array.length ss.ss_cfgs

let keys_marshal ss =
  Array.fold_left (fun acc cfg -> acc lxor Hashtbl.hash (key cfg)) 0 ss.ss_cfgs

let keys_fast ss =
  match ss.ss_rt.fingerprint with
  | None -> invalid_arg "Explore.keys_fast: algorithm has no fingerprint hooks"
  | Some fp ->
      (* Blank each per-node cache first so the pass times the full
         structural hash, not cache hits left by a previous pass. *)
      Array.fold_left
        (fun acc cfg ->
          Array.fill cfg.fps 0 (Array.length cfg.fps) (-1);
          acc lxor fp cfg)
        0 ss.ss_cfgs

let clones_marshal ss =
  Array.fold_left
    (fun acc cfg -> acc lxor Array.length (marshal_snapshot cfg.nodes))
    0 ss.ss_cfgs

let clones_fast ss =
  match ss.ss_rt.algorithm.Amac.Algorithm.hooks with
  | None -> invalid_arg "Explore.clones_fast: algorithm has no clone hook"
  | Some h ->
      Array.fold_left
        (fun acc cfg ->
          acc
          lxor Array.length
                 (Array.map (fun nc -> { nc with st = h.clone nc.st }) cfg.nodes))
        0 ss.ss_cfgs

let key_pairs ss =
  match ss.ss_rt.fingerprint with
  | None -> invalid_arg "Explore.key_pairs: algorithm has no fingerprint hooks"
  | Some fp -> Array.map (fun cfg -> (key cfg, fp cfg)) ss.ss_cfgs
