type view = {
  v_node : int;
  v_log : (int * int) list;
  v_commit : int;
  v_applied : int list;
  v_floor : int;
  v_snap_applied : int list;
  v_configs : (int * int) list;
  v_epoch : int;
}

type violation =
  | Log_disagreement of {
      inst : int;
      node_a : int;
      value_a : int;
      node_b : int;
      value_b : int;
    }
  | Hole_below_commit of { node : int; inst : int }
  | Duplicate_apply of { node : int; cmd : int }
  | Apply_order_mismatch of {
      node : int;
      expected : int list;
      actual : int list;
    }
  | Unknown_command of { node : int; inst : int; value : int }
  | Snapshot_divergence of { node : int; peer : int; floor : int }
  | Epoch_divergence of {
      inst : int;
      node_a : int;
      cmd_a : int;
      node_b : int;
      cmd_b : int;
    }

let pp_violation fmt = function
  | Log_disagreement { inst; node_a; value_a; node_b; value_b } ->
      Format.fprintf fmt
        "log disagreement at instance %d: node %d chose %d, node %d chose %d"
        inst node_a value_a node_b value_b
  | Hole_below_commit { node; inst } ->
      Format.fprintf fmt "node %d: instance %d is below commit index yet unchosen"
        node inst
  | Duplicate_apply { node; cmd } ->
      Format.fprintf fmt "node %d applied command %d more than once" node cmd
  | Apply_order_mismatch { node; expected; actual } ->
      let render l = String.concat "," (List.map string_of_int l) in
      Format.fprintf fmt
        "node %d applied [%s] but its committed prefix dictates [%s]" node
        (render actual) (render expected)
  | Unknown_command { node; inst; value } ->
      if inst < 0 then
        Format.fprintf fmt
          "node %d holds never-submitted command %d in its snapshot" node value
      else
        Format.fprintf fmt
          "node %d chose never-submitted command %d at instance %d" node value
          inst
  | Snapshot_divergence { node; peer; floor } ->
      Format.fprintf fmt
        "node %d's snapshot at floor %d is not a prefix of node %d's applied \
         sequence"
        node floor peer
  | Epoch_divergence { inst; node_a; cmd_a; node_b; cmd_b } ->
      Format.fprintf fmt
        "configuration disagreement at instance %d: node %d committed \
         reconfig %d, node %d committed reconfig %d"
        inst node_a cmd_a node_b cmd_b

let to_string v = Format.asprintf "%a" pp_violation v

(* The expected apply sequence from a node's own retained log: committed
   prefix above the compaction floor, in instance order, noops and
   reconfiguration commands dropped, duplicate chosen commands applied only
   at their first instance — all appended after the snapshot-inherited
   prefix (whose commands must not be applied again). *)
let expected_applies v =
  let seen = Hashtbl.create 16 in
  List.iter (fun cmd -> Hashtbl.replace seen cmd ()) v.v_snap_applied;
  let tail =
    List.filter_map
      (fun (inst, value) ->
        if
          inst < v.v_floor || inst >= v.v_commit || value = Smr.noop
          || Smr.is_reconfig value
          || Hashtbl.mem seen value
        then None
        else begin
          Hashtbl.replace seen value ();
          Some value
        end)
      v.v_log
  in
  v.v_snap_applied @ tail

let rec is_prefix prefix l =
  match (prefix, l) with
  | [], _ -> true
  | _, [] -> false
  | a :: pa, b :: pb -> a = b && is_prefix pa pb

let check_views ~submitted views =
  let violations = ref [] in
  let add v = violations := v :: !violations in
  (* Prefix agreement: any two replicas that both chose an instance agree
     on its value. (Logs of different lengths are fine — a straggler's log
     is a sub-log, not a violation.) *)
  let chosen_at : (int, int * int) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun v ->
      List.iter
        (fun (inst, value) ->
          match Hashtbl.find_opt chosen_at inst with
          | None -> Hashtbl.replace chosen_at inst (v.v_node, value)
          | Some (node_a, value_a) ->
              if value_a <> value then
                add
                  (Log_disagreement
                     {
                       inst;
                       node_a;
                       value_a;
                       node_b = v.v_node;
                       value_b = value;
                     }))
        v.v_log)
    views;
  (* Configuration agreement, including configs inherited through
     snapshots after the log entries were truncated: any two replicas that
     committed a reconfiguration at an instance agree on which one. A
     divergence here means replicas crossed into different epochs — quorum
     rules silently forked. *)
  let configs_at : (int, int * int) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun v ->
      List.iter
        (fun (inst, cmd) ->
          match Hashtbl.find_opt configs_at inst with
          | None -> Hashtbl.replace configs_at inst (v.v_node, cmd)
          | Some (node_a, cmd_a) ->
              if cmd_a <> cmd then
                add
                  (Epoch_divergence
                     { inst; node_a; cmd_a; node_b = v.v_node; cmd_b = cmd }))
        v.v_configs)
    views;
  List.iter
    (fun v ->
      (* No holes in the retained committed region. *)
      let chosen = Hashtbl.create 16 in
      List.iter (fun (inst, value) -> Hashtbl.replace chosen inst value) v.v_log;
      for inst = v.v_floor to v.v_commit - 1 do
        if not (Hashtbl.mem chosen inst) then
          add (Hole_below_commit { node = v.v_node; inst })
      done;
      (* Validity: every chosen non-noop value — retained, snapshot-covered
         or configuration — was actually submitted (or registered as a
         reconfiguration). *)
      List.iter
        (fun (inst, value) ->
          if value <> Smr.noop && not (submitted value) then
            add (Unknown_command { node = v.v_node; inst; value }))
        v.v_log;
      List.iter
        (fun value ->
          if not (submitted value) then
            add (Unknown_command { node = v.v_node; inst = -1; value }))
        v.v_snap_applied;
      List.iter
        (fun (inst, cmd) ->
          if not (Smr.is_reconfig cmd && submitted cmd) then
            add (Unknown_command { node = v.v_node; inst; value = cmd }))
        v.v_configs;
      (* Exactly-once apply — across snapshot installs too: the inherited
         prefix and the live tail must not overlap. *)
      let dup = Hashtbl.create 16 in
      List.iter
        (fun cmd ->
          if Hashtbl.mem dup cmd then
            add (Duplicate_apply { node = v.v_node; cmd })
          else Hashtbl.replace dup cmd ())
        v.v_applied;
      (* Applied order = snapshot prefix + retained log order. *)
      let expected = expected_applies v in
      if expected <> v.v_applied then
        add
          (Apply_order_mismatch
             { node = v.v_node; expected; actual = v.v_applied }))
    views;
  (* Snapshot prefix agreement: a snapshot taken at floor f packages the
     apply sequence of the prefix [0, f). Any replica whose commit index
     reaches f applied that same prefix first — so the snapshot must be a
     prefix of every such replica's applied sequence (its own included). *)
  List.iter
    (fun a ->
      if a.v_floor > 0 then
        List.iter
          (fun b ->
            if
              b.v_commit >= a.v_floor
              && not (is_prefix a.v_snap_applied b.v_applied)
            then
              add
                (Snapshot_divergence
                   { node = a.v_node; peer = b.v_node; floor = a.v_floor }))
          views)
    views;
  List.rev !violations

let view_of h node =
  let floor, snap_applied =
    match Smr.snapshot h node with
    | Some s -> (s.Smr.floor, s.Smr.s_applied)
    | None -> (0, [])
  in
  {
    v_node = node;
    v_log = Smr.log h node;
    v_commit = Smr.commit_index h node;
    v_applied = Smr.applied h node;
    v_floor = floor;
    v_snap_applied = snap_applied;
    v_configs = Smr.configs h node;
    v_epoch = Smr.epoch h node;
  }

let check h =
  let submitted cmd = Smr.was_submitted h cmd || Smr.was_reconfig h cmd in
  check_views ~submitted (List.map (view_of h) (Smr.nodes h))

let ok h = check h = []

(* ------------------------------------------------------------------ *)
(* Sharded (multi-group) extension. A sharded deployment multiplexes   *)
(* G independent SMR groups; the contract grows three clauses on top   *)
(* of the per-group one:                                               *)
(*   - per-group prefix agreement: the full single-group contract      *)
(*     holds inside every group independently;                         *)
(*   - cross-group exactly-once: a client command is chosen by at      *)
(*     most one group (the keyspace partition routed it there), and    *)
(*     applied at most once per replica even across distinct batches;  *)
(*   - batch atomicity: a batch's commands reach each replica's        *)
(*     flattened apply stream contiguously, in batch order, all or     *)
(*     nothing (nothing = the batch was covered by a snapshot          *)
(*     install, which bypasses per-command apply by design).           *)
(* ------------------------------------------------------------------ *)

type shard_view = {
  sv_group : int;
  sv_views : view list;
  sv_applied_cmds : (int * int list) list;
      (* node -> flattened client-command apply stream, oldest first *)
}

type shard_violation =
  | Group_violation of { group : int; violation : violation }
  | Cross_group_duplicate of {
      cmd : int;
      group_a : int;
      node_a : int;
      group_b : int;
      node_b : int;
    }
  | Batch_split of {
      group : int;
      node : int;
      batch : int;
      expected : int list;
      actual : int list;
    }

let pp_shard_violation fmt = function
  | Group_violation { group; violation } ->
      Format.fprintf fmt "group %d: %a" group pp_violation violation
  | Cross_group_duplicate { cmd; group_a; node_a; group_b; node_b } ->
      if group_a = group_b && node_a = node_b then
        Format.fprintf fmt
          "command %d applied twice at node %d of group %d (distinct batches)"
          cmd node_a group_a
      else
        Format.fprintf fmt
          "command %d escaped its shard: chosen by group %d (node %d) and \
           group %d (node %d)"
          cmd group_a node_a group_b node_b
  | Batch_split { group; node; batch; expected; actual } ->
      let render l = String.concat "," (List.map string_of_int l) in
      Format.fprintf fmt
        "group %d node %d split batch %d: commands [%s] did not apply \
         contiguously in order (stream fragment [%s])"
        group node batch (render expected) (render actual)

let shard_to_string v = Format.asprintf "%a" pp_shard_violation v

(* First index of [c] in [arr], or -1. *)
let index_of arr c =
  let n = Array.length arr in
  let rec go i = if i >= n then -1 else if arr.(i) = c then i else go (i + 1) in
  go 0

let check_shard_views ~submitted ~expand shard_views =
  let violations = ref [] in
  let add v = violations := v :: !violations in
  (* Per-group: the full single-group contract, group by group. *)
  List.iter
    (fun sv ->
      List.iter
        (fun violation -> add (Group_violation { group = sv.sv_group; violation }))
        (check_views ~submitted:(submitted sv.sv_group) sv.sv_views))
    shard_views;
  (* Batch atomicity, judged against each replica's flattened client-command
     stream: every batch value the replica applied must land in the stream
     contiguously and in batch order — or not at all (snapshot installs
     inherit applied state without replaying per-command). *)
  List.iter
    (fun sv ->
      List.iter
        (fun v ->
          let flat =
            match List.assoc_opt v.v_node sv.sv_applied_cmds with
            | Some l -> l
            | None -> []
          in
          let flat_arr = Array.of_list flat in
          List.iter
            (fun value ->
              match expand value with
              | None | Some [] -> ()
              | Some (first :: _ as cmds) -> (
                  let k = List.length cmds in
                  match index_of flat_arr first with
                  | -1 ->
                      (* All-or-nothing: the head is absent, so no other
                         member of the batch may have landed either. *)
                      if List.exists (fun c -> index_of flat_arr c >= 0) cmds
                      then
                        add
                          (Batch_split
                             {
                               group = sv.sv_group;
                               node = v.v_node;
                               batch = value;
                               expected = cmds;
                               actual = [];
                             })
                  | i ->
                      let avail = Array.length flat_arr - i in
                      let actual =
                        Array.to_list (Array.sub flat_arr i (min k avail))
                      in
                      if actual <> cmds then
                        add
                          (Batch_split
                             {
                               group = sv.sv_group;
                               node = v.v_node;
                               batch = value;
                               expected = cmds;
                               actual;
                             })))
            v.v_applied)
        sv.sv_views)
    shard_views;
  (* Cross-group exactly-once, judged over chosen logs (replication inside
     a group is expected; the same client command chosen by two different
     groups means the keyspace routing forked). Noops and reconfiguration
     commands are not client commands. *)
  let witness : (int, int * int) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun sv ->
      List.iter
        (fun v ->
          List.iter
            (fun (_inst, value) ->
              if value <> Smr.noop && not (Smr.is_reconfig value) then
                let cmds =
                  match expand value with Some l -> l | None -> [ value ]
                in
                List.iter
                  (fun cmd ->
                    match Hashtbl.find_opt witness cmd with
                    | None -> Hashtbl.replace witness cmd (sv.sv_group, v.v_node)
                    | Some (group_a, node_a) ->
                        if group_a <> sv.sv_group then
                          add
                            (Cross_group_duplicate
                               {
                                 cmd;
                                 group_a;
                                 node_a;
                                 group_b = sv.sv_group;
                                 node_b = v.v_node;
                               }))
                  cmds)
            v.v_log)
        sv.sv_views)
    shard_views;
  (* Exactly-once per replica across batches: the flattened stream of one
     node must not apply the same client command twice, even when the two
     occurrences hide inside two different (distinct-valued) batches —
     which the per-group Duplicate_apply clause, working on batch values,
     cannot see. *)
  List.iter
    (fun sv ->
      List.iter
        (fun (node, flat) ->
          let seen = Hashtbl.create 16 in
          List.iter
            (fun cmd ->
              if Hashtbl.mem seen cmd then
                add
                  (Cross_group_duplicate
                     {
                       cmd;
                       group_a = sv.sv_group;
                       node_a = node;
                       group_b = sv.sv_group;
                       node_b = node;
                     })
              else Hashtbl.replace seen cmd ())
            flat)
        sv.sv_applied_cmds)
    shard_views;
  List.rev !violations
