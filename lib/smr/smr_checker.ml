type view = {
  v_node : int;
  v_log : (int * int) list;
  v_commit : int;
  v_applied : int list;
  v_floor : int;
  v_snap_applied : int list;
  v_configs : (int * int) list;
  v_epoch : int;
}

type violation =
  | Log_disagreement of {
      inst : int;
      node_a : int;
      value_a : int;
      node_b : int;
      value_b : int;
    }
  | Hole_below_commit of { node : int; inst : int }
  | Duplicate_apply of { node : int; cmd : int }
  | Apply_order_mismatch of {
      node : int;
      expected : int list;
      actual : int list;
    }
  | Unknown_command of { node : int; inst : int; value : int }
  | Snapshot_divergence of { node : int; peer : int; floor : int }
  | Epoch_divergence of {
      inst : int;
      node_a : int;
      cmd_a : int;
      node_b : int;
      cmd_b : int;
    }

let pp_violation fmt = function
  | Log_disagreement { inst; node_a; value_a; node_b; value_b } ->
      Format.fprintf fmt
        "log disagreement at instance %d: node %d chose %d, node %d chose %d"
        inst node_a value_a node_b value_b
  | Hole_below_commit { node; inst } ->
      Format.fprintf fmt "node %d: instance %d is below commit index yet unchosen"
        node inst
  | Duplicate_apply { node; cmd } ->
      Format.fprintf fmt "node %d applied command %d more than once" node cmd
  | Apply_order_mismatch { node; expected; actual } ->
      let render l = String.concat "," (List.map string_of_int l) in
      Format.fprintf fmt
        "node %d applied [%s] but its committed prefix dictates [%s]" node
        (render actual) (render expected)
  | Unknown_command { node; inst; value } ->
      if inst < 0 then
        Format.fprintf fmt
          "node %d holds never-submitted command %d in its snapshot" node value
      else
        Format.fprintf fmt
          "node %d chose never-submitted command %d at instance %d" node value
          inst
  | Snapshot_divergence { node; peer; floor } ->
      Format.fprintf fmt
        "node %d's snapshot at floor %d is not a prefix of node %d's applied \
         sequence"
        node floor peer
  | Epoch_divergence { inst; node_a; cmd_a; node_b; cmd_b } ->
      Format.fprintf fmt
        "configuration disagreement at instance %d: node %d committed \
         reconfig %d, node %d committed reconfig %d"
        inst node_a cmd_a node_b cmd_b

let to_string v = Format.asprintf "%a" pp_violation v

(* The expected apply sequence from a node's own retained log: committed
   prefix above the compaction floor, in instance order, noops and
   reconfiguration commands dropped, duplicate chosen commands applied only
   at their first instance — all appended after the snapshot-inherited
   prefix (whose commands must not be applied again). *)
let expected_applies v =
  let seen = Hashtbl.create 16 in
  List.iter (fun cmd -> Hashtbl.replace seen cmd ()) v.v_snap_applied;
  let tail =
    List.filter_map
      (fun (inst, value) ->
        if
          inst < v.v_floor || inst >= v.v_commit || value = Smr.noop
          || Smr.is_reconfig value
          || Hashtbl.mem seen value
        then None
        else begin
          Hashtbl.replace seen value ();
          Some value
        end)
      v.v_log
  in
  v.v_snap_applied @ tail

let rec is_prefix prefix l =
  match (prefix, l) with
  | [], _ -> true
  | _, [] -> false
  | a :: pa, b :: pb -> a = b && is_prefix pa pb

let check_views ~submitted views =
  let violations = ref [] in
  let add v = violations := v :: !violations in
  (* Prefix agreement: any two replicas that both chose an instance agree
     on its value. (Logs of different lengths are fine — a straggler's log
     is a sub-log, not a violation.) *)
  let chosen_at : (int, int * int) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun v ->
      List.iter
        (fun (inst, value) ->
          match Hashtbl.find_opt chosen_at inst with
          | None -> Hashtbl.replace chosen_at inst (v.v_node, value)
          | Some (node_a, value_a) ->
              if value_a <> value then
                add
                  (Log_disagreement
                     {
                       inst;
                       node_a;
                       value_a;
                       node_b = v.v_node;
                       value_b = value;
                     }))
        v.v_log)
    views;
  (* Configuration agreement, including configs inherited through
     snapshots after the log entries were truncated: any two replicas that
     committed a reconfiguration at an instance agree on which one. A
     divergence here means replicas crossed into different epochs — quorum
     rules silently forked. *)
  let configs_at : (int, int * int) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun v ->
      List.iter
        (fun (inst, cmd) ->
          match Hashtbl.find_opt configs_at inst with
          | None -> Hashtbl.replace configs_at inst (v.v_node, cmd)
          | Some (node_a, cmd_a) ->
              if cmd_a <> cmd then
                add
                  (Epoch_divergence
                     { inst; node_a; cmd_a; node_b = v.v_node; cmd_b = cmd }))
        v.v_configs)
    views;
  List.iter
    (fun v ->
      (* No holes in the retained committed region. *)
      let chosen = Hashtbl.create 16 in
      List.iter (fun (inst, value) -> Hashtbl.replace chosen inst value) v.v_log;
      for inst = v.v_floor to v.v_commit - 1 do
        if not (Hashtbl.mem chosen inst) then
          add (Hole_below_commit { node = v.v_node; inst })
      done;
      (* Validity: every chosen non-noop value — retained, snapshot-covered
         or configuration — was actually submitted (or registered as a
         reconfiguration). *)
      List.iter
        (fun (inst, value) ->
          if value <> Smr.noop && not (submitted value) then
            add (Unknown_command { node = v.v_node; inst; value }))
        v.v_log;
      List.iter
        (fun value ->
          if not (submitted value) then
            add (Unknown_command { node = v.v_node; inst = -1; value }))
        v.v_snap_applied;
      List.iter
        (fun (inst, cmd) ->
          if not (Smr.is_reconfig cmd && submitted cmd) then
            add (Unknown_command { node = v.v_node; inst; value = cmd }))
        v.v_configs;
      (* Exactly-once apply — across snapshot installs too: the inherited
         prefix and the live tail must not overlap. *)
      let dup = Hashtbl.create 16 in
      List.iter
        (fun cmd ->
          if Hashtbl.mem dup cmd then
            add (Duplicate_apply { node = v.v_node; cmd })
          else Hashtbl.replace dup cmd ())
        v.v_applied;
      (* Applied order = snapshot prefix + retained log order. *)
      let expected = expected_applies v in
      if expected <> v.v_applied then
        add
          (Apply_order_mismatch
             { node = v.v_node; expected; actual = v.v_applied }))
    views;
  (* Snapshot prefix agreement: a snapshot taken at floor f packages the
     apply sequence of the prefix [0, f). Any replica whose commit index
     reaches f applied that same prefix first — so the snapshot must be a
     prefix of every such replica's applied sequence (its own included). *)
  List.iter
    (fun a ->
      if a.v_floor > 0 then
        List.iter
          (fun b ->
            if
              b.v_commit >= a.v_floor
              && not (is_prefix a.v_snap_applied b.v_applied)
            then
              add
                (Snapshot_divergence
                   { node = a.v_node; peer = b.v_node; floor = a.v_floor }))
          views)
    views;
  List.rev !violations

let view_of h node =
  let floor, snap_applied =
    match Smr.snapshot h node with
    | Some s -> (s.Smr.floor, s.Smr.s_applied)
    | None -> (0, [])
  in
  {
    v_node = node;
    v_log = Smr.log h node;
    v_commit = Smr.commit_index h node;
    v_applied = Smr.applied h node;
    v_floor = floor;
    v_snap_applied = snap_applied;
    v_configs = Smr.configs h node;
    v_epoch = Smr.epoch h node;
  }

let check h =
  let submitted cmd = Smr.was_submitted h cmd || Smr.was_reconfig h cmd in
  check_views ~submitted (List.map (view_of h) (Smr.nodes h))

let ok h = check h = []
