type violation =
  | Log_disagreement of {
      inst : int;
      node_a : int;
      value_a : int;
      node_b : int;
      value_b : int;
    }
  | Hole_below_commit of { node : int; inst : int }
  | Duplicate_apply of { node : int; cmd : int }
  | Apply_order_mismatch of {
      node : int;
      expected : int list;
      actual : int list;
    }
  | Unknown_command of { node : int; inst : int; value : int }

let pp_violation fmt = function
  | Log_disagreement { inst; node_a; value_a; node_b; value_b } ->
      Format.fprintf fmt
        "log disagreement at instance %d: node %d chose %d, node %d chose %d"
        inst node_a value_a node_b value_b
  | Hole_below_commit { node; inst } ->
      Format.fprintf fmt "node %d: instance %d is below commit index yet unchosen"
        node inst
  | Duplicate_apply { node; cmd } ->
      Format.fprintf fmt "node %d applied command %d more than once" node cmd
  | Apply_order_mismatch { node; expected; actual } ->
      let render l = String.concat "," (List.map string_of_int l) in
      Format.fprintf fmt
        "node %d applied [%s] but its committed prefix dictates [%s]" node
        (render actual) (render expected)
  | Unknown_command { node; inst; value } ->
      Format.fprintf fmt
        "node %d chose never-submitted command %d at instance %d" node value
        inst

let to_string v = Format.asprintf "%a" pp_violation v

(* The expected apply sequence from a node's own log: committed prefix, in
   instance order, noops dropped, duplicate chosen commands applied only at
   their first instance. *)
let expected_applies ~commit log =
  let seen = Hashtbl.create 16 in
  List.filter_map
    (fun (inst, value) ->
      if inst >= commit || value = Smr.noop || Hashtbl.mem seen value then None
      else begin
        Hashtbl.replace seen value ();
        Some value
      end)
    log

let check h =
  let violations = ref [] in
  let add v = violations := v :: !violations in
  let nodes = Smr.nodes h in
  let logs = List.map (fun node -> (node, Smr.log h node)) nodes in
  (* Prefix agreement: any two replicas that both chose an instance agree
     on its value. (Logs of different lengths are fine — a straggler's log
     is a sub-log, not a violation.) *)
  let chosen_at : (int, int * int) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (node, log) ->
      List.iter
        (fun (inst, value) ->
          match Hashtbl.find_opt chosen_at inst with
          | None -> Hashtbl.replace chosen_at inst (node, value)
          | Some (node_a, value_a) ->
              if value_a <> value then
                add
                  (Log_disagreement
                     { inst; node_a; value_a; node_b = node; value_b = value }))
        log)
    logs;
  List.iter
    (fun (node, log) ->
      let commit = Smr.commit_index h node in
      (* No holes below the commit index. *)
      let chosen = Hashtbl.create 16 in
      List.iter (fun (inst, value) -> Hashtbl.replace chosen inst value) log;
      for inst = 0 to commit - 1 do
        if not (Hashtbl.mem chosen inst) then
          add (Hole_below_commit { node; inst })
      done;
      (* Validity: every chosen non-noop value was actually submitted. *)
      List.iter
        (fun (inst, value) ->
          if value <> Smr.noop && not (Smr.was_submitted h value) then
            add (Unknown_command { node; inst; value }))
        log;
      (* Exactly-once apply, and applied order = log order. *)
      let actual = Smr.applied h node in
      let dup = Hashtbl.create 16 in
      List.iter
        (fun cmd ->
          if Hashtbl.mem dup cmd then add (Duplicate_apply { node; cmd })
          else Hashtbl.replace dup cmd ())
        actual;
      let expected = expected_applies ~commit log in
      if expected <> actual then
        add (Apply_order_mismatch { node; expected; actual }))
    logs;
  List.rev !violations

let ok h = check h = []
