(** Multi-decree state-machine replication over repeated wPAXOS instances,
    multiplexed on one abstract-MAC-layer run.

    The paper's wPAXOS (Sec 4.2) decides a single value; a replicated log
    needs one decision per log instance. This module is the standard
    multi-Paxos construction transplanted onto the wPAXOS machinery:

    - The {e shared services} — leader election Ω (max unsuspected id over
      heartbeats), the change service (Lamport-stamped change flooding), the
      tree-building service (parent pointers for response aggregation) and
      the broadcast service (one component per queue per message) — are
      carried over from [Consensus.Wpaxos], including its PR 2 hardening
      (ack-clocked heartbeats with a patience budget, silence-based leader
      suspicion, exponential-backoff retransmission).
    - {e Leader lease}: one [Prepare] with a fresh proposal number covers
      {e every} instance at or above the leader's commit index; acceptors
      keep a single lease-wide promise and return their accepted priors per
      instance. A majority of promises establishes the lease.
    - {e Instance pipelining}: while the lease holds, the leader streams
      per-instance [Propose] messages under the same number, for up to
      [window] instances beyond the commit index, without waiting for
      earlier instances to choose. Holes below the known log end are filled
      with [noop]; prior-bound instances re-propose the prior's value
      (Paxos safety).
    - {e Commit = chosen prefix}: an instance is chosen on a majority of
      accepts and the decision is flooded (once per node). Each replica's
      commit index is the length of its contiguous chosen prefix; commands
      in the prefix are applied to the state machine exactly once, in log
      order, skipping noops. Replicas piggyback their commit index on
      heartbeats; a neighbor that is ahead answers with the decision for
      the straggler's first hole (log repair).
    - {e Client commands} are positive ints, flooded network-wide
      ([Forward] components, forward-once per node) so they reach the
      leader in multihop topologies; any replica accepts submissions.

    Crash-recovery is amnesiac (the model's semantics): a recovered replica
    restarts with an empty log and re-learns chosen instances from its
    neighbors' repair traffic. Exactly-once apply is per incarnation.

    The algorithm never emits an engine-level [Decide]; run it with
    [stop_when_all_decided:false] and judge the run with {!Smr_checker}. *)

(** The reserved hole-filler command (0). Real commands are [> noop]. *)
val noop : int

type state

type msg

(** A harness-side view of every replica's log, shared by the algorithm
    returned from {!make}. The registry always tracks each node's {e
    current incarnation} (recovery re-registers the fresh state). *)
type handle

(** [make ?window ?on_apply ()] builds the algorithm plus its handle.

    @param window how many instances beyond the commit index may be in
      flight at once (default 4).
    @param on_apply called at every replica, exactly once per applied
      command, in apply (= log) order: [f ~node ~index ~cmd]. Called from
      inside the engine's handlers — it may in turn call {!submit} for
      [node] (closed-loop clients resubmitting on completion).
    @raise Invalid_argument if [window < 1]. *)
val make :
  ?window:int ->
  ?on_apply:(node:int -> index:int -> cmd:int -> unit) ->
  unit ->
  (state, msg) Amac.Algorithm.t * handle

(** [submit h ~node ~cmd] hands a client command to a replica. Must be
    called from within that node's handler context (e.g. an [on_apply]
    callback) — the actions it triggers are emitted by the enclosing
    handler's [finish]. For submissions at arbitrary times use engine
    injections with {!injector}.
    @raise Invalid_argument if [cmd <= noop] or the node is unknown. *)
val submit : handle -> node:int -> cmd:int -> unit

(** [injector h] is an [Engine.on_inject] handler: the payload is the
    command, submitted at the injection's target node.
    @raise Invalid_argument if a payload is [<= noop]. *)
val injector :
  handle ->
  now:int ->
  payload:int ->
  Amac.Algorithm.ctx ->
  state ->
  msg Amac.Algorithm.action list

(** Replica ids currently registered, sorted. *)
val nodes : handle -> int list

(** [log h node] — the node's chosen instances as sorted
    [(instance, value)] pairs (possibly with holes). *)
val log : handle -> int -> (int * int) list

(** [commit_index h node] — length of the node's contiguous chosen
    prefix. *)
val commit_index : handle -> int -> int

(** [applied h node] — commands applied at the node, in apply order. *)
val applied : handle -> int -> int list

(** Whether a command was ever handed to {!submit}/{!injector}. *)
val was_submitted : handle -> int -> bool

val submitted_count : handle -> int

val pp_msg : msg -> string
