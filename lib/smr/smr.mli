(** Multi-decree state-machine replication over repeated wPAXOS instances,
    multiplexed on one abstract-MAC-layer run.

    The paper's wPAXOS (Sec 4.2) decides a single value; a replicated log
    needs one decision per log instance. This module is the standard
    multi-Paxos construction transplanted onto the wPAXOS machinery:

    - The {e shared services} — leader election Ω (max unsuspected id over
      heartbeats), the change service (Lamport-stamped change flooding), the
      tree-building service (parent pointers for response aggregation) and
      the broadcast service (one component per queue per message) — are
      carried over from [Consensus.Wpaxos], including its PR 2 hardening
      (ack-clocked heartbeats with a patience budget, leader suspicion via
      the shared {!Fd} ◇P detector, exponential-backoff retransmission).
    - {e Leader lease}: one [Prepare] with a fresh proposal number covers
      {e every} instance at or above the leader's commit index; acceptors
      keep a single lease-wide promise and return their accepted priors per
      instance. A quorum of promises establishes the lease.
    - {e Instance pipelining}: while the lease holds, the leader streams
      per-instance [Propose] messages under the same number, for up to
      [window] instances beyond the commit index, without waiting for
      earlier instances to choose. Holes below the known log end are filled
      with [noop]; prior-bound instances re-propose the prior's value
      (Paxos safety).
    - {e Commit = chosen prefix}: an instance is chosen on a quorum of
      accepts and the decision is flooded (once per node). Each replica's
      commit index is the length of its contiguous chosen prefix; commands
      in the prefix are applied to the state machine exactly once, in log
      order, skipping noops. Replicas piggyback their commit index on
      heartbeats; a neighbor that is ahead answers with the decision for
      the straggler's first hole (log repair), with a bounded
      exponential-backoff {e retry} schedule per observed hole — a single
      lost repair answer must not stall a recovered replica forever.
    - {e Client commands} are positive ints, flooded network-wide
      ([Forward] components, forward-once per node) so they reach the
      leader in multihop topologies; any replica accepts submissions.

    {b Log compaction + snapshot transfer} ([compact_every]): once the
    commit index advances [compact_every] instances past the current floor,
    the replica snapshots its applied state machine (applied prefix,
    configuration history, membership, epoch) at the commit watermark and
    truncates the log below it. Snapshots are transferred {e on demand}: to
    a straggler whose commit index lags the floor, and to any proposer
    whose proposition reaches below the floor (the acceptor rejects such
    propositions — the priors they would need are gone — and sends the
    snapshot instead, which preserves quorum intersection for chosen
    values). Installation replaces the installing replica's applied state
    wholesale; snapshot-covered commands are {e not} replayed through
    [on_apply].

    {b Membership reconfiguration} (joint consensus): a reconfiguration is
    an ordinary log command (see {!reconfigure}) carrying the new
    membership. When the {e joint} command commits, a transition opens:
    from then on every quorum requires a majority of the old configuration
    {e and} a majority of the new one (so any two quorums intersect in at
    least the old majority). Every replica that applies the joint command
    auto-stages the matching {e final} command, which — once committed —
    adopts the new membership and bumps the {e epoch}. Configurations
    activate at {e commit} time, and a leader restarts its lease whenever
    the quorum rule changes. Replicas outside the current membership are
    {e learners}: they accept, apply and repair, but their votes carry no
    weight and they never lead.

    Crash-recovery is amnesiac for the log and the applied state (the
    model's semantics): a recovered replica restarts with an empty log and
    re-learns chosen instances from its neighbors' repair traffic — or,
    past the compaction floor, from a snapshot transfer. Exactly-once
    apply is per incarnation. The {e acceptor} role, however, cannot be
    amnesiac: a fresh incarnation that re-votes on an instance its
    predecessor already voted in lets two choosing quorums pivot on the
    two incarnations of one node and choose different values. A recovered
    incarnation therefore inherits a minimal durable footprint — its
    promise, its proposal-number watermark, and a {e vote floor} at the
    previous incarnation's log end — and abstains from every acceptor
    action (promises, accepts, its own self-vote as leader) until its
    chosen prefix covers the floor; below the floor it then reports only
    decided values, above it no earlier incarnation ever voted. This is
    the watermark Raft persists (term + vote) without persisting the log;
    until catch-up the replica weighs like a crashed voter, so a run
    whose fault plan starves the remaining quorum can legitimately stall
    where an unsafe re-vote would have "progressed".

    The algorithm never emits an engine-level [Decide]; run it with
    [stop_when_all_decided:false] and judge the run with {!Smr_checker}. *)

(** The reserved hole-filler command (0). Real commands are [> noop]. *)
val noop : int

type state

type msg

(** A harness-side view of every replica's log, shared by the algorithm
    returned from {!make}. The registry always tracks each node's {e
    current incarnation} (recovery re-registers the fresh state). *)
type handle

(** [make ?window ?on_apply ... ()] builds the algorithm plus its handle.

    @param window how many instances beyond the commit index may be in
      flight at once (default 4).
    @param on_apply called at every replica, exactly once per applied
      command, in apply (= log) order: [f ~node ~index ~cmd]. Called from
      inside the engine's handlers — it may in turn call {!submit} for
      [node] (closed-loop clients resubmitting on completion). {b Not}
      called for commands covered by an installed snapshot (the snapshot
      {e is} the applied state), nor for reconfiguration commands.
    @param on_suspect called when a replica's detector suspects its current
      leader ([f ~node ~suspect]); observability hook, fired before the
      re-election it triggers.
    @param members the initial voting configuration (default: all [n]
      nodes). Nodes outside it start as learners awaiting a scale-up.
    @param compact_every compaction watermark interval: snapshot + truncate
      every time the commit index advances this many instances past the
      floor (default: never compact).
    @param patience the ◇P detector's own-ack silence budget before the
      leader is suspected (default [4n + 16]; see {!Fd}).
    @param backoff detector patience multiplier applied on every cleared
      (false) suspicion (default [1] = fixed patience).
    @param repair_retries how many times a replica re-answers a straggler
      whose commit index stays put (default 8; [0] = answer only when a
      heartbeat is heard, the pre-PR 7 behavior — a single lost repair can
      then stall a silent straggler forever, see [test_smr.ml]).
    @param clock the engine's clock cell (the same [ref] handed to
      [Engine.run ?clock]). When present, the algorithm timestamps each
      client command's {e first} [Propose] anywhere in the cluster
      (readable via {!propose_time}), splitting commit latency into a
      queueing phase (submit → first propose: forwarding, leader election,
      window waits) and a replication phase (first propose → commit).
      Purely observational — proposing behaviour is identical with or
      without it.
    @raise Invalid_argument on out-of-range parameters ([window < 1],
      [compact_every < 1], [patience < 1], [backoff < 1],
      [repair_retries < 0], empty [members], member ids outside 0..29). *)
val make :
  ?window:int ->
  ?on_apply:(node:int -> index:int -> cmd:int -> unit) ->
  ?on_suspect:(node:int -> suspect:int -> unit) ->
  ?members:int list ->
  ?compact_every:int ->
  ?patience:int ->
  ?backoff:int ->
  ?repair_retries:int ->
  ?clock:int ref ->
  unit ->
  (state, msg) Amac.Algorithm.t * handle

(** [submit h ~node ~cmd] hands a client command to a replica. Must be
    called from within that node's handler context (e.g. an [on_apply]
    callback) — the actions it triggers are emitted by the enclosing
    handler's [finish]. For submissions at arbitrary times use engine
    injections with {!injector}.
    @raise Invalid_argument if [cmd <= noop], if [cmd] has reconfiguration
    bits set (use {!reconfigure}), or if the node is unknown. *)
val submit : handle -> node:int -> cmd:int -> unit

(** [injector h] is an [Engine.on_inject] handler: the payload is the
    command, submitted at the injection's target node. Payloads created by
    {!reconfig_cmd} are routed as reconfigurations (and are not counted as
    client submissions).
    @raise Invalid_argument if a payload is [<= noop] or is an unregistered
    reconfiguration command. *)
val injector :
  handle ->
  now:int ->
  payload:int ->
  Amac.Algorithm.ctx ->
  state ->
  msg Amac.Algorithm.action list

(** {2 Membership reconfiguration} *)

(** [reconfig_cmd h ~members] registers a reconfiguration to the given
    membership and returns the {e joint} command, suitable as an
    {!injector} payload. The matching final command is staged automatically
    by every replica that applies the joint.
    @raise Invalid_argument if [members] is empty or contains ids outside
    0..29, or after 1024 reconfigurations on one handle. *)
val reconfig_cmd : handle -> members:int list -> int

(** [reconfigure h ~node ~members] — {!reconfig_cmd} + immediate submission
    at [node] (same handler-context caveat as {!submit}). Returns the joint
    command. *)
val reconfigure : handle -> node:int -> members:int list -> int

(** Whether a command was registered by {!reconfig_cmd} on this handle
    (either the joint or the final form). *)
val was_reconfig : handle -> int -> bool

(** Structural tests on command values (no handle needed). *)
val is_reconfig : int -> bool

val is_joint_reconfig : int -> bool

(** The membership a reconfiguration command carries, sorted. *)
val reconfig_members : int -> int list

(** [leader h node] — the node's current Ω leader estimate. Always a voter
    while the configuration has one: learners and removed replicas never
    elect themselves (see [test_smr.ml]'s phantom-leader regression). *)
val leader : handle -> int -> int

(** [members h node] — the node's current voting configuration, sorted. *)
val members : handle -> int -> int list

(** [joint h node] — the incoming configuration if the node is
    mid-transition. *)
val joint : handle -> int -> int list option

(** [epoch h node] — completed reconfigurations at the node. *)
val epoch : handle -> int -> int

(** [configs h node] — reconfiguration commands in the node's committed
    prefix (including snapshot-inherited ones), as sorted
    [(instance, cmd)] pairs. *)
val configs : handle -> int -> (int * int) list

(** {2 Log access} *)

(** Replica ids currently registered, sorted. *)
val nodes : handle -> int list

(** [log h node] — the node's {e retained} chosen instances as sorted
    [(instance, value)] pairs (possibly with holes; instances below the
    compaction floor are truncated away). *)
val log : handle -> int -> (int * int) list

(** [commit_index h node] — length of the node's contiguous chosen
    prefix. *)
val commit_index : handle -> int -> int

(** [applied h node] — commands applied at the node, in apply order,
    including any snapshot-inherited prefix. *)
val applied : handle -> int -> int list

(** Whether a command was ever handed to {!submit}/{!injector}. *)
val was_submitted : handle -> int -> bool

val submitted_count : handle -> int

(** [propose_time h ~cmd] — the tick of [cmd]'s first [Propose] anywhere in
    the cluster. [None] if never proposed, or if {!make} ran without
    [?clock]. *)
val propose_time : handle -> cmd:int -> int option

(** {2 Compaction and lifecycle observability} *)

type snapshot_info = {
  floor : int;  (** log truncated below this instance *)
  s_applied : int list;  (** applied prefix at the floor, oldest first *)
  s_configs : (int * int) list;  (** configs at the floor, oldest first *)
  s_members : int list;
  s_joint : int list option;
  s_epoch : int;
}

(** [snapshot h node] — the node's current snapshot, if it has compacted
    (or installed) one. *)
val snapshot : handle -> int -> snapshot_info option

(** The node's ◇P detector stats (see {!Fd.stats}). *)
val fd_stats : handle -> int -> Fd.stats

type lifecycle = {
  fd_suspicions : int;  (** leader suspicions raised at this node *)
  fd_clears : int;  (** suspicions cleared as false (peer was alive) *)
  snapshots_taken : int;
  snapshots_installed : int;
  stale_cfg_votes : int;
      (** vote weight this node discarded as a proposer because the
          responder weighed it under a different configuration than the
          quorum rule in force (see the configuration-tag rule) *)
  reconfigs_superseded : int;
      (** joints that committed while another transition was open; each is
          re-minted under a fresh uid and re-proposed once the open
          transition closes *)
}

(** Per-incarnation lifecycle counters for the node. *)
val lifecycle : handle -> int -> lifecycle

val pp_msg : msg -> string

(** {2 Fingerprint / clone}

    The PR 4 hook discipline, exposed so wrappers that multiplex several
    SMR instances (the {e sharded} transport in [lib/shard]) can compose a
    sound {!Amac.Algorithm.hooks} from per-group pieces. [hooks] on the
    algorithm returned by {!make} itself stays [None] (the single-group
    fuzz baselines are pinned on that path).

    - {!fingerprint_state} folds the {e protocol} content (hash tables as
      sorted bindings, so layout differences never split states; lifecycle
      counters, which are observability only, are not folded);
    - {!fingerprint_msg} folds an in-flight message;
    - {!clone_state} deep-copies everything mutable; the shared handle
      plumbing ([cfg], the reconfiguration registrar) is shared, as the
      hook contract treats harness-side tables as global. *)

val fingerprint_state : state -> Amac.Fingerprint.t -> Amac.Fingerprint.t

val fingerprint_msg : msg -> Amac.Fingerprint.t -> Amac.Fingerprint.t

val clone_state : state -> state

