(** The SMR safety contract, checked over a {!Smr.handle} after (or during)
    a run. All four clauses are safety properties — they must hold in every
    schedule, under every fault plan:

    - {e prefix agreement}: two replicas never choose different values for
      the same instance (a shorter log is fine, a conflicting one is not);
    - {e no holes below the commit index}: the commit index only covers
      contiguously chosen instances;
    - {e exactly-once apply}: no command reaches a replica's state machine
      twice (within an incarnation — recovery is amnesiac by the model's
      semantics);
    - {e applied order = log order}: the apply sequence equals the
      committed prefix filtered of noops and re-chosen duplicates;

    plus validity: a chosen command was actually submitted by some client. *)

type violation =
  | Log_disagreement of {
      inst : int;
      node_a : int;
      value_a : int;
      node_b : int;
      value_b : int;
    }
  | Hole_below_commit of { node : int; inst : int }
  | Duplicate_apply of { node : int; cmd : int }
  | Apply_order_mismatch of {
      node : int;
      expected : int list;
      actual : int list;
    }
  | Unknown_command of { node : int; inst : int; value : int }

val pp_violation : Format.formatter -> violation -> unit

val to_string : violation -> string

(** All violations, in deterministic order (empty = the contract holds). *)
val check : Smr.handle -> violation list

val ok : Smr.handle -> bool
