(** The SMR safety contract, checked over a {!Smr.handle} after (or during)
    a run. All clauses are safety properties — they must hold in every
    schedule, under every fault plan:

    - {e prefix agreement}: two replicas never choose different values for
      the same instance (a shorter log is fine, a conflicting one is not);
    - {e configuration agreement}: two replicas never commit different
      reconfigurations at the same instance — checked over the
      configuration history, which survives log compaction, so a fork in
      quorum rules (an "epoch crossing") is caught even after the log
      entries that caused it were truncated;
    - {e no holes in the retained committed region}: the commit index only
      covers contiguously chosen instances, down to the compaction floor;
    - {e exactly-once apply}: no command reaches a replica's state machine
      twice — {e across snapshot installs too}: a snapshot-inherited prefix
      and the live tail must not overlap (within an incarnation — recovery
      is amnesiac by the model's semantics);
    - {e applied order = log order}: the apply sequence equals the
      snapshot-inherited prefix followed by the retained committed prefix,
      filtered of noops, reconfiguration commands and re-chosen duplicates;
    - {e snapshot prefix agreement}: a snapshot at floor [f] packages the
      apply sequence of [[0, f)]; it must be a prefix of the applied
      sequence of every replica whose commit index reaches [f];

    plus validity: every chosen, snapshot-covered or configuration command
    was actually submitted (or registered as a reconfiguration).

    {!check} reads the live handle; {!check_views} runs the same contract
    over explicit {!view} values, which is what the negative tests use to
    prove the checker actually flags each violation class. *)

(** One replica's checkable state. [v_log] is the retained chosen log
    (sorted); [v_applied] the full apply sequence, oldest first, including
    any snapshot-inherited prefix; [v_floor]/[v_snap_applied] the
    compaction floor and the snapshot's apply prefix ([0]/[[]] when the
    replica never compacted); [v_configs] the committed reconfigurations
    (sorted, snapshot-inherited ones included). *)
type view = {
  v_node : int;
  v_log : (int * int) list;
  v_commit : int;
  v_applied : int list;
  v_floor : int;
  v_snap_applied : int list;
  v_configs : (int * int) list;
  v_epoch : int;
}

type violation =
  | Log_disagreement of {
      inst : int;
      node_a : int;
      value_a : int;
      node_b : int;
      value_b : int;
    }
  | Hole_below_commit of { node : int; inst : int }
  | Duplicate_apply of { node : int; cmd : int }
  | Apply_order_mismatch of {
      node : int;
      expected : int list;
      actual : int list;
    }
  | Unknown_command of { node : int; inst : int; value : int }
      (** [inst = -1] marks a never-submitted command inside a snapshot. *)
  | Snapshot_divergence of { node : int; peer : int; floor : int }
  | Epoch_divergence of {
      inst : int;
      node_a : int;
      cmd_a : int;
      node_b : int;
      cmd_b : int;
    }

val pp_violation : Format.formatter -> violation -> unit

val to_string : violation -> string

(** [check_views ~submitted views] — the full contract over explicit
    views; [submitted] is the validity oracle (client submissions and
    registered reconfigurations). Deterministic order; empty = holds. *)
val check_views : submitted:(int -> bool) -> view list -> violation list

(** [view_of h node] — the node's current checkable state. *)
val view_of : Smr.handle -> int -> view

(** All violations, in deterministic order (empty = the contract holds). *)
val check : Smr.handle -> violation list

val ok : Smr.handle -> bool

(** {2 Sharded (multi-group) contract}

    A sharded deployment multiplexes G independent SMR groups over one
    MAC layer, with client commands carried in batches. Three clauses on
    top of the per-group contract:

    - {e per-group prefix agreement}: the full single-group contract
      holds inside every group independently;
    - {e cross-group exactly-once}: a client command is chosen by at
      most one group, and applied at most once per replica even when the
      two occurrences hide in distinct batches;
    - {e batch atomicity}: a batch's commands land in each replica's
      flattened apply stream contiguously, in batch order, all or
      nothing (nothing = covered by a snapshot install, which inherits
      applied state without replaying per-command). *)

(** One group's checkable state: the per-replica {!view}s plus each
    replica's flattened client-command apply stream (batches expanded,
    oldest first). *)
type shard_view = {
  sv_group : int;
  sv_views : view list;
  sv_applied_cmds : (int * int list) list;
}

type shard_violation =
  | Group_violation of { group : int; violation : violation }
  | Cross_group_duplicate of {
      cmd : int;
      group_a : int;
      node_a : int;
      group_b : int;
      node_b : int;
    }  (** [group_a = group_b] flags a same-replica duplicate hidden in
           two distinct batches. *)
  | Batch_split of {
      group : int;
      node : int;
      batch : int;
      expected : int list;
      actual : int list;
    }

val pp_shard_violation : Format.formatter -> shard_violation -> unit

val shard_to_string : shard_violation -> string

(** [check_shard_views ~submitted ~expand svs] — the sharded contract
    over explicit views. [submitted group cmd] is group-local validity;
    [expand value] returns [Some cmds] iff [value] is a batch (oldest
    first), [None] for a plain command. Deterministic order; empty =
    holds. *)
val check_shard_views :
  submitted:(int -> int -> bool) ->
  expand:(int -> int list option) ->
  shard_view list ->
  shard_violation list
