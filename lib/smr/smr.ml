open Consensus.Paxos_types

(* Multi-decree state-machine replication over the wPAXOS machinery: the
   shared services (leader election, change, tree building, broadcast
   packing) and the hardened retransmission layer are carried over from
   [Consensus.Wpaxos] unchanged in spirit; the single proposer/acceptor
   pair is replaced by the standard multi-Paxos construction. One Prepare
   establishes a leader lease covering every instance from the leader's
   commit index up; while the lease holds, the leader streams per-instance
   Propose messages under the same proposal number, up to [window]
   instances beyond the commit index (instance pipelining). A value is
   chosen at an instance once a majority accepts it; the commit index is
   the length of the chosen prefix, and commands are applied to the state
   machine exactly once, in log order, skipping noops.

   Production-lifecycle layer (PR 7):
   - leader suspicion lives in the shared ◇P detector ([Fd]);
   - the log is compacted at a watermark: a snapshot of the applied state
     machine replaces the prefix below [snap_floor], and the snapshot is
     transferred to stragglers whose commit index lags the floor;
   - membership changes are decided through the log itself, joint-consensus
     style: a joint command opens a transition during which proposals need
     majorities of BOTH the old and the new configuration; the matching
     final command (auto-staged by every replica that applies the joint)
     closes it and bumps the epoch. *)

let noop = 0

(* --------------------------------------------------------------------- *)
(* Reconfiguration commands are ordinary log values with reserved bits:    *)
(* bits 0..29 carry the membership mask, bits 30..39 a uid (so repeated    *)
(* reconfigs to the same membership stay distinct values), bit 40 marks    *)
(* the joint (transition-opening) command and bit 41 the final             *)
(* (transition-closing) one.                                               *)
(* --------------------------------------------------------------------- *)

let joint_bit = 1 lsl 40

let final_bit = 1 lsl 41

let member_mask = 0x3FFFFFFF

let uid_shift = 30

let is_reconfig c = c land (joint_bit lor final_bit) <> 0

let is_joint_reconfig c = c land joint_bit <> 0

let reconfig_mask c = c land member_mask

let final_of_joint c = c land lnot joint_bit lor final_bit

let mask_of_list ms = List.fold_left (fun m i -> m lor (1 lsl i)) 0 ms

let list_of_mask m =
  List.filter (fun i -> m land (1 lsl i) <> 0) (List.init 30 Fun.id)

let reconfig_members c = list_of_mask (reconfig_mask c)

type proposer_msg =
  | Prepare of { pno : pno; from_inst : int }
  | Propose of { pno : pno; inst : int; value : int }

let pno_of = function Prepare { pno; _ } -> pno | Propose { pno; _ } -> pno

(* Key identifying one proposition for respond-once / forward-once dedup:
   (tag, proposer, -1) for the lease Prepare, (tag, proposer, inst) for a
   per-instance Propose. *)
let prop_key = function
  | Prepare { pno; _ } -> (pno.tag, pno.proposer, -1)
  | Propose { pno; inst; _ } -> (pno.tag, pno.proposer, inst)

type resp_round = Rprep | Racc of int

(* A (possibly tree-aggregated) acceptor response. Prepare responses carry
   the responders' accepted priors per instance — the constraint set the
   new lease holder must respect; Propose responses just count. [count]
   weighs votes in the current configuration, [count2] in the incoming one
   during a joint transition (0 outside transitions). [r_cfg] is the
   responder's configuration tag (members mask + shifted joint mask): a
   vote self-weighed under one configuration must only ever be counted
   against quorum denominators of the SAME configuration — a lagging
   pre-transition acceptor's weight-1 vote is meaningless to a
   post-transition leader, and counting it can assemble a "quorum" that no
   later prepare majority intersects. Responses are merged along the
   aggregation tree only within one tag; the proposer discards tags other
   than its own. *)
type response = {
  dest : int;
  target : int;
  r_pno : pno;
  round : resp_round;
  positive : bool;
  count : int;
  count2 : int;
  r_cfg : int;
  priors : (int * prior) list;
  committed : pno option;
}

type component =
  | Leader of { id : int; hb : int; commit : int; sender : int }
      (* [id]/[hb]: the heartbeat being carried (possibly a relay);
         [commit]/[sender]: the relaying node's own commit index — the
         straggler-repair signal. *)
      (* heartbeat; [commit] is stamped by the relaying sender at send time,
         so receivers can repair a straggling neighbor (see [on_leader]) *)
  | Change of { counter : int; origin : int }
  | Search of { root : int; hops : int; sender : int }
  | Forward of { cmd : int }  (* client command flooding *)
  | Snapshot of {
      floor : int;
      s_applied : int list;  (* applied prefix, oldest first *)
      s_configs : (int * int) list;  (* (index, cmd), oldest first *)
      s_members : int;  (* membership mask at the floor *)
      s_joint : int;  (* incoming-config mask mid-transition; 0 = none *)
      s_epoch : int;
    }
  | Proposal of proposer_msg
  | Response of response
  | Decision of { inst : int; value : int }

type msg = component list

(* Proposer lease: one Prepare covers all instances >= [from_inst]; the
   merged priors map constrains per-instance value choice once Ready. *)
type lease =
  | No_lease
  | Preparing of {
      pno : pno;
      from_inst : int;
      mutable yes : int;
      mutable no : int;
      mutable yes2 : int;
      mutable no2 : int;
      priors : (int, prior) Hashtbl.t;
    }
  | Ready of { pno : pno; priors : (int, prior) Hashtbl.t }

type flight = {
  f_value : int;
  mutable f_yes : int;
  mutable f_no : int;
  mutable f_yes2 : int;
  mutable f_no2 : int;
}

type inst = { mutable accepted : prior option; mutable chosen : int option }

type pending_response = {
  q_target : int;
  q_pno : pno;
  q_round : resp_round;
  q_positive : bool;
  q_cfg : int;
  mutable q_count : int;
  mutable q_count2 : int;
  mutable q_priors : (int * prior) list;
  mutable q_committed : pno option;
}

type config = {
  window : int;
  on_apply : (node:int -> index:int -> cmd:int -> unit) option;
  on_suspect : (node:int -> suspect:int -> unit) option;
  patience : int option;
  backoff : int;
  compact_every : int option;
  repair_retries : int;
  members : int list option;
  clock : int ref option;
      (* the engine's clock cell, when the harness wants latency breakdowns *)
  propose_times : (int, int) Hashtbl.t;
      (* cmd -> time of its first Propose anywhere (shared with the handle);
         splits commit latency into queueing (submit -> first propose) and
         replication (first propose -> commit) *)
}

type state = {
  me : int;
  n : int;
  cfg : config;
  (* leader election service *)
  mutable omega : int;
  mutable leader_q : int option;
  (* change service *)
  mutable lamport : int;
  mutable last_change : int * int;
  mutable change_q : (int * int) option;
  (* tree building service *)
  dist : (int, int) Hashtbl.t;
  parent : (int, int) Hashtbl.t;
  mutable tree_q : (int * int) list;
  (* the log *)
  insts : (int, inst) Hashtbl.t;
  mutable commit_index : int;  (* length of the chosen prefix *)
  mutable max_inst_seen : int;  (* 1 + highest instance heard of *)
  mutable applied : int list;  (* applied commands, newest first *)
  applied_set : (int, unit) Hashtbl.t;
  (* membership (joint consensus) *)
  mutable members : int list;  (* current voters, sorted *)
  mutable joint : int list option;  (* incoming voters mid-transition *)
  mutable epoch : int;  (* completed reconfigurations *)
  mutable configs : (int * int) list;  (* (index, cmd), newest first *)
  mutable pending_joints : int list;
      (* joints superseded by an already-open transition, re-minted with a
         fresh uid, awaiting re-proposal once the transition closes; FIFO *)
  register_reconfig : int -> unit;
      (* registers a replica-minted (salvaged) reconfiguration command on
         the shared handle, so checker validity and injectors accept it *)
  (* compaction *)
  mutable snap_floor : int;  (* log truncated below this index *)
  mutable snap_applied : int list;  (* applied prefix at floor, newest 1st *)
  mutable snap_configs : (int * int) list;  (* configs at floor, newest 1st *)
  mutable snap_members : int list;
  mutable snap_joint : int list option;
  mutable snap_epoch : int;
  mutable snap_q : bool;  (* a snapshot transfer is queued *)
  (* client commands *)
  known_cmds : (int, unit) Hashtbl.t;
  mutable cmd_pool : int list;  (* submitted, not yet known chosen; FIFO *)
  chosen_cmds : (int, unit) Hashtbl.t;
  mutable forward_q : int list;
  (* proposer *)
  mutable max_tag : int;
  mutable lease : lease;
  mutable attempts_left : int;
  proposing : (int, flight) Hashtbl.t;  (* instance -> in-flight proposal *)
  mutable proposal_q : proposer_msg list;
  seen_props : (int * int * int, unit) Hashtbl.t;  (* forward-once *)
  (* acceptor *)
  mutable promised : pno option;
  vote_floor : int;
      (* Recovery safety watermark. Crash-recovery is amnesiac for the log
         and the per-instance acceptor slots, but a recovered incarnation
         that re-votes on an instance its predecessor may already have
         voted in breaks quorum intersection (two choosing quorums can
         pivot on the two incarnations of the same node and choose
         different values). A fresh incarnation therefore inherits the
         minimal durable footprint — [promised], [max_tag] and this floor,
         the previous incarnation's log end — and abstains from every
         acceptor action until its chosen prefix covers the floor. From
         then on all instances below the floor are decided (reported to
         prepares as unbeatable chosen priors) and all instances at or
         above it are ones no earlier incarnation ever voted in, so normal
         participation is sound. This mirrors the watermark Raft persists
         (term + vote) without persisting the log itself. *)
  responded : (int * int * int, unit) Hashtbl.t;  (* respond-once *)
  mutable response_q : pending_response list;
  (* decision flooding *)
  mutable decide_q : (int * int) list;  (* (inst, value), FIFO *)
  (* transport *)
  mutable sending : bool;
  (* hardening, as in Wpaxos (always on: a replicated log only makes sense
     with retransmission). Heartbeats, silence accounting and the suspected
     set live in the shared ◇P detector. *)
  fd : Fd.t;
  mutable idle_acks : int;
  mutable next_refresh : int;
  mutable progress_silence : int;
  mutable next_retry : int;
  retry_start : int;
  retry_cap : int;
  mutable retries_left : int;
  mutable patience_left : int;
  (* responder-side straggler-repair retry (a single lost repair message
     must not stall a restarter forever; see [on_leader]) *)
  mutable repair_node : int;  (* the straggler the hole belongs to; -1 = none *)
  mutable repair_hole : int;  (* lowest lagging commit heard; -1 = none *)
  mutable repair_left : int;  (* retry budget for the current hole *)
  mutable repair_wait : int;
  mutable repair_next : int;
  (* lifecycle counters (observability; not protocol state) *)
  mutable fd_suspicions : int;
  mutable fd_clears : int;
  mutable snapshots_taken : int;
  mutable snapshots_installed : int;
  mutable stale_cfg_votes : int;
  mutable reconfigs_superseded : int;
}

let refresh_start = 4

let refresh_cap = 64

let patience_max = 512

let max_retries = 8

let stamp_compare (ca, oa) (cb, ob) =
  match Int.compare ca cb with 0 -> Int.compare oa ob | c -> c

let hb_of st id = Fd.hb st.fd id

let suspected st id = Fd.suspected st.fd id

let refill st = st.patience_left <- patience_max

(* ------------------------------------------------------------------ *)
(* Quorums: a majority of the current configuration, AND — during a    *)
(* joint transition — a majority of the incoming one.                  *)
(* ------------------------------------------------------------------ *)

let maj k = (k / 2) + 1

let is_voter st id =
  List.mem id st.members
  || (match st.joint with Some t -> List.mem id t | None -> false)

(* This node's vote weight in the current / incoming configuration. *)
let weight1 st = if List.mem st.me st.members then 1 else 0

let weight2 st =
  match st.joint with
  | Some t -> if List.mem st.me t then 1 else 0
  | None -> 0

(* The configuration a vote was weighed under, packed into one int: the
   members mask in the low 30 bits, the joint (incoming) mask — 0 outside a
   transition — in the next 30. A proposer only counts votes carrying its
   own tag (see [count_response]). *)
let cfg_tag st =
  mask_of_list st.members
  lor ((match st.joint with Some t -> mask_of_list t | None -> 0)
      lsl 30)

(* Whether this incarnation may act as an acceptor yet (see [vote_floor]).
   Abstention is indistinguishable from a crashed voter: safe, and live as
   long as the rest of the configuration can still assemble quorums. *)
let can_vote st = st.commit_index >= st.vote_floor

let quorum_reached st y1 y2 =
  y1 >= maj (List.length st.members)
  && match st.joint with None -> true | Some t -> y2 >= maj (List.length t)

(* Once this many voters of either group rejected, yes can no longer reach
   the corresponding majority. *)
let lost_in k n = n >= k - maj k + 1

let quorum_lost st n1 n2 =
  lost_in (List.length st.members) n1
  || match st.joint with None -> false | Some t -> lost_in (List.length t) n2

let get_inst st i =
  match Hashtbl.find_opt st.insts i with
  | Some r -> r
  | None ->
      let r = { accepted = None; chosen = None } in
      Hashtbl.replace st.insts i r;
      r

let note_inst st i =
  if i + 1 > st.max_inst_seen then st.max_inst_seen <- i + 1

(* A node is complete when its chosen prefix covers everything it has heard
   of, no command it holds is still waiting for a slot, and no repair or
   snapshot transfer is pending. Complete nodes stop heartbeating (the
   network quiesces); incomplete ones keep the ack-clock ticking,
   patience-bounded. *)
let has_work st =
  st.commit_index < st.max_inst_seen
  || st.cmd_pool <> []
  || st.snap_q
  || (st.repair_hole >= 0 && st.repair_left > 0)
  || (st.omega = st.me
     && (Hashtbl.length st.proposing > 0
        || match st.lease with Preparing _ -> true | _ -> false))

(* ------------------------------------------------------------------ *)
(* Broadcast service: pack one component per non-empty queue.          *)
(* ------------------------------------------------------------------ *)

let dequeue_tree st =
  match st.tree_q with
  | [] -> None
  | entries ->
      let chosen =
        match List.find_opt (fun (root, _) -> root = st.omega) entries with
        | Some entry -> entry
        | None -> List.hd entries
      in
      st.tree_q <- List.filter (fun e -> e <> chosen) st.tree_q;
      let root, hops = chosen in
      Some (Search { root; hops; sender = st.me })

let dequeue_response st =
  let rec pick acc = function
    | [] -> None
    | entry :: rest -> (
        match Hashtbl.find_opt st.parent entry.q_target with
        | Some parent_id ->
            st.response_q <- List.rev_append acc rest;
            Some
              (Response
                 {
                   dest = parent_id;
                   target = entry.q_target;
                   r_pno = entry.q_pno;
                   round = entry.q_round;
                   positive = entry.q_positive;
                   count = entry.q_count;
                   count2 = entry.q_count2;
                   r_cfg = entry.q_cfg;
                   priors = entry.q_priors;
                   committed = entry.q_committed;
                 })
        | None -> pick (entry :: acc) rest)
  in
  pick [] st.response_q

let compose st =
  let components = ref [] in
  (match st.decide_q with
  | (inst, value) :: rest ->
      st.decide_q <- rest;
      components := Decision { inst; value } :: !components
  | [] -> ());
  (if st.snap_q && st.snap_floor > 0 then begin
     st.snap_q <- false;
     components :=
       Snapshot
         {
           floor = st.snap_floor;
           s_applied = List.rev st.snap_applied;
           s_configs = List.rev st.snap_configs;
           s_members = mask_of_list st.snap_members;
           s_joint =
             (match st.snap_joint with
             | Some t -> mask_of_list t
             | None -> 0);
           s_epoch = st.snap_epoch;
         }
       :: !components
   end
   else st.snap_q <- false);
  (match dequeue_response st with
  | Some c -> components := c :: !components
  | None -> ());
  (match st.proposal_q with
  | p :: rest ->
      st.proposal_q <- rest;
      components := Proposal p :: !components
  | [] -> ());
  (match st.forward_q with
  | cmd :: rest ->
      st.forward_q <- rest;
      components := Forward { cmd } :: !components
  | [] -> ());
  (match dequeue_tree st with
  | Some c -> components := c :: !components
  | None -> ());
  (match st.change_q with
  | Some (counter, origin) ->
      st.change_q <- None;
      components := Change { counter; origin } :: !components
  | None -> ());
  (match st.leader_q with
  | Some id ->
      st.leader_q <- None;
      (* Heartbeat and commit index are read at send time: relays carry
         the freshest count they know, and [commit] always describes the
         sender itself (the straggler-repair signal). *)
      components :=
        Leader { id; hb = hb_of st id; commit = st.commit_index; sender = st.me }
        :: !components
  | None -> ());
  !components

let maybe_send st =
  if st.sending then []
  else
    match compose st with
    | [] -> []
    | components ->
        st.sending <- true;
        [ Amac.Algorithm.Broadcast components ]

let finish st = maybe_send st

(* ------------------------------------------------------------------ *)
(* Response queue plumbing                                             *)
(* ------------------------------------------------------------------ *)

let prune_response_q st =
  st.response_q <-
    List.filter (fun entry -> entry.q_target = st.omega) st.response_q;
  let largest =
    List.fold_left
      (fun acc entry ->
        match acc with
        | None -> Some entry.q_pno
        | Some best -> if pno_lt best entry.q_pno then Some entry.q_pno else acc)
      None st.response_q
  in
  match largest with
  | None -> ()
  | Some best ->
      st.response_q <-
        List.filter (fun entry -> compare_pno entry.q_pno best = 0) st.response_q

let merge_priors existing extra =
  List.fold_left
    (fun acc (i, prior) ->
      let rec upd = function
        | [] -> [ (i, prior) ]
        | (j, p) :: rest when j = i -> (
            match max_prior (Some p) (Some prior) with
            | Some best -> (j, best) :: rest
            | None -> (j, p) :: rest)
        | entry :: rest -> entry :: upd rest
      in
      upd acc)
    existing extra

let enqueue_response st ~target ~pno ~round ~positive ~count ~count2 ~cfg
    ~priors ~committed =
  let entry =
    {
      q_target = target;
      q_pno = pno;
      q_round = round;
      q_positive = positive;
      q_cfg = cfg;
      q_count = count;
      q_count2 = count2;
      q_priors = priors;
      q_committed = committed;
    }
  in
  (* Votes self-weighed under different configurations must never be summed
     — the tag equality below keeps each aggregate homogeneous. *)
  let mergeable existing =
    existing.q_target = entry.q_target
    && compare_pno existing.q_pno entry.q_pno = 0
    && existing.q_round = entry.q_round
    && existing.q_positive = entry.q_positive
    && existing.q_cfg = entry.q_cfg
  in
  (match List.find_opt mergeable st.response_q with
  | Some existing ->
      existing.q_count <- existing.q_count + entry.q_count;
      existing.q_count2 <- existing.q_count2 + entry.q_count2;
      existing.q_priors <- merge_priors existing.q_priors entry.q_priors;
      existing.q_committed <-
        max_committed existing.q_committed entry.q_committed
  | None -> st.response_q <- st.response_q @ [ entry ]);
  prune_response_q st

(* Acceptor: a single lease-wide promise (multi-Paxos), per-instance
   accepted values. Prepare responses return every accepted prior at or
   above the requested instance — the new leader's constraint set. A
   proposition reaching below our compaction floor cannot be answered
   soundly (the priors are gone): reject it and queue a snapshot transfer
   so the lagging proposer catches up instead. *)
let acceptor_respond st (message : proposer_msg) =
  let pno = pno_of message in
  let ok = match st.promised with None -> true | Some p -> pno_le p pno in
  match message with
  | Prepare { from_inst; _ } ->
      if from_inst < st.snap_floor then begin
        st.snap_q <- true;
        (Rprep, false, [], st.promised)
      end
      else if ok then begin
        st.promised <- Some pno;
        let priors =
          Hashtbl.fold
            (fun i r acc ->
              if i < from_inst then acc
              else
                match (r.chosen, r.accepted) with
                | Some value, _ ->
                    (* A value we know is CHOSEN — possibly learned via a
                       repair decision, with no accepted record behind it
                       (amnesiac restart) — is an unbeatable constraint.
                       Report it with a top-ranked ballot so no new lease
                       can steer the instance to a noop over our head. *)
                    (i, { pno = { tag = max_int; proposer = 0 }; value })
                    :: acc
                | None, Some prior -> (i, prior) :: acc
                | None, None -> acc)
            st.insts []
        in
        let priors = List.sort (fun (a, _) (b, _) -> Int.compare a b) priors in
        (Rprep, true, priors, None)
      end
      else (Rprep, false, [], st.promised)
  | Propose { inst; value; _ } ->
      if inst < st.snap_floor then begin
        st.snap_q <- true;
        (Racc inst, false, [], st.promised)
      end
      else begin
        note_inst st inst;
        if ok then begin
          st.promised <- Some pno;
          (get_inst st inst).accepted <- Some { pno; value };
          (Racc inst, true, [], None)
        end
        else (Racc inst, false, [], st.promised)
      end

(* ------------------------------------------------------------------ *)
(* The log: choosing, committing, applying, compacting, reconfiguring  *)
(* ------------------------------------------------------------------ *)

(* How many joints in a committed configuration history were superseded
   (committed while another transition was already open), mirroring
   [apply_reconfig]'s transition state machine. Every replica evaluates
   this over the same committed prefix, so the count — and the salvage uid
   minted from it — is identical cluster-wide. *)
let superseded_seq configs =
  let ordered = List.sort (fun (a, _) (b, _) -> Int.compare a b) configs in
  List.fold_left
    (fun (open_, n) (_, c) ->
      if is_joint_reconfig c then
        match open_ with
        | None -> (Some (reconfig_mask c), n)
        | Some _ -> (open_, n + 1)
      else
        match open_ with
        | Some m when m = reconfig_mask c -> (None, n)
        | Some _ | None -> (open_, n))
    (None, 0) ordered
  |> snd

(* Salvaged joints re-mint the superseded membership under a fresh uid,
   counted down from the top of the 10-bit uid space so replica-minted
   commands cannot collide with handle-allocated ones (which count up). *)
let salvage_uid seq = 1023 - (seq - 1)

let rec advance_commit st =
  let continue = ref true in
  while !continue do
    match Hashtbl.find_opt st.insts st.commit_index with
    | Some { chosen = Some value; _ } ->
        let index = st.commit_index in
        st.commit_index <- st.commit_index + 1;
        if is_reconfig value then apply_reconfig st ~index ~value
        else if value <> noop && not (Hashtbl.mem st.applied_set value)
        then begin
          Hashtbl.replace st.applied_set value ();
          st.applied <- value :: st.applied;
          match st.cfg.on_apply with
          | Some f -> f ~node:st.me ~index ~cmd:value
          | None -> ()
        end
    | Some { chosen = None; _ } | None -> continue := false
  done;
  maybe_compact st

(* A reconfiguration command reached the committed prefix. Joint: open the
   transition (dual quorums from here on) and stage the matching final
   command — at EVERY replica, so the transition completes even if the
   leader that proposed the joint dies. Final: adopt the new configuration
   and bump the epoch. Both restart the leader's lease, because the quorum
   rule its in-flight counts were accumulated under just changed. *)
and apply_reconfig st ~index ~value =
  st.configs <- (index, value) :: st.configs;
  let changed =
    if is_joint_reconfig value then (
      match st.joint with
      | None ->
          st.joint <- Some (reconfig_members value);
          absorb_cmd st (final_of_joint value);
          true
      | Some _ ->
          (* A second joint committed while a transition is already open
             (a racing stale-view leader got it chosen): it cannot open
             now, but the requested membership change must not be silently
             dropped — its command value is spent (chosen at this
             instance), so re-mint it under a fresh deterministic uid and
             queue it for re-proposal once the open transition closes. *)
          st.reconfigs_superseded <- st.reconfigs_superseded + 1;
          let uid = salvage_uid (superseded_seq st.configs) in
          if uid >= 0 then begin
            let jc =
              reconfig_mask value lor (uid lsl uid_shift) lor joint_bit
            in
            st.register_reconfig jc;
            st.pending_joints <- st.pending_joints @ [ jc ]
          end;
          false)
    else
      match st.joint with
      | Some t when mask_of_list t = reconfig_mask value ->
          st.members <- t;
          st.joint <- None;
          st.epoch <- st.epoch + 1;
          recompute_omega st;
          true
      | Some _ | None ->
          (* the transition this final closes was completed already (a
             salvaged duplicate) — or never seen; adopt monotonically *)
          if st.joint = None && st.members <> reconfig_members value then begin
            st.members <- reconfig_members value;
            st.epoch <- st.epoch + 1;
            recompute_omega st;
            true
          end
          else false
  in
  if changed && st.omega = st.me then start_prepare st;
  if changed then flush_pending_joints st

(* A transition just closed: resurrect the oldest salvaged joint whose
   membership is still news. (Queued at every replica that applied the
   superseded joint — the same value everywhere, so flooding dedups.) *)
and flush_pending_joints st =
  match st.pending_joints with
  | jc :: rest when st.joint = None ->
      st.pending_joints <- rest;
      if reconfig_mask jc <> mask_of_list st.members then absorb_cmd st jc
      else flush_pending_joints st
  | _ :: _ | [] -> ()

and maybe_compact st =
  match st.cfg.compact_every with
  | Some k when st.commit_index - st.snap_floor >= k ->
      (* Snapshot the applied state machine at the commit watermark and
         drop the log prefix it covers. Everything an installer needs to
         take over from here travels with the snapshot: the applied
         prefix, the configuration history, and the membership/epoch. *)
      st.snap_floor <- st.commit_index;
      st.snap_applied <- st.applied;
      st.snap_configs <- st.configs;
      st.snap_members <- st.members;
      st.snap_joint <- st.joint;
      st.snap_epoch <- st.epoch;
      let below =
        Hashtbl.fold
          (fun i _ acc -> if i < st.snap_floor then i :: acc else acc)
          st.insts []
      in
      List.iter (Hashtbl.remove st.insts) below;
      st.snapshots_taken <- st.snapshots_taken + 1
  | Some _ | None -> ()

and note_chosen st i value =
  if i >= st.snap_floor then
    let r = get_inst st i in
    match r.chosen with
    | Some _ -> ()  (* first choice wins locally; cross-node agreement is
                       the checker's business *)
    | None ->
        r.chosen <- Some value;
        note_inst st i;
        if value <> noop then Hashtbl.replace st.chosen_cmds value ();
        st.cmd_pool <- List.filter (fun c -> c <> value) st.cmd_pool;
        (* Flood the decision exactly once per node. *)
        st.decide_q <- st.decide_q @ [ (i, value) ];
        refill st;
        advance_commit st;
        if st.omega = st.me then fill_window st

(* A snapshot from a peer whose floor is ahead of our commit index: adopt
   it wholesale. The applied prefix replaces ours (the commands it covers
   are NOT replayed through on_apply — the snapshot IS the applied state),
   the log below the floor is dropped, and the leader re-prepares from the
   new commit index. *)
and install_snapshot st ~floor ~s_applied ~s_configs ~s_members ~s_joint
    ~s_epoch =
  if floor > st.commit_index then begin
    let applied_new = List.rev s_applied in
    st.snap_floor <- floor;
    st.snap_applied <- applied_new;
    st.snap_configs <- List.rev s_configs;
    st.snap_members <- s_members;
    st.snap_joint <- s_joint;
    st.snap_epoch <- s_epoch;
    st.applied <- applied_new;
    Hashtbl.reset st.applied_set;
    List.iter (fun c -> Hashtbl.replace st.applied_set c ()) applied_new;
    st.configs <- st.snap_configs;
    st.members <- s_members;
    st.joint <- s_joint;
    st.epoch <- s_epoch;
    st.commit_index <- floor;
    note_inst st (floor - 1);
    let below =
      Hashtbl.fold
        (fun i _ acc -> if i < floor then i :: acc else acc)
        st.insts []
    in
    List.iter (Hashtbl.remove st.insts) below;
    (* Commands the snapshot proves chosen must not be proposed again. *)
    List.iter
      (fun c ->
        Hashtbl.replace st.chosen_cmds c ();
        Hashtbl.replace st.known_cmds c ())
      applied_new;
    List.iter
      (fun (_, c) ->
        Hashtbl.replace st.chosen_cmds c ();
        Hashtbl.replace st.known_cmds c ())
      st.snap_configs;
    st.cmd_pool <-
      List.filter (fun c -> not (Hashtbl.mem st.chosen_cmds c)) st.cmd_pool;
    (* Mid-transition snapshot: stage the closing final command here too. *)
    (match st.joint with
    | Some _ -> (
        match List.find_opt (fun (_, c) -> is_joint_reconfig c) st.configs with
        | Some (_, jc) -> absorb_cmd st (final_of_joint jc)
        | None -> ())
    | None -> ());
    st.lease <- No_lease;
    Hashtbl.reset st.proposing;
    st.snapshots_installed <- st.snapshots_installed + 1;
    refill st;
    advance_commit st;
    recompute_omega st;
    if st.omega = st.me then start_prepare st;
    flush_pending_joints st
  end

(* ------------------------------------------------------------------ *)
(* Proposer: lease acquisition and window filling                      *)
(* ------------------------------------------------------------------ *)

and start_prepare st =
  if st.omega = st.me then begin
    st.max_tag <- st.max_tag + 1;
    let pno = { tag = st.max_tag; proposer = st.me } in
    let from_inst = st.commit_index in
    Hashtbl.reset st.proposing;
    st.lease <-
      Preparing
        {
          pno;
          from_inst;
          yes = 0;
          no = 0;
          yes2 = 0;
          no2 = 0;
          priors = Hashtbl.create 8;
        };
    let message = Prepare { pno; from_inst } in
    st.proposal_q <- st.proposal_q @ [ message ];
    Hashtbl.replace st.seen_props (prop_key message) ();
    self_respond st message
  end

(* The next command this leader should put at the log end: the first pooled
   command not already chosen and not in flight at another instance.
   Reconfiguration commands are serialised: a joint only proposes outside a
   transition, a final only for the transition it closes. *)
and pick_cmd st =
  let inflight value =
    Hashtbl.fold
      (fun _ f acc -> acc || f.f_value = value)
      st.proposing false
  in
  let eligible c =
    (not (Hashtbl.mem st.chosen_cmds c))
    && (not (inflight c))
    &&
    if is_joint_reconfig c then st.joint = None
    else if is_reconfig c then
      match st.joint with
      | Some t -> reconfig_mask c = mask_of_list t
      | None -> false
    else true
  in
  List.find_opt eligible st.cmd_pool

and choose_value st priors i =
  match Hashtbl.find_opt priors i with
  | Some prior -> Some prior.value  (* bound by an earlier proposal *)
  | None ->
      if i < st.max_inst_seen then Some noop  (* fill a hole below the end *)
      else pick_cmd st

and fill_window st =
  match st.lease with
  | Ready { pno; priors } when st.omega = st.me ->
      let upper = st.commit_index + st.cfg.window in
      let i = ref st.commit_index in
      let stalled = ref false in
      while (not !stalled) && !i < upper do
        let inst = !i in
        let r = get_inst st inst in
        (if r.chosen = None && not (Hashtbl.mem st.proposing inst) then
           match choose_value st priors inst with
           | Some value ->
               Hashtbl.replace st.proposing inst
                 { f_value = value; f_yes = 0; f_no = 0; f_yes2 = 0; f_no2 = 0 };
               note_inst st inst;
               (match st.cfg.clock with
               | Some clk
                 when value > noop
                      && (not (is_reconfig value))
                      && not (Hashtbl.mem st.cfg.propose_times value) ->
                   Hashtbl.replace st.cfg.propose_times value !clk
               | Some _ | None -> ());
               let message = Propose { pno; inst; value } in
               st.proposal_q <- st.proposal_q @ [ message ];
               Hashtbl.replace st.seen_props (prop_key message) ();
               self_respond st message
           | None -> stalled := true);
        incr i
      done
  | Ready _ | Preparing _ | No_lease -> ()

and lease_failed st =
  st.lease <- No_lease;
  Hashtbl.reset st.proposing;
  if st.omega = st.me then begin
    if st.attempts_left > 0 then begin
      st.attempts_left <- st.attempts_left - 1;
      start_prepare st
    end
    else local_change st
  end

and change_updateq st stamp =
  st.change_q <- Some stamp;
  if st.omega = st.me then begin
    st.attempts_left <- 1;
    st.retries_left <- max_retries;
    st.next_retry <- st.retry_start;
    match st.lease with
    | No_lease -> start_prepare st
    | Ready _ -> fill_window st
    | Preparing _ -> ()
  end

and local_change st =
  st.lamport <- st.lamport + 1;
  let stamp = (st.lamport, st.me) in
  st.last_change <- stamp;
  change_updateq st stamp

and count_response st (r : response) =
  (* Only votes weighed under THIS proposer's exact configuration count:
     the yes/no tallies are checked against our members/joint denominators
     ([quorum_reached]/[quorum_lost]), and a leader restarts its lease
     whenever its configuration changes, so every counted vote and the
     quorum rule agree on what a majority means. A mismatched tag is a
     lagging (or leading) replica's vote — discard it; the retry schedule
     re-solicits once the straggler catches up via decisions/snapshots. *)
  if r.r_cfg <> cfg_tag st then
    st.stale_cfg_votes <- st.stale_cfg_votes + r.count + r.count2
  else
  match (st.lease, r.round) with
  | Preparing p, Rprep when compare_pno p.pno r.r_pno = 0 ->
      st.progress_silence <- 0;
      refill st;
      if r.positive then begin
        p.yes <- p.yes + r.count;
        p.yes2 <- p.yes2 + r.count2;
        List.iter
          (fun (i, prior) ->
            note_inst st i;
            let best =
              max_prior (Hashtbl.find_opt p.priors i) (Some prior)
            in
            match best with
            | Some best -> Hashtbl.replace p.priors i best
            | None -> ())
          r.priors;
        if quorum_reached st p.yes p.yes2 then begin
          st.lease <- Ready { pno = p.pno; priors = p.priors };
          fill_window st
        end
      end
      else begin
        p.no <- p.no + r.count;
        p.no2 <- p.no2 + r.count2;
        (match r.committed with
        | Some committed -> st.max_tag <- max st.max_tag committed.tag
        | None -> ());
        if quorum_lost st p.no p.no2 then lease_failed st
      end
  | Ready rd, Racc inst when compare_pno rd.pno r.r_pno = 0 -> (
      match Hashtbl.find_opt st.proposing inst with
      | Some f ->
          st.progress_silence <- 0;
          refill st;
          if r.positive then begin
            f.f_yes <- f.f_yes + r.count;
            f.f_yes2 <- f.f_yes2 + r.count2;
            if quorum_reached st f.f_yes f.f_yes2 then begin
              Hashtbl.remove st.proposing inst;
              note_chosen st inst f.f_value
            end
          end
          else begin
            f.f_no <- f.f_no + r.count;
            f.f_no2 <- f.f_no2 + r.count2;
            if quorum_lost st f.f_no f.f_no2 then lease_failed st
          end
      | None -> ())
  | (No_lease | Preparing _ | Ready _), _ -> ()

and self_respond st (message : proposer_msg) =
  (* A recovering leader below its vote floor casts no self-vote (its own
     acceptor is muted); it can still assemble quorums from its peers. *)
  if can_vote st then begin
    let pno = pno_of message in
    Hashtbl.replace st.responded (prop_key message) ();
    let round, positive, priors, committed = acceptor_respond st message in
    count_response st
      {
        dest = st.me;
        target = st.me;
        r_pno = pno;
        round;
        positive;
        count = weight1 st;
        count2 = weight2 st;
        r_cfg = cfg_tag st;
        priors;
        committed;
      }
  end

(* ------------------------------------------------------------------ *)
(* Client commands                                                     *)
(* ------------------------------------------------------------------ *)

(* First sight of a command: remember it, queue it for the leader, and
   re-flood it once so it reaches the leader in multihop networks.
   Reconfiguration commands travel the same path. *)
and absorb_cmd st cmd =
  if cmd <> noop && not (Hashtbl.mem st.known_cmds cmd) then begin
    Hashtbl.replace st.known_cmds cmd ();
    if not (Hashtbl.mem st.chosen_cmds cmd) then begin
      st.cmd_pool <- st.cmd_pool @ [ cmd ];
      refill st;
      if st.omega = st.me then
        match st.lease with
        | Ready _ -> fill_window st
        | No_lease -> start_prepare st
        | Preparing _ -> ()
    end;
    st.forward_q <- st.forward_q @ [ cmd ]
  end

(* ------------------------------------------------------------------ *)
(* Leader election (member-aware)                                      *)
(* ------------------------------------------------------------------ *)

and set_omega st id =
  st.omega <- id;
  st.leader_q <- Some id;
  st.lease <- No_lease;
  Hashtbl.reset st.proposing;
  st.proposal_q <-
    List.filter (fun p -> (pno_of p).proposer = st.omega) st.proposal_q;
  prune_response_q st;
  Fd.watch st.fd ~peer:id;
  refill st;
  local_change st

(* Best unsuspected VOTER among the ids we have heard from; non-voters
   (fresh learners awaiting a scale-up, removed replicas) never lead. The
   fold starts from an ineligible sentinel, NOT [st.me]: a learner whose
   id exceeds every voter must not elect itself the moment all voters look
   suspect (it would heartbeat and re-prepare as a phantom leader until
   promoted). With no eligible candidate at all, keep the current omega if
   it is still a voter, else fall back to the smallest voter. *)
and candidate_omega st =
  let next =
    Fd.candidate st.fd ~base:(-1) ~eligible:(fun id -> is_voter st id)
  in
  if next >= 0 then next
  else if is_voter st st.omega && not (suspected st st.omega) then st.omega
  else
    match List.find_opt (fun m -> not (suspected st m)) st.members with
    | Some m -> m
    | None -> st.omega

and recompute_omega st =
  let next = candidate_omega st in
  if next <> st.omega then set_omega st next

(* Answer a straggling neighbor: the decision at its first hole — or, if
   that instance fell below our compaction floor, the snapshot itself. *)
let queue_repair st ~lag_commit =
  if lag_commit < st.commit_index then
    if lag_commit < st.snap_floor then st.snap_q <- true
    else
      match Hashtbl.find_opt st.insts lag_commit with
      | Some { chosen = Some value; _ } ->
          if not (List.mem (lag_commit, value) st.decide_q) then
            st.decide_q <- st.decide_q @ [ (lag_commit, value) ]
      | Some { chosen = None; _ } | None -> ()

let clear_repair st =
  st.repair_node <- -1;
  st.repair_hole <- -1;
  st.repair_left <- 0;
  st.repair_wait <- 0

let on_leader st ~id ~hb ~commit ~sender =
  (if id <> st.me then
     match Fd.observe st.fd ~peer:id ~hb with
     | Stale -> ()
     | verdict ->
         (* Relay the fresh heartbeat so it floods network-wide. *)
         if id = st.omega then st.leader_q <- Some id;
         (match verdict with
         | Fresh_cleared ->
             st.fd_clears <- st.fd_clears + 1;
             refill st;
             recompute_omega st
         | Fresh ->
             (* A live heartbeat while omega points outside the voter set
                (every candidate looked suspect when we last recomputed):
                re-run the election so an eligible leader is re-adopted. *)
             if not (is_voter st st.omega) then recompute_omega st
         | Stale -> ()));
  if id > st.omega && is_voter st id && not (suspected st id) then
    set_omega st id;
  (* Straggler repair: the sending neighbor's commit index lags ours, so
     its first hole is an instance we have chosen — answer with that one
     decision (or the snapshot, if the hole was compacted away). One
     repair per heartbeat heard, PLUS a bounded retry schedule: repair
     answers ride the lossy channel like everything else, and a straggler
     that has nothing left to say goes silent — if its recovery broadcast
     is the last we hear and our answer is lost, no later heartbeat would
     retrigger repair and the straggler stalls forever. The retry budget
     resets whenever the straggler's commit moves (progress), so the
     schedule is message-bounded — and it stops the moment the straggler
     itself announces a caught-up commit index (the repair slot tracks
     whose hole it is; an announcement from a DIFFERENT caught-up node
     says nothing about the straggler and must not cancel its repair). *)
  (* An announced commit index c is proof that instances 0..c-1 are chosen
     somewhere: count them as heard-of. This is what keeps a silently
     recovering straggler in the echo loop — hearing a fresh announcement
     ahead of its own commit re-opens [has_work], so it keeps broadcasting
     (and thereby announcing its lagging commit) until fully repaired,
     instead of going quiet the moment its local decisions run out. *)
  if commit > st.max_inst_seen then st.max_inst_seen <- commit;
  if sender <> st.me then
    if commit < st.commit_index then begin
      queue_repair st ~lag_commit:commit;
      if st.repair_node <> sender || st.repair_hole <> commit then begin
        st.repair_node <- sender;
        st.repair_hole <- commit;
        st.repair_left <- st.cfg.repair_retries;
        st.repair_wait <- 0;
        st.repair_next <- st.retry_start
      end
    end
    else if sender = st.repair_node then clear_repair st

let on_change st ~counter ~origin =
  st.lamport <- max st.lamport counter;
  let stamp = (counter, origin) in
  if stamp_compare stamp st.last_change > 0 then begin
    st.last_change <- stamp;
    refill st;
    change_updateq st stamp
  end

let on_search st ~root ~hops ~sender =
  let current = Option.value ~default:max_int (Hashtbl.find_opt st.dist root) in
  if hops < current then begin
    Hashtbl.replace st.dist root hops;
    Hashtbl.replace st.parent root sender;
    refill st;
    st.tree_q <-
      List.filter (fun (r, _) -> r <> root) st.tree_q @ [ (root, hops + 1) ];
    if root = st.omega then local_change st
  end

let on_proposal st (message : proposer_msg) =
  let pno = pno_of message in
  st.max_tag <- max st.max_tag pno.tag;
  if pno.proposer = st.omega && pno.proposer <> st.me then begin
    let key = prop_key message in
    (* Flood each of the current leader's propositions once. *)
    if not (Hashtbl.mem st.seen_props key) then begin
      Hashtbl.replace st.seen_props key ();
      st.proposal_q <- st.proposal_q @ [ message ];
      refill st
    end;
    (* Acceptor: respond once per proposition, routed up the leader's
       tree. Pure learners (zero weight in both configurations) still
       update their acceptor state but send nothing — their votes cannot
       count. A recovering incarnation below its vote floor abstains
       entirely — and is deliberately NOT marked as having responded, so
       a later retransmission of the same proposition gets a real answer
       once the chosen prefix has caught up. *)
    if can_vote st && not (Hashtbl.mem st.responded key) then begin
      Hashtbl.replace st.responded key ();
      let round, positive, priors, committed = acceptor_respond st message in
      let count = weight1 st and count2 = weight2 st in
      if count + count2 > 0 then
        enqueue_response st ~target:pno.proposer ~pno ~round ~positive ~count
          ~count2 ~cfg:(cfg_tag st) ~priors ~committed
    end
  end

let on_response st (r : response) =
  if r.dest = st.me then
    if r.target = st.me then count_response st r
    else if r.target = st.omega then
      enqueue_response st ~target:r.target ~pno:r.r_pno ~round:r.round
        ~positive:r.positive ~count:r.count ~count2:r.count2 ~cfg:r.r_cfg
        ~priors:r.priors ~committed:r.committed

let on_snapshot st ~floor ~s_applied ~s_configs ~s_members ~s_joint ~s_epoch =
  install_snapshot st ~floor ~s_applied ~s_configs
    ~s_members:(list_of_mask s_members)
    ~s_joint:(if s_joint = 0 then None else Some (list_of_mask s_joint))
    ~s_epoch

(* ------------------------------------------------------------------ *)
(* Hardened ack tick                                                   *)
(* ------------------------------------------------------------------ *)

let hardened_tick st =
  if has_work st && st.patience_left > 0 then begin
    st.patience_left <- st.patience_left - 1;
    (if st.omega = st.me then ignore (Fd.beat st.fd)
     else
       match Fd.tick st.fd ~peer:st.omega with
       | Suspect ->
           st.fd_suspicions <- st.fd_suspicions + 1;
           (match st.cfg.on_suspect with
           | Some f -> f ~node:st.me ~suspect:st.omega
           | None -> ());
           recompute_omega st
       | Ok -> ());
    st.leader_q <- Some st.omega;
    st.idle_acks <- st.idle_acks + 1;
    if st.idle_acks >= st.next_refresh then begin
      st.idle_acks <- 0;
      st.next_refresh <- min (2 * st.next_refresh) refresh_cap;
      (match Hashtbl.find_opt st.dist st.omega with
      | Some d ->
          st.tree_q <-
            List.filter (fun (r, _) -> r <> st.omega) st.tree_q
            @ [ (st.omega, d + 1) ]
      | None -> ());
      (* Re-flood the oldest pending command: a loss window may have eaten
         the original Forward before the leader saw it. Patience-bounded
         like every other retransmission. *)
      match st.cmd_pool with
      | cmd :: _ when not (List.mem cmd st.forward_q) ->
          st.forward_q <- st.forward_q @ [ cmd ]
      | _ -> ()
    end;
    (* Straggler-repair retry: while a known hole stays put, re-answer it
       on an exponential backoff, [repair_retries] times. *)
    (if st.repair_hole >= 0 then
       if st.repair_hole >= st.commit_index then clear_repair st
       else if st.repair_left > 0 then begin
         st.repair_wait <- st.repair_wait + 1;
         if st.repair_wait >= st.repair_next then begin
           st.repair_wait <- 0;
           st.repair_next <- min (2 * st.repair_next) st.retry_cap;
           st.repair_left <- st.repair_left - 1;
           queue_repair st ~lag_commit:st.repair_hole;
           refill st
         end
       end);
    if st.omega = st.me && st.retries_left > 0 then begin
      st.progress_silence <- st.progress_silence + 1;
      if st.progress_silence >= st.next_retry then begin
        st.progress_silence <- 0;
        st.next_retry <- min (2 * st.next_retry) st.retry_cap;
        st.retries_left <- st.retries_left - 1;
        (* Escalate with a fresh lease: acceptors answer a new proposal
           number exactly once, so lost Prepares/Proposes/responses are
           all replaced without double counting. *)
        start_prepare st
      end
    end
  end

(* ------------------------------------------------------------------ *)
(* Handle: the harness-side view of every replica's log                *)
(* ------------------------------------------------------------------ *)

type handle = {
  registry : (int, state) Hashtbl.t;  (* node -> current incarnation state *)
  submitted : (int, unit) Hashtbl.t;
  mutable submitted_count : int;
  reconfig_cmds : (int, unit) Hashtbl.t;
  mutable reconfig_seq : int;
  h_propose_times : (int, int) Hashtbl.t;  (* the cfg's table, shared *)
}

let reconfig_cmd h ~members =
  let ms = List.sort_uniq Int.compare members in
  if ms = [] then invalid_arg "Smr.reconfig_cmd: members must be non-empty";
  List.iter
    (fun i ->
      if i < 0 || i > 29 then
        invalid_arg "Smr.reconfig_cmd: node ids must be in 0..29")
    ms;
  if h.reconfig_seq > 1023 then
    invalid_arg "Smr.reconfig_cmd: reconfiguration uid space exhausted";
  let uid = h.reconfig_seq in
  h.reconfig_seq <- h.reconfig_seq + 1;
  let base = mask_of_list ms lor (uid lsl uid_shift) in
  Hashtbl.replace h.reconfig_cmds (base lor joint_bit) ();
  Hashtbl.replace h.reconfig_cmds (base lor final_bit) ();
  base lor joint_bit

let submit h ~node ~cmd =
  if cmd <= noop then invalid_arg "Smr.submit: commands must be positive";
  if is_reconfig cmd then
    invalid_arg "Smr.submit: use reconfigure for membership changes";
  if not (Hashtbl.mem h.submitted cmd) then begin
    Hashtbl.replace h.submitted cmd ();
    h.submitted_count <- h.submitted_count + 1
  end;
  match Hashtbl.find_opt h.registry node with
  | Some st -> absorb_cmd st cmd
  | None -> invalid_arg "Smr.submit: unknown node (state not initialised)"

let reconfigure h ~node ~members =
  let cmd = reconfig_cmd h ~members in
  match Hashtbl.find_opt h.registry node with
  | Some st ->
      absorb_cmd st cmd;
      cmd
  | None -> invalid_arg "Smr.reconfigure: unknown node"

let injector h ~now:_ ~payload (_ctx : Amac.Algorithm.ctx) st =
  if payload <= noop then
    invalid_arg "Smr.injector: command payloads must be positive";
  if is_reconfig payload then begin
    if not (Hashtbl.mem h.reconfig_cmds payload) then
      invalid_arg "Smr.injector: unregistered reconfiguration command";
    absorb_cmd st payload
  end
  else begin
    if not (Hashtbl.mem h.submitted payload) then begin
      Hashtbl.replace h.submitted payload ();
      h.submitted_count <- h.submitted_count + 1
    end;
    absorb_cmd st payload
  end;
  finish st

let nodes h = List.sort Int.compare (Hashtbl.fold (fun k _ l -> k :: l) h.registry [])

let state_of h node =
  match Hashtbl.find_opt h.registry node with
  | Some st -> st
  | None -> invalid_arg "Smr: unknown node"

let log h node =
  let st = state_of h node in
  Hashtbl.fold
    (fun i r acc ->
      match r.chosen with Some v -> (i, v) :: acc | None -> acc)
    st.insts []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

let commit_index h node = (state_of h node).commit_index

let applied h node = List.rev (state_of h node).applied

let was_submitted h cmd = Hashtbl.mem h.submitted cmd

let was_reconfig h cmd = Hashtbl.mem h.reconfig_cmds cmd

let submitted_count h = h.submitted_count

let propose_time h ~cmd = Hashtbl.find_opt h.h_propose_times cmd

let leader h node = (state_of h node).omega

let members h node = (state_of h node).members

let joint h node = (state_of h node).joint

let epoch h node = (state_of h node).epoch

let configs h node =
  List.sort (fun (a, _) (b, _) -> Int.compare a b) (state_of h node).configs

type snapshot_info = {
  floor : int;
  s_applied : int list;  (* oldest first *)
  s_configs : (int * int) list;  (* oldest first *)
  s_members : int list;
  s_joint : int list option;
  s_epoch : int;
}

let snapshot h node =
  let st = state_of h node in
  if st.snap_floor > 0 then
    Some
      {
        floor = st.snap_floor;
        s_applied = List.rev st.snap_applied;
        s_configs = List.rev st.snap_configs;
        s_members = st.snap_members;
        s_joint = st.snap_joint;
        s_epoch = st.snap_epoch;
      }
  else None

let fd_stats h node = Fd.stats (state_of h node).fd

type lifecycle = {
  fd_suspicions : int;
  fd_clears : int;
  snapshots_taken : int;
  snapshots_installed : int;
  stale_cfg_votes : int;
  reconfigs_superseded : int;
}

let lifecycle h node =
  let st = state_of h node in
  {
    fd_suspicions = st.fd_suspicions;
    fd_clears = st.fd_clears;
    snapshots_taken = st.snapshots_taken;
    snapshots_installed = st.snapshots_installed;
    stale_cfg_votes = st.stale_cfg_votes;
    reconfigs_superseded = st.reconfigs_superseded;
  }

(* ------------------------------------------------------------------ *)
(* Algorithm wiring                                                    *)
(* ------------------------------------------------------------------ *)

let init h (cfg : config) (ctx : Amac.Algorithm.ctx) =
  let n =
    match ctx.n with
    | Some n -> n
    | None -> invalid_arg "Smr: requires knowledge of n"
  in
  let me = Amac.Node_id.unique_exn ctx.id in
  let members0 =
    match cfg.members with
    | Some ms -> List.sort_uniq Int.compare ms
    | None -> List.init n Fun.id
  in
  (* A voter starts as its own leader candidate; a learner (present in the
     engine but outside the initial configuration, awaiting a scale-up)
     starts from the largest initial voter instead — it must never lead. *)
  let omega0 =
    if List.mem me members0 then me
    else List.fold_left max (List.hd members0) members0
  in
  (* Amnesiac recovery: the registry still holds the crashed incarnation.
     Inherit its durable watermarks — promise, proposal tag, and a vote
     floor covering every instance ANY earlier incarnation may have voted
     in (max over the chain, since a crashed incarnation that never caught
     up past its own floor has a short log end of its own). Everything
     else — log, applied state, acceptor slots — is genuinely forgotten
     and re-learned from repair traffic or a snapshot transfer. *)
  let prior = Hashtbl.find_opt h.registry me in
  let floor0 =
    match prior with
    | Some old -> max old.vote_floor old.max_inst_seen
    | None -> 0
  in
  let fd =
    Fd.create
      ~patience:(Option.value cfg.patience ~default:((4 * n) + 16))
      ~backoff:cfg.backoff ~me ()
  in
  if omega0 <> me then Fd.watch fd ~peer:omega0;
  let st =
    {
      me;
      n;
      cfg;
      omega = omega0;
      leader_q = Some omega0;
      lamport = 0;
      last_change = (-1, -1);
      change_q = None;
      dist = Hashtbl.create 16;
      parent = Hashtbl.create 16;
      tree_q = [ (me, 1) ];
      insts = Hashtbl.create 64;
      commit_index = 0;
      max_inst_seen = 0;
      applied = [];
      applied_set = Hashtbl.create 64;
      members = members0;
      joint = None;
      epoch = 0;
      configs = [];
      pending_joints = [];
      register_reconfig =
        (fun jc ->
          Hashtbl.replace h.reconfig_cmds jc ();
          Hashtbl.replace h.reconfig_cmds (final_of_joint jc) ());
      snap_floor = 0;
      snap_applied = [];
      snap_configs = [];
      snap_members = members0;
      snap_joint = None;
      snap_epoch = 0;
      snap_q = false;
      known_cmds = Hashtbl.create 64;
      cmd_pool = [];
      chosen_cmds = Hashtbl.create 64;
      forward_q = [];
      max_tag = (match prior with Some old -> old.max_tag | None -> 0);
      lease = No_lease;
      attempts_left = 1;
      proposing = Hashtbl.create 8;
      proposal_q = [];
      seen_props = Hashtbl.create 64;
      promised = (match prior with Some old -> old.promised | None -> None);
      vote_floor = floor0;
      responded = Hashtbl.create 64;
      response_q = [];
      decide_q = [];
      sending = false;
      fd;
      idle_acks = 0;
      next_refresh = refresh_start;
      progress_silence = 0;
      next_retry = (2 * n) + 8;
      retry_start = (2 * n) + 8;
      retry_cap = 16 * ((2 * n) + 8);
      retries_left = max_retries;
      patience_left = patience_max;
      repair_node = -1;
      repair_hole = -1;
      repair_left = 0;
      repair_wait = 0;
      repair_next = (2 * n) + 8;
      fd_suspicions = 0;
      fd_clears = 0;
      snapshots_taken = 0;
      snapshots_installed = 0;
      stale_cfg_votes = 0;
      reconfigs_superseded = 0;
    }
  in
  Hashtbl.replace st.dist me 0;
  Hashtbl.replace st.parent me me;
  Hashtbl.replace h.registry me st;
  local_change st;
  (st, finish st)

let on_receive _ctx st (components : msg) =
  (* Leader updates first so later components in the same broadcast are
     judged against the freshest omega; snapshots and decisions before
     proposals, so an acceptor answers a Prepare with its freshest
     configuration and commit index (a reconfiguring leader packs the
     closing Decision and the re-Prepare into one broadcast). *)
  let rank = function
    | Leader _ -> 0
    | Change _ -> 1
    | Search _ -> 2
    | Forward _ -> 3
    | Snapshot _ -> 4
    | Decision _ -> 5
    | Proposal _ -> 6
    | Response _ -> 7
  in
  let ordered =
    List.sort (fun a b -> Int.compare (rank a) (rank b)) components
  in
  List.iter
    (fun component ->
      match component with
      | Leader { id; hb; commit; sender } -> on_leader st ~id ~hb ~commit ~sender
      | Change { counter; origin } -> on_change st ~counter ~origin
      | Search { root; hops; sender } -> on_search st ~root ~hops ~sender
      | Forward { cmd } -> absorb_cmd st cmd
      | Snapshot { floor; s_applied; s_configs; s_members; s_joint; s_epoch }
        ->
          on_snapshot st ~floor ~s_applied ~s_configs ~s_members ~s_joint
            ~s_epoch
      | Decision { inst; value } -> note_chosen st inst value
      | Proposal p -> on_proposal st p
      | Response r -> on_response st r)
    ordered;
  finish st

let on_ack _ctx st =
  st.sending <- false;
  hardened_tick st;
  finish st

let component_ids = function
  | Leader _ -> 1
  | Change _ -> 1
  | Search _ -> 2
  | Forward _ -> 0
  | Snapshot { s_applied; s_configs; _ } ->
      4 + List.length s_applied + List.length s_configs
  | Proposal _ -> 1
  | Response r -> 4 + List.length r.priors + (match r.committed with None -> 0 | Some _ -> 1)
  | Decision _ -> 0

let msg_ids components =
  List.fold_left (fun acc c -> acc + component_ids c) 0 components

let pp_round = function
  | Rprep -> "prep"
  | Racc inst -> Printf.sprintf "acc[%d]" inst

let pp_component = function
  | Leader { id; hb; commit; sender } ->
      Printf.sprintf "leader(%d,hb=%d,ci=%d@%d)" id hb commit sender
  | Change { counter; origin } -> Printf.sprintf "change(%d@%d)" counter origin
  | Search { root; hops; sender } ->
      Printf.sprintf "search(root=%d,h=%d,from=%d)" root hops sender
  | Forward { cmd } -> Printf.sprintf "fwd(%d)" cmd
  | Snapshot { floor; s_applied; s_members; s_joint; s_epoch; _ } ->
      Printf.sprintf "snap(floor=%d,app=[%s],m=%d,j=%d,e=%d)" floor
        (String.concat "," (List.map string_of_int s_applied))
        s_members s_joint s_epoch
  | Proposal (Prepare { pno; from_inst }) ->
      Printf.sprintf "prepare(%s,from=%d)" (pp_pno pno) from_inst
  | Proposal (Propose { pno; inst; value }) ->
      Printf.sprintf "propose(%s,[%d]=%d)" (pp_pno pno) inst value
  | Response r ->
      Printf.sprintf "resp{to=%d;tgt=%d;%s;%s;%s;x%d}" r.dest r.target
        (pp_pno r.r_pno) (pp_round r.round)
        (if r.positive then "yes" else "no")
        r.count
  | Decision { inst; value } -> Printf.sprintf "chosen([%d]=%d)" inst value

let pp_msg components = String.concat "+" (List.map pp_component components)

(* ------------------------------------------------------------------ *)
(* Fingerprint / clone (the PR 4 hook discipline). [hooks] on the bare *)
(* algorithm stays [None] — single-group fuzz baselines are pinned on   *)
(* the Marshal-free replay path — but wrappers that multiplex several   *)
(* instances (the sharded transport) compose these per group.          *)
(* ------------------------------------------------------------------ *)

module F = Amac.Fingerprint

let fp_pno (p : pno) acc = acc |> F.int p.tag |> F.int p.proposer

let fp_prior (p : prior) acc = acc |> fp_pno p.pno |> F.int p.value

let fp_pair f g (a, b) acc = acc |> f a |> g b

let fp_tbl fp_key fp_val tbl acc =
  (* Sorted bindings: hash tables with the same contents in different
     internal layouts fold equal, which only improves deduplication. *)
  let bindings = Hashtbl.fold (fun k v l -> (k, v) :: l) tbl [] in
  let sorted = List.sort (fun (a, _) (b, _) -> compare a b) bindings in
  F.list (fp_pair fp_key fp_val) sorted acc

let fp_unit () acc = F.int 0 acc

let fp_lease lease acc =
  match lease with
  | No_lease -> F.int 0 acc
  | Preparing { pno; from_inst; yes; no; yes2; no2; priors } ->
      acc |> F.int 1 |> fp_pno pno |> F.int from_inst |> F.int yes |> F.int no
      |> F.int yes2 |> F.int no2
      |> fp_tbl F.int fp_prior priors
  | Ready { pno; priors } ->
      acc |> F.int 2 |> fp_pno pno |> fp_tbl F.int fp_prior priors

let fp_proposer_msg m acc =
  match m with
  | Prepare { pno; from_inst } -> acc |> F.int 0 |> fp_pno pno |> F.int from_inst
  | Propose { pno; inst; value } ->
      acc |> F.int 1 |> fp_pno pno |> F.int inst |> F.int value

let fp_resp_round r acc =
  match r with Rprep -> F.int (-1) acc | Racc inst -> F.int inst acc

let fingerprint_state st acc =
  acc |> F.int st.me |> F.int st.n |> F.int st.omega
  |> F.option F.int st.leader_q
  |> F.int st.lamport
  |> fp_pair F.int F.int st.last_change
  |> F.option (fp_pair F.int F.int) st.change_q
  |> fp_tbl F.int F.int st.dist
  |> fp_tbl F.int F.int st.parent
  |> F.list (fp_pair F.int F.int) st.tree_q
  |> fp_tbl F.int
       (fun (r : inst) acc ->
         acc |> F.option fp_prior r.accepted |> F.option F.int r.chosen)
       st.insts
  |> F.int st.commit_index |> F.int st.max_inst_seen
  |> F.list F.int st.applied
  |> F.list F.int st.members
  |> F.option (F.list F.int) st.joint
  |> F.int st.epoch
  |> F.list (fp_pair F.int F.int) st.configs
  |> F.list F.int st.pending_joints
  |> F.int st.snap_floor
  |> F.list F.int st.snap_applied
  |> F.list (fp_pair F.int F.int) st.snap_configs
  |> F.list F.int st.snap_members
  |> F.option (F.list F.int) st.snap_joint
  |> F.int st.snap_epoch |> F.bool st.snap_q
  |> fp_tbl F.int fp_unit st.known_cmds
  |> F.list F.int st.cmd_pool
  |> fp_tbl F.int fp_unit st.chosen_cmds
  |> F.list F.int st.forward_q
  |> F.int st.max_tag |> fp_lease st.lease |> F.int st.attempts_left
  |> fp_tbl F.int
       (fun (f : flight) acc ->
         acc |> F.int f.f_value |> F.int f.f_yes |> F.int f.f_no
         |> F.int f.f_yes2 |> F.int f.f_no2)
       st.proposing
  |> F.list fp_proposer_msg st.proposal_q
  |> fp_tbl (fun (a, b, c) acc -> acc |> F.int a |> F.int b |> F.int c) fp_unit
       st.seen_props
  |> F.option fp_pno st.promised
  |> F.int st.vote_floor
  |> fp_tbl (fun (a, b, c) acc -> acc |> F.int a |> F.int b |> F.int c) fp_unit
       st.responded
  |> F.list
       (fun (q : pending_response) acc ->
         acc |> F.int q.q_target |> fp_pno q.q_pno |> fp_resp_round q.q_round
         |> F.bool q.q_positive |> F.int q.q_cfg |> F.int q.q_count
         |> F.int q.q_count2
         |> F.list (fp_pair F.int fp_prior) q.q_priors
         |> F.option fp_pno q.q_committed)
       st.response_q
  |> F.list (fp_pair F.int F.int) st.decide_q
  |> F.bool st.sending |> Fd.fingerprint st.fd |> F.int st.idle_acks
  |> F.int st.next_refresh |> F.int st.progress_silence |> F.int st.next_retry
  |> F.int st.retries_left |> F.int st.patience_left |> F.int st.repair_node
  |> F.int st.repair_hole |> F.int st.repair_left |> F.int st.repair_wait
  |> F.int st.repair_next
(* Lifecycle counters are observability, not protocol state: states that
   differ only there are equivalent, so they are deliberately not folded. *)

let fp_component c acc =
  match c with
  | Leader { id; hb; commit; sender } ->
      acc |> F.int 0 |> F.int id |> F.int hb |> F.int commit |> F.int sender
  | Change { counter; origin } -> acc |> F.int 1 |> F.int counter |> F.int origin
  | Search { root; hops; sender } ->
      acc |> F.int 2 |> F.int root |> F.int hops |> F.int sender
  | Forward { cmd } -> acc |> F.int 3 |> F.int cmd
  | Snapshot { floor; s_applied; s_configs; s_members; s_joint; s_epoch } ->
      acc |> F.int 4 |> F.int floor
      |> F.list F.int s_applied
      |> F.list (fp_pair F.int F.int) s_configs
      |> F.int s_members |> F.int s_joint |> F.int s_epoch
  | Proposal p -> acc |> F.int 5 |> fp_proposer_msg p
  | Response r ->
      acc |> F.int 6 |> F.int r.dest |> F.int r.target |> fp_pno r.r_pno
      |> fp_resp_round r.round |> F.bool r.positive |> F.int r.count
      |> F.int r.count2 |> F.int r.r_cfg
      |> F.list (fp_pair F.int fp_prior) r.priors
      |> F.option fp_pno r.committed
  | Decision { inst; value } -> acc |> F.int 7 |> F.int inst |> F.int value

let fingerprint_msg (components : msg) acc = F.list fp_component components acc

let clone_state st =
  let clone_insts tbl =
    let fresh = Hashtbl.create (Hashtbl.length tbl) in
    Hashtbl.iter
      (fun k (r : inst) ->
        Hashtbl.replace fresh k { accepted = r.accepted; chosen = r.chosen })
      tbl;
    fresh
  in
  let clone_flights tbl =
    let fresh = Hashtbl.create (max 8 (Hashtbl.length tbl)) in
    Hashtbl.iter
      (fun k (f : flight) ->
        Hashtbl.replace fresh k
          {
            f_value = f.f_value;
            f_yes = f.f_yes;
            f_no = f.f_no;
            f_yes2 = f.f_yes2;
            f_no2 = f.f_no2;
          })
      tbl;
    fresh
  in
  let clone_lease = function
    | No_lease -> No_lease
    | Preparing p -> Preparing { p with priors = Hashtbl.copy p.priors }
    | Ready r -> Ready { r with priors = Hashtbl.copy r.priors }
  in
  {
    st with
    dist = Hashtbl.copy st.dist;
    parent = Hashtbl.copy st.parent;
    insts = clone_insts st.insts;
    applied_set = Hashtbl.copy st.applied_set;
    known_cmds = Hashtbl.copy st.known_cmds;
    chosen_cmds = Hashtbl.copy st.chosen_cmds;
    lease = clone_lease st.lease;
    proposing = clone_flights st.proposing;
    seen_props = Hashtbl.copy st.seen_props;
    responded = Hashtbl.copy st.responded;
    response_q =
      List.map
        (fun (q : pending_response) ->
          {
            q_target = q.q_target;
            q_pno = q.q_pno;
            q_round = q.q_round;
            q_positive = q.q_positive;
            q_cfg = q.q_cfg;
            q_count = q.q_count;
            q_count2 = q.q_count2;
            q_priors = q.q_priors;
            q_committed = q.q_committed;
          })
        st.response_q;
    fd = Fd.clone st.fd;
  }

let make ?(window = 4) ?on_apply ?on_suspect ?members ?compact_every ?patience
    ?(backoff = 1) ?(repair_retries = 8) ?clock () =
  if window < 1 then invalid_arg "Smr.make: window must be >= 1";
  (match compact_every with
  | Some k when k < 1 -> invalid_arg "Smr.make: compact_every must be >= 1"
  | Some _ | None -> ());
  (match patience with
  | Some p when p < 1 -> invalid_arg "Smr.make: patience must be >= 1"
  | Some _ | None -> ());
  if backoff < 1 then invalid_arg "Smr.make: backoff must be >= 1";
  if repair_retries < 0 then
    invalid_arg "Smr.make: repair_retries must be >= 0";
  (match members with
  | Some [] -> invalid_arg "Smr.make: members must be non-empty"
  | Some ms ->
      List.iter
        (fun i ->
          if i < 0 || i > 29 then
            invalid_arg "Smr.make: member ids must be in 0..29")
        ms
  | None -> ());
  let propose_times = Hashtbl.create 64 in
  let cfg =
    {
      window;
      on_apply;
      on_suspect;
      patience;
      backoff;
      compact_every;
      repair_retries;
      members;
      clock;
      propose_times;
    }
  in
  let h =
    {
      registry = Hashtbl.create 8;
      submitted = Hashtbl.create 64;
      submitted_count = 0;
      reconfig_cmds = Hashtbl.create 8;
      reconfig_seq = 0;
      h_propose_times = propose_times;
    }
  in
  let algorithm =
    {
      Amac.Algorithm.name = Printf.sprintf "smr-wpaxos(w=%d)" window;
      init = init h cfg;
      on_receive;
      on_ack;
      msg_ids;
      hooks = None;
    }
  in
  (algorithm, h)

