open Consensus.Paxos_types

(* Multi-decree state-machine replication over the wPAXOS machinery: the
   shared services (leader election, change, tree building, broadcast
   packing) and the hardened retransmission layer are carried over from
   [Consensus.Wpaxos] unchanged in spirit; the single proposer/acceptor
   pair is replaced by the standard multi-Paxos construction. One Prepare
   establishes a leader lease covering every instance from the leader's
   commit index up; while the lease holds, the leader streams per-instance
   Propose messages under the same proposal number, up to [window]
   instances beyond the commit index (instance pipelining). A value is
   chosen at an instance once a majority accepts it; the commit index is
   the length of the chosen prefix, and commands are applied to the state
   machine exactly once, in log order, skipping noops. *)

let noop = 0

type proposer_msg =
  | Prepare of { pno : pno; from_inst : int }
  | Propose of { pno : pno; inst : int; value : int }

let pno_of = function Prepare { pno; _ } -> pno | Propose { pno; _ } -> pno

(* Key identifying one proposition for respond-once / forward-once dedup:
   (tag, proposer, -1) for the lease Prepare, (tag, proposer, inst) for a
   per-instance Propose. *)
let prop_key = function
  | Prepare { pno; _ } -> (pno.tag, pno.proposer, -1)
  | Propose { pno; inst; _ } -> (pno.tag, pno.proposer, inst)

type resp_round = Rprep | Racc of int

(* A (possibly tree-aggregated) acceptor response. Prepare responses carry
   the responders' accepted priors per instance — the constraint set the
   new lease holder must respect; Propose responses just count. *)
type response = {
  dest : int;
  target : int;
  r_pno : pno;
  round : resp_round;
  positive : bool;
  count : int;
  priors : (int * prior) list;
  committed : pno option;
}

type component =
  | Leader of { id : int; hb : int; commit : int }
      (* heartbeat; [commit] is stamped by the relaying sender at send time,
         so receivers can repair a straggling neighbor (see [on_leader]) *)
  | Change of { counter : int; origin : int }
  | Search of { root : int; hops : int; sender : int }
  | Forward of { cmd : int }  (* client command flooding *)
  | Proposal of proposer_msg
  | Response of response
  | Decision of { inst : int; value : int }

type msg = component list

(* Proposer lease: one Prepare covers all instances >= [from_inst]; the
   merged priors map constrains per-instance value choice once Ready. *)
type lease =
  | No_lease
  | Preparing of {
      pno : pno;
      from_inst : int;
      mutable yes : int;
      mutable no : int;
      priors : (int, prior) Hashtbl.t;
    }
  | Ready of { pno : pno; priors : (int, prior) Hashtbl.t }

type flight = { f_value : int; mutable f_yes : int; mutable f_no : int }

type inst = { mutable accepted : prior option; mutable chosen : int option }

type pending_response = {
  q_target : int;
  q_pno : pno;
  q_round : resp_round;
  q_positive : bool;
  mutable q_count : int;
  mutable q_priors : (int * prior) list;
  mutable q_committed : pno option;
}

type config = {
  window : int;
  on_apply : (node:int -> index:int -> cmd:int -> unit) option;
}

type state = {
  me : int;
  n : int;
  cfg : config;
  (* leader election service *)
  mutable omega : int;
  mutable leader_q : int option;
  (* change service *)
  mutable lamport : int;
  mutable last_change : int * int;
  mutable change_q : (int * int) option;
  (* tree building service *)
  dist : (int, int) Hashtbl.t;
  parent : (int, int) Hashtbl.t;
  mutable tree_q : (int * int) list;
  (* the log *)
  insts : (int, inst) Hashtbl.t;
  mutable commit_index : int;  (* length of the chosen prefix *)
  mutable max_inst_seen : int;  (* 1 + highest instance heard of *)
  mutable applied : int list;  (* applied commands, newest first *)
  applied_set : (int, unit) Hashtbl.t;
  (* client commands *)
  known_cmds : (int, unit) Hashtbl.t;
  mutable cmd_pool : int list;  (* submitted, not yet known chosen; FIFO *)
  chosen_cmds : (int, unit) Hashtbl.t;
  mutable forward_q : int list;
  (* proposer *)
  mutable max_tag : int;
  mutable lease : lease;
  mutable attempts_left : int;
  proposing : (int, flight) Hashtbl.t;  (* instance -> in-flight proposal *)
  mutable proposal_q : proposer_msg list;
  seen_props : (int * int * int, unit) Hashtbl.t;  (* forward-once *)
  (* acceptor *)
  mutable promised : pno option;
  responded : (int * int * int, unit) Hashtbl.t;  (* respond-once *)
  mutable response_q : pending_response list;
  (* decision flooding *)
  mutable decide_q : (int * int) list;  (* (inst, value), FIFO *)
  (* transport *)
  mutable sending : bool;
  (* hardening, as in Wpaxos (always on: a replicated log only makes sense
     with retransmission; the paper's one-shot no-retransmit variant is a
     single-instance concern) *)
  mutable my_hb : int;
  hb_seen : (int, int) Hashtbl.t;
  suspect_hb : (int, int) Hashtbl.t;
  mutable hb_silence : int;
  silence_limit : int;
  mutable idle_acks : int;
  mutable next_refresh : int;
  mutable progress_silence : int;
  mutable next_retry : int;
  retry_start : int;
  retry_cap : int;
  mutable retries_left : int;
  mutable patience_left : int;
}

let refresh_start = 4

let refresh_cap = 64

let patience_max = 512

let max_retries = 8

let majority st = (st.n / 2) + 1

let fail_threshold st = st.n - majority st + 1

let stamp_compare (ca, oa) (cb, ob) =
  match Int.compare ca cb with 0 -> Int.compare oa ob | c -> c

let hb_of st id = Option.value ~default:0 (Hashtbl.find_opt st.hb_seen id)

let suspected st id = Hashtbl.mem st.suspect_hb id

let refill st = st.patience_left <- patience_max

let get_inst st i =
  match Hashtbl.find_opt st.insts i with
  | Some r -> r
  | None ->
      let r = { accepted = None; chosen = None } in
      Hashtbl.replace st.insts i r;
      r

let note_inst st i =
  if i + 1 > st.max_inst_seen then st.max_inst_seen <- i + 1

(* A node is complete when its chosen prefix covers everything it has heard
   of and no command it holds is still waiting for a slot. Complete nodes
   stop heartbeating (the network quiesces); incomplete ones keep the
   ack-clock ticking, patience-bounded. *)
let has_work st =
  st.commit_index < st.max_inst_seen
  || st.cmd_pool <> []
  || (st.omega = st.me
     && (Hashtbl.length st.proposing > 0
        || match st.lease with Preparing _ -> true | _ -> false))

(* ------------------------------------------------------------------ *)
(* Broadcast service: pack one component per non-empty queue.          *)
(* ------------------------------------------------------------------ *)

let dequeue_tree st =
  match st.tree_q with
  | [] -> None
  | entries ->
      let chosen =
        match List.find_opt (fun (root, _) -> root = st.omega) entries with
        | Some entry -> entry
        | None -> List.hd entries
      in
      st.tree_q <- List.filter (fun e -> e <> chosen) st.tree_q;
      let root, hops = chosen in
      Some (Search { root; hops; sender = st.me })

let dequeue_response st =
  let rec pick acc = function
    | [] -> None
    | entry :: rest -> (
        match Hashtbl.find_opt st.parent entry.q_target with
        | Some parent_id ->
            st.response_q <- List.rev_append acc rest;
            Some
              (Response
                 {
                   dest = parent_id;
                   target = entry.q_target;
                   r_pno = entry.q_pno;
                   round = entry.q_round;
                   positive = entry.q_positive;
                   count = entry.q_count;
                   priors = entry.q_priors;
                   committed = entry.q_committed;
                 })
        | None -> pick (entry :: acc) rest)
  in
  pick [] st.response_q

let compose st =
  let components = ref [] in
  (match st.decide_q with
  | (inst, value) :: rest ->
      st.decide_q <- rest;
      components := Decision { inst; value } :: !components
  | [] -> ());
  (match dequeue_response st with
  | Some c -> components := c :: !components
  | None -> ());
  (match st.proposal_q with
  | p :: rest ->
      st.proposal_q <- rest;
      components := Proposal p :: !components
  | [] -> ());
  (match st.forward_q with
  | cmd :: rest ->
      st.forward_q <- rest;
      components := Forward { cmd } :: !components
  | [] -> ());
  (match dequeue_tree st with
  | Some c -> components := c :: !components
  | None -> ());
  (match st.change_q with
  | Some (counter, origin) ->
      st.change_q <- None;
      components := Change { counter; origin } :: !components
  | None -> ());
  (match st.leader_q with
  | Some id ->
      st.leader_q <- None;
      (* Heartbeat and commit index are read at send time: relays carry
         the freshest count they know, and [commit] always describes the
         sender itself (the straggler-repair signal). *)
      components :=
        Leader { id; hb = hb_of st id; commit = st.commit_index }
        :: !components
  | None -> ());
  !components

let maybe_send st =
  if st.sending then []
  else
    match compose st with
    | [] -> []
    | components ->
        st.sending <- true;
        [ Amac.Algorithm.Broadcast components ]

let finish st = maybe_send st

(* ------------------------------------------------------------------ *)
(* The log: choosing, committing, applying                             *)
(* ------------------------------------------------------------------ *)

let prune_response_q st =
  st.response_q <-
    List.filter (fun entry -> entry.q_target = st.omega) st.response_q;
  let largest =
    List.fold_left
      (fun acc entry ->
        match acc with
        | None -> Some entry.q_pno
        | Some best -> if pno_lt best entry.q_pno then Some entry.q_pno else acc)
      None st.response_q
  in
  match largest with
  | None -> ()
  | Some best ->
      st.response_q <-
        List.filter (fun entry -> compare_pno entry.q_pno best = 0) st.response_q

let merge_priors existing extra =
  List.fold_left
    (fun acc (i, prior) ->
      let rec upd = function
        | [] -> [ (i, prior) ]
        | (j, p) :: rest when j = i -> (
            match max_prior (Some p) (Some prior) with
            | Some best -> (j, best) :: rest
            | None -> (j, p) :: rest)
        | entry :: rest -> entry :: upd rest
      in
      upd acc)
    existing extra

let enqueue_response st ~target ~pno ~round ~positive ~count ~priors ~committed
    =
  let entry =
    {
      q_target = target;
      q_pno = pno;
      q_round = round;
      q_positive = positive;
      q_count = count;
      q_priors = priors;
      q_committed = committed;
    }
  in
  let mergeable existing =
    existing.q_target = entry.q_target
    && compare_pno existing.q_pno entry.q_pno = 0
    && existing.q_round = entry.q_round
    && existing.q_positive = entry.q_positive
  in
  (match List.find_opt mergeable st.response_q with
  | Some existing ->
      existing.q_count <- existing.q_count + entry.q_count;
      existing.q_priors <- merge_priors existing.q_priors entry.q_priors;
      existing.q_committed <-
        max_committed existing.q_committed entry.q_committed
  | None -> st.response_q <- st.response_q @ [ entry ]);
  prune_response_q st

(* Apply the chosen prefix: every newly covered instance with a real
   command (not noop) applies exactly once — re-chosen duplicates (a
   command salvaged by a new lease after the old one already drove it to
   a decision) are skipped via [applied_set]. *)
let advance_commit st =
  let continue = ref true in
  while !continue do
    match Hashtbl.find_opt st.insts st.commit_index with
    | Some { chosen = Some value; _ } ->
        let index = st.commit_index in
        st.commit_index <- st.commit_index + 1;
        if value <> noop && not (Hashtbl.mem st.applied_set value) then begin
          Hashtbl.replace st.applied_set value ();
          st.applied <- value :: st.applied;
          match st.cfg.on_apply with
          | Some f -> f ~node:st.me ~index ~cmd:value
          | None -> ()
        end
    | Some { chosen = None; _ } | None -> continue := false
  done

let rec note_chosen st i value =
  let r = get_inst st i in
  match r.chosen with
  | Some _ -> ()  (* first choice wins locally; cross-node agreement is the
                     checker's business *)
  | None ->
      r.chosen <- Some value;
      note_inst st i;
      if value <> noop then Hashtbl.replace st.chosen_cmds value ();
      st.cmd_pool <- List.filter (fun c -> c <> value) st.cmd_pool;
      (* Flood the decision exactly once per node. *)
      st.decide_q <- st.decide_q @ [ (i, value) ];
      refill st;
      advance_commit st;
      if st.omega = st.me then fill_window st

(* ------------------------------------------------------------------ *)
(* Proposer: lease acquisition and window filling                      *)
(* ------------------------------------------------------------------ *)

and start_prepare st =
  if st.omega = st.me then begin
    st.max_tag <- st.max_tag + 1;
    let pno = { tag = st.max_tag; proposer = st.me } in
    let from_inst = st.commit_index in
    Hashtbl.reset st.proposing;
    st.lease <- Preparing { pno; from_inst; yes = 0; no = 0; priors = Hashtbl.create 8 };
    let message = Prepare { pno; from_inst } in
    st.proposal_q <- st.proposal_q @ [ message ];
    Hashtbl.replace st.seen_props (prop_key message) ();
    self_respond st message
  end

(* The next command this leader should put at the log end: the first pooled
   command not already chosen and not in flight at another instance. *)
and pick_cmd st =
  let inflight value =
    Hashtbl.fold
      (fun _ f acc -> acc || f.f_value = value)
      st.proposing false
  in
  List.find_opt
    (fun c -> (not (Hashtbl.mem st.chosen_cmds c)) && not (inflight c))
    st.cmd_pool

and choose_value st priors i =
  match Hashtbl.find_opt priors i with
  | Some prior -> Some prior.value  (* bound by an earlier proposal *)
  | None ->
      if i < st.max_inst_seen then Some noop  (* fill a hole below the end *)
      else pick_cmd st

and fill_window st =
  match st.lease with
  | Ready { pno; priors } when st.omega = st.me ->
      let upper = st.commit_index + st.cfg.window in
      let i = ref st.commit_index in
      let stalled = ref false in
      while (not !stalled) && !i < upper do
        let inst = !i in
        let r = get_inst st inst in
        (if r.chosen = None && not (Hashtbl.mem st.proposing inst) then
           match choose_value st priors inst with
           | Some value ->
               Hashtbl.replace st.proposing inst
                 { f_value = value; f_yes = 0; f_no = 0 };
               note_inst st inst;
               let message = Propose { pno; inst; value } in
               st.proposal_q <- st.proposal_q @ [ message ];
               Hashtbl.replace st.seen_props (prop_key message) ();
               self_respond st message
           | None -> stalled := true);
        incr i
      done
  | Ready _ | Preparing _ | No_lease -> ()

and lease_failed st =
  st.lease <- No_lease;
  Hashtbl.reset st.proposing;
  if st.omega = st.me then begin
    if st.attempts_left > 0 then begin
      st.attempts_left <- st.attempts_left - 1;
      start_prepare st
    end
    else local_change st
  end

and change_updateq st stamp =
  st.change_q <- Some stamp;
  if st.omega = st.me then begin
    st.attempts_left <- 1;
    st.retries_left <- max_retries;
    st.next_retry <- st.retry_start;
    match st.lease with
    | No_lease -> start_prepare st
    | Ready _ -> fill_window st
    | Preparing _ -> ()
  end

and local_change st =
  st.lamport <- st.lamport + 1;
  let stamp = (st.lamport, st.me) in
  st.last_change <- stamp;
  change_updateq st stamp

and count_response st (r : response) =
  match (st.lease, r.round) with
  | Preparing p, Rprep when compare_pno p.pno r.r_pno = 0 ->
      st.progress_silence <- 0;
      refill st;
      if r.positive then begin
        p.yes <- p.yes + r.count;
        List.iter
          (fun (i, prior) ->
            note_inst st i;
            let best =
              max_prior (Hashtbl.find_opt p.priors i) (Some prior)
            in
            match best with
            | Some best -> Hashtbl.replace p.priors i best
            | None -> ())
          r.priors;
        if p.yes >= majority st then begin
          st.lease <- Ready { pno = p.pno; priors = p.priors };
          fill_window st
        end
      end
      else begin
        p.no <- p.no + r.count;
        (match r.committed with
        | Some committed -> st.max_tag <- max st.max_tag committed.tag
        | None -> ());
        if p.no >= fail_threshold st then lease_failed st
      end
  | Ready rd, Racc inst when compare_pno rd.pno r.r_pno = 0 -> (
      match Hashtbl.find_opt st.proposing inst with
      | Some f ->
          st.progress_silence <- 0;
          refill st;
          if r.positive then begin
            f.f_yes <- f.f_yes + r.count;
            if f.f_yes >= majority st then begin
              Hashtbl.remove st.proposing inst;
              note_chosen st inst f.f_value
            end
          end
          else begin
            f.f_no <- f.f_no + r.count;
            if f.f_no >= fail_threshold st then lease_failed st
          end
      | None -> ())
  | (No_lease | Preparing _ | Ready _), _ -> ()

(* Acceptor: a single lease-wide promise (multi-Paxos), per-instance
   accepted values. Prepare responses return every accepted prior at or
   above the requested instance — the new leader's constraint set. *)
and acceptor_respond st (message : proposer_msg) =
  let pno = pno_of message in
  let ok = match st.promised with None -> true | Some p -> pno_le p pno in
  match message with
  | Prepare { from_inst; _ } ->
      if ok then begin
        st.promised <- Some pno;
        let priors =
          Hashtbl.fold
            (fun i r acc ->
              match r.accepted with
              | Some prior when i >= from_inst -> (i, prior) :: acc
              | Some _ | None -> acc)
            st.insts []
        in
        let priors = List.sort (fun (a, _) (b, _) -> Int.compare a b) priors in
        (Rprep, true, priors, None)
      end
      else (Rprep, false, [], st.promised)
  | Propose { inst; value; _ } ->
      note_inst st inst;
      if ok then begin
        st.promised <- Some pno;
        (get_inst st inst).accepted <- Some { pno; value };
        (Racc inst, true, [], None)
      end
      else (Racc inst, false, [], st.promised)

and self_respond st (message : proposer_msg) =
  let pno = pno_of message in
  Hashtbl.replace st.responded (prop_key message) ();
  let round, positive, priors, committed = acceptor_respond st message in
  count_response st
    {
      dest = st.me;
      target = st.me;
      r_pno = pno;
      round;
      positive;
      count = 1;
      priors;
      committed;
    }

(* ------------------------------------------------------------------ *)
(* Client commands                                                     *)
(* ------------------------------------------------------------------ *)

(* First sight of a command: remember it, queue it for the leader, and
   re-flood it once so it reaches the leader in multihop networks. *)
and absorb_cmd st cmd =
  if cmd <> noop && not (Hashtbl.mem st.known_cmds cmd) then begin
    Hashtbl.replace st.known_cmds cmd ();
    if not (Hashtbl.mem st.chosen_cmds cmd) then begin
      st.cmd_pool <- st.cmd_pool @ [ cmd ];
      refill st;
      if st.omega = st.me then
        match st.lease with
        | Ready _ -> fill_window st
        | No_lease -> start_prepare st
        | Preparing _ -> ()
    end;
    st.forward_q <- st.forward_q @ [ cmd ]
  end

(* ------------------------------------------------------------------ *)
(* Component handlers                                                  *)
(* ------------------------------------------------------------------ *)

let set_omega st id =
  st.omega <- id;
  st.leader_q <- Some id;
  st.lease <- No_lease;
  Hashtbl.reset st.proposing;
  st.proposal_q <-
    List.filter (fun p -> (pno_of p).proposer = st.omega) st.proposal_q;
  prune_response_q st;
  st.hb_silence <- 0;
  refill st;
  local_change st

let candidate_omega st =
  Hashtbl.fold
    (fun id _ best -> if (not (suspected st id)) && id > best then id else best)
    st.hb_seen st.me

let recompute_omega st =
  let next = candidate_omega st in
  if next <> st.omega then set_omega st next

let on_leader st ~id ~hb ~commit =
  (if id <> st.me then
     let seen = Option.value ~default:(-1) (Hashtbl.find_opt st.hb_seen id) in
     if hb > seen then begin
       Hashtbl.replace st.hb_seen id hb;
       if id = st.omega then begin
         st.hb_silence <- 0;
         st.leader_q <- Some id
       end;
       match Hashtbl.find_opt st.suspect_hb id with
       | Some at when hb > at ->
           Hashtbl.remove st.suspect_hb id;
           refill st;
           recompute_omega st
       | Some _ | None -> ()
     end);
  if id > st.omega && not (suspected st id) then set_omega st id;
  (* Straggler repair: the sending neighbor's commit index lags ours, so
     its first hole is an instance we have chosen — answer with that one
     decision. One instance per heartbeat heard keeps it bounded; the
     straggler's commit advances monotonically, so repair completes. *)
  if commit < st.commit_index then
    match Hashtbl.find_opt st.insts commit with
    | Some { chosen = Some value; _ } ->
        if not (List.mem (commit, value) st.decide_q) then
          st.decide_q <- st.decide_q @ [ (commit, value) ]
    | Some { chosen = None; _ } | None -> ()

let on_change st ~counter ~origin =
  st.lamport <- max st.lamport counter;
  let stamp = (counter, origin) in
  if stamp_compare stamp st.last_change > 0 then begin
    st.last_change <- stamp;
    refill st;
    change_updateq st stamp
  end

let on_search st ~root ~hops ~sender =
  let current = Option.value ~default:max_int (Hashtbl.find_opt st.dist root) in
  if hops < current then begin
    Hashtbl.replace st.dist root hops;
    Hashtbl.replace st.parent root sender;
    refill st;
    st.tree_q <-
      List.filter (fun (r, _) -> r <> root) st.tree_q @ [ (root, hops + 1) ];
    if root = st.omega then local_change st
  end

let on_proposal st (message : proposer_msg) =
  let pno = pno_of message in
  st.max_tag <- max st.max_tag pno.tag;
  if pno.proposer = st.omega && pno.proposer <> st.me then begin
    let key = prop_key message in
    (* Flood each of the current leader's propositions once. *)
    if not (Hashtbl.mem st.seen_props key) then begin
      Hashtbl.replace st.seen_props key ();
      st.proposal_q <- st.proposal_q @ [ message ];
      refill st
    end;
    (* Acceptor: respond once per proposition, routed up the leader's
       tree. *)
    if not (Hashtbl.mem st.responded key) then begin
      Hashtbl.replace st.responded key ();
      let round, positive, priors, committed = acceptor_respond st message in
      enqueue_response st ~target:pno.proposer ~pno ~round ~positive ~count:1
        ~priors ~committed
    end
  end

let on_response st (r : response) =
  if r.dest = st.me then
    if r.target = st.me then count_response st r
    else if r.target = st.omega then
      enqueue_response st ~target:r.target ~pno:r.r_pno ~round:r.round
        ~positive:r.positive ~count:r.count ~priors:r.priors
        ~committed:r.committed

(* ------------------------------------------------------------------ *)
(* Hardened ack tick                                                   *)
(* ------------------------------------------------------------------ *)

let hardened_tick st =
  if has_work st && st.patience_left > 0 then begin
    st.patience_left <- st.patience_left - 1;
    if st.omega = st.me then begin
      st.my_hb <- st.my_hb + 1;
      Hashtbl.replace st.hb_seen st.me st.my_hb
    end
    else begin
      st.hb_silence <- st.hb_silence + 1;
      if st.hb_silence > st.silence_limit && not (suspected st st.omega)
      then begin
        Hashtbl.replace st.suspect_hb st.omega (hb_of st st.omega);
        recompute_omega st
      end
    end;
    st.leader_q <- Some st.omega;
    st.idle_acks <- st.idle_acks + 1;
    if st.idle_acks >= st.next_refresh then begin
      st.idle_acks <- 0;
      st.next_refresh <- min (2 * st.next_refresh) refresh_cap;
      (match Hashtbl.find_opt st.dist st.omega with
      | Some d ->
          st.tree_q <-
            List.filter (fun (r, _) -> r <> st.omega) st.tree_q
            @ [ (st.omega, d + 1) ]
      | None -> ());
      (* Re-flood the oldest pending command: a loss window may have eaten
         the original Forward before the leader saw it. Patience-bounded
         like every other retransmission. *)
      match st.cmd_pool with
      | cmd :: _ when not (List.mem cmd st.forward_q) ->
          st.forward_q <- st.forward_q @ [ cmd ]
      | _ -> ()
    end;
    if st.omega = st.me && st.retries_left > 0 then begin
      st.progress_silence <- st.progress_silence + 1;
      if st.progress_silence >= st.next_retry then begin
        st.progress_silence <- 0;
        st.next_retry <- min (2 * st.next_retry) st.retry_cap;
        st.retries_left <- st.retries_left - 1;
        (* Escalate with a fresh lease: acceptors answer a new proposal
           number exactly once, so lost Prepares/Proposes/responses are
           all replaced without double counting. *)
        start_prepare st
      end
    end
  end

(* ------------------------------------------------------------------ *)
(* Handle: the harness-side view of every replica's log                *)
(* ------------------------------------------------------------------ *)

type handle = {
  registry : (int, state) Hashtbl.t;  (* node -> current incarnation state *)
  submitted : (int, unit) Hashtbl.t;
  mutable submitted_count : int;
}

let submit h ~node ~cmd =
  if cmd <= noop then invalid_arg "Smr.submit: commands must be positive";
  if not (Hashtbl.mem h.submitted cmd) then begin
    Hashtbl.replace h.submitted cmd ();
    h.submitted_count <- h.submitted_count + 1
  end;
  match Hashtbl.find_opt h.registry node with
  | Some st -> absorb_cmd st cmd
  | None -> invalid_arg "Smr.submit: unknown node (state not initialised)"

let injector h ~now:_ ~payload (_ctx : Amac.Algorithm.ctx) st =
  if payload <= noop then
    invalid_arg "Smr.injector: command payloads must be positive";
  if not (Hashtbl.mem h.submitted payload) then begin
    Hashtbl.replace h.submitted payload ();
    h.submitted_count <- h.submitted_count + 1
  end;
  absorb_cmd st payload;
  finish st

let nodes h = List.sort Int.compare (Hashtbl.fold (fun k _ l -> k :: l) h.registry [])

let state_of h node =
  match Hashtbl.find_opt h.registry node with
  | Some st -> st
  | None -> invalid_arg "Smr: unknown node"

let log h node =
  let st = state_of h node in
  Hashtbl.fold
    (fun i r acc ->
      match r.chosen with Some v -> (i, v) :: acc | None -> acc)
    st.insts []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

let commit_index h node = (state_of h node).commit_index

let applied h node = List.rev (state_of h node).applied

let was_submitted h cmd = Hashtbl.mem h.submitted cmd

let submitted_count h = h.submitted_count

(* ------------------------------------------------------------------ *)
(* Algorithm wiring                                                    *)
(* ------------------------------------------------------------------ *)

let init h cfg (ctx : Amac.Algorithm.ctx) =
  let n =
    match ctx.n with
    | Some n -> n
    | None -> invalid_arg "Smr: requires knowledge of n"
  in
  let me = Amac.Node_id.unique_exn ctx.id in
  let st =
    {
      me;
      n;
      cfg;
      omega = me;
      leader_q = Some me;
      lamport = 0;
      last_change = (-1, -1);
      change_q = None;
      dist = Hashtbl.create 16;
      parent = Hashtbl.create 16;
      tree_q = [ (me, 1) ];
      insts = Hashtbl.create 64;
      commit_index = 0;
      max_inst_seen = 0;
      applied = [];
      applied_set = Hashtbl.create 64;
      known_cmds = Hashtbl.create 64;
      cmd_pool = [];
      chosen_cmds = Hashtbl.create 64;
      forward_q = [];
      max_tag = 0;
      lease = No_lease;
      attempts_left = 1;
      proposing = Hashtbl.create 8;
      proposal_q = [];
      seen_props = Hashtbl.create 64;
      promised = None;
      responded = Hashtbl.create 64;
      response_q = [];
      decide_q = [];
      sending = false;
      my_hb = 0;
      hb_seen = Hashtbl.create 8;
      suspect_hb = Hashtbl.create 8;
      hb_silence = 0;
      silence_limit = (4 * n) + 16;
      idle_acks = 0;
      next_refresh = refresh_start;
      progress_silence = 0;
      next_retry = (2 * n) + 8;
      retry_start = (2 * n) + 8;
      retry_cap = 16 * ((2 * n) + 8);
      retries_left = max_retries;
      patience_left = patience_max;
    }
  in
  Hashtbl.replace st.dist me 0;
  Hashtbl.replace st.parent me me;
  Hashtbl.replace st.hb_seen me 0;
  Hashtbl.replace h.registry me st;
  local_change st;
  (st, finish st)

let on_receive _ctx st (components : msg) =
  let rank = function
    | Leader _ -> 0
    | Change _ -> 1
    | Search _ -> 2
    | Forward _ -> 3
    | Proposal _ -> 4
    | Response _ -> 5
    | Decision _ -> 6
  in
  let ordered =
    List.sort (fun a b -> Int.compare (rank a) (rank b)) components
  in
  List.iter
    (fun component ->
      match component with
      | Leader { id; hb; commit } -> on_leader st ~id ~hb ~commit
      | Change { counter; origin } -> on_change st ~counter ~origin
      | Search { root; hops; sender } -> on_search st ~root ~hops ~sender
      | Forward { cmd } -> absorb_cmd st cmd
      | Proposal p -> on_proposal st p
      | Response r -> on_response st r
      | Decision { inst; value } -> note_chosen st inst value)
    ordered;
  finish st

let on_ack _ctx st =
  st.sending <- false;
  hardened_tick st;
  finish st

let component_ids = function
  | Leader _ -> 1
  | Change _ -> 1
  | Search _ -> 2
  | Forward _ -> 0
  | Proposal _ -> 1
  | Response r -> 3 + List.length r.priors + (match r.committed with None -> 0 | Some _ -> 1)
  | Decision _ -> 0

let msg_ids components =
  List.fold_left (fun acc c -> acc + component_ids c) 0 components

let pp_round = function
  | Rprep -> "prep"
  | Racc inst -> Printf.sprintf "acc[%d]" inst

let pp_component = function
  | Leader { id; hb; commit } ->
      Printf.sprintf "leader(%d,hb=%d,ci=%d)" id hb commit
  | Change { counter; origin } -> Printf.sprintf "change(%d@%d)" counter origin
  | Search { root; hops; sender } ->
      Printf.sprintf "search(root=%d,h=%d,from=%d)" root hops sender
  | Forward { cmd } -> Printf.sprintf "fwd(%d)" cmd
  | Proposal (Prepare { pno; from_inst }) ->
      Printf.sprintf "prepare(%s,from=%d)" (pp_pno pno) from_inst
  | Proposal (Propose { pno; inst; value }) ->
      Printf.sprintf "propose(%s,[%d]=%d)" (pp_pno pno) inst value
  | Response r ->
      Printf.sprintf "resp{to=%d;tgt=%d;%s;%s;%s;x%d}" r.dest r.target
        (pp_pno r.r_pno) (pp_round r.round)
        (if r.positive then "yes" else "no")
        r.count
  | Decision { inst; value } -> Printf.sprintf "chosen([%d]=%d)" inst value

let pp_msg components = String.concat "+" (List.map pp_component components)

let make ?(window = 4) ?on_apply () =
  if window < 1 then invalid_arg "Smr.make: window must be >= 1";
  let cfg = { window; on_apply } in
  let h =
    {
      registry = Hashtbl.create 8;
      submitted = Hashtbl.create 64;
      submitted_count = 0;
    }
  in
  let algorithm =
    {
      Amac.Algorithm.name = Printf.sprintf "smr-wpaxos(w=%d)" window;
      init = init h cfg;
      on_receive;
      on_ack;
      msg_ids;
      hooks = None;
    }
  in
  (algorithm, h)
