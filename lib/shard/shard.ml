module F = Amac.Fingerprint

(* Command-space carving, continuing Smr's reconfiguration encoding
   (mask bits 0-29, uid 30-39, joint 40, final 41): bit 42 marks a batch
   container minted by the wrapper, bit 43 a flush marker that never
   enters any log. Plain client commands must stay below bit 40. *)
let batch_bit = 1 lsl 42

let flush_bit = 1 lsl 43

let max_groups = 64

let is_batch v = v land batch_bit <> 0

let flush_cmd ~group =
  if group < 0 || group >= max_groups then
    invalid_arg "Shard.flush_cmd: group outside 0..63";
  flush_bit lor group

let group_of_key ~groups key =
  let r = key mod groups in
  if r < 0 then r + groups else r

(* One wire slot carries every group's pending traffic: a broadcast is a
   group-tagged bundle, the sharded analogue of Smr's own
   component-list messages. This is the no-head-of-line-blocking
   guarantee AND the scaling mechanism — the MAC wire is the scarce
   per-node resource (one broadcast in flight per node), so giving each
   group a private slot would throttle every group to 1/G of the wire
   cadence; sharing the slot lets G groups run protocol rounds at full
   cadence concurrently. Entries are ordered by group, then by enqueue
   sequence within a group. *)
type msg = (int * Smr.msg) list

type state = {
  node : int;
  inners : Smr.state array;
  (* Per-group transport outboxes. An inner instance broadcasts at most
     one message at a time (its [sending] flag stays up until the
     wrapper routes the MAC ack back to it), so each queue holds O(1)
     messages; the Pqueue keyed by [obseq] keeps FIFO order explicit
     and clone/fingerprint deterministic. *)
  outbox : Smr.msg Amac.Pqueue.t array;
  presized : bool array;
  mutable in_flight : int list;
      (** groups with traffic in the bundle on the wire; [] = idle *)
  mutable obseq : int;
  pending : int list array;  (** staged batch buffer, newest first *)
  pending_n : int array;
  applied_flat : int list array;  (** client-cmd apply stream, newest first *)
}

type handle = {
  h_groups : int;
  h_batch : int;
  mutable inner_algs : (Smr.state, Smr.msg) Amac.Algorithm.t array;
  mutable inner_handles : Smr.handle array;
  h_route : (int, int) Hashtbl.t;  (** client cmd -> owning group *)
  h_batches : (int, int list) Hashtbl.t;  (** batch value -> cmds, oldest first *)
  mutable batch_seq : int;
  h_submitted : (int, unit) Hashtbl.t;
  h_committed : (int, unit) Hashtbl.t;
  w_registry : (int, state) Hashtbl.t;  (** node -> current incarnation *)
}

let groups h = h.h_groups

let inner h g =
  if g < 0 || g >= h.h_groups then invalid_arg "Shard.inner: bad group";
  h.inner_handles.(g)

let submitted h = Hashtbl.length h.h_submitted

let committed h = Hashtbl.length h.h_committed

let batches h = h.batch_seq - 1

let expand h v = if is_batch v then Hashtbl.find_opt h.h_batches v else None

let applied_cmds h ~node ~group =
  if group < 0 || group >= h.h_groups then
    invalid_arg "Shard.applied_cmds: bad group";
  match Hashtbl.find_opt h.w_registry node with
  | Some st -> List.rev st.applied_flat.(group)
  | None -> []

let route h ~key ~cmd =
  if cmd < 1 || cmd land lnot ((1 lsl 40) - 1) <> 0 then
    invalid_arg "Shard.route: commands must be positive and below bit 40";
  let g = group_of_key ~groups:h.h_groups key in
  Hashtbl.replace h.h_route cmd g;
  g

(* Outbox capacity covers the steady state (one message per group, a
   couple more transiently around recovery) so a pooled queue never
   regrows; the dummy for pre-sizing is the first real message, because
   Smr.msg is abstract and has no cheap placeholder. *)
let outbox_capacity = 8

let enqueue st g m =
  let q = st.outbox.(g) in
  if not st.presized.(g) then begin
    Amac.Pqueue.ensure_capacity q outbox_capacity ~dummy:m;
    st.presized.(g) <- true
  end;
  Amac.Pqueue.add q ~key:st.obseq m;
  st.obseq <- st.obseq + 1

(* Inner actions -> outbox; Decides (never emitted by Smr, but the
   wrapper should not eat them) pass through. *)
let absorb st g actions =
  List.filter_map
    (function
      | Amac.Algorithm.Broadcast m ->
          enqueue st g m;
          None
      | Amac.Algorithm.Decide v -> Some (Amac.Algorithm.Decide v))
    actions

(* Put everything pending on the wire, if it is free: every non-empty
   outbox contributes its messages (FIFO within a group, groups in
   ascending order) to one tagged bundle. No group ever waits behind
   another's backlog, and the wire cadence — one broadcast, one ack —
   is paid once for all G groups instead of once per group. *)
let drain st =
  if st.in_flight <> [] then []
  else begin
    let bundle = ref [] and tagged = ref [] in
    let groups = Array.length st.inners in
    for i = groups - 1 downto 0 do
      let q = st.outbox.(i) in
      if not (Amac.Pqueue.is_empty q) then begin
        tagged := i :: !tagged;
        (* Pop order is FIFO; prepending the newest-first accumulator
           onto the (descending-group) bundle restores FIFO in place. *)
        let entries = ref [] in
        while not (Amac.Pqueue.is_empty q) do
          let _, m = Amac.Pqueue.pop q in
          entries := m :: !entries
        done;
        List.iter (fun m -> bundle := (i, m) :: !bundle) !entries
      end
    done;
    match !bundle with
    | [] -> []
    | b ->
        st.in_flight <- !tagged;
        [ Amac.Algorithm.Broadcast b ]
  end

let flush h st g ~now ctx =
  match List.rev st.pending.(g) with
  | [] -> []
  | cmds ->
      st.pending.(g) <- [];
      st.pending_n.(g) <- 0;
      let value =
        match cmds with
        | [ c ] -> c (* a lone command needs no container *)
        | _ ->
            let v = batch_bit lor h.batch_seq in
            h.batch_seq <- h.batch_seq + 1;
            Hashtbl.replace h.h_batches v cmds;
            v
      in
      absorb st g (Smr.injector h.inner_handles.(g) ~now ~payload:value ctx st.inners.(g))

let injector h ~now ~payload ctx st =
  let decides =
    if payload land flush_bit <> 0 then begin
      let g = payload land (flush_bit - 1) in
      if g < 0 || g >= h.h_groups then
        invalid_arg "Shard.injector: flush marker for unknown group";
      flush h st g ~now ctx
    end
    else
      match Hashtbl.find_opt h.h_route payload with
      | None ->
          invalid_arg "Shard.injector: unrouted payload (call Shard.route first)"
      | Some g ->
          if not (Hashtbl.mem h.h_submitted payload) then
            Hashtbl.replace h.h_submitted payload ();
          st.pending.(g) <- payload :: st.pending.(g);
          st.pending_n.(g) <- st.pending_n.(g) + 1;
          if st.pending_n.(g) >= h.h_batch then flush h st g ~now ctx else []
  in
  decides @ drain st

let fp_queue q acc =
  let entries =
    List.sort
      (fun (a, _) (b, _) -> Int.compare a b)
      (Amac.Pqueue.to_list q)
  in
  F.list (fun (k, m) acc -> acc |> F.int k |> Smr.fingerprint_msg m) entries acc

let fingerprint st acc =
  acc |> F.int st.node |> F.list F.int st.in_flight |> F.int st.obseq
  |> F.array Smr.fingerprint_state st.inners
  |> F.array fp_queue st.outbox
  |> F.array (F.list F.int) st.pending
  |> F.array F.int st.pending_n
  |> F.array (F.list F.int) st.applied_flat

let fingerprint_msg m acc =
  F.list (fun (g, p) acc -> acc |> F.int g |> Smr.fingerprint_msg p) m acc

let clone st =
  {
    st with
    inners = Array.map Smr.clone_state st.inners;
    outbox =
      Array.map
        (fun q ->
          Amac.Pqueue.of_list
            (List.sort
               (fun (a, _) (b, _) -> Int.compare a b)
               (Amac.Pqueue.to_list q)))
        st.outbox;
    presized = Array.copy st.presized;
    pending = Array.copy st.pending;
    pending_n = Array.copy st.pending_n;
    applied_flat = Array.copy st.applied_flat;
  }

let pp_msg m =
  String.concat "|"
    (List.map (fun (g, p) -> Printf.sprintf "g%d:%s" g (Smr.pp_msg p)) m)

let make ?window ?(batch = 1) ?on_apply ?on_suspect ?members_of ?compact_every
    ?patience ?backoff ?repair_retries ?clock ~groups () =
  if groups < 1 || groups > max_groups then
    invalid_arg "Shard.make: groups outside 1..64";
  if batch < 1 then invalid_arg "Shard.make: batch < 1";
  let h =
    {
      h_groups = groups;
      h_batch = batch;
      inner_algs = [||];
      inner_handles = [||];
      h_route = Hashtbl.create 4096;
      h_batches = Hashtbl.create 1024;
      batch_seq = 1;
      h_submitted = Hashtbl.create 4096;
      h_committed = Hashtbl.create 4096;
      w_registry = Hashtbl.create 8;
    }
  in
  let mk g =
    (* Apply interception: expand batches into client commands, record
       the flattened per-(node, group) stream (dies with the
       incarnation, mirroring the inner applied semantics) and fire the
       user callback once per client command. *)
    let on_apply_inner ~node ~index:_ ~cmd =
      let cmds =
        if is_batch cmd then
          match Hashtbl.find_opt h.h_batches cmd with
          | Some l -> l
          | None -> invalid_arg "Shard: applied a batch this handle never minted"
        else [ cmd ]
      in
      (match Hashtbl.find_opt h.w_registry node with
      | Some st ->
          st.applied_flat.(g) <-
            List.fold_left (fun acc c -> c :: acc) st.applied_flat.(g) cmds
      | None -> ());
      List.iter
        (fun c ->
          if not (Hashtbl.mem h.h_committed c) then
            Hashtbl.replace h.h_committed c ();
          match on_apply with
          | Some f -> f ~node ~group:g ~cmd:c
          | None -> ())
        cmds
    in
    let on_suspect_inner =
      Option.map (fun f ~node ~suspect -> f ~node ~group:g ~suspect) on_suspect
    in
    let members = Option.map (fun f -> f g) members_of in
    Smr.make ?window ~on_apply:on_apply_inner ?on_suspect:on_suspect_inner
      ?members ?compact_every ?patience ?backoff ?repair_retries ?clock ()
  in
  let rec build g acc =
    if g >= groups then List.rev acc else build (g + 1) (mk g :: acc)
  in
  let pairs = build 0 [] in
  h.inner_algs <- Array.of_list (List.map fst pairs);
  h.inner_handles <- Array.of_list (List.map snd pairs);
  let init ctx =
    let node = Amac.Node_id.unique_exn ctx.Amac.Algorithm.id in
    (* Per-group transport queues are pooled across incarnations: a
       recovering node reclaims its previous state's queues — clear
       keeps the backing arrays, so recovery allocates no transport. *)
    let outbox, presized =
      match Hashtbl.find_opt h.w_registry node with
      | Some old ->
          Array.iter Amac.Pqueue.clear old.outbox;
          (old.outbox, old.presized)
      | None ->
          (Array.init groups (fun _ -> Amac.Pqueue.create ()), Array.make groups false)
    in
    let rec init_inners g acc =
      if g >= groups then List.rev acc
      else init_inners (g + 1) (h.inner_algs.(g).Amac.Algorithm.init ctx :: acc)
    in
    let pairs = Array.of_list (init_inners 0 []) in
    let st =
      {
        node;
        inners = Array.map fst pairs;
        outbox;
        presized;
        in_flight = [];
        obseq = 0;
        pending = Array.make groups [];
        pending_n = Array.make groups 0;
        applied_flat = Array.make groups [];
      }
    in
    Hashtbl.replace h.w_registry node st;
    let decides = ref [] in
    Array.iteri (fun g (_, acts) -> decides := !decides @ absorb st g acts) pairs;
    (st, !decides @ drain st)
  in
  let on_receive ctx st m =
    let decides =
      List.concat_map
        (fun (g, p) ->
          absorb st g
            (h.inner_algs.(g).Amac.Algorithm.on_receive ctx st.inners.(g) p))
        m
    in
    decides @ drain st
  in
  let on_ack ctx st =
    (* One MAC ack settles the whole bundle: free the wire first, then
       let every contributing group's inner instance observe its ack (in
       group order) — their follow-ups land in the NEXT bundle. *)
    let acked = st.in_flight in
    st.in_flight <- [];
    let decides =
      List.concat_map
        (fun g ->
          absorb st g (h.inner_algs.(g).Amac.Algorithm.on_ack ctx st.inners.(g)))
        acked
    in
    decides @ drain st
  in
  let alg =
    {
      Amac.Algorithm.name =
        Printf.sprintf "smr-shard(g=%d,k=%d)" groups batch;
      init;
      on_receive;
      on_ack;
      msg_ids =
        (fun m ->
          List.fold_left
            (fun acc (g, p) -> acc + h.inner_algs.(g).Amac.Algorithm.msg_ids p)
            0 m);
      hooks = Some { Amac.Algorithm.fingerprint; fingerprint_msg; clone };
    }
  in
  (alg, h)

let check h =
  let svs =
    List.init h.h_groups (fun g ->
        let ih = h.inner_handles.(g) in
        let nodes = Smr.nodes ih in
        {
          Smr_checker.sv_group = g;
          sv_views = List.map (Smr_checker.view_of ih) nodes;
          sv_applied_cmds =
            List.map (fun node -> (node, applied_cmds h ~node ~group:g)) nodes;
        })
  in
  let submitted g cmd =
    Smr.was_submitted h.inner_handles.(g) cmd
    || Smr.was_reconfig h.inner_handles.(g) cmd
  in
  Smr_checker.check_shard_views ~submitted ~expand:(expand h) svs
