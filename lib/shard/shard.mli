(** Sharded multi-group SMR over one abstract MAC layer.

    The single-group {!Smr} algorithm serialises everything through one
    replicated log, so throughput is capped by one leader's broadcast
    budget: one MAC broadcast in flight per node, one ack per F_ack
    window. This wrapper partitions the keyspace across [G] independent
    SMR groups and multiplexes all of them onto the {e same} engine run:
    every node runs [G] inner replicas, messages carry a group tag, and
    the wrapper routes each delivery to its group's instance. Groups
    share nothing but the MAC channel — there is no cross-group log,
    no cross-group ordering, and a command belongs to exactly one group
    (determined by its key, {!group_of_key}).

    {b Channel multiplexing.} The MAC layer still allows one broadcast
    in flight per {e node}, not per group. Inner instances hand their
    broadcasts to a per-group outbox queue; when the wire is free the
    wrapper drains {e every} non-empty outbox into one group-tagged
    bundle — the sharded analogue of {!Smr}'s own component-list
    messages — and the single MAC ack is fanned back to each
    contributing group's instance. Sharing the wire slot is both the
    no-head-of-line-blocking guarantee (a group replaying a long log
    cannot starve the others' heartbeats — their traffic rides the same
    bundle) and the scaling mechanism: the broadcast/ack cadence, the
    scarce per-node resource, is paid once for all [G] groups instead
    of once per group, so G leaders run replication rounds at full
    cadence concurrently. The outbox queues are pooled on the handle
    and recycled across incarnations with
    [Pqueue.clear]/[ensure_capacity] — recovery does not reallocate the
    transport.

    {b Batching.} Client commands are staged per (node, group) and
    flushed [batch] at a time as a single inner command (bit 42 set,
    payload registered on the handle), so one Propose — one window
    slot, one replication round — carries up to [batch] commands. The
    inner log stays int-valued; batches are expanded exactly-once at
    apply time, in staging order. Staged-but-unflushed commands die
    with a crash, like any unreplicated client request; {!flush_cmd}
    injections force out stragglers at end of load.

    Safety is judged by {!Smr_checker.check_shard_views}: the full
    single-group contract per group, cross-group exactly-once per
    client command, and batch atomicity. What this deployment does
    {e not} give is any ordering between commands of different groups —
    per-group linearizability only (see DESIGN.md). *)

type state

type msg

type handle

(** Number of groups a handle multiplexes. *)
val groups : handle -> int

(** The static keyspace partition: [group_of_key ~groups key] is the
    group that owns [key]. Total and deterministic — every key maps to
    exactly one group in [0, groups). *)
val group_of_key : groups:int -> int -> int

(** Values with bit 42 set are batch containers minted by the wrapper. *)
val is_batch : int -> bool

(** [expand h value] is [Some cmds] (staging order) iff [value] is a
    batch minted on [h]. *)
val expand : handle -> int -> int list option

(** [flush_cmd ~group] — an injection payload that force-flushes the
    target node's staged commands for [group] (bit 43 set). Schedule a
    few after the last client injection or trailing sub-batch commands
    never replicate. *)
val flush_cmd : group:int -> int

(** [route h ~key ~cmd] registers [cmd] as owned by [key]'s group and
    returns that group. Injection payloads must be routed first —
    {!injector} refuses unrouted payloads.
    @raise Invalid_argument if [cmd] is not a plain positive command
    (reserved bits 40+ clear). *)
val route : handle -> key:int -> cmd:int -> int

(** [make ~groups ()] builds the sharded algorithm and its handle.
    [batch] (default 1 = no batching) is the flush threshold per
    (node, group). [members_of g] is group [g]'s voting configuration
    (default: all nodes; groups may overlap). [on_apply] fires per
    {e client} command, batches expanded, exactly once per (node,
    group, command). Remaining parameters are passed through to every
    inner {!Smr.make}.
    @raise Invalid_argument if [groups < 1], [groups > 64] or
    [batch < 1]. *)
val make :
  ?window:int ->
  ?batch:int ->
  ?on_apply:(node:int -> group:int -> cmd:int -> unit) ->
  ?on_suspect:(node:int -> group:int -> suspect:int -> unit) ->
  ?members_of:(int -> int list) ->
  ?compact_every:int ->
  ?patience:int ->
  ?backoff:int ->
  ?repair_retries:int ->
  ?clock:int ref ->
  groups:int ->
  unit ->
  (state, msg) Amac.Algorithm.t * handle

(** [injector h] is an [Engine.on_inject] handler: client payloads
    (registered via {!route}) are staged into their group's batch
    buffer and flushed at the batch threshold; {!flush_cmd} payloads
    force a flush.
    @raise Invalid_argument on an unrouted payload. *)
val injector :
  handle ->
  now:int ->
  payload:int ->
  Amac.Algorithm.ctx ->
  state ->
  msg Amac.Algorithm.action list

(** {2 Introspection} *)

(** [inner h g] — group [g]'s underlying {!Smr} handle. *)
val inner : handle -> int -> Smr.handle

(** Distinct client commands staged at a live replica. *)
val submitted : handle -> int

(** Distinct client commands applied by at least one replica. *)
val committed : handle -> int

(** Batches minted (flushes of two or more commands). *)
val batches : handle -> int

(** [applied_cmds h ~node ~group] — the node's flattened client-command
    apply stream for [group] (batches expanded, oldest first; current
    incarnation). *)
val applied_cmds : handle -> node:int -> group:int -> int list

(** The sharded safety contract over the handle's current state
    (see {!Smr_checker.check_shard_views}). Empty = holds. *)
val check : handle -> Smr_checker.shard_violation list

(** Render a group-tagged message (for [Engine.run ~pp_msg]). *)
val pp_msg : msg -> string
