(** Byzantine-strategy fuzzing with counterexample shrinking.

    The adversarial sibling of {!Mcheck.Fuzz}: each iteration derives a
    generator from [(seed, iteration)] (the same {!Mcheck.Fuzz.derive}
    convention), draws a clique size, inputs, [F_ack], an optional clean
    crash pattern (crashes may hit honest {e or} Byzantine nodes — the
    mixed regime), a Byzantine {!Model.strategy} sized by the config's
    {!Model.profile}, and a recorded random schedule. The algorithm runs
    {e wrapped} ({!Model.wrap}), with the strategy's tampers compiled into
    the engine's [?substitute] hook and the honest mask handed to the
    checker — so a violation means the adversary genuinely broke the
    {e honest} nodes.

    On failure the case is delta-debugged: besides {!Mcheck.Fuzz}'s passes
    (fewer nodes, fewer crashes, truncated/flattened schedule, canonical
    inputs) the shrinker attacks the strategy itself — dropping Byzantine
    nodes and tampers, thinning victim sets, narrowing windows, zeroing
    node-local behaviors — so the surviving reproducer names the minimal
    adversary: typically one Byzantine node, one tamper window, two
    victims. *)

type case = {
  n : int;  (** always a clique *)
  fack : int;
  inputs : int array;
  crashes : (int * int) list;
  strategy : Model.strategy;
  plan : Amac.Scheduler.decision list;
}

val pp_case : Format.formatter -> case -> unit

type config = {
  iterations : int;
  min_n : int;  (** nodes drawn from [\[min_n, max_n\]] *)
  max_n : int;
  max_fack : int;
  max_crashes : int;  (** clean crashes on top of the strategy *)
  profile : Model.profile;  (** sizes {!Model.gen_strategy} *)
  cap_f : bool;
      (** cap the drawn Byzantine count at [(n-1)/3] — the tolerance bound
          of an f-resilient protocol; a campaign that exceeds the budget
          finds "violations" that indict nobody. When the cap reaches 0
          (n ≤ 3) the iteration runs Byzantine-free (pure schedule/crash
          fuzz). *)
  agreement_only : bool;
      (** restrict the failure predicate to agreement violations among
          honest nodes. Against a non-Byzantine-tolerant target,
          honest-input validity breaks degenerately (the adversary's
          ordinary protocol participation already injects an "invalid"
          value — no attack needed); demanding an honest split makes the
          found strategy earn its counterexample. *)
  give_n : bool;
  check_termination : bool;
      (** when true, a completed run in which a live {e honest} node never
          decided also counts as a failure *)
  max_time : int;
  max_shrink_runs : int;
}

(** 300 iterations, n ∈ [3, 6], F_ack ≤ 6, ≤ 1 crash, default profile,
    safety-only, 2000 shrink runs. *)
val default : config

type counterexample = {
  iteration : int;
  case : case;  (** the shrunk reproducer *)
  original : case;  (** as generated, before shrinking *)
  violations : Consensus.Checker.violation list;
  timeline : string;
}

type outcome = {
  iterations_run : int;
  counterexample : counterexample option;
}

val pp_counterexample : Format.formatter -> counterexample -> unit

(** [violations_of config result] — the failure predicate over
    honest-masked reports: safety violations, plus termination ones when
    [config.check_termination] and the run was not cut off. *)
val violations_of :
  config -> Consensus.Runner.result -> Consensus.Checker.violation list

(** [run config algorithm adapter ~seed] fuzzes until a violation is found
    (then shrinks and stops) or [config.iterations] clean iterations
    pass. *)
val run :
  config -> ('s, 'm) Amac.Algorithm.t -> 'm Model.adapter -> seed:int -> outcome

(** [run_par ?pool ?jobs config algorithm adapter ~seed] — the campaign
    over a {!Par} domain pool, in waves of contiguous chunks reporting the
    {e minimum} failing iteration; byte-identical to {!run} at any job
    count (same scheme and argument as {!Mcheck.Fuzz.run_par}). *)
val run_par :
  ?pool:Par.pool ->
  ?jobs:int ->
  config ->
  ('s, 'm) Amac.Algorithm.t ->
  'm Model.adapter ->
  seed:int ->
  outcome

(** [generate config algorithm adapter ~seed ~iteration] regenerates one
    iteration's case (running it to record the schedule) with its verdict —
    how a reported seed is replayed. *)
val generate :
  config ->
  ('s, 'm) Amac.Algorithm.t ->
  'm Model.adapter ->
  seed:int ->
  iteration:int ->
  case * Consensus.Runner.result

(** [run_case config algorithm adapter case] replays a case through
    {!Amac.Scheduler.replay}, wrapped and honest-masked. *)
val run_case :
  ?record_trace:bool ->
  ?obs:Obs.Metrics.registry ->
  config ->
  ('s, 'm) Amac.Algorithm.t ->
  'm Model.adapter ->
  case ->
  Consensus.Runner.result

(** [shrink config algorithm adapter case] — greedy fixpoint of the
    shrinking passes, bounded by [config.max_shrink_runs] replays. The
    argument must currently fail ({!violations_of} non-empty); the result
    still does. *)
val shrink :
  config -> ('s, 'm) Amac.Algorithm.t -> 'm Model.adapter -> case -> case
