(** Concrete {!Model.adapter}s, one per algorithm whose message constructors
    are exposed. Each models {e authenticated} channels — embedded sender
    ids are preserved by [mutate] and set to [~self] by [forge] — so the
    adversary can equivocate and forge but not impersonate, matching the
    Tseng–Sardina threat model.

    Algorithms with abstract message types (wpaxos, multi_value
    compositions) have no constructor-level adapter; they get
    {!Model.generic_adapter} — an omission/replay adversary only, which is
    honestly weaker. *)

val two_phase : Consensus.Two_phase.msg Model.adapter

val ben_or : Consensus.Ben_or.msg Model.adapter

val counter_race : Consensus.Counter_race.msg Model.adapter

val byz_consensus : Consensus.Byz_consensus.msg Model.adapter
