type case = {
  n : int;
  fack : int;
  inputs : int array;
  crashes : (int * int) list;
  strategy : Model.strategy;
  plan : Amac.Scheduler.decision list;
}

let pp_case fmt case =
  Format.fprintf fmt
    "@[<v>clique n=%d F_ack=%d@,inputs=[%s]@,crashes=[%s]@,plan=%d \
     decisions@,%a@]"
    case.n case.fack
    (String.concat ";" (Array.to_list (Array.map string_of_int case.inputs)))
    (String.concat ";"
       (List.map
          (fun (node, time) -> Printf.sprintf "%d@t%d" node time)
          case.crashes))
    (List.length case.plan) Model.pp_strategy case.strategy

type config = {
  iterations : int;
  min_n : int;
  max_n : int;
  max_fack : int;
  max_crashes : int;
  profile : Model.profile;
  cap_f : bool;
  agreement_only : bool;
  give_n : bool;
  check_termination : bool;
  max_time : int;
  max_shrink_runs : int;
}

let default =
  {
    iterations = 300;
    min_n = 3;
    max_n = 6;
    max_fack = 6;
    max_crashes = 1;
    profile = Model.default_profile;
    cap_f = false;
    agreement_only = false;
    give_n = true;
    check_termination = false;
    max_time = 100_000;
    max_shrink_runs = 2_000;
  }

type counterexample = {
  iteration : int;
  case : case;
  original : case;
  violations : Consensus.Checker.violation list;
  timeline : string;
}

type outcome = {
  iterations_run : int;
  counterexample : counterexample option;
}

let violations_of config (result : Consensus.Runner.result) =
  let safety = Consensus.Checker.safety_violations result.report in
  (* agreement_only: against a non-Byzantine-tolerant target, honest-input
     validity breaks degenerately (a Byzantine node's ordinary protocol
     participation already carries an "invalid" value, no attack needed).
     Demanding a split among HONEST decisions makes the found strategy
     earn its counterexample. *)
  let safety =
    if config.agreement_only then
      List.filter
        (function Consensus.Checker.Agreement_violation _ -> true | _ -> false)
        safety
    else safety
  in
  if
    config.check_termination
    && (not result.outcome.hit_max_time)
    && not result.report.termination
  then
    safety
    @ List.filter
        (function
          | Consensus.Checker.Termination_violation _ -> true | _ -> false)
        result.report.violations
  else safety

(* Single-hop only: both follow-up papers' algorithms (and the attacks
   worth searching) live in cliques; multi-hop Byzantine routing is a
   different problem. *)
let run_case ?(record_trace = false) ?obs config algorithm adapter case =
  let wrapped =
    Model.wrap ~n:case.n ~adapter ~strategy:case.strategy algorithm
  in
  Consensus.Runner.run wrapped.Model.algorithm ~give_n:config.give_n
    ~topology:(Amac.Topology.clique case.n)
    ~scheduler:(Amac.Scheduler.replay case.plan)
    ~inputs:case.inputs ~crashes:case.crashes
    ~substitute:wrapped.Model.substitute ~honest:wrapped.Model.honest
    ~max_time:config.max_time ~record_trace ?obs

let generate config algorithm adapter ~seed ~iteration =
  let rng = Mcheck.Fuzz.derive ~seed ~iteration in
  let n =
    Amac.Rng.int_range rng ~lo:(max 2 config.min_n)
      ~hi:(max config.min_n config.max_n)
  in
  let fack = Amac.Rng.int_range rng ~lo:1 ~hi:(max 1 config.max_fack) in
  let inputs = Array.init n (fun _ -> if Amac.Rng.bool rng then 1 else 0) in
  (* cap_f: stay inside the algorithm's advertised tolerance — a campaign
     against an f-resilient protocol that spawns f+1 Byzantine nodes finds
     "violations" that indict nobody. *)
  let profile =
    if config.cap_f then
      { config.profile with Model.max_byz = min config.profile.Model.max_byz ((n - 1) / 3) }
    else config.profile
  in
  let strategy = Model.gen_strategy rng ~n ~fack profile in
  (* Mixed regime: clean crashes can land on honest AND Byzantine nodes —
     a crashed Byzantine node is an adversary that went permanently
     silent, which is itself a strategy worth searching. *)
  let crash_count = Amac.Rng.int rng (config.max_crashes + 1) in
  let crashes =
    List.init crash_count (fun _ ->
        ( Amac.Rng.int rng n,
          Amac.Rng.int_range rng ~lo:0 ~hi:(((2 * fack) + 1) * 2) ))
    |> List.sort_uniq compare
    |> List.fold_left
         (fun acc (node, time) ->
           if List.mem_assoc node acc then acc else (node, time) :: acc)
         []
    |> List.rev
  in
  let wrapped = Model.wrap ~n ~adapter ~strategy algorithm in
  let base = Amac.Scheduler.random (Amac.Rng.split rng) ~fack in
  let recording, recorded = Amac.Scheduler.record base in
  let result =
    Consensus.Runner.run wrapped.Model.algorithm ~give_n:config.give_n
      ~topology:(Amac.Topology.clique n) ~scheduler:recording ~inputs ~crashes
      ~substitute:wrapped.Model.substitute ~honest:wrapped.Model.honest
      ~max_time:config.max_time
  in
  ({ n; fack; inputs; crashes; strategy; plan = recorded () }, result)

(* ---------------------------------------------------------------- *)
(* Shrinking: Fuzz's delta-debugging passes plus strategy passes     *)
(* ---------------------------------------------------------------- *)

let restrict_strategy (s : Model.strategy) n' =
  let byz = List.filter (fun (node, _) -> node < n') s.Model.byz in
  let keep = List.map fst byz in
  let tampers =
    List.filter_map
      (fun (t : Model.tamper) ->
        if not (List.mem t.Model.node keep) then None
        else
          match List.filter (fun v -> v < n') t.Model.victims with
          | [] -> None
          | victims -> Some { t with Model.victims })
      s.Model.tampers
  in
  { s with Model.byz; tampers }

let restrict_to case n' =
  {
    case with
    n = n';
    inputs = Array.sub case.inputs 0 n';
    crashes = List.filter (fun (node, _) -> node < n') case.crashes;
    strategy = restrict_strategy case.strategy n';
  }

let shrink config algorithm adapter case =
  let budget = ref config.max_shrink_runs in
  let fails candidate =
    !budget > 0
    &&
    (decr budget;
     match run_case config algorithm adapter candidate with
     | result -> violations_of config result <> []
     | exception Invalid_argument _ -> false)
  in
  let improve case candidates =
    match List.find_opt fails candidates with
    | Some better -> (true, better)
    | None -> (false, case)
  in
  let pass_nodes case =
    let candidates =
      List.filter_map
        (fun n' -> if n' < case.n then Some (restrict_to case n') else None)
        (List.init (max 0 (case.n - 2)) (fun i -> i + 2))
    in
    improve case candidates
  in
  let pass_crashes case =
    let drops =
      List.mapi
        (fun i _ ->
          { case with crashes = List.filteri (fun j _ -> j <> i) case.crashes })
        case.crashes
    in
    improve case drops
  in
  let with_strategy case s = { case with strategy = s } in
  let pass_tampers case =
    let s = case.strategy in
    let drops =
      List.mapi
        (fun i _ ->
          with_strategy case
            { s with Model.tampers = List.filteri (fun j _ -> j <> i) s.Model.tampers })
        s.Model.tampers
    in
    improve case drops
  in
  let pass_windows case =
    (* Pull tamper windows toward the trivial one: all the way to [0,1),
       then halved. *)
    let s = case.strategy in
    let narrowed divisor =
      List.mapi
        (fun i (t : Model.tamper) ->
          let width = max 1 ((t.Model.until - t.Model.from_) / divisor) in
          let from_ = t.Model.from_ / divisor in
          with_strategy case
            {
              s with
              Model.tampers =
                List.mapi
                  (fun j t' ->
                    if i = j then
                      { t with Model.from_; until = from_ + width }
                    else t')
                  s.Model.tampers;
            })
        s.Model.tampers
    in
    improve case (narrowed max_int @ narrowed 2)
  in
  let pass_victims case =
    let s = case.strategy in
    let thinned =
      List.concat
        (List.mapi
           (fun i (t : Model.tamper) ->
             if List.length t.Model.victims <= 1 then []
             else
               List.map
                 (fun v ->
                   with_strategy case
                     {
                       s with
                       Model.tampers =
                         List.mapi
                           (fun j t' ->
                             if i = j then
                               {
                                 t with
                                 Model.victims =
                                   List.filter (( <> ) v) t.Model.victims;
                               }
                             else t')
                           s.Model.tampers;
                     })
                 t.Model.victims)
           s.Model.tampers)
    in
    improve case thinned
  in
  let pass_behaviors case =
    (* Quiet each Byzantine node's local behavior — what survives zeroing
       was not load-bearing. *)
    let s = case.strategy in
    let replace i b' =
      with_strategy case
        {
          s with
          Model.byz =
            List.mapi
              (fun j (node, b) -> if i = j then (node, b') else (node, b))
              s.Model.byz;
        }
    in
    let quieted =
      List.concat
        (List.mapi
           (fun i (_, (b : Model.behavior)) ->
             (* All-at-once, then one arm at a time: an arm that survives
                zeroing was not load-bearing. *)
             (if b = Model.honest_behavior then []
              else [ replace i Model.honest_behavior ])
             @ (if b.Model.replay_period <> 0 then
                  [ replace i { b with Model.replay_period = 0 } ]
                else [])
             @ (if b.Model.forge_period <> 0 then
                  [ replace i { b with Model.forge_period = 0 } ]
                else [])
             @
             if b.Model.drop_own then
               [ replace i { b with Model.drop_own = false } ]
             else [])
           s.Model.byz)
    in
    improve case quieted
  in
  let pass_byz_nodes case =
    let s = case.strategy in
    let drops =
      List.map
        (fun (node, _) ->
          with_strategy case
            {
              s with
              Model.byz = List.filter (fun (v, _) -> v <> node) s.Model.byz;
              tampers =
                List.filter
                  (fun (t : Model.tamper) -> t.Model.node <> node)
                  s.Model.tampers;
            })
        s.Model.byz
    in
    improve case drops
  in
  let normalize_decision (d : Amac.Scheduler.decision) =
    {
      Amac.Scheduler.ack_delay = 1;
      delays = List.map (fun (v, _) -> (v, 1)) d.Amac.Scheduler.delays;
    }
  in
  let pass_plan_truncate case =
    let len = List.length case.plan in
    let truncate k =
      { case with plan = List.filteri (fun i _ -> i < k) case.plan }
    in
    improve case
      (List.filter_map
         (fun k -> if k < len then Some (truncate k) else None)
         [ 0; len / 4; len / 2; 3 * len / 4; len - 1 ])
  in
  let pass_plan_flatten case =
    let all = { case with plan = List.map normalize_decision case.plan } in
    let singles =
      List.mapi
        (fun i _ ->
          {
            case with
            plan =
              List.mapi
                (fun j d -> if i = j then normalize_decision d else d)
                case.plan;
          })
        case.plan
    in
    improve case (all :: singles)
  in
  let pass_inputs case =
    let flips =
      List.filter_map
        (fun i ->
          if case.inputs.(i) = 1 then (
            let inputs = Array.copy case.inputs in
            inputs.(i) <- 0;
            Some { case with inputs })
          else None)
        (List.init case.n (fun i -> i))
    in
    improve case flips
  in
  let passes =
    [
      pass_nodes;
      pass_crashes;
      pass_byz_nodes;
      pass_tampers;
      pass_victims;
      pass_windows;
      pass_behaviors;
      pass_plan_truncate;
      pass_plan_flatten;
      pass_inputs;
    ]
  in
  let rec fixpoint case =
    let changed, case =
      List.fold_left
        (fun (changed, case) pass ->
          let c, case = pass case in
          (changed || c, case))
        (false, case) passes
    in
    if changed && !budget > 0 then fixpoint case else case
  in
  fixpoint case

let pp_counterexample fmt cx =
  Format.fprintf fmt
    "@[<v>iteration %d:@,%a@,violations:@,  %a@,timeline:@,%s@]" cx.iteration
    pp_case cx.case
    (Format.pp_print_list ~pp_sep:Format.pp_print_space
       Consensus.Checker.pp_violation)
    cx.violations cx.timeline

(* First failing iteration in [lo, hi) — pure in (config, algorithm,
   adapter, seed, lo, hi), the keystone of run_par's determinism (same
   argument as Mcheck.Fuzz). *)
let find_failure config algorithm adapter ~seed ~lo ~hi =
  let rec scan i =
    if i >= hi then None
    else
      let case, first = generate config algorithm adapter ~seed ~iteration:i in
      if violations_of config first <> [] then Some (i, case) else scan (i + 1)
  in
  scan lo

let finalize config algorithm adapter ~iteration case =
  let shrunk = shrink config algorithm adapter case in
  let replay = run_case ~record_trace:true config algorithm adapter shrunk in
  {
    iteration;
    case = shrunk;
    original = case;
    violations = violations_of config replay;
    timeline = Amac.Trace.timeline ~n:shrunk.n replay.outcome.trace;
  }

let run config algorithm adapter ~seed =
  match
    find_failure config algorithm adapter ~seed ~lo:0 ~hi:config.iterations
  with
  | None -> { iterations_run = config.iterations; counterexample = None }
  | Some (iteration, case) ->
      {
        iterations_run = iteration + 1;
        counterexample =
          Some (finalize config algorithm adapter ~iteration case);
      }

(* Waves of contiguous chunks, minimum failing iteration — byte-identical
   to [run] at any job count (same scheme as Mcheck.Fuzz.run_par). *)
let run_par ?pool ?(jobs = 1) config algorithm adapter ~seed =
  let owned, pool =
    match pool with
    | Some p -> (None, Some p)
    | None ->
        if jobs <= 1 then (None, None)
        else
          let p = Par.create ~domains:jobs () in
          (Some p, Some p)
  in
  match pool with
  | None -> run config algorithm adapter ~seed
  | Some pool ->
      Fun.protect
        ~finally:(fun () ->
          match owned with Some p -> Par.shutdown p | None -> ())
        (fun () ->
          if Par.size pool <= 1 then run config algorithm adapter ~seed
          else begin
            let chunk = 4 in
            let wave = Par.size pool * 4 * chunk in
            let rec waves start =
              if start >= config.iterations then
                { iterations_run = config.iterations; counterexample = None }
              else
                let stop = min config.iterations (start + wave) in
                let chunks =
                  Array.init
                    ((stop - start + chunk - 1) / chunk)
                    (fun k ->
                      let lo = start + (k * chunk) in
                      (lo, min stop (lo + chunk)))
                in
                let hits =
                  Par.map pool
                    (fun (lo, hi) ->
                      find_failure config algorithm adapter ~seed ~lo ~hi)
                    chunks
                  |> Array.to_list
                  |> List.filter_map Fun.id
                in
                match hits with
                | [] -> waves stop
                | first :: rest ->
                    let iteration, case =
                      List.fold_left
                        (fun (bi, bc) (i, c) ->
                          if i < bi then (i, c) else (bi, bc))
                        first rest
                    in
                    {
                      iterations_run = iteration + 1;
                      counterexample =
                        Some (finalize config algorithm adapter ~iteration case);
                    }
            in
            waves 0
          end)
