let pick01 rng = Amac.Rng.int rng 2

(* Two-phase (Sec 4.1): the attack surface is the status exchange. Flipping
   phase-1 values splits which evidence each victim sees; equivocating
   phase-2 statuses plants conflicting decided(v) claims. Sender ids are
   preserved — authenticated channels. *)
let two_phase : Consensus.Two_phase.msg Model.adapter =
  {
    mutate =
      (fun rng ~self:_ msg ->
        match msg with
        | Consensus.Two_phase.Phase1 { id; value } ->
            Consensus.Two_phase.Phase1 { id; value = 1 - value }
        | Consensus.Two_phase.Phase2 { id; _ } ->
            Consensus.Two_phase.Phase2
              { id; status = Consensus.Two_phase.Decided_value (pick01 rng) });
    forge =
      (fun rng ~self _seen ->
        Some
          (Consensus.Two_phase.Phase2
             {
               id = self;
               status = Consensus.Two_phase.Decided_value (pick01 rng);
             }));
  }

(* Ben-Or: crash-tolerant only, so forged Decided claims and flipped votes
   are expected to hurt — the matrix documents it rather than asserting
   safety. *)
let ben_or : Consensus.Ben_or.msg Model.adapter =
  {
    mutate =
      (fun rng ~self:_ { Consensus.Ben_or.sender; vote } ->
        let vote =
          match vote with
          | Consensus.Ben_or.Report { round; value } ->
              Consensus.Ben_or.Report { round; value = 1 - value }
          | Consensus.Ben_or.Proposal { round; value } ->
              Consensus.Ben_or.Proposal
                {
                  round;
                  value =
                    (match value with
                    | None -> Some (pick01 rng)
                    | Some _ when Amac.Rng.bool rng -> None
                    | Some v -> Some (1 - v));
                }
          | Consensus.Ben_or.Decided v -> Consensus.Ben_or.Decided (1 - v)
        in
        { Consensus.Ben_or.sender; vote });
    forge =
      (fun rng ~self _seen ->
        Some
          {
            Consensus.Ben_or.sender = self;
            vote = Consensus.Ben_or.Decided (pick01 rng);
          });
  }

(* Counter-race: the margin argument assumes honest counters, so inflating
   c (or flipping v while keeping a plausible counter) races the decision
   threshold dishonestly. Expected to break it — documented, not
   asserted. *)
let counter_race : Consensus.Counter_race.msg Model.adapter =
  {
    mutate =
      (fun rng ~self:_ { Consensus.Counter_race.sender; c; v } ->
        if Amac.Rng.bool rng then
          { Consensus.Counter_race.sender; c = c + 1 + Amac.Rng.int rng 5; v }
        else { Consensus.Counter_race.sender; c; v = 1 - v });
    forge =
      (fun rng ~self _seen ->
        Some
          {
            Consensus.Counter_race.sender = self;
            c = 1 + Amac.Rng.int rng 10;
            v = pick01 rng;
          });
  }

(* Byz-consensus: the algorithm under its OWN threat model. Mutations twist
   rounds and values, forgeries inject spurious EST/AUX — all with the true
   sender id (authenticated), which is exactly the adversary the f-counting
   thresholds must absorb. The fuzz campaign asserts it stays clean. *)
let byz_consensus : Consensus.Byz_consensus.msg Model.adapter =
  {
    mutate =
      (fun rng ~self:_ { Consensus.Byz_consensus.sender; body } ->
        let body =
          match body with
          | Consensus.Byz_consensus.Est { round; value } ->
              if Amac.Rng.bool rng then
                Consensus.Byz_consensus.Est { round; value = 1 - value }
              else
                Consensus.Byz_consensus.Est
                  { round = round + 1 + Amac.Rng.int rng 2; value }
          | Consensus.Byz_consensus.Aux { round; value } ->
              if Amac.Rng.bool rng then
                Consensus.Byz_consensus.Aux { round; value = 1 - value }
              else
                Consensus.Byz_consensus.Aux
                  { round = round + 1 + Amac.Rng.int rng 2; value }
        in
        { Consensus.Byz_consensus.sender; body });
    forge =
      (fun rng ~self _seen ->
        let round = Amac.Rng.int rng 4 and value = pick01 rng in
        Some
          {
            Consensus.Byz_consensus.sender = self;
            body =
              (if Amac.Rng.bool rng then
                 Consensus.Byz_consensus.Est { round; value }
               else Consensus.Byz_consensus.Aux { round; value });
          });
  }
