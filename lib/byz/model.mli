(** Byzantine adversary model: arbitrary node behavior as a {e wrapper}
    around an honest algorithm.

    The source paper's model is crash faults; its follow-ups take the
    adversary further — Newport & Robinson (arXiv:1810.02848) keep crashes
    but drop knowledge of n, Tseng & Sardina (arXiv:2311.03034) admit full
    Byzantine nodes. This module implements the latter threat model
    {e without touching any honest algorithm code}: a Byzantine node is an
    honest node wrapped in an adversarial shell, and the network-level
    attacks compile into the engine's [?substitute] hook.

    The adversary has two arms:

    - {b node-local behavior} ([behavior], one per Byzantine node): drop
      its own protocol broadcasts (silence), replay previously received
      messages verbatim, and inject forged payloads built by an
      [adapter]. Triggers are event {e counts}, never times — the wrapped
      state stays a pure state machine, so {!Mcheck.Explore}'s
      fingerprint-keyed search over wrapped algorithms remains sound.
    - {b delivery tampering} ([tamper] windows, compiled into
      {!Amac.Engine}'s [?substitute] hook): during a window, deliveries
      from the Byzantine sender to chosen victims are suppressed
      (selective silence) or mutated per recipient (equivocation — honest
      sender-side state is untouched, different victims see different
      payloads). The sender's own ack is never affected: the MAC layer
      acks its transmission; what the adversary corrupted is the
      {e content} observed by receivers.

    Everything is deterministic: behaviors draw from a per-node seeded
    stream, and equivocation randomness is derived per delivery from
    [(seed, time, sender, receiver)] alone, so replays and
    branch-exploring searches reproduce the identical adversary.

    {b Authentication.} The callbacks expose no sender metadata, so
    "who sent this" lives inside payloads. An adapter that keeps the
    payload's sender field equal to [~self] models {e authenticated}
    channels (the Tseng–Sardina setting — equivocate and forge, but not
    impersonate); the {!generic_adapter}'s replay arm re-broadcasts other
    nodes' messages verbatim and thus models an {e unauthenticated}
    network. Pick the adapter to pick the threat model. *)

(** Node-local adversarial behavior. [replay_period = k > 0]: every k-th
    received message triggers a verbatim re-broadcast of some previously
    seen message. [forge_period = k > 0]: every k-th received message
    triggers an adapter-forged broadcast. [drop_own]: suppress the inner
    protocol's own broadcasts entirely. Injected broadcasts obey the MAC
    layer's busy-sender discard — the adversary cannot outpace the
    layer. *)
type behavior = {
  replay_period : int;  (** 0 = never *)
  forge_period : int;  (** 0 = never *)
  drop_own : bool;
}

(** All-zero behavior: a Byzantine node that attacks only through
    delivery tampering (or not at all). *)
val honest_behavior : behavior

type tamper_kind =
  | Silence  (** suppress the delivery: selective, per-victim silence *)
  | Equivocate  (** per-recipient payload mutation via the adapter *)

type tamper = {
  node : int;  (** the Byzantine sender whose deliveries are tampered *)
  victims : int list;  (** receivers affected *)
  from_ : int;
  until : int;  (** active while [from_ <= now < until] *)
  kind : tamper_kind;
}

type strategy = {
  byz : (int * behavior) list;  (** the Byzantine nodes *)
  tampers : tamper list;  (** must name senders from [byz] *)
  seed : int;  (** keys every stream the adversary draws from *)
}

(** How to build adversarial payloads for a concrete message type.
    [mutate rng ~self msg] twists a real outgoing payload (equivocation);
    [forge rng ~self seen] fabricates a fresh payload, given the messages
    the node has seen. Keep embedded sender fields equal to [~self] to
    model authenticated channels (see above). *)
type 'm adapter = {
  mutate : Amac.Rng.t -> self:int -> 'm -> 'm;
  forge : Amac.Rng.t -> self:int -> 'm list -> 'm option;
}

(** Type-agnostic adapter: [mutate] is the identity (so [Equivocate]
    tampers degrade to no-ops) and [forge] replays a seen message
    verbatim — an omission/replay adversary that works for any ['m],
    including abstract message types. Unauthenticated: replays
    impersonate. *)
val generic_adapter : unit -> 'm adapter

type ('s, 'm) node_state = Honest of 's | Byz of ('s, 'm) byz_node

and ('s, 'm) byz_node = {
  mutable inner : 's;
  rng : Amac.Rng.t;
  mutable seen : 'm list;
  mutable recv_count : int;
  mutable ack_count : int;
  behavior : behavior;
}

type ('s, 'm) wrapped = {
  algorithm : (('s, 'm) node_state, 'm) Amac.Algorithm.t;
      (** run this in place of the honest algorithm *)
  substitute : now:int -> sender:int -> receiver:int -> 'm -> 'm option;
      (** pass to {!Amac.Engine.run} / {!Consensus.Runner.run} *)
  honest : bool array;
      (** pass to {!Consensus.Checker.check} / {!Consensus.Runner.run} *)
}

(** [wrap ~n ~adapter ~strategy algorithm] — the tentpole. Byzantine
    nodes fake a [Decide 0] at init (the engine's all-decided cutoff must
    not wait on the adversary; the honest-masked checker ignores it) and
    their inner protocol keeps running between attacks, so they remain
    protocol-plausible. The wrapper composes the inner algorithm's
    verification hooks when present: fingerprints tag Honest/Byz and fold
    the adversary's whole observable state, clones deep-copy it.

    Requires unique node ids (the wrapper must know who it is).
    @raise Invalid_argument if a strategy names an out-of-range node or
    tampers with an honest sender. *)
val wrap :
  n:int ->
  adapter:'m adapter ->
  strategy:strategy ->
  ('s, 'm) Amac.Algorithm.t ->
  ('s, 'm) wrapped

(** {1 Strategy generation (the fuzzer's raw material)} *)

(** Knobs bounding {!gen_strategy}; switching an attack family off removes
    it from the draw entirely (e.g. an equivocation-only campaign). *)
type profile = {
  max_byz : int;  (** byz count drawn from [\[1, min max_byz (n-1)\]] *)
  max_tampers : int;
  max_window : int;
  allow_silence : bool;
  allow_equivocate : bool;
  allow_replay : bool;
  allow_forge : bool;
  allow_drop_own : bool;
}

(** 1 Byzantine node, ≤ 3 tampers, windows ≤ 40 ticks, every family on. *)
val default_profile : profile

(** [gen_strategy rng ~n ~fack profile] draws a valid strategy: Byzantine
    nodes chosen uniformly, tamper windows inside the same
    [((2*fack)+1)*4] horizon as {!Mcheck.Fuzz.gen_fault_plan}, tampers
    only on Byzantine senders with non-empty victim sets. *)
val gen_strategy : Amac.Rng.t -> n:int -> fack:int -> profile -> strategy

val pp_behavior : Format.formatter -> behavior -> unit

val pp_tamper : Format.formatter -> tamper -> unit

val pp_strategy : Format.formatter -> strategy -> unit
