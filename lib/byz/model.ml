type behavior = {
  replay_period : int;
  forge_period : int;
  drop_own : bool;
}

let honest_behavior = { replay_period = 0; forge_period = 0; drop_own = false }

type tamper_kind = Silence | Equivocate

type tamper = {
  node : int;
  victims : int list;
  from_ : int;
  until : int;
  kind : tamper_kind;
}

type strategy = {
  byz : (int * behavior) list;
  tampers : tamper list;
  seed : int;
}

type 'm adapter = {
  mutate : Amac.Rng.t -> self:int -> 'm -> 'm;
  forge : Amac.Rng.t -> self:int -> 'm list -> 'm option;
}

let generic_adapter () =
  {
    mutate = (fun _rng ~self:_ m -> m);
    forge =
      (fun rng ~self:_ seen ->
        match seen with [] -> None | _ -> Some (Amac.Rng.pick rng seen));
  }

let pp_behavior fmt b =
  Format.fprintf fmt "replay=%d forge=%d%s" b.replay_period b.forge_period
    (if b.drop_own then " silent" else "")

let pp_tamper fmt t =
  Format.fprintf fmt "%s by %d -> {%s} during [%d,%d)"
    (match t.kind with Silence -> "silence" | Equivocate -> "equivocate")
    t.node
    (String.concat "," (List.map string_of_int t.victims))
    t.from_ t.until

let pp_strategy fmt s =
  Format.fprintf fmt "@[<v>byz nodes:";
  List.iter
    (fun (node, b) -> Format.fprintf fmt "@,  %d: %a" node pp_behavior b)
    s.byz;
  List.iter (fun t -> Format.fprintf fmt "@,  %a" pp_tamper t) s.tampers;
  Format.fprintf fmt "@,  seed=%d@]" s.seed

(* ------------------------------------------------------------------ *)
(* The wrapper                                                         *)
(* ------------------------------------------------------------------ *)

type ('s, 'm) node_state =
  | Honest of 's
  | Byz of ('s, 'm) byz_node

and ('s, 'm) byz_node = {
  mutable inner : 's;
  rng : Amac.Rng.t;
  mutable seen : 'm list;  (* most recent first, bounded by [seen_cap] *)
  mutable recv_count : int;
  mutable ack_count : int;
  behavior : behavior;
}

type ('s, 'm) wrapped = {
  algorithm : (('s, 'm) node_state, 'm) Amac.Algorithm.t;
  substitute : now:int -> sender:int -> receiver:int -> 'm -> 'm option;
  honest : bool array;
}

let seen_cap = 8

let wrap ~n ~adapter ~strategy (inner : ('s, 'm) Amac.Algorithm.t) :
    ('s, 'm) wrapped =
  List.iter
    (fun (node, _) ->
      if node < 0 || node >= n then
        invalid_arg "Byz.wrap: byz node out of range")
    strategy.byz;
  List.iter
    (fun t ->
      if not (List.mem_assoc t.node strategy.byz) then
        invalid_arg "Byz.wrap: tamper on an honest sender")
    strategy.tampers;
  let honest = Array.make n true in
  List.iter (fun (node, _) -> honest.(node) <- false) strategy.byz;
  (* Byzantine node-local behaviors key off event COUNTS, not time — the
     callbacks cannot see a clock (Algorithm's contract), and counters keep
     the wrapper a pure state machine, so Explore's fingerprint-keyed
     search over wrapped algorithms stays sound. *)
  let filter_actions b actions =
    List.concat_map
      (function
        (* The node fake-decided at init; whatever the inner protocol would
           decide is the adversary's secret, and a second Decide would be an
           irrevocability artifact the honest-masked checker ignores
           anyway. *)
        | Amac.Algorithm.Decide _ -> []
        | Amac.Algorithm.Broadcast _ when b.behavior.drop_own -> []
        | Amac.Algorithm.Broadcast _ as a -> [ a ])
      actions
  in
  let self_of (ctx : Amac.Algorithm.ctx) = Amac.Node_id.unique_exn ctx.id in
  let init ctx =
    let st, actions = inner.Amac.Algorithm.init ctx in
    let id = self_of ctx in
    if id < n && not honest.(id) then begin
      let b =
        {
          inner = st;
          rng = Amac.Rng.create (Hashtbl.hash (0x6b17, strategy.seed, id));
          seen = [];
          recv_count = 0;
          ack_count = 0;
          behavior = List.assoc id strategy.byz;
        }
      in
      (* Fake decide up front: the engine's all-decided cutoff must not
         wait on the adversary, and a Byzantine "decision" carrying a value
         nobody proposed is exactly what the honest-masked checker must
         shrug off (test_checker pins it). *)
      (Byz b, Amac.Algorithm.Decide 0 :: filter_actions b actions)
    end
    else (Honest st, actions)
  in
  let on_receive ctx st msg =
    match st with
    | Honest s -> inner.Amac.Algorithm.on_receive ctx s msg
    | Byz b ->
        b.recv_count <- b.recv_count + 1;
        b.seen <-
          msg :: List.filteri (fun i _ -> i < seen_cap - 1) b.seen;
        (* Still run the inner protocol: a plausible adversary keeps
           speaking the protocol's language between attacks. *)
        let actions =
          filter_actions b (inner.Amac.Algorithm.on_receive ctx b.inner msg)
        in
        let every period = period > 0 && b.recv_count mod period = 0 in
        let replayed =
          if every b.behavior.replay_period && b.seen <> [] then
            [ Amac.Algorithm.Broadcast (Amac.Rng.pick b.rng b.seen) ]
          else []
        in
        let forged =
          if every b.behavior.forge_period then
            match adapter.forge b.rng ~self:(self_of ctx) b.seen with
            | Some m -> [ Amac.Algorithm.Broadcast m ]
            | None -> []
          else []
        in
        (* Injected broadcasts go through the normal MAC rules — in
           particular the busy-sender discard: the adversary cannot send
           faster than the layer allows. *)
        actions @ replayed @ forged
  in
  let on_ack ctx st =
    match st with
    | Honest s -> inner.Amac.Algorithm.on_ack ctx s
    | Byz b ->
        b.ack_count <- b.ack_count + 1;
        filter_actions b (inner.Amac.Algorithm.on_ack ctx b.inner)
  in
  let hooks =
    match inner.Amac.Algorithm.hooks with
    | None -> None
    | Some ih ->
        let module F = Amac.Fingerprint in
        Some
          {
            Amac.Algorithm.fingerprint =
              (fun st acc ->
                match st with
                | Honest s -> acc |> F.int 0 |> ih.Amac.Algorithm.fingerprint s
                | Byz b ->
                    acc |> F.int 1
                    |> ih.Amac.Algorithm.fingerprint b.inner
                    |> Amac.Rng.fingerprint b.rng
                    |> F.list ih.Amac.Algorithm.fingerprint_msg b.seen
                    |> F.int b.recv_count |> F.int b.ack_count
                    |> F.int b.behavior.replay_period
                    |> F.int b.behavior.forge_period
                    |> F.bool b.behavior.drop_own);
            fingerprint_msg = ih.Amac.Algorithm.fingerprint_msg;
            clone =
              (fun st ->
                match st with
                | Honest s -> Honest (ih.Amac.Algorithm.clone s)
                | Byz b ->
                    Byz
                      {
                        b with
                        inner = ih.Amac.Algorithm.clone b.inner;
                        rng = Amac.Rng.copy b.rng;
                      });
          }
  in
  let substitute ~now ~sender ~receiver msg =
    let active t =
      t.node = sender && t.from_ <= now && now < t.until
      && List.mem receiver t.victims
    in
    match List.filter active strategy.tampers with
    | [] -> Some msg
    | ts when List.exists (fun t -> t.kind = Silence) ts -> None
    | _ ->
        (* Equivocation randomness is derived PER DELIVERY from the
           coordinates alone — no stream is threaded through the run, so a
           replayed schedule re-derives the identical substitution and the
           explorer's branches stay independent. *)
        let rng =
          Amac.Rng.create
            (Hashtbl.hash (0x9e37, strategy.seed, now, sender, receiver))
        in
        Some (adapter.mutate rng ~self:sender msg)
  in
  {
    algorithm =
      {
        Amac.Algorithm.name =
          Printf.sprintf "byz[%d](%s)" (List.length strategy.byz)
            inner.Amac.Algorithm.name;
        init;
        on_receive;
        on_ack;
        msg_ids = inner.Amac.Algorithm.msg_ids;
        hooks;
      };
    substitute;
    honest;
  }

(* ------------------------------------------------------------------ *)
(* Strategy generation                                                 *)
(* ------------------------------------------------------------------ *)

type profile = {
  max_byz : int;
  max_tampers : int;
  max_window : int;
  allow_silence : bool;
  allow_equivocate : bool;
  allow_replay : bool;
  allow_forge : bool;
  allow_drop_own : bool;
}

let default_profile =
  {
    max_byz = 1;
    max_tampers = 3;
    max_window = 40;
    allow_silence = true;
    allow_equivocate = true;
    allow_replay = true;
    allow_forge = true;
    allow_drop_own = true;
  }

let gen_strategy rng ~n ~fack profile =
  (* Same horizon convention as Fuzz.gen_fault_plan: windows land inside
     the first few broadcast/ack cycles, where the protocols' phase
     structure actually lives. *)
  let horizon = ((2 * fack) + 1) * 4 in
  let cap = min profile.max_byz (max 0 (n - 1)) in
  let count = if cap <= 0 then 0 else 1 + Amac.Rng.int rng cap in
  let ids = Array.init n Fun.id in
  Amac.Rng.shuffle rng ids;
  let byz_ids =
    Array.to_list (Array.sub ids 0 count) |> List.sort Int.compare
  in
  let behavior () =
    {
      replay_period =
        (if profile.allow_replay && Amac.Rng.bool rng then
           1 + Amac.Rng.int rng 3
         else 0);
      forge_period =
        (if profile.allow_forge && Amac.Rng.bool rng then
           1 + Amac.Rng.int rng 3
         else 0);
      drop_own = profile.allow_drop_own && Amac.Rng.bool rng;
    }
  in
  let byz = List.map (fun id -> (id, behavior ())) byz_ids in
  let kinds =
    (if profile.allow_silence then [ Silence ] else [])
    @ if profile.allow_equivocate then [ Equivocate ] else []
  in
  let tampers =
    if byz_ids = [] || kinds = [] then []
    else
      List.init (Amac.Rng.int rng (profile.max_tampers + 1)) (fun _ ->
          let node = Amac.Rng.pick rng byz_ids in
          let victims =
            List.filter
              (fun v -> v <> node && Amac.Rng.bool rng)
              (List.init n Fun.id)
          in
          let victims =
            if victims = [] && n > 1 then [ (node + 1) mod n ] else victims
          in
          let from_ = Amac.Rng.int rng horizon in
          let until = from_ + 1 + Amac.Rng.int rng (max 1 profile.max_window) in
          { node; victims; from_; until; kind = Amac.Rng.pick rng kinds })
      |> List.filter (fun t -> t.victims <> [])
  in
  { byz; tampers; seed = Amac.Rng.int rng 0x3FFFFFFF }
