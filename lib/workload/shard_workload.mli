(** Open-loop, Zipf-keyed workload driver for sharded multi-group SMR.

    The sharded counterpart of {!Workload}: it mints client commands,
    samples each command's key from a {!Zipf} distribution, routes it
    to the owning group ({!Shard.route}), and injects it open-loop at a
    random replica with exponential inter-arrival gaps. After the last
    arrival it schedules flush markers at every (node, group) so
    trailing sub-batch commands still replicate. Safety is judged by
    the sharded contract ({!Shard.check}) after the run. *)

type result = {
  outcome : Amac.Engine.outcome;
  handle : Shard.handle;
  violations : Smr_checker.shard_violation list;
  issued : int;  (** commands minted *)
  submitted : int;  (** distinct commands staged at a live replica *)
  committed : int;  (** distinct commands applied somewhere *)
  batches : int;  (** batch containers minted *)
  latencies : int array;  (** per-command submit->first-apply, sorted *)
  group_commits : int array;  (** per-group max commit index *)
  last_commit : int;
      (** tick of the final first-apply anywhere — the workload-completion
          clock. [outcome.end_time] additionally includes the post-commit
          quiescence tail (lease expiry, heartbeat settling), which is
          near-constant in [groups] and would mask scaling if used as the
          throughput denominator. *)
}

(** [latency r ~q] — the q-quantile commit latency, [None] if nothing
    committed. @raise Invalid_argument if [q] is outside (0, 1]. *)
val latency : result -> q:float -> int option

(** [run ~topology ~scheduler ~seed ~cmds ~groups ()] drives one run.
    [batch] (default 4) is the flush threshold, [mean_gap] (default 2)
    the mean inter-arrival gap in ticks, [burst] (default 1) how many
    commands share each arrival — offered load is burst/mean_gap
    commands per tick, the lever that pushes past one group's drain
    capacity. [affinity] (default false) makes each command land at a
    replica of its owning group — the shard-aware-client model; without
    it the whole burst lands at one uniform node, so per-(node, group)
    staging buffers fill [groups] times slower and batching starves.
    [key_space]/[theta] set the Zipf key universe (defaults 256 keys,
    YCSB skew). [crashes] and [faults] follow {!Workload.run}. *)
val run :
  ?window:int ->
  ?batch:int ->
  ?mean_gap:int ->
  ?burst:int ->
  ?affinity:bool ->
  ?key_space:int ->
  ?theta:float ->
  ?faults:Fault.plan ->
  ?crashes:(int * int) list ->
  ?max_time:int ->
  ?record_trace:bool ->
  ?obs:Obs.Metrics.registry ->
  ?members_of:(int -> int list) ->
  topology:Amac.Topology.t ->
  scheduler:Amac.Scheduler.t ->
  seed:int ->
  cmds:int ->
  groups:int ->
  unit ->
  result
