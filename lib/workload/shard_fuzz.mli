(** Seeded fuzzing of the sharded multi-group log: random topology,
    scheduler, group count, batch threshold and crash pattern per
    iteration, driven open-loop with Zipf keys and judged by the
    sharded safety contract ({!Shard.check}) — per-group prefix
    agreement, cross-group exactly-once, batch atomicity.

    Same reproducibility story as {!Smr_fuzz}: every stochastic choice
    derives from [Mcheck.Fuzz.derive ~seed ~iteration], so the
    iteration number is the reproducer. *)

type config = {
  iterations : int;
  max_n : int;  (** nodes drawn from [\[3, max_n\]] *)
  max_fack : int;  (** F_ack drawn from [\[1, max_fack\]] *)
  max_groups : int;  (** groups drawn from [\[1, max_groups\]] *)
  max_batch : int;  (** batch threshold drawn from [\[1, max_batch\]] *)
  max_crashes : int;
  cmds : int;
  max_time : int;
}

(** 100 iterations, n ≤ 6, F_ack ≤ 6, ≤ 4 groups, batch ≤ 6,
    ≤ 2 crashes, 40 commands. *)
val default : config

type failure = {
  iteration : int;
  n : int;
  fack : int;
  groups : int;
  batch : int;
  window : int;
  crashes : (int * int) list;
  violations : Smr_checker.shard_violation list;
}

type outcome = {
  iterations_run : int;
  failure : failure option;  (** [None] — all iterations clean *)
}

val pp_failure : Format.formatter -> failure -> unit

(** [run config ~seed] fuzzes until a safety violation (then stops) or
    [config.iterations] clean iterations pass. *)
val run : ?progress:(int -> unit) -> config -> seed:int -> outcome
