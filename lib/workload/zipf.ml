type t = { cdf : float array; rng : Amac.Rng.t }

let make ?(theta = 0.99) ~support ~seed () =
  if support < 1 then invalid_arg "Zipf.make: support < 1";
  if theta < 0.0 then invalid_arg "Zipf.make: theta < 0";
  let weights =
    Array.init support (fun i ->
        1.0 /. Float.pow (float_of_int (i + 1)) theta)
  in
  let total = Array.fold_left ( +. ) 0.0 weights in
  let cdf = Array.make support 0.0 in
  let acc = ref 0.0 in
  Array.iteri
    (fun i w ->
      acc := !acc +. (w /. total);
      cdf.(i) <- !acc)
    weights;
  (* Guard the top against rounding so search never falls off the end. *)
  cdf.(support - 1) <- 1.0;
  { cdf; rng = Amac.Rng.create seed }

let next t =
  let u = Amac.Rng.float t.rng 1.0 in
  (* Smallest index with cdf.(i) >= u. *)
  let lo = ref 0 and hi = ref (Array.length t.cdf - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if t.cdf.(mid) >= u then hi := mid else lo := mid + 1
  done;
  !lo + 1
