type scenario =
  | Rolling_restart
  | Scale_up
  | Crash_reconfig
  | Snapshot_restart

let all = [ Rolling_restart; Scale_up; Crash_reconfig; Snapshot_restart ]

let name = function
  | Rolling_restart -> "rolling-restart"
  | Scale_up -> "scale-up"
  | Crash_reconfig -> "crash-reconfig"
  | Snapshot_restart -> "snapshot-restart"

let of_name = function
  | "rolling-restart" -> Some Rolling_restart
  | "scale-up" -> Some Scale_up
  | "crash-reconfig" -> Some Crash_reconfig
  | "snapshot-restart" -> Some Snapshot_restart
  | _ -> None

type outcome = {
  scenario : scenario;
  result : Workload.result;
  live : bool;
  detail : string;
}

(* Liveness, scenario-independent core: every submitted command committed
   (an injection landing on a planned-down replica is lost like any client
   request to a dead server — [issued] can exceed [submitted]) and every
   replica's log converged to the same commit index — the system
   re-achieved steady state after the plan played out. Scenario-specific
   clauses (epochs reached, snapshots installed) come on top. *)
let converged (r : Workload.result) =
  r.Workload.violations = []
  && r.Workload.committed = r.Workload.submitted
  && r.Workload.commit_index_min = r.Workload.commit_index_max
  && r.Workload.commit_index_min > 0

let describe (r : Workload.result) =
  Printf.sprintf
    "issued=%d submitted=%d committed=%d commit=[%d,%d] epoch=[%d,%d] \
     suspicions=%d snapshots=%d/%d violations=%d"
    r.Workload.issued r.Workload.submitted r.Workload.committed
    r.Workload.commit_index_min r.Workload.commit_index_max
    r.Workload.epoch_min r.Workload.epoch_max r.Workload.suspicions
    r.Workload.snapshots_taken r.Workload.snapshots_installed
    (List.length r.Workload.violations)

(* Every scenario: clique topology, seeded random scheduler, open-loop
   Poisson traffic running *through* the fault window — the "under fire"
   part — with a long quiet tail for re-convergence. All knobs derive from
   [seed]/[fack], so a scenario run is replayable bit-for-bit. *)
let run ?(seed = 42) ?(fack = 3) ?(max_time = 400_000) scenario =
  let rng = Amac.Rng.create seed in
  let scheduler = Amac.Scheduler.random (Amac.Rng.split rng) ~fack in
  let wseed = Amac.Rng.int rng 1_000_000 in
  let result =
    match scenario with
    | Rolling_restart ->
        (* Restart all five replicas one at a time, under traffic and with
           compaction on: each restarter comes back amnesiac and must
           re-learn through repair or snapshot transfer while the next
           outage is already scheduled. *)
        let n = 5 in
        let faults =
          Fault.rolling_restart
            ~nodes:(List.init n Fun.id)
            ~start:2_000 ~down_for:1_500 ~gap:4_000
        in
        Workload.run ~faults ~compact_every:25 ~max_time
          ~topology:(Amac.Topology.clique n) ~scheduler ~seed:wseed ~cmds:40
          ~mode:(Workload.Open_loop { mean_gap = 40 })
          ()
    | Scale_up ->
        (* 3 -> 5 -> 7 under load: four replicas start as learners; two
           joint-consensus reconfigurations promote them while commands
           keep arriving at every node (learners included — they forward). *)
        let n = 7 in
        let reconfigs =
          [
            (0, 1_500, [ 0; 1; 2; 3; 4 ]);
            (1, 6_000, [ 0; 1; 2; 3; 4; 5; 6 ]);
          ]
        in
        Workload.run ~members:[ 0; 1; 2 ] ~reconfigs ~max_time
          ~topology:(Amac.Topology.clique n) ~scheduler ~seed:wseed ~cmds:40
          ~mode:(Workload.Open_loop { mean_gap = 50 })
          ()
    | Crash_reconfig ->
        (* Scale 5 -> 3 and crash the initial leader (the largest id)
           right as the transition opens; the joint command's auto-staged
           final must complete the reconfiguration without it. *)
        let n = 5 in
        let reconfigs = [ (0, 1_000, [ 0; 1; 2 ]) ] in
        let faults =
          [
            Fault.Crash { node = n - 1; at = 1_100 };
            Fault.Recover { node = n - 1; at = 8_000 };
          ]
        in
        Workload.run ~reconfigs ~faults ~max_time
          ~topology:(Amac.Topology.clique n) ~scheduler ~seed:wseed ~cmds:30
          ~mode:(Workload.Open_loop { mean_gap = 40 })
          ()
    | Snapshot_restart ->
        (* Fast traffic with an aggressive compaction watermark; one
           replica is down long enough that by the time it restarts
           (amnesiac, commit 0) the cluster's floor has moved past
           everything it missed — only a snapshot transfer can catch it
           up. *)
        let n = 4 in
        let faults =
          [
            Fault.Crash { node = 0; at = 300 };
            Fault.Recover { node = 0; at = 4_000 };
          ]
        in
        Workload.run ~faults ~compact_every:10 ~max_time
          ~topology:(Amac.Topology.clique n) ~scheduler ~seed:wseed ~cmds:50
          ~mode:(Workload.Open_loop { mean_gap = 20 })
          ()
  in
  let live =
    converged result
    &&
    match scenario with
    | Rolling_restart ->
        (* [snapshots_taken] is per-incarnation and every replica restarts,
           so the surviving signal of compaction is the restarters'
           installs. *)
        result.Workload.snapshots_installed > 0
    | Scale_up -> result.Workload.epoch_min = 2
    | Crash_reconfig -> result.Workload.epoch_min = 1
    | Snapshot_restart -> result.Workload.snapshots_installed > 0
  in
  { scenario; result; live; detail = describe result }
