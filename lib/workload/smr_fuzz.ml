type config = {
  iterations : int;
  max_n : int;
  max_fack : int;
  max_crashes : int;
  cmds : int;
  max_time : int;
  faults : Mcheck.Fuzz.fault_profile option;
  lifecycle : bool;
}

let default =
  {
    iterations = 100;
    max_n = 6;
    max_fack = 6;
    max_crashes = 2;
    cmds = 30;
    max_time = 400_000;
    faults = Some Mcheck.Fuzz.default_fault_profile;
    lifecycle = false;
  }

type failure = {
  iteration : int;
  n : int;
  fack : int;
  window : int;
  faults : Fault.plan;
  crashes : (int * int) list;
  compact_every : int option;
  reconfigs : (int * int * int list) list;
  violations : Smr_checker.violation list;
}

type outcome = {
  iterations_run : int;
  failure : failure option;
}

let pp_failure fmt f =
  Format.fprintf fmt
    "@[<v>iteration %d: n=%d fack=%d window=%d compact=%s@,\
     reconfigs=[%s]@,crashes=[%s]@,faults=%s@,%a@]"
    f.iteration f.n f.fack f.window
    (match f.compact_every with
    | Some k -> string_of_int k
    | None -> "-")
    (String.concat "; "
       (List.map
          (fun (node, at, members) ->
            Printf.sprintf "%d@%d->{%s}" node at
              (String.concat "," (List.map string_of_int members)))
          f.reconfigs))
    (String.concat "; "
       (List.map
          (fun (node, at) -> Printf.sprintf "%d@%d" node at)
          f.crashes))
    (Fault.to_string f.faults)
    (Format.pp_print_list Smr_checker.pp_violation)
    f.violations

let run_iteration config ~seed ~iteration =
  let rng = Mcheck.Fuzz.derive ~seed ~iteration in
  let n = Amac.Rng.int_range rng ~lo:3 ~hi:(max 3 config.max_n) in
  let topology =
    match Amac.Rng.int rng 3 with
    | 0 -> Amac.Topology.clique n
    | 1 -> Amac.Topology.line n
    | _ -> if n >= 3 then Amac.Topology.ring n else Amac.Topology.clique n
  in
  let fack = Amac.Rng.int_range rng ~lo:1 ~hi:(max 1 config.max_fack) in
  (* Crash times land in the first few broadcast windows, as in
     Mcheck.Fuzz.generate — early crashes interfere with leader election
     and the first Prepare, the most delicate phase. *)
  let crash_count = Amac.Rng.int rng (config.max_crashes + 1) in
  let crashes =
    List.init crash_count (fun _ ->
        ( Amac.Rng.int rng n,
          Amac.Rng.int_range rng ~lo:0 ~hi:(((2 * fack) + 1) * 2) ))
    |> List.sort_uniq compare
    |> List.fold_left
         (fun acc (node, time) ->
           if List.mem_assoc node acc then acc else (node, time) :: acc)
         []
    |> List.rev
  in
  let faults =
    match config.faults with
    | None -> []
    | Some p -> Mcheck.Fuzz.gen_fault_plan rng ~n ~fack ~crashes p
  in
  let crashes = if config.faults = None then crashes else [] in
  let window = 1 + Amac.Rng.int rng 8 in
  let mode =
    if Amac.Rng.bool rng then
      Workload.Open_loop { mean_gap = 1 + Amac.Rng.int rng (4 * fack) }
    else Workload.Closed_loop { clients_per_node = 1 }
  in
  (* Lifecycle surface: aggressive compaction watermarks and mid-run
     joint-consensus reconfigurations to arbitrary membership subsets,
     layered on top of the fault plan. Judged for safety only — a reconfig
     to a crashed subset legitimately stalls — which is exactly where
     epoch-crossing divergence or double-apply across a snapshot install
     would surface if the mechanisms were wrong. Off by default so the
     baseline fuzz corpus stays bit-for-bit. *)
  let compact_every, reconfigs =
    if not config.lifecycle then (None, [])
    else begin
      let compact_every =
        if Amac.Rng.int rng 3 < 2 then
          Some (Amac.Rng.int_range rng ~lo:3 ~hi:12)
        else None
      in
      let reconfig_count = Amac.Rng.int rng 3 in
      let reconfigs =
        List.init reconfig_count (fun _ ->
            let size = Amac.Rng.int_range rng ~lo:1 ~hi:n in
            let members =
              List.init size (fun _ -> Amac.Rng.int rng n)
              |> List.sort_uniq Int.compare
            in
            let node = Amac.Rng.int rng n in
            let at = Amac.Rng.int rng (max 1 (config.max_time / 64)) in
            (node, at, members))
      in
      (compact_every, reconfigs)
    end
  in
  let scheduler = Amac.Scheduler.random (Amac.Rng.split rng) ~fack in
  let wseed = Amac.Rng.int rng 1_000_000 in
  let result =
    Workload.run ~window ~faults ~crashes ~max_time:config.max_time
      ?compact_every ~reconfigs ~topology ~scheduler ~seed:wseed
      ~cmds:config.cmds ~mode ()
  in
  if result.Workload.violations = [] then None
  else
    Some
      {
        iteration;
        n;
        fack;
        window;
        faults;
        crashes;
        compact_every;
        reconfigs;
        violations = result.Workload.violations;
      }

let run ?(progress = fun _ -> ()) config ~seed =
  let rec go i =
    if i >= config.iterations then { iterations_run = i; failure = None }
    else
      match run_iteration config ~seed ~iteration:i with
      | None ->
          progress i;
          go (i + 1)
      | Some f ->
          progress i;
          { iterations_run = i + 1; failure = Some f }
  in
  go 0
