type config = {
  iterations : int;
  max_fack : int;
  max_alpha : int;
  max_crashes : int;
  max_time : int;
  faults : Mcheck.Fuzz.fault_profile option;
}

let default =
  {
    iterations = 100;
    max_fack = 4;
    max_alpha = 3;
    max_crashes = 2;
    max_time = 200_000;
    faults = Some Mcheck.Fuzz.default_fault_profile;
  }

type failure = {
  iteration : int;
  spec : string;
  topo_seed : int;
  n : int;
  fack : int;
  alpha : int;
  cap : int option;
  deltas : int;
  crashes : (int * int) list;
  faults : Fault.plan;
  violations : Consensus.Checker.violation list;
}

type outcome = {
  iterations_run : int;
  failure : failure option;
}

let pp_failure fmt f =
  Format.fprintf fmt
    "@[<v>iteration %d: %s seed=%d n=%d fack=%d alpha=%d cap=%s deltas=%d@,\
     crashes=[%s]@,faults=%s@,%a@]"
    f.iteration f.spec f.topo_seed f.n f.fack f.alpha
    (match f.cap with Some c -> string_of_int c | None -> "default")
    f.deltas
    (String.concat "; "
       (List.map
          (fun (node, at) -> Printf.sprintf "%d@%d" node at)
          f.crashes))
    (Fault.to_string f.faults)
    (Format.pp_print_list ~pp_sep:Format.pp_print_space
       Consensus.Checker.pp_violation)
    f.violations

(* Draws stay CI-sized: the point of this campaign is the interaction of
   multi-hop routing, contention-stretched acks, churn and fault plans —
   not raw scale, which bench B14 covers at 1000 nodes. *)
let gen_spec rng =
  match Amac.Rng.int rng 3 with
  | 0 ->
      Topo_gen.Grid
        {
          width = Amac.Rng.int_range rng ~lo:2 ~hi:5;
          height = Amac.Rng.int_range rng ~lo:2 ~hi:5;
        }
  | 1 ->
      let n = Amac.Rng.int_range rng ~lo:8 ~hi:24 in
      Topo_gen.Rgg { n; radius = Topo_gen.connectivity_radius ~n }
  | _ ->
      Topo_gen.Cluster
        {
          clusters = Amac.Rng.int_range rng ~lo:2 ~hi:4;
          size = Amac.Rng.int_range rng ~lo:3 ~hi:5;
          extra_bridges = Amac.Rng.int rng 3;
        }

let run_iteration config ~seed ~iteration =
  let rng = Mcheck.Fuzz.derive ~seed ~iteration in
  let spec = gen_spec rng in
  let topo_seed = Amac.Rng.int rng 1_000_000 in
  let topology = Topo_gen.generate ~seed:topo_seed spec in
  let n = Topo_gen.size spec in
  let fack = Amac.Rng.int_range rng ~lo:1 ~hi:(max 1 config.max_fack) in
  let alpha = Amac.Rng.int rng (config.max_alpha + 1) in
  let cap =
    if Amac.Rng.bool rng then None
    else Some (Amac.Rng.int_range rng ~lo:1 ~hi:(4 * fack))
  in
  (* Churn and mobility start after the first broadcast window so the run
     is past initialisation, with gaps on the same F_ack scale the fault
     generator uses. *)
  let topo_deltas =
    let start = 2 * fack and gap = max 1 (2 * fack) in
    match Amac.Rng.int rng 3 with
    | 0 -> []
    | 1 ->
        Topo_gen.churn ~seed:(Amac.Rng.int rng 1_000_000) topology
          ~events:(1 + Amac.Rng.int rng 4)
          ~start ~gap
    | _ ->
        Topo_gen.mobility ~seed:(Amac.Rng.int rng 1_000_000) topology
          ~moves:(1 + Amac.Rng.int rng 2)
          ~start ~gap
  in
  (* Early crashes as in Smr_fuzz: times land in the first broadcast
     windows, where leader election is most delicate. *)
  let crash_count = Amac.Rng.int rng (config.max_crashes + 1) in
  let crashes =
    List.init crash_count (fun _ ->
        ( Amac.Rng.int rng n,
          Amac.Rng.int_range rng ~lo:0 ~hi:(((2 * fack) + 1) * 2) ))
    |> List.sort_uniq compare
    |> List.fold_left
         (fun acc (node, time) ->
           if List.mem_assoc node acc then acc else (node, time) :: acc)
         []
    |> List.rev
  in
  let faults =
    match config.faults with
    | None -> []
    | Some p -> Mcheck.Fuzz.gen_fault_plan rng ~n ~fack ~crashes p
  in
  let crashes = if config.faults = None then crashes else [] in
  let scheduler =
    Amac.Scheduler.interference ~alpha ?cap
      (Amac.Scheduler.random (Amac.Rng.split rng) ~fack)
  in
  let inputs = Consensus.Runner.inputs_random rng ~n in
  let result =
    Consensus.Runner.run
      (Consensus.Wpaxos.make ())
      ~topology ~scheduler ~inputs ~crashes ~faults ~topo_deltas
      ~max_time:config.max_time
  in
  match Consensus.Checker.safety_violations result.Consensus.Runner.report with
  | [] -> None
  | violations ->
      Some
        {
          iteration;
          spec = Topo_gen.name spec;
          topo_seed;
          n;
          fack;
          alpha;
          cap;
          deltas = List.length topo_deltas;
          crashes;
          faults;
          violations;
        }

let run ?(progress = fun _ -> ()) config ~seed =
  let rec go i =
    if i >= config.iterations then { iterations_run = i; failure = None }
    else
      match run_iteration config ~seed ~iteration:i with
      | None ->
          progress i;
          go (i + 1)
      | Some f ->
          progress i;
          { iterations_run = i + 1; failure = Some f }
  in
  go 0
