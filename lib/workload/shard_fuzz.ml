type config = {
  iterations : int;
  max_n : int;
  max_fack : int;
  max_groups : int;
  max_batch : int;
  max_crashes : int;
  cmds : int;
  max_time : int;
}

let default =
  {
    iterations = 100;
    max_n = 6;
    max_fack = 6;
    max_groups = 4;
    max_batch = 6;
    max_crashes = 2;
    cmds = 40;
    max_time = 400_000;
  }

type failure = {
  iteration : int;
  n : int;
  fack : int;
  groups : int;
  batch : int;
  window : int;
  crashes : (int * int) list;
  violations : Smr_checker.shard_violation list;
}

type outcome = {
  iterations_run : int;
  failure : failure option;
}

let pp_failure fmt f =
  Format.fprintf fmt
    "@[<v>iteration %d: n=%d fack=%d groups=%d batch=%d window=%d@,\
     crashes=[%s]@,%a@]"
    f.iteration f.n f.fack f.groups f.batch f.window
    (String.concat "; "
       (List.map
          (fun (node, at) -> Printf.sprintf "%d@%d" node at)
          f.crashes))
    (Format.pp_print_list Smr_checker.pp_shard_violation)
    f.violations

let run_iteration config ~seed ~iteration =
  let rng = Mcheck.Fuzz.derive ~seed ~iteration in
  let n = Amac.Rng.int_range rng ~lo:3 ~hi:(max 3 config.max_n) in
  let topology =
    match Amac.Rng.int rng 3 with
    | 0 -> Amac.Topology.clique n
    | 1 -> Amac.Topology.line n
    | _ -> if n >= 3 then Amac.Topology.ring n else Amac.Topology.clique n
  in
  let fack = Amac.Rng.int_range rng ~lo:1 ~hi:(max 1 config.max_fack) in
  let groups = Amac.Rng.int_range rng ~lo:1 ~hi:(max 1 config.max_groups) in
  let batch = Amac.Rng.int_range rng ~lo:1 ~hi:(max 1 config.max_batch) in
  let window = 1 + Amac.Rng.int rng 8 in
  let crash_count = Amac.Rng.int rng (config.max_crashes + 1) in
  let crashes =
    List.init crash_count (fun _ ->
        ( Amac.Rng.int rng n,
          Amac.Rng.int_range rng ~lo:0 ~hi:(((2 * fack) + 1) * 2) ))
    |> List.sort_uniq compare
    |> List.fold_left
         (fun acc (node, time) ->
           if List.mem_assoc node acc then acc else (node, time) :: acc)
         []
    |> List.rev
  in
  let scheduler = Amac.Scheduler.random (Amac.Rng.split rng) ~fack in
  let wseed = Amac.Rng.int rng 1_000_000 in
  let result =
    Shard_workload.run ~window ~batch ~crashes ~max_time:config.max_time
      ~mean_gap:(1 + Amac.Rng.int rng (4 * fack))
      ~key_space:(8 * groups)
      ~topology ~scheduler ~seed:wseed ~cmds:config.cmds ~groups ()
  in
  if result.Shard_workload.violations = [] then None
  else
    Some
      {
        iteration;
        n;
        fack;
        groups;
        batch;
        window;
        crashes;
        violations = result.Shard_workload.violations;
      }

let run ?(progress = fun _ -> ()) config ~seed =
  let rec go i =
    if i >= config.iterations then { iterations_run = i; failure = None }
    else
      match run_iteration config ~seed ~iteration:i with
      | None ->
          progress i;
          go (i + 1)
      | Some f ->
          progress i;
          { iterations_run = i + 1; failure = Some f }
  in
  go 0
