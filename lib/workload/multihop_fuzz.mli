(** Seeded fuzzing of multi-hop consensus under interference: each
    iteration draws a {!Topo_gen} spec (grid / RGG / clustered mesh) and
    seed, an interference strength ([alpha], optionally a cap), a churn or
    mobility schedule, and a full fault plan, then runs hardened wPAXOS
    through {!Consensus.Runner.run} with
    {!Amac.Scheduler.interference} — judged by
    {!Consensus.Checker.safety_violations} only, since under adversarial
    plans and contention-stretched acks termination is conditional.

    Same reproducibility story as {!Smr_fuzz}: every stochastic choice
    derives from [Mcheck.Fuzz.derive ~seed ~iteration], so a failing
    iteration number {e is} the reproducer — no record/replay or shrinking
    step. *)

type config = {
  iterations : int;
  max_fack : int;  (** F_ack drawn from [\[1, max_fack\]] *)
  max_alpha : int;
      (** per-contender ack stretch drawn from [\[0, max_alpha\]]; 0 is the
          degenerate no-interference draw, kept in the pool on purpose *)
  max_crashes : int;  (** crash-pattern size drawn from [\[0, max_crashes\]] *)
  max_time : int;
  faults : Mcheck.Fuzz.fault_profile option;
      (** [Some profile] turns the crashes into a full fault plan via
          {!Mcheck.Fuzz.gen_fault_plan} (recoveries, loss windows,
          partitions, stutters) *)
}

(** 100 iterations, F_ack ≤ 4, alpha ≤ 3, ≤ 2 crashes, fault plans on (the
    mcheck default profile). Topology sizes are fixed inside the generator
    (grids up to 5×5, RGGs up to 24 nodes, clustered meshes up to 4×5+2) so
    a campaign stays CI-sized. *)
val default : config

type failure = {
  iteration : int;
  spec : string;  (** {!Topo_gen.name} of the drawn spec *)
  topo_seed : int;
  n : int;
  fack : int;
  alpha : int;
  cap : int option;  (** [None] — the scheduler's default [4 * fack] cap *)
  deltas : int;  (** drawn churn/mobility schedule length *)
  crashes : (int * int) list;
  faults : Fault.plan;
  violations : Consensus.Checker.violation list;
}

type outcome = {
  iterations_run : int;
  failure : failure option;  (** [None] — all iterations clean *)
}

val pp_failure : Format.formatter -> failure -> unit

(** [run config ~seed] fuzzes until a safety violation (then stops) or
    [config.iterations] clean iterations pass. [~progress] is called after
    each iteration with its 0-based index. *)
val run : ?progress:(int -> unit) -> config -> seed:int -> outcome
