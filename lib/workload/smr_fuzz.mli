(** Seeded fuzzing of the replicated log: random topology, scheduler,
    workload shape and (optionally) fault plan per iteration, judged by
    {!Smr_checker} — safety only, since under an adversarial plan a
    straggler's log may legitimately end short.

    Unlike {!Mcheck.Fuzz} there is no record/replay step: every stochastic
    choice (including the scheduler's) derives from
    [Mcheck.Fuzz.derive ~seed ~iteration], so re-running the same pair
    regenerates the identical execution — the iteration number {e is} the
    reproducer. No shrinking either; a failing iteration reports its drawn
    parameters and violations. *)

type config = {
  iterations : int;
  max_n : int;  (** nodes drawn from [\[3, max_n\]] *)
  max_fack : int;  (** F_ack drawn from [\[1, max_fack\]] *)
  max_crashes : int;  (** crash-pattern size drawn from [\[0, max_crashes\]] *)
  cmds : int;  (** commands per iteration *)
  max_time : int;
  faults : Mcheck.Fuzz.fault_profile option;
      (** [Some profile] turns the crashes into a full fault plan via
          {!Mcheck.Fuzz.gen_fault_plan} (recoveries, loss windows,
          partitions, stutters) *)
  lifecycle : bool;
      (** additionally draw aggressive compaction watermarks and mid-run
          joint-consensus reconfigurations to arbitrary membership subsets
          (off by default, keeping the baseline corpus bit-for-bit) *)
}

(** 100 iterations, n ≤ 6, F_ack ≤ 6, ≤ 2 crashes, 30 commands, fault
    plans on (the mcheck default profile), lifecycle draws off. *)
val default : config

type failure = {
  iteration : int;
  n : int;
  fack : int;
  window : int;
  faults : Fault.plan;
  crashes : (int * int) list;
  compact_every : int option;
  reconfigs : (int * int * int list) list;
  violations : Smr_checker.violation list;
}

type outcome = {
  iterations_run : int;
  failure : failure option;  (** [None] — all iterations clean *)
}

val pp_failure : Format.formatter -> failure -> unit

(** [run config ~seed] fuzzes until a safety violation (then stops) or
    [config.iterations] clean iterations pass. [~progress] is called after
    each iteration with its 0-based index. *)
val run : ?progress:(int -> unit) -> config -> seed:int -> outcome
